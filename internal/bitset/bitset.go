// Package bitset provides dense, fixed-capacity bit vectors used by the
// dataflow analyses (liveness, dominators) and the interference graph.
//
// A Set is a value type wrapping a []uint64; the zero Set is empty with
// capacity zero. All binary operations require equal capacity and panic
// otherwise — mismatched capacities in dataflow code are always bugs.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bit vector.
type Set struct {
	words []uint64
	n     int // capacity in bits
}

// New returns an empty set with capacity for bits 0..n-1.
func New(n int) Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity of the set in bits.
func (s Set) Len() int { return s.n }

func (s Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Set sets bit i.
func (s Set) Set(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear clears bit i.
func (s Set) Clear(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Has reports whether bit i is set.
func (s Set) Has(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Reset clears every bit.
func (s Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill sets every bit in [0, Len).
func (s Set) Fill() {
	if len(s.words) == 0 {
		return
	}
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	// Mask the tail beyond n.
	if rem := s.n % wordBits; rem != 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Copy returns an independent copy of s.
func (s Set) Copy() Set {
	c := Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of o.
func (s Set) CopyFrom(o Set) {
	s.sameCap(o)
	copy(s.words, o.words)
}

func (s Set) sameCap(o Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, o.n))
	}
}

// UnionWith sets s = s ∪ o and reports whether s changed.
func (s Set) UnionWith(o Set) bool {
	s.sameCap(o)
	changed := false
	for i, w := range o.words {
		nw := s.words[i] | w
		if nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// IntersectWith sets s = s ∩ o and reports whether s changed.
func (s Set) IntersectWith(o Set) bool {
	s.sameCap(o)
	changed := false
	for i, w := range o.words {
		nw := s.words[i] & w
		if nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// DifferenceWith sets s = s \ o and reports whether s changed.
func (s Set) DifferenceWith(o Set) bool {
	s.sameCap(o)
	changed := false
	for i, w := range o.words {
		nw := s.words[i] &^ w
		if nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// Intersects reports whether s ∩ o is non-empty.
func (s Set) Intersects(o Set) bool {
	s.sameCap(o)
	for i, w := range o.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and o contain the same bits.
func (s Set) Equal(o Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range o.words {
		if s.words[i] != w {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (s Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no bits are set.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// ForEach calls f for each set bit in ascending order.
func (s Set) ForEach(f func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*wordBits + b)
			w &^= 1 << uint(b)
		}
	}
}

// Members returns the set bits in ascending order.
func (s Set) Members() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// Next returns the smallest set bit ≥ i, or -1 if none.
func (s Set) Next(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// Arena is a bump allocator for Sets: every New carves words out of one
// growing backing slice, and Reset recycles the whole region at once.
// The dataflow passes allocate O(blocks) sets per solve and discard them
// together, which is exactly the arena lifetime; threading one Arena
// through a solver turns those transient sets into reused storage
// (reset-not-realloc). A nil *Arena is valid and falls back to New, so
// arena-accepting code needs no branching at call sites.
//
// Sets carved from an Arena are invalidated by the next Reset; callers
// must not retain them across it. An Arena is not safe for concurrent
// use — pool one per worker.
type Arena struct {
	buf []uint64
	off int
}

// New carves an empty set with capacity n out of the arena (or allocates
// fresh when a is nil).
func (a *Arena) New(n int) Set {
	if a == nil {
		return New(n)
	}
	if n < 0 {
		panic("bitset: negative capacity")
	}
	w := (n + wordBits - 1) / wordBits
	if a.off+w > len(a.buf) {
		grown := make([]uint64, max(2*len(a.buf), a.off+w))
		copy(grown, a.buf[:a.off])
		a.buf = grown
	}
	words := a.buf[a.off : a.off+w : a.off+w]
	for i := range words {
		words[i] = 0
	}
	a.off += w
	return Set{words: words, n: n}
}

// Reset recycles every set carved since the last Reset. The backing
// storage is kept, so a warmed arena allocates nothing in steady state.
func (a *Arena) Reset() {
	if a != nil {
		a.off = 0
	}
}

// String renders the set as "{1, 5, 9}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}
