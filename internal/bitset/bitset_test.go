package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetClearHas(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Has(i) {
			t.Fatalf("bit %d set in fresh set", i)
		}
		s.Set(i)
		if !s.Has(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("count = %d, want 8", s.Count())
	}
	s.Clear(64)
	if s.Has(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if s.Count() != 7 {
		t.Fatalf("count = %d, want 7", s.Count())
	}
}

func TestBoundsPanic(t *testing.T) {
	s := New(10)
	for _, i := range []int{-1, 10, 100} {
		i := i
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for index %d", i)
				}
			}()
			s.Set(i)
		}()
	}
}

func TestZeroCapacity(t *testing.T) {
	s := New(0)
	if s.Count() != 0 || !s.Empty() || s.Len() != 0 {
		t.Fatal("zero-capacity set misbehaves")
	}
	s.Fill()
	if s.Count() != 0 {
		t.Fatal("Fill on empty set set bits")
	}
	if s.Next(0) != -1 {
		t.Fatal("Next on empty set")
	}
}

func TestFillRespectsTail(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 128, 130} {
		s := New(n)
		s.Fill()
		if s.Count() != n {
			t.Errorf("Fill(%d): count = %d", n, s.Count())
		}
	}
}

func TestUnionIntersectDifference(t *testing.T) {
	a := New(100)
	b := New(100)
	for i := 0; i < 100; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Set(i)
	}
	u := a.Copy()
	if !u.UnionWith(b) {
		t.Fatal("union reported no change")
	}
	for i := 0; i < 100; i++ {
		want := i%2 == 0 || i%3 == 0
		if u.Has(i) != want {
			t.Fatalf("union bit %d = %v", i, u.Has(i))
		}
	}
	x := a.Copy()
	x.IntersectWith(b)
	for i := 0; i < 100; i++ {
		want := i%6 == 0
		if x.Has(i) != want {
			t.Fatalf("intersect bit %d = %v", i, x.Has(i))
		}
	}
	d := a.Copy()
	d.DifferenceWith(b)
	for i := 0; i < 100; i++ {
		want := i%2 == 0 && i%3 != 0
		if d.Has(i) != want {
			t.Fatalf("difference bit %d = %v", i, d.Has(i))
		}
	}
}

func TestUnionWithReportsChange(t *testing.T) {
	a := New(64)
	b := New(64)
	b.Set(5)
	if !a.UnionWith(b) {
		t.Fatal("first union must change")
	}
	if a.UnionWith(b) {
		t.Fatal("second union must not change")
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on capacity mismatch")
		}
	}()
	New(10).UnionWith(New(11))
}

func TestIntersects(t *testing.T) {
	a, b := New(70), New(70)
	a.Set(69)
	if a.Intersects(b) {
		t.Fatal("empty b intersects")
	}
	b.Set(69)
	if !a.Intersects(b) {
		t.Fatal("shared bit not detected")
	}
}

func TestMembersAndForEachOrder(t *testing.T) {
	s := New(200)
	want := []int{3, 64, 65, 100, 199}
	for _, i := range want {
		s.Set(i)
	}
	got := s.Members()
	if len(got) != len(want) {
		t.Fatalf("members = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("members = %v, want %v", got, want)
		}
	}
}

func TestNext(t *testing.T) {
	s := New(200)
	s.Set(5)
	s.Set(64)
	s.Set(199)
	cases := []struct{ from, want int }{
		{0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 199}, {199, 199}, {-3, 5},
	}
	for _, c := range cases {
		if got := s.Next(c.from); got != c.want {
			t.Errorf("Next(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	s.Clear(199)
	if got := s.Next(65); got != -1 {
		t.Errorf("Next past last = %d, want -1", got)
	}
}

func TestEqualAndCopyIndependence(t *testing.T) {
	a := New(80)
	a.Set(7)
	b := a.Copy()
	if !a.Equal(b) {
		t.Fatal("copy not equal")
	}
	b.Set(8)
	if a.Equal(b) {
		t.Fatal("copy aliases original")
	}
	if a.Has(8) {
		t.Fatal("mutating copy changed original")
	}
}

func TestString(t *testing.T) {
	s := New(10)
	s.Set(1)
	s.Set(9)
	if got := s.String(); got != "{1, 9}" {
		t.Fatalf("String = %q", got)
	}
}

// Property: union is commutative and idempotent; difference then union
// restores a superset relationship.
func TestQuickSetAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(xs, ys []uint8) bool {
		const n = 256
		a, b := New(n), New(n)
		for _, x := range xs {
			a.Set(int(x))
		}
		for _, y := range ys {
			b.Set(int(y))
		}
		ab := a.Copy()
		ab.UnionWith(b)
		ba := b.Copy()
		ba.UnionWith(a)
		if !ab.Equal(ba) {
			return false
		}
		again := ab.Copy()
		again.UnionWith(b)
		if !again.Equal(ab) {
			return false
		}
		d := a.Copy()
		d.DifferenceWith(b)
		if d.Intersects(b) {
			return false
		}
		d.UnionWith(b)
		// d must now contain everything in a.
		chk := a.Copy()
		chk.DifferenceWith(d)
		return chk.Empty()
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Count equals the number of distinct set indices.
func TestQuickCount(t *testing.T) {
	f := func(xs []uint16) bool {
		s := New(1 << 16)
		seen := map[uint16]bool{}
		for _, x := range xs {
			s.Set(int(x))
			seen[x] = true
		}
		return s.Count() == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
