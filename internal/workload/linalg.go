package workload

import (
	"ccmem/internal/ir"
)

// linalgRoutines builds the linear-algebra and utility kernels: Forsythe
// et al.-style decomp/svd, banded solves (vslvlpX, vslvlxX), saturation
// and burn-off polynomials (saturr, colbur, ddeflu, prophy, dyeh, efill),
// and the block move/pack routines (getbX, putbX, parmvrX, parmveX,
// parmovX).
func linalgRoutines() []Routine {
	return []Routine{
		{Name: "decomp", Paper: "decomp", Family: "linalg",
			Build: func() (*ir.Program, error) { return buildLU("decomp", 12) }},
		{Name: "svd", Paper: "svd", Family: "linalg",
			Build: func() (*ir.Program, error) { return buildSVD("svd", 10) }},
		{Name: "vslvlpX", Paper: "vslvlpX", Family: "linalg",
			Build: func() (*ir.Program, error) { return buildTriSolve("vslvlpX", 64, 12) }},
		{Name: "vslvlxX", Paper: "vslvlxX", Family: "linalg",
			Build: func() (*ir.Program, error) { return buildTriSolve("vslvlxX", 64, 16) }},
		{Name: "saturr", Paper: "saturr", Family: "linalg",
			Build: func() (*ir.Program, error) { return buildPoly("saturr", 8, 2, 64, 18) }},
		{Name: "colbur", Paper: "colbur", Family: "linalg",
			Build: func() (*ir.Program, error) { return buildPoly("colbur", 4, 3, 64, 17) }},
		{Name: "ddeflu", Paper: "ddeflu", Family: "linalg",
			Build: func() (*ir.Program, error) { return buildPoly("ddeflu", 6, 2, 64, 16) }},
		{Name: "prophy", Paper: "prophy", Family: "linalg",
			Build: func() (*ir.Program, error) { return buildPoly("prophy", 5, 2, 48, 8) }},
		{Name: "dyeh", Paper: "dyeh", Family: "linalg",
			Build: func() (*ir.Program, error) { return buildPoly("dyeh", 3, 1, 48, 4) }},
		{Name: "efill", Paper: "efill", Family: "linalg",
			Build: func() (*ir.Program, error) { return buildPoly("efill", 2, 1, 96, 2) }},
		{Name: "getbX", Paper: "getbX", Family: "linalg",
			Build: func() (*ir.Program, error) { return buildMove("getbX", 12, false, 64) }},
		{Name: "putbX", Paper: "putbX", Family: "linalg",
			Build: func() (*ir.Program, error) { return buildMove("putbX", 14, true, 64) }},
		{Name: "parmvrX", Paper: "parmvrX", Family: "linalg",
			Build: func() (*ir.Program, error) { return buildMove("parmvrX", 20, true, 64) }},
		{Name: "parmveX", Paper: "parmveX", Family: "linalg",
			Build: func() (*ir.Program, error) { return buildMove("parmveX", 16, true, 64) }},
		{Name: "parmovX", Paper: "parmovX", Family: "linalg",
			Build: func() (*ir.Program, error) { return buildMove("parmovX", 18, false, 64) }},
		{Name: "energyx", Paper: "energyx", Family: "linalg",
			Build: func() (*ir.Program, error) { return buildJac("energyx", 7, 1, false, 32) }},
		{Name: "pdiagX", Paper: "pdiagX", Family: "linalg",
			Build: func() (*ir.Program, error) { return buildTriSolve("pdiagX", 48, 20) }},
	}
}

// buildLU is a decomp-style LU factorization (no pivoting) over an n×n
// matrix: classic triply nested loops with a rank-1 update inner loop.
func buildLU(name string, n int64) (*ir.Program, error) {
	a := name + "_a"
	words := n * n
	b := newKB(name, ir.ClassNone)
	b.Label("entry")
	base := b.Addr(a, 0)
	nR := b.ConstI(n)
	b.Loop(b.ConstI(0), nR, func(k ir.Reg) {
		pivRow := b.Idx(base, b.Mul(k, nR), 1, 0)
		piv := b.FAdd(b.FLoadAI(b.Idx(pivRow, k, 1, 0), 0), b.ConstF(3.0))
		pinv := b.FDiv(b.ConstF(1), piv)
		kp1 := b.Add(k, b.ConstI(1))
		b.Loop(kp1, nR, func(i ir.Reg) {
			iRow := b.Idx(base, b.Mul(i, nR), 1, 0)
			lik := b.FMul(b.FLoad(b.Idx(iRow, k, 1, 0)), pinv)
			b.FStore(lik, b.Idx(iRow, k, 1, 0))
			b.Loop(kp1, nR, func(j ir.Reg) {
				akj := b.FLoad(b.Idx(pivRow, j, 1, 0))
				aij := b.FLoad(b.Idx(iRow, j, 1, 0))
				b.FStore(b.FSub(aij, b.FMul(lik, akj)), b.Idx(iRow, j, 1, 0))
			})
		})
	})
	b.Ret()
	kern := b.MustFinish()

	main := driverMain(
		driverCall{callee: "init_" + a},
		driverCall{callee: name},
		driverCall{callee: "check_" + name},
	)
	return program(
		[]*ir.Global{fglobal(a, words)},
		main, fillFunc(a, words, 31), kern, checksumFunc("check_"+name, a, words),
	)
}

// buildSVD is an svd-style one-sided Jacobi sweep: for each column pair,
// accumulate three inner products, derive a rotation (with sqrt), and
// apply it to both columns — reduction followed by update, with calls into
// nothing but straight-line math.
func buildSVD(name string, n int64) (*ir.Program, error) {
	a := name + "_a"
	words := n * n
	b := newKB(name, ir.ClassNone)
	b.Label("entry")
	base := b.Addr(a, 0)
	nR := b.ConstI(n)
	nm1 := b.ConstI(n - 1)
	b.Loop(b.ConstI(0), nm1, func(j ir.Reg) {
		jp1 := b.Add(j, b.ConstI(1))
		app := b.Copy(b.ConstF(1e-9))
		aqq := b.Copy(b.ConstF(1e-9))
		apq := b.Copy(b.ConstF(0)) // off-diagonal inner product
		b.Loop(b.ConstI(0), nR, func(i ir.Reg) {
			row := b.Idx(base, b.Mul(i, nR), 1, 0)
			x := b.FLoad(b.Idx(row, j, 1, 0))
			y := b.FLoad(b.Idx(row, jp1, 1, 0))
			b.CopyTo(app, b.FAdd(app, b.FMul(x, x)))
			b.CopyTo(aqq, b.FAdd(aqq, b.FMul(y, y)))
			b.CopyTo(apq, b.FAdd(apq, b.FMul(x, y)))
		})
		// rotation angle ~ apq / (app+aqq); c,s via 1/sqrt(1+t^2).
		t := b.FDiv(apq, b.FAdd(app, aqq))
		den := b.FSqrt(b.FAdd(b.ConstF(1), b.FMul(t, t)))
		c := b.FDiv(b.ConstF(1), den)
		s := b.FMul(t, c)
		b.Loop(b.ConstI(0), nR, func(i ir.Reg) {
			row := b.Idx(base, b.Mul(i, nR), 1, 0)
			x := b.FLoad(b.Idx(row, j, 1, 0))
			y := b.FLoad(b.Idx(row, jp1, 1, 0))
			b.FStore(b.FAdd(b.FMul(c, x), b.FMul(s, y)), b.Idx(row, j, 1, 0))
			b.FStore(b.FSub(b.FMul(c, y), b.FMul(s, x)), b.Idx(row, jp1, 1, 0))
		})
	})
	b.Ret()
	kern := b.MustFinish()

	main := driverMain(
		driverCall{callee: "init_" + a},
		driverCall{callee: name},
		driverCall{callee: "check_" + name},
	)
	return program(
		[]*ir.Global{fglobal(a, words)},
		main, fillFunc(a, words, 57), kern, checksumFunc("check_"+name, a, words),
	)
}

// buildTriSolve is a vslvlp/vslvlx-style banded forward solve, unrolled:
// each step loads `unroll` right-hand sides plus band coefficients and
// carries the recurrences in parallel, so all the partial solutions are
// simultaneously live.
func buildTriSolve(name string, n int64, unroll int) (*ir.Program, error) {
	rhs := name + "_r"
	band := name + "_b"
	words := n * int64(unroll)
	b := newKB(name, ir.ClassNone)
	b.Label("entry")
	rBase := b.Addr(rhs, 0)
	bBase := b.Addr(band, 0)
	carry := make([]ir.Reg, unroll)
	for u := range carry {
		carry[u] = b.Copy(b.ConstF(0))
	}
	b.LoopConst(0, n, func(i ir.Reg) {
		rRow := b.Idx(rBase, i, int64(unroll), 0)
		bRow := b.Idx(bBase, i, int64(unroll), 0)
		xs := make([]ir.Reg, unroll)
		cs := make([]ir.Reg, unroll)
		for u := 0; u < unroll; u++ {
			xs[u] = b.FLoadAI(rRow, int64(u)*ir.WordBytes)
			cs[u] = b.FLoadAI(bRow, int64(u)*ir.WordBytes)
		}
		// Coupled recurrences: x'_u = (x_u - c_u * carry_u) / (2 + c_u),
		// then neighbouring lanes exchange carries (keeps lanes live).
		nx := make([]ir.Reg, unroll)
		for u := 0; u < unroll; u++ {
			num := b.FSub(xs[u], b.FMul(cs[u], carry[u]))
			nx[u] = b.FDiv(num, b.FAdd(b.ConstF(2), cs[u]))
		}
		for u := 0; u < unroll; u++ {
			b.CopyTo(carry[u], b.FAdd(nx[u], b.FMul(b.ConstF(0.125), nx[(u+1)%unroll])))
			b.FStoreAI(nx[u], rRow, int64(u)*ir.WordBytes)
		}
	})
	b.Ret()
	kern := b.MustFinish()

	main := driverMain(
		driverCall{callee: "init_" + rhs},
		driverCall{callee: "init_" + band},
		driverCall{callee: name},
		driverCall{callee: "check_" + name},
	)
	return program(
		[]*ir.Global{fglobal(rhs, words), fglobal(band, words)},
		main,
		fillFunc(rhs, words, 11), fillFunc(band, words, 13),
		kern, checksumFunc("check_"+name, rhs, words),
	)
}

// buildPoly is a saturr/colbur-style pointwise kernel: `phases` sequential
// loops each evaluate a Horner polynomial of the given degree and a
// saturation clamp. Sequential phases give the spill-memory compactor
// disjoint lifetimes to pack (Table 1).
func buildPoly(name string, deg, phases int, cells int64, lanes int) (*ir.Program, error) {
	a := name + "_a"
	words := cells * int64(lanes)
	b := newKB(name, ir.ClassNone)
	b.Label("entry")
	base := b.Addr(a, 0)
	for ph := 0; ph < phases; ph++ {
		coef := make([]float64, deg+1)
		for i := range coef {
			coef[i] = 1.0 / float64(ph+i+2)
		}
		b.LoopConst(0, cells, func(i ir.Reg) {
			// `lanes` Horner evaluations proceed in lock step, so all the
			// lane accumulators and inputs are simultaneously live.
			row := b.Idx(base, i, int64(lanes), 0)
			xs := make([]ir.Reg, lanes)
			accs := make([]ir.Reg, lanes)
			for l := 0; l < lanes; l++ {
				xs[l] = b.FLoadAI(row, int64(l)*ir.WordBytes)
				accs[l] = b.ConstF(coef[deg])
			}
			for d := deg - 1; d >= 0; d-- {
				for l := 0; l < lanes; l++ {
					accs[l] = b.FAdd(b.FMul(accs[l], xs[l]), b.ConstF(coef[d]))
				}
			}
			for l := 0; l < lanes; l++ {
				// Saturate into (-1, 1): acc / (1 + |acc|).
				sat := b.FDiv(accs[l], b.FAdd(b.ConstF(1), b.FAbs(accs[l])))
				b.FStoreAI(sat, row, int64(l)*ir.WordBytes)
			}
		})
	}
	b.Ret()
	kern := b.MustFinish()

	main := driverMain(
		driverCall{callee: "init_" + a},
		driverCall{callee: name},
		driverCall{callee: "check_" + name},
	)
	return program(
		[]*ir.Global{fglobal(a, words)},
		main, fillFunc(a, words, int64(deg*7+phases)), kern, checksumFunc("check_"+name, a, words),
	)
}

// buildMove is a getb/putb/parmvr-style block mover: `unroll` elements per
// step are gathered, optionally scaled, cross-mixed (so every lane stays
// live through the whole body), and scattered with a stride permutation.
func buildMove(name string, unroll int, scale bool, n int64) (*ir.Program, error) {
	src := name + "_s"
	dst := name + "_d"
	words := n * int64(unroll)
	b := newKB(name, ir.ClassNone)
	b.Label("entry")
	sBase := b.Addr(src, 0)
	dBase := b.Addr(dst, 0)
	k := b.ConstF(1.0009765625)
	b.LoopConst(0, n, func(i ir.Reg) {
		row := b.Idx(sBase, i, int64(unroll), 0)
		vals := make([]ir.Reg, unroll)
		for u := 0; u < unroll; u++ {
			vals[u] = b.FLoadAI(row, int64(u)*ir.WordBytes)
		}
		if scale {
			for u := 0; u < unroll; u++ {
				vals[u] = b.FMul(vals[u], k)
			}
		}
		// Cross-mix with a far lane: every value's last use is in the
		// second half of the mixing phase, so all lanes stay live through
		// it (the getb/putb gather buffers behave the same way).
		mixed := make([]ir.Reg, unroll)
		for u := 0; u < unroll; u++ {
			far := (u + unroll/2) % unroll
			mixed[u] = b.FAdd(vals[u], b.FMul(b.ConstF(0.5), vals[far]))
		}
		out := b.Idx(dBase, i, int64(unroll), 0)
		for u := 0; u < unroll; u++ {
			// Permuted scatter (reverse order), getb/putb style.
			b.FStoreAI(mixed[u], out, int64(unroll-1-u)*ir.WordBytes)
		}
	})
	b.Ret()
	kern := b.MustFinish()

	main := driverMain(
		driverCall{callee: "init_" + src},
		driverCall{callee: name},
		driverCall{callee: "check_" + name},
	)
	return program(
		[]*ir.Global{fglobal(src, words), fglobal(dst, words)},
		main, fillFunc(src, words, int64(unroll)*19), kern, checksumFunc("check_"+name, dst, words),
	)
}
