package workload

import (
	"ccmem/internal/ir"
)

// appluRoutines builds SPEC applu-style kernels: 5×5 block jacobian
// builders (jacld, jacu), flux/rhs stencils (rhs, erhs), and triangular
// block solves (blts, buts) plus their support routines (subb, supp).
func appluRoutines() []Routine {
	return []Routine{
		{Name: "jacld", Paper: "jacld", Family: "applu",
			Build: func() (*ir.Program, error) { return buildJac("jacld", 5, 2, false, 40) }},
		{Name: "jacu", Paper: "jacu", Family: "applu",
			Build: func() (*ir.Program, error) { return buildJac("jacu", 5, 2, true, 40) }},
		{Name: "rhs", Paper: "rhs", Family: "applu",
			Build: func() (*ir.Program, error) { return buildFlux("rhs", 5, 64) }},
		{Name: "erhs", Paper: "erhs", Family: "applu",
			Build: func() (*ir.Program, error) { return buildFlux("erhs", 4, 64) }},
		{Name: "blts", Paper: "blts", Family: "applu",
			Build: func() (*ir.Program, error) { return buildTriBlock("blts", false, 48) }},
		{Name: "buts", Paper: "buts", Family: "applu",
			Build: func() (*ir.Program, error) { return buildTriBlock("buts", true, 48) }},
		{Name: "subb", Paper: "subb", Family: "applu",
			Build: func() (*ir.Program, error) { return buildJac("subb", 6, 1, false, 40) }},
		{Name: "supp", Paper: "supp", Family: "applu",
			Build: func() (*ir.Program, error) { return buildJac("supp", 6, 1, true, 40) }},
	}
}

// buildJac emits a jacld/jacu-style kernel: per grid cell, load the bs
// solution components plus inverse metrics, then form a bs×bs jacobian
// block whose entries are products and sums of the loaded values. All bs
// components and several recurring subexpressions stay live across the
// whole block, giving the moderate-but-real pressure of the originals.
func buildJac(name string, bs, nmats int, upper bool, cells int64) (*ir.Program, error) {
	withAux := nmats > 1 // jacld/jacu call a metric helper per cell
	u := name + "_u"
	d := name + "_d"
	uWords := cells * int64(bs)
	dWords := cells * int64(bs*bs*nmats)

	b := newKB(name, ir.ClassNone)
	b.Label("entry")
	uBase := b.Addr(u, 0)
	dBase := b.Addr(d, 0)
	c1 := b.ConstF(1.4)
	c2 := b.ConstF(0.4)

	b.LoopConst(0, cells, func(i ir.Reg) {
		comp := make([]ir.Reg, bs)
		row := b.Idx(uBase, i, int64(bs), 0)
		for m := 0; m < bs; m++ {
			comp[m] = b.FLoadAI(row, int64(m)*ir.WordBytes)
		}
		// Recurring subexpressions (density inverse, kinetic terms) that
		// stay live across all bs*bs entries.
		rinv := b.FDiv(b.ConstF(1), b.FAdd(comp[0], b.ConstF(1e-9)))
		q := b.Copy(b.ConstF(0))
		for m := 1; m < bs; m++ {
			b.CopyTo(q, b.FAdd(q, b.FMul(comp[m], comp[m])))
		}
		qr := b.FMul(q, rinv)
		if withAux {
			// Metric helper call: the loaded components and the recurring
			// subexpressions are all live across it.
			qr = b.FAdd(qr, b.Call(name+"_aux", ir.ClassFloat, qr))
		}
		// Compute every block entry first, then store them all: the whole
		// bs×bs block is simultaneously live, as in the Fortran original
		// after scalar replacement.
		// The real jacld forms several bs×bs jacobian blocks per cell;
		// every entry of every block is computed before any is stored, so
		// nmats*bs*bs values peak simultaneously.
		drow := b.Idx(dBase, i, int64(bs*bs*nmats), 0)
		entries := make([]ir.Reg, bs*bs*nmats)
		for mat := 0; mat < nmats; mat++ {
			scale := b.ConstF(1.0 + 0.25*float64(mat))
			for m := 0; m < bs; m++ {
				for n := 0; n < bs; n++ {
					mm, nn := m, n
					if upper {
						mm, nn = bs-1-m, bs-1-n
					}
					var e ir.Reg
					switch {
					case mm == nn:
						e = b.FAdd(b.FMul(c1, comp[mm]), b.FMul(c2, qr))
					case mm < nn:
						e = b.FSub(b.FMul(comp[mm], b.FMul(comp[nn], rinv)), qr)
					default:
						e = b.FMul(b.FMul(comp[mm], rinv), b.FSub(comp[nn], q))
					}
					if mat > 0 {
						e = b.FMul(e, scale)
					}
					entries[mat*bs*bs+m*bs+n] = e
				}
			}
		}
		for j := 0; j < bs*bs*nmats; j++ {
			b.FStoreAI(entries[j], drow, int64(j)*ir.WordBytes)
		}
	})
	b.Ret()
	kern := b.MustFinish()

	main := driverMain(
		driverCall{callee: "init_" + u},
		driverCall{callee: name},
		driverCall{callee: "check_" + name},
	)
	funcs := []*ir.Func{
		main,
		fillFunc(u, uWords, int64(len(name))*101),
		kern,
		checksumFunc("check_"+name, d, dWords),
	}
	if withAux {
		funcs = append(funcs, buildAux(name+"_aux", auxLight))
	}
	return program(
		[]*ir.Global{fglobal(u, uWords), fglobal(d, dWords)},
		funcs...,
	)
}

// buildFlux emits an rhs/erhs-style flux stencil: for each interior cell,
// the bs components of the left, center and right neighbours are loaded
// (3*bs live values) and combined into dissipation + flux terms.
func buildFlux(name string, bs int, cells int64) (*ir.Program, error) {
	u := name + "_u"
	r := name + "_r"
	uWords := (cells + 4) * int64(bs)
	rWords := cells * int64(bs)

	b := newKB(name, ir.ClassNone)
	b.Label("entry")
	uBase := b.Addr(u, 0)
	rBase := b.Addr(r, 0)
	dt := b.ConstF(0.035)
	dis := b.ConstF(0.25)

	b.LoopConst(0, cells, func(i ir.Reg) {
		// Five-point window of bs components each (the fourth-difference
		// dissipation of the original needs i-2..i+2), all live at once.
		win := make([][]ir.Reg, 5)
		for w := 0; w < 5; w++ {
			row := b.Idx(uBase, i, int64(bs), int64(w*bs))
			win[w] = make([]ir.Reg, bs)
			for m := 0; m < bs; m++ {
				win[w][m] = b.FLoadAI(row, int64(m)*ir.WordBytes)
			}
		}
		lm2, lm, mm, rm, rm2 := win[0], win[1], win[2], win[3], win[4]
		out := b.Idx(rBase, i, int64(bs), 0)
		res := make([]ir.Reg, bs)
		for m := 0; m < bs; m++ {
			p := (m + 1) % bs
			fluxL := b.FMul(lm[m], b.FAdd(lm[p], dt))
			fluxR := b.FMul(rm[m], b.FAdd(rm[p], dt))
			diff := b.FSub(fluxR, fluxL)
			d2 := b.FAdd(lm[m], b.FSub(rm[m], b.FMul(mm[m], b.ConstF(2))))
			d4 := b.FSub(b.FAdd(lm2[m], rm2[m]), b.FMul(d2, b.ConstF(4)))
			v := b.FAdd(b.FMul(diff, b.ConstF(0.5)), b.FSub(b.FMul(d2, dis), b.FMul(d4, b.ConstF(0.0625))))
			res[m] = v
		}
		for m := 0; m < bs; m++ {
			b.FStoreAI(res[m], out, int64(m)*ir.WordBytes)
		}
	})
	b.Ret()
	kern := b.MustFinish()

	main := driverMain(
		driverCall{callee: "init_" + u},
		driverCall{callee: name},
		driverCall{callee: "check_" + name},
	)
	return program(
		[]*ir.Global{fglobal(u, uWords), fglobal(r, rWords)},
		main,
		fillFunc(u, uWords, int64(bs)*977),
		kern,
		checksumFunc("check_"+name, r, rWords),
	)
}

// buildTriBlock emits a blts/buts-style 5×5 triangular block solve: the
// full 25-coefficient block is loaded up front (as the Fortran original
// keeps it in registers) together with the 5-vector being solved, so ~30
// floating values are simultaneously live.
func buildTriBlock(name string, backward bool, cells int64) (*ir.Program, error) {
	const bs = 5
	a := name + "_a"
	v := name + "_v"
	aWords := cells * bs * bs
	vWords := cells * bs

	b := newKB(name, ir.ClassNone)
	b.Label("entry")
	aBase := b.Addr(a, 0)
	vBase := b.Addr(v, 0)

	const unroll = 2
	b.LoopConst(0, cells/unroll, func(i ir.Reg) {
		idx := func(m, n int) int {
			if backward {
				return (bs-1-m)*bs + (bs - 1 - n)
			}
			return m*bs + n
		}
		// Two cells' blocks and solution vectors are loaded and solved
		// together (the pipelined form of the original), so ~60 floating
		// values are live at the peak.
		coef := make([][]ir.Reg, unroll)
		x := make([][]ir.Reg, unroll)
		vrows := make([]ir.Reg, unroll)
		for u := 0; u < unroll; u++ {
			cell := b.Add(b.Mul(i, b.ConstI(unroll)), b.ConstI(int64(u)))
			arow := b.Idx(aBase, cell, bs*bs, 0)
			coef[u] = make([]ir.Reg, bs*bs)
			for j := 0; j < bs*bs; j++ {
				coef[u][j] = b.FLoadAI(arow, int64(j)*ir.WordBytes)
			}
			vrows[u] = b.Idx(vBase, cell, bs, 0)
			x[u] = make([]ir.Reg, bs)
			for m := 0; m < bs; m++ {
				x[u][m] = b.FLoadAI(vrows[u], int64(m)*ir.WordBytes)
			}
		}
		for m := 0; m < bs; m++ {
			for u := 0; u < unroll; u++ {
				acc := x[u][m]
				for n := 0; n < m; n++ {
					acc = b.FSub(acc, b.FMul(coef[u][idx(m, n)], x[u][n]))
				}
				diag := b.FAdd(coef[u][idx(m, m)], b.ConstF(2.5))
				x[u][m] = b.FDiv(acc, diag)
			}
		}
		for u := 0; u < unroll; u++ {
			for m := 0; m < bs; m++ {
				b.FStoreAI(x[u][m], vrows[u], int64(m)*ir.WordBytes)
			}
		}
	})
	b.Ret()
	kern := b.MustFinish()

	main := driverMain(
		driverCall{callee: "init_" + a},
		driverCall{callee: "init_" + v},
		driverCall{callee: name},
		driverCall{callee: "check_" + name},
	)
	return program(
		[]*ir.Global{fglobal(a, aWords), fglobal(v, vWords)},
		main,
		fillFunc(a, aWords, 4242),
		fillFunc(v, vWords, 2424),
		kern,
		checksumFunc("check_"+name, v, vWords),
	)
}
