package workload

import (
	"strings"
	"testing"

	"ccmem/internal/sim"
)

func TestGenerateDefaultsMatchRandomProgram(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		a := RandomProgram(seed).String()
		b, err := Generate(Options{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if b.String() != a {
			t.Fatalf("seed %d: Generate with default options diverges from RandomProgram", seed)
		}
	}
}

func TestGenerateIsPureFunctionOfOptions(t *testing.T) {
	opts := Options{Seed: 42, MaxLeafFuncs: 2, MinDepth: 1, MaxDepth: 3, ArrayWords: 32}
	a, err := Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("equal Options produced different programs")
	}
	c, err := Generate(Options{Seed: 42, MaxLeafFuncs: 2, MinDepth: 1, MaxDepth: 3, ArrayWords: 16})
	if err != nil {
		t.Fatal(err)
	}
	if c.String() == a.String() {
		t.Fatal("changing ArrayWords did not change the program")
	}
}

func TestGenerateRejectsInvalidOptions(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"negative leafs", Options{MaxLeafFuncs: -1}, "MaxLeafFuncs"},
		{"negative depth", Options{MinDepth: -2, MaxDepth: 3}, "MinDepth"},
		{"inverted depths", Options{MinDepth: 4, MaxDepth: 2}, "MaxDepth"},
		{"huge depth", Options{MinDepth: 2, MaxDepth: 40}, "MaxDepth"},
		{"odd array", Options{ArrayWords: 48}, "ArrayWords"},
		{"tiny array", Options{ArrayWords: 1}, "ArrayWords"},
		{"giant array", Options{ArrayWords: 1 << 22}, "ArrayWords"},
	}
	for _, tc := range cases {
		_, err := Generate(tc.opts)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %s", tc.name, err, tc.want)
		}
	}
}

func TestGenerateCustomOptionsRunnable(t *testing.T) {
	p, err := Generate(Options{Seed: 5, MaxLeafFuncs: 1, MinDepth: 1, MaxDepth: 2, ArrayWords: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(p, "main", sim.Config{}); err != nil {
		t.Fatalf("generated program does not run: %v", err)
	}
}
