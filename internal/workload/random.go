package workload

import (
	"fmt"
	"math/rand"

	"ccmem/internal/ir"
)

// Options parameterize the random-program generator. The generated
// program is a pure function of the Options value: the pseudo-random
// stream is seeded from Seed alone, and the remaining fields shape the
// draws, so equal Options always yield byte-identical programs and no
// global or time-derived state is consulted.
type Options struct {
	// Seed selects the pseudo-random stream.
	Seed int64

	// MaxLeafFuncs bounds the number of generated leaf functions: the
	// program draws a count in [0, MaxLeafFuncs). Default 3.
	MaxLeafFuncs int

	// MinDepth and MaxDepth bound main's statement-tree depth; the
	// program draws a depth in [MinDepth, MaxDepth]. Defaults 2 and 4.
	MinDepth int
	MaxDepth int

	// ArrayWords sizes the shared global array all memory traffic is
	// masked into; it must be a power of two ≥ 2 (the generator masks
	// indices with ArrayWords-1 to stay in bounds). Default 64.
	ArrayWords int
}

// withDefaults fills unset (zero) fields with the classic generator
// parameters, under which Generate(Options{Seed: s}) reproduces
// RandomProgram(s) exactly.
func (o Options) withDefaults() Options {
	if o.MaxLeafFuncs == 0 {
		o.MaxLeafFuncs = 3
	}
	if o.MinDepth == 0 {
		o.MinDepth = 2
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 4
	}
	if o.ArrayWords == 0 {
		o.ArrayWords = 64
	}
	return o
}

func (o Options) validate() error {
	if o.MaxLeafFuncs < 0 {
		return fmt.Errorf("workload: MaxLeafFuncs %d must be ≥ 0", o.MaxLeafFuncs)
	}
	if o.MinDepth < 1 {
		return fmt.Errorf("workload: MinDepth %d must be ≥ 1", o.MinDepth)
	}
	if o.MaxDepth < o.MinDepth {
		return fmt.Errorf("workload: MaxDepth %d must be ≥ MinDepth %d", o.MaxDepth, o.MinDepth)
	}
	if o.MaxDepth > 8 {
		return fmt.Errorf("workload: MaxDepth %d must be ≤ 8 (program size is exponential in depth)", o.MaxDepth)
	}
	if o.ArrayWords < 2 || o.ArrayWords&(o.ArrayWords-1) != 0 {
		return fmt.Errorf("workload: ArrayWords %d must be a power of two ≥ 2", o.ArrayWords)
	}
	if o.ArrayWords > 1<<20 {
		return fmt.Errorf("workload: ArrayWords %d must be ≤ %d", o.ArrayWords, 1<<20)
	}
	return nil
}

// RandomProgram generates a deterministic pseudo-random program from the
// seed: structured control flow (nested bounded loops, diamonds), integer
// and float arithmetic over growing variable pools, guarded divisions,
// in-bounds memory traffic over a shared global, calls to generated leaf
// functions, and emit instructions sprinkled throughout plus a final
// drain. Every program terminates and never faults, so it can serve as a
// semantic oracle for the whole compilation pipeline: any transformation
// must preserve the emit trace bit for bit.
//
// RandomProgram is Generate with the default Options, which cannot fail.
func RandomProgram(seed int64) *ir.Program {
	p, err := Generate(Options{Seed: seed})
	if err != nil {
		panic(err) // unreachable: default options are valid, and the generator is self-verifying
	}
	return p
}

// Generate builds a random program from opts. Invalid parameters are
// reported as errors (never panics); zero fields take their defaults.
func Generate(opts Options) (*ir.Program, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	g := &randGen{rng: rand.New(rand.NewSource(opts.Seed)), opts: opts}
	return g.program()
}

type randGen struct {
	rng   *rand.Rand
	opts  Options
	prog  *ir.Program
	leafs []string
}

func (g *randGen) program() (*ir.Program, error) {
	g.prog = &ir.Program{}
	if err := g.prog.AddGlobal(&ir.Global{Name: "mem", Words: g.opts.ArrayWords}); err != nil {
		return nil, err
	}
	nLeaf := g.rng.Intn(g.opts.MaxLeafFuncs)
	for i := 0; i < nLeaf; i++ {
		name := fmt.Sprintf("leaf%d", i)
		g.leafs = append(g.leafs, name)
		f, err := g.leaf(name)
		if err != nil {
			return nil, err
		}
		if err := g.prog.AddFunc(f); err != nil {
			return nil, err
		}
	}
	depth := g.opts.MinDepth + g.rng.Intn(g.opts.MaxDepth-g.opts.MinDepth+1)
	f, err := g.fn("main", depth)
	if err != nil {
		return nil, err
	}
	if err := g.prog.AddFunc(f); err != nil {
		return nil, err
	}
	if err := ir.VerifyProgram(g.prog, ir.VerifyOptions{}); err != nil {
		return nil, fmt.Errorf("workload: random program invalid (generator bug): %w\n%s", err, g.prog)
	}
	return g.prog, nil
}

// leaf generates a small straight-line function with 1-2 parameters.
func (g *randGen) leaf(name string) (*ir.Func, error) {
	b := ir.NewBuilder(name, ir.ClassInt)
	st := &randState{g: g, b: b}
	p0 := b.Param(ir.ClassInt, "a")
	st.ints = append(st.ints, p0)
	if g.rng.Intn(2) == 0 {
		st.floats = append(st.floats, b.Param(ir.ClassFloat, "x"))
	}
	b.Label("entry")
	if len(st.floats) == 0 {
		st.floats = append(st.floats, b.ConstF(g.fconst()))
	}
	for i := 0; i < 3+g.rng.Intn(6); i++ {
		st.arith()
	}
	b.RetVal(st.anyInt())
	return b.Finish()
}

// fn generates main: a statement tree of the given depth budget.
func (g *randGen) fn(name string, depth int) (*ir.Func, error) {
	b := ir.NewBuilder(name, ir.ClassNone)
	st := &randState{g: g, b: b}
	b.Label("entry")
	st.ints = append(st.ints, b.ConstI(g.iconst()), b.ConstI(g.iconst()))
	st.floats = append(st.floats, b.ConstF(g.fconst()), b.ConstF(g.fconst()))
	st.base = b.Addr("mem", 0)
	st.block(depth, 4+g.rng.Intn(6))
	// Drain: emit a digest of the live pools.
	accI := st.ints[0]
	for _, r := range st.ints[1:] {
		accI = b.Xor(accI, r)
	}
	b.Emit(accI)
	accF := st.floats[0]
	for _, r := range st.floats[1:] {
		accF = b.FAdd(accF, r)
	}
	b.Emit(accF)
	b.Ret()
	return b.Finish()
}

// randState carries the variable pools of one function body.
type randState struct {
	g      *randGen
	b      *ir.Builder
	ints   []ir.Reg
	floats []ir.Reg
	base   ir.Reg // address of the shared array; NoReg in leafs
	labels int
}

func (g *randGen) iconst() int64 { return int64(g.rng.Intn(41) - 20) }
func (g *randGen) fconst() float64 {
	return float64(g.rng.Intn(400)-200) / 16.0
}

func (s *randState) anyInt() ir.Reg   { return s.ints[s.g.rng.Intn(len(s.ints))] }
func (s *randState) anyFloat() ir.Reg { return s.floats[s.g.rng.Intn(len(s.floats))] }

func (s *randState) label(prefix string) string {
	s.labels++
	return fmt.Sprintf("%s%d", prefix, s.labels)
}

// block emits n statements at the given structural depth.
func (s *randState) block(depth, n int) {
	for i := 0; i < n; i++ {
		s.stmt(depth)
	}
}

func (s *randState) stmt(depth int) {
	g := s.g
	choice := g.rng.Intn(10)
	switch {
	case choice < 4:
		s.arith()
	case choice < 5 && s.base != ir.NoReg:
		s.memory()
	case choice < 6:
		s.b.Emit(s.anyInt())
	case choice < 7 && len(g.leafs) > 0:
		callee := g.leafs[g.rng.Intn(len(g.leafs))]
		f := g.prog.Func(callee)
		args := make([]ir.Reg, len(f.Params))
		for i, p := range f.Params {
			if f.RegClass(p) == ir.ClassFloat {
				args[i] = s.anyFloat()
			} else {
				args[i] = s.anyInt()
			}
		}
		s.ints = append(s.ints, s.b.Call(callee, ir.ClassInt, args...))
	case choice < 8 && depth > 0:
		s.diamond(depth)
	case depth > 0:
		s.loop(depth)
	default:
		s.arith()
	}
}

// arith appends one random pure computation to a pool.
func (s *randState) arith() {
	g := s.g
	b := s.b
	if g.rng.Intn(2) == 0 {
		x, y := s.anyInt(), s.anyInt()
		var v ir.Reg
		switch g.rng.Intn(10) {
		case 0:
			v = b.Add(x, y)
		case 1:
			v = b.Sub(x, y)
		case 2:
			v = b.Mul(x, y)
		case 3:
			// Guarded division: denominator (y & 7) + 1 is never zero.
			den := b.Add(b.And(y, b.ConstI(7)), b.ConstI(1))
			v = b.Div(x, den)
		case 4:
			den := b.Add(b.And(y, b.ConstI(15)), b.ConstI(1))
			v = b.Rem(x, den)
		case 5:
			v = b.Xor(x, y)
		case 6:
			v = b.And(x, y)
		case 7:
			v = b.Or(x, y)
		case 8:
			v = b.Shl(x, b.And(y, b.ConstI(7)))
		default:
			v = b.CmpLT(x, y)
		}
		s.ints = append(s.ints, v)
		if len(s.ints) > 12 {
			s.ints = s.ints[1:]
		}
		return
	}
	x, y := s.anyFloat(), s.anyFloat()
	var v ir.Reg
	switch g.rng.Intn(7) {
	case 0:
		v = b.FAdd(x, y)
	case 1:
		v = b.FSub(x, y)
	case 2:
		v = b.FMul(x, y)
	case 3:
		// Guarded: denominator 1 + |y| is never zero.
		v = b.FDiv(x, b.FAdd(b.ConstF(1), b.FAbs(y)))
	case 4:
		v = b.FAbs(x)
	case 5:
		v = b.FSqrt(b.FAbs(x))
	default:
		v = b.I2F(s.anyInt())
	}
	s.floats = append(s.floats, v)
	if len(s.floats) > 12 {
		s.floats = s.floats[1:]
	}
}

// memory emits an in-bounds load or store on the shared array.
func (s *randState) memory() {
	g := s.g
	b := s.b
	idx := b.And(s.anyInt(), b.ConstI(int64(s.g.opts.ArrayWords-1)))
	addr := b.Add(s.base, b.Mul(idx, b.ConstI(ir.WordBytes)))
	if g.rng.Intn(2) == 0 {
		s.ints = append(s.ints, b.Load(addr))
	} else {
		b.Store(s.anyInt(), addr)
	}
}

// diamond emits if/else joining back, both arms generated.
func (s *randState) diamond(depth int) {
	b := s.b
	then := s.label("then")
	els := s.label("else")
	join := s.label("join")
	cond := b.CmpLT(s.anyInt(), s.anyInt())
	b.CBr(cond, then, els)

	// Both arms must leave the pools with the same registers for the join
	// to be well-defined, so arms write through pre-allocated join regs.
	outI := b.Reg(ir.ClassInt, "ji")
	outF := b.Reg(ir.ClassFloat, "jf")
	snapshotI := append([]ir.Reg(nil), s.ints...)
	snapshotF := append([]ir.Reg(nil), s.floats...)

	b.Label(then)
	s.block(depth-1, 1+s.g.rng.Intn(3))
	b.CopyTo(outI, s.anyInt())
	b.CopyTo(outF, s.anyFloat())
	b.Jmp(join)

	s.ints = append([]ir.Reg(nil), snapshotI...)
	s.floats = append([]ir.Reg(nil), snapshotF...)
	b.Label(els)
	s.block(depth-1, 1+s.g.rng.Intn(3))
	b.CopyTo(outI, s.anyInt())
	b.CopyTo(outF, s.anyFloat())
	b.Jmp(join)

	b.Label(join)
	s.ints = append(snapshotI, outI)
	s.floats = append(snapshotF, outF)
}

// loop emits a bounded counted loop whose body updates an accumulator.
func (s *randState) loop(depth int) {
	b := s.b
	head := s.label("head")
	body := s.label("body")
	exit := s.label("exit")

	trip := int64(2 + s.g.rng.Intn(6))
	i := b.Copy(b.ConstI(0))
	limit := b.ConstI(trip)
	one := b.ConstI(1)
	acc := b.Copy(s.anyInt())
	snapshotI := append([]ir.Reg(nil), s.ints...)
	snapshotF := append([]ir.Reg(nil), s.floats...)

	b.Jmp(head)
	b.Label(head)
	b.CBr(b.CmpLT(i, limit), body, exit)

	b.Label(body)
	s.block(depth-1, 1+s.g.rng.Intn(3))
	b.CopyTo(acc, b.Add(acc, s.anyInt()))
	b.CopyTo(i, b.Add(i, one))
	b.Jmp(head)

	b.Label(exit)
	s.ints = append(snapshotI, acc)
	s.floats = snapshotF
}
