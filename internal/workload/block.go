package workload

import (
	"math/rand"

	"ccmem/internal/ir"
)

// blockRoutines builds the giant-basic-block family: fpppp (SPEC's famous
// multi-hundred-instruction straight-line block with extreme floating
// pressure), twldrv (a large mixed int/float loop nest), and deseco (a
// medium multi-phase body) — the heaviest spillers in the paper's Table 1.
func blockRoutines() []Routine {
	return []Routine{
		// fpppp's spill footprint deliberately exceeds a 512-byte CCM (but
		// fits 1024), so it appears in Table 3. It makes no calls.
		{Name: "fpppp", Paper: "fpppp", Family: "block",
			Build: func() (*ir.Program, error) { return buildBigBlock("fpppp", 100, 900, 11, 12, 2, auxNone) }},
		// twldrv calls a helper that itself spills, exercising the
		// interprocedural high-water stacking; it also overflows 512 bytes.
		{Name: "twldrv", Paper: "twldrv", Family: "block",
			Build: func() (*ir.Program, error) { return buildBigBlock("twldrv", 64, 460, 23, 20, 2, auxHeavy) }},
		// deseco, debflu and bilan call small helpers mid-web, so most of
		// their spilled values are live across a call: the intraprocedural
		// post-pass must leave them heavyweight while the call-graph
		// variant promotes them (the paper's Post-Pass vs w/-Call-Graph gap).
		{Name: "deseco", Paper: "deseco", Family: "block",
			Build: func() (*ir.Program, error) { return buildBigBlock("deseco", 40, 220, 37, 24, 2, auxLight) }},
		{Name: "pastem", Paper: "pastem", Family: "block",
			Build: func() (*ir.Program, error) { return buildBigBlock("pastem", 16, 90, 41, 24, 1, auxNone) }},
		{Name: "debflu", Paper: "debflu", Family: "block",
			Build: func() (*ir.Program, error) { return buildBigBlock("debflu", 28, 160, 53, 24, 2, auxLight) }},
		{Name: "bilan", Paper: "bilan", Family: "block",
			Build: func() (*ir.Program, error) { return buildBigBlock("bilan", 24, 130, 59, 24, 2, auxLight) }},
		// paroi and energyx are the paper's heavy spillers for which "no
		// compaction was possible": one loop, one phase, everything live.
		{Name: "paroi", Paper: "paroi", Family: "block",
			Build: func() (*ir.Program, error) { return buildBigBlock("paroi", 100, 1000, 67, 12, 1, auxNone) }},
		{Name: "drepvi", Paper: "drepvi", Family: "block",
			Build: func() (*ir.Program, error) { return buildBigBlock("drepvi", 24, 120, 71, 24, 2, auxLight) }},
	}
}

// aux selects the helper-function style a big-block kernel calls mid-web.
type aux int

const (
	auxNone  aux = iota // leaf kernel
	auxLight            // tiny helper, no spills (high water 0)
	auxHeavy            // helper with its own spills (non-zero high water)
)

// buildAux constructs the helper. The light version is a few instructions;
// the heavy version evaluates a parallel polynomial web that spills on the
// 32-register machine, giving callers a non-zero CCM high-water mark to
// stack above in interprocedural mode.
func buildAux(name string, kind aux) *ir.Func {
	b := newKB(name, ir.ClassFloat)
	x := b.Param(ir.ClassFloat, "x")
	b.Label("entry")
	if kind == auxLight {
		r := b.FDiv(x, b.FAdd(b.ConstF(1), b.FAbs(x)))
		b.RetVal(b.FAdd(r, b.ConstF(0.03125)))
		return b.MustFinish()
	}
	// Heavy: 40 coupled lanes seeded from x, iterated a few times.
	const lanes = 40
	vals := make([]ir.Reg, lanes)
	for i := range vals {
		vals[i] = b.FAdd(x, b.ConstF(float64(i)*0.01))
	}
	for round := 0; round < 3; round++ {
		next := make([]ir.Reg, lanes)
		for i := range vals {
			next[i] = b.FAdd(b.FMul(vals[i], b.ConstF(0.5)), b.FMul(vals[(i+7)%lanes], b.ConstF(0.25)))
		}
		vals = next
	}
	acc := vals[0]
	for i := 1; i < lanes; i++ {
		acc = b.FAdd(acc, vals[i])
	}
	b.RetVal(acc)
	return b.MustFinish()
}

// buildBigBlock constructs a kernel whose loop body is one long
// straight-line expression web: nIn inputs are loaded, nOps dependent
// floating operations follow with deliberately long-range operand reuse
// (the shape that makes fpppp's block so hard to allocate), and the last
// values are reduced into outputs. The web is generated from a fixed seed,
// so the suite is deterministic.
func buildBigBlock(name string, nIn, nOps int, seed int64, iters int64, phases int, auxKind aux) (*ir.Program, error) {
	in := name + "_in"
	out := name + "_out"
	inWords := int64(nIn)
	outWords := int64(8) * int64(phases)

	rng := rand.New(rand.NewSource(seed))
	b := newKB(name, ir.ClassNone)
	b.Label("entry")
	inBase := b.Addr(in, 0)
	outBase := b.Addr(out, 0)

	// Each phase is its own loop over an independently generated web, so a
	// multi-phase routine presents the compactor with disjoint spill
	// lifetimes (Table 1).
	for ph := 0; ph < phases; ph++ {
		phOff := int64(ph) * 8
		b.LoopConst(0, iters, func(k ir.Reg) {
			vals := make([]ir.Reg, 0, nIn+nOps)
			for i := 0; i < nIn; i++ {
				vals = append(vals, b.FLoadIdx(inBase, k, 0, int64(i%int(inWords))))
			}
			// Long-range web: operands drawn uniformly over everything
			// produced so far, so early values stay live deep into the block.
			for i := 0; i < nOps; i++ {
				x := vals[rng.Intn(len(vals))]
				y := vals[rng.Intn(len(vals))]
				var v ir.Reg
				switch rng.Intn(4) {
				case 0:
					v = b.FAdd(x, y)
				case 1:
					v = b.FSub(x, y)
				case 2:
					v = b.FMul(x, y)
				default:
					v = b.FAdd(b.FMul(x, b.ConstF(0.5)), y)
				}
				vals = append(vals, v)
				// Mid-web helper call: everything live here is live
				// across the call.
				if auxKind != auxNone && i == nOps/2 {
					vals = append(vals, b.Call(name+"_aux", ir.ClassFloat, v))
				}
			}
			for j := int64(0); j < 8; j++ {
				acc := vals[len(vals)-1-int(j)]
				acc = b.FAdd(acc, vals[len(vals)-9-int(j)])
				b.FStoreIdx(acc, outBase, k, 0, phOff+j)
			}
		})
	}
	b.Ret()
	kern := b.MustFinish()

	main := driverMain(
		driverCall{callee: "init_" + in},
		driverCall{callee: name},
		driverCall{callee: "check_" + name},
	)
	funcs := []*ir.Func{
		main,
		fillFunc(in, inWords, seed*3+1),
		kern,
		checksumFunc("check_"+name, out, outWords),
	}
	if auxKind != auxNone {
		funcs = append(funcs, buildAux(name+"_aux", auxKind))
	}
	return program(
		[]*ir.Global{fglobal(in, inWords), fglobal(out, outWords)},
		funcs...,
	)
}
