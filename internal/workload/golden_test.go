package workload

import (
	"testing"

	"ccmem/internal/sim"
)

// goldenTraces pins the baseline emit trace of every suite routine. Any
// change here means the workload definition changed — which silently
// invalidates all recorded experiment numbers — so it must be deliberate:
// regenerate with the snippet in the test failure message.
var goldenTraces = map[string][]string{
	"radb2":   {"82.76517535746093"},
	"radb2X":  {"77.55426274519412"},
	"radf2":   {"82.76517535746093"},
	"radf2X":  {"77.5542627451941"},
	"radb3":   {"142.28142743557692"},
	"radb3X":  {"142.28142743557692"},
	"radf3":   {"142.28142743557683"},
	"radf3X":  {"142.28142743557683"},
	"radb4":   {"192.32493188977242"},
	"radb4X":  {"192.32493188977242"},
	"radf4":   {"192.32493188977242"},
	"radf4X":  {"192.32493188977242"},
	"radb5":   {"221.95823449641466"},
	"radb5X":  {"221.95823449641466"},
	"radf5":   {"221.95823449641455"},
	"radf5X":  {"221.95823449641455"},
	"radbgX":  {"281.3539902726194"},
	"radfgX":  {"281.3539902726188"},
	"rffti1":  {"1.0985656828665924e-13"},
	"fpppp":   {"11.565430074672431"},
	"twldrv":  {"0.8517443529181298"},
	"deseco":  {"25.37903474271753"},
	"pastem":  {"11.705748667454623"},
	"debflu":  {"14.213949764143326"},
	"bilan":   {"16.075219036378257"},
	"paroi":   {"7.607344956383292"},
	"drepvi":  {"8.042822953234113"},
	"jacld":   {"-16512.175726873757"},
	"jacu":    {"-9477.931279644903"},
	"rhs":     {"-20.07480888894957"},
	"erhs":    {"-16.080722433054532"},
	"blts":    {"27.79530765943397"},
	"buts":    {"27.16504386766694"},
	"subb":    {"-10586.70437373682"},
	"supp":    {"-10586.70437373682"},
	"decomp":  {"32.317589790461724"},
	"svd":     {"46.18102279089862"},
	"vslvlpX": {"126.05986962519452"},
	"vslvlxX": {"165.45734020706365"},
	"saturr":  {"395.1983446585323"},
	"colbur":  {"278.10324197515604"},
	"ddeflu":  {"348.86386517566933"},
	"prophy":  {"128.53005121831774"},
	"dyeh":    {"83.02438676491522"},
	"efill":   {"81.4476412150084"},
	"getbX":   {"583.4330448210239"},
	"putbX":   {"686.6094812128722"},
	"parmvrX": {"964.6759846851637"},
	"parmveX": {"766.1957319796784"},
	"parmovX": {"875.0403131693602"},
	"energyx": {"-3832.638875831007"},
	"pdiagX":  {"155.7454867600621"},
	"tomcatv": {"162.63855529704685"},
	"smoothX": {"40.17079609353095"},
	"advbndX": {"2049.479909169076"},
	"fieldX":  {"326.0413984447718"},
	"initX":   {"2375.5093307907878"},
	"slv2xyX": {"45.61698281019926"},
	"inisla":  {"2285.3928624410273"},
	"fir":     {"84.61814399544625"},
	"firX":    {"134.76281440581943"},
	"biquad":  {"65.10721932474361"},
	"biquadX": {"53.20852153892588"},
	"lmsX":    {"0.7754979823249603"},
}

func TestGoldenTraces(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			want, ok := goldenTraces[r.Name]
			if !ok {
				t.Fatalf("no golden trace for %s — add it to goldenTraces", r.Name)
			}
			p, err := r.Build()
			if err != nil {
				t.Fatal(err)
			}
			st, err := sim.Run(p, "main", sim.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if len(st.Output) != len(want) {
				t.Fatalf("trace length %d, golden %d", len(st.Output), len(want))
			}
			for i, v := range st.Output {
				if v.String() != want[i] {
					t.Fatalf("emit %d = %s, golden %s (workload changed? regenerate goldens deliberately)",
						i, v.String(), want[i])
				}
			}
		})
	}
	if len(goldenTraces) != len(All()) {
		t.Fatalf("golden map has %d entries for %d routines", len(goldenTraces), len(All()))
	}
}
