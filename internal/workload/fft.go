package workload

import (
	"fmt"
	"math"

	"ccmem/internal/ir"
)

// fftRoutines builds the FFTPACK-style radix passes. The plain versions
// compute one butterfly at a time (modest pressure, like the paper's
// untransformed FFT routines); the X versions accumulate every output in
// parallel across an unrolled pair of iterations, reproducing the register
// pressure of the paper's transformed radb2X..radf5X routines.
func fftRoutines() []Routine {
	var rs []Routine
	for _, radix := range []int{2, 3, 4, 5} {
		for _, fwd := range []bool{false, true} {
			base := "radb"
			paper := "radb"
			if fwd {
				base, paper = "radf", "radf"
			}
			name := fmt.Sprintf("%s%d", base, radix)
			r, f := radix, fwd
			rs = append(rs, Routine{
				Name:   name,
				Paper:  fmt.Sprintf("%s%d", paper, radix),
				Family: "fft",
				Build:  func() (*ir.Program, error) { return buildRadix(fmt.Sprintf("%s%d", base, r), r, f, 1, 48) },
			})
			xUnroll := map[int]int{2: 5, 3: 4, 4: 3, 5: 2}[radix]
			xu := xUnroll
			rs = append(rs, Routine{
				Name:   name + "X",
				Paper:  fmt.Sprintf("%s%dX", paper, radix),
				Family: "fft",
				Build:  func() (*ir.Program, error) { return buildRadix(fmt.Sprintf("%s%dX", base, r), r, f, xu, 48) },
			})
		}
	}
	// General-radix passes (the paper's radbgX / radfgX): radix 7,
	// unrolled — the widest butterflies in the suite.
	rs = append(rs, Routine{
		Name: "radbgX", Paper: "radbgX", Family: "fft",
		Build: func() (*ir.Program, error) { return buildRadix("radbgX", 7, false, 2, 42) },
	})
	rs = append(rs, Routine{
		Name: "radfgX", Paper: "radfgX", Family: "fft",
		Build: func() (*ir.Program, error) { return buildRadix("radfgX", 7, true, 2, 42) },
	})
	// rffti-style setup routine (wavetable initialization; light pressure).
	rs = append(rs, Routine{
		Name:   "rffti1",
		Paper:  "rffti1x",
		Family: "fft",
		Build:  buildRffti,
	})
	return rs
}

// buildRadix constructs a radix-r DFT butterfly pass over l1 butterflies.
// CC holds the inputs (l1*r complex values), WA the per-butterfly twiddle
// factors, CH the outputs. unroll > 1 interleaves that many butterflies,
// keeping all of their inputs and output accumulators live at once.
func buildRadix(name string, radix int, forward bool, unroll int, l1 int64) (*ir.Program, error) {
	cc := name + "_cc"
	ch := name + "_ch"
	wa := name + "_wa"
	ccWords := l1 * int64(radix) * 2
	waWords := l1 * int64(radix-1) * 2

	b := newKB(name, ir.ClassNone)
	b.Label("entry")
	ccBase := b.Addr(cc, 0)
	chBase := b.Addr(ch, 0)
	waBase := b.Addr(wa, 0)

	sign := 1.0
	if forward {
		sign = -1.0
	}

	iters := l1 / int64(unroll)
	b.LoopConst(0, iters, func(k ir.Reg) {
		type cval struct{ re, im ir.Reg }
		ins := make([][]cval, unroll)
		outs := make([][]cval, unroll)
		kk := make([]ir.Reg, unroll)
		for u := 0; u < unroll; u++ {
			kk[u] = b.Add(b.Mul(k, b.ConstI(int64(unroll))), b.ConstI(int64(u)))
		}
		// Load and twiddle all inputs for every unrolled butterfly first —
		// this is what creates the X-variant pressure.
		for u := 0; u < unroll; u++ {
			ins[u] = make([]cval, radix)
			ccRow := b.Idx(ccBase, kk[u], int64(radix)*2, 0)
			waRow := b.Idx(waBase, kk[u], int64(radix-1)*2, 0)
			for m := 0; m < radix; m++ {
				re := b.FLoadAI(ccRow, int64(2*m)*ir.WordBytes)
				im := b.FLoadAI(ccRow, int64(2*m+1)*ir.WordBytes)
				if m > 0 {
					wre := b.FLoadAI(waRow, int64(2*(m-1))*ir.WordBytes)
					wim := b.FLoadAI(waRow, int64(2*(m-1)+1)*ir.WordBytes)
					// (re,im) *= (wre, sign*wim)
					tre := b.FSub(b.FMul(re, wre), b.FMul(b.FMul(im, wim), b.ConstF(sign)))
					tim := b.FAdd(b.FMul(b.FMul(re, wim), b.ConstF(sign)), b.FMul(im, wre))
					re, im = tre, tim
				}
				ins[u][m] = cval{re, im}
			}
		}
		// Butterfly. The unrolled variant accumulates every output in
		// parallel; the plain variant finishes one output before starting
		// the next (lower pressure).
		for u := 0; u < unroll; u++ {
			outs[u] = make([]cval, radix)
			for j := 0; j < radix; j++ {
				outs[u][j] = cval{b.Copy(ins[u][0].re), b.Copy(ins[u][0].im)}
			}
		}
		accumulate := func(u, j, m int) {
			ang := 2 * math.Pi * float64(j*m) / float64(radix)
			c := b.ConstF(math.Cos(ang))
			s := b.ConstF(sign * math.Sin(ang))
			re, im := ins[u][m].re, ins[u][m].im
			or := b.FAdd(outs[u][j].re, b.FSub(b.FMul(re, c), b.FMul(im, s)))
			oi := b.FAdd(outs[u][j].im, b.FAdd(b.FMul(re, s), b.FMul(im, c)))
			outs[u][j] = cval{or, oi}
		}
		if unroll > 1 {
			for m := 1; m < radix; m++ {
				for u := 0; u < unroll; u++ {
					for j := 0; j < radix; j++ {
						accumulate(u, j, m)
					}
				}
			}
		} else {
			for j := 0; j < radix; j++ {
				for m := 1; m < radix; m++ {
					accumulate(0, j, m)
				}
			}
		}
		for u := 0; u < unroll; u++ {
			for j := 0; j < radix; j++ {
				// CH[j*l1 + kk] layout: transposed butterfly output.
				row := b.Idx(chBase, kk[u], 2, int64(j)*l1*2)
				b.FStoreAI(outs[u][j].re, row, 0)
				b.FStoreAI(outs[u][j].im, row, ir.WordBytes)
			}
		}
	})
	b.Ret()
	kern := b.MustFinish()

	main := driverMain(
		driverCall{callee: "init_" + cc},
		driverCall{callee: "init_" + wa},
		driverCall{callee: name},
		driverCall{callee: "check_" + name},
	)
	return program(
		[]*ir.Global{fglobal(cc, ccWords), fglobal(ch, ccWords), fglobal(wa, waWords)},
		main,
		fillFunc(cc, ccWords, 1234+int64(radix)),
		fillFunc(wa, waWords, 777+int64(radix)),
		kern,
		checksumFunc("check_"+name, ch, ccWords),
	)
}

// buildRffti is a light-pressure wavetable initializer: trigonometric
// recurrences with a handful of live values (a routine that, like the
// paper's non-spilling majority, needs no spill code).
func buildRffti() (*ir.Program, error) {
	const words = 256
	b := newKB("rffti1", ir.ClassNone)
	b.Label("entry")
	base := b.Addr("rffti1_wa", 0)
	// cos/sin recurrence: w_{k+1} = w_k * w_1.
	c1 := b.ConstF(math.Cos(2 * math.Pi / 64))
	s1 := b.ConstF(math.Sin(2 * math.Pi / 64))
	cr := b.Copy(b.ConstF(1))
	ci := b.Copy(b.ConstF(0))
	b.LoopConst(0, words/2, func(i ir.Reg) {
		nr := b.FSub(b.FMul(cr, c1), b.FMul(ci, s1))
		ni := b.FAdd(b.FMul(cr, s1), b.FMul(ci, c1))
		b.CopyTo(cr, nr)
		b.CopyTo(ci, ni)
		row := b.Idx(base, i, 2, 0)
		b.FStoreAI(cr, row, 0)
		b.FStoreAI(ci, row, ir.WordBytes)
	})
	b.Ret()
	kern := b.MustFinish()

	main := driverMain(
		driverCall{callee: "rffti1"},
		driverCall{callee: "check_rffti1"},
	)
	return program(
		[]*ir.Global{fglobal("rffti1_wa", words)},
		main,
		kern,
		checksumFunc("check_rffti1", "rffti1_wa", words),
	)
}
