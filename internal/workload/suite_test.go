package workload

import (
	"math"
	"testing"

	"ccmem/internal/ir"
	"ccmem/internal/opt"
	"ccmem/internal/regalloc"
	"ccmem/internal/sim"
)

// TestSuiteRoutinesRun verifies every routine builds, passes the verifier,
// executes, emits at least one finite checksum, and survives the full
// optimize+allocate pipeline with identical output.
func TestSuiteRoutinesRun(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range All() {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			if seen[r.Name] {
				t.Fatalf("duplicate routine name %q", r.Name)
			}
			seen[r.Name] = true
			p, err := r.Build()
			if err != nil {
				t.Fatal(err)
			}
			if p.Func(r.Name) == nil {
				t.Fatalf("program lacks measured function %q", r.Name)
			}
			want, err := sim.Run(p.Clone(), "main", sim.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if len(want.Output) == 0 {
				t.Fatal("no checksum emitted")
			}
			for _, v := range want.Output {
				if v.IsFloat && (math.IsNaN(v.Float()) || math.IsInf(v.Float(), 0)) {
					t.Fatalf("non-finite checksum %v", v)
				}
			}

			if _, err := opt.OptimizeProgram(p); err != nil {
				t.Fatal(err)
			}
			for _, f := range p.Funcs {
				if _, err := regalloc.Allocate(f, regalloc.Options{}); err != nil {
					t.Fatalf("allocate %s: %v", f.Name, err)
				}
			}
			if err := ir.VerifyProgram(p, ir.VerifyOptions{}); err != nil {
				t.Fatal(err)
			}
			got, err := sim.Run(p, "main", sim.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if !sim.TracesEqual(got.Output, want.Output) {
				t.Fatalf("pipeline changed output: %v vs %v", got.Output, want.Output)
			}
		})
	}
	t.Logf("%d routines", len(seen))
}

// TestSuitePressureProfile reports which routines spill under the paper's
// 32+32 machine; the suite must contain a healthy mix of spilling and
// non-spilling routines (the paper: 59 of 122 spilled).
func TestSuitePressureProfile(t *testing.T) {
	spillers := 0
	total := 0
	for _, r := range All() {
		p, err := r.Build()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := opt.OptimizeProgram(p); err != nil {
			t.Fatal(err)
		}
		f := p.Func(r.Name)
		res, err := regalloc.Allocate(f, regalloc.Options{})
		if err != nil {
			t.Fatal(err)
		}
		total++
		if res.FrameBytes > 0 {
			spillers++
		}
		t.Logf("%-10s frameBytes=%-5d spilledRanges=%-4d rounds=%d", r.Name, res.FrameBytes, res.SpilledRanges, res.Rounds)
	}
	if spillers < total/4 {
		t.Errorf("only %d of %d routines spill; suite pressure too low", spillers, total)
	}
	t.Logf("%d of %d routines require spill code", spillers, total)
}

func TestProgramsBuildAndRun(t *testing.T) {
	for _, bp := range Programs() {
		bp := bp
		t.Run(bp.Name, func(t *testing.T) {
			p, err := bp.Build()
			if err != nil {
				t.Fatal(err)
			}
			st, err := sim.Run(p, "main", sim.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if len(st.Output) == 0 {
				t.Fatal("no output")
			}
		})
	}
}

func TestCombineErrors(t *testing.T) {
	if _, err := Combine("x", []string{"nosuch"}); err == nil {
		t.Fatal("unknown member accepted")
	}
	if _, err := Combine("x", []string{"rffti1", "rffti1"}); err == nil {
		t.Fatal("duplicate member accepted")
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("fpppp"); !ok {
		t.Fatal("fpppp missing")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("phantom routine")
	}
}

func TestProgramMembersExist(t *testing.T) {
	for _, bp := range Programs() {
		for _, m := range bp.Members {
			if _, ok := Lookup(m); !ok {
				t.Errorf("program %s references unknown routine %s", bp.Name, m)
			}
		}
	}
}
