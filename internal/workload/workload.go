// Package workload provides the benchmark suite for the reproduction. The
// paper evaluated 122 Fortran routines drawn from Forsythe et al.'s
// numerical-methods book, SPEC '89 and SPEC '95, of which 59 required
// spill code; those inputs are proprietary, so this package synthesizes
// ILOC kernels from the same algorithmic families the paper's routine
// names identify:
//
//   - FFTPACK real-FFT radix passes (radb2..radb5, radf2..radf5) — the
//     classic high-register-pressure butterflies;
//   - fpppp-style giant straight-line floating-point basic blocks;
//   - SPEC applu-style 5×5 block-solver kernels (jacld, jacu, rhs, erhs,
//     blts, buts);
//   - linear algebra (decomp, svd, vslvlp, ddeflu) and small utility
//     kernels (saturr, colbur, efill, getb, putb);
//   - tomcatv/smooth-style stencils and boundary sweeps;
//   - DSP kernels (FIR, biquad cascades, LMS) echoing the paper's
//     motivating domain.
//
// Routines with an 'X' suffix have been through a pressure-raising unroll
// transform, mirroring the paper's prefetching-enabling loop
// transformations that "greatly increase the register pressure".
//
// Every routine comes wrapped in a driver program whose main initializes
// the kernel's data deterministically (an LCG in ILOC), invokes the
// kernel, and emits checksums — the observable trace that the pipeline's
// semantic-equality oracle compares across compilation strategies.
package workload

import (
	"fmt"

	"ccmem/internal/ir"
)

// Routine is one measured kernel plus its driver program.
type Routine struct {
	Name   string // function being measured; also the routine's suite name
	Paper  string // the paper-routine this kernel echoes
	Family string // kernel family for grouping/reporting
	Build  func() (*ir.Program, error)
}

// All returns the full suite in deterministic order.
func All() []Routine {
	var rs []Routine
	rs = append(rs, fftRoutines()...)
	rs = append(rs, blockRoutines()...)
	rs = append(rs, appluRoutines()...)
	rs = append(rs, linalgRoutines()...)
	rs = append(rs, stencilRoutines()...)
	rs = append(rs, dspRoutines()...)
	return rs
}

// Lookup returns the routine with the given name.
func Lookup(name string) (Routine, bool) {
	for _, r := range All() {
		if r.Name == name {
			return r, true
		}
	}
	return Routine{}, false
}

// ---- construction helpers shared by the kernel families ----

// kb wraps ir.Builder with loop sugar.
type kb struct {
	*ir.Builder
	loopN int
}

func newKB(name string, ret ir.Class) *kb { return &kb{Builder: ir.NewBuilder(name, ret)} }

// Loop emits "for i := lo; i < hi; i++ { body(i) }" and leaves the builder
// positioned after the loop.
func (b *kb) Loop(lo, hi ir.Reg, body func(i ir.Reg)) {
	b.loopN++
	name := fmt.Sprintf("L%d", b.loopN)
	i := b.Copy(lo)
	one := b.ConstI(1)
	b.Jmp(name + "_head")
	b.Label(name + "_head")
	b.CBr(b.CmpLT(i, hi), name+"_body", name+"_exit")
	b.Label(name + "_body")
	body(i)
	b.CopyTo(i, b.Add(i, one))
	b.Jmp(name + "_head")
	b.Label(name + "_exit")
}

// LoopConst is Loop with constant bounds.
func (b *kb) LoopConst(lo, hi int64, body func(i ir.Reg)) {
	b.Loop(b.ConstI(lo), b.ConstI(hi), body)
}

// Idx computes base + i*stride + off (bytes) for word-indexed access.
func (b *kb) Idx(base, i ir.Reg, strideWords int64, offWords int64) ir.Reg {
	byteOff := b.Mul(i, b.ConstI(strideWords*ir.WordBytes))
	addr := b.Add(base, byteOff)
	if offWords != 0 {
		addr = b.Add(addr, b.ConstI(offWords*ir.WordBytes))
	}
	return addr
}

// FLoadIdx loads array[i*stride + off] of floats.
func (b *kb) FLoadIdx(base, i ir.Reg, strideWords, offWords int64) ir.Reg {
	return b.FLoadAI(b.Idx(base, i, strideWords, 0), offWords*ir.WordBytes)
}

// FStoreIdx stores v into array[i*stride + off].
func (b *kb) FStoreIdx(v, base, i ir.Reg, strideWords, offWords int64) {
	b.FStoreAI(v, b.Idx(base, i, strideWords, 0), offWords*ir.WordBytes)
}

// program assembles globals plus functions, reporting the first error.
func program(globals []*ir.Global, funcs ...*ir.Func) (*ir.Program, error) {
	p := &ir.Program{}
	for _, g := range globals {
		if err := p.AddGlobal(g); err != nil {
			return nil, err
		}
	}
	for _, f := range funcs {
		if err := p.AddFunc(f); err != nil {
			return nil, err
		}
	}
	if err := ir.VerifyProgram(p, ir.VerifyOptions{}); err != nil {
		return nil, err
	}
	return p, nil
}

// fillFunc builds "<array>_init": fills global arr (words long) with a
// deterministic LCG stream scaled into (0, 1) floats.
func fillFunc(arr string, words int64, seed int64) *ir.Func {
	b := newKB("init_"+arr, ir.ClassNone)
	b.Label("entry")
	base := b.Addr(arr, 0)
	x := b.Copy(b.ConstI(seed))
	mulc := b.ConstI(1103515245)
	addc := b.ConstI(12345)
	maskc := b.ConstI(0x7fffffff)
	scale := b.ConstF(1.0 / float64(0x80000000))
	b.LoopConst(0, words, func(i ir.Reg) {
		b.CopyTo(x, b.And(b.Add(b.Mul(x, mulc), addc), maskc))
		v := b.FMul(b.I2F(x), scale)
		b.FStoreIdx(v, base, i, 1, 0)
	})
	b.Ret()
	return b.MustFinish()
}

// checksumFunc builds "<name>": emits the float sum of global arr.
func checksumFunc(name, arr string, words int64) *ir.Func {
	b := newKB(name, ir.ClassNone)
	b.Label("entry")
	base := b.Addr(arr, 0)
	acc := b.Copy(b.ConstF(0))
	b.LoopConst(0, words, func(i ir.Reg) {
		b.CopyTo(acc, b.FAdd(acc, b.FLoadIdx(base, i, 1, 0)))
	})
	b.Emit(acc)
	b.Ret()
	return b.MustFinish()
}

// driverCall describes one call made by a generated driver main.
type driverCall struct {
	callee string
	args   []int64 // integer literal arguments
}

// driverMain builds a main that performs the listed calls in order.
func driverMain(calls ...driverCall) *ir.Func {
	b := newKB("main", ir.ClassNone)
	b.Label("entry")
	for _, c := range calls {
		args := make([]ir.Reg, len(c.args))
		for i, v := range c.args {
			args[i] = b.ConstI(v)
		}
		b.Call(c.callee, ir.ClassNone, args...)
	}
	b.Ret()
	return b.MustFinish()
}

// fglobal declares a float array global of the given word count.
func fglobal(name string, words int64) *ir.Global {
	return &ir.Global{Name: name, Words: int(words)}
}
