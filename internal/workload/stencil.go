package workload

import (
	"ccmem/internal/ir"
)

// stencilRoutines builds the mesh/stencil family: tomcatv-style
// relaxation, unrolled smoothers and field updates (smoothX, fieldX,
// slv2xyX), boundary sweeps (advbndX) and initialization recurrences
// (initX).
func stencilRoutines() []Routine {
	return []Routine{
		{Name: "tomcatv", Paper: "tomcatv", Family: "stencil",
			Build: func() (*ir.Program, error) { return buildTomcatv("tomcatv", 18) }},
		{Name: "smoothX", Paper: "smoothX", Family: "stencil",
			Build: func() (*ir.Program, error) { return buildSmooth("smoothX", 96, 14) }},
		{Name: "advbndX", Paper: "advbndX", Family: "stencil",
			Build: func() (*ir.Program, error) { return buildAdvbnd("advbndX", 64, 18) }},
		{Name: "fieldX", Paper: "fieldX", Family: "stencil",
			Build: func() (*ir.Program, error) { return buildField("fieldX", 64, 12) }},
		{Name: "initX", Paper: "initX", Family: "stencil",
			Build: func() (*ir.Program, error) { return buildInitX("initX", 128, 28) }},
		{Name: "slv2xyX", Paper: "slv2xyX", Family: "stencil",
			Build: func() (*ir.Program, error) { return buildSmooth("slv2xyX", 96, 16) }},
		{Name: "inisla", Paper: "inisla", Family: "stencil",
			Build: func() (*ir.Program, error) { return buildInitX("inisla", 96, 36) }},
	}
}

// buildTomcatv is a 2D 9-point mesh relaxation over two coordinate arrays
// in two sequential loop nests (residual computation, then correction),
// the tomcatv shape: moderate pressure, several disjoint phases.
func buildTomcatv(name string, n int64) (*ir.Program, error) {
	x := name + "_x"
	y := name + "_y"
	rx := name + "_rx"
	words := n * n
	b := newKB(name, ir.ClassNone)
	b.Label("entry")
	xB := b.Addr(x, 0)
	yB := b.Addr(y, 0)
	rB := b.Addr(rx, 0)
	nR := b.ConstI(n)
	one := b.ConstI(1)
	nm1 := b.Sub(nR, one)

	// Phase 1: residuals from the 9-point neighbourhood of both fields.
	b.Loop(one, nm1, func(i ir.Reg) {
		rowOff := b.Mul(i, nR)
		b.Loop(one, nm1, func(j ir.Reg) {
			at := func(base ir.Reg, di, dj int64) ir.Reg {
				idx := b.Add(b.Add(rowOff, j), b.ConstI(di*n+dj))
				return b.FLoad(b.Idx(base, idx, 1, 0))
			}
			xxaa := b.FSub(at(xB, 0, 1), at(xB, 0, -1))
			yxaa := b.FSub(at(yB, 0, 1), at(yB, 0, -1))
			xeta := b.FSub(at(xB, 1, 0), at(xB, -1, 0))
			yeta := b.FSub(at(yB, 1, 0), at(yB, -1, 0))
			a := b.FAdd(b.FMul(xeta, xeta), b.FMul(yeta, yeta))
			c := b.FAdd(b.FMul(xxaa, xxaa), b.FMul(yxaa, yxaa))
			bb := b.FAdd(b.FMul(xxaa, xeta), b.FMul(yxaa, yeta))
			d2x := b.FSub(b.FAdd(at(xB, 0, 1), at(xB, 0, -1)), b.FMul(at(xB, 0, 0), b.ConstF(2)))
			d2y := b.FSub(b.FAdd(at(xB, 1, 0), at(xB, -1, 0)), b.FMul(at(xB, 0, 0), b.ConstF(2)))
			cross := b.FSub(b.FSub(b.FSub(at(xB, 1, 1), at(xB, 1, -1)), at(xB, -1, 1)), at(xB, -1, -1))
			res := b.FSub(b.FAdd(b.FMul(a, d2x), b.FMul(c, d2y)), b.FMul(bb, b.FMul(cross, b.ConstF(0.5))))
			b.FStore(res, b.Idx(rB, b.Add(rowOff, j), 1, 0))
		})
	})
	// Phase 2: damped correction.
	b.Loop(one, nm1, func(i ir.Reg) {
		rowOff := b.Mul(i, nR)
		b.Loop(one, nm1, func(j ir.Reg) {
			idx := b.Add(rowOff, j)
			old := b.FLoad(b.Idx(xB, idx, 1, 0))
			res := b.FLoad(b.Idx(rB, idx, 1, 0))
			b.FStore(b.FAdd(old, b.FMul(res, b.ConstF(0.05))), b.Idx(xB, idx, 1, 0))
		})
	})
	b.Ret()
	kern := b.MustFinish()

	main := driverMain(
		driverCall{callee: "init_" + x},
		driverCall{callee: "init_" + y},
		driverCall{callee: name},
		driverCall{callee: "check_" + name},
	)
	return program(
		[]*ir.Global{fglobal(x, words), fglobal(y, words), fglobal(rx, words)},
		main, fillFunc(x, words, 3), fillFunc(y, words, 5),
		kern, checksumFunc("check_"+name, x, words),
	)
}

// buildSmooth is a smoothX/slv2xyX-style unrolled 5-point smoother: the
// X transform computes `unroll` output points per iteration, so all their
// stencil windows are live together.
func buildSmooth(name string, n int64, unroll int) (*ir.Program, error) {
	a := name + "_a"
	o := name + "_o"
	words := n + int64(unroll) + 4
	b := newKB(name, ir.ClassNone)
	b.Label("entry")
	aB := b.Addr(a, 0)
	oB := b.Addr(o, 0)
	iters := n / int64(unroll)
	b.LoopConst(0, iters, func(k ir.Reg) {
		baseI := b.Mul(k, b.ConstI(int64(unroll)))
		// Load the whole window for all unrolled points first.
		win := make([]ir.Reg, unroll+4)
		for w := range win {
			win[w] = b.FLoad(b.Idx(aB, b.Add(baseI, b.ConstI(int64(w))), 1, 0))
		}
		outs := make([]ir.Reg, unroll)
		for u := 0; u < unroll; u++ {
			c := b.FMul(win[u+2], b.ConstF(0.4))
			n1 := b.FMul(b.FAdd(win[u+1], win[u+3]), b.ConstF(0.2))
			n2 := b.FMul(b.FAdd(win[u], win[u+4]), b.ConstF(0.1))
			outs[u] = b.FAdd(c, b.FAdd(n1, n2))
		}
		// A sharpening pass re-reads the raw window, so window and
		// smoothed values are simultaneously live (the X transform fused
		// two passes of the original smoother).
		for u := 0; u < unroll; u++ {
			sharp := b.FSub(b.FMul(outs[u], b.ConstF(1.25)), b.FMul(win[u+2], b.ConstF(0.25)))
			b.FStore(sharp, b.Idx(oB, b.Add(baseI, b.ConstI(int64(u))), 1, 0))
		}
	})
	b.Ret()
	kern := b.MustFinish()

	main := driverMain(
		driverCall{callee: "init_" + a},
		driverCall{callee: name},
		driverCall{callee: "check_" + name},
	)
	return program(
		[]*ir.Global{fglobal(a, words), fglobal(o, words)},
		main, fillFunc(a, words, 21), kern, checksumFunc("check_"+name, o, words),
	)
}

// buildAdvbnd is an advbndX-style boundary sweep: four short sequential
// loops (one per boundary edge) each with an unrolled update — disjoint
// phase lifetimes for the compactor, moderate pressure per phase.
func buildAdvbnd(name string, n int64, unroll int) (*ir.Program, error) {
	a := name + "_a"
	words := n * int64(unroll)
	b := newKB(name, ir.ClassNone)
	b.Label("entry")
	base := b.Addr(a, 0)
	for phase := 0; phase < 4; phase++ {
		coef := b.ConstF(0.8 + 0.1*float64(phase))
		b.LoopConst(0, n/2, func(i ir.Reg) {
			row := b.Idx(base, i, int64(unroll)*2, int64(phase%2)*int64(unroll))
			vals := make([]ir.Reg, unroll)
			for u := 0; u < unroll; u++ {
				vals[u] = b.FLoadAI(row, int64(u)*ir.WordBytes)
			}
			for u := 0; u < unroll; u++ {
				nv := b.FMul(b.FAdd(vals[u], vals[(u+1)%unroll]), coef)
				b.FStoreAI(nv, row, int64(u)*ir.WordBytes)
			}
		})
	}
	b.Ret()
	kern := b.MustFinish()

	main := driverMain(
		driverCall{callee: "init_" + a},
		driverCall{callee: name},
		driverCall{callee: "check_" + name},
	)
	return program(
		[]*ir.Global{fglobal(a, words)},
		main, fillFunc(a, words, 87), kern, checksumFunc("check_"+name, a, words),
	)
}

// buildField is a fieldX-style multi-array update: unrolled loads from
// three arrays feed coupled updates written back to two of them.
func buildField(name string, n int64, unroll int) (*ir.Program, error) {
	e := name + "_e"
	h := name + "_h"
	j := name + "_j"
	words := n * int64(unroll)
	b := newKB(name, ir.ClassNone)
	b.Label("entry")
	eB := b.Addr(e, 0)
	hB := b.Addr(h, 0)
	jB := b.Addr(j, 0)
	c1 := b.ConstF(0.9)
	c2 := b.ConstF(0.05)
	b.LoopConst(0, n, func(i ir.Reg) {
		eRow := b.Idx(eB, i, int64(unroll), 0)
		hRow := b.Idx(hB, i, int64(unroll), 0)
		jRow := b.Idx(jB, i, int64(unroll), 0)
		ev := make([]ir.Reg, unroll)
		hv := make([]ir.Reg, unroll)
		jv := make([]ir.Reg, unroll)
		for u := 0; u < unroll; u++ {
			ev[u] = b.FLoadAI(eRow, int64(u)*ir.WordBytes)
			hv[u] = b.FLoadAI(hRow, int64(u)*ir.WordBytes)
			jv[u] = b.FLoadAI(jRow, int64(u)*ir.WordBytes)
		}
		for u := 0; u < unroll; u++ {
			curl := b.FSub(hv[(u+1)%unroll], hv[u])
			ne := b.FAdd(b.FMul(ev[u], c1), b.FMul(b.FSub(curl, jv[u]), c2))
			nh := b.FSub(b.FMul(hv[u], c1), b.FMul(b.FSub(ev[(u+1)%unroll], ev[u]), c2))
			b.FStoreAI(ne, eRow, int64(u)*ir.WordBytes)
			b.FStoreAI(nh, hRow, int64(u)*ir.WordBytes)
		}
	})
	b.Ret()
	kern := b.MustFinish()

	main := driverMain(
		driverCall{callee: "init_" + e},
		driverCall{callee: "init_" + h},
		driverCall{callee: "init_" + j},
		driverCall{callee: name},
		driverCall{callee: "check_" + name},
	)
	return program(
		[]*ir.Global{fglobal(e, words), fglobal(h, words), fglobal(j, words)},
		main, fillFunc(e, words, 61), fillFunc(h, words, 67), fillFunc(j, words, 71),
		kern, checksumFunc("check_"+name, e, words),
	)
}

// buildInitX is an initX-style initializer: `unroll` parallel LCG/
// trigonometric-free recurrences carried across the loop in registers.
func buildInitX(name string, n int64, unroll int) (*ir.Program, error) {
	a := name + "_a"
	words := n * int64(unroll)
	b := newKB(name, ir.ClassNone)
	b.Label("entry")
	base := b.Addr(a, 0)
	carry := make([]ir.Reg, unroll)
	for u := range carry {
		carry[u] = b.Copy(b.ConstF(0.1 + 0.01*float64(u)))
	}
	k := b.ConstF(3.73)
	one := b.ConstF(1)
	b.LoopConst(0, n, func(i ir.Reg) {
		row := b.Idx(base, i, int64(unroll), 0)
		for u := 0; u < unroll; u++ {
			// Logistic-map step per lane; lanes coupled by neighbours.
			x := carry[u]
			nx := b.FMul(b.FMul(k, x), b.FSub(one, x))
			nx = b.FAdd(b.FMul(nx, b.ConstF(0.996)), b.FMul(carry[(u+1)%unroll], b.ConstF(0.004)))
			b.CopyTo(carry[u], nx)
			b.FStoreAI(nx, row, int64(u)*ir.WordBytes)
		}
	})
	b.Ret()
	kern := b.MustFinish()

	main := driverMain(
		driverCall{callee: name},
		driverCall{callee: "check_" + name},
	)
	return program(
		[]*ir.Global{fglobal(a, words)},
		main, kern, checksumFunc("check_"+name, a, words),
	)
}
