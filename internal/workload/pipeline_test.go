package workload

import (
	"fmt"
	"testing"

	"ccmem/internal/core"
	"ccmem/internal/ir"
	"ccmem/internal/opt"
	"ccmem/internal/regalloc"
	"ccmem/internal/sim"
)

// runTrace executes a program and returns its emit trace, failing the test
// on any fault.
func runTrace(t *testing.T, p *ir.Program, ccmBytes int64, what string) []sim.Value {
	t.Helper()
	st, err := sim.Run(p, "main", sim.Config{CCMBytes: ccmBytes})
	if err != nil {
		t.Fatalf("%s: %v", what, err)
	}
	return st.Output
}

// TestRandomProgramsAcrossPipeline is the central property test of the
// reproduction: for many seeded random programs, every stage and strategy
// combination must preserve the observable emit trace bit for bit, pass
// the IR verifier, and respect machine limits.
func TestRandomProgramsAcrossPipeline(t *testing.T) {
	const seeds = 120
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			base := RandomProgram(seed)
			want := runTrace(t, base.Clone(), 0, "baseline")
			if len(want) == 0 {
				t.Fatal("random program emits nothing")
			}

			// Stage 1: optimizer only.
			p1 := base.Clone()
			if _, err := opt.OptimizeProgram(p1); err != nil {
				t.Fatal(err)
			}
			if err := ir.VerifyProgram(p1, ir.VerifyOptions{}); err != nil {
				t.Fatalf("verify after opt: %v", err)
			}
			if got := runTrace(t, p1.Clone(), 0, "opt"); !sim.TracesEqual(got, want) {
				t.Fatalf("optimizer changed trace\nbase: %v\ngot:  %v", want, got)
			}

			// Stage 2: allocation at several register budgets, on the
			// optimized program.
			for _, k := range []int{4, 6, 32} {
				p2 := p1.Clone()
				for _, f := range p2.Funcs {
					if _, err := regalloc.Allocate(f, regalloc.Options{IntRegs: k, FloatRegs: k}); err != nil {
						t.Fatalf("k=%d: %v", k, err)
					}
					if len(f.Regs) != 2*k {
						t.Fatalf("k=%d: %s has %d physical regs", k, f.Name, len(f.Regs))
					}
				}
				if err := ir.VerifyProgram(p2, ir.VerifyOptions{}); err != nil {
					t.Fatalf("verify after alloc k=%d: %v", k, err)
				}
				if got := runTrace(t, p2.Clone(), 0, "alloc"); !sim.TracesEqual(got, want) {
					t.Fatalf("allocation k=%d changed trace", k)
				}

				// Stage 3a: post-pass promotion (both modes) + compaction.
				for _, ipa := range []bool{false, true} {
					p3 := p2.Clone()
					if _, err := core.PostPass(p3, core.PostPassOptions{CCMBytes: 256, Interprocedural: ipa}); err != nil {
						t.Fatalf("postpass ipa=%v: %v", ipa, err)
					}
					if _, err := core.CompactProgram(p3); err != nil {
						t.Fatal(err)
					}
					if err := ir.VerifyProgram(p3, ir.VerifyOptions{}); err != nil {
						t.Fatalf("verify after postpass: %v", err)
					}
					if got := runTrace(t, p3, 256, "postpass"); !sim.TracesEqual(got, want) {
						t.Fatalf("postpass ipa=%v k=%d changed trace", ipa, k)
					}
				}

				// Stage 3b: integrated CCM allocation.
				p4 := p1.Clone()
				for _, f := range p4.Funcs {
					if _, err := regalloc.Allocate(f, regalloc.Options{IntRegs: k, FloatRegs: k, CCMBytes: 256}); err != nil {
						t.Fatalf("integrated k=%d: %v", k, err)
					}
				}
				if err := ir.VerifyProgram(p4, ir.VerifyOptions{}); err != nil {
					t.Fatalf("verify after integrated: %v", err)
				}
				if got := runTrace(t, p4, 256, "integrated"); !sim.TracesEqual(got, want) {
					t.Fatalf("integrated k=%d changed trace", k)
				}
			}
		})
	}
}

// TestRandomProgramsDeterministic checks the generator itself: equal seeds
// yield identical programs; different seeds almost always differ.
func TestRandomProgramsDeterministic(t *testing.T) {
	a := RandomProgram(7).String()
	b := RandomProgram(7).String()
	if a != b {
		t.Fatal("same seed produced different programs")
	}
	c := RandomProgram(8).String()
	if a == c {
		t.Fatal("different seeds produced identical programs")
	}
}
