package workload

import (
	"fmt"

	"ccmem/internal/ir"
)

// BenchProgram is a whole program for the paper's Figures 3 and 4: a main
// that runs a set of suite routines end to end, so total running time
// (rather than per-routine cycles) can be compared across CCM strategies.
type BenchProgram struct {
	Name    string
	Members []string // routine names included
	Build   func() (*ir.Program, error)
}

// Programs returns the whole-program workloads, echoing the paper's
// benchmark programs (fpppp, doduc, applu, wave5/nave-style, fft,
// tomcatv, and Forsythe et al. drivers).
func Programs() []BenchProgram {
	defs := []struct {
		name    string
		members []string
	}{
		{"fftX", []string{"rffti1", "radf2X", "radf3X", "radf4X", "radf5X", "radb2X", "radb3X", "radb4X", "radb5X"}},
		{"fft", []string{"rffti1", "radf2", "radf3", "radf4", "radf5", "radb2", "radb3", "radb4", "radb5"}},
		{"applu", []string{"jacld", "jacu", "rhs", "erhs", "blts", "buts", "subb", "supp"}},
		{"doduc", []string{"deseco", "ddeflu", "debflu", "bilan", "pastem", "prophy", "saturr", "dyeh", "colbur"}},
		{"fpppp", []string{"fpppp", "twldrv", "efill"}},
		{"nave", []string{"fieldX", "initX", "parmvrX", "parmveX", "parmovX", "getbX", "putbX", "smoothX", "slv2xyX", "vslvlpX", "vslvlxX"}},
		{"tomcatv", []string{"tomcatv"}},
		{"forsythe", []string{"decomp", "svd", "efill"}},
		{"advect", []string{"advbndX", "smoothX", "fieldX"}},
		{"solve", []string{"blts", "buts", "vslvlpX", "decomp"}},
		{"dsp", []string{"fir", "firX", "biquad", "biquadX", "lmsX"}},
	}
	out := make([]BenchProgram, 0, len(defs))
	for _, d := range defs {
		d := d
		out = append(out, BenchProgram{
			Name:    d.name,
			Members: d.members,
			Build:   func() (*ir.Program, error) { return Combine(d.name, d.members) },
		})
	}
	return out
}

// Combine merges the driver programs of the named routines into one
// program whose main runs each routine's driver in sequence. Each
// routine's own main becomes run_<routine>.
func Combine(name string, members []string) (*ir.Program, error) {
	p := &ir.Program{}
	var calls []driverCall
	for _, m := range members {
		r, ok := Lookup(m)
		if !ok {
			return nil, fmt.Errorf("workload: program %s references unknown routine %q", name, m)
		}
		q, err := r.Build()
		if err != nil {
			return nil, err
		}
		for _, g := range q.Globals {
			if p.Global(g.Name) != nil {
				return nil, fmt.Errorf("workload: program %s: duplicate global %q (routine %s)", name, g.Name, m)
			}
			if err := p.AddGlobal(g); err != nil {
				return nil, err
			}
		}
		for _, f := range q.Funcs {
			if f.Name == "main" {
				f.Name = "run_" + m
			}
			if p.Func(f.Name) != nil {
				return nil, fmt.Errorf("workload: program %s: duplicate function %q (routine %s)", name, f.Name, m)
			}
			if err := p.AddFunc(f); err != nil {
				return nil, err
			}
		}
		calls = append(calls, driverCall{callee: "run_" + m})
	}
	if err := p.AddFunc(driverMain(calls...)); err != nil {
		return nil, err
	}
	if err := ir.VerifyProgram(p, ir.VerifyOptions{}); err != nil {
		return nil, err
	}
	return p, nil
}
