package workload

import (
	"ccmem/internal/ir"
)

// dspRoutines builds the DSP-flavored kernels the paper's introduction
// motivates ("these machines change quite rapidly ... small, fast, on-chip
// memory"): FIR filters with the tap weights held in registers, IIR
// biquad cascades carrying filter state, and an LMS adaptive filter whose
// coefficient update doubles the pressure. The X variants keep a whole
// unrolled window live, the classic software-pipelined DSP shape.
func dspRoutines() []Routine {
	return []Routine{
		{Name: "fir", Paper: "fir (DSP)", Family: "dsp",
			Build: func() (*ir.Program, error) { return buildFIR("fir", 8, 96) }},
		{Name: "firX", Paper: "firX (DSP)", Family: "dsp",
			Build: func() (*ir.Program, error) { return buildFIR("firX", 22, 96) }},
		{Name: "biquad", Paper: "biquad (DSP)", Family: "dsp",
			Build: func() (*ir.Program, error) { return buildBiquad("biquad", 3, 128) }},
		{Name: "biquadX", Paper: "biquadX (DSP)", Family: "dsp",
			Build: func() (*ir.Program, error) { return buildBiquad("biquadX", 8, 128) }},
		{Name: "lmsX", Paper: "lmsX (DSP)", Family: "dsp",
			Build: func() (*ir.Program, error) { return buildLMS("lmsX", 16, 96) }},
	}
}

// buildFIR is a direct-form FIR filter: the `taps` coefficients live in
// registers for the whole loop (the DSP idiom), and the sliding input
// window is carried in registers too, so ~2*taps values are always live.
func buildFIR(name string, taps int, n int64) (*ir.Program, error) {
	x := name + "_x"
	y := name + "_y"
	words := n + int64(taps)
	b := newKB(name, ir.ClassNone)
	b.Label("entry")
	xB := b.Addr(x, 0)
	yB := b.Addr(y, 0)

	// Tap weights: distinct constants held in registers across the loop.
	coefs := make([]ir.Reg, taps)
	for i := range coefs {
		coefs[i] = b.Copy(b.ConstF(1.0 / float64(i+2)))
	}
	// Initial window, carried in registers and shifted each iteration.
	win := make([]ir.Reg, taps)
	for i := range win {
		win[i] = b.Copy(b.FLoadAI(xB, int64(i)*ir.WordBytes))
	}
	b.LoopConst(0, n, func(i ir.Reg) {
		acc := b.FMul(win[0], coefs[0])
		for t := 1; t < taps; t++ {
			acc = b.FAdd(acc, b.FMul(win[t], coefs[t]))
		}
		b.FStore(acc, b.Idx(yB, i, 1, 0))
		// Shift the window and load the next sample.
		next := b.FLoad(b.Idx(xB, b.Add(i, b.ConstI(int64(taps))), 1, 0))
		for t := 0; t < taps-1; t++ {
			b.CopyTo(win[t], win[t+1])
		}
		b.CopyTo(win[taps-1], next)
	})
	b.Ret()
	kern := b.MustFinish()

	main := driverMain(
		driverCall{callee: "init_" + x},
		driverCall{callee: name},
		driverCall{callee: "check_" + name},
	)
	return program(
		[]*ir.Global{fglobal(x, words), fglobal(y, words)},
		main, fillFunc(x, words, int64(taps)*29), kern, checksumFunc("check_"+name, y, n),
	)
}

// buildBiquad is a cascade of `stages` direct-form-II biquad sections:
// each stage carries two state variables plus five coefficients, all in
// registers, so pressure grows linearly with the cascade depth.
func buildBiquad(name string, stages int, n int64) (*ir.Program, error) {
	x := name + "_x"
	y := name + "_y"
	b := newKB(name, ir.ClassNone)
	b.Label("entry")
	xB := b.Addr(x, 0)
	yB := b.Addr(y, 0)

	type stage struct {
		b0, b1, b2, a1, a2, z1, z2 ir.Reg
	}
	sts := make([]stage, stages)
	for s := range sts {
		fs := float64(s + 1)
		sts[s] = stage{
			b0: b.Copy(b.ConstF(0.2 + 0.01*fs)),
			b1: b.Copy(b.ConstF(0.4 + 0.01*fs)),
			b2: b.Copy(b.ConstF(0.2 - 0.005*fs)),
			a1: b.Copy(b.ConstF(-0.3 + 0.02*fs)),
			a2: b.Copy(b.ConstF(0.1 - 0.005*fs)),
			z1: b.Copy(b.ConstF(0)),
			z2: b.Copy(b.ConstF(0)),
		}
	}
	b.LoopConst(0, n, func(i ir.Reg) {
		v := b.FLoad(b.Idx(xB, i, 1, 0))
		for s := range sts {
			st := &sts[s]
			// Direct form II transposed:
			//   y = b0*v + z1;  z1 = b1*v - a1*y + z2;  z2 = b2*v - a2*y
			out := b.FAdd(b.FMul(st.b0, v), st.z1)
			nz1 := b.FAdd(b.FSub(b.FMul(st.b1, v), b.FMul(st.a1, out)), st.z2)
			nz2 := b.FSub(b.FMul(st.b2, v), b.FMul(st.a2, out))
			b.CopyTo(st.z1, nz1)
			b.CopyTo(st.z2, nz2)
			v = out
		}
		b.FStore(v, b.Idx(yB, i, 1, 0))
	})
	b.Ret()
	kern := b.MustFinish()

	main := driverMain(
		driverCall{callee: "init_" + x},
		driverCall{callee: name},
		driverCall{callee: "check_" + name},
	)
	return program(
		[]*ir.Global{fglobal(x, n), fglobal(y, n)},
		main, fillFunc(x, n, int64(stages)*37), kern, checksumFunc("check_"+name, y, n),
	)
}

// buildLMS is an LMS adaptive filter: per sample, a `taps`-point FIR
// produces the estimate, the error updates every coefficient, and both
// the window and the (mutable) coefficient vector live in registers —
// roughly 2*taps carried values plus the per-sample temporaries.
func buildLMS(name string, taps int, n int64) (*ir.Program, error) {
	x := name + "_x"
	d := name + "_d"
	w := name + "_w"
	words := n + int64(taps)
	b := newKB(name, ir.ClassNone)
	b.Label("entry")
	xB := b.Addr(x, 0)
	dB := b.Addr(d, 0)
	wB := b.Addr(w, 0)
	mu := b.ConstF(0.0078125)

	coefs := make([]ir.Reg, taps)
	win := make([]ir.Reg, taps)
	for i := range coefs {
		coefs[i] = b.Copy(b.ConstF(0))
		win[i] = b.Copy(b.FLoadAI(xB, int64(i)*ir.WordBytes))
	}
	b.LoopConst(0, n, func(i ir.Reg) {
		est := b.FMul(win[0], coefs[0])
		for t := 1; t < taps; t++ {
			est = b.FAdd(est, b.FMul(win[t], coefs[t]))
		}
		desired := b.FLoad(b.Idx(dB, i, 1, 0))
		errv := b.FMul(b.FSub(desired, est), mu)
		for t := 0; t < taps; t++ {
			b.CopyTo(coefs[t], b.FAdd(coefs[t], b.FMul(errv, win[t])))
		}
		next := b.FLoad(b.Idx(xB, b.Add(i, b.ConstI(int64(taps))), 1, 0))
		for t := 0; t < taps-1; t++ {
			b.CopyTo(win[t], win[t+1])
		}
		b.CopyTo(win[taps-1], next)
	})
	// Publish the converged coefficients for the checksum.
	for t := 0; t < taps; t++ {
		b.FStoreAI(coefs[t], wB, int64(t)*ir.WordBytes)
	}
	b.Ret()
	kern := b.MustFinish()

	main := driverMain(
		driverCall{callee: "init_" + x},
		driverCall{callee: "init_" + d},
		driverCall{callee: name},
		driverCall{callee: "check_" + name},
	)
	return program(
		[]*ir.Global{fglobal(x, words), fglobal(d, n), fglobal(w, int64(taps))},
		main, fillFunc(x, words, 83), fillFunc(d, n, 89),
		kern, checksumFunc("check_"+name, w, int64(taps)),
	)
}
