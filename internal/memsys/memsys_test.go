package memsys

import (
	"testing"
)

func mustCache(t *testing.T, cfg CacheConfig) *Cache {
	t.Helper()
	c, err := NewCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func base() CacheConfig {
	return CacheConfig{LineBytes: 32, Sets: 4, Ways: 1, HitCost: 1, MissCost: 10}
}

func TestValidation(t *testing.T) {
	bad := []CacheConfig{
		{LineBytes: 0, Sets: 4, Ways: 1, HitCost: 1, MissCost: 10},
		{LineBytes: 24, Sets: 4, Ways: 1, HitCost: 1, MissCost: 10}, // not pow2
		{LineBytes: 32, Sets: 3, Ways: 1, HitCost: 1, MissCost: 10},
		{LineBytes: 32, Sets: 4, Ways: 0, HitCost: 1, MissCost: 10},
		{LineBytes: 32, Sets: 4, Ways: 1, HitCost: 0, MissCost: 10},
		{LineBytes: 32, Sets: 4, Ways: 1, HitCost: 5, MissCost: 2}, // miss < hit
		{LineBytes: 32, Sets: 4, Ways: 1, HitCost: 1, MissCost: 10, VictimWays: -1},
	}
	for i, cfg := range bad {
		if _, err := NewCache(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if base().TotalBytes() != 128 {
		t.Fatalf("TotalBytes = %d", base().TotalBytes())
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mustCache(t, base())
	if cost := c.Access(64, false); cost != 10 {
		t.Fatalf("cold access cost %d", cost)
	}
	if cost := c.Access(64, false); cost != 1 {
		t.Fatalf("warm access cost %d", cost)
	}
	if cost := c.Access(64+24, true); cost != 1 {
		t.Fatalf("same-line store cost %d", cost)
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := mustCache(t, base())
	// Addresses 0 and 4*32=128 map to set 0 in a 4-set cache.
	c.Access(0, false)
	c.Access(128, false) // evicts 0
	if cost := c.Access(0, false); cost != 10 {
		t.Fatalf("conflict victim still resident (cost %d)", cost)
	}
}

func TestTwoWayLRU(t *testing.T) {
	cfg := base()
	cfg.Ways = 2
	c := mustCache(t, cfg)
	c.Access(0, false)   // set 0, way A
	c.Access(128, false) // set 0, way B
	c.Access(0, false)   // touch A: B becomes LRU
	c.Access(256, false) // evicts B (LRU)
	if cost := c.Access(0, false); cost != 1 {
		t.Fatal("MRU line evicted")
	}
	if cost := c.Access(128, false); cost != 10 {
		t.Fatal("LRU line survived")
	}
}

func TestVictimCache(t *testing.T) {
	cfg := base()
	cfg.VictimWays = 2
	c := mustCache(t, cfg)
	c.Access(0, false)
	c.Access(128, false) // evicts 0 into the victim buffer
	cost := c.Access(0, false)
	if cost != cfg.HitCost+1 {
		t.Fatalf("victim hit cost %d, want %d", cost, cfg.HitCost+1)
	}
	s := c.Stats()
	if s.VictimHits != 1 {
		t.Fatalf("victim hits = %d", s.VictimHits)
	}
	// The line swapped back: now a plain hit.
	if cost := c.Access(0, false); cost != 1 {
		t.Fatal("swap-back failed")
	}
}

func TestReset(t *testing.T) {
	c := mustCache(t, base())
	c.Access(0, false)
	c.Reset()
	if s := c.Stats(); s.Accesses != 0 {
		t.Fatal("stats survived reset")
	}
	if cost := c.Access(0, false); cost != 10 {
		t.Fatal("contents survived reset")
	}
}

func TestWriteBuffer(t *testing.T) {
	inner := mustCache(t, base())
	wb := NewWriteBuffer(inner, 1)
	if cost := wb.Access(0, true); cost != 1 {
		t.Fatalf("buffered store cost %d", cost)
	}
	// The store still installed the line: a subsequent load hits.
	if cost := wb.Access(0, false); cost != 1 {
		t.Fatalf("load after buffered store cost %d", cost)
	}
	// Loads pass through at the inner price.
	if cost := wb.Access(512, false); cost != 10 {
		t.Fatalf("cold load through buffer cost %d", cost)
	}
	wb.Reset()
	if wb.Stats().Accesses != 0 || inner.Stats().Accesses != 0 {
		t.Fatal("reset did not propagate")
	}
	if NewWriteBuffer(inner, 0).StoreCost != 1 {
		t.Fatal("store cost floor")
	}
}

func TestFlatMemory(t *testing.T) {
	m := &FlatMemory{Cost: 2}
	if m.Access(0, false) != 2 || m.Access(123456, true) != 2 {
		t.Fatal("flat cost")
	}
	if m.Stats().Accesses != 2 {
		t.Fatal("flat stats")
	}
	m.Reset()
	if m.Stats().Accesses != 0 {
		t.Fatal("flat reset")
	}
}
