// Package memsys models the memory hierarchies discussed in §4.3 of the
// paper ("More complex execution models"): a set-associative data cache,
// an optional victim cache behind it, and a write buffer in front of it.
// The paper's headline experiments use the flat 2-cycle model (no cache);
// these models power the ablation that compares "better cache / write
// buffer / victim cache" against the CCM.
package memsys

import (
	"fmt"

	"ccmem/internal/obs"
)

// Model prices one memory access. Access returns the cycle cost of a
// load (store=false) or store (store=true) at the given byte address.
type Model interface {
	Access(addr int64, store bool) int
	Reset()
	Stats() Stats
}

// Stats aggregates hit/miss behaviour of a Model.
type Stats struct {
	Accesses   int64
	Hits       int64
	Misses     int64
	VictimHits int64
	Evictions  int64
}

// Publish copies the snapshot into reg as gauges named
// "<prefix>.accesses", "<prefix>.hits", and so on. A simulation is
// deterministic, so the published values are too. No-op when reg is nil.
func (s Stats) Publish(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.Gauge(prefix + ".accesses").Set(s.Accesses)
	reg.Gauge(prefix + ".hits").Set(s.Hits)
	reg.Gauge(prefix + ".misses").Set(s.Misses)
	reg.Gauge(prefix + ".victim_hits").Set(s.VictimHits)
	reg.Gauge(prefix + ".evictions").Set(s.Evictions)
}

// CacheConfig describes a set-associative, write-allocate, LRU data cache.
type CacheConfig struct {
	LineBytes  int // power of two, ≥ 8
	Sets       int // power of two
	Ways       int // ≥ 1
	HitCost    int // cycles on hit
	MissCost   int // cycles on miss
	VictimWays int // 0 disables the victim cache
}

// TotalBytes returns the cache capacity.
func (c CacheConfig) TotalBytes() int { return c.LineBytes * c.Sets * c.Ways }

// Validate reports whether the configuration describes a buildable
// cache, so callers can reject bad geometry before handing the config
// to an API with no error path of its own.
func (c CacheConfig) Validate() error { return c.validate() }

func (c CacheConfig) validate() error {
	if c.LineBytes < 8 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("memsys: LineBytes %d must be a power of two ≥ 8", c.LineBytes)
	}
	if c.Sets < 1 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("memsys: Sets %d must be a power of two ≥ 1", c.Sets)
	}
	if c.Ways < 1 {
		return fmt.Errorf("memsys: Ways %d must be ≥ 1", c.Ways)
	}
	if c.HitCost < 1 || c.MissCost < c.HitCost {
		return fmt.Errorf("memsys: costs hit=%d miss=%d invalid", c.HitCost, c.MissCost)
	}
	if c.VictimWays < 0 {
		return fmt.Errorf("memsys: VictimWays %d must be ≥ 0", c.VictimWays)
	}
	return nil
}

type line struct {
	tag   int64
	valid bool
	lru   int64 // last-touch tick; larger is more recent
}

// Cache is a set-associative LRU cache, optionally backed by a small
// fully-associative victim cache that captures evicted lines.
type Cache struct {
	cfg    CacheConfig
	sets   [][]line
	victim []line
	tick   int64
	stats  Stats
}

// NewCache builds a cache from cfg.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Cache{cfg: cfg}
	c.Reset()
	return c, nil
}

// Reset clears all cache state and statistics.
func (c *Cache) Reset() {
	c.sets = make([][]line, c.cfg.Sets)
	for i := range c.sets {
		c.sets[i] = make([]line, c.cfg.Ways)
	}
	c.victim = make([]line, c.cfg.VictimWays)
	c.tick = 0
	c.stats = Stats{}
}

// Stats returns accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Access simulates a load or store (write-allocate: both install lines).
func (c *Cache) Access(addr int64, store bool) int {
	c.tick++
	c.stats.Accesses++
	lineAddr := addr / int64(c.cfg.LineBytes)
	set := int(lineAddr) & (c.cfg.Sets - 1)
	tag := lineAddr

	ways := c.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lru = c.tick
			c.stats.Hits++
			return c.cfg.HitCost
		}
	}

	// Victim-cache probe: a hit there swaps the line back at hit cost + 1.
	if len(c.victim) > 0 {
		for i := range c.victim {
			if c.victim[i].valid && c.victim[i].tag == tag {
				c.stats.VictimHits++
				c.stats.Hits++
				evicted := c.install(set, tag)
				c.victim[i] = evicted
				c.victim[i].lru = c.tick
				return c.cfg.HitCost + 1
			}
		}
	}

	c.stats.Misses++
	evicted := c.install(set, tag)
	if evicted.valid && len(c.victim) > 0 {
		vi := 0
		for i := range c.victim {
			if !c.victim[i].valid {
				vi = i
				break
			}
			if c.victim[i].lru < c.victim[vi].lru {
				vi = i
			}
		}
		c.victim[vi] = evicted
		c.victim[vi].lru = c.tick
	}
	return c.cfg.MissCost
}

// install places tag into the set, returning the line it displaced.
func (c *Cache) install(set int, tag int64) line {
	ways := c.sets[set]
	vi := 0
	for i := range ways {
		if !ways[i].valid {
			vi = i
			break
		}
		if ways[i].lru < ways[vi].lru {
			vi = i
		}
	}
	evicted := ways[vi]
	if evicted.valid {
		c.stats.Evictions++
	}
	ways[vi] = line{tag: tag, valid: true, lru: c.tick}
	return evicted
}

// WriteBuffer wraps a Model so that stores complete in StoreCost cycles
// (the buffer absorbs them) while still updating the underlying cache
// state; loads pass through at the inner model's price. This reproduces
// the paper's observation that a write buffer helps the stores generated
// by spilling but "does little or nothing for loads".
type WriteBuffer struct {
	Inner     Model
	StoreCost int
	stats     Stats
}

// NewWriteBuffer wraps inner with a write buffer.
func NewWriteBuffer(inner Model, storeCost int) *WriteBuffer {
	if storeCost < 1 {
		storeCost = 1
	}
	return &WriteBuffer{Inner: inner, StoreCost: storeCost}
}

// Access implements Model.
func (w *WriteBuffer) Access(addr int64, store bool) int {
	w.stats.Accesses++
	if store {
		w.Inner.Access(addr, true) // keep cache state coherent
		w.stats.Hits++
		return w.StoreCost
	}
	return w.Inner.Access(addr, false)
}

// Reset implements Model.
func (w *WriteBuffer) Reset() {
	w.Inner.Reset()
	w.stats = Stats{}
}

// Stats returns the write buffer's own access counts; inner cache stats
// are available from the wrapped model.
func (w *WriteBuffer) Stats() Stats { return w.stats }

// FlatMemory is the paper's default model: every access costs Cost cycles.
type FlatMemory struct {
	Cost  int
	stats Stats
}

// Access implements Model.
func (m *FlatMemory) Access(addr int64, store bool) int {
	m.stats.Accesses++
	return m.Cost
}

// Reset implements Model.
func (m *FlatMemory) Reset() { m.stats = Stats{} }

// Stats implements Model.
func (m *FlatMemory) Stats() Stats { return m.stats }
