package cfg

import (
	"fmt"
	"math/rand"
	"testing"

	"ccmem/internal/ir"
)

// buildFromEdges constructs a function whose CFG has the given shape:
// block i jumps to edges[i] (1 target → jmp, 2 → cbr, 0 → ret).
func buildFromEdges(t testing.TB, edges [][]int) *ir.Func {
	t.Helper()
	f := &ir.Func{Name: "g"}
	cond := f.NewReg(ir.ClassInt, "c")
	name := func(i int) string { return fmt.Sprintf("b%d", i) }
	for i, succ := range edges {
		blk := &ir.Block{Name: name(i), Index: i}
		switch len(succ) {
		case 0:
			blk.Instrs = []ir.Instr{{Op: ir.OpRet, Dst: ir.NoReg}}
		case 1:
			blk.Instrs = []ir.Instr{{Op: ir.OpJmp, Dst: ir.NoReg, Then: name(succ[0])}}
		case 2:
			blk.Instrs = []ir.Instr{
				{Op: ir.OpLoadI, Dst: cond, Imm: 1},
				{Op: ir.OpCBr, Dst: ir.NoReg, Args: []ir.Reg{cond}, Then: name(succ[0]), Else: name(succ[1])},
			}
		default:
			t.Fatalf("block %d has %d succs", i, len(succ))
		}
		f.Blocks = append(f.Blocks, blk)
	}
	return f
}

func TestSuccsPreds(t *testing.T) {
	f := buildFromEdges(t, [][]int{{1, 2}, {3}, {3}, {}})
	g, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Succs[0]) != 2 || g.Succs[0][0] != 1 || g.Succs[0][1] != 2 {
		t.Fatalf("succs[0] = %v", g.Succs[0])
	}
	if len(g.Preds[3]) != 2 {
		t.Fatalf("preds[3] = %v", g.Preds[3])
	}
	if len(g.Preds[0]) != 0 {
		t.Fatal("entry has preds")
	}
}

func TestUnknownLabel(t *testing.T) {
	f := &ir.Func{Name: "g"}
	f.Blocks = []*ir.Block{{Name: "a", Instrs: []ir.Instr{{Op: ir.OpJmp, Dst: ir.NoReg, Then: "zzz"}}}}
	if _, err := New(f); err == nil {
		t.Fatal("unknown label accepted")
	}
}

func TestReversePostorder(t *testing.T) {
	f := buildFromEdges(t, [][]int{{1, 2}, {3}, {3}, {}})
	g, _ := New(f)
	rpo := g.ReversePostorder()
	if rpo[0] != 0 {
		t.Fatal("rpo does not start at entry")
	}
	pos := map[int]int{}
	for i, b := range rpo {
		pos[b] = i
	}
	// In an acyclic graph every edge goes forward in RPO.
	for b, succ := range g.Succs {
		for _, s := range succ {
			if pos[b] >= pos[s] {
				t.Fatalf("edge %d->%d backwards in RPO %v", b, s, rpo)
			}
		}
	}
	po := g.Postorder()
	for i := range po {
		if po[i] != rpo[len(rpo)-1-i] {
			t.Fatal("postorder is not reversed RPO")
		}
	}
}

func TestDominatorsDiamond(t *testing.T) {
	f := buildFromEdges(t, [][]int{{1, 2}, {3}, {3}, {}})
	g, _ := New(f)
	if g.Idom(0) != -1 {
		t.Fatal("entry has an idom")
	}
	for _, b := range []int{1, 2, 3} {
		if g.Idom(b) != 0 {
			t.Fatalf("idom(%d) = %d, want 0", b, g.Idom(b))
		}
	}
	if !g.Dominates(0, 3) || g.Dominates(1, 3) || g.Dominates(2, 1) {
		t.Fatal("Dominates wrong on diamond")
	}
	if !g.Dominates(2, 2) {
		t.Fatal("Dominates not reflexive")
	}
}

func TestDominatorsLoop(t *testing.T) {
	// 0 -> 1 -> 2 -> 1 (back edge), 1 -> 3 (exit)
	f := buildFromEdges(t, [][]int{{1}, {2, 3}, {1}, {}})
	g, _ := New(f)
	if g.Idom(1) != 0 || g.Idom(2) != 1 || g.Idom(3) != 1 {
		t.Fatalf("idoms: %d %d %d", g.Idom(1), g.Idom(2), g.Idom(3))
	}
	if g.LoopDepth(1) != 1 || g.LoopDepth(2) != 1 {
		t.Fatalf("loop depth: %d %d", g.LoopDepth(1), g.LoopDepth(2))
	}
	if g.LoopDepth(0) != 0 || g.LoopDepth(3) != 0 {
		t.Fatal("non-loop blocks have depth")
	}
}

func TestNestedLoopDepth(t *testing.T) {
	// 0 -> 1(h1) -> 2(h2) -> 3 -> 2 | 2 -> 1... shape:
	// 1: outer header; 2: inner header; 3: inner body; 4: exit
	f := buildFromEdges(t, [][]int{
		{1},    // 0 -> 1
		{2, 4}, // 1 -> 2 (enter inner) or exit
		{3, 1}, // 2 -> 3 (inner body) or back to outer header
		{2},    // 3 -> 2 inner back edge
		{},     // 4 exit
	})
	g, _ := New(f)
	if g.LoopDepth(2) != 2 || g.LoopDepth(3) != 2 {
		t.Fatalf("inner depth = %d/%d, want 2", g.LoopDepth(2), g.LoopDepth(3))
	}
	if g.LoopDepth(1) != 1 {
		t.Fatalf("outer header depth = %d, want 1", g.LoopDepth(1))
	}
}

func TestDomFrontierDiamond(t *testing.T) {
	f := buildFromEdges(t, [][]int{{1, 2}, {3}, {3}, {}})
	g, _ := New(f)
	for _, b := range []int{1, 2} {
		df := g.DomFrontier(b)
		if len(df) != 1 || df[0] != 3 {
			t.Fatalf("DF(%d) = %v, want [3]", b, df)
		}
	}
	if len(g.DomFrontier(0)) != 0 {
		t.Fatalf("DF(0) = %v", g.DomFrontier(0))
	}
}

func TestUnreachable(t *testing.T) {
	f := buildFromEdges(t, [][]int{{1}, {}, {1}}) // block 2 unreachable
	g, _ := New(f)
	if !g.Reachable(0) || !g.Reachable(1) || g.Reachable(2) {
		t.Fatal("reachability wrong")
	}
	if g.Dominates(2, 1) || g.Dominates(0, 2) {
		t.Fatal("unreachable blocks participate in dominance")
	}
	removed, err := RemoveUnreachable(f)
	if err != nil || !removed {
		t.Fatalf("removed=%v err=%v", removed, err)
	}
	if len(f.Blocks) != 2 {
		t.Fatalf("blocks after removal = %d", len(f.Blocks))
	}
	removed, _ = RemoveUnreachable(f)
	if removed {
		t.Fatal("second removal found something")
	}
}

// bruteDominates computes dominance by path enumeration: a dominates b if
// removing a disconnects b from the entry.
func bruteDominates(g *Graph, a, b int) bool {
	if !g.Reachable(a) || !g.Reachable(b) {
		return false
	}
	if a == b {
		return true
	}
	// BFS from entry avoiding a.
	n := g.NumBlocks()
	seen := make([]bool, n)
	queue := []int{0}
	if a != 0 {
		seen[0] = true
	} else {
		return b != 0 // entry dominates everything
	}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, s := range g.Succs[x] {
			if s == a || seen[s] {
				continue
			}
			seen[s] = true
			queue = append(queue, s)
		}
	}
	return !seen[b]
}

func TestDominatorsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(12)
		edges := make([][]int, n)
		for i := range edges {
			switch rng.Intn(3) {
			case 0:
				if i < n-1 { // keep at least block n-1 as exit candidate
					edges[i] = []int{rng.Intn(n)}
				}
			case 1:
				edges[i] = []int{rng.Intn(n), rng.Intn(n)}
			case 2:
				// ret
			}
		}
		f := buildFromEdges(t, edges)
		g, err := New(f)
		if err != nil {
			t.Fatal(err)
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				want := bruteDominates(g, a, b)
				if got := g.Dominates(a, b); got != want {
					t.Fatalf("trial %d (edges %v): Dominates(%d,%d)=%v, brute=%v",
						trial, edges, a, b, got, want)
				}
			}
		}
	}
}

// Dominance frontier property: y ∈ DF(x) iff x dominates a predecessor of
// y but does not strictly dominate y.
func TestDomFrontierAgainstDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(10)
		edges := make([][]int, n)
		for i := range edges {
			if rng.Intn(4) != 0 {
				edges[i] = []int{rng.Intn(n), rng.Intn(n)}
			}
		}
		f := buildFromEdges(t, edges)
		g, err := New(f)
		if err != nil {
			t.Fatal(err)
		}
		for x := 0; x < n; x++ {
			inDF := map[int]bool{}
			for _, y := range g.DomFrontier(x) {
				inDF[y] = true
			}
			for y := 0; y < n; y++ {
				want := false
				if g.Reachable(x) && g.Reachable(y) {
					for _, p := range g.Preds[y] {
						if g.Reachable(p) && g.Dominates(x, p) && !(g.Dominates(x, y) && x != y) {
							want = true
							break
						}
					}
				}
				if inDF[y] != want {
					t.Fatalf("trial %d edges %v: DF(%d) contains %d = %v, want %v",
						trial, edges, x, y, inDF[y], want)
				}
			}
		}
	}
}

func TestSplitEntry(t *testing.T) {
	// Branch back to entry: SplitEntry must prepend a preheader.
	f := buildFromEdges(t, [][]int{{0, 1}, {}})
	if !SplitEntry(f) {
		t.Fatal("entry with back edge not split")
	}
	if len(f.Blocks) != 3 {
		t.Fatalf("blocks = %d", len(f.Blocks))
	}
	g, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Preds[0]) != 0 {
		t.Fatal("new entry still has predecessors")
	}
	// Idempotent-ish: no further split needed.
	if SplitEntry(f) {
		t.Fatal("split happened twice")
	}

	// No back edge: untouched.
	f2 := buildFromEdges(t, [][]int{{1}, {}})
	if SplitEntry(f2) {
		t.Fatal("split without need")
	}
}

func TestSplitEntryNameCollision(t *testing.T) {
	f := buildFromEdges(t, [][]int{{0, 1}, {}})
	// Pre-occupy the would-be preheader name.
	f.Blocks[1].Name = "b0.pre"
	f.Blocks[0].Instrs[len(f.Blocks[0].Instrs)-1].Else = "b0.pre"
	if !SplitEntry(f) {
		t.Fatal("no split")
	}
	seen := map[string]bool{}
	for _, b := range f.Blocks {
		if seen[b.Name] {
			t.Fatalf("duplicate block name %q", b.Name)
		}
		seen[b.Name] = true
	}
}
