// Package cfg builds the control-flow graph of an ir.Func and the derived
// structures the compiler needs: reverse postorder, dominators, dominance
// frontiers, and natural-loop nesting depth (used to weight spill costs by
// 10^depth, as in the Chaitin-Briggs allocator the paper builds on).
//
// Dominators use the iterative algorithm of Cooper, Harvey & Kennedy,
// "A Simple, Fast Dominance Algorithm" — by the same Harvey as the paper
// under reproduction.
package cfg

import (
	"fmt"

	"ccmem/internal/ir"
)

// Graph is the control-flow graph of one function. Node indices are block
// indices into F.Blocks.
type Graph struct {
	F     *ir.Func
	Succs [][]int
	Preds [][]int

	rpo      []int // reverse postorder of reachable blocks
	rpoIndex []int // block -> position in rpo, or -1 if unreachable
	idom     []int // immediate dominator, -1 for entry and unreachable
	frontier [][]int
	depth    []int // natural-loop nesting depth
}

// New builds the CFG. It fails if a branch target does not exist.
func New(f *ir.Func) (*Graph, error) {
	f.Renumber()
	n := len(f.Blocks)
	g := &Graph{
		F:     f,
		Succs: make([][]int, n),
		Preds: make([][]int, n),
	}
	index := make(map[string]int, n)
	for i, b := range f.Blocks {
		index[b.Name] = i
	}
	for i, b := range f.Blocks {
		t := b.Term()
		if t == nil {
			return nil, fmt.Errorf("cfg: %s: block %s lacks a terminator", f.Name, b.Name)
		}
		// Switch on the terminator directly rather than going through
		// Targets(), which materializes a fresh slice per call — this loop
		// is on the allocator's per-round rebuild path.
		addEdge := func(label string) error {
			j, ok := index[label]
			if !ok {
				return fmt.Errorf("cfg: %s: block %s branches to unknown label %q", f.Name, b.Name, label)
			}
			g.Succs[i] = append(g.Succs[i], j)
			g.Preds[j] = append(g.Preds[j], i)
			return nil
		}
		switch t.Op {
		case ir.OpJmp:
			if err := addEdge(t.Then); err != nil {
				return nil, err
			}
		case ir.OpCBr:
			if err := addEdge(t.Then); err != nil {
				return nil, err
			}
			if err := addEdge(t.Else); err != nil {
				return nil, err
			}
		}
	}
	g.computeRPO()
	g.computeDominators()
	g.computeFrontiers()
	g.computeLoopDepth()
	return g, nil
}

// NumBlocks returns the number of blocks in the function.
func (g *Graph) NumBlocks() int { return len(g.Succs) }

// Reachable reports whether block b is reachable from the entry.
func (g *Graph) Reachable(b int) bool { return g.rpoIndex[b] >= 0 }

// ReversePostorder returns the reachable blocks in reverse postorder
// (entry first). The returned slice must not be modified.
func (g *Graph) ReversePostorder() []int { return g.rpo }

// Postorder returns the reachable blocks in postorder.
func (g *Graph) Postorder() []int {
	po := make([]int, len(g.rpo))
	for i, b := range g.rpo {
		po[len(g.rpo)-1-i] = b
	}
	return po
}

func (g *Graph) computeRPO() {
	n := g.NumBlocks()
	g.rpoIndex = make([]int, n)
	for i := range g.rpoIndex {
		g.rpoIndex[i] = -1
	}
	visited := make([]bool, n)
	po := make([]int, 0, n)
	// Iterative DFS to avoid deep recursion on generated programs.
	type frame struct{ b, next int }
	stack := make([]frame, 1, n)
	stack[0] = frame{0, 0}
	visited[0] = true
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.next < len(g.Succs[top.b]) {
			s := g.Succs[top.b][top.next]
			top.next++
			if !visited[s] {
				visited[s] = true
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		po = append(po, top.b)
		stack = stack[:len(stack)-1]
	}
	g.rpo = make([]int, len(po))
	for i, b := range po {
		r := len(po) - 1 - i
		g.rpo[r] = b
		g.rpoIndex[b] = r
	}
}

// Idom returns the immediate dominator of block b, or -1 for the entry
// block and unreachable blocks.
func (g *Graph) Idom(b int) int { return g.idom[b] }

// Dominates reports whether block a dominates block b (reflexive).
// Unreachable blocks dominate nothing and are dominated by nothing.
func (g *Graph) Dominates(a, b int) bool {
	if !g.Reachable(a) || !g.Reachable(b) {
		return false
	}
	for b != -1 {
		if a == b {
			return true
		}
		b = g.idom[b]
	}
	return false
}

func (g *Graph) computeDominators() {
	n := g.NumBlocks()
	g.idom = make([]int, n)
	for i := range g.idom {
		g.idom[i] = -1
	}
	if len(g.rpo) == 0 {
		return
	}
	entry := g.rpo[0]
	g.idom[entry] = entry // temporary self-loop per CHK
	changed := true
	for changed {
		changed = false
		for _, b := range g.rpo[1:] {
			newIdom := -1
			for _, p := range g.Preds[b] {
				if g.idom[p] == -1 && p != entry {
					continue // unprocessed or unreachable
				}
				if !g.Reachable(p) {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = g.intersect(p, newIdom)
				}
			}
			if newIdom != -1 && g.idom[b] != newIdom {
				g.idom[b] = newIdom
				changed = true
			}
		}
	}
	g.idom[entry] = -1
}

func (g *Graph) intersect(a, b int) int {
	for a != b {
		for g.rpoIndex[a] > g.rpoIndex[b] {
			a = g.idomOrEntry(a)
		}
		for g.rpoIndex[b] > g.rpoIndex[a] {
			b = g.idomOrEntry(b)
		}
	}
	return a
}

func (g *Graph) idomOrEntry(b int) int {
	d := g.idom[b]
	if d == -1 {
		return b
	}
	return d
}

// DomFrontier returns the dominance frontier of block b.
func (g *Graph) DomFrontier(b int) []int { return g.frontier[b] }

func (g *Graph) computeFrontiers() {
	n := g.NumBlocks()
	g.frontier = make([][]int, n)
	// lastAdded[runner] stamps the most recent join node added to runner's
	// frontier. The outer loop visits each join node b exactly once, so a
	// duplicate can only arise from two predecessors of the same b walking
	// through one runner — a stamp check replaces the per-runner map the
	// old implementation allocated (a measurable share of cfg.New's cost
	// on the allocator's rebuild path).
	lastAdded := make([]int, n)
	for i := range lastAdded {
		lastAdded[i] = -1
	}
	entry := -1
	if len(g.rpo) > 0 {
		entry = g.rpo[0]
	}
	for _, b := range g.rpo {
		// Join nodes, plus the entry block when a back edge targets it
		// (the entry has no idom, so the standard ≥2-predecessors filter
		// would miss its frontier contributions).
		if len(g.Preds[b]) < 2 && !(b == entry && len(g.Preds[b]) >= 1) {
			continue
		}
		for _, p := range g.Preds[b] {
			if !g.Reachable(p) {
				continue
			}
			runner := p
			for runner != g.idom[b] && runner != -1 {
				if lastAdded[runner] == b {
					break // this runner chain already recorded b (and so did its dominators)
				}
				lastAdded[runner] = b
				g.frontier[runner] = append(g.frontier[runner], b)
				runner = g.idom[runner]
			}
		}
	}
}

// LoopDepth returns the natural-loop nesting depth of block b (0 when the
// block is in no loop, or unreachable).
func (g *Graph) LoopDepth(b int) int { return g.depth[b] }

func (g *Graph) computeLoopDepth() {
	n := g.NumBlocks()
	g.depth = make([]int, n)
	// Back edge t -> h where h dominates t; the natural loop is h plus all
	// nodes that reach t without passing through h. One membership buffer
	// is shared across back edges, generation-stamped so each edge starts
	// from an empty set without a per-edge allocation or clear.
	inLoop := make([]int, n)
	for i := range inLoop {
		inLoop[i] = -1
	}
	var stack []int
	gen := 0
	for t := 0; t < n; t++ {
		if !g.Reachable(t) {
			continue
		}
		for _, h := range g.Succs[t] {
			if !g.Dominates(h, t) {
				continue
			}
			inLoop[h] = gen
			stack = append(stack[:0], t)
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if inLoop[x] == gen {
					continue
				}
				inLoop[x] = gen
				for _, p := range g.Preds[x] {
					if g.Reachable(p) && inLoop[p] != gen {
						stack = append(stack, p)
					}
				}
			}
			for b := 0; b < n; b++ {
				if inLoop[b] == gen {
					g.depth[b]++
				}
			}
			gen++
		}
	}
}

// SplitEntry ensures the entry block has no predecessors by prepending a
// fresh block that jumps to the old entry when some branch targets it.
// SSA construction requires this: a phi in the entry block would have no
// argument slot for the function-entry path. Returns true if it changed f.
func SplitEntry(f *ir.Func) bool {
	if len(f.Blocks) == 0 {
		return false
	}
	entry := f.Blocks[0].Name
	targeted := false
	for _, b := range f.Blocks {
		for _, t := range b.Term().Targets() {
			if t == entry {
				targeted = true
			}
		}
	}
	if !targeted {
		return false
	}
	name := entry + ".pre"
	for f.BlockNamed(name) != nil {
		name += "'"
	}
	pre := &ir.Block{Name: name, Instrs: []ir.Instr{{Op: ir.OpJmp, Dst: ir.NoReg, Then: entry}}}
	f.Blocks = append([]*ir.Block{pre}, f.Blocks...)
	f.Renumber()
	return true
}

// RemoveUnreachable deletes unreachable blocks from the function and
// reports whether anything was removed. The caller must rebuild the CFG
// afterwards if it is still needed.
func RemoveUnreachable(f *ir.Func) (bool, error) {
	g, err := New(f)
	if err != nil {
		return false, err
	}
	kept := f.Blocks[:0]
	removed := false
	for i, b := range f.Blocks {
		if g.Reachable(i) {
			kept = append(kept, b)
		} else {
			removed = true
		}
	}
	f.Blocks = kept
	f.Renumber()
	return removed, nil
}
