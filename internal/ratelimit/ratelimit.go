// Package ratelimit is a deterministic per-key token-bucket limiter:
// the admission-fairness primitive behind ccmd's per-tenant rate
// limits. Design constraints, in the order they mattered:
//
//   - Deterministic: refill is a pure function of the injected clock, so
//     tests drive a fake clock and assert exact admit/deny sequences and
//     exact Retry-After hints. No background goroutines, no jitter.
//   - Bounded state: at most MaxKeys buckets are tracked, evicted
//     least-recently-used — one abusive client minting tenant names
//     cannot grow the limiter without bound (the same low-footprint
//     discipline the disk tiers apply to bytes).
//   - Self-describing denials: a denied Allow returns how long until one
//     token accrues, which maps directly onto the Retry-After header.
//
// A freshly-tracked key starts with a full burst, so the first requests
// of a well-behaved tenant are never throttled; sustained traffic above
// Rate drains the bucket and is denied until tokens accrue.
package ratelimit

import (
	"math"
	"sync"
	"time"
)

// DefaultMaxKeys bounds tracked buckets when Options.MaxKeys is zero.
const DefaultMaxKeys = 1024

// Options configure New.
type Options struct {
	// Rate is the steady-state tokens (requests) per second each key
	// accrues. It must be > 0; a limiter you don't want is a nil *Limiter,
	// which allows everything.
	Rate float64
	// Burst is the bucket capacity — the number of requests a key may
	// issue instantaneously from a full bucket. 0 means ceil(Rate), with
	// a floor of 1.
	Burst int
	// MaxKeys bounds the number of tracked buckets (LRU eviction beyond
	// it); 0 means DefaultMaxKeys.
	MaxKeys int
	// Now is the clock; nil means time.Now. Injected by tests.
	Now func() time.Time
}

// KeyStats is one key's cumulative admission record.
type KeyStats struct {
	Requests int64 `json:"requests"` // Allow calls, admitted or not
	Limited  int64 `json:"limited"`  // denied Allow calls
}

// bucket is one key's token bucket plus its LRU linkage and counters.
type bucket struct {
	key        string
	tokens     float64
	last       time.Time // last refill instant
	stats      KeyStats
	prev, next *bucket
}

// Limiter is a per-key token-bucket rate limiter. All methods are safe
// for concurrent use. A nil *Limiter admits everything, so callers wire
// it unconditionally and configuration decides.
type Limiter struct {
	rate    float64
	burst   float64
	maxKeys int
	now     func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
	head    *bucket // most recently used
	tail    *bucket // least recently used
	evicted int64
}

// New builds a limiter. Rate must be positive.
func New(opts Options) *Limiter {
	if opts.Rate <= 0 {
		return nil
	}
	burst := float64(opts.Burst)
	if opts.Burst <= 0 {
		burst = math.Ceil(opts.Rate)
		if burst < 1 {
			burst = 1
		}
	}
	maxKeys := opts.MaxKeys
	if maxKeys <= 0 {
		maxKeys = DefaultMaxKeys
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	return &Limiter{
		rate:    opts.Rate,
		burst:   burst,
		maxKeys: maxKeys,
		now:     now,
		buckets: make(map[string]*bucket),
	}
}

// Allow spends one token from key's bucket. Admitted requests return
// (true, 0); denied ones return false and the duration until one full
// token has accrued — the Retry-After hint.
func (l *Limiter) Allow(key string) (ok bool, retryAfter time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[key]
	if b == nil {
		b = &bucket{key: key, tokens: l.burst, last: now}
		l.buckets[key] = b
		l.pushFront(b)
		if len(l.buckets) > l.maxKeys {
			victim := l.tail
			l.unlink(victim)
			delete(l.buckets, victim.key)
			l.evicted++
		}
	} else {
		// Refill from the elapsed wall clock, capped at the burst.
		if dt := now.Sub(b.last); dt > 0 {
			b.tokens = math.Min(l.burst, b.tokens+dt.Seconds()*l.rate)
		}
		b.last = now
		l.moveFront(b)
	}
	b.stats.Requests++
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	b.stats.Limited++
	// Time until the deficit to one whole token refills.
	need := 1 - b.tokens
	return false, time.Duration(need / l.rate * float64(time.Second))
}

// Len reports how many keys are currently tracked.
func (l *Limiter) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// Evicted reports how many buckets the MaxKeys bound has discarded.
func (l *Limiter) Evicted() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evicted
}

// Snapshot returns each tracked key's cumulative counters. The map is a
// copy; mutating it does not touch the limiter.
func (l *Limiter) Snapshot() map[string]KeyStats {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]KeyStats, len(l.buckets))
	for k, b := range l.buckets {
		out[k] = b.stats
	}
	return out
}

// ---- LRU list maintenance (l.mu held) ----

func (l *Limiter) pushFront(b *bucket) {
	b.prev, b.next = nil, l.head
	if l.head != nil {
		l.head.prev = b
	}
	l.head = b
	if l.tail == nil {
		l.tail = b
	}
}

func (l *Limiter) unlink(b *bucket) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		l.head = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		l.tail = b.prev
	}
	b.prev, b.next = nil, nil
}

func (l *Limiter) moveFront(b *bucket) {
	if l.head == b {
		return
	}
	l.unlink(b)
	l.pushFront(b)
}
