package ratelimit

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic manually-advanced clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBurstThenDeny(t *testing.T) {
	clk := newFakeClock()
	l := New(Options{Rate: 1, Burst: 3, Now: clk.Now})
	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("a"); !ok {
			t.Fatalf("request %d within burst denied", i)
		}
	}
	ok, retry := l.Allow("a")
	if ok {
		t.Fatalf("request beyond burst admitted")
	}
	if retry != time.Second {
		t.Fatalf("retryAfter = %v, want exactly 1s at rate 1 with an empty bucket", retry)
	}
}

func TestRefillIsDeterministic(t *testing.T) {
	clk := newFakeClock()
	l := New(Options{Rate: 2, Burst: 2, Now: clk.Now})
	l.Allow("a")
	l.Allow("a")
	if ok, retry := l.Allow("a"); ok || retry != 500*time.Millisecond {
		t.Fatalf("empty bucket at rate 2: ok=%v retry=%v, want denied/500ms", ok, retry)
	}
	// 500ms accrues exactly one token.
	clk.Advance(500 * time.Millisecond)
	if ok, _ := l.Allow("a"); !ok {
		t.Fatalf("token accrued after 500ms at rate 2 not granted")
	}
	if ok, _ := l.Allow("a"); ok {
		t.Fatalf("second token granted without time passing")
	}
	// Refill never exceeds the burst.
	clk.Advance(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("a"); !ok {
			t.Fatalf("bucket should be full after an hour")
		}
	}
	if ok, _ := l.Allow("a"); ok {
		t.Fatalf("burst cap not enforced after long idle")
	}
}

func TestKeysAreIndependent(t *testing.T) {
	clk := newFakeClock()
	l := New(Options{Rate: 1, Burst: 1, Now: clk.Now})
	if ok, _ := l.Allow("hot"); !ok {
		t.Fatalf("first hot request denied")
	}
	if ok, _ := l.Allow("hot"); ok {
		t.Fatalf("hot key not throttled")
	}
	// A different key is untouched by the hot key's deficit.
	if ok, _ := l.Allow("cold"); !ok {
		t.Fatalf("cold key throttled by hot key's traffic")
	}
}

func TestBoundedKeysLRUEviction(t *testing.T) {
	clk := newFakeClock()
	l := New(Options{Rate: 1, Burst: 1, MaxKeys: 2, Now: clk.Now})
	l.Allow("a")
	l.Allow("b")
	l.Allow("a") // refresh a: b is now least recently used
	l.Allow("c") // evicts b
	if n := l.Len(); n != 2 {
		t.Fatalf("tracked keys = %d, want 2", n)
	}
	if l.Evicted() != 1 {
		t.Fatalf("evicted = %d, want 1", l.Evicted())
	}
	snap := l.Snapshot()
	if _, ok := snap["b"]; ok {
		t.Fatalf("LRU victim should have been b: %+v", snap)
	}
	// An evicted key returns with a fresh (full) bucket — eviction can
	// only ever forgive, never over-throttle.
	if ok, _ := l.Allow("b"); !ok {
		t.Fatalf("re-tracked key denied its burst")
	}
}

func TestSnapshotCounters(t *testing.T) {
	clk := newFakeClock()
	l := New(Options{Rate: 1, Burst: 1, Now: clk.Now})
	l.Allow("a")
	l.Allow("a")
	l.Allow("a")
	snap := l.Snapshot()
	if s := snap["a"]; s.Requests != 3 || s.Limited != 2 {
		t.Fatalf("stats = %+v, want 3 requests / 2 limited", s)
	}
}

func TestNilLimiterAllowsEverything(t *testing.T) {
	var l *Limiter
	if ok, retry := l.Allow("anyone"); !ok || retry != 0 {
		t.Fatalf("nil limiter must admit everything")
	}
	if l.Len() != 0 || l.Evicted() != 0 || l.Snapshot() != nil {
		t.Fatalf("nil limiter accessors must be zero-valued")
	}
	if New(Options{Rate: 0}) != nil {
		t.Fatalf("non-positive rate must build a nil (disabled) limiter")
	}
}

func TestConcurrentAllow(t *testing.T) {
	l := New(Options{Rate: 1000, Burst: 100})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Allow(fmt.Sprintf("tenant-%d", g%4))
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, s := range l.Snapshot() {
		total += s.Requests
	}
	if total != 1600 {
		t.Fatalf("requests counted = %d, want 1600", total)
	}
}
