package remotecache

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"ccmem/internal/authtoken"
	"ccmem/internal/diskcache"
	"ccmem/internal/obs"
)

// Server error codes — the same stable-string convention as ccmd: every
// non-2xx body is {"error":{code,message}} and clients branch on the
// code, not the prose.
const (
	CodeBadRequest   = "bad-request"   // 400: malformed key, kind, or body framing
	CodeUnauthorized = "unauthorized"  // 401: missing or wrong bearer token
	CodeNotFound     = "not-found"     // 404: no verified entry under (key, kind)
	CodeCorruptEntry = "corrupt-entry" // 422: upload failed verification; nothing was stored
	CodeTooLarge     = "too-large"     // 413: upload exceeds the entry-size cap
	CodeDraining     = "draining"      // 503: daemon is shutting down; retry another node
)

type apiError struct {
	status     int
	retryAfter int    // seconds; > 0 also sets the Retry-After header
	Code       string `json:"code"`
	Message    string `json:"message"`
	// RetryAfter mirrors the Retry-After header into the body so clients
	// that only parse the envelope still learn the backoff.
	RetryAfter int `json:"retry_after_seconds,omitempty"`
}

// ServerOptions configure NewServer.
type ServerOptions struct {
	// MaxBytes is the store's LRU byte budget (diskcache semantics;
	// 0 = unlimited).
	MaxBytes int64
	// MaxEntryBytes caps one uploaded entry (default 64 MiB).
	MaxEntryBytes int64
	// AuthToken, when non-empty, gates every data endpoint (/entry/*,
	// /stats) behind a bearer token; health probes (/healthz, /readyz,
	// /version) stay open so load balancers need no secret.
	AuthToken string
	// EntryTTL is how long a stored entry stays servable; <= 0 means
	// entries never expire. Expiry is lazy on reads plus GC sweeps.
	EntryTTL time.Duration
	// Now is the clock TTL expiry is judged against; nil means time.Now.
	// Injected by tests.
	Now func() time.Time
	// FS is the store's filesystem; nil uses the real one (tests inject
	// faults).
	FS diskcache.FS
	// Obs receives remotecached.* counters. nil disables.
	Obs *obs.Registry
}

// ServerStats is the /stats snapshot: the HTTP skin's own counters plus
// the backing store's.
type ServerStats struct {
	Gets     int64 `json:"gets"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Puts     int64 `json:"puts"`
	Rejected int64 `json:"rejected"` // uploads refused by verification or caps

	// Unauthorized counts requests refused at the door for a missing or
	// wrong bearer token.
	Unauthorized int64 `json:"unauthorized"`

	// GC is the TTL reaper's record; zero-valued when no TTL is set.
	GC GCStats `json:"gc"`

	Store diskcache.Stats `json:"store"`
}

// GCStats records the TTL sweeper's work.
type GCStats struct {
	// TTLSeconds echoes the configured TTL (0 = expiry disabled).
	TTLSeconds int64 `json:"ttl_seconds"`
	// Sweeps counts completed GC passes.
	Sweeps int64 `json:"sweeps"`
	// Expired counts entries any sweep has deleted. Lazily-expired reads
	// are counted by the store (Store.Expired covers both).
	Expired int64 `json:"expired"`
}

// Server is the cache daemon's core: GET/PUT of self-verifying entries
// over one diskcache store. The store supplies the integrity discipline
// — verify on read with quarantine of anything corrupt, crash-safe
// atomic writes — and the skin adds verify-on-ingest: an upload is
// decoded and checksummed BEFORE it is stored, so a corrupt entry is
// rejected at the door instead of poisoning the fleet.
type Server struct {
	dc       *diskcache.Cache
	maxEntry int64
	token    string
	ttl      time.Duration
	reg      *obs.Registry

	gets, hits, misses  atomic.Int64
	puts, rejected      atomic.Int64
	unauthorized        atomic.Int64
	drained             atomic.Int64
	gcSweeps, gcExpired atomic.Int64
	draining            atomic.Bool
}

// BeginDrain flips the daemon into drain mode: every subsequent data
// request is refused with 503 draining + Retry-After, and /readyz goes
// unready so load balancers and fleet clients stop sending traffic.
// cmd/ccmcached calls this on SIGINT/SIGTERM just before the graceful
// http.Server shutdown, turning "the connection died mid-request" into
// "the node told me to go elsewhere" — the difference between a fleet
// failover and a spurious breaker trip.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.reg.Counter("remotecached.drains").Add(1)
	}
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// NewServer opens (or creates) the entry store under dir.
func NewServer(dir string, opts ServerOptions) (*Server, error) {
	if opts.MaxEntryBytes <= 0 {
		opts.MaxEntryBytes = 64 << 20
	}
	dc, err := diskcache.Open(dir, diskcache.Options{
		MaxBytes: opts.MaxBytes,
		TTL:      opts.EntryTTL,
		Now:      opts.Now,
		FS:       opts.FS,
	})
	if err != nil {
		return nil, fmt.Errorf("remotecache: open store: %w", err)
	}
	return &Server{
		dc:       dc,
		maxEntry: opts.MaxEntryBytes,
		token:    opts.AuthToken,
		ttl:      opts.EntryTTL,
		reg:      opts.Obs,
	}, nil
}

// GC runs one TTL sweep over the store and returns how many entries it
// deleted. cmd/ccmcached calls this from its -gc-interval ticker; it is
// also safe to call from tests or ad hoc. Without a TTL it is a no-op.
func (s *Server) GC() int {
	n := s.dc.Sweep()
	s.gcSweeps.Add(1)
	s.reg.Counter("remotecached.gc.sweeps").Add(1)
	if n > 0 {
		s.gcExpired.Add(int64(n))
		s.reg.Counter("remotecached.gc.expired").Add(int64(n))
	}
	return n
}

// Store exposes the backing cache (tests reach through to seed or
// inspect entries).
func (s *Server) Store() *diskcache.Cache { return s.dc }

// Stats returns a counter snapshot.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Gets:     s.gets.Load(),
		Hits:     s.hits.Load(),
		Misses:   s.misses.Load(),
		Puts:     s.puts.Load(),
		Rejected: s.rejected.Load(),

		Unauthorized: s.unauthorized.Load(),
		GC: GCStats{
			TTLSeconds: int64(s.ttl / time.Second),
			Sweeps:     s.gcSweeps.Load(),
			Expired:    s.gcExpired.Load(),
		},

		Store: s.dc.Stats(),
	}
}

// Handler builds the daemon's routing table. version is served on
// GET /version (ccm.Version() in cmd/ccmcached). Data endpoints are
// gated behind the bearer token when one is configured; health probes
// stay open.
func (s *Server) Handler(version string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /entry/{key}", s.authed(s.drainGate(s.handleGet)))
	mux.HandleFunc("PUT /entry/{key}", s.authed(s.drainGate(s.handlePut)))
	mux.HandleFunc("GET /stats", s.authed(s.handleStats))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /version", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"version": version})
	})
	return mux
}

// authed wraps a data handler with the bearer-token check. With no token
// configured it is a passthrough.
func (s *Server) authed(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !authtoken.Authorize(r, s.token) {
			s.unauthorized.Add(1)
			s.reg.Counter("remotecached.unauthorized").Add(1)
			w.Header().Set("WWW-Authenticate", `Bearer realm="remotecache"`)
			writeError(w, &apiError{status: http.StatusUnauthorized, Code: CodeUnauthorized,
				Message: "missing or invalid bearer token"})
			return
		}
		h(w, r)
	}
}

// drainGate refuses data requests once BeginDrain has fired: a stable
// 503 draining envelope plus Retry-After, so clients back off instead
// of eating a torn connection when the listener closes moments later.
func (s *Server) drainGate(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.drained.Add(1)
			s.reg.Counter("remotecached.drained_requests").Add(1)
			writeError(w, &apiError{status: http.StatusServiceUnavailable, retryAfter: 1,
				Code: CodeDraining, Message: "server is draining for shutdown"})
			return
		}
		h(w, r)
	}
}

// readyzResponse is the /readyz body: overall status plus the detail a
// fleet operator needs to see at a glance — whether the disk degraded
// and what the TTL reaper has been doing.
type readyzResponse struct {
	Status   string  `json:"status"` // "ok" or "degraded"
	Degraded bool    `json:"degraded,omitempty"`
	Entries  int     `json:"entries"`
	Bytes    int64   `json:"bytes"`
	GC       GCStats `json:"gc"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := s.dc.Stats()
	resp := readyzResponse{
		Status:  "ok",
		Entries: st.Entries,
		Bytes:   st.Bytes,
		GC: GCStats{
			TTLSeconds: int64(s.ttl / time.Second),
			Sweeps:     s.gcSweeps.Load(),
			Expired:    s.gcExpired.Load(),
		},
	}
	if s.draining.Load() {
		resp.Status = "draining"
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	if st.Degraded {
		resp.Status = "degraded"
		resp.Degraded = true
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// entryAddr parses the (key, kind) address out of the request.
func entryAddr(r *http.Request) (diskcache.Key, uint32, *apiError) {
	var key diskcache.Key
	raw, err := hex.DecodeString(r.PathValue("key"))
	if err != nil || len(raw) != len(key) {
		return key, 0, &apiError{status: http.StatusBadRequest, Code: CodeBadRequest,
			Message: fmt.Sprintf("key must be %d hex bytes", len(key))}
	}
	copy(key[:], raw)
	kind, err := strconv.ParseUint(r.URL.Query().Get("kind"), 10, 32)
	if err != nil {
		return key, 0, &apiError{status: http.StatusBadRequest, Code: CodeBadRequest,
			Message: "kind must be an unsigned integer query parameter"}
	}
	return key, uint32(kind), nil
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	s.gets.Add(1)
	s.reg.Counter("remotecached.gets").Add(1)
	key, kind, aerr := entryAddr(r)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	// GetAny rather than Get: a verified entry stored under a different
	// kind (a client running another codec version probing the same key)
	// must read as a miss without being quarantined, or a mixed-version
	// fleet would destroy each other's entries. Integrity failures still
	// quarantine inside GetAny.
	payload, _, ok := s.dc.GetAny(key, kind)
	if !ok {
		s.misses.Add(1)
		s.reg.Counter("remotecached.misses").Add(1)
		writeError(w, &apiError{status: http.StatusNotFound, Code: CodeNotFound,
			Message: "no entry under that key and kind"})
		return
	}
	s.hits.Add(1)
	s.reg.Counter("remotecached.hits").Add(1)
	data := diskcache.EncodeEntry(kind, key, payload)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	s.puts.Add(1)
	s.reg.Counter("remotecached.puts").Add(1)
	key, kind, aerr := entryAddr(r)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	data, err := readCapped(r.Body, s.maxEntry)
	if err != nil {
		s.rejected.Add(1)
		s.reg.Counter("remotecached.rejected").Add(1)
		writeError(w, &apiError{status: http.StatusRequestEntityTooLarge, Code: CodeTooLarge,
			Message: err.Error()})
		return
	}
	// Verify on ingest: decode + checksum, and the embedded address must
	// match the one in the URL — an entry that lies about its own key
	// would serve the wrong artifact to every later reader.
	gotKind, gotKey, payload, err := diskcache.DecodeEntry(data)
	if err != nil {
		s.rejected.Add(1)
		s.reg.Counter("remotecached.rejected").Add(1)
		writeError(w, &apiError{status: http.StatusUnprocessableEntity, Code: CodeCorruptEntry,
			Message: fmt.Sprintf("entry failed verification: %v", err)})
		return
	}
	if gotKey != key || gotKind != kind {
		s.rejected.Add(1)
		s.reg.Counter("remotecached.rejected").Add(1)
		writeError(w, &apiError{status: http.StatusUnprocessableEntity, Code: CodeCorruptEntry,
			Message: "entry's embedded key/kind does not match the request address"})
		return
	}
	s.dc.Put(key, kind, payload)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, e *apiError) {
	if e.retryAfter > 0 {
		e.RetryAfter = e.retryAfter
		w.Header().Set("Retry-After", strconv.Itoa(e.retryAfter))
	}
	writeJSON(w, e.status, map[string]*apiError{"error": e})
}
