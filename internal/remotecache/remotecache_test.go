package remotecache

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ccmem/internal/diskcache"
	"ccmem/internal/obs"
)

func keyOf(payload []byte) diskcache.Key { return sha256.Sum256(payload) }

// newTestServer spins up a Server over a temp store plus an httptest
// front end, torn down with the test.
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := NewServer(t.TempDir(), ServerOptions{})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	hs := httptest.NewServer(srv.Handler("test"))
	t.Cleanup(hs.Close)
	return srv, hs
}

// fastTuning keeps test latencies tiny and removes real sleeping.
func fastTuning() Tuning {
	return Tuning{
		RequestTimeout: 250 * time.Millisecond,
		Retries:        -1, // none: each operation is one attempt
		Backoff:        time.Millisecond,
		TripAfter:      3,
		HalfOpenAfter:  time.Hour, // tests advance a fake clock instead
		Sleep:          func(time.Duration) {},
	}
}

func newTestClient(t *testing.T, url string, rt http.RoundTripper, tun Tuning, reg *obs.Registry) *Client {
	t.Helper()
	c, err := NewClient(Options{BaseURL: url, RoundTripper: rt, Obs: reg, Tuning: tun})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func flush(t *testing.T, c *Client) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Flush(ctx); err != nil {
		t.Fatalf("Flush: %v", err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	srv, hs := newTestServer(t)
	payload := []byte("allocated ILOC artifact bytes")
	key := keyOf(payload)

	writer := newTestClient(t, hs.URL, nil, fastTuning(), nil)
	writer.Put(key, 7, payload)
	flush(t, writer)

	// A different client (cold caches) must read back identical bytes.
	reader := newTestClient(t, hs.URL, nil, fastTuning(), nil)
	got, ok := reader.Get(key, 7)
	if !ok {
		t.Fatalf("Get: miss after Put+Flush")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Get returned different bytes: %q vs %q", got, payload)
	}
	// Wrong kind under the same key is a distinct address.
	if _, ok := reader.Get(key, 8); ok {
		t.Fatalf("Get with wrong kind unexpectedly hit")
	}
	ws, rs := writer.Stats(), reader.Stats()
	if ws.Puts != 1 || ws.PutErrors != 0 || ws.PutDrops != 0 {
		t.Fatalf("writer put stats: %+v", ws)
	}
	if rs.Gets != 2 || rs.Hits != 1 || rs.Misses != 1 {
		t.Fatalf("reader stats: %+v", rs)
	}
	ss := srv.Stats()
	if ss.Puts != 1 || ss.Hits != 1 || ss.Misses != 1 || ss.Rejected != 0 {
		t.Fatalf("server stats: %+v", ss)
	}
}

func TestServerRejectsCorruptUpload(t *testing.T) {
	srv, hs := newTestServer(t)
	payload := []byte("to be mangled")
	key := keyOf(payload)
	entry := diskcache.EncodeEntry(1, key, payload)

	put := func(t *testing.T, url string, body []byte) (int, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
		if err != nil {
			t.Fatalf("NewRequest: %v", err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("Do: %v", err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		var body2 struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if resp.StatusCode != http.StatusNoContent {
			if err := json.Unmarshal(raw, &body2); err != nil {
				t.Fatalf("error body is not the structured shape: %v (%q)", err, raw)
			}
			if body2.Error.Message == "" {
				t.Fatalf("structured error has no message: %q", raw)
			}
		}
		return resp.StatusCode, body2.Error.Code
	}

	addr := hs.URL + "/entry/" + hexKey(key) + "?kind=1"

	// Bit-flipped entry: checksum fails → 422 corrupt-entry.
	bad := append([]byte(nil), entry...)
	bad[len(bad)/2] ^= 1
	if st, code := put(t, addr, bad); st != http.StatusUnprocessableEntity || code != CodeCorruptEntry {
		t.Fatalf("bit-flipped upload: got %d/%s", st, code)
	}
	// Truncated entry → 422 corrupt-entry.
	if st, code := put(t, addr, entry[:len(entry)-5]); st != http.StatusUnprocessableEntity || code != CodeCorruptEntry {
		t.Fatalf("truncated upload: got %d/%s", st, code)
	}
	// Valid entry uploaded under a different address → 422 (an entry
	// that lies about its key must not be stored).
	otherKey := keyOf([]byte("other"))
	otherAddr := hs.URL + "/entry/" + hexKey(otherKey) + "?kind=1"
	if st, code := put(t, otherAddr, entry); st != http.StatusUnprocessableEntity || code != CodeCorruptEntry {
		t.Fatalf("mis-addressed upload: got %d/%s", st, code)
	}
	// Same bytes, wrong kind in the URL → 422.
	if st, code := put(t, hs.URL+"/entry/"+hexKey(key)+"?kind=2", entry); st != http.StatusUnprocessableEntity || code != CodeCorruptEntry {
		t.Fatalf("wrong-kind upload: got %d/%s", st, code)
	}
	// Malformed key → 400.
	if st, code := put(t, hs.URL+"/entry/zzzz?kind=1", entry); st != http.StatusBadRequest || code != CodeBadRequest {
		t.Fatalf("bad-key upload: got %d/%s", st, code)
	}

	if ss := srv.Stats(); ss.Rejected != 4 {
		t.Fatalf("server rejected = %d, want 4", ss.Rejected)
	}
	// None of the rejects stored anything.
	if _, ok := srv.Store().Get(key, 1); ok {
		t.Fatalf("corrupt upload reached the store")
	}

	// The real entry still goes through.
	if st, _ := put(t, addr, entry); st != http.StatusNoContent {
		t.Fatalf("valid upload: got %d", st)
	}
	if got, ok := srv.Store().Get(key, 1); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("valid upload not readable from store")
	}
}

func TestClientVerifiesResponses(t *testing.T) {
	_, hs := newTestServer(t)
	payload := []byte("bytes the wire will mangle")
	key := keyOf(payload)

	rt := &FaultRT{}
	tun := fastTuning()
	c := newTestClient(t, hs.URL, rt, tun, nil)
	c.Put(key, 1, payload)
	flush(t, c)

	for _, kind := range []FaultKind{FaultTruncate, FaultBitFlip} {
		rt.Arm(kind)
		if _, ok := c.Get(key, 1); ok {
			t.Fatalf("%s: corrupt response served as a hit", kind)
		}
		rt.Disarm()
	}
	if st := c.Stats(); st.Corruptions < 2 {
		t.Fatalf("corruptions = %d, want >= 2", st.Corruptions)
	}
	// Clean wire: same entry verifies and hits.
	got, ok := c.Get(key, 1)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("clean Get after faults: ok=%v", ok)
	}
}

func TestClientResponseSizeCap(t *testing.T) {
	_, hs := newTestServer(t)
	payload := bytes.Repeat([]byte{0xAB}, 4096)
	key := keyOf(payload)

	c := newTestClient(t, hs.URL, nil, fastTuning(), nil)
	c.Put(key, 1, payload)
	flush(t, c)

	capped := fastTuning()
	capped.MaxResponseBytes = 512
	small := newTestClient(t, hs.URL, nil, capped, nil)
	if _, ok := small.Get(key, 1); ok {
		t.Fatalf("over-cap response served as a hit")
	}
	if st := small.Stats(); st.Corruptions != 1 || st.Misses != 1 {
		t.Fatalf("capped stats: %+v", st)
	}
}

func TestClientFaultClassification(t *testing.T) {
	_, hs := newTestServer(t)
	rt := &FaultRT{}
	tun := fastTuning()
	tun.TripAfter = 100 // keep the circuit closed for this test
	tun.RequestTimeout = 20 * time.Millisecond
	c := newTestClient(t, hs.URL, rt, tun, nil)
	key := keyOf([]byte("x"))

	cases := []struct {
		fault FaultKind
		count func(Stats) int64
	}{
		{FaultTimeout, func(s Stats) int64 { return s.Timeouts }},
		{FaultRefused, func(s Stats) int64 { return s.NetErrors }},
		{FaultSlow, func(s Stats) int64 { return s.Timeouts }},
		{Fault5xx, func(s Stats) int64 { return s.HTTPErrors }},
	}
	for _, tc := range cases {
		before := tc.count(c.Stats())
		rt.Arm(tc.fault)
		if _, ok := c.Get(key, 1); ok {
			t.Fatalf("%s: faulted Get unexpectedly hit", tc.fault)
		}
		if after := tc.count(c.Stats()); after <= before {
			t.Fatalf("%s: classification counter did not move (%d -> %d)", tc.fault, before, after)
		}
		rt.Disarm()
	}
	if got := c.Stats().Misses; got != int64(len(cases)) {
		t.Fatalf("misses = %d, want %d (every fault is a miss)", got, len(cases))
	}
}

func TestRetriesWithBackoff(t *testing.T) {
	_, hs := newTestServer(t)
	rt := &FaultRT{}
	rt.Arm(FaultRefused)
	var slept []time.Duration
	tun := fastTuning()
	tun.Retries = 3
	tun.Backoff = 10 * time.Millisecond
	tun.Sleep = func(d time.Duration) { slept = append(slept, d) }
	c := newTestClient(t, hs.URL, rt, tun, nil)

	if _, ok := c.Get(keyOf([]byte("y")), 1); ok {
		t.Fatalf("Get against refused transport hit")
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("backoff %d = %v, want %v (deterministic doubling)", i, slept[i], want[i])
		}
	}
	if st := c.Stats(); st.Retries != 3 || rt.Injected() != 4 {
		t.Fatalf("retries=%d injected=%d, want 3 and 4", st.Retries, rt.Injected())
	}
}

func TestCircuitBreakerTripsAndRecovers(t *testing.T) {
	_, hs := newTestServer(t)
	rt := &FaultRT{}
	rt.Arm(FaultRefused)

	clock := time.Unix(1000, 0)
	tun := fastTuning()
	tun.TripAfter = 3
	tun.HalfOpenAfter = 2 * time.Second
	tun.Now = func() time.Time { return clock }
	reg := obs.NewRegistry()
	c := newTestClient(t, hs.URL, rt, tun, reg)
	key := keyOf([]byte("z"))

	gauge := func() int64 { return reg.Gauge("remotecache.circuit_state").Value() }

	// Three consecutive failures trip the breaker open.
	for i := 0; i < 3; i++ {
		if c.State() != StateClosed {
			t.Fatalf("breaker opened early at failure %d", i)
		}
		c.Get(key, 1)
	}
	if c.State() != StateOpen || gauge() != int64(StateOpen) {
		t.Fatalf("after %d failures: state=%v gauge=%d, want open", tun.TripAfter, c.State(), gauge())
	}
	// While open, lookups are instant misses: no network activity.
	before := rt.Injected()
	c.Get(key, 1)
	if rt.Injected() != before {
		t.Fatalf("open circuit still touched the network")
	}
	if st := c.Stats(); st.Skipped == 0 || st.Trips != 1 {
		t.Fatalf("open-circuit stats: %+v", st)
	}

	// Cooldown passes; the next lookup is the half-open probe. Still
	// faulted → back to open, trips++.
	clock = clock.Add(3 * time.Second)
	c.Get(key, 1)
	if st := c.Stats(); c.State() != StateOpen || st.Trips != 2 || st.Probes != 1 {
		t.Fatalf("failed probe: state=%v stats=%+v", c.State(), st)
	}

	// Server recovers; after another cooldown the probe succeeds (404 is
	// a healthy answer) and the circuit closes.
	rt.Disarm()
	clock = clock.Add(3 * time.Second)
	c.Get(key, 1)
	if c.State() != StateClosed || gauge() != int64(StateClosed) {
		t.Fatalf("after good probe: state=%v gauge=%d, want closed", c.State(), gauge())
	}
	if st := c.Stats(); st.Probes != 2 {
		t.Fatalf("probes = %d, want 2", st.Probes)
	}
	// Closed again: real traffic flows.
	c.Put(key, 1, []byte("z"))
	flush(t, c)
	if _, ok := c.Get(key, 1); !ok {
		t.Fatalf("recovered circuit does not serve hits")
	}
}

func TestPutQueueBoundedDrops(t *testing.T) {
	_, hs := newTestServer(t)
	rt := &FaultRT{}
	rt.Arm(FaultSlow) // put worker blocks until the request timeout
	tun := fastTuning()
	tun.RequestTimeout = 50 * time.Millisecond
	tun.PutQueue = 1
	c := newTestClient(t, hs.URL, rt, tun, nil)

	for i := 0; i < 8; i++ {
		p := []byte{byte(i)}
		c.Put(keyOf(p), 1, p)
	}
	// The queue holds 1 and the worker is stuck in one slow request, so
	// most of the burst must have been dropped, not buffered.
	if st := c.Stats(); st.PutDrops < 5 {
		t.Fatalf("put drops = %d, want >= 5 of 8", st.PutDrops)
	}
	rt.Disarm()
}

func TestPutAfterCloseIsDropped(t *testing.T) {
	_, hs := newTestServer(t)
	c, err := NewClient(Options{BaseURL: hs.URL, Tuning: fastTuning()})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	c.Put(keyOf([]byte("late")), 1, []byte("late")) // must not panic
	if st := c.Stats(); st.PutDrops != 1 {
		t.Fatalf("put after close: drops = %d, want 1", st.PutDrops)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestReportDecodeFailureReclassifies(t *testing.T) {
	_, hs := newTestServer(t)
	c := newTestClient(t, hs.URL, nil, fastTuning(), nil)
	payload := []byte("checksum-consistent but undecodable")
	key := keyOf(payload)
	c.Put(key, 1, payload)
	flush(t, c)
	if _, ok := c.Get(key, 1); !ok {
		t.Fatalf("warm Get missed")
	}
	c.ReportDecodeFailure()
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0+1 || st.Corruptions != 1 {
		t.Fatalf("after reclassification: %+v", st)
	}
}

func TestNewClientRejectsBadURL(t *testing.T) {
	for _, u := range []string{"", "not a url", "/just/a/path"} {
		if _, err := NewClient(Options{BaseURL: u}); err == nil {
			t.Fatalf("NewClient(%q) accepted a bad URL", u)
		}
	}
}

func TestServerStatsEndpoint(t *testing.T) {
	_, hs := newTestServer(t)
	resp, err := http.Get(hs.URL + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer resp.Body.Close()
	var st ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode /stats: %v", err)
	}
	resp2, err := http.Get(hs.URL + "/version")
	if err != nil {
		t.Fatalf("GET /version: %v", err)
	}
	defer resp2.Body.Close()
	raw, _ := io.ReadAll(resp2.Body)
	if !strings.Contains(string(raw), "test") {
		t.Fatalf("/version = %q, want the injected version string", raw)
	}
}

func hexKey(k diskcache.Key) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 0, 64)
	for _, b := range k {
		out = append(out, digits[b>>4], digits[b&0xF])
	}
	return string(out)
}
