package remotecache

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ccmem/internal/diskcache"
	"ccmem/internal/obs"
)

var (
	_ Tier = (*Client)(nil)
	_ Tier = (*Fleet)(nil)
)

// FleetOptions configure NewFleet.
type FleetOptions struct {
	// BaseURLs are the fleet's cache servers, one ccmcached each. Order
	// does not matter for placement (rendezvous hashing keys off the
	// URL, not the position), but Stats().Nodes reports in this order.
	BaseURLs []string
	// RoundTripper overrides every node's HTTP transport; nil uses
	// http.DefaultTransport.
	RoundTripper http.RoundTripper
	// RoundTrippers overrides transports per node — the per-node fault
	// injection seam. When non-nil it must be exactly len(BaseURLs);
	// nil entries fall back to RoundTripper.
	RoundTrippers []http.RoundTripper
	// AuthToken is the shared fleet bearer token (ccmcached -auth-token).
	AuthToken string
	// Obs receives the per-node breaker metrics plus the
	// remotecache.fleet.* counters. nil disables.
	Obs *obs.Registry
	// Tuning holds the per-node hardening knobs (every node gets the
	// same ones); zero fields take the client defaults.
	Tuning Tuning
	// Replicas is how many healthy nodes a write-behind Put lands on —
	// the first R in the key's preference order whose breaker is not
	// open. <= 0 means 2; capped at the node count.
	Replicas int
	// HedgeDelay, when > 0, arms hedged reads: if the preferred node
	// has not answered a Get within the delay, a second read is sent to
	// the next node in the preference order and the first verified hit
	// wins. Whichever side answers, the bytes are identical (both are
	// SHA-256-verified against the same key) and the lookup counts
	// exactly one hit or miss; only latency — and the hedge counters —
	// depend on timing. 0 disables hedging.
	HedgeDelay time.Duration
}

// fleetNode is one server in the fleet: its identity for rendezvous
// hashing plus a full hardened Client (timeouts, retries, verification,
// its own circuit breaker and write-behind queue).
type fleetNode struct {
	url string
	c   *Client
}

// Fleet is a replicated remote cache tier over N ccmcached servers,
// behind the same Tier contract the single-server Client satisfies.
// The replication story is deliberately client-side and gossip-free:
//
//   - Placement: rendezvous (highest-random-weight) hashing over the
//     content-addressed key orders the nodes per key, identically in
//     every process that knows the same URLs — no coordinator, no
//     rebalancing state, and adding or removing a node only moves the
//     keys that hashed to it.
//   - Reads walk the preference order, advancing past per-node circuit
//     breakers and failures; a clean miss from a healthy node keeps
//     walking too (the entry may have been placed while that node was
//     sick). Optionally a hedged second read races the next node after
//     HedgeDelay.
//   - Writes replicate write-behind to the first Replicas healthy
//     nodes, so any single node's death leaves every entry reachable.
//   - A hit on a secondary queues an asynchronous read-repair put back
//     to the healthy nodes ahead of it, healing placement drift.
//
// Any single node failure therefore costs time, never correctness:
// compiled bytes are identical whether the primary, a replica, or no
// node at all served the artifact.
type Fleet struct {
	nodes    []*fleetNode
	replicas int
	hedge    time.Duration

	wg sync.WaitGroup // in-flight hedge/primary goroutines

	gets, hits, misses atomic.Int64
	corrupt            atomic.Int64

	failovers, hedgesLaunched atomic.Int64
	hedgesWon, repairs        atomic.Int64

	cFailovers *obs.Counter // remotecache.fleet.failovers
	cHedges    *obs.Counter // remotecache.fleet.hedges
	cHedgesWon *obs.Counter // remotecache.fleet.hedges_won
	cRepairs   *obs.Counter // remotecache.fleet.repairs
}

// NewFleet validates the node URLs and starts one hardened Client per
// node. Any invalid or duplicate URL fails the whole fleet (the caller
// degrades to no remote tier, same as a bad single URL).
func NewFleet(opts FleetOptions) (*Fleet, error) {
	if len(opts.BaseURLs) == 0 {
		return nil, errors.New("remotecache: fleet needs at least one base URL")
	}
	if opts.RoundTrippers != nil && len(opts.RoundTrippers) != len(opts.BaseURLs) {
		return nil, fmt.Errorf("remotecache: %d per-node transports for %d nodes",
			len(opts.RoundTrippers), len(opts.BaseURLs))
	}
	f := &Fleet{
		hedge:      opts.HedgeDelay,
		cFailovers: opts.Obs.Counter("remotecache.fleet.failovers"),
		cHedges:    opts.Obs.Counter("remotecache.fleet.hedges"),
		cHedgesWon: opts.Obs.Counter("remotecache.fleet.hedges_won"),
		cRepairs:   opts.Obs.Counter("remotecache.fleet.repairs"),
	}
	seen := make(map[string]bool, len(opts.BaseURLs))
	for i, u := range opts.BaseURLs {
		id := strings.TrimRight(u, "/")
		if seen[id] {
			f.closeNodes()
			return nil, fmt.Errorf("remotecache: duplicate fleet node %q", u)
		}
		seen[id] = true
		rt := opts.RoundTripper
		if opts.RoundTrippers != nil && opts.RoundTrippers[i] != nil {
			rt = opts.RoundTrippers[i]
		}
		c, err := NewClient(Options{
			BaseURL:      u,
			RoundTripper: rt,
			AuthToken:    opts.AuthToken,
			Obs:          opts.Obs,
			Tuning:       opts.Tuning,
		})
		if err != nil {
			f.closeNodes()
			return nil, err
		}
		f.nodes = append(f.nodes, &fleetNode{url: id, c: c})
	}
	f.replicas = opts.Replicas
	if f.replicas <= 0 {
		f.replicas = 2
	}
	if f.replicas > len(f.nodes) {
		f.replicas = len(f.nodes)
	}
	return f, nil
}

func (f *Fleet) closeNodes() {
	for _, n := range f.nodes {
		n.c.Close()
	}
}

// order returns node indices in the key's rendezvous preference order:
// score every node by hashing (URL, key) and sort descending. The hash
// depends only on the node's URL and the key, so every process in the
// fleet — farm workers, daemons, repair writers — computes the same
// order without exchanging a byte.
func (f *Fleet) order(key diskcache.Key) []int {
	type scored struct {
		idx   int
		score uint64
	}
	ss := make([]scored, len(f.nodes))
	for i, n := range f.nodes {
		h := sha256.New()
		h.Write([]byte(n.url))
		h.Write([]byte{0})
		h.Write(key[:])
		var sum [sha256.Size]byte
		h.Sum(sum[:0])
		ss[i] = scored{idx: i, score: binary.BigEndian.Uint64(sum[:8])}
	}
	sort.Slice(ss, func(a, b int) bool {
		if ss[a].score != ss[b].score {
			return ss[a].score > ss[b].score
		}
		return ss[a].idx < ss[b].idx
	})
	out := make([]int, len(ss))
	for i, s := range ss {
		out[i] = s.idx
	}
	return out
}

// Preference returns the key's node URLs in rendezvous order — the
// order reads walk and writes replicate along. Exported for tests and
// fleet debugging ("which node should have this artifact?").
func (f *Fleet) Preference(key diskcache.Key) []string {
	order := f.order(key)
	out := make([]string, len(order))
	for i, ni := range order {
		out[i] = f.nodes[ni].url
	}
	return out
}

// nodeResult is one node-level lookup outcome inside a fleet Get.
type nodeResult struct {
	payload []byte
	res     GetResult
}

// Get walks the key's preference order until a node serves a verified
// hit. Failures and open circuits advance the walk; clean misses do
// too, because the entry may have been placed further down while an
// earlier node was sick. Exactly one fleet-level hit or miss is counted
// per call, whatever the walk (or a won hedge) did underneath.
func (f *Fleet) Get(key diskcache.Key, kind uint32) ([]byte, bool) {
	f.gets.Add(1)
	order := f.order(key)
	primaryFailed := false
	answered := false

	serve := func(pos int, payload []byte) ([]byte, bool) {
		f.hits.Add(1)
		if pos > 0 {
			if primaryFailed {
				f.failovers.Add(1)
				f.cFailovers.Add(1)
			}
			f.repair(order[:pos], key, kind, payload)
		}
		return payload, true
	}

	i := 0
	if f.hedge > 0 && len(order) > 1 {
		pRes, hRes, launched := f.hedgedPair(f.nodes[order[0]], f.nodes[order[1]], key, kind)
		if pRes != nil && pRes.res == GetHit {
			return serve(0, pRes.payload)
		}
		if hRes != nil && hRes.res == GetHit {
			f.hedgesWon.Add(1)
			f.cHedgesWon.Add(1)
			return serve(1, hRes.payload)
		}
		// Neither side hit: both results are in (hRes only if launched).
		primaryFailed = pRes.res == GetFailed || pRes.res == GetSkipped
		answered = pRes.res == GetMiss || (hRes != nil && hRes.res == GetMiss)
		i = 1
		if launched {
			i = 2
		}
	}
	for ; i < len(order); i++ {
		r := f.getFrom(f.nodes[order[i]], key, kind)
		switch r.res {
		case GetHit:
			return serve(i, r.payload)
		case GetMiss:
			answered = true
		default:
			if i == 0 {
				primaryFailed = true
			}
		}
	}
	f.misses.Add(1)
	if primaryFailed && answered {
		// The preferred node failed but another node resolved the lookup
		// (to a clean miss): the fleet absorbed a node failure.
		f.failovers.Add(1)
		f.cFailovers.Add(1)
	}
	return nil, false
}

func (f *Fleet) getFrom(n *fleetNode, key diskcache.Key, kind uint32) nodeResult {
	payload, res := n.c.GetClassified(key, kind)
	return nodeResult{payload: payload, res: res}
}

// hedgedPair races the preferred node against the next one: the second
// request launches only if the first has not answered within the hedge
// delay, and the first verified hit wins. On a hit the loser may still
// be in flight (its result is nil here; the goroutine finishes in the
// background and Close waits for it). With no hit, both resolved
// results are returned so the caller can classify the pair.
func (f *Fleet) hedgedPair(primary, hedge *fleetNode, key diskcache.Key, kind uint32) (pRes, hRes *nodeResult, launched bool) {
	prim := make(chan nodeResult, 1)
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		prim <- f.getFrom(primary, key, kind)
	}()

	timer := time.NewTimer(f.hedge)
	defer timer.Stop()
	select {
	case r := <-prim:
		return &r, nil, false
	case <-timer.C:
	}

	f.hedgesLaunched.Add(1)
	f.cHedges.Add(1)
	hch := make(chan nodeResult, 1)
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		hch <- f.getFrom(hedge, key, kind)
	}()
	for pRes == nil || hRes == nil {
		select {
		case r := <-prim:
			pRes = &r
			if r.res == GetHit {
				return pRes, nil, true
			}
		case r := <-hch:
			hRes = &r
			if r.res == GetHit {
				return nil, hRes, true
			}
		}
	}
	return pRes, hRes, true
}

// repair queues an asynchronous read-repair put of a secondary hit back
// toward the nodes ahead of the server in the key's preference order —
// the primary first of all. Only healthy nodes (breaker not open) are
// repaired; a dead primary gets its copy the next time a write-behind
// or repair runs after it recovers.
func (f *Fleet) repair(ahead []int, key diskcache.Key, kind uint32, payload []byte) {
	for _, ni := range ahead {
		n := f.nodes[ni]
		if n.c.State() == StateOpen {
			continue
		}
		n.c.Put(key, kind, payload)
		f.repairs.Add(1)
		f.cRepairs.Add(1)
	}
}

// Put replicates payload write-behind to the first Replicas nodes in
// the key's preference order whose breaker is not open. Like the
// single-node client it never blocks a compile; with every node's
// circuit open the put is simply not queued anywhere (each node's own
// drop accounting covers queue overflow).
func (f *Fleet) Put(key diskcache.Key, kind uint32, payload []byte) {
	stored := 0
	for _, ni := range f.order(key) {
		if stored >= f.replicas {
			break
		}
		n := f.nodes[ni]
		if n.c.State() == StateOpen {
			continue
		}
		n.c.Put(key, kind, payload)
		stored++
	}
}

// ReportDecodeFailure reclassifies the most recent fleet-level hit as a
// miss: the entry verified end to end on the wire but the payload would
// not decode as an artifact. Fleet-level only — per-node counters keep
// the wire-level truth.
func (f *Fleet) ReportDecodeFailure() {
	f.hits.Add(-1)
	f.misses.Add(1)
	f.corrupt.Add(1)
}

// Flush drains every node's write-behind queue (or ctx expires) — the
// exit barrier before a fleet process reports or exits.
func (f *Fleet) Flush(ctx context.Context) error {
	for _, n := range f.nodes {
		if err := n.c.Flush(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Close waits for in-flight hedge reads, then drains and stops every
// node's write-behind worker.
func (f *Fleet) Close() error {
	f.wg.Wait()
	var first error
	for _, n := range f.nodes {
		if err := n.c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// State folds the per-node breakers into one circuit position with
// "any healthy node keeps the tier usable" semantics: closed while any
// node's breaker is closed, half-open when the best any node offers is
// a probe window, and open only when every node's breaker is open —
// the only state /readyz reports as degraded.
func (f *Fleet) State() State {
	best := StateOpen
	for _, n := range f.nodes {
		if s := n.c.State(); s < best {
			best = s
		}
	}
	return best
}

// Stats returns a fleet-level snapshot: logical Gets/Hits/Misses (one
// per fleet Get), every other base counter summed across nodes, the
// fleet counters, and the per-node breakdown in configured node order.
func (f *Fleet) Stats() Stats {
	st := Stats{
		Gets:   f.gets.Load(),
		Hits:   f.hits.Load(),
		Misses: f.misses.Load(),

		Failovers:      f.failovers.Load(),
		HedgesLaunched: f.hedgesLaunched.Load(),
		HedgesWon:      f.hedgesWon.Load(),
		Repairs:        f.repairs.Load(),

		Corruptions: f.corrupt.Load(),
		Circuit:     f.State().String(),
		Nodes:       make([]NodeStats, 0, len(f.nodes)),
	}
	for _, n := range f.nodes {
		ns := n.c.Stats()
		st.Puts += ns.Puts
		st.PutDrops += ns.PutDrops
		st.PutErrors += ns.PutErrors
		st.Retries += ns.Retries
		st.Timeouts += ns.Timeouts
		st.NetErrors += ns.NetErrors
		st.HTTPErrors += ns.HTTPErrors
		st.Corruptions += ns.Corruptions
		st.Skipped += ns.Skipped
		st.Trips += ns.Trips
		st.Probes += ns.Probes
		st.Nodes = append(st.Nodes, NodeStats{URL: n.url, Stats: ns})
	}
	return st
}
