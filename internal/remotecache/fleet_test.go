package remotecache

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"ccmem/internal/diskcache"
)

// fleetHarness is an n-node fleet over real httptest ccmcached servers,
// with a per-node FaultRT seam and a per-node direct client for seeding
// and inspecting individual stores.
type fleetHarness struct {
	fleet  *Fleet
	urls   []string
	faults []*FaultRT
	direct []*Client
}

func newFleetHarness(t *testing.T, n int, hedge time.Duration) *fleetHarness {
	t.Helper()
	h := &fleetHarness{}
	for i := 0; i < n; i++ {
		_, hs := newTestServer(t)
		h.urls = append(h.urls, hs.URL)
		h.faults = append(h.faults, &FaultRT{})
		h.direct = append(h.direct, newTestClient(t, hs.URL, nil, fastTuning(), nil))
	}
	f, err := NewFleet(FleetOptions{
		BaseURLs:      h.urls,
		RoundTrippers: roundTrippers(h.faults),
		Tuning:        fastTuning(),
		HedgeDelay:    hedge,
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	h.fleet = f
	return h
}

func roundTrippers(fs []*FaultRT) []http.RoundTripper {
	out := make([]http.RoundTripper, len(fs))
	for i, f := range fs {
		out[i] = f
	}
	return out
}

// nodeIndex maps a fleet node URL back to its harness index.
func (h *fleetHarness) nodeIndex(t *testing.T, url string) int {
	t.Helper()
	for i, u := range h.urls {
		if u == url {
			return i
		}
	}
	t.Fatalf("unknown fleet node %q", url)
	return -1
}

// preference returns the harness indices in the key's rendezvous order.
func (h *fleetHarness) preference(t *testing.T, key diskcache.Key) []int {
	t.Helper()
	urls := h.fleet.Preference(key)
	out := make([]int, len(urls))
	for i, u := range urls {
		out[i] = h.nodeIndex(t, u)
	}
	return out
}

func flushFleet(t *testing.T, f *Fleet) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.Flush(ctx); err != nil {
		t.Fatalf("fleet Flush: %v", err)
	}
}

// assertFleetInvariant checks the fleet-level counter contract: every
// logical Get resolves to exactly one hit or one miss, whatever the
// node walk underneath did.
func assertFleetInvariant(t *testing.T, f *Fleet) {
	t.Helper()
	st := f.Stats()
	if st.Gets != st.Hits+st.Misses {
		t.Fatalf("fleet invariant broken: gets=%d hits=%d misses=%d", st.Gets, st.Hits, st.Misses)
	}
}

func TestFleetPreferenceDeterministicAcrossOrdering(t *testing.T) {
	h := newFleetHarness(t, 3, 0)
	// A second fleet over the same servers with the URL list reversed
	// must compute identical preference orders: placement depends on
	// node identity, not flag order.
	rev := []string{h.urls[2], h.urls[1], h.urls[0]}
	f2, err := NewFleet(FleetOptions{BaseURLs: rev, Tuning: fastTuning()})
	if err != nil {
		t.Fatalf("NewFleet(reversed): %v", err)
	}
	defer f2.Close()

	for i := 0; i < 32; i++ {
		key := keyOf([]byte(fmt.Sprintf("key-%d", i)))
		a := h.fleet.Preference(key)
		b := f2.Preference(key)
		if len(a) != 3 || len(b) != 3 {
			t.Fatalf("preference length: %d vs %d", len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("key %d: preference diverges at %d: %v vs %v", i, j, a, b)
			}
		}
		// And it is a permutation of the node set.
		seen := map[string]bool{}
		for _, u := range a {
			seen[u] = true
		}
		if len(seen) != 3 {
			t.Fatalf("key %d: preference not a permutation: %v", i, a)
		}
	}
}

func TestFleetRendezvousMinimalDisruption(t *testing.T) {
	// Rendezvous hashing's selling point: removing a node only moves
	// the keys that preferred it. Compare primaries between a 3-node
	// fleet and the same fleet minus its last node.
	h := newFleetHarness(t, 3, 0)
	f2, err := NewFleet(FleetOptions{BaseURLs: h.urls[:2], Tuning: fastTuning()})
	if err != nil {
		t.Fatalf("NewFleet(2 nodes): %v", err)
	}
	defer f2.Close()

	moved, kept := 0, 0
	for i := 0; i < 64; i++ {
		key := keyOf([]byte(fmt.Sprintf("key-%d", i)))
		before := h.fleet.Preference(key)[0]
		after := f2.Preference(key)[0]
		if before == h.urls[2] {
			moved++
			continue // this key's primary was removed; any new primary is fine
		}
		kept++
		if after != before {
			t.Fatalf("key %d: primary moved from %s to %s though %s was not removed",
				i, before, after, before)
		}
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate key split: moved=%d kept=%d (want both nonzero)", moved, kept)
	}
}

func TestFleetPutReplicatesToFirstRHealthy(t *testing.T) {
	h := newFleetHarness(t, 3, 0)
	payload := []byte("replicated artifact")
	key := keyOf(payload)
	pref := h.preference(t, key)

	h.fleet.Put(key, 1, payload)
	flushFleet(t, h.fleet)

	for rank, idx := range pref {
		_, ok := h.direct[idx].Get(key, 1)
		if rank < 2 && !ok {
			t.Fatalf("replica rank %d (node %d) missing entry", rank, idx)
		}
		if rank >= 2 && ok {
			t.Fatalf("node %d beyond replica count has entry", idx)
		}
	}
	assertFleetInvariant(t, h.fleet)
}

func TestFleetPutSkipsOpenBreaker(t *testing.T) {
	h := newFleetHarness(t, 3, 0)
	payload := []byte("skip the tripped node")
	key := keyOf(payload)
	pref := h.preference(t, key)

	// Trip the primary's breaker with failed reads.
	h.faults[pref[0]].Arm(FaultRefused)
	for i := 0; i < 3; i++ {
		h.fleet.Get(key, 1)
	}
	h.faults[pref[0]].Disarm()

	h.fleet.Put(key, 1, payload)
	flushFleet(t, h.fleet)

	if _, ok := h.direct[pref[0]].Get(key, 1); ok {
		t.Fatalf("open-breaker primary received the put")
	}
	for _, rank := range []int{1, 2} {
		if _, ok := h.direct[pref[rank]].Get(key, 1); !ok {
			t.Fatalf("healthy node at rank %d missing entry", rank)
		}
	}
	assertFleetInvariant(t, h.fleet)
}

func TestFleetFailoverReadAndCounter(t *testing.T) {
	h := newFleetHarness(t, 3, 0)
	payload := []byte("survives a primary outage")
	key := keyOf(payload)
	pref := h.preference(t, key)

	// Warm with all nodes healthy: entry lands on ranks 0 and 1.
	h.fleet.Put(key, 1, payload)
	flushFleet(t, h.fleet)

	h.faults[pref[0]].Arm(FaultRefused)
	got, ok := h.fleet.Get(key, 1)
	if !ok {
		t.Fatalf("Get: miss with a healthy replica present")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("failover read returned different bytes")
	}
	st := h.fleet.Stats()
	if st.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", st.Failovers)
	}
	if st.Hits != 1 {
		t.Fatalf("hits = %d, want exactly 1 for the failover read", st.Hits)
	}
	assertFleetInvariant(t, h.fleet)
}

func TestFleetReadRepairHealsPrimary(t *testing.T) {
	h := newFleetHarness(t, 3, 0)
	payload := []byte("repair me upward")
	key := keyOf(payload)
	pref := h.preference(t, key)

	// Seed only the secondary, as if the primary had been sick when the
	// entry was written.
	h.direct[pref[1]].Put(key, 1, payload)
	flush(t, h.direct[pref[1]])

	got, ok := h.fleet.Get(key, 1)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("secondary hit failed: ok=%v", ok)
	}
	flushFleet(t, h.fleet) // drain the async repair put

	if _, ok := h.direct[pref[0]].Get(key, 1); !ok {
		t.Fatalf("primary not healed by read-repair")
	}
	st := h.fleet.Stats()
	if st.Repairs < 1 {
		t.Fatalf("repairs = %d, want >= 1", st.Repairs)
	}
	// A healthy primary answering a clean miss is not a failover.
	if st.Failovers != 0 {
		t.Fatalf("failovers = %d, want 0 (primary answered with a miss)", st.Failovers)
	}
	assertFleetInvariant(t, h.fleet)
}

func TestFleetAllNodesDownDegradesToMiss(t *testing.T) {
	h := newFleetHarness(t, 3, 0)
	payload := []byte("nobody home")
	key := keyOf(payload)
	for _, f := range h.faults {
		f.Arm(FaultRefused)
	}

	// Every read is a miss, never an error surfaced to the caller, and
	// after TripAfter failures per node the whole fleet reads as open.
	for i := 0; i < 4; i++ {
		if _, ok := h.fleet.Get(key, 1); ok {
			t.Fatalf("hit from an all-down fleet")
		}
	}
	if got := h.fleet.State(); got != StateOpen {
		t.Fatalf("fleet state = %v, want open with every breaker tripped", got)
	}
	if h.fleet.Stats().Circuit != "open" {
		t.Fatalf("circuit = %q, want open", h.fleet.Stats().Circuit)
	}
	// Puts must not panic or block with everything open.
	h.fleet.Put(key, 1, payload)
	assertFleetInvariant(t, h.fleet)
}

func TestFleetStateFoldsAcrossNodes(t *testing.T) {
	h := newFleetHarness(t, 3, 0)
	if got := h.fleet.State(); got != StateClosed {
		t.Fatalf("fresh fleet state = %v, want closed", got)
	}
	// Trip one node: the fleet stays closed — one healthy node keeps
	// the tier usable.
	key := keyOf([]byte("state probe"))
	pref := h.preference(t, key)
	h.faults[pref[0]].Arm(FaultTimeout)
	for i := 0; i < 3; i++ {
		h.fleet.Get(key, 1)
	}
	if got := h.fleet.State(); got != StateClosed {
		t.Fatalf("fleet state with one tripped node = %v, want closed", got)
	}
	st := h.fleet.Stats()
	if st.Trips != 1 {
		t.Fatalf("summed trips = %d, want 1", st.Trips)
	}
	// The per-node blocks disagree in exactly the right place.
	var open, closed int
	for _, ns := range st.Nodes {
		switch ns.Stats.Circuit {
		case "open":
			open++
		case "closed":
			closed++
		}
	}
	if open != 1 || closed != 2 {
		t.Fatalf("per-node circuits: open=%d closed=%d, want 1/2", open, closed)
	}
}

func TestFleetHedgeWinsOnSlowPrimary(t *testing.T) {
	h := newFleetHarness(t, 2, 5*time.Millisecond)
	payload := []byte("hedged artifact")
	key := keyOf(payload)
	pref := h.preference(t, key)

	// Both nodes hold the entry (R=2 write with everything healthy).
	h.fleet.Put(key, 1, payload)
	flushFleet(t, h.fleet)

	// The primary hangs until its request deadline; the hedge fires
	// after 5ms and wins with a verified hit from the secondary.
	h.faults[pref[0]].Arm(FaultSlow)
	got, ok := h.fleet.Get(key, 1)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("hedged read failed: ok=%v", ok)
	}
	h.faults[pref[0]].Disarm()

	st := h.fleet.Stats()
	if st.HedgesLaunched != 1 || st.HedgesWon != 1 {
		t.Fatalf("hedges launched=%d won=%d, want 1/1", st.HedgesLaunched, st.HedgesWon)
	}
	// A won hedge counts exactly one fleet-level hit.
	if st.Hits != 1 {
		t.Fatalf("hits = %d, want exactly 1 for the hedged lookup", st.Hits)
	}
	assertFleetInvariant(t, h.fleet)
}

func TestFleetHedgeIdleOnFastPrimary(t *testing.T) {
	// With a healthy primary and a generous delay, the hedge never
	// launches: hedging costs nothing on the happy path.
	h := newFleetHarness(t, 2, time.Second)
	payload := []byte("prompt primary")
	key := keyOf(payload)

	h.fleet.Put(key, 1, payload)
	flushFleet(t, h.fleet)

	for i := 0; i < 3; i++ {
		if _, ok := h.fleet.Get(key, 1); !ok {
			t.Fatalf("warm read %d missed", i)
		}
	}
	st := h.fleet.Stats()
	if st.HedgesLaunched != 0 {
		t.Fatalf("hedges launched = %d, want 0 with a fast primary", st.HedgesLaunched)
	}
	if st.Hits != 3 {
		t.Fatalf("hits = %d, want 3", st.Hits)
	}
	assertFleetInvariant(t, h.fleet)
}

func TestFleetHedgeSoakInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("hedging soak skipped in -short mode")
	}
	// Soak the hedged path under a permanently slow node: many keys,
	// some preferring the slow node (hedge wins), some the healthy one
	// (hedge may or may not launch). Whatever the timing does, bytes
	// stay correct and the one-resolution-per-Get invariant holds.
	h := newFleetHarness(t, 2, 2*time.Millisecond)
	type entry struct {
		key     diskcache.Key
		payload []byte
	}
	var entries []entry
	for i := 0; i < 24; i++ {
		p := []byte(fmt.Sprintf("soak artifact %d", i))
		e := entry{key: keyOf(p), payload: p}
		entries = append(entries, e)
		h.fleet.Put(e.key, 1, e.payload)
	}
	flushFleet(t, h.fleet)

	h.faults[0].Arm(FaultSlow)
	for _, e := range entries {
		got, ok := h.fleet.Get(e.key, 1)
		if !ok || !bytes.Equal(got, e.payload) {
			t.Fatalf("soak read failed for %x: ok=%v", e.key[:4], ok)
		}
	}
	h.faults[0].Disarm()
	assertFleetInvariant(t, h.fleet)
	st := h.fleet.Stats()
	if st.Hits != int64(len(entries)) {
		t.Fatalf("hits = %d, want %d", st.Hits, len(entries))
	}
}

func TestFleetDecodeFailureReclassifies(t *testing.T) {
	h := newFleetHarness(t, 2, 0)
	payload := []byte("wire-valid, decode-invalid")
	key := keyOf(payload)
	h.fleet.Put(key, 1, payload)
	flushFleet(t, h.fleet)

	if _, ok := h.fleet.Get(key, 1); !ok {
		t.Fatalf("warm read missed")
	}
	h.fleet.ReportDecodeFailure()
	st := h.fleet.Stats()
	if st.Hits != 0 || st.Misses != 1 || st.Corruptions != 1 {
		t.Fatalf("after decode failure: hits=%d misses=%d corrupt=%d, want 0/1/1",
			st.Hits, st.Misses, st.Corruptions)
	}
	assertFleetInvariant(t, h.fleet)
}

func TestFleetRejectsBadConfig(t *testing.T) {
	if _, err := NewFleet(FleetOptions{}); err == nil {
		t.Fatalf("NewFleet with no URLs succeeded")
	}
	if _, err := NewFleet(FleetOptions{
		BaseURLs: []string{"http://a.example", "http://a.example/"},
	}); err == nil {
		t.Fatalf("NewFleet with duplicate node URLs succeeded")
	}
	if _, err := NewFleet(FleetOptions{
		BaseURLs:      []string{"http://a.example", "http://b.example"},
		RoundTrippers: []http.RoundTripper{nil},
	}); err == nil {
		t.Fatalf("NewFleet with mismatched per-node transports succeeded")
	}
}

func TestFleetStatsJSONShape(t *testing.T) {
	h := newFleetHarness(t, 2, 0)
	payload := []byte("json shape probe")
	key := keyOf(payload)
	h.fleet.Put(key, 1, payload)
	flushFleet(t, h.fleet)
	h.fleet.Get(key, 1)

	raw, err := json.Marshal(h.fleet.Stats())
	if err != nil {
		t.Fatalf("marshal fleet stats: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	for _, k := range []string{"gets", "hits", "misses", "circuit", "nodes"} {
		if _, ok := m[k]; !ok {
			t.Fatalf("fleet stats JSON missing %q: %s", k, raw)
		}
	}
	nodes, ok := m["nodes"].([]any)
	if !ok || len(nodes) != 2 {
		t.Fatalf("nodes block wrong shape: %s", raw)
	}
	node := nodes[0].(map[string]any)
	if _, ok := node["url"]; !ok {
		t.Fatalf("node block missing url: %s", raw)
	}
	if _, ok := node["stats"]; !ok {
		t.Fatalf("node block missing stats: %s", raw)
	}
}
