// Package remotecache is the network tier of the artifact cache
// hierarchy: an HTTP cache server (Server, fronted by cmd/ccmcached)
// that stores disk-cache entries for a fleet of compile processes, and
// a hardened Client the pipeline consults after the memory and disk
// tiers miss.
//
// The wire format IS the disk format: every entry travels as the
// self-verifying encoding from internal/diskcache (versioned header,
// embedded key and kind, SHA-256 trailer over the whole record), so
// both ends re-verify every byte they receive. The server verifies on
// ingest (a corrupt upload is rejected with a structured error, never
// stored) and on read (its diskcache store re-checks and quarantines),
// and the client re-verifies every response — a truncated, bit-flipped,
// or mis-keyed response reads as a miss, never as a wrong artifact.
//
// The client's contract mirrors the disk tier's, extended across the
// network: a healthy remote tier makes a fleet share compiles; a sick
// one — timeouts, refused connections, truncated bodies, bit flips,
// 5xxs, or a server that is simply gone — can cost time but can never
// change compile output and never fail a compile. The hardening that
// delivers that:
//
//   - a per-request timeout, so one slow response cannot stall a worker;
//   - bounded retries with deterministic exponential backoff (no jitter:
//     repeatable tests beat thundering-herd polish at this scale);
//   - a response-size cap, so a malicious or broken server cannot balloon
//     memory;
//   - SHA-256 re-verification of every response against the requested
//     key and kind;
//   - a circuit breaker: after TripAfter consecutive failed operations
//     the remote tier is skipped entirely (every lookup is an instant
//     miss), and after a cooldown a single half-open probe decides
//     whether to close the circuit again;
//   - asynchronous bounded write-behind for puts: stores never block a
//     compile, and a full queue drops the put (counted) rather than
//     growing without bound.
package remotecache

import (
	"bytes"
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ccmem/internal/diskcache"
	"ccmem/internal/obs"
)

// Tuning groups the client's hardening knobs. The zero value takes the
// defaults below; tests shrink the timeouts and inject clocks.
type Tuning struct {
	// RequestTimeout bounds each HTTP attempt (default 2s).
	RequestTimeout time.Duration
	// Retries is the number of extra attempts after a failed one
	// (default 2; <0 means none).
	Retries int
	// Backoff is the delay before the first retry, doubling per retry —
	// deterministic on purpose (default 25ms).
	Backoff time.Duration
	// MaxResponseBytes caps one GET response (default 64 MiB); anything
	// larger is a corrupt response, not an allocation.
	MaxResponseBytes int64
	// TripAfter is the consecutive-failure count that opens the circuit
	// (default 5).
	TripAfter int
	// HalfOpenAfter is the open-circuit cooldown before one half-open
	// probe is allowed (default 2s).
	HalfOpenAfter time.Duration
	// PutQueue bounds the write-behind queue (default 256 entries);
	// puts beyond it are dropped and counted.
	PutQueue int

	// Now and Sleep are test seams for the breaker clock and the retry
	// backoff; nil means time.Now and time.Sleep.
	Now   func() time.Time
	Sleep func(time.Duration)
}

func (t Tuning) withDefaults() Tuning {
	if t.RequestTimeout <= 0 {
		t.RequestTimeout = 2 * time.Second
	}
	if t.Retries < 0 {
		t.Retries = 0
	} else if t.Retries == 0 {
		t.Retries = 2
	}
	if t.Backoff <= 0 {
		t.Backoff = 25 * time.Millisecond
	}
	if t.MaxResponseBytes <= 0 {
		t.MaxResponseBytes = 64 << 20
	}
	if t.TripAfter <= 0 {
		t.TripAfter = 5
	}
	if t.HalfOpenAfter <= 0 {
		t.HalfOpenAfter = 2 * time.Second
	}
	if t.PutQueue <= 0 {
		t.PutQueue = 256
	}
	if t.Now == nil {
		t.Now = time.Now
	}
	if t.Sleep == nil {
		t.Sleep = time.Sleep
	}
	return t
}

// Options configure NewClient.
type Options struct {
	// BaseURL is the cache server's root, e.g. "http://10.0.0.7:8348".
	BaseURL string
	// RoundTripper overrides the HTTP transport — the fault-injection
	// seam (FaultRT). nil uses http.DefaultTransport.
	RoundTripper http.RoundTripper
	// AuthToken, when non-empty, is sent as "Authorization: Bearer
	// <token>" on every request — required to join a fleet whose cache
	// daemon runs with -auth-token.
	AuthToken string
	// Obs receives the remotecache.circuit_state gauge transitions; the
	// numeric counters are snapshotted via Stats. nil disables.
	Obs *obs.Registry
	// Tuning holds the hardening knobs; zero fields take defaults.
	Tuning Tuning
}

// Stats is a snapshot of the client's counters. Hits+Misses == Gets:
// every lookup resolves to exactly one of the two, with Skipped
// (circuit-open fast misses) and the failure-classification counters
// explaining the misses that never touched a healthy server.
//
// A Fleet returns the same shape: Gets/Hits/Misses count logical
// fleet-level lookups (one per Get, however many nodes it walked), the
// other counters aggregate across nodes, the fleet counters record
// failovers/hedges/read-repairs, and Nodes breaks every node out.
type Stats struct {
	Gets   int64 `json:"gets"`
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`

	Puts      int64 `json:"puts"`
	PutDrops  int64 `json:"put_drops"`
	PutErrors int64 `json:"put_errors"`

	Retries     int64 `json:"retries"`
	Timeouts    int64 `json:"timeouts"`
	NetErrors   int64 `json:"net_errors"`
	HTTPErrors  int64 `json:"http_errors"`
	Corruptions int64 `json:"corruptions"`
	Skipped     int64 `json:"skipped"`

	Trips   int64  `json:"trips"`
	Probes  int64  `json:"probes"`
	Circuit string `json:"circuit"`

	// Fleet-level counters, set only when the snapshot comes from a
	// Fleet: lookups the preferred node failed on but another node
	// answered, hedged second reads launched and won, and read-repair
	// puts queued back toward the primary.
	Failovers      int64 `json:"failovers,omitempty"`
	HedgesLaunched int64 `json:"hedges_launched,omitempty"`
	HedgesWon      int64 `json:"hedges_won,omitempty"`
	Repairs        int64 `json:"repairs,omitempty"`

	// Nodes is the per-node breakdown of a Fleet snapshot, in the
	// fleet's configured node order; empty for a single Client.
	Nodes []NodeStats `json:"nodes,omitempty"`
}

// NodeStats is one fleet node's counter block: the node's base URL plus
// a full per-node Stats (whose fleet fields and Nodes are always zero).
type NodeStats struct {
	URL   string `json:"url"`
	Stats Stats  `json:"stats"`
}

// Tier is the remote-tier contract the pipeline consumes: one logical
// remote cache, whether a single server (Client) or a replicated fleet
// of them (Fleet). Every implementation shares the same degradation
// contract — a sick tier costs time, never bytes, and never fails a
// compile.
type Tier interface {
	Get(key diskcache.Key, kind uint32) ([]byte, bool)
	Put(key diskcache.Key, kind uint32, payload []byte)
	ReportDecodeFailure()
	Flush(ctx context.Context) error
	Close() error
	Stats() Stats
	State() State
}

// errCorrupt marks a response that failed re-verification (truncation,
// checksum, wrong embedded key or kind, or over the size cap). It is a
// failure like any other — retried, breaker-counted — because a server
// emitting garbage is as sick as one emitting nothing.
var errCorrupt = errors.New("remotecache: corrupt response")

type putReq struct {
	data []byte // pre-encoded entry
	key  diskcache.Key
	kind uint32
}

// Client is one process's handle on a remote cache server. All methods
// are safe for concurrent use; Get is synchronous, Put is write-behind.
type Client struct {
	base  string
	token string
	http  *http.Client
	tun   Tuning
	brk   *breaker

	putMu   sync.RWMutex // guards puts-channel send vs Close
	puts    chan putReq
	pending atomic.Int64
	closed  atomic.Bool
	wg      sync.WaitGroup

	gets, hits, misses            atomic.Int64
	putsN, putDrops, putErrors    atomic.Int64
	retries, timeouts, netErrors  atomic.Int64
	httpErrors, corrupt, skippedN atomic.Int64
}

// NewClient validates the base URL and starts the write-behind worker.
func NewClient(opts Options) (*Client, error) {
	u, err := url.Parse(opts.BaseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("remotecache: invalid base URL %q", opts.BaseURL)
	}
	tun := opts.Tuning.withDefaults()
	rt := opts.RoundTripper
	if rt == nil {
		rt = http.DefaultTransport
	}
	c := &Client{
		base:  strings.TrimRight(opts.BaseURL, "/"),
		token: opts.AuthToken,
		http:  &http.Client{Transport: rt},
		tun:   tun,
		brk:   newBreaker(tun.TripAfter, tun.HalfOpenAfter, tun.Now, opts.Obs),
		puts:  make(chan putReq, tun.PutQueue),
	}
	c.wg.Add(1)
	go c.putWorker()
	return c, nil
}

// State returns the circuit breaker's current position.
func (c *Client) State() State { return c.brk.current() }

// GetResult classifies one node-level lookup for callers that must
// distinguish a healthy "not there" from a failure — the Fleet's
// failover walk advances past failures but knows a clean miss was a
// real answer. Get collapses it to a bool.
type GetResult int

const (
	// GetHit: a verified payload came back.
	GetHit GetResult = iota
	// GetMiss: the server answered; the entry is not there.
	GetMiss
	// GetFailed: the operation exhausted its retries on network, HTTP,
	// or verification failures (breaker-counted).
	GetFailed
	// GetSkipped: the circuit was open; the wire was never touched.
	GetSkipped
)

// Get returns the verified payload stored under (key, kind), or false.
// Every failure mode — open circuit, timeout, network error, HTTP
// error, truncated or corrupt response — is a miss, never an error and
// never a wrong artifact.
func (c *Client) Get(key diskcache.Key, kind uint32) ([]byte, bool) {
	payload, res := c.GetClassified(key, kind)
	return payload, res == GetHit
}

// GetClassified is Get with the outcome spelled out. The counter
// contract is identical (every call is one Get resolving to exactly one
// of Hits or Misses); only the return tells a miss from a failure.
func (c *Client) GetClassified(key diskcache.Key, kind uint32) ([]byte, GetResult) {
	c.gets.Add(1)
	if !c.brk.allow() {
		c.skippedN.Add(1)
		c.misses.Add(1)
		return nil, GetSkipped
	}
	payload, found, err := c.withRetries(http.MethodGet, key, kind, nil)
	if err != nil {
		c.brk.failure()
		c.misses.Add(1)
		return nil, GetFailed
	}
	c.brk.success()
	if !found {
		c.misses.Add(1)
		return nil, GetMiss
	}
	c.hits.Add(1)
	return payload, GetHit
}

// Put queues payload for asynchronous storage under (key, kind). It
// never blocks a compile: a full queue or a closed client drops the put
// (counted), and failures surface only in the stats.
func (c *Client) Put(key diskcache.Key, kind uint32, payload []byte) {
	data := diskcache.EncodeEntry(kind, key, payload)
	c.putMu.RLock()
	defer c.putMu.RUnlock()
	if c.closed.Load() {
		c.putDrops.Add(1)
		return
	}
	select {
	case c.puts <- putReq{data: data, key: key, kind: kind}:
		c.pending.Add(1)
	default:
		c.putDrops.Add(1)
	}
}

func (c *Client) putWorker() {
	defer c.wg.Done()
	for req := range c.puts {
		if c.brk.allow() {
			_, _, err := c.withRetries(http.MethodPut, req.key, req.kind, req.data)
			if err != nil {
				c.brk.failure()
				c.putErrors.Add(1)
			} else {
				c.brk.success()
				c.putsN.Add(1)
			}
		} else {
			c.skippedN.Add(1)
			c.putDrops.Add(1)
		}
		c.pending.Add(-1)
	}
}

// Flush blocks until the write-behind queue has drained or ctx expires
// — the barrier a process runs before exiting so its artifacts reach
// the fleet (ccmbench farm workers flush before reporting).
func (c *Client) Flush(ctx context.Context) error {
	for c.pending.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
	return nil
}

// Close drains the remaining queued puts (fast when the circuit is
// open) and stops the write-behind worker. The client is unusable for
// puts afterwards; Gets keep working.
func (c *Client) Close() error {
	c.putMu.Lock()
	if c.closed.Swap(true) {
		c.putMu.Unlock()
		return nil
	}
	close(c.puts)
	c.putMu.Unlock()
	c.wg.Wait()
	return nil
}

// ReportDecodeFailure reclassifies the most recent hit as a miss: the
// entry's bytes verified end to end but the payload would not decode as
// an artifact — a checksum-consistent record from a buggy writer.
func (c *Client) ReportDecodeFailure() {
	c.hits.Add(-1)
	c.misses.Add(1)
	c.corrupt.Add(1)
}

// Stats returns a counter snapshot.
func (c *Client) Stats() Stats {
	trips, probes := c.brk.counters()
	return Stats{
		Gets:        c.gets.Load(),
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Puts:        c.putsN.Load(),
		PutDrops:    c.putDrops.Load(),
		PutErrors:   c.putErrors.Load(),
		Retries:     c.retries.Load(),
		Timeouts:    c.timeouts.Load(),
		NetErrors:   c.netErrors.Load(),
		HTTPErrors:  c.httpErrors.Load(),
		Corruptions: c.corrupt.Load(),
		Skipped:     c.skippedN.Load(),
		Trips:       trips,
		Probes:      probes,
		Circuit:     c.brk.current().String(),
	}
}

// withRetries runs one logical operation: up to 1+Retries attempts with
// deterministic exponential backoff between them.
func (c *Client) withRetries(method string, key diskcache.Key, kind uint32, body []byte) (payload []byte, found bool, err error) {
	backoff := c.tun.Backoff
	for attempt := 0; ; attempt++ {
		payload, found, err = c.attempt(method, key, kind, body)
		if err == nil || attempt >= c.tun.Retries {
			return payload, found, err
		}
		c.retries.Add(1)
		c.tun.Sleep(backoff)
		backoff *= 2
	}
}

// attempt is one bounded HTTP round trip, response re-verified.
func (c *Client) attempt(method string, key diskcache.Key, kind uint32, body []byte) ([]byte, bool, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.tun.RequestTimeout)
	defer cancel()
	u := fmt.Sprintf("%s/entry/%s?kind=%d", c.base, hex.EncodeToString(key[:]), kind)
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return nil, false, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/octet-stream")
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		c.classify(err)
		return nil, false, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return nil, false, nil // a healthy answer: the entry isn't there
	case method == http.MethodPut && resp.StatusCode/100 == 2:
		return nil, true, nil
	case method == http.MethodGet && resp.StatusCode == http.StatusOK:
		data, err := readCapped(resp.Body, c.tun.MaxResponseBytes)
		if err != nil {
			c.corrupt.Add(1)
			return nil, false, fmt.Errorf("%w: %v", errCorrupt, err)
		}
		gotKind, gotKey, payload, err := diskcache.DecodeEntry(data)
		if err != nil || gotKey != key || gotKind != kind {
			// Truncated, bit-flipped, or answering for the wrong address:
			// whatever this is, it is not the artifact we asked for.
			c.corrupt.Add(1)
			if err == nil {
				err = fmt.Errorf("entry is for key %x kind %d", gotKey[:4], gotKind)
			}
			return nil, false, fmt.Errorf("%w: %v", errCorrupt, err)
		}
		return payload, true, nil
	default:
		c.httpErrors.Add(1)
		return nil, false, fmt.Errorf("remotecache: %s %s: HTTP %d", method, u, resp.StatusCode)
	}
}

// classify buckets a transport error for the stats.
func (c *Client) classify(err error) {
	var ne net.Error
	if errors.Is(err, context.DeadlineExceeded) || (errors.As(err, &ne) && ne.Timeout()) {
		c.timeouts.Add(1)
		return
	}
	c.netErrors.Add(1)
}

// readCapped reads at most max bytes; one byte more is an error, not an
// allocation the server controls.
func readCapped(r io.Reader, max int64) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r, max+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > max {
		return nil, fmt.Errorf("response exceeds the %d-byte cap", max)
	}
	return data, nil
}
