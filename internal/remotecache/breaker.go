package remotecache

import (
	"sync"
	"time"

	"ccmem/internal/obs"
)

// State is the circuit breaker's position. The numeric values are the
// wire/metric encoding (the remotecache.circuit_state gauge), chosen so
// "bigger is sicker": 0 closed (healthy), 1 half-open (probing), 2 open
// (remote tier skipped).
type State int32

const (
	StateClosed State = iota
	StateHalfOpen
	StateOpen
)

func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateHalfOpen:
		return "half-open"
	case StateOpen:
		return "open"
	}
	return "unknown"
}

// breaker is a classic three-state circuit breaker over whole remote
// operations (a Get or a write-behind Put, retries included): TripAfter
// consecutive operation failures open the circuit, an open circuit
// fast-fails every operation for the cooldown, and after the cooldown a
// single half-open probe decides between closing (success) and
// re-opening (failure). The breaker exists so a dead remote tier costs
// one failure burst and then ~nothing — not a timeout per lookup.
type breaker struct {
	tripAfter int
	cooldown  time.Duration
	now       func() time.Time
	gauge     *obs.Gauge // remotecache.circuit_state (nil-safe)

	// Transition counters, so a metrics scrape sees not just where the
	// circuit is but how it has been moving: remotecache.breaker.trips
	// (closed/half-open -> open), .half_opens (open -> half-open probe
	// window), .closes (any state -> closed on a success).
	cTrips     *obs.Counter
	cHalfOpens *obs.Counter
	cCloses    *obs.Counter

	mu       sync.Mutex
	state    State
	consec   int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	probing  bool      // a half-open probe is in flight
	trips    int64
	probes   int64
}

func newBreaker(tripAfter int, cooldown time.Duration, now func() time.Time, reg *obs.Registry) *breaker {
	b := &breaker{
		tripAfter:  tripAfter,
		cooldown:   cooldown,
		now:        now,
		gauge:      reg.Gauge("remotecache.circuit_state"),
		cTrips:     reg.Counter("remotecache.breaker.trips"),
		cHalfOpens: reg.Counter("remotecache.breaker.half_opens"),
		cCloses:    reg.Counter("remotecache.breaker.closes"),
	}
	b.gauge.Set(int64(StateClosed))
	return b
}

// allow reports whether one operation may touch the remote tier now.
// In half-open it admits exactly one probe; callers that are refused
// must treat the lookup as a miss without any network activity.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.setLocked(StateHalfOpen)
		b.cHalfOpens.Add(1)
		b.probing = true
		b.probes++
		return true
	case StateHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		b.probes++
		return true
	}
	return false
}

// success records a completed operation (a 404 counts: the server
// answered). Any success fully closes the circuit.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consec = 0
	b.probing = false
	if b.state != StateClosed {
		b.setLocked(StateClosed)
		b.cCloses.Add(1)
	}
}

// failure records an operation that exhausted its retries.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateHalfOpen:
		// The probe failed: back to open for another cooldown.
		b.probing = false
		b.openedAt = b.now()
		b.trips++
		b.setLocked(StateOpen)
		b.cTrips.Add(1)
	case StateClosed:
		b.consec++
		if b.consec >= b.tripAfter {
			b.openedAt = b.now()
			b.trips++
			b.setLocked(StateOpen)
			b.cTrips.Add(1)
		}
	}
}

func (b *breaker) setLocked(s State) {
	b.state = s
	b.gauge.Set(int64(s))
}

func (b *breaker) current() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

func (b *breaker) counters() (trips, probes int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips, b.probes
}
