package remotecache

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"ccmem/internal/obs"
)

// TestServerAuthGate pins the bearer-token door: data endpoints answer
// 401 in the structured-error envelope without the right token, health
// probes stay open for tokenless load balancers.
func TestServerAuthGate(t *testing.T) {
	srv, err := NewServer(t.TempDir(), ServerOptions{AuthToken: "fleet-secret"})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	hs := httptest.NewServer(srv.Handler("test"))
	t.Cleanup(hs.Close)
	key := keyOf([]byte("gated"))
	entryPath := "/entry/" + hex.EncodeToString(key[:]) + "?kind=1"

	get := func(path, token string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, hs.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp
	}

	for _, path := range []string{entryPath, "/stats"} {
		for _, token := range []string{"", "wrong"} {
			resp := get(path, token)
			if resp.StatusCode != http.StatusUnauthorized {
				t.Fatalf("GET %s token=%q: status %d, want 401", path, token, resp.StatusCode)
			}
			if ch := resp.Header.Get("WWW-Authenticate"); !strings.Contains(ch, "Bearer") {
				t.Fatalf("GET %s: WWW-Authenticate = %q", path, ch)
			}
			var env struct {
				Error *apiError `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatalf("GET %s: decode 401 body: %v", path, err)
			}
			resp.Body.Close()
			if env.Error == nil || env.Error.Code != CodeUnauthorized {
				t.Fatalf("GET %s: envelope %+v, want code %q", path, env.Error, CodeUnauthorized)
			}
		}
	}
	for _, path := range []string{"/healthz", "/readyz", "/version"} {
		resp := get(path, "")
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s without token: status %d, want 200", path, resp.StatusCode)
		}
	}
	if n := srv.Stats().Unauthorized; n != 4 {
		t.Fatalf("Unauthorized = %d, want 4", n)
	}
	// The right token opens the door.
	resp := get("/stats", "fleet-secret")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authorized GET /stats: status %d, want 200", resp.StatusCode)
	}
}

// TestClientSendsBearerToken: a token-carrying client round-trips
// against an authenticated server; a tokenless one is refused at the
// door (a miss, never wrong bytes).
func TestClientSendsBearerToken(t *testing.T) {
	srv, err := NewServer(t.TempDir(), ServerOptions{AuthToken: "fleet-secret"})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	hs := httptest.NewServer(srv.Handler("test"))
	t.Cleanup(hs.Close)
	payload := []byte("authenticated artifact")
	key := keyOf(payload)

	writer, err := NewClient(Options{BaseURL: hs.URL, AuthToken: "fleet-secret", Tuning: fastTuning()})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { writer.Close() })
	writer.Put(key, 3, payload)
	flush(t, writer)
	if got, ok := writer.Get(key, 3); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("authenticated round trip failed (ok=%v)", ok)
	}

	// No token: the server refuses, the client records a miss.
	stranger, err := NewClient(Options{BaseURL: hs.URL, Tuning: fastTuning()})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { stranger.Close() })
	if _, ok := stranger.Get(key, 3); ok {
		t.Fatalf("tokenless client read an authenticated entry")
	}
	if st := stranger.Stats(); st.HTTPErrors == 0 {
		t.Fatalf("401 not classified as an HTTP error: %+v", st)
	}
	if n := srv.Stats().Unauthorized; n == 0 {
		t.Fatalf("server counted no unauthorized requests")
	}
}

// TestEntryTTLGCAndReadyz drives TTL expiry against an injected clock:
// an expired entry reads as a clean miss (never a partial entry), the
// sweep reclaims what lazy reads don't touch, and /readyz surfaces the
// GC detail.
func TestEntryTTLGCAndReadyz(t *testing.T) {
	now := time.Unix(100_000, 0)
	srv, err := NewServer(t.TempDir(), ServerOptions{
		EntryTTL: time.Minute,
		Now:      func() time.Time { return now },
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	hs := httptest.NewServer(srv.Handler("test"))
	t.Cleanup(hs.Close)

	payloadA, payloadB := []byte("entry A"), []byte("entry B")
	keyA, keyB := keyOf(payloadA), keyOf(payloadB)
	srv.Store().Put(keyA, 1, payloadA)
	srv.Store().Put(keyB, 1, payloadB)

	getEntry := func(key [32]byte) *http.Response {
		t.Helper()
		resp, err := http.Get(hs.URL + "/entry/" + hex.EncodeToString(key[:]) + "?kind=1")
		if err != nil {
			t.Fatalf("GET entry: %v", err)
		}
		return resp
	}

	// Fresh: served whole and verified.
	resp := getEntry(keyA)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh entry: status %d, want 200", resp.StatusCode)
	}

	// Past the TTL: a clean structured 404, never a partial read.
	now = now.Add(2 * time.Minute)
	resp = getEntry(keyA)
	var env struct {
		Error *apiError `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("expired entry body: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || env.Error == nil || env.Error.Code != CodeNotFound {
		t.Fatalf("expired entry: status %d envelope %+v, want 404 %q", resp.StatusCode, env.Error, CodeNotFound)
	}

	// The sweep reclaims entry B, which no read ever touched.
	if n := srv.GC(); n != 1 {
		t.Fatalf("GC() = %d, want 1 (entry B)", n)
	}
	st := srv.Stats()
	if st.GC.Sweeps != 1 || st.GC.Expired != 1 || st.GC.TTLSeconds != 60 {
		t.Fatalf("GC stats: %+v", st.GC)
	}
	if st.Store.Expired != 2 || st.Store.Entries != 0 {
		t.Fatalf("store after expiry: expired=%d entries=%d, want 2 and 0", st.Store.Expired, st.Store.Entries)
	}
	// A sweep over an empty store is a counted no-op.
	if n := srv.GC(); n != 0 {
		t.Fatalf("second GC() = %d, want 0", n)
	}

	// /readyz carries the GC detail for fleet operators.
	rresp, err := http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	var ready readyzResponse
	if err := json.NewDecoder(rresp.Body).Decode(&ready); err != nil {
		t.Fatalf("decode /readyz: %v", err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK || ready.Status != "ok" {
		t.Fatalf("/readyz: status %d body %+v", rresp.StatusCode, ready)
	}
	if ready.Entries != 0 || ready.GC.TTLSeconds != 60 || ready.GC.Sweeps != 2 || ready.GC.Expired != 1 {
		t.Fatalf("/readyz detail: %+v", ready)
	}
}

// TestBreakerTransitionCounters: the breaker's movements — trip,
// half-open probe, close — land as obs counter increments, so a
// metrics scrape shows when the fleet degraded, not just where the
// circuit sits now.
func TestBreakerTransitionCounters(t *testing.T) {
	_, hs := newTestServer(t)
	rt := &FaultRT{}
	rt.Arm(FaultRefused)

	clock := time.Unix(1000, 0)
	tun := fastTuning()
	tun.TripAfter = 3
	tun.HalfOpenAfter = 2 * time.Second
	tun.Now = func() time.Time { return clock }
	reg := obs.NewRegistry()
	c := newTestClient(t, hs.URL, rt, tun, reg)
	key := keyOf([]byte("transitions"))

	counters := func() (trips, halfOpens, closes int64) {
		return reg.Counter("remotecache.breaker.trips").Value(),
			reg.Counter("remotecache.breaker.half_opens").Value(),
			reg.Counter("remotecache.breaker.closes").Value()
	}

	// Three consecutive failures: one trip, nothing else.
	for i := 0; i < 3; i++ {
		c.Get(key, 1)
	}
	if trips, halfOpens, closes := counters(); trips != 1 || halfOpens != 0 || closes != 0 {
		t.Fatalf("after trip: trips=%d half_opens=%d closes=%d, want 1 0 0", trips, halfOpens, closes)
	}

	// Cooldown passes; the probe runs and fails: half_opens 1, trips 2.
	clock = clock.Add(3 * time.Second)
	c.Get(key, 1)
	if trips, halfOpens, closes := counters(); trips != 2 || halfOpens != 1 || closes != 0 {
		t.Fatalf("after failed probe: trips=%d half_opens=%d closes=%d, want 2 1 0", trips, halfOpens, closes)
	}

	// Server recovers; the next probe succeeds and closes the circuit.
	rt.Disarm()
	clock = clock.Add(3 * time.Second)
	c.Get(key, 1)
	if trips, halfOpens, closes := counters(); trips != 2 || halfOpens != 2 || closes != 1 {
		t.Fatalf("after recovery: trips=%d half_opens=%d closes=%d, want 2 2 1", trips, halfOpens, closes)
	}
	if c.State() != StateClosed {
		t.Fatalf("state %v after recovery, want closed", c.State())
	}
}

// TestServerDrainRetryAfterAudit walks every 503 path on the cache
// daemon — drained GET, drained PUT, draining /readyz, plus a sanity
// check that a drained node still answers health probes — and pins the
// shared backpressure contract: a positive Retry-After header and, on
// data endpoints, the structured-error envelope with the draining code
// and the header mirrored into retry_after_seconds.
func TestServerDrainRetryAfterAudit(t *testing.T) {
	srv, hs := newTestServer(t)

	// Seed an entry while the daemon is up: draining must refuse even
	// reads that would have hit.
	payload := []byte("drained away")
	key := keyOf(payload)
	c := newTestClient(t, hs.URL, nil, fastTuning(), nil)
	c.Put(key, 1, payload)
	flush(t, c)

	srv.BeginDrain()
	srv.BeginDrain() // idempotent
	if !srv.Draining() {
		t.Fatalf("Draining() = false after BeginDrain")
	}

	entryPath := "/entry/" + hex.EncodeToString(key[:]) + "?kind=1"
	do := func(method, path string, body []byte) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, hs.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
		return resp
	}

	cases := []struct {
		name     string
		method   string
		path     string
		body     []byte
		envelope bool // data endpoints carry the structured error
	}{
		{"drained-get", http.MethodGet, entryPath, nil, true},
		{"drained-put", http.MethodPut, entryPath, []byte("x"), true},
		{"draining-readyz", http.MethodGet, "/readyz", nil, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := do(tc.method, tc.path, tc.body)
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("status %d, want 503", resp.StatusCode)
			}
			ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
			if err != nil || ra <= 0 {
				t.Fatalf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
			}
			if !tc.envelope {
				var ready readyzResponse
				if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
					t.Fatalf("decode readyz: %v", err)
				}
				if ready.Status != "draining" {
					t.Fatalf("readyz status %q, want draining", ready.Status)
				}
				return
			}
			var env struct {
				Error *apiError `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatalf("decode envelope: %v", err)
			}
			if env.Error == nil || env.Error.Code != CodeDraining {
				t.Fatalf("envelope %+v, want code %q", env.Error, CodeDraining)
			}
			if env.Error.RetryAfter != ra {
				t.Fatalf("retry_after_seconds=%d disagrees with header %d", env.Error.RetryAfter, ra)
			}
		})
	}

	// Liveness stays up so orchestrators don't hard-kill a draining node.
	resp := do(http.MethodGet, "/healthz", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz while draining: status %d, want 200", resp.StatusCode)
	}

	// And the fleet client sees a drained node as a failure to route
	// around, never as wrong bytes.
	if _, ok := c.Get(key, 1); ok {
		t.Fatalf("client read a hit from a draining node")
	}
}
