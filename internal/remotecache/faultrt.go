package remotecache

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
)

// FaultKind selects what FaultRT does to a request — the FaultFS fault
// menu translated to the network.
type FaultKind int

const (
	// FaultNone passes requests through untouched.
	FaultNone FaultKind = iota
	// FaultTimeout fails every request with a timeout error without
	// touching the wire (the server never sees it).
	FaultTimeout
	// FaultRefused fails every request with a connection-refused-style
	// transport error.
	FaultRefused
	// FaultTruncate performs the real round trip, then cuts the response
	// body in half — a torn read.
	FaultTruncate
	// FaultBitFlip performs the real round trip, then flips one bit in
	// the middle of the response body — silent corruption in flight.
	FaultBitFlip
	// FaultSlow blocks until the request's context gives up (the
	// per-request timeout fires) and returns its error — a hung server,
	// exercised without any wall-clock sleeping of our own.
	FaultSlow
	// Fault5xx answers every request with a synthesized 500 without
	// touching the wire.
	Fault5xx
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultTimeout:
		return "timeout"
	case FaultRefused:
		return "refused"
	case FaultTruncate:
		return "truncate"
	case FaultBitFlip:
		return "bit-flip"
	case FaultSlow:
		return "slow"
	case Fault5xx:
		return "5xx"
	}
	return "unknown"
}

// netErr is a transport error that satisfies net.Error, so the client
// classifies injected faults exactly like real ones.
type netErr struct {
	msg     string
	timeout bool
}

func (e *netErr) Error() string   { return e.msg }
func (e *netErr) Timeout() bool   { return e.timeout }
func (e *netErr) Temporary() bool { return true }

// FaultRT is a deterministic fault-injecting http.RoundTripper — the
// FaultFS methodology applied to the network. It wraps a real transport
// and, while armed, makes every request fail the same way: no
// randomness, no races with the scheduler, so a fault-matrix test run
// is exactly reproducible. Arm/Disarm are safe to call concurrently
// with in-flight requests.
type FaultRT struct {
	// Base does the real round trips (nil = http.DefaultTransport).
	Base http.RoundTripper

	kind     atomic.Int64
	injected atomic.Int64
}

// Arm switches every subsequent request to fail with kind
// (FaultNone disarms).
func (f *FaultRT) Arm(kind FaultKind) { f.kind.Store(int64(kind)) }

// Disarm restores pass-through behavior.
func (f *FaultRT) Disarm() { f.kind.Store(int64(FaultNone)) }

// Injected reports how many requests were given a fault.
func (f *FaultRT) Injected() int64 { return f.injected.Load() }

// RoundTrip implements http.RoundTripper.
func (f *FaultRT) RoundTrip(req *http.Request) (*http.Response, error) {
	kind := FaultKind(f.kind.Load())
	if kind == FaultNone {
		return f.base().RoundTrip(req)
	}
	f.injected.Add(1)
	switch kind {
	case FaultTimeout:
		return nil, &netErr{msg: "faultrt: injected timeout", timeout: true}
	case FaultRefused:
		return nil, &netErr{msg: "faultrt: injected connection refused"}
	case FaultSlow:
		<-req.Context().Done()
		return nil, req.Context().Err()
	case Fault5xx:
		return &http.Response{
			StatusCode: http.StatusInternalServerError,
			Status:     "500 Internal Server Error",
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  make(http.Header),
			Body:    io.NopCloser(bytes.NewReader(nil)),
			Request: req,
		}, nil
	case FaultTruncate, FaultBitFlip:
		resp, err := f.base().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if kind == FaultTruncate {
			body = body[:len(body)/2]
		} else if len(body) > 0 {
			body[len(body)/2] ^= 0x40
		}
		resp.Body = io.NopCloser(bytes.NewReader(body))
		resp.ContentLength = int64(len(body))
		resp.Header.Set("Content-Length", fmt.Sprint(len(body)))
		return resp, nil
	}
	return nil, &netErr{msg: fmt.Sprintf("faultrt: unknown fault kind %d", kind)}
}

func (f *FaultRT) base() http.RoundTripper {
	if f.Base != nil {
		return f.Base
	}
	return http.DefaultTransport
}
