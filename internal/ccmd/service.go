// Package ccmd is the long-running compile service over the shared
// pipeline driver: the serving surface that turns the reliability
// substrate (worker pool, two-tier content-addressed cache, fault
// isolation and degradation, miscompile oracle, tracing and metrics)
// into a daemon answering compile/run/report requests over HTTP+JSON.
//
// The package splits service from transport. Service owns the policy:
// one shared pipeline.Driver (so every tenant hits one cache and one
// metrics registry), admission through a bounded queue with
// backpressure — a full queue is a typed saturation error, never
// unbounded growth — a load-shedding ladder that strips auxiliary work
// (verification passes, the differential oracle, tracing) under
// sustained pressure without ever changing output bytes, per-tenant
// repro-bundle namespaces, and a drain protocol for graceful shutdown.
// The handlers in handlers.go are a thin HTTP skin: decode, validate,
// call the service, encode the typed result.
//
// Two invariants the tests pin down:
//
//   - Determinism across the fleet: the artifact a request gets is
//     byte-identical to a solo ccmc compile of the same (program,
//     config) at any concurrency, any worker-hint, shed or not.
//     Shedding and saturation may cost latency or auxiliary checking,
//     never bytes.
//   - Bounded everything: at most MaxInflight compiles run, at most
//     MaxQueue wait, trace retention is capped, programs over the size
//     limit are rejected before parsing.
package ccmd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ccmem/internal/ir"
	"ccmem/internal/journal"
	"ccmem/internal/obs"
	"ccmem/internal/pipeline"
	"ccmem/internal/ratelimit"
	"ccmem/internal/repro"
	"ccmem/internal/sim"
)

// Defaults for Config fields left zero.
const (
	DefaultMaxQueueFactor  = 4                // MaxQueue = factor * MaxInflight
	DefaultRetryAfter      = 2 * time.Second  // 429/503 backoff hint
	DefaultMaxProgramBytes = 1 << 20          // 1 MiB of ILOC text per request
	DefaultMaxFuncTimeout  = 60 * time.Second // ceiling on the per-function timeout a request may ask for
	DefaultMaxTraceSpans   = 1 << 16          // retained spans across recent traced requests
	DefaultShedVerifyAt    = 0.5              // queue fill where verify-passes shed
	DefaultShedDiffAt      = 0.75             // queue fill where the oracle and tracing shed
	DefaultMaxRunSteps     = 500_000_000      // ceiling on RunRequest.MaxSteps (the simulator default)
)

// Config parameterizes a Service. Driver is required; everything else
// has serviceable defaults.
type Config struct {
	// Driver is the shared compilation driver — its cache (including
	// any persistent tier), metrics registry, and cumulative totals are
	// what every request on this service shares.
	Driver *pipeline.Driver

	// MaxInflight bounds concurrently running compiles/runs; 0 means
	// the driver's worker-pool size.
	MaxInflight int
	// MaxQueue bounds requests waiting for a slot; beyond it admission
	// fails with CodeSaturated. 0 means DefaultMaxQueueFactor*MaxInflight.
	MaxQueue int
	// RetryAfter is the backoff hint on 429/503 responses.
	RetryAfter time.Duration

	// ReproDir is the base directory for crash/miscompile repro bundles;
	// requests with Options.Repro write under ReproDir/<tenant>/. Empty
	// disables bundle capture service-wide.
	ReproDir string

	// MaxProgramBytes bounds the ILOC text of one request.
	MaxProgramBytes int64
	// MaxFuncTimeout is the ceiling a request's timeout_ms is clamped to.
	MaxFuncTimeout time.Duration
	// MaxRunSteps is the ceiling a run request's max_steps is clamped to.
	MaxRunSteps int64
	// MaxTraceSpans bounds the spans retained from recent traced
	// requests for GET /trace (oldest batches evicted whole).
	MaxTraceSpans int

	// ShedVerifyAt and ShedDiffAt are queue-fill fractions (queued /
	// MaxQueue) at which admission starts shedding: at ShedVerifyAt,
	// verify-passes checkpoints are dropped and a per-stage oracle is
	// downgraded to final-only; at ShedDiffAt, the oracle and request
	// tracing are dropped entirely. Shedding strips checking and
	// observability — work that cannot change output bytes.
	ShedVerifyAt float64
	ShedDiffAt   float64

	// TenantRate and TenantBurst parameterize the per-tenant token
	// bucket: each tenant accrues TenantRate requests per second up to a
	// bucket of TenantBurst. Rate <= 0 disables per-tenant limiting
	// entirely. MaxTenants bounds tracked buckets (LRU; 0 = the
	// ratelimit package default). RateNow is the limiter's clock, a test
	// seam; nil means time.Now.
	TenantRate  float64
	TenantBurst int
	MaxTenants  int
	RateNow     func() time.Time

	// MaxTenantQueue is the fair-share cap: the most queue positions one
	// tenant may hold at once, so a single hot tenant cannot fill the
	// bounded queue and starve everyone else. 0 means half of MaxQueue
	// (minimum 1); < 0 disables the cap.
	MaxTenantQueue int

	// Journal, when non-nil, is the durable request journal: every
	// admitted compile request is appended before it runs, and
	// ReplayJournal recompiles recovered records at startup to re-warm
	// the cache. The service owns appends; the caller owns Open/Close.
	Journal *journal.Journal
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = c.Driver.Workers()
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = DefaultMaxQueueFactor * c.MaxInflight
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	if c.MaxProgramBytes <= 0 {
		c.MaxProgramBytes = DefaultMaxProgramBytes
	}
	if c.MaxFuncTimeout <= 0 {
		c.MaxFuncTimeout = DefaultMaxFuncTimeout
	}
	if c.MaxRunSteps <= 0 {
		c.MaxRunSteps = DefaultMaxRunSteps
	}
	if c.MaxTraceSpans <= 0 {
		c.MaxTraceSpans = DefaultMaxTraceSpans
	}
	if c.ShedVerifyAt <= 0 {
		c.ShedVerifyAt = DefaultShedVerifyAt
	}
	if c.ShedDiffAt <= 0 {
		c.ShedDiffAt = DefaultShedDiffAt
	}
	if c.MaxTenantQueue == 0 {
		c.MaxTenantQueue = c.MaxQueue / 2
		if c.MaxTenantQueue < 1 {
			c.MaxTenantQueue = 1
		}
	}
	return c
}

// Shed rungs, in escalation order.
const (
	shedNone   = 0
	shedVerify = 1 // drop verify-passes; per-stage oracle → final
	shedDiff   = 2 // drop the oracle and request tracing too
)

func shedName(level int) string {
	switch level {
	case shedVerify:
		return "verify"
	case shedDiff:
		return "diff"
	}
	return ""
}

// Service is the compile service: policy and state behind the HTTP
// handlers. Safe for concurrent use.
type Service struct {
	cfg Config
	drv *pipeline.Driver
	reg *obs.Registry // the driver's registry (nil when metrics are off)

	slots chan struct{} // admission semaphore, cap MaxInflight

	// limiter is the per-tenant token bucket (nil = limiting off); the
	// fair-share map counts queue positions each tenant currently holds.
	limiter      *ratelimit.Limiter
	tenantMu     sync.Mutex
	tenantQueued map[string]int

	// jrnl is the durable request journal (nil = journaling off).
	jrnl *journal.Journal

	requests          atomic.Int64
	inflight          atomic.Int64
	queued            atomic.Int64
	rejectedSaturated atomic.Int64
	rejectedDraining  atomic.Int64
	shedVerifyN       atomic.Int64
	shedDiffN         atomic.Int64
	traceRequests     atomic.Int64
	unauthorized      atomic.Int64
	rateLimited       atomic.Int64
	fairShareRejected atomic.Int64
	replayed          atomic.Int64
	replayErrors      atomic.Int64

	// Drain protocol: draining flips under mu, active counts admitted
	// requests still running, and cond wakes Drain when active reaches
	// zero. New admissions are refused once draining is set.
	mu       sync.Mutex
	cond     *sync.Cond
	draining bool
	active   int

	// Trace retention: span batches from recently completed traced
	// requests, each batch stamped with its request's PID, evicted
	// oldest-first once totalSpans would exceed MaxTraceSpans. Appends
	// and reads both hold traceMu, so GET /trace never races a
	// recording shard (request tracers are private until their compile
	// returns).
	traceMu    sync.Mutex
	traceBatch [][]obs.Span
	totalSpans int
	nextPID    int

	// testCompileHook, when non-nil, runs while the request holds its
	// admission slot, before the compile — the seam saturation and
	// drain tests use to hold slots deterministically.
	testCompileHook func()
}

// NewService builds a Service over a shared driver.
func NewService(cfg Config) (*Service, error) {
	if cfg.Driver == nil {
		return nil, fmt.Errorf("ccmd: Config.Driver is required")
	}
	if cfg.ShedVerifyAt > 0 && cfg.ShedDiffAt > 0 && cfg.ShedDiffAt < cfg.ShedVerifyAt {
		return nil, fmt.Errorf("ccmd: ShedDiffAt (%v) must be >= ShedVerifyAt (%v)", cfg.ShedDiffAt, cfg.ShedVerifyAt)
	}
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:   cfg,
		drv:   cfg.Driver,
		reg:   cfg.Driver.Registry(),
		slots: make(chan struct{}, cfg.MaxInflight),
		limiter: ratelimit.New(ratelimit.Options{
			Rate:    cfg.TenantRate,
			Burst:   cfg.TenantBurst,
			MaxKeys: cfg.MaxTenants,
			Now:     cfg.RateNow,
		}),
		tenantQueued: make(map[string]int),
		jrnl:         cfg.Journal,
	}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// Driver returns the shared driver (for health checks and reports).
func (s *Service) Driver() *pipeline.Driver { return s.drv }

// Draining reports whether shutdown has begun.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// BeginDrain stops admitting new requests: readiness flips, and every
// subsequent Compile/Run fails with CodeDraining. In-flight requests
// keep running; Drain waits for them.
func (s *Service) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	if s.active == 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// Drain begins draining (if BeginDrain hasn't already) and blocks until
// every admitted request has finished or ctx expires. It returns nil on
// a clean drain and ctx.Err() on deadline — in-flight compiles are then
// still running; the caller decides whether to cancel their contexts or
// exit anyway.
func (s *Service) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.mu.Lock()
		for s.active > 0 {
			s.cond.Wait()
		}
		s.mu.Unlock()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// enter registers one request with the drain protocol. It fails once
// draining has begun.
func (s *Service) enter() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.active++
	return true
}

func (s *Service) leave() {
	s.mu.Lock()
	s.active--
	if s.active == 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// rateLimit spends one token from tenant's bucket. A denial is the
// tenant-scoped 429 — distinct from service-wide saturation — carrying
// the exact accrual time as its Retry-After.
func (s *Service) rateLimit(tenant string) *APIError {
	ok, retry := s.limiter.Allow(tenant)
	if ok {
		return nil
	}
	s.rateLimited.Add(1)
	s.reg.Counter("ccmd.rate_limited").Inc()
	secs := int(math.Ceil(retry.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return &APIError{Status: http.StatusTooManyRequests, Code: CodeRateLimited, Field: "tenant",
		Message:    fmt.Sprintf("tenant %q is over its request rate; retry in ~%ds", tenant, secs),
		RetryAfter: secs}
}

// admit runs the bounded-queue admission: take a slot if one is free,
// otherwise wait in the queue unless it is already full (saturation),
// the tenant already holds its fair share of it, or the caller gives up
// (ctx). The returned shed level is decided from queue pressure at
// arrival, so every caller that waited behind a deep queue sheds
// consistently. release must be called exactly once after the work is
// done.
func (s *Service) admit(ctx context.Context, tenant string) (shed int, release func(), apiErr *APIError) {
	if !s.enter() {
		s.rejectedDraining.Add(1)
		s.reg.Counter("ccmd.rejected_draining").Inc()
		return 0, nil, &APIError{Status: http.StatusServiceUnavailable, Code: CodeDraining,
			Message:    "the service is draining for shutdown",
			RetryAfter: int(s.cfg.RetryAfter / time.Second)}
	}
	release = func() {
		<-s.slots
		s.inflight.Add(-1)
		s.reg.Gauge("ccmd.inflight").Set(s.inflight.Load())
		s.leave()
	}
	shed = s.shedLevel()
	select {
	case s.slots <- struct{}{}: // free slot: no queueing
		s.inflight.Add(1)
		s.reg.Gauge("ccmd.inflight").Set(s.inflight.Load())
		return shed, release, nil
	default:
	}
	// All slots busy: the request must queue. A full queue is saturation
	// for everyone, whoever filled it — so reserve the global position
	// first, then apply the fair-share cap to the room that remains: one
	// tenant may hold at most MaxTenantQueue positions, so a hot tenant
	// exhausts its own share (429 rate-limited) before it can fill the
	// whole queue and starve everyone else into saturation.
	if q := s.queued.Add(1); q > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		s.leave()
		s.rejectedSaturated.Add(1)
		s.reg.Counter("ccmd.rejected_saturated").Inc()
		return 0, nil, &APIError{Status: http.StatusTooManyRequests, Code: CodeSaturated,
			Message: fmt.Sprintf("admission queue full (%d running, %d queued); retry later",
				s.cfg.MaxInflight, s.cfg.MaxQueue),
			RetryAfter: int(s.cfg.RetryAfter / time.Second)}
	}
	if s.cfg.MaxTenantQueue > 0 {
		s.tenantMu.Lock()
		if s.tenantQueued[tenant] >= s.cfg.MaxTenantQueue {
			s.tenantMu.Unlock()
			s.queued.Add(-1)
			s.leave()
			s.fairShareRejected.Add(1)
			s.reg.Counter("ccmd.fair_share_rejected").Inc()
			return 0, nil, &APIError{Status: http.StatusTooManyRequests, Code: CodeRateLimited,
				Field: "tenant",
				Message: fmt.Sprintf("tenant %q already holds its share of the admission queue (%d positions); retry later",
					tenant, s.cfg.MaxTenantQueue),
				RetryAfter: int(s.cfg.RetryAfter / time.Second)}
		}
		s.tenantQueued[tenant]++
		s.tenantMu.Unlock()
		defer func() {
			s.tenantMu.Lock()
			if s.tenantQueued[tenant]--; s.tenantQueued[tenant] <= 0 {
				delete(s.tenantQueued, tenant)
			}
			s.tenantMu.Unlock()
		}()
	}
	s.reg.Gauge("ccmd.queued").Set(s.queued.Load())
	defer func() {
		s.queued.Add(-1)
		s.reg.Gauge("ccmd.queued").Set(s.queued.Load())
	}()
	select {
	case s.slots <- struct{}{}:
		s.inflight.Add(1)
		s.reg.Gauge("ccmd.inflight").Set(s.inflight.Load())
		return shed, release, nil
	case <-ctx.Done():
		s.leave()
		return 0, nil, &APIError{Status: 499, Code: CodeCanceled,
			Message: "client went away while queued: " + ctx.Err().Error()}
	}
}

// shedLevel maps current queue pressure onto the shedding ladder.
func (s *Service) shedLevel() int {
	fill := float64(s.queued.Load()) / float64(s.cfg.MaxQueue)
	switch {
	case fill >= s.cfg.ShedDiffAt:
		return shedDiff
	case fill >= s.cfg.ShedVerifyAt:
		return shedVerify
	}
	return shedNone
}

// parseProgram bounds, parses, and verifies request program text.
func (s *Service) parseProgram(text string) (*ir.Program, *APIError) {
	if text == "" {
		return nil, errBadRequest("program", "empty program")
	}
	if int64(len(text)) > s.cfg.MaxProgramBytes {
		return nil, errBadRequest("program", "program is %d bytes; the service accepts at most %d",
			len(text), s.cfg.MaxProgramBytes)
	}
	p, err := ir.Parse(text)
	if err != nil {
		return nil, errBadProgram(err)
	}
	if err := ir.VerifyProgram(p, ir.VerifyOptions{}); err != nil {
		return nil, errBadProgram(err)
	}
	return p, nil
}

// pipelineConfig validates the request's config subset and maps it,
// with the shed level applied, onto a pipeline.Config. Pure function of
// its inputs — the tenant-isolation and shedding tests call it
// directly.
func (s *Service) pipelineConfig(req *CompileRequest, shed int) (pipeline.Config, *APIError) {
	var zero pipeline.Config
	strat, err := pipeline.ParseStrategy(strategyOrDefault(req.Config.Strategy))
	if err != nil {
		return zero, errBadRequest("config.strategy", "%v", err)
	}
	diff, err := pipeline.ParseDiffCheck(diffOrDefault(req.Config.DiffCheck))
	if err != nil {
		return zero, errBadRequest("config.diff_check", "%v", err)
	}
	if strat != pipeline.NoCCM && req.Config.CCMBytes <= 0 {
		return zero, errBadRequest("config.ccm_bytes", "strategy %q requires ccm_bytes > 0", strat)
	}
	if req.Config.CCMBytes < 0 {
		return zero, errBadRequest("config.ccm_bytes", "must be >= 0, got %d", req.Config.CCMBytes)
	}
	if req.Config.IntRegs < 0 || req.Config.FloatRegs < 0 {
		return zero, errBadRequest("config.int_regs", "register counts must be >= 0")
	}
	if req.Config.DiffVectors < 0 {
		return zero, errBadRequest("config.diff_vectors", "must be >= 0, got %d", req.Config.DiffVectors)
	}
	if req.Config.Workers < 0 {
		return zero, errBadRequest("config.workers", "must be >= 0, got %d", req.Config.Workers)
	}
	if req.Config.TimeoutMS < 0 {
		return zero, errBadRequest("config.timeout_ms", "must be >= 0, got %d", req.Config.TimeoutMS)
	}
	timeout := time.Duration(req.Config.TimeoutMS) * time.Millisecond
	if timeout > s.cfg.MaxFuncTimeout {
		timeout = s.cfg.MaxFuncTimeout
	}
	cfg := pipeline.Config{
		Strategy:          strat,
		IntRegs:           req.Config.IntRegs,
		FloatRegs:         req.Config.FloatRegs,
		DisableOptimizer:  req.Config.DisableOptimizer,
		DisableCompaction: req.Config.DisableCompaction,
		CleanupSpills:     req.Config.CleanupSpills,
		VerifyPasses:      req.Config.VerifyPasses,
		FuncTimeout:       timeout,
		Strict:            req.Config.Strict,
		DiffCheck:         diff,
		DiffVectors:       req.Config.DiffVectors,
	}
	if strat != pipeline.NoCCM {
		cfg.CCMBytes = req.Config.CCMBytes
	}
	// The shedding ladder strips checking, never code: VerifyPasses and
	// the oracle validate the compile, they do not shape its output.
	if shed >= shedVerify {
		cfg.VerifyPasses = false
		if cfg.DiffCheck == pipeline.DiffPerStage {
			cfg.DiffCheck = pipeline.DiffFinal
		}
	}
	if shed >= shedDiff {
		cfg.DiffCheck = pipeline.DiffOff
	}
	// Tenant-scoped repro namespace: bundles from this request land
	// under <ReproDir>/<tenant>/ and nowhere else.
	if req.Options.Repro && s.cfg.ReproDir != "" {
		dir, rerr := repro.TenantDir(s.cfg.ReproDir, tenantOrDefault(req.Tenant))
		if rerr != nil {
			return zero, errBadRequest("tenant", "%v", rerr)
		}
		cfg.ReproDir = dir
	}
	return cfg, nil
}

func strategyOrDefault(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

func diffOrDefault(s string) string {
	if s == "" {
		return "off"
	}
	return s
}

func tenantOrDefault(t string) string {
	if t == "" {
		return "default"
	}
	return t
}

// driverFor returns the driver a request compiles on: the shared driver
// unless the request hints a smaller worker pool, in which case a
// private driver sharing the same cache and registry is built (compile
// output is deterministic across worker counts, so the hint trades
// latency, never bytes). Hints above the shared pool are clamped — a
// request cannot grab more parallelism than the operator provisioned.
func (s *Service) driverFor(workers int) *pipeline.Driver {
	if workers <= 0 || workers == s.drv.Workers() {
		return s.drv
	}
	if workers > s.drv.Workers() {
		return s.drv
	}
	return pipeline.New(pipeline.Options{
		Workers: workers,
		Cache:   s.drv.Cache(),
		Metrics: s.reg,
	})
}

// Compile serves one compile request end to end: validate, admit
// (bounded queue, shedding), compile on the shared driver, and package
// the artifact with its report (and trace, when requested).
func (s *Service) Compile(ctx context.Context, req *CompileRequest) (*CompileResponse, *APIError) {
	s.requests.Add(1)
	s.reg.Counter("ccmd.requests").Inc()
	if req.Tenant != "" && !repro.ValidTenant(req.Tenant) {
		return nil, errBadRequest("tenant", "invalid tenant %q (want 1-64 chars of [A-Za-z0-9._-], starting alphanumeric)", req.Tenant)
	}
	// Rate limit on the validated tenant before any expensive work: a
	// throttled tenant must not cost the service a parse.
	tenant := tenantOrDefault(req.Tenant)
	if apiErr := s.rateLimit(tenant); apiErr != nil {
		return nil, apiErr
	}
	p, apiErr := s.parseProgram(req.Program)
	if apiErr != nil {
		return nil, apiErr
	}
	shed, release, apiErr := s.admit(ctx, tenant)
	if apiErr != nil {
		return nil, apiErr
	}
	defer release()
	if s.testCompileHook != nil {
		s.testCompileHook()
	}
	cfg, apiErr := s.pipelineConfig(req, shed)
	if apiErr != nil {
		return nil, apiErr
	}
	// The request is admitted and validated: journal it before it runs,
	// so a crash mid-compile replays it on restart. A journal failure is
	// counted, never fatal — durability degrades, service does not.
	s.journalAppend(req)
	switch shed {
	case shedVerify:
		s.shedVerifyN.Add(1)
		s.reg.Counter("ccmd.shed_verify").Inc()
	case shedDiff:
		s.shedDiffN.Add(1)
		s.reg.Counter("ccmd.shed_diff").Inc()
	}

	var tracer *obs.Tracer
	if req.Options.Trace && shed < shedDiff {
		tracer = obs.NewTracer()
		s.traceRequests.Add(1)
		s.reg.Counter("ccmd.trace_requests").Inc()
	}
	drv := s.driverFor(req.Config.Workers)
	rep, err := drv.CompileTraced(ctx, p, cfg, tracer)
	if err != nil {
		return nil, compileAPIError(err)
	}
	resp := &CompileResponse{
		Output: p.String(),
		Report: rep,
		Shed:   shedName(shed),
	}
	if tracer != nil {
		spans := tracer.Spans()
		s.retainTrace(spans)
		var buf bytes.Buffer
		if werr := obs.WriteChromeTraceSpans(&buf, spans); werr == nil {
			resp.Trace = json.RawMessage(bytes.TrimSpace(buf.Bytes()))
		}
	}
	return resp, nil
}

// compileAPIError maps a pipeline error onto the typed wire error.
func compileAPIError(err error) *APIError {
	var me *pipeline.MiscompileError
	if errors.As(err, &me) {
		return &APIError{Status: http.StatusUnprocessableEntity, Code: CodeMiscompile, Message: me.Error()}
	}
	var ce *pipeline.CompileError
	if errors.As(err, &ce) {
		return &APIError{Status: http.StatusUnprocessableEntity, Code: CodeCompileFault, Message: ce.Error()}
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &APIError{Status: 499, Code: CodeCanceled, Message: err.Error()}
	}
	return &APIError{Status: http.StatusInternalServerError, Code: CodeInternal, Message: err.Error()}
}

// retainTrace appends one request's span batch, stamped with a fresh
// PID, evicting oldest batches over the retention bound.
func (s *Service) retainTrace(spans []obs.Span) {
	if len(spans) == 0 {
		return
	}
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	s.nextPID++
	pid := s.nextPID
	batch := make([]obs.Span, len(spans))
	copy(batch, spans)
	for i := range batch {
		batch[i].PID = pid
	}
	s.traceBatch = append(s.traceBatch, batch)
	s.totalSpans += len(batch)
	for s.totalSpans > s.cfg.MaxTraceSpans && len(s.traceBatch) > 1 {
		s.totalSpans -= len(s.traceBatch[0])
		s.traceBatch = s.traceBatch[1:]
	}
}

// TraceSpans returns the retained spans of recent traced requests, one
// PID per request, oldest first.
func (s *Service) TraceSpans() []obs.Span {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	var out []obs.Span
	for _, b := range s.traceBatch {
		out = append(out, b...)
	}
	return out
}

// Run serves one execution request on the instrumented simulator. Runs
// go through the same admission queue as compiles — simulation is CPU
// work too — and are bounded by the service's step and depth ceilings.
func (s *Service) Run(ctx context.Context, req *RunRequest) (*RunResponse, *APIError) {
	s.requests.Add(1)
	s.reg.Counter("ccmd.requests").Inc()
	if req.Tenant != "" && !repro.ValidTenant(req.Tenant) {
		return nil, errBadRequest("tenant", "invalid tenant %q (want 1-64 chars of [A-Za-z0-9._-], starting alphanumeric)", req.Tenant)
	}
	tenant := tenantOrDefault(req.Tenant)
	if apiErr := s.rateLimit(tenant); apiErr != nil {
		return nil, apiErr
	}
	p, apiErr := s.parseProgram(req.Program)
	if apiErr != nil {
		return nil, apiErr
	}
	if req.MaxSteps < 0 || req.MaxDepth < 0 || req.CCMBytes < 0 || req.MemCost < 0 {
		return nil, errBadRequest("max_steps", "bounds and costs must be >= 0")
	}
	entry := req.Entry
	if entry == "" {
		entry = "main"
	}
	if p.Func(entry) == nil {
		return nil, errBadRequest("entry", "program has no function %q", entry)
	}
	_, release, apiErr := s.admit(ctx, tenant)
	if apiErr != nil {
		return nil, apiErr
	}
	defer release()
	if s.testCompileHook != nil {
		s.testCompileHook()
	}
	steps := req.MaxSteps
	if steps <= 0 || steps > s.cfg.MaxRunSteps {
		steps = s.cfg.MaxRunSteps
	}
	st, err := sim.Run(p, entry, sim.Config{
		MemCost:  req.MemCost,
		CCMBytes: req.CCMBytes,
		MaxSteps: steps,
		MaxDepth: req.MaxDepth,
	})
	if err != nil {
		return nil, &APIError{Status: http.StatusUnprocessableEntity, Code: CodeRunFault, Message: err.Error()}
	}
	resp := &RunResponse{
		Instrs:      st.Instrs,
		Cycles:      st.Cycles,
		MemOpCycles: st.MemOpCycles,
		MainMemOps:  st.MainMemOps,
		CCMOps:      st.CCMOps,
		SpillStores: st.SpillStores,
		SpillLoads:  st.SpillLoads,
		CCMSpills:   st.CCMSpills,
		CCMRestores: st.CCMRestores,
	}
	for _, v := range st.Output {
		resp.Output = append(resp.Output, v.String())
	}
	return resp, nil
}

// journalRecord is the journal's wire format: the compile request's
// deterministic slice (tenant, program, config) as versioned JSON.
// Options are deliberately excluded — tracing and repro capture are
// observability, not state worth replaying.
type journalRecord struct {
	V       int           `json:"v"`
	Tenant  string        `json:"tenant,omitempty"`
	Program string        `json:"program"`
	Config  RequestConfig `json:"config"`
}

const journalRecordVersion = 1

// journalAppend writes one admitted request to the journal. Failures
// are counted (the journal degrades itself after a few) — a sick disk
// costs durability, never a compile.
func (s *Service) journalAppend(req *CompileRequest) {
	if s.jrnl == nil {
		return
	}
	rec := journalRecord{V: journalRecordVersion, Tenant: req.Tenant, Program: req.Program, Config: req.Config}
	data, err := json.Marshal(rec)
	if err == nil {
		err = s.jrnl.Append(data)
	}
	if err != nil {
		s.reg.Counter("ccmd.journal.append_errors").Inc()
		return
	}
	s.reg.Counter("ccmd.journal.appends").Inc()
}

// ReplayJournal recompiles the records recovered from the journal at
// startup, re-warming the shared cache so a crashed daemon comes back
// with the artifacts its tenants were using. Records that fail to
// decode or compile are counted and skipped — recovery is best-effort,
// never fatal — and replay bypasses admission, rate limiting, and the
// journal itself (replaying must not re-journal). It returns the number
// of records replayed and the number skipped.
func (s *Service) ReplayJournal(ctx context.Context, records [][]byte) (replayed, skipped int) {
	for _, raw := range records {
		if ctx.Err() != nil {
			break
		}
		var rec journalRecord
		if err := json.Unmarshal(raw, &rec); err != nil || rec.V != journalRecordVersion {
			skipped++
			s.replayErrors.Add(1)
			s.reg.Counter("ccmd.journal.replay_errors").Inc()
			continue
		}
		req := &CompileRequest{Tenant: rec.Tenant, Program: rec.Program, Config: rec.Config}
		p, apiErr := s.parseProgram(req.Program)
		if apiErr == nil {
			var cfg pipeline.Config
			if cfg, apiErr = s.pipelineConfig(req, shedNone); apiErr == nil {
				if _, err := s.drv.CompileTraced(ctx, p, cfg, nil); err != nil {
					apiErr = compileAPIError(err)
				}
			}
		}
		if apiErr != nil {
			skipped++
			s.replayErrors.Add(1)
			s.reg.Counter("ccmd.journal.replay_errors").Inc()
			continue
		}
		replayed++
		s.replayed.Add(1)
		s.reg.Counter("ccmd.journal.replayed").Inc()
	}
	return replayed, skipped
}

// Report returns the shared driver's cumulative report (GET /report).
func (s *Service) Report() *pipeline.Report { return s.drv.Metrics() }

// Stats snapshots the service's admission counters.
func (s *Service) Stats() ServiceStats {
	return ServiceStats{
		Requests:          s.requests.Load(),
		Inflight:          s.inflight.Load(),
		Queued:            s.queued.Load(),
		MaxInflight:       s.cfg.MaxInflight,
		MaxQueue:          s.cfg.MaxQueue,
		RejectedSaturated: s.rejectedSaturated.Load(),
		RejectedDraining:  s.rejectedDraining.Load(),
		ShedVerify:        s.shedVerifyN.Load(),
		ShedDiff:          s.shedDiffN.Load(),
		TraceRequests:     s.traceRequests.Load(),
		Draining:          s.Draining(),
		Unauthorized:      s.unauthorized.Load(),
		RateLimited:       s.rateLimited.Load(),
		FairShareRejected: s.fairShareRejected.Load(),
		Tenants:           s.limiter.Snapshot(),
		Journal:           s.journalStats(),
		RemoteCircuit:     s.drv.RemoteCircuit(),
		RemoteNodes:       s.drv.RemoteNodes(),
	}
}

func (s *Service) journalStats() *JournalStats {
	if s.jrnl == nil {
		return nil
	}
	js := s.jrnl.Stats()
	return &JournalStats{
		Appends:         js.Appends,
		AppendErrors:    js.AppendErrors,
		Segments:        js.Segments,
		TornTails:       js.TornTails,
		Quarantines:     js.Quarantines,
		DroppedSegments: js.DroppedSegments,
		Degraded:        js.Degraded,
		Replayed:        s.replayed.Load(),
		ReplayErrors:    s.replayErrors.Load(),
	}
}

// Metrics returns the shared registry snapshot (nil when the driver
// runs without metrics).
func (s *Service) Metrics() *obs.Snapshot { return s.reg.Snapshot() }

// RetryAfterSeconds is the configured backoff hint, for handlers.
func (s *Service) RetryAfterSeconds() int { return int(s.cfg.RetryAfter / time.Second) }
