package ccmd

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"ccmem/internal/obs"
	"ccmem/internal/pipeline"
	"ccmem/internal/workload"
)

// TestConcurrentClientsByteIdentity is the service's headline contract:
// N concurrent clients with mixed configurations against ONE shared
// driver (memory + disk cache tiers both live) each get output
// byte-identical to a solo ccmc compile of their (program, config) —
// concurrency, cache sharing, worker hints, and repeat requests change
// latency, never bytes. Run under -race it doubles as the service's
// race-detector workload.
func TestConcurrentClientsByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-client compile matrix")
	}
	drv := pipeline.New(pipeline.Options{
		Workers:  4,
		CacheDir: t.TempDir(),
		Metrics:  obs.NewRegistry(),
	})
	if err := drv.DiskCacheErr(); err != nil {
		t.Fatalf("disk cache: %v", err)
	}
	svc, err := NewService(Config{Driver: drv, MaxInflight: 8, MaxQueue: 64})
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}

	// Mixed client population: different programs x strategies x CCM
	// sizes x worker hints, plus deliberate duplicates so some clients
	// race for the same cache key.
	type client struct {
		name string
		text string
		cfg  RequestConfig
	}
	var clients []client
	routines := []string{"fir", "decomp", "saturr"}
	strategies := []struct {
		strat string
		ccm   int64
	}{
		{"none", 0},
		{"postpass", 512},
		{"integrated", 256},
	}
	for i, rname := range routines {
		r, ok := workload.Lookup(rname)
		if !ok {
			t.Fatalf("no workload routine %q", rname)
		}
		p, err := r.Build()
		if err != nil {
			t.Fatalf("build %s: %v", rname, err)
		}
		text := p.String()
		for j, s := range strategies {
			cfg := RequestConfig{Strategy: s.strat, CCMBytes: s.ccm, Workers: (i + j) % 3}
			clients = append(clients,
				client{fmt.Sprintf("%s/%s", rname, s.strat), text, cfg},
				// The duplicate: same key, racing for the same cache slot.
				client{fmt.Sprintf("%s/%s/dup", rname, s.strat), text, cfg})
		}
	}

	// Reference outputs from solo, cache-free, single-worker compiles.
	want := make(map[string]string)
	for _, c := range clients {
		if _, ok := want[c.name]; ok {
			continue
		}
		svcRef := newTestService(t, nil)
		pcfg, apiErr := svcRef.pipelineConfig(&CompileRequest{Config: c.cfg}, shedNone)
		if apiErr != nil {
			t.Fatalf("%s: pipelineConfig: %v", c.name, apiErr)
		}
		want[c.name] = soloCompile(t, c.text, pcfg)
	}

	var wg sync.WaitGroup
	got := make([]string, len(clients))
	errs := make([]*APIError, len(clients))
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c client) {
			defer wg.Done()
			resp, apiErr := svc.Compile(context.Background(), &CompileRequest{
				Program: c.text,
				Config:  c.cfg,
			})
			if apiErr != nil {
				errs[i] = apiErr
				return
			}
			got[i] = resp.Output
		}(i, c)
	}
	wg.Wait()
	for i, c := range clients {
		if errs[i] != nil {
			t.Fatalf("%s: %v", c.name, errs[i])
		}
		if got[i] != want[c.name] {
			t.Errorf("%s: shared-service output differs from solo compile", c.name)
		}
	}

	// The whole-cache invariant: every lookup that hit was served by
	// exactly one tier.
	cs := drv.Metrics().Cache
	if cs.Hits != cs.Memory.Hits+cs.Disk.Hits {
		t.Fatalf("cache invariant broken: Hits=%d, Memory.Hits=%d, Disk.Hits=%d",
			cs.Hits, cs.Memory.Hits, cs.Disk.Hits)
	}
	if cs.Hits+cs.Misses == 0 {
		t.Fatalf("cache never consulted across %d compiles", len(clients))
	}

	// Repeat the whole population: every answer must now be served
	// (identically) with at least the duplicates' worth of cache hits.
	before := cs.Hits
	for i, c := range clients {
		resp, apiErr := svc.Compile(context.Background(), &CompileRequest{
			Program: c.text, Config: c.cfg,
		})
		if apiErr != nil {
			t.Fatalf("repeat %s: %v", c.name, apiErr)
		}
		if resp.Output != want[c.name] {
			t.Errorf("repeat %s: output changed on the cached path", c.name)
		}
		_ = i
	}
	cs = drv.Metrics().Cache
	if cs.Hits <= before {
		t.Fatalf("repeat pass produced no cache hits (%d -> %d)", before, cs.Hits)
	}
	if cs.Hits != cs.Memory.Hits+cs.Disk.Hits {
		t.Fatalf("cache invariant broken after repeat: Hits=%d Memory=%d Disk=%d",
			cs.Hits, cs.Memory.Hits, cs.Disk.Hits)
	}
}
