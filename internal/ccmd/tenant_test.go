package ccmd

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"ccmem/internal/diskcache"
	"ccmem/internal/journal"
	"ccmem/internal/obs"
	"ccmem/internal/pipeline"
)

// TestRateLimitHotTenant pins the tenant-scoped 429 against an
// injectable clock: a tenant that burns its burst is throttled with
// rate-limited (not saturated) and an exact Retry-After, while a cold
// tenant on the same service is admitted with byte-identical output,
// and the hot tenant recovers once its bucket refills.
func TestRateLimitHotTenant(t *testing.T) {
	now := time.Unix(1_000, 0)
	svc := newTestService(t, func(c *Config) {
		c.TenantRate = 1
		c.TenantBurst = 2
		c.RateNow = func() time.Time { return now }
	})
	text := testProgram(t, 20)
	compile := func(tenant string) (*CompileResponse, *APIError) {
		return svc.Compile(context.Background(), &CompileRequest{
			Tenant:  tenant,
			Program: text,
			Config:  RequestConfig{Strategy: "postpass", CCMBytes: 512},
		})
	}

	first, apiErr := compile("hot")
	if apiErr != nil {
		t.Fatalf("hot #1: %v", apiErr)
	}
	if _, apiErr = compile("hot"); apiErr != nil {
		t.Fatalf("hot #2 (burst): %v", apiErr)
	}
	_, apiErr = compile("hot")
	if apiErr == nil {
		t.Fatalf("hot tenant admitted past its burst")
	}
	if apiErr.Status != http.StatusTooManyRequests || apiErr.Code != CodeRateLimited || apiErr.Field != "tenant" {
		t.Fatalf("got status=%d code=%q field=%q, want 429 %q tenant", apiErr.Status, apiErr.Code, apiErr.Field, CodeRateLimited)
	}
	// Empty bucket at rate 1/s: the next token is exactly 1s away.
	if apiErr.RetryAfter != 1 {
		t.Fatalf("RetryAfter = %d, want 1", apiErr.RetryAfter)
	}

	// A throttled neighbor costs the cold tenant nothing — not even a
	// byte of output difference.
	cold, apiErr := compile("cold")
	if apiErr != nil {
		t.Fatalf("cold tenant throttled by the hot one: %v", apiErr)
	}
	if cold.Output != first.Output {
		t.Fatalf("cold tenant got different bytes than the hot tenant")
	}

	// The bucket refills with the clock, not with wall time.
	now = now.Add(2 * time.Second)
	again, apiErr := compile("hot")
	if apiErr != nil {
		t.Fatalf("hot tenant still throttled after refill: %v", apiErr)
	}
	if again.Output != first.Output {
		t.Fatalf("throttling changed output bytes")
	}

	st := svc.Stats()
	if st.RateLimited != 1 {
		t.Fatalf("RateLimited = %d, want 1", st.RateLimited)
	}
	hot, ok := st.Tenants["hot"]
	if !ok || hot.Limited != 1 || hot.Requests != 4 {
		t.Fatalf("Tenants[hot] = %+v (ok=%v), want requests=4 limited=1", hot, ok)
	}
	if cold, ok := st.Tenants["cold"]; !ok || cold.Limited != 0 {
		t.Fatalf("Tenants[cold] = %+v (ok=%v), want limited=0", cold, ok)
	}
	if snap := svc.Metrics(); snap.Counters["ccmd.rate_limited"] != 1 {
		t.Fatalf("ccmd.rate_limited = %d in registry, want 1", snap.Counters["ccmd.rate_limited"])
	}
}

// TestFairShareQueueCap: with the only slot held, one tenant may hold
// at most MaxTenantQueue queue positions — its next request is a
// tenant-scoped 429 while another tenant still queues freely.
func TestFairShareQueueCap(t *testing.T) {
	svc := newTestService(t, func(c *Config) {
		c.MaxInflight = 1
		c.MaxQueue = 4
		c.MaxTenantQueue = 1
	})
	hold := make(chan struct{})
	entered := make(chan struct{}, 8)
	svc.testCompileHook = func() {
		entered <- struct{}{}
		<-hold
	}
	text := testProgram(t, 21)
	results := make(chan *APIError, 3)
	compileAsync := func(tenant string) {
		go func() {
			_, apiErr := svc.Compile(context.Background(), &CompileRequest{Tenant: tenant, Program: text})
			results <- apiErr
		}()
	}

	compileAsync("hog") // takes the slot
	<-entered
	compileAsync("hog") // takes the hog's one queue position
	waitFor(t, func() bool { return svc.Stats().Queued == 1 })

	// The hog's third request must bounce as rate-limited — its share of
	// the queue is spent — long before service-wide saturation (queue 4).
	_, apiErr := svc.Compile(context.Background(), &CompileRequest{Tenant: "hog", Program: text})
	if apiErr == nil {
		t.Fatalf("hog request admitted past its fair share")
	}
	if apiErr.Status != http.StatusTooManyRequests || apiErr.Code != CodeRateLimited || apiErr.Field != "tenant" {
		t.Fatalf("got status=%d code=%q field=%q, want 429 %q tenant", apiErr.Status, apiErr.Code, apiErr.Field, CodeRateLimited)
	}
	if apiErr.RetryAfter <= 0 {
		t.Fatalf("fair-share rejection carries no Retry-After")
	}

	// Another tenant is untouched by the hog's spent share.
	compileAsync("quiet")
	waitFor(t, func() bool { return svc.Stats().Queued == 2 })

	close(hold)
	for i := 0; i < 3; i++ {
		if err := <-results; err != nil {
			t.Fatalf("queued request failed: %v", err)
		}
	}
	if n := svc.Stats().FairShareRejected; n != 1 {
		t.Fatalf("FairShareRejected = %d, want 1", n)
	}
}

// TestHTTPAuth pins the bearer-token gate: every data endpoint answers
// 401 in the structured-error envelope without the right token, health
// probes stay open, and the right token restores service.
func TestHTTPAuth(t *testing.T) {
	svc := newTestService(t, nil)
	ts := httptest.NewServer(Handler(svc, "test-version", "sekrit"))
	t.Cleanup(ts.Close)
	text := testProgram(t, 22)

	do := func(method, path, token string) *http.Response {
		t.Helper()
		var body io.Reader
		if method == http.MethodPost {
			body = strings.NewReader(fmt.Sprintf(`{"program": %q}`, text))
		}
		req, err := http.NewRequest(method, ts.URL+path, body)
		if err != nil {
			t.Fatal(err)
		}
		if method == http.MethodPost {
			req.Header.Set("Content-Type", "application/json")
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
		return resp
	}

	protected := []struct{ method, path string }{
		{http.MethodPost, "/compile"},
		{http.MethodPost, "/run"},
		{http.MethodGet, "/report"},
		{http.MethodGet, "/metrics"},
		{http.MethodGet, "/trace"},
	}
	for _, ep := range protected {
		for _, token := range []string{"", "wrong"} {
			resp := do(ep.method, ep.path, token)
			if resp.StatusCode != http.StatusUnauthorized {
				t.Fatalf("%s %s token=%q: status %d, want 401", ep.method, ep.path, token, resp.StatusCode)
			}
			if ch := resp.Header.Get("WWW-Authenticate"); !strings.Contains(ch, "Bearer") {
				t.Fatalf("%s %s: WWW-Authenticate = %q", ep.method, ep.path, ch)
			}
			if e := decodeBody[errEnvelope](t, resp); e.Error == nil || e.Error.Code != CodeUnauthorized {
				t.Fatalf("%s %s: error envelope %+v, want %q", ep.method, ep.path, e.Error, CodeUnauthorized)
			}
		}
	}
	// Health probes need no secret: load balancers don't carry tokens.
	for _, path := range []string{"/healthz", "/readyz", "/version"} {
		resp := do(http.MethodGet, path, "")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s without token: status %d, want 200", path, resp.StatusCode)
		}
	}
	// The right token restores every endpoint.
	resp := do(http.MethodPost, "/compile", "sekrit")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authorized POST /compile: status %d, want 200", resp.StatusCode)
	}
	if n := svc.Stats().Unauthorized; n != int64(len(protected)*2) {
		t.Fatalf("Unauthorized = %d, want %d", n, len(protected)*2)
	}
}

// TestHTTPTenantPathTraversal is the live-handler regression for the
// path-traversal tenant: "../evil" on /compile and /run must be a 400
// bad-request naming the tenant field, never a served request (and
// never a directory component).
func TestHTTPTenantPathTraversal(t *testing.T) {
	_, ts := newTestHTTP(t, nil)
	text := testProgram(t, 23)
	cases := []struct {
		path string
		body any
	}{
		{"/compile", CompileRequest{Tenant: "../evil", Program: text}},
		{"/run", RunRequest{Tenant: "../evil", Program: text}},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s tenant=../evil: status %d, want 400", tc.path, resp.StatusCode)
		}
		e := decodeBody[errEnvelope](t, resp)
		if e.Error == nil || e.Error.Code != CodeBadRequest || e.Error.Field != "tenant" {
			t.Fatalf("POST %s: error %+v, want %q field tenant", tc.path, e.Error, CodeBadRequest)
		}
	}
}

// TestBackpressureRetryAfterAudit walks every 429/503 emission path in
// the service — tenant rate limit, fair-share queue cap, service-wide
// saturation, drain — and pins the shared contract: each carries a
// positive Retry-After and renders as the one structured-error
// envelope with the matching header.
func TestBackpressureRetryAfterAudit(t *testing.T) {
	ctx := context.Background()

	rateLimited := func() *APIError {
		now := time.Unix(5_000, 0)
		svc := newTestService(t, func(c *Config) {
			c.TenantRate = 1
			c.TenantBurst = 1
			c.RateNow = func() time.Time { return now }
		})
		if apiErr := svc.rateLimit("hot"); apiErr != nil {
			t.Fatalf("first spend throttled: %v", apiErr)
		}
		return svc.rateLimit("hot")
	}
	fairShare := func() *APIError {
		svc := newTestService(t, func(c *Config) {
			c.MaxInflight = 1
			c.MaxQueue = 4
			c.MaxTenantQueue = 1
		})
		svc.slots <- struct{}{} // the one slot is busy
		svc.tenantQueued["hog"] = 1
		_, _, apiErr := svc.admit(ctx, "hog")
		return apiErr
	}
	saturated := func() *APIError {
		svc := newTestService(t, func(c *Config) {
			c.MaxInflight = 1
			c.MaxQueue = 1
			c.MaxTenantQueue = -1
		})
		svc.slots <- struct{}{}
		svc.queued.Store(1) // queue already full
		_, _, apiErr := svc.admit(ctx, "t")
		return apiErr
	}
	draining := func() *APIError {
		svc := newTestService(t, nil)
		svc.BeginDrain()
		_, _, apiErr := svc.admit(ctx, "t")
		return apiErr
	}

	cases := []struct {
		name   string
		err    *APIError
		status int
		code   string
	}{
		{"rate-limited", rateLimited(), http.StatusTooManyRequests, CodeRateLimited},
		{"fair-share", fairShare(), http.StatusTooManyRequests, CodeRateLimited},
		{"saturated", saturated(), http.StatusTooManyRequests, CodeSaturated},
		{"draining", draining(), http.StatusServiceUnavailable, CodeDraining},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.err == nil {
				t.Fatalf("path produced no error")
			}
			if tc.err.Status != tc.status || tc.err.Code != tc.code {
				t.Fatalf("got status=%d code=%q, want %d %q", tc.err.Status, tc.err.Code, tc.status, tc.code)
			}
			if tc.err.RetryAfter <= 0 {
				t.Fatalf("%s carries no Retry-After: %+v", tc.name, tc.err)
			}
			// Render through the one error writer: header and envelope
			// must agree with the typed error.
			rec := httptest.NewRecorder()
			writeError(rec, tc.err)
			if rec.Code != tc.status {
				t.Fatalf("wire status %d, want %d", rec.Code, tc.status)
			}
			if got := rec.Header().Get("Retry-After"); got != strconv.Itoa(tc.err.RetryAfter) {
				t.Fatalf("Retry-After header = %q, want %d", got, tc.err.RetryAfter)
			}
			e := decodeBody[errEnvelope](t, rec.Result())
			if e.Error == nil || e.Error.Code != tc.code || e.Error.RetryAfter != tc.err.RetryAfter {
				t.Fatalf("envelope %+v does not match typed error %+v", e.Error, tc.err)
			}
		})
	}
}

// TestJournalReplayRewarmsCache: journaled compile requests survive a
// process "restart" (journal close + reopen) and replay on a fresh
// service re-warms its cache, with re-served responses byte-identical
// to the originals. Corrupt records are counted and skipped, never
// fatal.
func TestJournalReplayRewarmsCache(t *testing.T) {
	dir := t.TempDir()
	jr, recs, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatalf("journal.Open: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal recovered %d records", len(recs))
	}
	svc := newTestService(t, func(c *Config) { c.Journal = jr })

	texts := []string{testProgram(t, 24), testProgram(t, 25)}
	want := make([]string, len(texts))
	for i, text := range texts {
		resp, apiErr := svc.Compile(context.Background(), &CompileRequest{
			Tenant:  "team-a",
			Program: text,
			Config:  RequestConfig{Strategy: "postpass", CCMBytes: 512},
		})
		if apiErr != nil {
			t.Fatalf("compile %d: %v", i, apiErr)
		}
		want[i] = resp.Output
	}
	if js := svc.Stats().Journal; js == nil || js.Appends != 2 {
		t.Fatalf("journal stats after two compiles: %+v", js)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": reopen the journal, replay onto a fresh service with
	// its own driver and cache.
	jr2, recs, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer jr2.Close()
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2", len(recs))
	}
	svc2 := newTestService(t, func(c *Config) { c.Journal = jr2 })
	replayed, skipped := svc2.ReplayJournal(context.Background(), recs)
	if replayed != 2 || skipped != 0 {
		t.Fatalf("ReplayJournal = (%d, %d), want (2, 0)", replayed, skipped)
	}

	// Re-serving after replay is byte-identical to the pre-crash runs.
	for i, text := range texts {
		resp, apiErr := svc2.Compile(context.Background(), &CompileRequest{
			Tenant:  "team-a",
			Program: text,
			Config:  RequestConfig{Strategy: "postpass", CCMBytes: 512},
		})
		if apiErr != nil {
			t.Fatalf("re-serve %d: %v", i, apiErr)
		}
		if resp.Output != want[i] {
			t.Fatalf("re-served output %d differs from the original", i)
		}
	}

	// Garbage records: skipped and counted, not fatal.
	if replayed, skipped := svc2.ReplayJournal(context.Background(), [][]byte{[]byte("not json")}); replayed != 0 || skipped != 1 {
		t.Fatalf("garbage replay = (%d, %d), want (0, 1)", replayed, skipped)
	}
	if js := svc2.Stats().Journal; js == nil || js.Replayed != 2 || js.ReplayErrors != 1 {
		t.Fatalf("replay stats: %+v", js)
	}
}

// TestJournalFaultMatrixByteIdentity is the service-level half of the
// journal fault matrix: at workers=1 and workers=8, ENOSPC and a torn-
// write crash on the journal cost durability only — every compile
// response stays byte-identical to a solo ccmc run, and a reopen after
// the crash recovers exactly the fully-committed requests.
func TestJournalFaultMatrixByteIdentity(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dir := t.TempDir()
			ffs := diskcache.NewFaultFS(nil)
			jr, _, err := journal.Open(dir, journal.Options{FS: ffs})
			if err != nil {
				t.Fatalf("journal.Open: %v", err)
			}
			svc := newTestService(t, func(c *Config) {
				c.Driver = pipeline.New(pipeline.Options{Workers: workers, Metrics: obs.NewRegistry()})
				c.Journal = jr
			})
			compile := func(seed int64) string {
				t.Helper()
				text := testProgram(t, seed)
				resp, apiErr := svc.Compile(context.Background(), &CompileRequest{
					Program: text,
					Config:  RequestConfig{Strategy: "postpass", CCMBytes: 512},
				})
				if apiErr != nil {
					t.Fatalf("compile seed %d: %v", seed, apiErr)
				}
				if want := soloCompile(t, text, pipelineConfigFor(t, "postpass", 512)); resp.Output != want {
					t.Fatalf("seed %d: response differs from solo compile", seed)
				}
				return resp.Output
			}

			// Three healthy requests commit to the journal.
			for seed := int64(30); seed < 33; seed++ {
				compile(seed)
			}

			// ENOSPC: the append fails, the compile must not.
			ffs.SetWriteBudget(0)
			compile(33)
			if js := svc.Stats().Journal; js == nil || js.AppendErrors == 0 {
				t.Fatalf("ENOSPC left no append error: %+v", js)
			}
			ffs.SetWriteBudget(-1)

			// Torn-write crash: a few bytes of the frame land, then the
			// disk dies mid-append. The compile still answers correct
			// bytes.
			ffs.CrashAfterBytes(5)
			compile(34)
			ffs.Revive()

			if err := jr.Close(); err != nil {
				t.Fatal(err)
			}

			// Restart on the healthy disk: only the three fully-committed
			// requests replay — the torn tail is truncated, nothing
			// corrupt survives.
			jr2, recs, err := journal.Open(dir, journal.Options{})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer jr2.Close()
			if len(recs) != 3 {
				t.Fatalf("recovered %d records after faults, want 3", len(recs))
			}
			svc2 := newTestService(t, func(c *Config) {
				c.Driver = pipeline.New(pipeline.Options{Workers: workers, Metrics: obs.NewRegistry()})
			})
			if replayed, skipped := svc2.ReplayJournal(context.Background(), recs); replayed != 3 || skipped != 0 {
				t.Fatalf("replay = (%d, %d), want (3, 0)", replayed, skipped)
			}
			// The replayed service serves the same bytes the crashed one did.
			for seed := int64(30); seed < 33; seed++ {
				text := testProgram(t, seed)
				resp, apiErr := svc2.Compile(context.Background(), &CompileRequest{
					Program: text,
					Config:  RequestConfig{Strategy: "postpass", CCMBytes: 512},
				})
				if apiErr != nil {
					t.Fatalf("post-replay compile: %v", apiErr)
				}
				if want := soloCompile(t, text, pipelineConfigFor(t, "postpass", 512)); resp.Output != want {
					t.Fatalf("post-replay output differs from solo compile (workers=%d)", workers)
				}
			}
		})
	}
}
