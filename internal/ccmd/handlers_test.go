package ccmd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ccmem/internal/obs"
	"ccmem/internal/pipeline"
	"ccmem/internal/remotecache"
)

func newTestHTTP(t *testing.T, mut func(*Config)) (*Service, *httptest.Server) {
	t.Helper()
	svc := newTestService(t, mut)
	ts := httptest.NewServer(Handler(svc, "test-version", ""))
	t.Cleanup(ts.Close)
	return svc, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return v
}

type errEnvelope struct {
	Error *APIError `json:"error"`
}

func TestHTTPCompile(t *testing.T) {
	_, ts := newTestHTTP(t, nil)
	text := testProgram(t, 11)
	resp := postJSON(t, ts.URL+"/compile", CompileRequest{
		Program: text,
		Config:  RequestConfig{Strategy: "postpass", CCMBytes: 512},
	})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	out := decodeBody[CompileResponse](t, resp)
	want := soloCompile(t, text, pipelineConfigFor(t, "postpass", 512))
	if out.Output != want {
		t.Fatalf("HTTP output differs from solo compile")
	}
	if out.Report == nil {
		t.Fatalf("no report in response")
	}
}

func pipelineConfigFor(t *testing.T, strategy string, ccm int64) pipeline.Config {
	t.Helper()
	svc := newTestService(t, nil)
	pc, apiErr := svc.pipelineConfig(&CompileRequest{
		Config: RequestConfig{Strategy: strategy, CCMBytes: ccm},
	}, shedNone)
	if apiErr != nil {
		t.Fatalf("pipelineConfig: %v", apiErr)
	}
	return pc
}

func TestHTTPValidation(t *testing.T) {
	_, ts := newTestHTTP(t, nil)

	// Unknown fields are 400s, not silent drops.
	resp, err := http.Post(ts.URL+"/compile", "application/json",
		strings.NewReader(`{"program": "x", "turbo": true}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	if resp.StatusCode != 400 {
		t.Fatalf("unknown field: status %d, want 400", resp.StatusCode)
	}
	if e := decodeBody[errEnvelope](t, resp); e.Error == nil || e.Error.Code != CodeBadRequest {
		t.Fatalf("unknown field error: %+v", e.Error)
	}

	// Wrong content type.
	resp, err = http.Post(ts.URL+"/compile", "text/plain", strings.NewReader("{}"))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("content type: status %d, want 415", resp.StatusCode)
	}

	// Unparseable program is a 422 with the typed code.
	resp = postJSON(t, ts.URL+"/compile", CompileRequest{Program: "definitely not iloc"})
	if resp.StatusCode != 422 {
		t.Fatalf("bad program: status %d, want 422", resp.StatusCode)
	}
	if e := decodeBody[errEnvelope](t, resp); e.Error == nil || e.Error.Code != CodeBadProgram {
		t.Fatalf("bad program error: %+v", e.Error)
	}

	// Trailing garbage after the JSON object.
	resp, err = http.Post(ts.URL+"/compile", "application/json",
		strings.NewReader(`{"program": "x"} extra`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("trailing garbage: status %d, want 400", resp.StatusCode)
	}

	// GET on a POST route is a 405 from the method-aware mux.
	getResp, err := http.Get(ts.URL + "/compile")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	io.Copy(io.Discard, getResp.Body)
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /compile: status %d, want 405", getResp.StatusCode)
	}
}

func TestHTTPBodyTooLarge(t *testing.T) {
	_, ts := newTestHTTP(t, func(c *Config) { c.MaxProgramBytes = 128 })
	big := strings.Repeat("a", 64*1024+256)
	resp := postJSON(t, ts.URL+"/compile", CompileRequest{Program: big})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func TestHTTPRun(t *testing.T) {
	_, ts := newTestHTTP(t, nil)
	resp := postJSON(t, ts.URL+"/run", RunRequest{Program: testProgram(t, 12), CCMBytes: 256})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	out := decodeBody[RunResponse](t, resp)
	if out.Instrs == 0 || out.Cycles == 0 {
		t.Fatalf("empty run stats: %+v", out)
	}
}

func TestHTTPHealthAndVersion(t *testing.T) {
	svc, ts := newTestHTTP(t, nil)
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if h := decodeBody[HealthResponse](t, resp); h.Status != "ok" {
			t.Fatalf("GET %s: status %q", path, h.Status)
		}
	}
	resp, err := http.Get(ts.URL + "/version")
	if err != nil {
		t.Fatalf("GET /version: %v", err)
	}
	if v := decodeBody[VersionResponse](t, resp); v.Version != "test-version" {
		t.Fatalf("version %q", v.Version)
	}

	// Draining flips readiness to 503 but leaves liveness at 200.
	svc.BeginDrain()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatalf("draining /readyz has no Retry-After")
	}
	if h := decodeBody[HealthResponse](t, resp); h.Status != "draining" {
		t.Fatalf("draining /readyz body: %q", h.Status)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("draining /healthz: status %d, want 200", resp.StatusCode)
	}
}

func TestHTTPMetricsAndTrace(t *testing.T) {
	_, ts := newTestHTTP(t, nil)
	resp := postJSON(t, ts.URL+"/compile", CompileRequest{
		Program: testProgram(t, 13),
		Options: RequestOptions{Trace: true},
	})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("compile: status %d", resp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	m := decodeBody[MetricsResponse](t, mresp)
	if m.Service.Requests != 1 || m.Service.TraceRequests != 1 {
		t.Fatalf("service stats: %+v", m.Service)
	}
	if m.Driver == nil || len(m.Registry) == 0 {
		t.Fatalf("metrics response missing driver report or registry snapshot")
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(m.Registry, &snap); err != nil {
		t.Fatalf("registry snapshot: %v", err)
	}
	if snap.Counters["ccmd.requests"] != 1 {
		t.Fatalf("ccmd.requests = %d in snapshot", snap.Counters["ccmd.requests"])
	}

	tresp, err := http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatalf("GET /trace: %v", err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	body, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if err := json.Unmarshal(body, &trace); err != nil {
		t.Fatalf("GET /trace is not Chrome trace JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatalf("GET /trace has no events after a traced compile")
	}

	rresp, err := http.Get(ts.URL + "/report")
	if err != nil {
		t.Fatalf("GET /report: %v", err)
	}
	var rep map[string]any
	if err := json.NewDecoder(rresp.Body).Decode(&rep); err != nil {
		t.Fatalf("GET /report: %v", err)
	}
	rresp.Body.Close()
	if rep["funcs"] == nil {
		t.Fatalf("GET /report missing funcs: %v", rep)
	}
}

// TestHTTPSaturation proves the 429 + Retry-After contract end to end:
// with one slot and a one-deep queue held busy, the next request over
// the wire bounces with the typed saturation error.
func TestHTTPSaturation(t *testing.T) {
	svc, ts := newTestHTTP(t, func(c *Config) {
		c.MaxInflight = 1
		c.MaxQueue = 1
		c.RetryAfter = 3 * time.Second
	})
	hold := make(chan struct{})
	entered := make(chan struct{}, 8)
	svc.testCompileHook = func() {
		entered <- struct{}{}
		<-hold
	}
	text := testProgram(t, 14)
	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/compile", CompileRequest{Program: text})
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("held request: status %d", resp.StatusCode)
			}
		}()
	}
	<-entered // one inflight
	waitFor(t, func() bool { return svc.Stats().Queued == 1 })

	resp := postJSON(t, ts.URL+"/compile", CompileRequest{Program: text})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", got)
	}
	if e := decodeBody[errEnvelope](t, resp); e.Error == nil || e.Error.Code != CodeSaturated {
		t.Fatalf("saturation error: %+v", e.Error)
	}

	close(hold)
	wg.Wait()
}

// TestServerDrain exercises the Server wrapper: serve on an ephemeral
// port, then Shutdown drains in-flight work before returning.
func TestServerDrain(t *testing.T) {
	svc := newTestService(t, nil)
	var logBuf bytes.Buffer
	var logMu sync.Mutex
	srv, err := NewServer(svc, ServerConfig{
		Addr:         "127.0.0.1:0",
		Version:      "test",
		DrainTimeout: 10 * time.Second,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			fmt.Fprintf(&logBuf, format+"\n", args...)
			logMu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	url := "http://" + srv.Addr()
	hold := make(chan struct{})
	entered := make(chan struct{}, 1)
	svc.testCompileHook = func() {
		entered <- struct{}{}
		<-hold
	}
	compiled := make(chan int, 1)
	go func() {
		resp := postJSON(t, url+"/compile", CompileRequest{Program: testProgram(t, 15)})
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		compiled <- resp.StatusCode
	}()
	<-entered

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(context.Background()) }()
	waitFor(t, func() bool { return svc.Draining() })

	// The in-flight request survives the drain window and completes.
	close(hold)
	if code := <-compiled; code != 200 {
		t.Fatalf("in-flight request during drain: status %d", code)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v after graceful shutdown", err)
	}
	logMu.Lock()
	logs := logBuf.String()
	logMu.Unlock()
	if !strings.Contains(logs, "listening on") || !strings.Contains(logs, "drained cleanly") {
		t.Fatalf("server log missing lifecycle lines:\n%s", logs)
	}
}

// TestHTTPRemoteCircuitDegradedNotDead pins the operational contract
// for the remote cache tier: when its circuit breaker opens, the
// service reports "degraded" on /healthz and /readyz and exposes the
// breaker state in /metrics — but readiness stays 200. An open circuit
// means the shared cache is being skipped, not that this daemon cannot
// compile; failing readiness would drain capacity exactly when the
// fleet's cache is already down.
func TestHTTPRemoteCircuitDegradedNotDead(t *testing.T) {
	// A just-closed listener: connections are refused deterministically.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + ln.Addr().String()
	ln.Close()

	svc, ts := newTestHTTP(t, func(c *Config) {
		c.Driver = pipeline.New(pipeline.Options{
			Workers:   2,
			Metrics:   obs.NewRegistry(),
			RemoteURL: dead,
			RemoteTuning: remotecache.Tuning{
				RequestTimeout: 100 * time.Millisecond,
				Retries:        -1,
				TripAfter:      1, // first refused connection opens the circuit
				HalfOpenAfter:  time.Hour,
				Sleep:          func(time.Duration) {},
			},
		})
	})
	if err := svc.Driver().RemoteCacheErr(); err != nil {
		t.Fatalf("remote tier failed to attach: %v", err)
	}

	// One compile drives lookups into the dead tier and trips the breaker.
	resp := postJSON(t, ts.URL+"/compile", CompileRequest{Program: testProgram(t, 16)})
	if resp.StatusCode != 200 {
		t.Fatalf("compile with dead remote: status %d, want 200", resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if state := svc.Driver().RemoteCircuit(); state != "open" {
		t.Fatalf("circuit %q after compile against dead server, want open", state)
	}

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d, want 200 (degraded, not dead)", path, resp.StatusCode)
		}
		h := decodeBody[HealthResponse](t, resp)
		if h.Status != "degraded" || !strings.Contains(h.Detail, "circuit open") {
			t.Fatalf("GET %s: %+v, want degraded/circuit open", path, h)
		}
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	m := decodeBody[MetricsResponse](t, mresp)
	if m.Service.RemoteCircuit != "open" {
		t.Fatalf("service.remote_circuit = %q, want open", m.Service.RemoteCircuit)
	}
	if m.Driver == nil || m.Driver.Cache.Remote.Circuit != "open" {
		t.Fatalf("driver report does not carry the open circuit")
	}
}

// fastFleetTuning is the fleet twin of the tuning used above: one
// attempt, first failure trips the node's breaker.
func fastFleetTuning() remotecache.Tuning {
	return remotecache.Tuning{
		RequestTimeout: 100 * time.Millisecond,
		Retries:        -1,
		TripAfter:      1,
		HalfOpenAfter:  time.Hour,
		Sleep:          func(time.Duration) {},
	}
}

// TestHTTPFleetDegradedOnlyWhenAllNodesOpen pins the fleet health
// contract on the daemon's probes: one dead node out of two leaves the
// service "ok" — the per-node list shows the asymmetry — and only every
// breaker open reads as "degraded", still with readiness 200.
func TestHTTPFleetDegradedOnlyWhenAllNodesOpen(t *testing.T) {
	deadAddr := func() string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := "http://" + ln.Addr().String()
		ln.Close()
		return addr
	}

	rsrv, err := remotecache.NewServer(t.TempDir(), remotecache.ServerOptions{})
	if err != nil {
		t.Fatalf("remotecache.NewServer: %v", err)
	}
	live := httptest.NewServer(rsrv.Handler("test"))
	t.Cleanup(live.Close)

	svc, ts := newTestHTTP(t, func(c *Config) {
		c.Driver = pipeline.New(pipeline.Options{
			Workers:      2,
			Metrics:      obs.NewRegistry(),
			RemoteURLs:   []string{live.URL, deadAddr()},
			RemoteTuning: fastFleetTuning(),
		})
	})
	if err := svc.Driver().RemoteCacheErr(); err != nil {
		t.Fatalf("fleet failed to attach: %v", err)
	}

	// A cold compile walks every node per key: the dead node's breaker
	// opens, the live one stays closed.
	resp := postJSON(t, ts.URL+"/compile", CompileRequest{Program: testProgram(t, 21)})
	if resp.StatusCode != 200 {
		t.Fatalf("compile with half-dead fleet: status %d, want 200", resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d, want 200", path, resp.StatusCode)
		}
		h := decodeBody[HealthResponse](t, resp)
		if h.Status != "ok" {
			t.Fatalf("GET %s with one healthy node: status %q, want ok (%+v)", path, h.Status, h)
		}
		if len(h.RemoteNodes) != 2 {
			t.Fatalf("GET %s: %d remote nodes, want 2: %+v", path, len(h.RemoteNodes), h)
		}
		circuits := map[string]int{}
		for _, n := range h.RemoteNodes {
			circuits[n.Circuit]++
		}
		if circuits["closed"] != 1 || circuits["open"] != 1 {
			t.Fatalf("GET %s: per-node circuits %v, want one closed one open", path, circuits)
		}
	}

	// /metrics carries the same per-node breakdown.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	m := decodeBody[MetricsResponse](t, mresp)
	if m.Service.RemoteCircuit != "closed" {
		t.Fatalf("service.remote_circuit = %q with one healthy node, want closed", m.Service.RemoteCircuit)
	}
	if len(m.Service.RemoteNodes) != 2 {
		t.Fatalf("service.remote_nodes = %+v, want 2 entries", m.Service.RemoteNodes)
	}

	// Every node dead: the fleet folds to open and the probes finally
	// say degraded — but readiness stays 200 (degraded, not dead).
	svc2, ts2 := newTestHTTP(t, func(c *Config) {
		c.Driver = pipeline.New(pipeline.Options{
			Workers:      2,
			Metrics:      obs.NewRegistry(),
			RemoteURLs:   []string{deadAddr(), deadAddr()},
			RemoteTuning: fastFleetTuning(),
		})
	})
	resp2 := postJSON(t, ts2.URL+"/compile", CompileRequest{Program: testProgram(t, 21)})
	if resp2.StatusCode != 200 {
		t.Fatalf("compile with all-dead fleet: status %d, want 200", resp2.StatusCode)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if state := svc2.Driver().RemoteCircuit(); state != "open" {
		t.Fatalf("fleet circuit %q after all-dead compile, want open", state)
	}
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts2.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d, want 200 (degraded, not dead)", path, resp.StatusCode)
		}
		h := decodeBody[HealthResponse](t, resp)
		if h.Status != "degraded" || !strings.Contains(h.Detail, "every node") {
			t.Fatalf("GET %s: %+v, want degraded with every-node detail", path, h)
		}
		for _, n := range h.RemoteNodes {
			if n.Circuit != "open" {
				t.Fatalf("GET %s: node %s circuit %q in a degraded fleet, want open", path, n.URL, n.Circuit)
			}
		}
	}
}
