package ccmd

import (
	"encoding/json"
	"fmt"
	"net/http"

	"ccmem/internal/pipeline"
	"ccmem/internal/ratelimit"
)

// Error codes: stable strings clients branch on without parsing
// messages. Each maps onto exactly one HTTP status (see APIError) and,
// where one exists, mirrors a ccmc exit code — the README's status
// table spells out the correspondence.
const (
	CodeBadRequest   = "bad-request"   // 400: malformed JSON, unknown field, invalid value
	CodeUnauthorized = "unauthorized"  // 401: missing or wrong bearer token
	CodeBadProgram   = "bad-program"   // 422: program text fails to parse or verify
	CodeCompileFault = "compile-fault" // 422: strict-mode pass fault (ccmc exit 1)
	CodeMiscompile   = "miscompile"    // 422: strict-mode oracle divergence (ccmc exit 4)
	CodeRunFault     = "run-fault"     // 422: execution faulted or hit a resource limit
	CodeRateLimited  = "rate-limited"  // 429: this tenant exceeded its rate or queue share
	CodeSaturated    = "saturated"     // 429: admission queue full service-wide; retry after backoff
	CodeDraining     = "draining"      // 503: the service is shutting down
	CodeCanceled     = "canceled"      // 499-ish: the client went away mid-compile
	CodeInternal     = "internal"      // 500: anything the service cannot attribute
)

// APIError is the service's one error shape: every non-2xx response
// body is {"error": <APIError>}. Status is the HTTP status it travels
// under (not serialized — the status line already carries it); Field
// names the request field a validation failure is about; RetryAfter is
// the backoff hint echoed in the Retry-After header on 429/503.
type APIError struct {
	Status     int    `json:"-"`
	Code       string `json:"code"`
	Message    string `json:"message"`
	Field      string `json:"field,omitempty"`
	RetryAfter int    `json:"retry_after_seconds,omitempty"`
}

func (e *APIError) Error() string {
	if e.Field != "" {
		return fmt.Sprintf("%s (%s): %s", e.Code, e.Field, e.Message)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// errBadRequest builds a 400 validation error about one request field.
func errBadRequest(field, format string, args ...any) *APIError {
	return &APIError{Status: http.StatusBadRequest, Code: CodeBadRequest,
		Field: field, Message: fmt.Sprintf(format, args...)}
}

// errBadProgram builds a 422 for program text the front end rejects.
func errBadProgram(err error) *APIError {
	return &APIError{Status: http.StatusUnprocessableEntity, Code: CodeBadProgram,
		Field: "program", Message: err.Error()}
}

// RequestConfig is the per-request slice of pipeline.Config a client
// may set. It deliberately excludes the driver-level knobs (cache
// location, worker-pool ceiling): those belong to the operator, not the
// request. Workers is a hint, clamped to the shared driver's pool size;
// compilation is deterministic across worker counts, so the hint can
// change latency but never bytes.
type RequestConfig struct {
	Strategy  string `json:"strategy,omitempty"` // none | postpass | postpass-ipa | integrated
	CCMBytes  int64  `json:"ccm_bytes,omitempty"`
	IntRegs   int    `json:"int_regs,omitempty"`   // default 32
	FloatRegs int    `json:"float_regs,omitempty"` // default 32

	DisableOptimizer  bool `json:"no_opt,omitempty"`
	DisableCompaction bool `json:"no_compact,omitempty"`
	CleanupSpills     bool `json:"cleanup,omitempty"`

	VerifyPasses bool   `json:"verify_passes,omitempty"`
	TimeoutMS    int64  `json:"timeout_ms,omitempty"` // per-function attempt timeout, clamped to the service max
	Strict       bool   `json:"strict,omitempty"`
	DiffCheck    string `json:"diff_check,omitempty"` // off | final | per-stage
	DiffVectors  int    `json:"diff_vectors,omitempty"`

	Workers int `json:"workers,omitempty"` // hint: 0 = the shared driver's pool
}

// RequestOptions are per-request service options, outside the compile
// configuration (they never affect output bytes, so they are fair game
// for load shedding).
type RequestOptions struct {
	// Trace records a span for every stage, pass, cache lookup, and
	// oracle run of this request and returns the Chrome trace-event JSON
	// in the response (also visible on GET /trace).
	Trace bool `json:"trace,omitempty"`
	// Repro writes crash/miscompile repro bundles for this request's
	// faults under the service repro directory, namespaced by tenant.
	Repro bool `json:"repro,omitempty"`
}

// CompileRequest is the body of POST /compile.
type CompileRequest struct {
	// Tenant namespaces this request's repro bundles ("" = "default").
	// Validated as a single safe path component; see repro.ValidTenant.
	Tenant  string         `json:"tenant,omitempty"`
	Program string         `json:"program"`
	Config  RequestConfig  `json:"config"`
	Options RequestOptions `json:"options"`
}

// CompileResponse is the body of a 200 from POST /compile. Output is
// allocated ILOC, byte-identical to what a solo ccmc compile of the
// same (program, config) prints. A compile that recovered faults by
// degradation still returns 200 (the artifact is correct, below
// configured fidelity) with Report.Failures/Degraded/Divergences
// counting what happened — the HTTP twin of ccmc exits 3 and 4.
type CompileResponse struct {
	Output string           `json:"output"`
	Report *pipeline.Report `json:"report"`
	// Shed names the load-shedding rung admission applied ("" = none,
	// "verify" = auxiliary verification dropped, "diff" = oracle and
	// tracing dropped too). Shedding only ever strips work that cannot
	// change output bytes.
	Shed string `json:"shed,omitempty"`
	// Trace is the request's Chrome trace-event JSON (Options.Trace).
	Trace json.RawMessage `json:"trace,omitempty"`
}

// RunRequest is the body of POST /run: execute a program on the
// instrumented abstract machine.
type RunRequest struct {
	// Tenant names the requester for per-tenant rate accounting, same
	// validation as CompileRequest.Tenant ("" = "default").
	Tenant   string `json:"tenant,omitempty"`
	Program  string `json:"program"`
	Entry    string `json:"entry,omitempty"` // default "main"
	CCMBytes int64  `json:"ccm_bytes,omitempty"`
	MemCost  int    `json:"mem_cost,omitempty"`
	// MaxSteps/MaxDepth bound the run; both are clamped to the service
	// ceilings so one request cannot monopolize a worker.
	MaxSteps int64 `json:"max_steps,omitempty"`
	MaxDepth int   `json:"max_depth,omitempty"`
}

// RunResponse is the body of a 200 from POST /run.
type RunResponse struct {
	Instrs      int64    `json:"instrs"`
	Cycles      int64    `json:"cycles"`
	MemOpCycles int64    `json:"memop_cycles"`
	MainMemOps  int64    `json:"main_mem_ops"`
	CCMOps      int64    `json:"ccm_ops"`
	SpillStores int64    `json:"spill_stores"`
	SpillLoads  int64    `json:"spill_loads"`
	CCMSpills   int64    `json:"ccm_spills"`
	CCMRestores int64    `json:"ccm_restores"`
	Output      []string `json:"output,omitempty"` // the observable emit trace
}

// VersionResponse is the body of GET /version.
type VersionResponse struct {
	Version string `json:"version"`
}

// HealthResponse is the body of GET /healthz and GET /readyz.
type HealthResponse struct {
	Status string `json:"status"` // "ok", "draining", or "degraded"
	Detail string `json:"detail,omitempty"`
	// RemoteNodes breaks the remote fleet out per node (URL + circuit
	// position) when the daemon runs against a replicated fleet. The
	// service is "degraded" on the remote axis only when every node here
	// is open; a mix of open and closed nodes is business as usual.
	RemoteNodes []pipeline.RemoteNodeStatus `json:"remote_nodes,omitempty"`
}

// MetricsResponse is the body of GET /metrics: the service's own
// admission counters plus the shared obs registry snapshot (which the
// driver, both cache tiers, the allocator, and the oracle all record
// into) and the driver's cumulative per-pass report.
type MetricsResponse struct {
	Service  ServiceStats     `json:"service"`
	Registry json.RawMessage  `json:"metrics,omitempty"`
	Driver   *pipeline.Report `json:"driver,omitempty"`
}

// ServiceStats counts the service's admission and shedding activity.
type ServiceStats struct {
	Requests          int64 `json:"requests"`
	Inflight          int64 `json:"inflight"`
	Queued            int64 `json:"queued"`
	MaxInflight       int   `json:"max_inflight"`
	MaxQueue          int   `json:"max_queue"`
	RejectedSaturated int64 `json:"rejected_saturated"`
	RejectedDraining  int64 `json:"rejected_draining"`
	ShedVerify        int64 `json:"shed_verify"`
	ShedDiff          int64 `json:"shed_diff"`
	TraceRequests     int64 `json:"trace_requests"`
	Draining          bool  `json:"draining"`

	// Unauthorized counts requests refused at the HTTP door for a
	// missing or wrong bearer token.
	Unauthorized int64 `json:"unauthorized"`
	// RateLimited counts requests denied by a tenant's token bucket;
	// FairShareRejected counts requests bounced because one tenant had
	// already filled its share of the admission queue. Both travel as
	// 429 rate-limited, distinct from service-wide saturation.
	RateLimited       int64 `json:"rate_limited"`
	FairShareRejected int64 `json:"fair_share_rejected"`
	// Tenants is the per-tenant admission record of every tenant the
	// (LRU-bounded) limiter currently tracks; nil when rate limiting is
	// off.
	Tenants map[string]ratelimit.KeyStats `json:"tenants,omitempty"`

	// Journal is the durable request journal's record; nil when the
	// service runs without one.
	Journal *JournalStats `json:"journal,omitempty"`

	// RemoteCircuit is the remote cache tier's breaker state ("closed",
	// "half-open", "open"; "" when no remote tier is configured). An
	// open circuit degrades the service — lookups skip the tier — but
	// never fails readiness. For a replicated fleet this is the folded
	// state: open only when every node's breaker is open.
	RemoteCircuit string `json:"remote_circuit,omitempty"`
	// RemoteNodes is the fleet's per-node circuit breakdown; nil for a
	// single-server tier or no remote at all.
	RemoteNodes []pipeline.RemoteNodeStatus `json:"remote_nodes,omitempty"`
}

// JournalStats is the request journal's ServiceStats slice: the
// journal's own counters plus the service's replay record.
type JournalStats struct {
	Appends         int64 `json:"appends"`
	AppendErrors    int64 `json:"append_errors"`
	Segments        int   `json:"segments"`
	TornTails       int64 `json:"torn_tails"`
	Quarantines     int64 `json:"quarantines"`
	DroppedSegments int64 `json:"dropped_segments"`
	Degraded        bool  `json:"degraded,omitempty"`
	// Replayed and ReplayErrors count startup recovery: journal records
	// recompiled to re-warm the cache, and records that failed to decode
	// or compile (skipped, never fatal).
	Replayed     int64 `json:"replayed"`
	ReplayErrors int64 `json:"replay_errors"`
}
