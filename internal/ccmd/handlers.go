package ccmd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"ccmem/internal/authtoken"
	"ccmem/internal/obs"
	"ccmem/internal/pipeline"
)

// Handler builds the service's HTTP surface. The handlers are a thin
// transport skin over Service: decode with strict validation (unknown
// fields are 400s, bodies are size-bounded before they reach the JSON
// decoder), call the service, encode the typed result. Every error
// travels as {"error": APIError}; 429 and 503 carry Retry-After.
//
// authToken, when non-empty, gates every data endpoint (/compile, /run,
// /report, /metrics, /trace) behind a bearer token — a request without
// it is a 401 in the same structured-error shape as every other
// failure. Health probes (/healthz, /readyz, /version) stay open so
// load balancers and fleet tooling need no secret.
func Handler(s *Service, version string, authToken string) http.Handler {
	authed := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if !authtoken.Authorize(r, authToken) {
				s.unauthorized.Add(1)
				s.reg.Counter("ccmd.unauthorized").Inc()
				w.Header().Set("WWW-Authenticate", `Bearer realm="ccmd"`)
				writeError(w, &APIError{Status: http.StatusUnauthorized, Code: CodeUnauthorized,
					Message: "missing or invalid bearer token"})
				return
			}
			h(w, r)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /compile", authed(func(w http.ResponseWriter, r *http.Request) {
		var req CompileRequest
		if apiErr := decodeJSON(w, r, s.cfg.MaxProgramBytes+64*1024, &req); apiErr != nil {
			writeError(w, apiErr)
			return
		}
		resp, apiErr := s.Compile(r.Context(), &req)
		if apiErr != nil {
			writeError(w, apiErr)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}))
	mux.HandleFunc("POST /run", authed(func(w http.ResponseWriter, r *http.Request) {
		var req RunRequest
		if apiErr := decodeJSON(w, r, s.cfg.MaxProgramBytes+64*1024, &req); apiErr != nil {
			writeError(w, apiErr)
			return
		}
		resp, apiErr := s.Run(r.Context(), &req)
		if apiErr != nil {
			writeError(w, apiErr)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}))
	mux.HandleFunc("GET /report", authed(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Report())
	}))
	mux.HandleFunc("GET /metrics", authed(func(w http.ResponseWriter, r *http.Request) {
		resp := MetricsResponse{Service: s.Stats(), Driver: s.Report()}
		if snap := s.Metrics(); snap != nil {
			if raw, err := json.Marshal(snap); err == nil {
				resp.Registry = raw
			}
		}
		writeJSON(w, http.StatusOK, resp)
	}))
	mux.HandleFunc("GET /trace", authed(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_ = obs.WriteChromeTraceSpans(w, s.TraceSpans())
	}))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness plus storage health: the daemon serves compiles even
		// with a broken persistent tier (the driver falls back to the
		// memory tier), but operators should see "degraded" and the why.
		if err := s.Driver().DiskCacheErr(); err != nil {
			writeJSON(w, http.StatusOK, HealthResponse{Status: "degraded",
				Detail: "disk cache unavailable: " + err.Error()})
			return
		}
		if state := s.Driver().RemoteCircuit(); state == "open" {
			writeJSON(w, http.StatusOK, HealthResponse{Status: "degraded",
				Detail:      remoteDegradedDetail(s.Driver()),
				RemoteNodes: s.Driver().RemoteNodes()})
			return
		}
		writeJSON(w, http.StatusOK, HealthResponse{Status: "ok",
			RemoteNodes: s.Driver().RemoteNodes()})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		// Readiness gates traffic: draining or a broken persistent tier
		// means "send new work elsewhere" (503), though in-flight and
		// retried requests still complete.
		if s.Draining() {
			w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfterSeconds()))
			writeJSON(w, http.StatusServiceUnavailable, HealthResponse{Status: "draining"})
			return
		}
		if err := s.Driver().DiskCacheErr(); err != nil {
			w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfterSeconds()))
			writeJSON(w, http.StatusServiceUnavailable, HealthResponse{Status: "degraded",
				Detail: "disk cache unavailable: " + err.Error()})
			return
		}
		// An open remote-cache circuit is degraded, NOT dead: compiles
		// keep flowing (the tier is skipped and every lookup falls through
		// to a local compile), so readiness stays 200 and the state rides
		// along for operators. Failing readiness here would take capacity
		// offline exactly when the fleet's shared cache already is. For a
		// replicated fleet the driver folds per-node breakers with
		// any-node-healthy semantics, so "open" here already means every
		// node is down; the per-node list rides along either way.
		if state := s.Driver().RemoteCircuit(); state == "open" {
			writeJSON(w, http.StatusOK, HealthResponse{Status: "degraded",
				Detail:      remoteDegradedDetail(s.Driver()),
				RemoteNodes: s.Driver().RemoteNodes()})
			return
		}
		writeJSON(w, http.StatusOK, HealthResponse{Status: "ok",
			RemoteNodes: s.Driver().RemoteNodes()})
	})
	mux.HandleFunc("GET /version", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, VersionResponse{Version: version})
	})
	return mux
}

// remoteDegradedDetail phrases an open remote circuit for the health
// probes: a fleet that folded to open has every node down, which is
// worth saying explicitly.
func remoteDegradedDetail(d *pipeline.Driver) string {
	if len(d.RemoteNodes()) > 0 {
		return "remote cache fleet: every node's circuit open; tier skipped until a breaker recovers"
	}
	return "remote cache circuit open: tier skipped until the breaker recovers"
}

// decodeJSON reads one JSON body with a hard size bound and strict
// field checking, mapping every decode failure onto a 400 APIError.
func decodeJSON(w http.ResponseWriter, r *http.Request, maxBytes int64, dst any) *APIError {
	if ct := r.Header.Get("Content-Type"); ct != "" {
		if mt, _, _ := strings.Cut(ct, ";"); strings.TrimSpace(mt) != "application/json" {
			return &APIError{Status: http.StatusUnsupportedMediaType, Code: CodeBadRequest,
				Message: fmt.Sprintf("unsupported Content-Type %q (want application/json)", ct)}
		}
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return &APIError{Status: http.StatusRequestEntityTooLarge, Code: CodeBadRequest,
				Message: fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit)}
		}
		return &APIError{Status: http.StatusBadRequest, Code: CodeBadRequest,
			Message: "malformed request body: " + err.Error()}
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return &APIError{Status: http.StatusBadRequest, Code: CodeBadRequest,
			Message: "request body must be a single JSON object"}
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, e *APIError) {
	if e.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfter))
	}
	writeJSON(w, e.Status, struct {
		Error *APIError `json:"error"`
	}{e})
}
