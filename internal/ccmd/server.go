package ccmd

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Server owns the daemon's HTTP lifecycle around one Service: bind,
// serve, and the two-phase graceful shutdown the systemd/SIGTERM
// contract wants — stop accepting (readiness flips, new work gets 503),
// drain in-flight requests against a deadline, then close hard if the
// deadline passes.
type Server struct {
	svc          *Service
	http         *http.Server
	ln           net.Listener
	drainTimeout time.Duration
	logf         func(format string, args ...any)
}

// ServerConfig parameterizes NewServer.
type ServerConfig struct {
	Addr         string        // listen address, e.g. ":8347" or "127.0.0.1:0"
	Version      string        // served on GET /version
	DrainTimeout time.Duration // graceful-shutdown deadline; 0 means 30s
	// AuthToken, when non-empty, gates the data endpoints behind a
	// bearer token (see Handler).
	AuthToken string
	// Logf receives the server's operational log lines ("listening on
	// ..." and shutdown progress). Nil discards them.
	Logf func(format string, args ...any)
}

// NewServer binds the listen address immediately (so the caller learns
// the real port of ":0" before any traffic) and returns a server ready
// for Serve.
func NewServer(svc *Service, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("ccmd: listen %s: %w", cfg.Addr, err)
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Server{
		svc: svc,
		http: &http.Server{
			Handler:           Handler(svc, cfg.Version, cfg.AuthToken),
			ReadHeaderTimeout: 10 * time.Second,
		},
		ln:           ln,
		drainTimeout: cfg.DrainTimeout,
		logf:         logf,
	}, nil
}

// Addr is the bound listen address (with the real port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Serve blocks serving requests until Shutdown (returns nil) or a
// listener failure (returns the error).
func (s *Server) Serve() error {
	s.logf("ccmd: listening on %s", s.Addr())
	err := s.http.Serve(s.ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown runs the drain protocol: flip the service to draining (new
// requests get 503 + Retry-After; /readyz reports draining), wait up to
// the drain timeout for in-flight requests and open connections to
// finish, then force-close whatever remains. Returns nil on a clean
// drain and the deadline error when work was cut off.
func (s *Server) Shutdown(ctx context.Context) error {
	s.svc.BeginDrain()
	s.logf("ccmd: draining (timeout %s)", s.drainTimeout)
	dctx, cancel := context.WithTimeout(ctx, s.drainTimeout)
	defer cancel()
	err := s.http.Shutdown(dctx)
	if err != nil {
		s.logf("ccmd: drain deadline exceeded; closing %d in-flight", s.svc.Stats().Inflight)
		_ = s.http.Close()
		return err
	}
	// The HTTP layer is quiet; make sure the service agrees (admitted
	// work outlives its handler only if a handler leaked a goroutine,
	// which Drain would catch here).
	if err := s.svc.Drain(dctx); err != nil {
		return err
	}
	s.logf("ccmd: drained cleanly")
	return nil
}
