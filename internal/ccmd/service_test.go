package ccmd

import (
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"ccmem/internal/ir"
	"ccmem/internal/obs"
	"ccmem/internal/pipeline"
	"ccmem/internal/sim"
	"ccmem/internal/workload"
)

// newTestService builds a service over a fresh driver. Mutate cfg via
// mut before construction (Driver is filled in here).
func newTestService(t *testing.T, mut func(*Config)) *Service {
	t.Helper()
	cfg := Config{
		Driver: pipeline.New(pipeline.Options{Workers: 2, Metrics: obs.NewRegistry()}),
	}
	if mut != nil {
		mut(&cfg)
	}
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	return svc
}

func testProgram(t *testing.T, seed int64) string {
	t.Helper()
	return workload.RandomProgram(seed).String()
}

// soloCompile is the reference: what a lone ccmc run of the same
// program and config prints.
func soloCompile(t *testing.T, text string, cfg pipeline.Config) string {
	t.Helper()
	p := mustParse(t, text)
	drv := pipeline.New(pipeline.Options{Workers: 1, DisableCache: true})
	if _, err := drv.Compile(p, cfg); err != nil {
		t.Fatalf("solo compile: %v", err)
	}
	return p.String()
}

func mustParse(t *testing.T, text string) *ir.Program {
	t.Helper()
	p, err := ir.Parse(text)
	if err != nil {
		t.Fatalf("ir.Parse: %v", err)
	}
	return p
}

func TestCompileMatchesSolo(t *testing.T) {
	svc := newTestService(t, nil)
	text := testProgram(t, 1)
	req := &CompileRequest{
		Program: text,
		Config:  RequestConfig{Strategy: "postpass", CCMBytes: 512},
	}
	resp, apiErr := svc.Compile(context.Background(), req)
	if apiErr != nil {
		t.Fatalf("Compile: %v", apiErr)
	}
	want := soloCompile(t, text, pipeline.Config{
		Strategy: pipeline.PostPass, CCMBytes: 512,
	})
	if resp.Output != want {
		t.Fatalf("service output differs from solo ccmc compile")
	}
	if resp.Report == nil || resp.Report.Funcs == 0 {
		t.Fatalf("response carries no report: %+v", resp.Report)
	}
	if resp.Shed != "" {
		t.Fatalf("unloaded service shed work: %q", resp.Shed)
	}
}

func TestCompileValidation(t *testing.T) {
	svc := newTestService(t, nil)
	cases := []struct {
		name   string
		req    CompileRequest
		status int
		code   string
		field  string
	}{
		{"empty program", CompileRequest{}, 400, CodeBadRequest, "program"},
		{"parse error", CompileRequest{Program: "not iloc at all"}, 422, CodeBadProgram, "program"},
		{"bad strategy", CompileRequest{Program: testProgram(t, 2),
			Config: RequestConfig{Strategy: "turbo"}}, 400, CodeBadRequest, "config.strategy"},
		{"bad diff", CompileRequest{Program: testProgram(t, 2),
			Config: RequestConfig{DiffCheck: "sometimes"}}, 400, CodeBadRequest, "config.diff_check"},
		{"ccm without bytes", CompileRequest{Program: testProgram(t, 2),
			Config: RequestConfig{Strategy: "postpass"}}, 400, CodeBadRequest, "config.ccm_bytes"},
		{"negative workers", CompileRequest{Program: testProgram(t, 2),
			Config: RequestConfig{Workers: -1}}, 400, CodeBadRequest, "config.workers"},
		{"negative timeout", CompileRequest{Program: testProgram(t, 2),
			Config: RequestConfig{TimeoutMS: -5}}, 400, CodeBadRequest, "config.timeout_ms"},
		{"bad tenant", CompileRequest{Program: testProgram(t, 2),
			Tenant: "../escape"}, 400, CodeBadRequest, "tenant"},
		{"tenant with slash", CompileRequest{Program: testProgram(t, 2),
			Tenant: "a/b"}, 400, CodeBadRequest, "tenant"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, apiErr := svc.Compile(context.Background(), &tc.req)
			if apiErr == nil {
				t.Fatalf("want error, got success")
			}
			if apiErr.Status != tc.status || apiErr.Code != tc.code || apiErr.Field != tc.field {
				t.Fatalf("got status=%d code=%q field=%q, want %d %q %q",
					apiErr.Status, apiErr.Code, apiErr.Field, tc.status, tc.code, tc.field)
			}
		})
	}
}

func TestProgramSizeBound(t *testing.T) {
	svc := newTestService(t, func(c *Config) { c.MaxProgramBytes = 64 })
	req := &CompileRequest{Program: testProgram(t, 1)}
	_, apiErr := svc.Compile(context.Background(), req)
	if apiErr == nil || apiErr.Status != 400 || apiErr.Field != "program" {
		t.Fatalf("oversized program not rejected: %v", apiErr)
	}
}

// TestPipelineConfigTenant pins the per-tenant repro namespace: bundles
// land under <base>/<tenant> exactly when the request opts in and the
// service has a repro directory.
func TestPipelineConfigTenant(t *testing.T) {
	base := t.TempDir()
	svc := newTestService(t, func(c *Config) { c.ReproDir = base })
	req := &CompileRequest{Tenant: "team-a", Options: RequestOptions{Repro: true}}
	cfg, apiErr := svc.pipelineConfig(req, shedNone)
	if apiErr != nil {
		t.Fatalf("pipelineConfig: %v", apiErr)
	}
	if want := filepath.Join(base, "team-a"); cfg.ReproDir != want {
		t.Fatalf("ReproDir = %q, want %q", cfg.ReproDir, want)
	}

	// No tenant named: the "default" namespace, never the bare base dir.
	cfg, _ = svc.pipelineConfig(&CompileRequest{Options: RequestOptions{Repro: true}}, shedNone)
	if want := filepath.Join(base, "default"); cfg.ReproDir != want {
		t.Fatalf("default ReproDir = %q, want %q", cfg.ReproDir, want)
	}

	// Not opted in: no bundles at all.
	cfg, _ = svc.pipelineConfig(&CompileRequest{Tenant: "team-a"}, shedNone)
	if cfg.ReproDir != "" {
		t.Fatalf("ReproDir = %q without Options.Repro", cfg.ReproDir)
	}

	// Service without a repro dir: opting in is a no-op.
	svc2 := newTestService(t, nil)
	cfg, _ = svc2.pipelineConfig(&CompileRequest{Options: RequestOptions{Repro: true}}, shedNone)
	if cfg.ReproDir != "" {
		t.Fatalf("ReproDir = %q with repro disabled service-wide", cfg.ReproDir)
	}
}

// TestShedMapping pins what each shed rung strips — and that none of it
// can change output bytes (only checking and observability go).
func TestShedMapping(t *testing.T) {
	svc := newTestService(t, nil)
	req := &CompileRequest{Config: RequestConfig{
		VerifyPasses: true, DiffCheck: "per-stage", DiffVectors: 3,
	}}
	full, apiErr := svc.pipelineConfig(req, shedNone)
	if apiErr != nil {
		t.Fatalf("pipelineConfig: %v", apiErr)
	}
	if !full.VerifyPasses || full.DiffCheck != pipeline.DiffPerStage {
		t.Fatalf("shedNone altered the config: %+v", full)
	}

	v, _ := svc.pipelineConfig(req, shedVerify)
	if v.VerifyPasses {
		t.Fatalf("shedVerify kept VerifyPasses")
	}
	if v.DiffCheck != pipeline.DiffFinal {
		t.Fatalf("shedVerify: DiffCheck = %v, want final", v.DiffCheck)
	}

	d, _ := svc.pipelineConfig(req, shedDiff)
	if d.VerifyPasses || d.DiffCheck != pipeline.DiffOff {
		t.Fatalf("shedDiff kept checking: %+v", d)
	}

	// Everything that shapes output bytes is untouched on every rung.
	for _, cfg := range []pipeline.Config{full, v, d} {
		cfg.VerifyPasses, cfg.DiffCheck, cfg.DiffVectors = false, pipeline.DiffOff, 0
		want := full
		want.VerifyPasses, want.DiffCheck, want.DiffVectors = false, pipeline.DiffOff, 0
		if !reflect.DeepEqual(cfg, want) {
			t.Fatalf("shedding changed a code-shaping knob: %+v vs %+v", cfg, want)
		}
	}
}

func TestTimeoutClamp(t *testing.T) {
	svc := newTestService(t, func(c *Config) { c.MaxFuncTimeout = time.Second })
	cfg, apiErr := svc.pipelineConfig(&CompileRequest{
		Config: RequestConfig{TimeoutMS: 60_000},
	}, shedNone)
	if apiErr != nil {
		t.Fatalf("pipelineConfig: %v", apiErr)
	}
	if cfg.FuncTimeout != time.Second {
		t.Fatalf("FuncTimeout = %v, want clamp to 1s", cfg.FuncTimeout)
	}
}

// TestSaturation drives the bounded queue to the 429: with one slot and
// a queue of one, a third concurrent request must bounce with
// CodeSaturated and a Retry-After hint.
func TestSaturation(t *testing.T) {
	svc := newTestService(t, func(c *Config) {
		c.MaxInflight = 1
		c.MaxQueue = 1
		c.RetryAfter = 7 * time.Second
	})
	hold := make(chan struct{})
	entered := make(chan struct{}, 8)
	svc.testCompileHook = func() {
		entered <- struct{}{}
		<-hold
	}
	text := testProgram(t, 3)
	results := make(chan *APIError, 2)
	go func() {
		_, apiErr := svc.Compile(context.Background(), &CompileRequest{Program: text})
		results <- apiErr
	}()
	<-entered // request 1 is inflight, holding the only slot

	go func() {
		_, apiErr := svc.Compile(context.Background(), &CompileRequest{Program: text})
		results <- apiErr
	}()
	// Request 2 must reach the queue before request 3 tries admission.
	waitFor(t, func() bool { return svc.Stats().Queued == 1 })

	_, apiErr := svc.Compile(context.Background(), &CompileRequest{Program: text})
	if apiErr == nil {
		t.Fatalf("third request admitted past a full queue")
	}
	if apiErr.Status != http.StatusTooManyRequests || apiErr.Code != CodeSaturated {
		t.Fatalf("got %d %q, want 429 %q", apiErr.Status, apiErr.Code, CodeSaturated)
	}
	if apiErr.RetryAfter != 7 {
		t.Fatalf("RetryAfter = %d, want 7", apiErr.RetryAfter)
	}
	if n := svc.Stats().RejectedSaturated; n != 1 {
		t.Fatalf("RejectedSaturated = %d, want 1", n)
	}

	close(hold) // let 1 finish and 2 run
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("held request failed: %v", err)
		}
	}
}

// TestQueuedClientGivesUp: a queued request whose context dies leaves
// the queue without consuming a slot.
func TestQueuedClientGivesUp(t *testing.T) {
	svc := newTestService(t, func(c *Config) { c.MaxInflight = 1; c.MaxQueue = 4 })
	hold := make(chan struct{})
	entered := make(chan struct{}, 1)
	svc.testCompileHook = func() {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-hold
	}
	defer close(hold)
	text := testProgram(t, 3)
	go svc.Compile(context.Background(), &CompileRequest{Program: text})
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *APIError, 1)
	go func() {
		_, apiErr := svc.Compile(ctx, &CompileRequest{Program: text})
		done <- apiErr
	}()
	waitFor(t, func() bool { return svc.Stats().Queued == 1 })
	cancel()
	apiErr := <-done
	if apiErr == nil || apiErr.Code != CodeCanceled {
		t.Fatalf("got %v, want %q", apiErr, CodeCanceled)
	}
	waitFor(t, func() bool { return svc.Stats().Queued == 0 })
}

func TestDrain(t *testing.T) {
	svc := newTestService(t, func(c *Config) { c.MaxInflight = 2 })
	hold := make(chan struct{})
	entered := make(chan struct{}, 1)
	svc.testCompileHook = func() {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-hold
	}
	text := testProgram(t, 4)
	done := make(chan *APIError, 1)
	go func() {
		_, apiErr := svc.Compile(context.Background(), &CompileRequest{Program: text})
		done <- apiErr
	}()
	<-entered

	svc.BeginDrain()
	if !svc.Draining() {
		t.Fatalf("Draining() false after BeginDrain")
	}
	// New work is refused with the draining error...
	_, apiErr := svc.Compile(context.Background(), &CompileRequest{Program: text})
	if apiErr == nil || apiErr.Status != http.StatusServiceUnavailable || apiErr.Code != CodeDraining {
		t.Fatalf("got %v, want 503 %q", apiErr, CodeDraining)
	}
	// ...and Drain waits for the in-flight request, not forever.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	if err := svc.Drain(ctx); err == nil {
		t.Fatalf("Drain returned before the in-flight request finished")
	}
	cancel()
	close(hold)
	if err := <-done; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := svc.Drain(ctx2); err != nil {
		t.Fatalf("Drain after completion: %v", err)
	}
	if n := svc.Stats().RejectedDraining; n != 1 {
		t.Fatalf("RejectedDraining = %d, want 1", n)
	}
}

func TestRunEndpoint(t *testing.T) {
	svc := newTestService(t, nil)
	text := testProgram(t, 5)
	resp, apiErr := svc.Run(context.Background(), &RunRequest{Program: text, CCMBytes: 512})
	if apiErr != nil {
		t.Fatalf("Run: %v", apiErr)
	}
	st, err := sim.Run(mustParse(t, text), "main", sim.Config{CCMBytes: 512})
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	if resp.Cycles != st.Cycles || resp.Instrs != st.Instrs {
		t.Fatalf("service run (%d cycles, %d instrs) != direct sim (%d, %d)",
			resp.Cycles, resp.Instrs, st.Cycles, st.Instrs)
	}
	if len(resp.Output) != len(st.Output) {
		t.Fatalf("output length %d != %d", len(resp.Output), len(st.Output))
	}
	for i := range resp.Output {
		if resp.Output[i] != st.Output[i].String() {
			t.Fatalf("output[%d] = %q, want %q", i, resp.Output[i], st.Output[i])
		}
	}

	if _, apiErr := svc.Run(context.Background(), &RunRequest{Program: text, Entry: "nope"}); apiErr == nil || apiErr.Field != "entry" {
		t.Fatalf("missing entry not rejected: %v", apiErr)
	}
}

// TestRunStepCeiling: a runaway program is cut off by the service's
// step ceiling as a typed run fault, not a hung worker.
func TestRunStepCeiling(t *testing.T) {
	svc := newTestService(t, func(c *Config) { c.MaxRunSteps = 100 })
	text := testProgram(t, 5)
	_, apiErr := svc.Run(context.Background(), &RunRequest{Program: text, MaxSteps: 1 << 40})
	if apiErr == nil || apiErr.Code != CodeRunFault {
		t.Fatalf("got %v, want %q after 100 steps", apiErr, CodeRunFault)
	}
}

func TestTraceRing(t *testing.T) {
	svc := newTestService(t, nil)
	text := testProgram(t, 6)
	for i := 0; i < 2; i++ {
		resp, apiErr := svc.Compile(context.Background(), &CompileRequest{
			Program: text,
			Config:  RequestConfig{Strategy: "postpass", CCMBytes: 256},
			Options: RequestOptions{Trace: true},
		})
		if apiErr != nil {
			t.Fatalf("Compile: %v", apiErr)
		}
		if len(resp.Trace) == 0 {
			t.Fatalf("traced request %d returned no trace", i)
		}
		var trace struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(resp.Trace, &trace); err != nil {
			t.Fatalf("trace is not valid JSON: %v", err)
		}
		if len(trace.TraceEvents) == 0 {
			t.Fatalf("trace has no events")
		}
	}
	spans := svc.TraceSpans()
	if len(spans) == 0 {
		t.Fatalf("trace ring is empty after two traced requests")
	}
	pids := map[int]bool{}
	for _, sp := range spans {
		pids[sp.PID] = true
	}
	if len(pids) != 2 {
		t.Fatalf("want 2 distinct PIDs in the ring, got %d", len(pids))
	}
	if n := svc.Stats().TraceRequests; n != 2 {
		t.Fatalf("TraceRequests = %d, want 2", n)
	}
}

// TestTraceRingBound: retention evicts oldest whole batches.
func TestTraceRingBound(t *testing.T) {
	svc := newTestService(t, func(c *Config) { c.MaxTraceSpans = 3 })
	mk := func(n int) []obs.Span {
		s := make([]obs.Span, n)
		for i := range s {
			s[i].Name = "x"
		}
		return s
	}
	svc.retainTrace(mk(2))
	svc.retainTrace(mk(2)) // 4 > 3: evicts the first batch
	spans := svc.TraceSpans()
	if len(spans) != 2 {
		t.Fatalf("ring holds %d spans, want 2", len(spans))
	}
	if spans[0].PID != 2 {
		t.Fatalf("oldest batch not evicted: PID %d survives", spans[0].PID)
	}
}

// TestWorkersHintByteIdentity: a request-level workers hint may change
// scheduling, never bytes, and clamps to the shared pool's size.
func TestWorkersHintByteIdentity(t *testing.T) {
	svc := newTestService(t, nil)
	text := testProgram(t, 7)
	var outs []string
	for _, w := range []int{0, 1, 2, 64} {
		resp, apiErr := svc.Compile(context.Background(), &CompileRequest{
			Program: text,
			Config:  RequestConfig{Strategy: "integrated", CCMBytes: 512, Workers: w},
		})
		if apiErr != nil {
			t.Fatalf("workers=%d: %v", w, apiErr)
		}
		outs = append(outs, resp.Output)
	}
	for i := 1; i < len(outs); i++ {
		if outs[i] != outs[0] {
			t.Fatalf("workers hint changed output bytes")
		}
	}
	// The over-ask never built a bigger pool.
	if d := svc.driverFor(64); d != svc.Driver() {
		t.Fatalf("workers hint above the pool was not clamped to the shared driver")
	}
	if d := svc.driverFor(1); d == svc.Driver() {
		t.Fatalf("workers=1 hint did not build a private driver")
	}
}

func TestMetricsAndReport(t *testing.T) {
	svc := newTestService(t, nil)
	text := testProgram(t, 8)
	if _, apiErr := svc.Compile(context.Background(), &CompileRequest{Program: text}); apiErr != nil {
		t.Fatalf("Compile: %v", apiErr)
	}
	st := svc.Stats()
	if st.Requests != 1 || st.Inflight != 0 || st.Queued != 0 {
		t.Fatalf("stats after one request: %+v", st)
	}
	rep := svc.Report()
	if rep == nil || rep.Funcs == 0 {
		t.Fatalf("driver report empty after a compile")
	}
	snap := svc.Metrics()
	if snap == nil || snap.Counters["ccmd.requests"] != 1 {
		t.Fatalf("registry snapshot missing ccmd.requests: %+v", snap)
	}
}

func TestShedDiffDropsTracing(t *testing.T) {
	svc := newTestService(t, nil)
	// Force the top rung via the internal seam: a traced request under
	// shedDiff must not allocate a tracer (Compile consults the level
	// before building one), which we observe through the counter.
	if got := svc.shedLevel(); got != shedNone {
		t.Fatalf("idle service sheds: %d", got)
	}
	svc.queued.Store(int64(svc.cfg.MaxQueue)) // simulate a deep queue
	if got := svc.shedLevel(); got != shedDiff {
		t.Fatalf("full queue sheds %d, want shedDiff", got)
	}
	svc.queued.Store(int64(float64(svc.cfg.MaxQueue) * 0.5))
	if got := svc.shedLevel(); got != shedVerify {
		t.Fatalf("half-full queue sheds %d, want shedVerify", got)
	}
	svc.queued.Store(0)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
