package liveness

import (
	"testing"

	"ccmem/internal/cfg"
	"ccmem/internal/ir"
	"ccmem/internal/workload"
)

func parse(t *testing.T, src string) (*ir.Func, *cfg.Graph) {
	t.Helper()
	p, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	f := p.Funcs[0]
	g, err := cfg.New(f)
	if err != nil {
		t.Fatal(err)
	}
	return f, g
}

func TestStraightLine(t *testing.T) {
	f, g := parse(t, `
func f() {
entry:
	r0 = loadi 1
	r1 = loadi 2
	r2 = add r0, r1
	emit r2
	ret
}
`)
	res := Registers(f, g)
	if !res.In[0].Empty() {
		t.Fatalf("live-in of entry = %v", res.In[0])
	}
	if !res.Out[0].Empty() {
		t.Fatalf("live-out of exit block = %v", res.Out[0])
	}
}

func TestLoopCarried(t *testing.T) {
	f, g := parse(t, `
func f() {
entry:
	r0 = loadi 0
	r1 = loadi 10
	r2 = loadi 1
	jmp head
head:
	r3 = cmplt r0, r1
	cbr r3, body, exit
body:
	r0 = add r0, r2
	jmp head
exit:
	emit r0
	ret
}
`)
	res := Registers(f, g)
	head := f.BlockNamed("head").Index
	body := f.BlockNamed("body").Index
	exit := f.BlockNamed("exit").Index
	// r0, r1, r2 all live into head (r1/r2 loop-invariant, r0 carried).
	for _, r := range []int{0, 1, 2} {
		if !res.In[head].Has(r) {
			t.Errorf("r%d not live into head", r)
		}
	}
	// r3 is not live into head (defined there).
	if res.In[head].Has(3) {
		t.Error("r3 live into head")
	}
	if !res.In[body].Has(0) || !res.In[body].Has(2) {
		t.Error("body inputs wrong")
	}
	if res.In[body].Has(3) {
		t.Error("r3 live into body but dead after cbr")
	}
	if !res.In[exit].Has(0) || res.In[exit].Has(1) {
		t.Errorf("exit live-in wrong: %v", res.In[exit])
	}
}

func TestDefKillsLiveness(t *testing.T) {
	f, g := parse(t, `
func f() {
entry:
	r0 = loadi 1
	jmp mid
mid:
	r0 = loadi 2
	emit r0
	ret
}
`)
	res := Registers(f, g)
	mid := f.BlockNamed("mid").Index
	if res.In[mid].Has(0) {
		t.Error("r0 live into mid despite redefinition before use")
	}
}

func TestUseAndDefSameInstr(t *testing.T) {
	// r0 = add r0, r1: r0 is upward-exposed.
	f, g := parse(t, `
func f() {
entry:
	r1 = loadi 1
	jmp mid
mid:
	r0 = add r0, r1
	emit r0
	ret
}
`)
	res := Registers(f, g)
	mid := f.BlockNamed("mid").Index
	if !res.In[mid].Has(0) {
		t.Error("self-referential def not upward exposed")
	}
}

func TestPhiEdgeLiveness(t *testing.T) {
	// Phi args must be live at the end of the corresponding predecessor
	// only, not both.
	p, err := ir.Parse(`
func f() {
entry:
	r0 = loadi 1
	cbr r0, a, b
a:
	r1 = loadi 10
	jmp merge
b:
	r2 = loadi 20
	jmp merge
merge:
	r3 = phi r1, r2
	emit r3
	ret
}
`)
	if err != nil {
		t.Fatal(err)
	}
	f := p.Funcs[0]
	g, err := cfg.New(f)
	if err != nil {
		t.Fatal(err)
	}
	res := Registers(f, g)
	a := f.BlockNamed("a").Index
	b := f.BlockNamed("b").Index
	merge := f.BlockNamed("merge").Index
	// Arg order follows g.Preds[merge]; find which pred is which.
	predOfMergeFirst := g.Preds[merge][0]
	r1LiveOut := res.Out[a].Has(1)
	r2LiveOut := res.Out[b].Has(2)
	if !r1LiveOut || !r2LiveOut {
		t.Fatalf("phi args not live out of their preds (a:r1=%v b:r2=%v, first pred %d)",
			r1LiveOut, r2LiveOut, predOfMergeFirst)
	}
	if res.Out[a].Has(2) || res.Out[b].Has(1) {
		t.Fatal("phi arg live out of the wrong predecessor")
	}
	if res.In[merge].Has(1) || res.In[merge].Has(2) {
		t.Fatal("phi args leaked into merge live-in")
	}
}

// bruteLive computes liveness by bounded path enumeration on the suite's
// random programs: r is live-in at block b iff some acyclic-ish path from
// b reaches an upward-exposed use of r.
func bruteLiveIn(f *ir.Func, g *cfg.Graph, block int, reg int) bool {
	type state struct {
		b     int
		visit map[int]bool
	}
	var dfs func(b int, visited map[int]bool) bool
	dfs = func(b int, visited map[int]bool) bool {
		for ii := range f.Blocks[b].Instrs {
			in := &f.Blocks[b].Instrs[ii]
			for _, u := range in.Args {
				if int(u) == reg {
					return true
				}
			}
			if in.Dst != ir.NoReg && int(in.Dst) == reg {
				return false // killed
			}
		}
		if visited[b] {
			return false
		}
		visited[b] = true
		for _, s := range g.Succs[b] {
			if dfs(s, visited) {
				return true
			}
		}
		visited[b] = false
		return false
	}
	_ = state{}
	return dfs(block, map[int]bool{})
}

func TestLivenessAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		p := workload.RandomProgram(seed)
		for _, f := range p.Funcs {
			// Skip phi-free requirement: random programs have no phis.
			g, err := cfg.New(f)
			if err != nil {
				t.Fatal(err)
			}
			res := Registers(f, g)
			if len(f.Blocks) > 12 || len(f.Regs) > 80 {
				continue // keep the brute force tractable
			}
			for b := range f.Blocks {
				if !g.Reachable(b) {
					continue
				}
				for r := 0; r < len(f.Regs); r++ {
					want := bruteLiveIn(f, g, b, r)
					if got := res.In[b].Has(r); got != want {
						t.Fatalf("seed %d func %s block %s reg %s: live-in = %v, brute = %v",
							seed, f.Name, f.Blocks[b].Name, f.RegName(ir.Reg(r)), got, want)
					}
				}
			}
		}
	}
}
