package liveness

import (
	"testing"

	"ccmem/internal/bitset"
)

// TestAllocGuardArenaReuse pins the reset-not-realloc discipline: once
// the arena has grown to a solve's working-set size, repeated solves of
// the same shape allocate only the fixed per-call bookkeeping (Result,
// slice headers, worklist) — every bitset is carved from recycled arena
// memory. The ceiling is deliberately a small constant, independent of
// block and register counts; losing the arena path multiplies it by the
// number of sets per solve.
func TestAllocGuardArenaReuse(t *testing.T) {
	f, g := parse(t, `
func f() {
entry:
	r0 = loadi 0
	r1 = loadi 64
	r2 = loadi 1
	jmp head
head:
	r3 = cmplt r0, r1
	cbr r3, body, exit
body:
	r4 = add r0, r2
	r5 = mul r4, r2
	r0 = add r5, r2
	jmp head
exit:
	emit r0
	ret
}
`)
	var ar bitset.Arena
	RegistersIn(&ar, f, g) // warm: grows the arena once
	avg := testing.AllocsPerRun(50, func() {
		ar.Reset()
		if res := RegistersIn(&ar, f, g); len(res.In) != g.NumBlocks() {
			t.Fatal("solve shape changed")
		}
	})
	t.Logf("warm RegistersIn: %.1f allocs/op over %d blocks", avg, g.NumBlocks())
	const ceiling = 24
	if avg > ceiling {
		t.Errorf("warm arena solve allocates %.1f/op, over the %d ceiling — arena reuse regressed", avg, ceiling)
	}
}

// TestAllocGuardArenaVsFresh is the comparative half of the guard: the
// warm-arena solve must allocate strictly less than the nil-arena path,
// which pays one heap allocation per bitset.
func TestAllocGuardArenaVsFresh(t *testing.T) {
	f, g := parse(t, `
func f() {
entry:
	r0 = loadi 1
	r1 = loadi 2
	jmp mid
mid:
	r2 = add r0, r1
	r3 = cmplt r2, r1
	cbr r3, mid, exit
exit:
	emit r2
	ret
}
`)
	var ar bitset.Arena
	RegistersIn(&ar, f, g)
	warm := testing.AllocsPerRun(50, func() {
		ar.Reset()
		RegistersIn(&ar, f, g)
	})
	fresh := testing.AllocsPerRun(50, func() {
		RegistersIn(nil, f, g)
	})
	t.Logf("warm arena: %.1f allocs/op, nil arena: %.1f allocs/op", warm, fresh)
	if warm >= fresh {
		t.Errorf("warm arena solve (%.1f allocs/op) is not cheaper than the fresh path (%.1f)", warm, fresh)
	}
}
