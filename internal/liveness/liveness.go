// Package liveness implements backward may-dataflow for live variables,
// over registers (used by the register allocator) and, via the generic
// Backward solver, over spill locations (used by the post-pass CCM
// allocator, where a location is "live" at p if some path from p reaches a
// restore of it with no intervening spill that kills it — the paper's §3.1
// definition).
package liveness

import (
	"ccmem/internal/bitset"
	"ccmem/internal/cfg"
	"ccmem/internal/ir"
)

// Result holds per-block live-in and live-out sets.
type Result struct {
	In  []bitset.Set
	Out []bitset.Set
}

// Backward solves In[b] = Use[b] ∪ (Out[b] \ Def[b]),
// Out[b] = ∪_{s ∈ succ(b)} (In[s] ∪ edgeUse(b,s)) with a worklist over the
// postorder. edgeUse may be nil; when present it supplies facts used on the
// edge b→s (phi arguments). All sets must share one capacity.
func Backward(g *cfg.Graph, use, def []bitset.Set, edgeUse func(from, to int) bitset.Set) *Result {
	return BackwardIn(nil, g, use, def, edgeUse)
}

// BackwardIn is Backward with every transient set carved from ar
// (reset-not-realloc; nil behaves like Backward). The returned Result's
// sets live in the arena and are invalidated by its next Reset.
func BackwardIn(ar *bitset.Arena, g *cfg.Graph, use, def []bitset.Set, edgeUse func(from, to int) bitset.Set) *Result {
	n := g.NumBlocks()
	if n == 0 {
		return &Result{}
	}
	capBits := use[0].Len()
	res := &Result{In: make([]bitset.Set, n), Out: make([]bitset.Set, n)}
	for i := 0; i < n; i++ {
		res.In[i] = ar.New(capBits)
		res.Out[i] = ar.New(capBits)
	}
	po := g.Postorder()
	inWorklist := make([]bool, n)
	worklist := make([]int, 0, n)
	for _, b := range po {
		worklist = append(worklist, b)
		inWorklist[b] = true
	}
	tmp := ar.New(capBits)
	for len(worklist) > 0 {
		b := worklist[0]
		worklist = worklist[1:]
		inWorklist[b] = false

		out := res.Out[b]
		out.Reset()
		for _, s := range g.Succs[b] {
			out.UnionWith(res.In[s])
			if edgeUse != nil {
				if e := edgeUse(b, s); e.Len() > 0 {
					out.UnionWith(e)
				}
			}
		}
		tmp.CopyFrom(out)
		tmp.DifferenceWith(def[b])
		tmp.UnionWith(use[b])
		if !tmp.Equal(res.In[b]) {
			res.In[b].CopyFrom(tmp)
			for _, p := range g.Preds[b] {
				if g.Reachable(p) && !inWorklist[p] {
					inWorklist[p] = true
					worklist = append(worklist, p)
				}
			}
		}
	}
	return res
}

// Registers computes live registers per block for f. Phi instructions are
// handled SSA-style: a phi's arguments are live at the end of the
// corresponding predecessor, and its result is defined at block entry.
func Registers(f *ir.Func, g *cfg.Graph) *Result {
	return RegistersIn(nil, f, g)
}

// RegistersIn is Registers with all per-solve sets carved from ar (nil
// behaves like Registers). The Result is invalidated by ar's next Reset.
func RegistersIn(ar *bitset.Arena, f *ir.Func, g *cfg.Graph) *Result {
	n := g.NumBlocks()
	nr := len(f.Regs)
	use := make([]bitset.Set, n)
	def := make([]bitset.Set, n)
	for i := 0; i < n; i++ {
		use[i] = ar.New(nr)
		def[i] = ar.New(nr)
	}
	// edgeUses[s] is indexed by the position of the predecessor in
	// g.Preds[s], matching phi-argument order.
	edgeUses := map[[2]int]bitset.Set{}
	for bi, b := range f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if in.Op == ir.OpPhi {
				for ai, a := range in.Args {
					if ai >= len(g.Preds[bi]) {
						break
					}
					p := g.Preds[bi][ai]
					key := [2]int{p, bi}
					s, ok := edgeUses[key]
					if !ok {
						s = ar.New(nr)
						edgeUses[key] = s
					}
					s.Set(int(a))
				}
				if in.Dst != ir.NoReg {
					def[bi].Set(int(in.Dst))
				}
				continue
			}
			for _, a := range in.Args {
				if !def[bi].Has(int(a)) {
					use[bi].Set(int(a))
				}
			}
			if in.Dst != ir.NoReg {
				def[bi].Set(int(in.Dst))
			}
		}
	}
	var edge func(from, to int) bitset.Set
	if len(edgeUses) > 0 {
		empty := ar.New(nr)
		edge = func(from, to int) bitset.Set {
			if s, ok := edgeUses[[2]int{from, to}]; ok {
				return s
			}
			return empty
		}
	}
	return BackwardIn(ar, g, use, def, edge)
}
