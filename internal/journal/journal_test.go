package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ccmem/internal/diskcache"
)

func mustOpen(t *testing.T, dir string, opts Options) (*Journal, [][]byte) {
	t.Helper()
	j, recs, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j, recs
}

func appendAll(t *testing.T, j *Journal, payloads ...string) {
	t.Helper()
	for _, p := range payloads {
		if err := j.Append([]byte(p)); err != nil {
			t.Fatalf("Append(%q): %v", p, err)
		}
	}
}

func asStrings(recs [][]byte) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = string(r)
	}
	return out
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, recs := mustOpen(t, dir, Options{})
	if len(recs) != 0 {
		t.Fatalf("fresh journal recovered %d records", len(recs))
	}
	appendAll(t, j, "one", "two", "three")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, recs = mustOpen(t, dir, Options{})
	want := []string{"one", "two", "three"}
	if got := asStrings(recs); !equal(got, want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
}

func TestRecoveryAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force a rotation per record or two.
	j, _ := mustOpen(t, dir, Options{SegmentBytes: 48})
	var want []string
	for i := 0; i < 8; i++ {
		p := fmt.Sprintf("record-%d", i)
		want = append(want, p)
		appendAll(t, j, p)
	}
	st := j.Stats()
	if st.Segments < 2 {
		t.Fatalf("expected multiple segments, got %d", st.Segments)
	}
	j.Close()

	_, recs := mustOpen(t, dir, Options{SegmentBytes: 48})
	if got := asStrings(recs); !equal(got, want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
}

func TestTornTailTruncatedNotReplayed(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	appendAll(t, j, "committed-a", "committed-b")
	j.Close()

	// Tear the tail: append half a frame by hand, as a crash mid-append
	// would leave it.
	seg := filepath.Join(dir, segName(0))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{99, 0, 0, 0, 1, 2}) // length says 99, frame cut after 6 bytes
	f.Close()

	j2, recs := mustOpen(t, dir, Options{})
	if got := asStrings(recs); !equal(got, []string{"committed-a", "committed-b"}) {
		t.Fatalf("torn-tail recovery = %v, want the two committed records", got)
	}
	if st := j2.Stats(); st.TornTails != 1 || st.Quarantines != 0 {
		t.Fatalf("stats = %+v, want 1 torn tail, 0 quarantines", st)
	}

	// The rewrite removed the torn bytes: a third recovery is clean.
	j2.Close()
	j3, recs := mustOpen(t, dir, Options{})
	if len(recs) != 2 {
		t.Fatalf("second recovery found %d records, want 2", len(recs))
	}
	if st := j3.Stats(); st.TornTails != 0 {
		t.Fatalf("truncated tail resurfaced: %+v", st)
	}
	j3.Close()
}

func TestBitFlipQuarantinesSegment(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{SegmentBytes: 64})
	// a, b, c fill segment 0; d rotates into segment 1.
	appendAll(t, j, "seg0-a", "seg0-b", "seg0-c", "later-d")
	j.Close()

	// Flip one payload bit in the first segment.
	seg := filepath.Join(dir, segName(0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+frameHeader] ^= 0x01
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, recs := mustOpen(t, dir, Options{SegmentBytes: 64})
	for _, r := range recs {
		if strings.HasPrefix(string(r), "seg0") {
			t.Fatalf("record %q replayed from a corrupt segment", r)
		}
	}
	// The undamaged later segment still replays.
	if got := asStrings(recs); !equal(got, []string{"later-d"}) {
		t.Fatalf("recovered %v, want only the record from the clean segment", got)
	}
	if st := j2.Stats(); st.Quarantines != 1 {
		t.Fatalf("stats = %+v, want 1 quarantine", st)
	}
	// The evidence survives as *.bad; the live name is gone.
	if _, err := os.Stat(seg); !os.IsNotExist(err) {
		t.Fatalf("corrupt segment still live: %v", err)
	}
	if _, err := os.Stat(seg + quarantineSuffix); err != nil {
		t.Fatalf("quarantined segment not preserved: %v", err)
	}
	j2.Close()
}

func TestBadHeaderQuarantined(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(0)), []byte("not a journal segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs := mustOpen(t, dir, Options{})
	if len(recs) != 0 {
		t.Fatalf("recovered %d records from garbage", len(recs))
	}
	if st := j.Stats(); st.Quarantines != 1 {
		t.Fatalf("stats = %+v, want 1 quarantine", st)
	}
	j.Close()
}

func TestByteBudgetDropsOldest(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{SegmentBytes: 64, MaxBytes: 160})
	var all []string
	for i := 0; i < 12; i++ {
		p := fmt.Sprintf("record-%02d", i)
		all = append(all, p)
		appendAll(t, j, p)
	}
	if st := j.Stats(); st.DroppedSegments == 0 {
		t.Fatalf("budget never dropped a segment: %+v", st)
	}
	j.Close()

	_, recs := mustOpen(t, dir, Options{SegmentBytes: 64, MaxBytes: 160})
	got := asStrings(recs)
	if len(got) == 0 || len(got) >= len(all) {
		t.Fatalf("recovered %d records; budget should keep a strict, nonempty suffix of %d", len(got), len(all))
	}
	// Whatever survives must be a contiguous suffix — dropping the middle
	// would reorder history.
	if !equal(got, all[len(all)-len(got):]) {
		t.Fatalf("recovered %v is not a suffix of %v", got, all)
	}
}

func TestAppendDegradesAfterConsecutiveFailures(t *testing.T) {
	dir := t.TempDir()
	ffs := diskcache.NewFaultFS(nil)
	j, _ := mustOpen(t, dir, Options{FS: ffs})
	appendAll(t, j, "before-fault")

	ffs.SetWriteBudget(0) // every write now fails with ENOSPC
	for i := 0; i < writeFailureLimit; i++ {
		if err := j.Append([]byte("doomed")); err == nil {
			t.Fatalf("append %d under ENOSPC succeeded", i)
		}
	}
	st := j.Stats()
	if !st.Degraded {
		t.Fatalf("journal not degraded after %d failures: %+v", writeFailureLimit, st)
	}
	// Degraded appends fail fast without touching the disk.
	if err := j.Append([]byte("still-doomed")); err == nil {
		t.Fatalf("degraded append succeeded")
	}
	if got := j.Stats().AppendErrors; got != writeFailureLimit+1 {
		t.Fatalf("append errors = %d, want %d", got, writeFailureLimit+1)
	}
	j.Close()

	// The pre-fault record is still recoverable.
	ffs.SetWriteBudget(-1)
	_, recs := mustOpen(t, dir, Options{FS: ffs})
	if got := asStrings(recs); !equal(got, []string{"before-fault"}) {
		t.Fatalf("recovered %v, want the pre-fault record", got)
	}
}

func TestTornWriteCrashRecoversCommittedPrefix(t *testing.T) {
	dir := t.TempDir()
	ffs := diskcache.NewFaultFS(nil)
	j, _ := mustOpen(t, dir, Options{FS: ffs})
	appendAll(t, j, "alpha", "beta")

	// The next frame dies partway through its write: a torn append.
	ffs.CrashAfterBytes(5)
	if err := j.Append([]byte("gamma-never-committed")); err == nil {
		t.Fatalf("append across the crash point succeeded")
	}
	j.Close()

	// Restart on the revived disk: exactly the committed prefix replays.
	ffs.Revive()
	j2, recs := mustOpen(t, dir, Options{FS: ffs})
	if got := asStrings(recs); !equal(got, []string{"alpha", "beta"}) {
		t.Fatalf("post-crash recovery = %v, want [alpha beta]", got)
	}
	if st := j2.Stats(); st.TornTails != 1 {
		t.Fatalf("stats = %+v, want exactly 1 torn tail", st)
	}
	// And the journal is writable again.
	appendAll(t, j2, "delta")
	j2.Close()
	_, recs = mustOpen(t, dir, Options{FS: ffs})
	if got := asStrings(recs); !equal(got, []string{"alpha", "beta", "delta"}) {
		t.Fatalf("post-recovery append lost: %v", got)
	}
}

func TestEIOOnRecoveryQuarantines(t *testing.T) {
	dir := t.TempDir()
	ffs := diskcache.NewFaultFS(nil)
	j, _ := mustOpen(t, dir, Options{FS: ffs})
	appendAll(t, j, "unreadable")
	j.Close()

	ffs.SetReadHook(func(path string, data []byte) ([]byte, error) {
		if strings.HasSuffix(path, segSuffix) {
			return nil, diskcache.ErrIO
		}
		return data, nil
	})
	j2, recs := mustOpen(t, dir, Options{FS: ffs})
	if len(recs) != 0 {
		t.Fatalf("recovered %d records through EIO", len(recs))
	}
	if st := j2.Stats(); st.Quarantines != 1 {
		t.Fatalf("stats = %+v, want 1 quarantine", st)
	}
	j2.Close()
}

func TestRecordsSurviveLargePayloads(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	big := bytes.Repeat([]byte("x"), 1<<16)
	if err := j.Append(big); err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, "after-big")
	j.Close()
	_, recs := mustOpen(t, dir, Options{})
	if len(recs) != 2 || !bytes.Equal(recs[0], big) || string(recs[1]) != "after-big" {
		t.Fatalf("large-payload round trip failed: %d records", len(recs))
	}
}

func TestTempFilesSweptAtOpen(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	straggler := filepath.Join(dir, segName(0)+".7"+tempSuffix)
	if err := os.WriteFile(straggler, []byte("dead rewrite"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, _ := mustOpen(t, dir, Options{})
	if _, err := os.Stat(straggler); !os.IsNotExist(err) {
		t.Fatalf("dead temp file survived Open")
	}
	j.Close()
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
