// Package journal is a durable, append-only, CRC-framed write-ahead
// log: the request-durability layer behind ccmd's -journal-dir. The
// service appends every accepted compile request before compiling it;
// after a crash, the next start replays the recovered records through
// the driver to re-warm the artifact cache. Losing journal bytes can
// cost warmth, never correctness — the same asymmetric contract as the
// disk and remote cache tiers.
//
// On-disk layout: numbered segment files (seg-<n>.wal), each opening
// with a magic+version header and continuing as a sequence of frames:
//
//	offset  size  field
//	0       4     payload length n (little-endian)
//	4       4     CRC-32 (IEEE) of the payload
//	8       n     payload
//
// Each Append writes its frame in one Write call and fsyncs before
// returning, so a record either exists completely or not at all — the
// "fully committed" line a crash can never blur.
//
// Recovery distinguishes the two ways a segment can be damaged:
//
//   - A torn tail — the file ends mid-frame, the signature of a crash
//     during the final append — keeps every complete frame before the
//     tear. The valid prefix is rewritten with the diskcache discipline
//     (temp file, fsync, atomic rename) so the torn bytes are gone, not
//     re-inspected on every future start.
//   - Anything else — bad magic, unknown version, a CRC mismatch on a
//     fully-present frame (bit rot, a foreign writer) — quarantines the
//     whole segment: renamed to *.bad for forensics, none of its
//     records replayed. A log that lies once is not a log.
//
// Capacity is a byte budget: oldest sealed segments are dropped (at
// Open and at rotation) once the journal exceeds it. Like the disk
// cache, the write path degrades to a no-op after consecutive append
// failures — a full disk must not turn every request into an error.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ccmem/internal/diskcache"
)

const (
	// DefaultSegmentBytes seals the active segment once it exceeds this.
	DefaultSegmentBytes = 1 << 20
	// DefaultMaxBytes bounds the whole journal when Options.MaxBytes is
	// zero; oldest segments are dropped beyond it.
	DefaultMaxBytes = 64 << 20

	// writeFailureLimit mirrors diskcache: after this many consecutive
	// append failures the journal stops writing (degraded), because a
	// persistently sick disk must cost warmth, not a failing write per
	// request.
	writeFailureLimit = 3

	headerSize  = 12 // 8-byte magic + 4-byte version
	frameHeader = 8  // 4-byte length + 4-byte CRC
	magic       = "ccmjrnl\x00"
	version     = 1

	segPrefix        = "seg-"
	segSuffix        = ".wal"
	tempSuffix       = ".tmp"
	quarantineSuffix = ".bad"
)

// Options configure Open.
type Options struct {
	// SegmentBytes is the rotation threshold; <= 0 uses DefaultSegmentBytes.
	SegmentBytes int64
	// MaxBytes is the whole-journal byte budget; <= 0 uses DefaultMaxBytes.
	MaxBytes int64
	// FS is the filesystem to run on; nil uses the real one. Tests inject
	// diskcache.FaultFS for the deterministic fault matrix.
	FS diskcache.FS
}

// Stats is a snapshot of the journal's counters.
type Stats struct {
	// Appends counts records durably committed; AppendErrors counts
	// appends that failed (and were lost).
	Appends      int64 `json:"appends"`
	AppendErrors int64 `json:"append_errors"`

	// Recovered is the number of records Open returned; Segments the
	// number of live segment files (active included).
	Recovered int64 `json:"recovered"`
	Segments  int   `json:"segments"`

	// TornTails counts segments whose final frames were cut by a crash
	// (valid prefix kept, tail truncated); Quarantines counts segments
	// withdrawn whole for failing verification; DroppedSegments counts
	// segments evicted by the byte budget.
	TornTails       int64 `json:"torn_tails"`
	Quarantines     int64 `json:"quarantines"`
	DroppedSegments int64 `json:"dropped_segments"`

	// Degraded is true once the write path has shut off.
	Degraded bool `json:"degraded,omitempty"`
}

// segment is one live on-disk segment file.
type segment struct {
	n    uint64
	size int64
}

// Journal is one handle on a journal directory. Append is safe for
// concurrent use.
type Journal struct {
	dir string
	fs  diskcache.FS

	segBytes int64
	maxBytes int64

	mu     sync.Mutex
	segs   []segment // sorted ascending by n; last is the active one
	active diskcache.File
	seq    int64 // temp-file uniquifier
	consec int
	stats  Stats
}

// Open indexes dir (creating it if needed), recovers every committed
// record in append order, and returns the journal ready for appends.
// Torn tails are truncated away, corrupt segments quarantined, and the
// byte budget enforced before records are returned — so what comes back
// is exactly what a replay may trust.
func Open(dir string, opts Options) (*Journal, [][]byte, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = diskcache.OS()
	}
	j := &Journal{
		dir:      dir,
		fs:       fsys,
		segBytes: opts.SegmentBytes,
		maxBytes: opts.MaxBytes,
	}
	if j.segBytes <= 0 {
		j.segBytes = DefaultSegmentBytes
	}
	if j.maxBytes <= 0 {
		j.maxBytes = DefaultMaxBytes
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: open %s: %w", dir, err)
	}
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: open %s: %w", dir, err)
	}
	var nums []uint64
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, tempSuffix) {
			// A rewrite that died mid-protocol holds nothing trustworthy.
			j.fs.Remove(j.path(name))
			continue
		}
		if n, ok := parseSegName(name); ok {
			nums = append(nums, n)
		}
	}
	sort.Slice(nums, func(a, b int) bool { return nums[a] < nums[b] })

	var records [][]byte
	var starts []int // records index where each retained segment begins
	for _, n := range nums {
		recs, size, ok := j.recoverSegment(n)
		if !ok {
			continue // quarantined; counted inside
		}
		starts = append(starts, len(records))
		j.segs = append(j.segs, segment{n: n, size: size})
		records = append(records, recs...)
	}
	// Budget: drop oldest segments (and their records) while over,
	// always keeping the newest.
	drop := 0
	total := j.totalLocked()
	for total > j.maxBytes && drop < len(j.segs)-1 {
		victim := j.segs[drop]
		j.fs.Remove(j.path(segName(victim.n)))
		total -= victim.size
		j.stats.DroppedSegments++
		drop++
	}
	if drop > 0 {
		j.segs = append([]segment(nil), j.segs[drop:]...)
		records = records[starts[drop]:]
	}
	j.stats.Recovered = int64(len(records))
	j.stats.Segments = len(j.segs)
	return j, records, nil
}

// recoverSegment reads and verifies one segment. It returns the
// segment's committed records and final size, or ok=false when the
// whole segment was quarantined.
func (j *Journal) recoverSegment(n uint64) (records [][]byte, size int64, ok bool) {
	path := j.path(segName(n))
	data, err := j.fs.ReadFile(path)
	if err != nil {
		// Unreadable is indistinguishable from rotted: withdraw it.
		j.quarantine(n)
		return nil, 0, false
	}
	if len(data) < headerSize || string(data[:8]) != magic ||
		binary.LittleEndian.Uint32(data[8:12]) != version {
		j.quarantine(n)
		return nil, 0, false
	}
	off := headerSize
	for off < len(data) {
		rest := len(data) - off
		if rest < frameHeader {
			// Mid-frame end of file: the final append was torn.
			return j.truncateTorn(n, data, off, records)
		}
		plen := int(binary.LittleEndian.Uint32(data[off : off+4]))
		wantCRC := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if rest < frameHeader+plen {
			return j.truncateTorn(n, data, off, records)
		}
		payload := data[off+frameHeader : off+frameHeader+plen]
		if crc32.ChecksumIEEE(payload) != wantCRC {
			// The frame is fully present and still wrong: that is rot or a
			// foreign writer, not a crash. Withdraw the whole segment —
			// nothing in a lying file is worth trusting.
			j.quarantine(n)
			return nil, 0, false
		}
		records = append(records, payload)
		off += frameHeader + plen
	}
	return records, int64(len(data)), true
}

// truncateTorn handles a torn tail: keep the valid prefix, rewrite the
// segment to contain exactly that prefix (temp/fsync/atomic-rename, the
// diskcache discipline), and count the tear. If the rewrite fails the
// in-memory records still stand — the torn file will simply be
// re-truncated on the next start.
func (j *Journal) truncateTorn(n uint64, data []byte, validEnd int, records [][]byte) ([][]byte, int64, bool) {
	j.stats.TornTails++
	path := j.path(segName(n))
	if validEnd <= headerSize {
		// Nothing committed in this segment; drop the file entirely.
		j.fs.Remove(path)
		return nil, 0, false
	}
	j.seq++
	tmp := path + fmt.Sprintf(".%d%s", j.seq, tempSuffix)
	if err := j.writeFile(tmp, data[:validEnd]); err == nil {
		if err := j.fs.Rename(tmp, path); err != nil {
			j.fs.Remove(tmp)
		}
	} else {
		j.fs.Remove(tmp)
	}
	return records, int64(validEnd), true
}

func (j *Journal) writeFile(path string, data []byte) error {
	f, err := j.fs.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// quarantine withdraws a segment from every future recovery: renamed to
// *.bad for forensics, removed outright if even the rename fails.
func (j *Journal) quarantine(n uint64) {
	name := segName(n)
	if err := j.fs.Rename(j.path(name), j.path(name+quarantineSuffix)); err != nil {
		j.fs.Remove(j.path(name))
	}
	j.stats.Quarantines++
}

// Append durably commits one record: frame written in a single call,
// fsynced before Append returns. An error means the record is NOT
// journaled (the caller's request should proceed regardless — the
// journal trades warmth, never availability). After writeFailureLimit
// consecutive failures the journal degrades and appends become silent
// no-op errors without touching the disk.
func (j *Journal) Append(payload []byte) error {
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.stats.Degraded {
		j.stats.AppendErrors++
		return fmt.Errorf("journal: write path degraded after %d consecutive failures", writeFailureLimit)
	}
	if err := j.ensureActiveLocked(int64(len(frame))); err != nil {
		return j.appendFailedLocked(err)
	}
	if _, err := j.active.Write(frame); err != nil {
		// The segment now ends in a torn frame; seal it so the next append
		// starts a clean segment and recovery truncates the tear.
		j.sealActiveLocked()
		return j.appendFailedLocked(err)
	}
	if err := j.active.Sync(); err != nil {
		j.sealActiveLocked()
		return j.appendFailedLocked(err)
	}
	j.consec = 0
	j.stats.Appends++
	j.segs[len(j.segs)-1].size += int64(len(frame))
	return nil
}

// ensureActiveLocked opens the active segment, rotating first when the
// incoming frame would push it past the segment threshold.
func (j *Journal) ensureActiveLocked(incoming int64) error {
	if j.active != nil && j.segs[len(j.segs)-1].size+incoming > j.segBytes {
		j.sealActiveLocked()
	}
	if j.active != nil {
		return nil
	}
	var next uint64
	if len(j.segs) > 0 {
		next = j.segs[len(j.segs)-1].n + 1
	}
	f, err := j.fs.Create(j.path(segName(next)))
	if err != nil {
		return err
	}
	var hdr [headerSize]byte
	copy(hdr[:8], magic)
	binary.LittleEndian.PutUint32(hdr[8:12], version)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		j.fs.Remove(j.path(segName(next)))
		return err
	}
	j.active = f
	j.segs = append(j.segs, segment{n: next, size: headerSize})
	j.stats.Segments = len(j.segs)
	// Rotation is when the budget is enforced: drop oldest sealed
	// segments while the journal is over.
	for j.totalLocked() > j.maxBytes && len(j.segs) > 1 {
		victim := j.segs[0]
		j.fs.Remove(j.path(segName(victim.n)))
		j.segs = j.segs[1:]
		j.stats.DroppedSegments++
		j.stats.Segments = len(j.segs)
	}
	return nil
}

func (j *Journal) sealActiveLocked() {
	if j.active != nil {
		j.active.Close()
		j.active = nil
	}
}

func (j *Journal) appendFailedLocked(err error) error {
	j.stats.AppendErrors++
	j.consec++
	if j.consec >= writeFailureLimit {
		j.stats.Degraded = true
		j.sealActiveLocked()
	}
	return fmt.Errorf("journal: append: %w", err)
}

// Close seals the active segment. The journal is unusable afterwards.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.sealActiveLocked()
	return nil
}

// Dir returns the directory the journal lives in.
func (j *Journal) Dir() string { return j.dir }

// Stats returns a counter snapshot.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.stats
	st.Segments = len(j.segs)
	return st
}

func (j *Journal) totalLocked() int64 {
	var t int64
	for _, s := range j.segs {
		t += s.size
	}
	return t
}

func (j *Journal) path(name string) string {
	return j.dir + string(os.PathSeparator) + name
}

func segName(n uint64) string {
	return fmt.Sprintf("%s%016d%s", segPrefix, n, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}
