// Package diskcache is a crash-safe, content-addressed, persistent
// artifact store: the disk tier behind the compilation pipeline's
// in-memory cache. Its contract is asymmetric by design:
//
//   - a healthy disk makes repeated compiles survive process restarts;
//   - a sick disk — torn writes, bit rot, ENOSPC, EIO — can slow the
//     pipeline down (entries read as misses and are recompiled) but can
//     never change its output and never fail a compile.
//
// Entries are written with the classic crash-safety protocol: the full
// encoded entry goes to a private temp file, is fsynced, closed, and only
// then atomically renamed to its content-addressed name. A crash at any
// point leaves either the complete old state or the complete new state
// plus a dead *.tmp file, which the next Open sweeps. Every entry carries
// a versioned header, its own key, and a SHA-256 trailer over the whole
// file (entry.go); reads re-verify all three and quarantine anything that
// fails, so a corrupt file is withdrawn from the read path (renamed to
// *.bad for forensics) and the lookup falls through to a miss.
//
// Capacity is a byte budget with LRU-by-access eviction. Access order is
// tracked in memory per handle and seeded from file modification times at
// Open, so a restarted process approximates the order it crashed with.
//
// All I/O goes through the FS interface (fs.go); tests inject
// deterministic faults with FaultFS. After writeFailureLimit consecutive
// write failures the tier stops writing (degraded-to-memory) while
// continuing to serve reads — persistent ENOSPC must not turn every
// compile into a stream of failing writes.
package diskcache

import (
	"encoding/hex"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

const (
	// DefaultMaxBytes bounds the tier when the caller does not:
	// 256 MiB, far above the suite's working set.
	DefaultMaxBytes = 256 << 20

	// writeFailureLimit is the number of consecutive write failures after
	// which the tier declares itself degraded and stops writing.
	writeFailureLimit = 3

	entrySuffix      = ".art"
	tempSuffix       = ".tmp"
	quarantineSuffix = ".bad"
)

// Options configure Open.
type Options struct {
	// MaxBytes is the byte budget; <= 0 uses DefaultMaxBytes. Entries
	// larger than the whole budget are not stored.
	MaxBytes int64
	// TTL is how long an entry stays servable after it was stored; <= 0
	// means entries never expire. Expiry is lazy (an expired entry reads
	// as a miss and is deleted) plus whatever Sweep passes the owner
	// schedules. Entries indexed at Open age from their file mtime, so a
	// restart does not refresh the fleet's artifacts.
	TTL time.Duration
	// Now is the clock TTL expiry is judged against; nil means time.Now.
	// Injected by tests.
	Now func() time.Time
	// FS is the filesystem to run on; nil uses the real one.
	FS FS
}

// Stats is a snapshot of the tier's counters.
type Stats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Writes int64 `json:"writes"`

	// Robustness counters: entries that failed integrity verification
	// (corruptions) and were withdrawn from the read path (quarantines);
	// read and write I/O errors; dead temp files swept at Open; and how
	// many times the tier shut its write path off (degraded-to-memory).
	Corruptions      int64 `json:"corruptions"`
	Quarantines      int64 `json:"quarantines"`
	ReadErrors       int64 `json:"read_errors"`
	WriteErrors      int64 `json:"write_errors"`
	SweptTemps       int64 `json:"swept_temps"`
	DegradedToMemory int64 `json:"degraded_to_memory"`

	Evictions int64 `json:"evictions"`
	// Expired counts entries deleted because they outlived the TTL,
	// whether caught lazily by Get or by a Sweep.
	Expired int64 `json:"expired"`
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Degraded is true while the write path is off.
	Degraded bool `json:"degraded,omitempty"`
}

// entryMeta is one indexed on-disk entry.
type entryMeta struct {
	key      Key
	size     int64
	storedAt time.Time  // when the entry landed (file mtime for indexed ones)
	prev     *entryMeta // toward most recently used
	next     *entryMeta // toward least recently used
}

// Cache is one handle on a cache directory. It is safe for concurrent
// use. Multiple handles (processes) may share a directory: writes are
// atomic renames of content-addressed files, so the worst cross-handle
// interference is an eviction racing a read, which reads as a miss.
type Cache struct {
	dir string
	fs  FS
	max int64
	ttl time.Duration
	now func() time.Time

	mu      sync.Mutex
	index   map[Key]*entryMeta
	head    *entryMeta // most recently used
	tail    *entryMeta // least recently used
	total   int64
	seq     int64 // temp-file uniquifier
	consec  int   // consecutive write failures
	stats   Stats
	stopped bool // write path off (degraded)
}

// Open indexes dir (creating it if needed), sweeps dead temp files left
// by crashed writers, and returns a handle. The index is seeded in
// file-modification-time order so LRU eviction approximates the access
// order of the previous process.
func Open(dir string, opts Options) (*Cache, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = OS()
	}
	max := opts.MaxBytes
	if max <= 0 {
		max = DefaultMaxBytes
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	c := &Cache{dir: dir, fs: fsys, max: max, ttl: opts.TTL, now: now, index: make(map[Key]*entryMeta)}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: open %s: %w", dir, err)
	}
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("diskcache: open %s: %w", dir, err)
	}
	type found struct {
		key   Key
		size  int64
		mtime int64
		name  string
	}
	var arts []found
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, tempSuffix):
			// A temp file is a writer that died mid-protocol; its entry
			// was never renamed into place, so it holds nothing valid.
			if err := fsys.Remove(c.path(name)); err == nil {
				c.stats.SweptTemps++
			}
		case strings.HasSuffix(name, entrySuffix):
			key, ok := parseEntryName(name)
			if !ok {
				continue // foreign file; leave it alone
			}
			info, err := e.Info()
			if err != nil {
				continue
			}
			arts = append(arts, found{key: key, size: info.Size(), mtime: info.ModTime().UnixNano(), name: name})
		}
	}
	// Oldest first, name as the deterministic tie-break; pushing each to
	// the front leaves the newest entry most recently used.
	sort.Slice(arts, func(i, j int) bool {
		if arts[i].mtime != arts[j].mtime {
			return arts[i].mtime < arts[j].mtime
		}
		return arts[i].name < arts[j].name
	})
	for _, a := range arts {
		m := &entryMeta{key: a.key, size: a.size, storedAt: time.Unix(0, a.mtime)}
		c.index[a.key] = m
		c.pushFront(m)
		c.total += a.size
	}
	c.evictLocked()
	return c, nil
}

// Dir returns the directory the cache lives in.
func (c *Cache) Dir() string { return c.dir }

// Get returns the verified payload stored under (key, kind), or false.
// Every failure mode — absent, unreadable, truncated, bit-flipped, wrong
// version, wrong kind, wrong embedded key — is a miss; integrity failures
// additionally quarantine the file.
func (c *Cache) Get(key Key, kind uint32) ([]byte, bool) {
	payload, _, ok := c.getKinds(key, []uint32{kind}, true)
	return payload, ok
}

// GetAny returns the verified payload stored under key if its kind is one
// of kinds, along with the kind found. Unlike Get, a valid entry whose
// kind is not listed reads as a plain miss and is left on disk untouched:
// the entry is internally consistent, just written under a codec version
// (or namespace) this reader did not ask for, and destroying it would
// punish mixed-version fleets sharing a cache directory. Integrity
// failures (bad checksum, wrong embedded key) still quarantine.
func (c *Cache) GetAny(key Key, kinds ...uint32) ([]byte, uint32, bool) {
	return c.getKinds(key, kinds, false)
}

func (c *Cache) getKinds(key Key, kinds []uint32, quarantineKindMismatch bool) ([]byte, uint32, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.index[key]
	if !ok {
		c.stats.Misses++
		return nil, 0, false
	}
	if c.expiredLocked(m) {
		// The entry is withdrawn from the index before the file is
		// removed, so a concurrent reader can never be handed a
		// partially-deleted entry — it simply misses.
		c.expireLocked(m)
		c.stats.Misses++
		return nil, 0, false
	}
	data, err := c.fs.ReadFile(c.path(entryName(key)))
	if err != nil {
		c.stats.Misses++
		if os.IsNotExist(err) {
			// Another handle evicted it; just drop the index entry.
			c.dropLocked(m)
		} else {
			c.stats.ReadErrors++
		}
		return nil, 0, false
	}
	gotKind, gotKey, payload, err := DecodeEntry(data)
	if err != nil || gotKey != key {
		c.stats.Misses++
		c.quarantineLocked(m)
		return nil, 0, false
	}
	for _, k := range kinds {
		if gotKind == k {
			c.stats.Hits++
			c.moveFront(m)
			return payload, gotKind, true
		}
	}
	c.stats.Misses++
	if quarantineKindMismatch {
		c.quarantineLocked(m)
	}
	return nil, 0, false
}

// Put stores payload under (key, kind) with the crash-safe protocol. It
// never returns an error: failures count, may degrade the write path, and
// otherwise leave the cache exactly as it was. Storing an existing key is
// a no-op (content addressing: same key, same bytes).
func (c *Cache) Put(key Key, kind uint32, payload []byte) {
	data := EncodeEntry(kind, key, payload)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return
	}
	if _, ok := c.index[key]; ok {
		return
	}
	if int64(len(data)) > c.max {
		return // larger than the whole budget; not worth a write
	}
	c.seq++
	tmp := c.path(fmt.Sprintf("%s.%d%s", entryName(key), c.seq, tempSuffix))
	if err := c.writeTemp(tmp, data); err != nil {
		c.fs.Remove(tmp) // best effort; Open sweeps stragglers
		c.writeFailedLocked()
		return
	}
	if err := c.fs.Rename(tmp, c.path(entryName(key))); err != nil {
		c.fs.Remove(tmp)
		c.writeFailedLocked()
		return
	}
	c.consec = 0
	c.stats.Writes++
	m := &entryMeta{key: key, size: int64(len(data)), storedAt: c.now()}
	c.index[key] = m
	c.pushFront(m)
	c.total += m.size
	c.evictLocked()
}

func (c *Cache) writeTemp(tmp string, data []byte) error {
	f, err := c.fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (c *Cache) writeFailedLocked() {
	c.stats.WriteErrors++
	c.consec++
	if c.consec >= writeFailureLimit && !c.stopped {
		c.stopped = true
		c.stats.Degraded = true
		c.stats.DegradedToMemory++
	}
}

// ReportDecodeFailure quarantines an entry whose raw bytes verified but
// whose payload the caller could not decode — a foreign or buggy writer
// produced a checksum-consistent file with a garbage artifact inside.
// The lookup Get counted as a hit is reclassified as a miss.
func (c *Cache) ReportDecodeFailure(key Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Hits--
	c.stats.Misses++
	if m, ok := c.index[key]; ok {
		c.quarantineLocked(m)
	}
}

// Sweep deletes every entry that has outlived the TTL and returns how
// many it removed. With no TTL configured it is a no-op. Owners with a
// GC loop call this on a timer; lazy expiry in Get covers the rest.
func (c *Cache) Sweep() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ttl <= 0 {
		return 0
	}
	n := 0
	for m := c.tail; m != nil; {
		prev := m.prev // toward MRU; survives m's unlink
		if c.expiredLocked(m) {
			c.expireLocked(m)
			n++
		}
		m = prev
	}
	return n
}

// Stats returns a counter snapshot.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = len(c.index)
	st.Bytes = c.total
	return st
}

// ---- internal index maintenance (c.mu held) ----

func (c *Cache) path(name string) string {
	// filepath.Join cleans the dir; plain concatenation keeps the path a
	// pure function of (dir, name), which the FaultFS hooks match on.
	return c.dir + string(os.PathSeparator) + name
}

func entryName(key Key) string { return hex.EncodeToString(key[:]) + entrySuffix }

func parseEntryName(name string) (Key, bool) {
	hexPart := strings.TrimSuffix(name, entrySuffix)
	raw, err := hex.DecodeString(hexPart)
	if err != nil || len(raw) != len(Key{}) {
		return Key{}, false
	}
	var k Key
	copy(k[:], raw)
	return k, true
}

func (c *Cache) pushFront(m *entryMeta) {
	m.prev, m.next = nil, c.head
	if c.head != nil {
		c.head.prev = m
	}
	c.head = m
	if c.tail == nil {
		c.tail = m
	}
}

func (c *Cache) unlink(m *entryMeta) {
	if m.prev != nil {
		m.prev.next = m.next
	} else {
		c.head = m.next
	}
	if m.next != nil {
		m.next.prev = m.prev
	} else {
		c.tail = m.prev
	}
	m.prev, m.next = nil, nil
}

func (c *Cache) moveFront(m *entryMeta) {
	if c.head == m {
		return
	}
	c.unlink(m)
	c.pushFront(m)
}

// dropLocked removes m from the index without touching the disk.
func (c *Cache) dropLocked(m *entryMeta) {
	c.unlink(m)
	delete(c.index, m.key)
	c.total -= m.size
}

// quarantineLocked withdraws a corrupt entry from the read path: renamed
// to *.bad so the evidence survives for forensics, removed outright if
// even the rename fails.
func (c *Cache) quarantineLocked(m *entryMeta) {
	c.stats.Corruptions++
	name := entryName(m.key)
	if err := c.fs.Rename(c.path(name), c.path(name+quarantineSuffix)); err != nil {
		c.fs.Remove(c.path(name))
	}
	c.stats.Quarantines++
	c.dropLocked(m)
}

func (c *Cache) expiredLocked(m *entryMeta) bool {
	return c.ttl > 0 && c.now().Sub(m.storedAt) >= c.ttl
}

// expireLocked deletes an entry that outlived the TTL: index first, file
// second, so no reader observes a half-deleted entry.
func (c *Cache) expireLocked(m *entryMeta) {
	c.dropLocked(m)
	c.fs.Remove(c.path(entryName(m.key)))
	c.stats.Expired++
}

func (c *Cache) evictLocked() {
	for c.total > c.max && c.tail != nil {
		victim := c.tail
		c.fs.Remove(c.path(entryName(victim.key)))
		c.dropLocked(victim)
		c.stats.Evictions++
	}
}
