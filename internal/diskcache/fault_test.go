package diskcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestENOSPCDegradesToMemory: persistent ENOSPC counts write errors and,
// after writeFailureLimit consecutive failures, shuts the write path off
// while reads keep working.
func TestENOSPCDegradesToMemory(t *testing.T) {
	ffs := NewFaultFS(nil)
	c := mustOpen(t, t.TempDir(), Options{FS: ffs})
	warm := keyOf("written-before-the-disk-filled")
	c.Put(warm, 1, []byte("safe"))

	ffs.SetWriteBudget(0) // disk is full from here on
	for i := 0; i < writeFailureLimit+2; i++ {
		c.Put(keyOf(fmt.Sprintf("doomed-%d", i)), 1, []byte("never lands"))
	}

	st := c.Stats()
	if st.WriteErrors != writeFailureLimit {
		t.Errorf("WriteErrors = %d, want %d (degradation must stop the failure stream)",
			st.WriteErrors, writeFailureLimit)
	}
	if !st.Degraded || st.DegradedToMemory != 1 {
		t.Errorf("tier not degraded after %d consecutive failures: %+v", writeFailureLimit, st)
	}
	if writes, _ := ffs.Faults(); writes != writeFailureLimit {
		t.Errorf("injected write faults = %d, want %d", writes, writeFailureLimit)
	}
	// Reads still served while degraded.
	if got, ok := c.Get(warm, 1); !ok || string(got) != "safe" {
		t.Errorf("read path broken while degraded: %q, %v", got, ok)
	}
}

// TestENOSPCSingleFailureRecovers: one failed write followed by
// successes does not degrade the tier — the limit is on *consecutive*
// failures.
func TestENOSPCSingleFailureRecovers(t *testing.T) {
	ffs := NewFaultFS(nil)
	c := mustOpen(t, t.TempDir(), Options{FS: ffs})

	ffs.SetWriteBudget(0)
	c.Put(keyOf("doomed"), 1, []byte("x"))
	ffs.SetWriteBudget(-1) // space freed

	for i := 0; i < writeFailureLimit; i++ {
		c.Put(keyOf(fmt.Sprintf("fine-%d", i)), 1, []byte("y"))
	}
	st := c.Stats()
	if st.Degraded {
		t.Errorf("tier degraded after a single transient failure: %+v", st)
	}
	if st.WriteErrors != 1 || st.Writes != writeFailureLimit {
		t.Errorf("counters after recovery: %+v", st)
	}
}

// TestEIOOnReadIsMiss: an injected EIO reads as a miss with a ReadErrors
// count; the entry is NOT quarantined (the medium failed, not the
// entry), so it is served again once the fault clears.
func TestEIOOnReadIsMiss(t *testing.T) {
	ffs := NewFaultFS(nil)
	c := mustOpen(t, t.TempDir(), Options{FS: ffs})
	k := keyOf("flaky-medium")
	c.Put(k, 1, []byte("intact on disk"))

	ffs.SetReadHook(func(string, []byte) ([]byte, error) { return nil, ErrIO })
	if _, ok := c.Get(k, 1); ok {
		t.Fatal("Get succeeded through an EIO")
	}
	st := c.Stats()
	if st.ReadErrors != 1 || st.Misses != 1 || st.Quarantines != 0 {
		t.Errorf("stats after EIO: %+v", st)
	}

	ffs.SetReadHook(nil)
	if got, ok := c.Get(k, 1); !ok || string(got) != "intact on disk" {
		t.Errorf("entry lost to a transient EIO: %q, %v", got, ok)
	}
}

// TestReadHookBitFlip: every bit of a small entry, flipped one at a
// time through the read hook, must read as a miss — never as a payload
// that differs from what was stored.
func TestReadHookBitFlip(t *testing.T) {
	ffs := NewFaultFS(nil)
	c := mustOpen(t, t.TempDir(), Options{FS: ffs})
	k := keyOf("exhaustive")
	want := []byte("p")
	c.Put(k, 1, want)

	var flipByte int
	var flipBit uint
	ffs.SetReadHook(func(_ string, data []byte) ([]byte, error) {
		out := bytes.Clone(data)
		out[flipByte] ^= 1 << flipBit
		return out, nil
	})
	total := len(EncodeEntry(1, k, want))
	for flipByte = 0; flipByte < total; flipByte++ {
		for flipBit = 0; flipBit < 8; flipBit++ {
			got, ok := c.Get(k, 1)
			if ok {
				t.Fatalf("flip byte %d bit %d: served %q", flipByte, flipBit, got)
			}
			// Quarantine removed the real file; put it back for the next flip.
			ffs.SetReadHook(nil)
			os.Remove(filepath.Join(c.Dir(), entryName(k)+quarantineSuffix))
			c.Put(k, 1, want)
			ffs.SetReadHook(func(_ string, data []byte) ([]byte, error) {
				out := bytes.Clone(data)
				out[flipByte] ^= 1 << flipBit
				return out, nil
			})
		}
	}
	ffs.SetReadHook(nil)
	if got, ok := c.Get(k, 1); !ok || !bytes.Equal(got, want) {
		t.Fatalf("pristine entry at the end: %q, %v", got, ok)
	}
}

// TestTornWriteCrashRecovery simulates the core crash-safety scenario: a
// process dies partway through writing an entry. The visible state must
// be the complete old state plus a dead temp file; a second handle on
// the same directory sweeps the temp and serves every entry that was
// fully committed.
func TestTornWriteCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	c1 := mustOpen(t, dir, Options{FS: ffs})
	committed := keyOf("fully-committed")
	c1.Put(committed, 1, []byte("survives the crash"))

	// Crash 10 bytes into the next entry's temp-file write.
	ffs.CrashAfterBytes(10)
	torn := keyOf("torn")
	c1.Put(torn, 1, []byte("this write is interrupted"))
	if st := c1.Stats(); st.WriteErrors != 1 {
		t.Fatalf("torn write not counted: %+v", st)
	}

	// The torn prefix must be visible only as a temp file, never under an
	// entry name the read path would consult.
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var temps, arts int
	for _, e := range names {
		switch {
		case strings.HasSuffix(e.Name(), tempSuffix):
			temps++
		case strings.HasSuffix(e.Name(), entrySuffix):
			arts++
		}
	}
	if temps != 1 || arts != 1 {
		t.Fatalf("post-crash dir: %d temps, %d entries; want 1 and 1", temps, arts)
	}

	// "Restart": new handle, healthy disk.
	c2 := mustOpen(t, dir, Options{})
	if st := c2.Stats(); st.SweptTemps != 1 {
		t.Errorf("restart swept %d temps, want 1", st.SweptTemps)
	}
	if got, ok := c2.Get(committed, 1); !ok || string(got) != "survives the crash" {
		t.Errorf("committed entry lost: %q, %v", got, ok)
	}
	if _, ok := c2.Get(torn, 1); ok {
		t.Error("torn entry visible after restart")
	}
}

// TestCrashDuringRename: crash armed so the temp write completes but the
// filesystem dies before (or at) the rename. Either outcome — entry
// fully present or only a temp — must leave the second handle
// consistent.
func TestCrashDuringRename(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	c1 := mustOpen(t, dir, Options{FS: ffs})
	k := keyOf("rename-race")
	payload := []byte("payload for the rename crash")
	// Let the whole temp write through, then die at the very next
	// operation (the rename's dead() check).
	data := EncodeEntry(1, k, payload)
	ffs.CrashAfterBytes(int64(len(data)) + 1)
	ffs.SetWriteBudget(-1)
	c1.Put(k, 1, payload)
	// Force the crash if Put's write did not cross the threshold.
	ffs.CrashAfterBytes(0)
	c1.Put(keyOf("post-crash"), 1, []byte("dead on arrival"))

	c2 := mustOpen(t, dir, Options{})
	if got, ok := c2.Get(k, 1); ok && !bytes.Equal(got, payload) {
		t.Fatalf("rename crash surfaced a wrong artifact: %q", got)
	}
	if _, ok := c2.Get(keyOf("post-crash"), 1); ok {
		t.Error("entry written after the crash is visible")
	}
	left, err := filepath.Glob(filepath.Join(dir, "*"+tempSuffix))
	if err != nil || len(left) != 0 {
		t.Errorf("temps after restart: %v (%v)", left, err)
	}
}

// TestOpenOnCrashedFS: Open against a dead filesystem fails cleanly with
// an error rather than panicking or returning a half-built handle.
func TestOpenOnCrashedFS(t *testing.T) {
	ffs := NewFaultFS(nil)
	ffs.CrashAfterBytes(0)
	ffs.SetWriteBudget(-1)
	// Trip the crash.
	f, err := ffs.Create(filepath.Join(t.TempDir(), "x.tmp"))
	if err == nil {
		f.Write([]byte("boom"))
		f.Close()
	}
	if _, err := Open(t.TempDir(), Options{FS: ffs}); err == nil {
		t.Fatal("Open on a crashed filesystem succeeded")
	}
}

// TestFaultSoak drives many put/get cycles across every fault knob at
// deterministic intervals and asserts the global invariant: a Get either
// misses or returns exactly the bytes that were stored. Gated behind
// -short because it iterates the whole matrix.
func TestFaultSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("fault soak skipped in -short mode")
	}
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	c := mustOpen(t, dir, Options{FS: ffs})

	payloadFor := func(i int) []byte {
		return bytes.Repeat([]byte{byte(i)}, 16+i%64)
	}
	const rounds = 400
	for i := 0; i < rounds; i++ {
		// Deterministic fault schedule: cycle through ENOSPC windows, EIO
		// windows, bit-flip windows, crash/restart, and healthy stretches.
		switch i % 40 {
		case 10:
			ffs.SetWriteBudget(5)
		case 14:
			ffs.SetWriteBudget(-1)
		case 20:
			ffs.SetReadHook(func(string, []byte) ([]byte, error) { return nil, ErrIO })
		case 23:
			ffs.SetReadHook(func(_ string, data []byte) ([]byte, error) {
				out := bytes.Clone(data)
				out[len(out)/2] ^= 0x40
				return out, nil
			})
		case 26:
			ffs.SetReadHook(nil)
		case 30:
			ffs.CrashAfterBytes(int64(i % 70))
		case 33:
			// Restart on the same directory.
			ffs.Revive()
			c = mustOpen(t, dir, Options{FS: ffs})
		}

		k := keyOf(fmt.Sprintf("soak-%d", i%50))
		c.Put(k, 1, payloadFor(i%50))
		for j := 0; j <= i%3; j++ {
			probe := (i + j*7) % 50
			got, ok := c.Get(keyOf(fmt.Sprintf("soak-%d", probe)), 1)
			if ok && !bytes.Equal(got, payloadFor(probe)) {
				t.Fatalf("round %d: wrong artifact for soak-%d: %q", i, probe, got)
			}
		}
	}

	// Whatever the fault history, a healthy reopen ends consistent: no
	// temps, every surviving entry intact.
	ffs.Revive()
	ffs.SetReadHook(nil)
	ffs.SetWriteBudget(-1)
	final := mustOpen(t, dir, Options{})
	for i := 0; i < 50; i++ {
		got, ok := final.Get(keyOf(fmt.Sprintf("soak-%d", i)), 1)
		if ok && !bytes.Equal(got, payloadFor(i)) {
			t.Fatalf("after soak: wrong artifact for soak-%d: %q", i, got)
		}
	}
	if temps, _ := filepath.Glob(filepath.Join(dir, "*"+tempSuffix)); len(temps) != 0 {
		t.Errorf("temps survived the final reopen: %v", temps)
	}
}
