package diskcache

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func keyOf(s string) Key { return Key(sha256.Sum256([]byte(s))) }

func mustOpen(t *testing.T, dir string, opts Options) *Cache {
	t.Helper()
	c, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return c
}

func TestPutGetRoundTrip(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{})
	k := keyOf("a")
	payload := []byte("the artifact bytes")
	c.Put(k, 7, payload)
	got, ok := c.Get(k, 7)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want the stored payload", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Writes != 1 || st.Entries != 1 {
		t.Errorf("stats after one put+get: %+v", st)
	}
	if _, ok := c.Get(keyOf("absent"), 7); ok {
		t.Error("Get of an absent key succeeded")
	}
}

func TestGetWrongKindIsCorruption(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{})
	k := keyOf("a")
	c.Put(k, 1, []byte("x"))
	if _, ok := c.Get(k, 2); ok {
		t.Fatal("entry of kind 1 served a kind-2 lookup")
	}
	st := c.Stats()
	if st.Corruptions != 1 || st.Quarantines != 1 {
		t.Errorf("kind mismatch did not quarantine: %+v", st)
	}
	// The entry is withdrawn: even the right kind now misses.
	if _, ok := c.Get(k, 1); ok {
		t.Error("quarantined entry was served")
	}
}

func TestPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	c1 := mustOpen(t, dir, Options{})
	k := keyOf("persist")
	c1.Put(k, 3, []byte("survives restarts"))

	c2 := mustOpen(t, dir, Options{})
	got, ok := c2.Get(k, 3)
	if !ok || string(got) != "survives restarts" {
		t.Fatalf("reopened cache Get = %q, %v", got, ok)
	}
}

// TestBitFlipQuarantined flips one bit of a stored entry on disk — bit
// rot — and requires the read to miss, the file to be quarantined, and
// the counters to say so.
func TestBitFlipQuarantined(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{})
	k := keyOf("rot")
	c.Put(k, 1, []byte("pristine payload"))

	path := filepath.Join(dir, entryName(k))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+3] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := c.Get(k, 1); ok {
		t.Fatal("bit-flipped entry was served")
	}
	st := c.Stats()
	if st.Corruptions != 1 || st.Quarantines != 1 || st.Entries != 0 {
		t.Errorf("stats after bit flip: %+v", st)
	}
	if _, err := os.Stat(path + quarantineSuffix); err != nil {
		t.Errorf("no quarantine file: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt entry still on the read path: %v", err)
	}
}

// TestTruncationQuarantined: a torn visible entry (e.g. the filesystem
// lost the tail despite the rename) reads as a miss, never as a short
// artifact.
func TestTruncationQuarantined(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{})
	k := keyOf("torn")
	c.Put(k, 1, []byte("a payload long enough to truncate meaningfully"))

	path := filepath.Join(dir, entryName(k))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{len(data) - 1, headerSize + 4, headerSize, 10, 0} {
		if err := os.WriteFile(path, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		c2 := mustOpen(t, dir, Options{})
		if got, ok := c2.Get(k, 1); ok {
			t.Fatalf("truncation to %d bytes served %q", n, got)
		}
		if st := c2.Stats(); st.Corruptions != 1 {
			t.Fatalf("truncation to %d bytes not counted as corruption: %+v", n, st)
		}
		os.Remove(path + quarantineSuffix)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOpenSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	// Simulate two writers that crashed mid-protocol.
	for i := 0; i < 2; i++ {
		name := filepath.Join(dir, fmt.Sprintf("deadwriter.%d%s", i, tempSuffix))
		if err := os.WriteFile(name, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	c := mustOpen(t, dir, Options{})
	if st := c.Stats(); st.SweptTemps != 2 {
		t.Errorf("swept %d temp files, want 2", st.SweptTemps)
	}
	left, err := filepath.Glob(filepath.Join(dir, "*"+tempSuffix))
	if err != nil || len(left) != 0 {
		t.Errorf("temp files still present after Open: %v (%v)", left, err)
	}
}

// TestLRUEvictionByteBudget: the tier stays under its byte budget,
// evicting least-recently-accessed entries first.
func TestLRUEvictionByteBudget(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("x"), 100)
	entrySize := int64(len(EncodeEntry(1, Key{}, payload)))
	c := mustOpen(t, dir, Options{MaxBytes: 3 * entrySize})

	keys := []Key{keyOf("1"), keyOf("2"), keyOf("3")}
	for _, k := range keys {
		c.Put(k, 1, payload)
	}
	// Touch key 1 so key 2 is now the least recently used.
	if _, ok := c.Get(keys[0], 1); !ok {
		t.Fatal("warm entry missed")
	}
	c.Put(keyOf("4"), 1, payload)

	if _, ok := c.Get(keys[1], 1); ok {
		t.Error("least-recently-used entry survived eviction")
	}
	for _, k := range []Key{keys[0], keys[2], keyOf("4")} {
		if _, ok := c.Get(k, 1); !ok {
			t.Errorf("entry %x evicted out of LRU order", k[:4])
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Bytes > 3*entrySize {
		t.Errorf("eviction accounting: %+v", st)
	}
}

// TestReopenSeedsLRUFromMtime: after a restart the eviction order
// approximates the previous process's access order via file mtimes.
func TestReopenSeedsLRUFromMtime(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("y"), 50)
	entrySize := int64(len(EncodeEntry(1, Key{}, payload)))
	c1 := mustOpen(t, dir, Options{MaxBytes: 10 * entrySize})
	old, recent := keyOf("old"), keyOf("recent")
	c1.Put(old, 1, payload)
	c1.Put(recent, 1, payload)
	// Make the age difference visible to coarse filesystem clocks.
	past := time.Now().Add(-time.Hour)
	if err := os.Chtimes(filepath.Join(dir, entryName(old)), past, past); err != nil {
		t.Fatal(err)
	}

	c2 := mustOpen(t, dir, Options{MaxBytes: 2 * entrySize})
	c2.Put(keyOf("new"), 1, payload) // over budget: one eviction
	if _, ok := c2.Get(old, 1); ok {
		t.Error("oldest entry survived restart eviction")
	}
	if _, ok := c2.Get(recent, 1); !ok {
		t.Error("recent entry evicted before the older one")
	}
}

func TestOversizeEntrySkipped(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{MaxBytes: 64})
	k := keyOf("huge")
	c.Put(k, 1, bytes.Repeat([]byte("z"), 1024))
	if _, ok := c.Get(k, 1); ok {
		t.Fatal("entry larger than the whole budget was stored")
	}
	if st := c.Stats(); st.WriteErrors != 0 {
		t.Errorf("oversize skip counted as a write error: %+v", st)
	}
}

func TestReportDecodeFailure(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{})
	k := keyOf("garbage-payload")
	c.Put(k, 1, []byte("not what the caller expected"))
	if _, ok := c.Get(k, 1); !ok {
		t.Fatal("stored entry missed")
	}
	c.ReportDecodeFailure(k)
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 1 {
		t.Errorf("decode failure did not reclassify the hit: %+v", st)
	}
	if st.Quarantines != 1 {
		t.Errorf("decode failure did not quarantine: %+v", st)
	}
	if _, ok := c.Get(k, 1); ok {
		t.Error("entry served after a reported decode failure")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{})
	const workers = 8
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := keyOf(fmt.Sprintf("k-%d", i%20))
				want := []byte(fmt.Sprintf("payload-%d", i%20))
				c.Put(k, 1, want)
				if got, ok := c.Get(k, 1); ok && !bytes.Equal(got, want) {
					t.Errorf("worker %d: got %q, want %q", w, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := c.Stats(); st.Corruptions != 0 {
		t.Errorf("concurrent access produced corruption: %+v", st)
	}
}

func TestDecodeEntryErrors(t *testing.T) {
	k := keyOf("probe")
	valid := EncodeEntry(9, k, []byte("payload"))

	check := func(name string, data []byte) {
		t.Helper()
		if _, _, _, err := DecodeEntry(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
	check("empty", nil)
	check("truncated header", valid[:headerSize-1])
	check("truncated trailer", valid[:len(valid)-1])

	bad := bytes.Clone(valid)
	bad[0] ^= 0xFF
	check("bad magic", bad)

	bad = bytes.Clone(valid)
	bad[8] = 0xEE // unknown version
	check("unknown version", bad)

	bad = bytes.Clone(valid)
	bad[48]++ // length field
	check("length mismatch", bad)

	bad = bytes.Clone(valid)
	bad[headerSize] ^= 0x01 // payload bit
	check("payload flip", bad)

	bad = bytes.Clone(valid)
	bad[len(bad)-1] ^= 0x01 // trailer bit
	check("trailer flip", bad)

	kind, key, payload, err := DecodeEntry(valid)
	if err != nil || kind != 9 || key != k || string(payload) != "payload" {
		t.Fatalf("valid entry decode = %d, %x, %q, %v", kind, key[:4], payload, err)
	}
}

func TestTTLExpiryLazyAndSweep(t *testing.T) {
	clock := time.Unix(1_000_000, 0)
	now := func() time.Time { return clock }
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{TTL: time.Minute, Now: now})
	c.Put(keyOf("a"), 1, []byte("aa"))
	clock = clock.Add(30 * time.Second)
	c.Put(keyOf("b"), 1, []byte("bb"))

	// Fresh entries serve.
	if _, ok := c.Get(keyOf("a"), 1); !ok {
		t.Fatal("fresh entry missed")
	}

	// a crosses its TTL; b is 30s younger and survives.
	clock = clock.Add(31 * time.Second)
	if _, ok := c.Get(keyOf("a"), 1); ok {
		t.Fatal("expired entry served")
	}
	if _, ok := c.Get(keyOf("b"), 1); !ok {
		t.Fatal("unexpired entry missed")
	}
	st := c.Stats()
	if st.Expired != 1 || st.Entries != 1 {
		t.Fatalf("after lazy expiry: %+v", st)
	}
	// The file is gone, not just the index entry.
	if _, err := os.Stat(filepath.Join(dir, entryName(keyOf("a")))); !os.IsNotExist(err) {
		t.Fatalf("expired entry file still on disk: %v", err)
	}

	// Sweep catches b without a Get touching it.
	clock = clock.Add(time.Minute)
	if n := c.Sweep(); n != 1 {
		t.Fatalf("Sweep removed %d entries, want 1", n)
	}
	st = c.Stats()
	if st.Expired != 2 || st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("after sweep: %+v", st)
	}
	// A second sweep finds nothing.
	if n := c.Sweep(); n != 0 {
		t.Fatalf("idle Sweep removed %d entries", n)
	}
}

func TestTTLZeroNeverExpires(t *testing.T) {
	clock := time.Unix(1_000_000, 0)
	now := func() time.Time { return clock }
	c := mustOpen(t, t.TempDir(), Options{Now: now})
	c.Put(keyOf("a"), 1, []byte("aa"))
	clock = clock.Add(1000 * time.Hour)
	if _, ok := c.Get(keyOf("a"), 1); !ok {
		t.Fatal("entry expired with no TTL configured")
	}
	if n := c.Sweep(); n != 0 {
		t.Fatalf("Sweep with no TTL removed %d entries", n)
	}
}

func TestTTLSurvivesReopenFromMtime(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{})
	c.Put(keyOf("old"), 1, []byte("aged artifact"))

	// Age the file on disk, then reopen with a TTL: the entry ages from
	// its mtime, so the restart does not refresh it.
	path := filepath.Join(dir, entryName(keyOf("old")))
	aged := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(path, aged, aged); err != nil {
		t.Fatal(err)
	}
	c2 := mustOpen(t, dir, Options{TTL: time.Hour})
	if _, ok := c2.Get(keyOf("old"), 1); ok {
		t.Fatal("entry older than the TTL served after reopen")
	}
	if st := c2.Stats(); st.Expired != 1 {
		t.Fatalf("reopen expiry not counted: %+v", st)
	}
}
