package diskcache

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
)

// On-disk entry layout (all integers little-endian):
//
//	offset  size  field
//	0       8     magic "ccmdcas\x00"
//	8       4     format version (currently 1)
//	12      4     artifact kind (caller-defined namespace)
//	16      32    content-address key (must match the filename)
//	48      8     payload length
//	56      n     payload
//	56+n    32    SHA-256 over bytes [0, 56+n)
//
// The trailer checksum covers the header too, so a bit flip anywhere in
// the file — not just the payload — is detected. The embedded key defends
// against a valid entry renamed (or hard-linked) under the wrong address:
// such a file is internally consistent but must still read as corrupt.
const (
	// Version is the current entry-format version. Decode rejects any
	// other value: an unknown schema, newer or older, is a quarantine,
	// never a guess.
	Version = 1

	headerSize  = 56
	trailerSize = sha256.Size
	magic       = "ccmdcas\x00"
)

// Key is a 32-byte content address (SHA-256 produced by the caller).
type Key [32]byte

// ErrCorrupt is wrapped by every decode failure: truncation, bad magic,
// unknown version, length mismatch, or checksum mismatch. Callers treat
// any ErrCorrupt as (miss, quarantine).
var ErrCorrupt = errors.New("diskcache: corrupt entry")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// EncodeEntry renders one cache entry in the on-disk format.
func EncodeEntry(kind uint32, key Key, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload)+trailerSize)
	copy(buf[0:8], magic)
	binary.LittleEndian.PutUint32(buf[8:12], Version)
	binary.LittleEndian.PutUint32(buf[12:16], kind)
	copy(buf[16:48], key[:])
	binary.LittleEndian.PutUint64(buf[48:56], uint64(len(payload)))
	copy(buf[headerSize:], payload)
	sum := sha256.Sum256(buf[:headerSize+len(payload)])
	copy(buf[headerSize+len(payload):], sum[:])
	return buf
}

// DecodeEntry parses and integrity-checks one on-disk entry. On success
// the returned payload aliases data. Any malformation — truncation, junk,
// a flipped bit, an unknown version — returns an error wrapping
// ErrCorrupt; DecodeEntry never panics and never returns a payload whose
// checksum did not verify.
func DecodeEntry(data []byte) (kind uint32, key Key, payload []byte, err error) {
	if len(data) < headerSize+trailerSize {
		return 0, Key{}, nil, corruptf("truncated: %d bytes, header+trailer need %d", len(data), headerSize+trailerSize)
	}
	if string(data[0:8]) != magic {
		return 0, Key{}, nil, corruptf("bad magic %q", data[0:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != Version {
		return 0, Key{}, nil, corruptf("unknown format version %d (supported: %d)", v, Version)
	}
	kind = binary.LittleEndian.Uint32(data[12:16])
	copy(key[:], data[16:48])
	plen := binary.LittleEndian.Uint64(data[48:56])
	if plen != uint64(len(data)-headerSize-trailerSize) {
		return 0, Key{}, nil, corruptf("length field says %d payload bytes, file has %d", plen, len(data)-headerSize-trailerSize)
	}
	body := data[:headerSize+int(plen)]
	want := data[headerSize+int(plen):]
	sum := sha256.Sum256(body)
	if subtle.ConstantTimeCompare(sum[:], want) != 1 {
		return 0, Key{}, nil, corruptf("checksum mismatch")
	}
	return kind, key, data[headerSize : headerSize+int(plen)], nil
}
