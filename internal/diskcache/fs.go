package diskcache

import (
	"errors"
	"io/fs"
	"os"
	"sync"
)

// FS is the filesystem surface the cache runs on. Every byte the cache
// reads or writes goes through one of these methods, so tests can swap in
// a FaultFS and deterministically inject the failure modes a real disk
// tier brings: ENOSPC mid-write, EIO on read, torn writes (a crash after
// a partial write), and bit rot.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(path string) ([]fs.DirEntry, error)
	ReadFile(path string) ([]byte, error)
	Create(path string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
}

// File is the writable-file surface used by the crash-safe write
// protocol: write everything, fsync, close, then rename into place.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(path string) ([]fs.DirEntry, error)   { return os.ReadDir(path) }
func (osFS) ReadFile(path string) ([]byte, error)         { return os.ReadFile(path) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error                     { return os.Remove(path) }

func (osFS) Create(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Injected-fault sentinels. The cache never branches on the concrete
// error — any I/O failure degrades the same way — but tests assert on
// these to prove the right knob fired.
var (
	// ErrNoSpace simulates ENOSPC: the write that exceeds the budget
	// fails after persisting nothing.
	ErrNoSpace = errors.New("diskcache: injected ENOSPC: no space left on device")
	// ErrIO simulates EIO on a read.
	ErrIO = errors.New("diskcache: injected EIO: input/output error")
	// ErrCrashed is returned by every operation after a simulated crash:
	// the bytes written before the crash point are persisted (a torn
	// write), everything after is lost, and the process must "restart"
	// (open a fresh Cache) to continue.
	ErrCrashed = errors.New("diskcache: injected crash: filesystem is gone")
)

// FaultFS wraps another FS (the real one by default) with deterministic
// fault injection. All knobs are safe for concurrent use; counters make
// assertions on how often each fault fired possible.
type FaultFS struct {
	inner FS

	mu          sync.Mutex
	writeBudget int64 // bytes still writable; -1 = unlimited
	crashAfter  int64 // bytes until the simulated crash; -1 = off
	crashed     bool
	readHook    func(path string, data []byte) ([]byte, error)

	writeFaults int64
	readFaults  int64
}

// NewFaultFS wraps inner (nil wraps the real filesystem) with no faults
// armed.
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OS()
	}
	return &FaultFS{inner: inner, writeBudget: -1, crashAfter: -1}
}

// SetWriteBudget arms ENOSPC: after n more bytes have been written, every
// further write fails with ErrNoSpace. Negative disarms.
func (f *FaultFS) SetWriteBudget(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeBudget = n
}

// CrashAfterBytes arms the torn-write crash: the write that crosses n
// cumulative bytes persists only its prefix up to the crash point, then
// the whole filesystem dies (every subsequent operation returns
// ErrCrashed) until Revive. Negative disarms.
func (f *FaultFS) CrashAfterBytes(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAfter = n
	f.crashed = false
}

// Revive clears the crashed state, simulating a process restart on the
// same (now healthy) disk.
func (f *FaultFS) Revive() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = false
	f.crashAfter = -1
}

// SetReadHook intercepts every ReadFile: the hook receives the path and
// the real bytes and returns what the caller should see (possibly
// bit-flipped) or an error (EIO). nil disarms.
func (f *FaultFS) SetReadHook(h func(path string, data []byte) ([]byte, error)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.readHook = h
}

// Faults reports how many injected write and read faults have fired.
func (f *FaultFS) Faults() (writes, reads int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writeFaults, f.readFaults
}

func (f *FaultFS) dead() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.dead(); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) ReadDir(path string) ([]fs.DirEntry, error) {
	if err := f.dead(); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(path)
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	if err := f.dead(); err != nil {
		return nil, err
	}
	data, err := f.inner.ReadFile(path)
	f.mu.Lock()
	hook := f.readHook
	f.mu.Unlock()
	if err != nil || hook == nil {
		return data, err
	}
	data, err = hook(path, data)
	if err != nil {
		f.mu.Lock()
		f.readFaults++
		f.mu.Unlock()
	}
	return data, err
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.dead(); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(path string) error {
	if err := f.dead(); err != nil {
		return err
	}
	return f.inner.Remove(path)
}

func (f *FaultFS) Create(path string) (File, error) {
	if err := f.dead(); err != nil {
		return nil, err
	}
	file, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

// faultFile meters every write against the armed faults.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	f := ff.fs
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return 0, ErrCrashed
	}
	if f.crashAfter >= 0 && int64(len(p)) > f.crashAfter {
		// Torn write: persist the prefix up to the crash point, then die.
		keep := f.crashAfter
		f.crashAfter = 0
		f.crashed = true
		f.writeFaults++
		f.mu.Unlock()
		if keep > 0 {
			ff.inner.Write(p[:keep]) // best effort; the "machine" is dying
		}
		ff.inner.Close()
		return int(keep), ErrCrashed
	}
	if f.crashAfter >= 0 {
		f.crashAfter -= int64(len(p))
	}
	if f.writeBudget >= 0 && int64(len(p)) > f.writeBudget {
		f.writeFaults++
		f.mu.Unlock()
		return 0, ErrNoSpace
	}
	if f.writeBudget >= 0 {
		f.writeBudget -= int64(len(p))
	}
	f.mu.Unlock()
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	if err := ff.fs.dead(); err != nil {
		return err
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error {
	// Close always reaches the real file so descriptors are never leaked,
	// even on a crashed filesystem.
	err := ff.inner.Close()
	if derr := ff.fs.dead(); derr != nil {
		return derr
	}
	return err
}
