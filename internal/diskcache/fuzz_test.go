package diskcache

import (
	"bytes"
	"testing"
)

// FuzzDiskEntryDecode is the corrupt-entry oracle: DecodeEntry over
// arbitrary bytes must never panic and must never return a wrong
// artifact. The only legal outcomes are an ErrCorrupt miss or a decode
// whose canonical re-encoding reproduces the input byte-for-byte — i.e.
// the input really was a well-formed entry for exactly that payload.
func FuzzDiskEntryDecode(f *testing.F) {
	k := keyOf("fuzz-seed")
	valid := EncodeEntry(3, k, []byte("seed payload"))
	f.Add(valid)
	f.Add(valid[:headerSize])
	f.Add(valid[:len(valid)-1])
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(bytes.Repeat([]byte{0xFF}, headerSize+40))
	flipped := bytes.Clone(valid)
	flipped[headerSize] ^= 0x01
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, key, payload, err := DecodeEntry(data)
		if err != nil {
			return // a miss/quarantine is always a legal outcome
		}
		if !bytes.Equal(EncodeEntry(kind, key, payload), data) {
			t.Fatalf("decode accepted bytes that are not the canonical encoding of its result: kind=%d key=%x payload=%q", kind, key[:4], payload)
		}
	})
}
