package sim

import (
	"testing"

	"ccmem/internal/ir"
)

const smokeSrc = `
global A 4 = i 10 20 30 40

func main() {
entry:
	r0 = loadi 0
	r1 = loadi 4
	f20 = loadf 0.0
	jmp loop
loop:
	r2 = cmplt r0, r1
	cbr r2, body, done
body:
	r3 = addr A, 0
	r4 = loadi 8
	r5 = mul r0, r4
	r6 = add r3, r5
	r7 = load r6
	r8 = call double(r7)
	emit r8
	r9 = loadi 1
	r0 = add r0, r9
	jmp loop
done:
	f21 = loadf 2.5
	f20 = fadd f20, f21
	femit f20
	ret
}

func double(r0) int {
entry:
	r1 = loadi 2
	r2 = mul r0, r1
	ret r2
}
`

func TestSmoke(t *testing.T) {
	p, err := ir.Parse(smokeSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.VerifyProgram(p, ir.VerifyOptions{}); err != nil {
		t.Fatal(err)
	}
	st, err := Run(p, "main", Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Value{IntValue(20), IntValue(40), IntValue(60), IntValue(80), FloatValue(2.5)}
	if !TracesEqual(st.Output, want) {
		t.Fatalf("output = %v, want %v", st.Output, want)
	}
	if st.Cycles <= st.Instrs {
		t.Fatalf("cycles %d should exceed instrs %d (memory ops cost 2)", st.Cycles, st.Instrs)
	}
	if st.PerFunc["double"].Calls != 4 {
		t.Fatalf("double called %d times, want 4", st.PerFunc["double"].Calls)
	}
	// Round-trip through the printer.
	p2, err := ir.Parse(p.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, p.String())
	}
	st2, err := Run(p2, "main", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !TracesEqual(st.Output, st2.Output) {
		t.Fatal("round-tripped program produced different output")
	}
}
