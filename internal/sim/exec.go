package sim

import (
	"fmt"
	"math"

	"ccmem/internal/ir"
)

type execState struct {
	m      *Machine
	mem    []uint64
	ccm    []uint64
	st     *Stats
	frames []frame
	sp     int64           // next free stack byte
	limit  int64           // first byte past addressable memory
	done   <-chan struct{} // context cancellation; nil when not cancellable
	ret    Value
	hasRet bool
}

func (ex *execState) fault(fr *frame, format string, args ...any) error {
	return ex.faultKind(fr, FaultSemantic, format, args...)
}

func (ex *execState) faultKind(fr *frame, kind FaultKind, format string, args ...any) error {
	block := "?"
	if int(fr.pc) < len(fr.fn.blockOf) {
		block = fr.fn.blockOf[fr.pc]
	}
	return &Fault{
		Func:  fr.fn.f.Name,
		Block: block,
		Msg:   fmt.Sprintf(format, args...),
		Kind:  kind,
	}
}

// cancelled polls the context's done channel; block boundaries call it so
// a cancelled run unwinds within one basic block plus one instruction.
func (ex *execState) cancelled() bool {
	if ex.done == nil {
		return false
	}
	select {
	case <-ex.done:
		return true
	default:
		return false
	}
}

func (ex *execState) checkAddr(fr *frame, addr int64) error {
	if addr < ir.WordBytes || addr+ir.WordBytes > ex.limit {
		return ex.fault(fr, "memory access at %d outside [8, %d)", addr, ex.limit)
	}
	if addr%ir.WordBytes != 0 {
		return ex.fault(fr, "unaligned memory access at %d", addr)
	}
	return nil
}

// run drives the interpreter from an initial frame until the outermost
// return. It is a single flat loop over pre-resolved instructions; calls
// push frames, returns pop them.
func (ex *execState) run(f0 frame) error {
	cfg := &ex.m.cfg
	st := ex.st
	ex.frames = append(ex.frames, f0)
	steps := int64(0)

	for len(ex.frames) > 0 {
		fr := &ex.frames[len(ex.frames)-1]
		code := fr.fn.code
		regs := fr.regs
		fstats := fr.fn.stats

	inner:
		for {
			if int(fr.pc) >= len(code) {
				return ex.faultAt(fr, "fell off the end of function")
			}
			in := &code[fr.pc]
			steps++
			if steps > cfg.MaxSteps {
				return ex.faultKind(fr, FaultLimit, "instruction budget exhausted (%d)", cfg.MaxSteps)
			}
			if cfg.Trace != nil && steps <= cfg.TraceLimit {
				fmt.Fprintf(cfg.Trace, "%s %s\t%s\n",
					fr.fn.f.Name, fr.fn.blockOf[fr.pc], fr.fn.f.FormatInstr(fr.fn.src[fr.pc]))
			}
			st.Instrs++
			fstats.Instrs++
			cost := 1
			isMem := false

			switch in.op {
			case ir.OpNop:
			case ir.OpLoadI:
				regs[in.dst] = uint64(in.imm)
			case ir.OpLoadF:
				regs[in.dst] = math.Float64bits(in.fimm)

			case ir.OpAdd:
				regs[in.dst] = uint64(int64(regs[in.a0]) + int64(regs[in.a1]))
			case ir.OpSub:
				regs[in.dst] = uint64(int64(regs[in.a0]) - int64(regs[in.a1]))
			case ir.OpMul:
				regs[in.dst] = uint64(int64(regs[in.a0]) * int64(regs[in.a1]))
			case ir.OpDiv:
				d := int64(regs[in.a1])
				if d == 0 {
					return ex.faultAt(fr, "integer divide by zero")
				}
				regs[in.dst] = uint64(int64(regs[in.a0]) / d)
			case ir.OpRem:
				d := int64(regs[in.a1])
				if d == 0 {
					return ex.faultAt(fr, "integer remainder by zero")
				}
				regs[in.dst] = uint64(int64(regs[in.a0]) % d)
			case ir.OpAnd:
				regs[in.dst] = regs[in.a0] & regs[in.a1]
			case ir.OpOr:
				regs[in.dst] = regs[in.a0] | regs[in.a1]
			case ir.OpXor:
				regs[in.dst] = regs[in.a0] ^ regs[in.a1]
			case ir.OpShl:
				regs[in.dst] = uint64(int64(regs[in.a0]) << (regs[in.a1] & 63))
			case ir.OpShr:
				regs[in.dst] = uint64(int64(regs[in.a0]) >> (regs[in.a1] & 63))
			case ir.OpNeg:
				regs[in.dst] = uint64(-int64(regs[in.a0]))
			case ir.OpNot:
				regs[in.dst] = ^regs[in.a0]

			case ir.OpCmpLT:
				regs[in.dst] = b2w(int64(regs[in.a0]) < int64(regs[in.a1]))
			case ir.OpCmpLE:
				regs[in.dst] = b2w(int64(regs[in.a0]) <= int64(regs[in.a1]))
			case ir.OpCmpGT:
				regs[in.dst] = b2w(int64(regs[in.a0]) > int64(regs[in.a1]))
			case ir.OpCmpGE:
				regs[in.dst] = b2w(int64(regs[in.a0]) >= int64(regs[in.a1]))
			case ir.OpCmpEQ:
				regs[in.dst] = b2w(regs[in.a0] == regs[in.a1])
			case ir.OpCmpNE:
				regs[in.dst] = b2w(regs[in.a0] != regs[in.a1])

			case ir.OpFAdd:
				regs[in.dst] = math.Float64bits(f64(regs[in.a0]) + f64(regs[in.a1]))
			case ir.OpFSub:
				regs[in.dst] = math.Float64bits(f64(regs[in.a0]) - f64(regs[in.a1]))
			case ir.OpFMul:
				regs[in.dst] = math.Float64bits(f64(regs[in.a0]) * f64(regs[in.a1]))
			case ir.OpFDiv:
				regs[in.dst] = math.Float64bits(f64(regs[in.a0]) / f64(regs[in.a1]))
			case ir.OpFNeg:
				regs[in.dst] = math.Float64bits(-f64(regs[in.a0]))
			case ir.OpFAbs:
				regs[in.dst] = math.Float64bits(math.Abs(f64(regs[in.a0])))
			case ir.OpFSqrt:
				regs[in.dst] = math.Float64bits(math.Sqrt(f64(regs[in.a0])))

			case ir.OpFCmpLT:
				regs[in.dst] = b2w(f64(regs[in.a0]) < f64(regs[in.a1]))
			case ir.OpFCmpLE:
				regs[in.dst] = b2w(f64(regs[in.a0]) <= f64(regs[in.a1]))
			case ir.OpFCmpGT:
				regs[in.dst] = b2w(f64(regs[in.a0]) > f64(regs[in.a1]))
			case ir.OpFCmpGE:
				regs[in.dst] = b2w(f64(regs[in.a0]) >= f64(regs[in.a1]))
			case ir.OpFCmpEQ:
				regs[in.dst] = b2w(f64(regs[in.a0]) == f64(regs[in.a1]))
			case ir.OpFCmpNE:
				regs[in.dst] = b2w(f64(regs[in.a0]) != f64(regs[in.a1]))

			case ir.OpI2F:
				regs[in.dst] = math.Float64bits(float64(int64(regs[in.a0])))
			case ir.OpF2I:
				regs[in.dst] = uint64(truncF2I(f64(regs[in.a0])))

			case ir.OpCopy, ir.OpFCopy:
				regs[in.dst] = regs[in.a0]

			case ir.OpAddr:
				regs[in.dst] = uint64(in.imm) // absolute, pre-resolved

			case ir.OpLoad, ir.OpFLoad:
				addr := int64(regs[in.a0])
				if err := ex.checkAddr(fr, addr); err != nil {
					return err
				}
				regs[in.dst] = ex.mem[addr/ir.WordBytes]
				cost, isMem = ex.memCost(addr, false), true
				st.OrdinaryLoads++
			case ir.OpLoadAI, ir.OpFLoadAI:
				addr := int64(regs[in.a0]) + in.imm
				if err := ex.checkAddr(fr, addr); err != nil {
					return err
				}
				regs[in.dst] = ex.mem[addr/ir.WordBytes]
				cost, isMem = ex.memCost(addr, false), true
				st.OrdinaryLoads++
			case ir.OpStore, ir.OpFStore:
				addr := int64(regs[in.a1])
				if err := ex.checkAddr(fr, addr); err != nil {
					return err
				}
				ex.mem[addr/ir.WordBytes] = regs[in.a0]
				cost, isMem = ex.memCost(addr, true), true
				st.OrdinaryStores++
			case ir.OpStoreAI, ir.OpFStoreAI:
				addr := int64(regs[in.a1]) + in.imm
				if err := ex.checkAddr(fr, addr); err != nil {
					return err
				}
				ex.mem[addr/ir.WordBytes] = regs[in.a0]
				cost, isMem = ex.memCost(addr, true), true
				st.OrdinaryStores++

			case ir.OpSpill, ir.OpFSpill:
				addr := fr.base + in.imm
				if err := ex.checkAddr(fr, addr); err != nil {
					return err
				}
				ex.mem[addr/ir.WordBytes] = regs[in.a0]
				cost, isMem = ex.memCost(addr, true), true
				st.SpillStores++
			case ir.OpRestore, ir.OpFRestore:
				addr := fr.base + in.imm
				if err := ex.checkAddr(fr, addr); err != nil {
					return err
				}
				regs[in.dst] = ex.mem[addr/ir.WordBytes]
				cost, isMem = ex.memCost(addr, false), true
				st.SpillLoads++

			case ir.OpCCMSpill, ir.OpCCMFSpill:
				slot, err := ex.ccmSlot(fr, in.imm)
				if err != nil {
					return err
				}
				ex.ccm[slot] = regs[in.a0]
				cost, isMem = cfg.CCMCost, true
				st.CCMOps++
				st.CCMSpills++
			case ir.OpCCMRestore, ir.OpCCMFRestore:
				slot, err := ex.ccmSlot(fr, in.imm)
				if err != nil {
					return err
				}
				regs[in.dst] = ex.ccm[slot]
				cost, isMem = cfg.CCMCost, true
				st.CCMRestores++
				st.CCMOps++

			case ir.OpJmp:
				if ex.cancelled() {
					return ex.faultKind(fr, FaultCancelled, "execution cancelled")
				}
				st.Cycles++
				fstats.Cycles++
				fr.pc = in.t0
				continue inner
			case ir.OpCBr:
				if ex.cancelled() {
					return ex.faultKind(fr, FaultCancelled, "execution cancelled")
				}
				st.Cycles++
				fstats.Cycles++
				if regs[in.a0] != 0 {
					fr.pc = in.t0
				} else {
					fr.pc = in.t1
				}
				continue inner

			case ir.OpCall:
				if ex.cancelled() {
					return ex.faultKind(fr, FaultCancelled, "execution cancelled")
				}
				st.Cycles++
				fstats.Cycles++
				callee := in.callee
				if len(ex.frames) >= cfg.MaxDepth {
					return ex.faultKind(fr, FaultLimit, "call depth limit %d exceeded", cfg.MaxDepth)
				}
				if ex.sp+callee.frameBytes > ex.limit {
					return ex.faultKind(fr, FaultLimit, "stack overflow: %d bytes needed", callee.frameBytes)
				}
				nf := frame{
					fn:     callee,
					regs:   make([]uint64, callee.nregs),
					base:   ex.sp,
					retDst: in.dst,
				}
				ex.sp += callee.frameBytes
				for i, p := range callee.f.Params {
					nf.regs[p] = regs[in.args[i]]
				}
				callee.stats.Calls++
				fr.pc++
				ex.frames = append(ex.frames, nf)
				break inner

			case ir.OpRet:
				st.Cycles++
				fstats.Cycles++
				var rv uint64
				hasRV := in.a0 != ir.NoReg
				if hasRV {
					rv = regs[in.a0]
				}
				ex.sp = fr.base
				retDst := fr.retDst
				ex.frames = ex.frames[:len(ex.frames)-1]
				if len(ex.frames) == 0 {
					if hasRV {
						ex.ret = Value{IsFloat: fr.fn.f.RetClass == ir.ClassFloat, Bits: rv}
						ex.hasRet = true
					}
					return nil
				}
				if retDst != ir.NoReg {
					if !hasRV {
						return ex.faultAt(fr, "void return into a result register")
					}
					caller := &ex.frames[len(ex.frames)-1]
					caller.regs[retDst] = rv
				}
				break inner

			case ir.OpEmit:
				st.Output = append(st.Output, Value{Bits: regs[in.a0]})
			case ir.OpFEmit:
				st.Output = append(st.Output, Value{IsFloat: true, Bits: regs[in.a0]})

			default:
				return ex.faultAt(fr, "unexecutable opcode %s", in.op)
			}

			st.Cycles += int64(cost)
			fstats.Cycles += int64(cost)
			if isMem {
				st.MemOpCycles += int64(cost)
				fstats.MemOpCycles += int64(cost)
				if !in.op.IsCCMOp() {
					st.MainMemOps++
				}
			}
			fr.pc++
		}
	}
	return nil
}

func (ex *execState) faultAt(fr *frame, format string, args ...any) error {
	return ex.fault(fr, format, args...)
}

func (ex *execState) memCost(addr int64, store bool) int {
	if ex.m.cfg.Memory != nil {
		return ex.m.cfg.Memory.Access(addr, store)
	}
	return ex.m.cfg.MemCost
}

func (ex *execState) ccmSlot(fr *frame, off int64) (int64, error) {
	eff := ex.m.cfg.CCMBase + off
	if ex.ccm == nil {
		return 0, ex.fault(fr, "CCM access at %d but no CCM configured", off)
	}
	if eff < 0 || eff+ir.WordBytes > ex.m.cfg.CCMBytes {
		return 0, ex.fault(fr, "CCM access at %d (base %d) outside %d-byte CCM",
			off, ex.m.cfg.CCMBase, ex.m.cfg.CCMBytes)
	}
	if eff%ir.WordBytes != 0 {
		return 0, ex.fault(fr, "unaligned CCM access at %d", eff)
	}
	return eff / ir.WordBytes, nil
}

func b2w(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func f64(bits uint64) float64 { return math.Float64frombits(bits) }

// truncF2I converts float to int with saturating, NaN-to-zero semantics so
// that behaviour is deterministic across pipeline stages.
func truncF2I(f float64) int64 {
	switch {
	case math.IsNaN(f):
		return 0
	case f >= math.MaxInt64:
		return math.MaxInt64
	case f <= math.MinInt64:
		return math.MinInt64
	default:
		return int64(f)
	}
}
