package sim

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"ccmem/internal/ir"
)

// mustParse builds a program from source for the fault tables.
func mustParse(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

// TestFaultPaths is the table-driven sweep over every structured fault the
// interpreter can raise, asserting the Fault's source attribution
// (Func/Block), message, and kind. A fault must never surface as a bare
// error or a panic: the differential oracle keys off Fault.Kind to tell a
// genuine semantic error from a resource limit.
func TestFaultPaths(t *testing.T) {
	cases := []struct {
		name      string
		src       string
		cfg       Config
		wantFunc  string
		wantBlock string
		wantMsg   string
		wantKind  FaultKind
	}{
		{
			name: "unaligned access",
			src: `func main() {
entry:
	r0 = loadi 12
	r1 = load r0
	ret
}
`,
			wantFunc:  "main",
			wantBlock: "entry",
			wantMsg:   "unaligned memory access at 12",
			wantKind:  FaultSemantic,
		},
		{
			name: "out of bounds low (trap page)",
			src: `func main() {
entry:
	r0 = loadi 0
	r1 = load r0
	ret
}
`,
			wantFunc:  "main",
			wantBlock: "entry",
			wantMsg:   "memory access at 0 outside",
			wantKind:  FaultSemantic,
		},
		{
			name: "out of bounds high",
			src: `func main() {
entry:
	r0 = loadi 1073741824
	r1 = load r0
	ret
}
`,
			wantFunc:  "main",
			wantBlock: "entry",
			wantMsg:   "outside",
			wantKind:  FaultSemantic,
		},
		{
			name: "divide by zero",
			src: `func main() {
entry:
	r0 = loadi 1
	r1 = loadi 0
	r2 = div r0, r1
	ret
}
`,
			wantFunc:  "main",
			wantBlock: "entry",
			wantMsg:   "integer divide by zero",
			wantKind:  FaultSemantic,
		},
		{
			name: "fuel exhausted",
			src: `func main() {
loop:
	jmp loop
}
`,
			cfg:       Config{MaxSteps: 100},
			wantFunc:  "main",
			wantBlock: "loop",
			wantMsg:   "instruction budget exhausted (100)",
			wantKind:  FaultLimit,
		},
		{
			name: "call depth exceeded",
			src: `func rec() {
entry:
	call rec()
	ret
}
func main() {
entry:
	call rec()
	ret
}
`,
			cfg:       Config{MaxDepth: 16},
			wantFunc:  "rec",
			wantBlock: "entry",
			wantMsg:   "call depth limit 16 exceeded",
			wantKind:  FaultLimit,
		},
		{
			name: "ccm access without ccm",
			src: `func main() {
entry:
	r0 = loadi 7
	ccmspill r0, 0
	ret
}
`,
			wantFunc:  "main",
			wantBlock: "entry",
			wantMsg:   "no CCM configured",
			wantKind:  FaultSemantic,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := mustParse(t, tc.src)
			_, err := Run(p, "main", tc.cfg)
			var f *Fault
			if !errors.As(err, &f) {
				t.Fatalf("got %v, want a *Fault", err)
			}
			if f.Func != tc.wantFunc {
				t.Errorf("Fault.Func = %q, want %q", f.Func, tc.wantFunc)
			}
			if f.Block != tc.wantBlock {
				t.Errorf("Fault.Block = %q, want %q", f.Block, tc.wantBlock)
			}
			if !strings.Contains(f.Msg, tc.wantMsg) {
				t.Errorf("Fault.Msg = %q, want it to contain %q", f.Msg, tc.wantMsg)
			}
			if f.Kind != tc.wantKind {
				t.Errorf("Fault.Kind = %v, want %v", f.Kind, tc.wantKind)
			}
		})
	}
}

// TestRunContextCancellation: a pre-cancelled context stops the run at the
// first block boundary with a structured cancellation fault — no hang, no
// partial results treated as success.
func TestRunContextCancellation(t *testing.T) {
	p := mustParse(t, `func main() {
loop:
	jmp loop
}
`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := func() (*Stats, error) {
		m, err := New(p, Config{})
		if err != nil {
			t.Fatal(err)
		}
		return m.RunContext(ctx, "main")
	}()
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("got %v, want a *Fault", err)
	}
	if f.Kind != FaultCancelled {
		t.Errorf("Fault.Kind = %v, want FaultCancelled", f.Kind)
	}
	if f.Func != "main" || f.Block != "loop" {
		t.Errorf("cancellation fault misattributed: func=%q block=%q", f.Func, f.Block)
	}
}

// TestRunContextDeadline: a nonterminating program under a deadline
// context unwinds promptly instead of burning its full 500M-step default
// fuel — the "nonterminating candidate becomes a structured fault, never a
// hung worker" guarantee the oracle relies on.
func TestRunContextDeadline(t *testing.T) {
	p := mustParse(t, `func main() {
loop:
	jmp loop
}
`)
	m, err := New(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = m.RunContext(ctx, "main")
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultCancelled {
		t.Fatalf("got %v, want a FaultCancelled *Fault", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}

// TestRunContextClean: a background context adds no fault to a program
// that terminates normally, and Run remains RunContext(Background).
func TestRunContextClean(t *testing.T) {
	p := mustParse(t, `func main() {
entry:
	r0 = loadi 42
	emit r0
	ret
}
`)
	m, err := New(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.RunContext(context.Background(), "main")
	if err != nil {
		t.Fatalf("clean run faulted: %v", err)
	}
	if len(st.Output) != 1 || st.Output[0].Int() != 42 {
		t.Errorf("output = %v, want [42]", st.Output)
	}
}
