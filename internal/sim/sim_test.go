package sim

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"ccmem/internal/ir"
)

// evalInt runs a two-operand integer op on constants and returns the
// emitted result.
func evalInt(t *testing.T, op string, a, b int64) int64 {
	t.Helper()
	src := "func main() {\nentry:\n" +
		"\tr0 = loadi " + itoa(a) + "\n" +
		"\tr1 = loadi " + itoa(b) + "\n" +
		"\tr2 = " + op + " r0, r1\n" +
		"\temit r2\n\tret\n}\n"
	p, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(p, "main", Config{})
	if err != nil {
		t.Fatal(err)
	}
	return st.Output[0].Int()
}

func evalFloat(t *testing.T, op string, a, b float64) float64 {
	t.Helper()
	src := "func main() {\nentry:\n" +
		"\tf0 = loadf " + ftoa(a) + "\n" +
		"\tf1 = loadf " + ftoa(b) + "\n" +
		"\tf2 = " + op + " f0, f1\n" +
		"\tfemit f2\n\tret\n}\n"
	p, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(p, "main", Config{})
	if err != nil {
		t.Fatal(err)
	}
	return st.Output[0].Float()
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func TestIntOps(t *testing.T) {
	cases := []struct {
		op   string
		a, b int64
		want int64
	}{
		{"add", 3, 4, 7},
		{"add", math.MaxInt64, 1, math.MinInt64}, // wraparound
		{"sub", 3, 4, -1},
		{"mul", -3, 4, -12},
		{"div", 7, 2, 3},
		{"div", -7, 2, -3}, // Go truncated division
		{"rem", 7, 2, 1},
		{"rem", -7, 2, -1},
		{"and", 0b1100, 0b1010, 0b1000},
		{"or", 0b1100, 0b1010, 0b1110},
		{"xor", 0b1100, 0b1010, 0b0110},
		{"shl", 1, 10, 1024},
		{"shl", 1, 64, 1}, // shift amounts mask to 6 bits
		{"shl", 1, 65, 2},
		{"shr", -8, 1, -4}, // arithmetic shift
		{"shr", 1024, 10, 1},
		{"cmplt", 1, 2, 1},
		{"cmplt", 2, 2, 0},
		{"cmple", 2, 2, 1},
		{"cmpgt", 3, 2, 1},
		{"cmpge", 2, 3, 0},
		{"cmpeq", 5, 5, 1},
		{"cmpne", 5, 5, 0},
	}
	for _, c := range cases {
		if got := evalInt(t, c.op, c.a, c.b); got != c.want {
			t.Errorf("%s %d %d = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestFloatOps(t *testing.T) {
	cases := []struct {
		op   string
		a, b float64
		want float64
	}{
		{"fadd", 1.5, 2.25, 3.75},
		{"fsub", 1.5, 2.25, -0.75},
		{"fmul", 1.5, 2.0, 3.0},
		{"fdiv", 3.0, 2.0, 1.5},
	}
	for _, c := range cases {
		if got := evalFloat(t, c.op, c.a, c.b); got != c.want {
			t.Errorf("%s %v %v = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestUnaryAndConversions(t *testing.T) {
	src := `
func main() {
entry:
	r0 = loadi -5
	r1 = neg r0
	emit r1
	r2 = not r0
	emit r2
	f3 = loadf -2.25
	f4 = fneg f3
	femit f4
	f5 = fabs f3
	femit f5
	f6 = loadf 9.0
	f7 = fsqrt f6
	femit f7
	f8 = i2f r0
	femit f8
	f9 = loadf 3.99
	r10 = f2i f9
	emit r10
	f11 = loadf -3.99
	r12 = f2i f11
	emit r12
	ret
}
`
	p, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(p, "main", Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Value{
		IntValue(5), IntValue(4), // not(-5) = ^(-5) = 4
		FloatValue(2.25), FloatValue(2.25), FloatValue(3),
		FloatValue(-5), IntValue(3), IntValue(-3),
	}
	if !TracesEqual(st.Output, want) {
		t.Fatalf("got %v, want %v", st.Output, want)
	}
}

func TestF2ISaturation(t *testing.T) {
	src := `
func main() {
entry:
	f0 = loadf 1e300
	r1 = f2i f0
	emit r1
	f2 = loadf -1e300
	r3 = f2i f2
	emit r3
	f4 = loadf 0.0
	f5 = loadf 0.0
	f6 = fdiv f4, f5
	r7 = f2i f6
	emit r7
	ret
}
`
	p, _ := ir.Parse(src)
	st, err := Run(p, "main", Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Value{IntValue(math.MaxInt64), IntValue(math.MinInt64), IntValue(0)}
	if !TracesEqual(st.Output, want) {
		t.Fatalf("got %v, want %v", st.Output, want)
	}
}

func TestFaults(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"div0", "func main() {\nentry:\n\tr0 = loadi 1\n\tr1 = loadi 0\n\tr2 = div r0, r1\n\temit r2\n\tret\n}", "divide by zero"},
		{"rem0", "func main() {\nentry:\n\tr0 = loadi 1\n\tr1 = loadi 0\n\tr2 = rem r0, r1\n\temit r2\n\tret\n}", "remainder by zero"},
		{"nullload", "func main() {\nentry:\n\tr0 = loadi 0\n\tr1 = load r0\n\temit r1\n\tret\n}", "outside"},
		{"unaligned", "func main() {\nentry:\n\tr0 = loadi 12\n\tr1 = load r0\n\temit r1\n\tret\n}", "unaligned"},
		{"wildload", "func main() {\nentry:\n\tr0 = loadi 99999999\n\tr1 = load r0\n\temit r1\n\tret\n}", "outside"},
		{"ccmnone", "func main() {\nentry:\n\tr0 = loadi 1\n\tccmspill r0, 0\n\tret\n}", "no CCM configured"},
		{"infinite", "func main() {\nentry:\n\tjmp entry\n}", "budget"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, err := ir.Parse(c.src)
			if err != nil {
				t.Fatal(err)
			}
			cfg := Config{}
			if c.name == "infinite" {
				cfg.MaxSteps = 1000
			}
			_, err = Run(p, "main", cfg)
			if err == nil {
				t.Fatal("no fault")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("fault %q does not contain %q", err, c.want)
			}
			var f *Fault
			if !asFault(err, &f) {
				t.Fatalf("error is not a *Fault: %T", err)
			}
			if f.Func != "main" {
				t.Fatalf("fault attributed to %q", f.Func)
			}
		})
	}
}

func asFault(err error, out **Fault) bool {
	f, ok := err.(*Fault)
	if ok {
		*out = f
	}
	return ok
}

func TestCCMOutOfBounds(t *testing.T) {
	src := "func main() {\nentry:\n\tr0 = loadi 1\n\tccmspill r0, 512\n\tret\n}"
	p, _ := ir.Parse(src)
	_, err := Run(p, "main", Config{CCMBytes: 512})
	if err == nil || !strings.Contains(err.Error(), "outside 512-byte CCM") {
		t.Fatalf("err = %v", err)
	}
}

func TestCCMBaseIsolation(t *testing.T) {
	// Two "processes" (runs with different CCM bases) must not see each
	// other's slots; the base register offsets every access (paper §2.1).
	src := `
func main() {
entry:
	r0 = loadi 77
	ccmspill r0, 0
	r1 = ccmrestore 0
	emit r1
	ret
}
`
	p, _ := ir.Parse(src)
	st, err := Run(p, "main", Config{CCMBytes: 1024, CCMBase: 512})
	if err != nil {
		t.Fatal(err)
	}
	if st.Output[0].Int() != 77 {
		t.Fatal("CCM store/load through base failed")
	}
	// Base beyond capacity faults.
	_, err = Run(p, "main", Config{CCMBytes: 512, CCMBase: 512})
	if err == nil {
		t.Fatal("base beyond capacity accepted")
	}
}

func TestCostAccounting(t *testing.T) {
	src := `
global A 1
func main() {
entry:
	r0 = addr A, 0
	r1 = loadi 5
	store r1, r0
	r2 = load r0
	ccmspill r2, 0
	r3 = ccmrestore 0
	emit r3
	ret
}
`
	p, _ := ir.Parse(src)
	st, err := Run(p, "main", Config{CCMBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	// 8 instructions; store+load cost 2 each, ccm ops cost 1 each.
	if st.Instrs != 8 {
		t.Fatalf("instrs = %d", st.Instrs)
	}
	wantCycles := int64(6 + 2 + 2) // 6 single-cycle + 2 mem ops at 2
	if st.Cycles != wantCycles {
		t.Fatalf("cycles = %d, want %d", st.Cycles, wantCycles)
	}
	if st.MemOpCycles != 2+2+1+1 {
		t.Fatalf("mem-op cycles = %d, want 6", st.MemOpCycles)
	}
	if st.MainMemOps != 2 || st.CCMOps != 2 {
		t.Fatalf("op counts: main=%d ccm=%d", st.MainMemOps, st.CCMOps)
	}
	if st.OrdinaryLoads != 1 || st.OrdinaryStores != 1 {
		t.Fatalf("load/store counts wrong")
	}
	if st.CCMSpills != 1 || st.CCMRestores != 1 {
		t.Fatalf("ccm op counts wrong")
	}
	// Custom memory cost.
	st2, err := Run(p, "main", Config{CCMBytes: 64, MemCost: 10})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Cycles != 6+10+10 {
		t.Fatalf("cycles at MemCost=10: %d", st2.Cycles)
	}
}

func TestSpillOpsUseFrame(t *testing.T) {
	// Each activation gets a private frame: recursive spills must not
	// clobber the caller's slots.
	src := `
func main() {
entry:
	r0 = loadi 3
	r1 = call deep(r0)
	emit r1
	ret
}
func deep(r0) int {
entry:
	spill r0, 0
	r1 = loadi 0
	r2 = cmpeq r0, r1
	cbr r2, base, rec
base:
	r3 = restore 0
	ret r3
rec:
	r4 = loadi 1
	r5 = sub r0, r4
	r6 = call deep(r5)
	r7 = restore 0
	r8 = mul r7, r6
	r9 = add r8, r7
	ret r9
}
`
	p, _ := ir.Parse(src)
	st, err := Run(p, "main", Config{})
	if err != nil {
		t.Fatal(err)
	}
	// deep(0)=0; deep(1)=1*0+1=1; deep(2)=2*1+2=4; deep(3)=3*4+3=15.
	if st.Output[0].Int() != 15 {
		t.Fatalf("recursive frames broken: got %v", st.Output[0])
	}
	if st.PerFunc["deep"].Calls != 4 {
		t.Fatalf("deep called %d times", st.PerFunc["deep"].Calls)
	}
}

func TestCallDepthLimit(t *testing.T) {
	src := `
func main() {
entry:
	call loop()
	ret
}
func loop() {
entry:
	call loop()
	ret
}
`
	p, _ := ir.Parse(src)
	_, err := Run(p, "main", Config{MaxDepth: 50})
	if err == nil || !strings.Contains(err.Error(), "depth limit") {
		t.Fatalf("err = %v", err)
	}
}

func TestReturnValueAndGlobalsInit(t *testing.T) {
	src := `
global G 3 = i 11 22 33
func main() int {
entry:
	r0 = addr G, 8
	r1 = load r0
	r2 = loadai r0, 8
	r3 = add r1, r2
	ret r3
}
`
	p, _ := ir.Parse(src)
	st, err := Run(p, "main", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.HasRet || st.Ret.Int() != 55 {
		t.Fatalf("ret = %v (has=%v), want 55", st.Ret, st.HasRet)
	}
}

func TestArgumentsAndClassChecks(t *testing.T) {
	src := `
func main(r0, f1) int {
entry:
	r2 = f2i f1
	r3 = add r0, r2
	ret r3
}
`
	p, _ := ir.Parse(src)
	st, err := Run(p, "main", Config{}, IntValue(40), FloatValue(2.9))
	if err != nil {
		t.Fatal(err)
	}
	if st.Ret.Int() != 42 {
		t.Fatalf("ret = %v", st.Ret)
	}
	if _, err := Run(p, "main", Config{}, IntValue(1)); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := Run(p, "main", Config{}, FloatValue(1), IntValue(1)); err == nil {
		t.Fatal("class mismatch accepted")
	}
	if _, err := Run(p, "nosuch", Config{}); err == nil {
		t.Fatal("missing entry accepted")
	}
}

func TestMachineReuse(t *testing.T) {
	src := `
global G 1
func main() {
entry:
	r0 = addr G, 0
	r1 = load r0
	r2 = loadi 1
	r3 = add r1, r2
	store r3, r0
	emit r3
	ret
}
`
	p, _ := ir.Parse(src)
	m, err := New(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Memory is rebuilt per run: both runs must emit 1, not accumulate.
	for i := 0; i < 2; i++ {
		st, err := m.Run("main")
		if err != nil {
			t.Fatal(err)
		}
		if st.Output[0].Int() != 1 {
			t.Fatalf("run %d: emitted %v (state leaked across runs)", i, st.Output[0])
		}
	}
}

func TestPhiRejected(t *testing.T) {
	src := "func main() {\nentry:\n\tr0 = loadi 1\n\tjmp l\nl:\n\tr1 = phi r0, r1\n\tjmp l\n}"
	p, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(p, Config{}); err == nil || !strings.Contains(err.Error(), "phi") {
		t.Fatalf("err = %v", err)
	}
}

func TestValueHelpers(t *testing.T) {
	if IntValue(-3).Int() != -3 || IntValue(-3).String() != "-3" {
		t.Fatal("IntValue")
	}
	v := FloatValue(2.5)
	if v.Float() != 2.5 || !v.IsFloat || v.String() != "2.5" {
		t.Fatal("FloatValue")
	}
	if TracesEqual([]Value{IntValue(1)}, []Value{FloatValue(1)}) {
		t.Fatal("int and float values compare equal")
	}
	if !TracesEqual(nil, nil) || TracesEqual([]Value{IntValue(1)}, nil) {
		t.Fatal("TracesEqual lengths")
	}
}
