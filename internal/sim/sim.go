// Package sim executes ILOC programs on the paper's abstract machine and
// reports instrumented dynamic costs. It is the reproduction's stand-in
// for the paper's back-end, which translated ILOC to heavily instrumented
// C; the published numbers are instruction/cycle counters under the stated
// model, which an interpreter reproduces exactly (paper §4):
//
//   - single issue, one instruction per cycle;
//   - main-memory operations cost MemCost cycles (2 in the paper);
//   - every other instruction, including CCM accesses, costs 1 cycle;
//   - the CCM is a small random-access memory in a disjoint address space.
//
// "Cycles spent in memory operations" counts every load/store-class
// instruction at its cost, CCM operations included — the accounting that
// matches the paper's paired (total, memory) ratios.
package sim

import (
	"context"
	"fmt"
	"io"
	"math"

	"ccmem/internal/ir"
	"ccmem/internal/memsys"
)

// Value is one machine word plus its interpretation, used for the
// observable output trace (emit/femit).
type Value struct {
	IsFloat bool
	Bits    uint64
}

// IntValue wraps an integer word.
func IntValue(v int64) Value { return Value{Bits: uint64(v)} }

// FloatValue wraps a float word.
func FloatValue(v float64) Value { return Value{IsFloat: true, Bits: math.Float64bits(v)} }

// Int returns the word as an integer.
func (v Value) Int() int64 { return int64(v.Bits) }

// Float returns the word as a float.
func (v Value) Float() float64 { return math.Float64frombits(v.Bits) }

func (v Value) String() string {
	if v.IsFloat {
		return fmt.Sprintf("%g", v.Float())
	}
	return fmt.Sprintf("%d", v.Int())
}

// TracesEqual compares two output traces exactly (bit-level).
func TracesEqual(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Config parameterizes one run.
type Config struct {
	MemCost    int          // cycles per main-memory op; default 2
	CCMCost    int          // cycles per CCM op; default 1
	CCMBytes   int64        // CCM capacity; 0 means no CCM present
	CCMBase    int64        // per-process base offset into the CCM (§2.1)
	StackWords int          // stack region size in words; default 1<<16
	MaxSteps   int64        // dynamic instruction budget; default 500M
	MaxDepth   int          // call-depth limit; default 4096
	Memory     memsys.Model // optional pricing model for main memory

	// Trace, when non-nil, receives one line per executed instruction
	// ("func block\tinstruction") — a debugging aid; TraceLimit bounds the
	// number of lines (default 10000 when tracing).
	Trace      io.Writer
	TraceLimit int64

	// Err carries a configuration error from an option constructor that
	// has no error return of its own (e.g. a malformed cache config); New
	// reports it instead of running.
	Err error
}

func (c Config) withDefaults() Config {
	if c.MemCost == 0 {
		c.MemCost = 2
	}
	if c.CCMCost == 0 {
		c.CCMCost = 1
	}
	if c.StackWords == 0 {
		c.StackWords = 1 << 16
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 500_000_000
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 4096
	}
	if c.Trace != nil && c.TraceLimit == 0 {
		c.TraceLimit = 10000
	}
	return c
}

// FuncStats is the per-function exclusive cost attribution (the paper's
// Tables 2 and 3 report per-routine dynamic cycles).
type FuncStats struct {
	Calls       int64
	Instrs      int64
	Cycles      int64
	MemOpCycles int64
}

// Stats is the instrumented result of a run.
type Stats struct {
	Instrs      int64
	Cycles      int64
	MemOpCycles int64 // cycles in load/store-class ops, CCM included

	MainMemOps     int64
	CCMOps         int64
	SpillStores    int64 // heavyweight spill stores executed
	SpillLoads     int64 // heavyweight restores executed
	CCMSpills      int64
	CCMRestores    int64
	OrdinaryLoads  int64 // program loads (non-spill)
	OrdinaryStores int64

	PerFunc map[string]*FuncStats
	Output  []Value

	// Ret is the entry function's return value, if it has one.
	Ret    Value
	HasRet bool
}

// FaultKind classifies a runtime fault. The distinction matters to the
// differential-execution oracle (internal/oracle): two semantically
// identical programs must fault together or not at all, but a resource
// limit (fuel, call depth, cancellation) says nothing about semantics —
// a transformed program legitimately executes a different number of
// instructions, so limit faults are inconclusive rather than divergent.
type FaultKind int

const (
	// FaultSemantic is a genuine runtime error the program itself caused:
	// out-of-bounds or unaligned access, divide by zero, a bad return.
	FaultSemantic FaultKind = iota
	// FaultLimit is a resource bound imposed by the configuration: the
	// instruction budget (MaxSteps), the call-depth limit (MaxDepth), or
	// stack exhaustion.
	FaultLimit
	// FaultCancelled is a cooperative stop: the context passed to
	// RunContext was cancelled and the interpreter unwound at the next
	// block boundary.
	FaultCancelled
)

func (k FaultKind) String() string {
	switch k {
	case FaultSemantic:
		return "semantic"
	case FaultLimit:
		return "limit"
	case FaultCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Fault describes a runtime error with source context.
type Fault struct {
	Func  string
	Block string
	Msg   string
	Kind  FaultKind
}

func (f *Fault) Error() string {
	return fmt.Sprintf("sim: fault in %s (block %s): %s", f.Func, f.Block, f.Msg)
}

type rinstr struct {
	op     ir.Op
	dst    ir.Reg
	a0, a1 ir.Reg
	imm    int64
	fimm   float64
	t0, t1 int32
	args   []ir.Reg // call arguments
	callee *rfunc
}

type rfunc struct {
	f          *ir.Func
	code       []rinstr
	blockOf    []string    // diagnostic: instr index -> block label
	src        []*ir.Instr // diagnostic: instr index -> source instruction
	nregs      int
	frameBytes int64
	stats      *FuncStats
}

// Machine is a resolved program ready to run; resolving once lets tests
// and benchmarks execute many times without re-walking the IR.
type Machine struct {
	cfg        Config
	prog       *ir.Program
	funcs      map[string]*rfunc
	globalBase map[string]int64
	globalEnd  int64 // first byte past the global region
	memWords   int
}

// New resolves a program against a configuration. The program must be
// phi-free and structurally valid (run ir.VerifyProgram first).
func New(p *ir.Program, cfg Config) (*Machine, error) {
	if cfg.Err != nil {
		return nil, fmt.Errorf("sim: %w", cfg.Err)
	}
	cfg = cfg.withDefaults()
	if cfg.CCMBytes%ir.WordBytes != 0 || cfg.CCMBytes < 0 {
		return nil, fmt.Errorf("sim: CCMBytes %d must be a non-negative multiple of %d", cfg.CCMBytes, ir.WordBytes)
	}
	m := &Machine{cfg: cfg, prog: p, funcs: map[string]*rfunc{}, globalBase: map[string]int64{}}

	// Lay out globals from byte 8 upward (0 is the trap page).
	addr := int64(ir.WordBytes)
	for _, g := range p.Globals {
		m.globalBase[g.Name] = addr
		addr += g.Bytes()
	}
	m.globalEnd = addr
	m.memWords = int(addr/ir.WordBytes) + cfg.StackWords

	for _, f := range p.Funcs {
		rf := &rfunc{f: f, nregs: len(f.Regs), stats: &FuncStats{}}
		m.funcs[f.Name] = rf
	}
	for _, f := range p.Funcs {
		if err := m.resolveFunc(m.funcs[f.Name]); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (m *Machine) resolveFunc(rf *rfunc) error {
	f := rf.f
	blockStart := map[string]int32{}
	n := 0
	for _, b := range f.Blocks {
		blockStart[b.Name] = int32(n)
		n += len(b.Instrs)
	}
	rf.code = make([]rinstr, 0, n)
	rf.blockOf = make([]string, 0, n)
	maxSpill := int64(0)
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpPhi {
				return fmt.Errorf("sim: func %s: phi instructions cannot be executed", f.Name)
			}
			ri := rinstr{op: in.Op, dst: in.Dst, a0: ir.NoReg, a1: ir.NoReg, imm: in.Imm, fimm: in.FImm, t0: -1, t1: -1}
			switch in.Op {
			case ir.OpCall:
				callee, ok := m.funcs[in.Sym]
				if !ok {
					return fmt.Errorf("sim: func %s: call to unknown function %q", f.Name, in.Sym)
				}
				if len(in.Args) != len(callee.f.Params) {
					return fmt.Errorf("sim: func %s: call %s arity mismatch", f.Name, in.Sym)
				}
				ri.callee = callee
				ri.args = in.Args
			case ir.OpRet:
				if len(in.Args) == 1 {
					ri.a0 = in.Args[0]
				}
			case ir.OpJmp:
				t, ok := blockStart[in.Then]
				if !ok {
					return fmt.Errorf("sim: func %s: jmp to unknown label %q", f.Name, in.Then)
				}
				ri.t0 = t
			case ir.OpCBr:
				t, ok := blockStart[in.Then]
				if !ok {
					return fmt.Errorf("sim: func %s: cbr to unknown label %q", f.Name, in.Then)
				}
				e, ok := blockStart[in.Else]
				if !ok {
					return fmt.Errorf("sim: func %s: cbr to unknown label %q", f.Name, in.Else)
				}
				ri.a0, ri.t0, ri.t1 = in.Args[0], t, e
			case ir.OpAddr:
				base, ok := m.globalBase[in.Sym]
				if !ok {
					return fmt.Errorf("sim: func %s: addr of unknown global %q", f.Name, in.Sym)
				}
				ri.imm = base + in.Imm // pre-resolve to an absolute address
			default:
				if len(in.Args) > 0 {
					ri.a0 = in.Args[0]
				}
				if len(in.Args) > 1 {
					ri.a1 = in.Args[1]
				}
			}
			switch in.Op {
			case ir.OpSpill, ir.OpFSpill, ir.OpRestore, ir.OpFRestore:
				if in.Imm+ir.WordBytes > maxSpill {
					maxSpill = in.Imm + ir.WordBytes
				}
			}
			rf.code = append(rf.code, ri)
			rf.blockOf = append(rf.blockOf, b.Name)
			rf.src = append(rf.src, in)
		}
	}
	rf.frameBytes = f.FrameBytes
	if maxSpill > rf.frameBytes {
		rf.frameBytes = maxSpill
	}
	return nil
}

type frame struct {
	fn     *rfunc
	pc     int32
	regs   []uint64
	base   int64 // activation-record base (byte address)
	retDst ir.Reg
}

// Run executes entry(args...) and returns the instrumented statistics.
func (m *Machine) Run(entry string, args ...Value) (*Stats, error) {
	return m.RunContext(context.Background(), entry, args...)
}

// RunContext is Run with cooperative cancellation: the context is checked
// at block boundaries (branches and calls), so a nonterminating program —
// straight-line stretches are already bounded by MaxSteps — unwinds into
// a structured *Fault of kind FaultCancelled instead of hanging its
// goroutine. Combined with MaxSteps and MaxDepth this makes every
// execution bounded: fuel, depth, and wall-clock (via a deadline context).
func (m *Machine) RunContext(ctx context.Context, entry string, args ...Value) (*Stats, error) {
	rf, ok := m.funcs[entry]
	if !ok {
		return nil, fmt.Errorf("sim: no function %q", entry)
	}
	if len(args) != len(rf.f.Params) {
		return nil, fmt.Errorf("sim: %s wants %d arguments, got %d", entry, len(rf.f.Params), len(args))
	}
	for _, frf := range m.funcs {
		*frf.stats = FuncStats{}
	}
	if m.cfg.Memory != nil {
		m.cfg.Memory.Reset()
	}

	mem := make([]uint64, m.memWords)
	a := int64(ir.WordBytes) / ir.WordBytes
	for _, g := range m.prog.Globals {
		copy(mem[a:a+int64(g.Words)], g.Init)
		a += int64(g.Words)
	}
	var ccm []uint64
	if m.cfg.CCMBytes > 0 {
		ccm = make([]uint64, m.cfg.CCMBytes/ir.WordBytes)
	}

	st := &Stats{PerFunc: map[string]*FuncStats{}}
	for name, frf := range m.funcs {
		st.PerFunc[name] = frf.stats
	}

	ex := &execState{
		m:     m,
		mem:   mem,
		ccm:   ccm,
		st:    st,
		sp:    m.globalEnd,
		limit: int64(m.memWords) * ir.WordBytes,
		done:  ctx.Done(),
	}
	f0 := frame{fn: rf, regs: make([]uint64, rf.nregs), base: ex.sp, retDst: ir.NoReg}
	ex.sp += rf.frameBytes
	for i, p := range rf.f.Params {
		if rf.f.RegClass(p) == ir.ClassFloat != args[i].IsFloat {
			return nil, fmt.Errorf("sim: %s argument %d class mismatch", entry, i)
		}
		f0.regs[p] = args[i].Bits
	}
	rf.stats.Calls++
	if err := ex.run(f0); err != nil {
		return st, err
	}
	if ex.hasRet {
		st.Ret, st.HasRet = ex.ret, true
	}
	return st, nil
}

// Run resolves and executes in one step (convenience for tests).
func Run(p *ir.Program, entry string, cfg Config, args ...Value) (*Stats, error) {
	m, err := New(p, cfg)
	if err != nil {
		return nil, err
	}
	return m.Run(entry, args...)
}
