package callgraph

import (
	"testing"

	"ccmem/internal/ir"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	p, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return New(p)
}

const towerSrc = `
func main() {
entry:
	call a()
	call b()
	ret
}
func a() {
entry:
	call c()
	ret
}
func b() {
entry:
	call c()
	ret
}
func c() {
entry:
	ret
}
`

func TestCalleesAndCallers(t *testing.T) {
	g := build(t, towerSrc)
	if len(g.Callees["main"]) != 2 {
		t.Fatalf("main callees = %v", g.Callees["main"])
	}
	if len(g.Callers["c"]) != 2 {
		t.Fatalf("c callers = %v", g.Callers["c"])
	}
	if len(g.Callees["c"]) != 0 {
		t.Fatal("leaf has callees")
	}
}

func TestCalleesDeduplicated(t *testing.T) {
	g := build(t, `
func main() {
entry:
	call f()
	call f()
	call f()
	ret
}
func f() {
entry:
	ret
}
`)
	if len(g.Callees["main"]) != 1 {
		t.Fatalf("callees = %v", g.Callees["main"])
	}
}

func TestPostOrderBottomUp(t *testing.T) {
	g := build(t, towerSrc)
	order := g.PostOrder()
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	for caller, callees := range g.Callees {
		for _, callee := range callees {
			if pos[callee] >= pos[caller] {
				t.Fatalf("callee %s after caller %s in %v", callee, caller, order)
			}
		}
	}
}

func TestSelfRecursion(t *testing.T) {
	g := build(t, `
func main() {
entry:
	call f()
	ret
}
func f() {
entry:
	call f()
	ret
}
`)
	if !g.InCycle("f") {
		t.Fatal("self-recursive f not in cycle")
	}
	if g.InCycle("main") {
		t.Fatal("main wrongly in cycle")
	}
}

func TestMutualRecursionSCC(t *testing.T) {
	g := build(t, `
func main() {
entry:
	call even()
	ret
}
func even() {
entry:
	call odd()
	ret
}
func odd() {
entry:
	call even()
	ret
}
func leaf() {
entry:
	ret
}
`)
	if !g.InCycle("even") || !g.InCycle("odd") {
		t.Fatal("mutual recursion not detected")
	}
	if !g.SameSCC("even", "odd") {
		t.Fatal("even/odd not in one SCC")
	}
	if g.SameSCC("even", "main") || g.InCycle("leaf") {
		t.Fatal("SCC leaked")
	}
	// PostOrder still covers everything exactly once.
	order := g.PostOrder()
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	seen := map[string]bool{}
	for _, n := range order {
		if seen[n] {
			t.Fatalf("duplicate %s in order", n)
		}
		seen[n] = true
	}
}

func TestUnreachableFunctionStillOrdered(t *testing.T) {
	g := build(t, `
func main() {
entry:
	ret
}
func orphan() {
entry:
	ret
}
`)
	if len(g.PostOrder()) != 2 {
		t.Fatal("orphan missing from post order")
	}
}
