// Package callgraph constructs the program call graph, finds its strongly
// connected components (recursion cycles), and produces the bottom-up
// (post-order) processing order the paper's interprocedural post-pass CCM
// allocator requires: "it processes all routines reachable from procedure
// p before considering p", with call-graph cycles handled conservatively.
package callgraph

import (
	"ccmem/internal/ir"
)

// Graph is the call graph of a program.
type Graph struct {
	Prog *ir.Program

	// Callees maps a function to its distinct callees (order of first
	// appearance, deterministic).
	Callees map[string][]string

	// Callers is the reverse adjacency.
	Callers map[string][]string

	scc     map[string]int // function -> SCC id
	sccSize map[int]int
	selfRec map[string]bool
}

// New builds the call graph. Calls to unknown functions are ignored here;
// ir.VerifyProgram reports them.
func New(p *ir.Program) *Graph {
	g := &Graph{
		Prog:    p,
		Callees: map[string][]string{},
		Callers: map[string][]string{},
		selfRec: map[string]bool{},
	}
	for _, f := range p.Funcs {
		seen := map[string]bool{}
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op != ir.OpCall || p.Func(in.Sym) == nil {
					continue
				}
				if in.Sym == f.Name {
					g.selfRec[f.Name] = true
				}
				if !seen[in.Sym] {
					seen[in.Sym] = true
					g.Callees[f.Name] = append(g.Callees[f.Name], in.Sym)
					g.Callers[in.Sym] = append(g.Callers[in.Sym], f.Name)
				}
			}
		}
	}
	g.computeSCCs()
	return g
}

// computeSCCs runs Tarjan's algorithm over the call graph.
func (g *Graph) computeSCCs() {
	g.scc = map[string]int{}
	g.sccSize = map[int]int{}
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	comp := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range g.Callees[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			size := 0
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				g.scc[w] = comp
				size++
				if w == v {
					break
				}
			}
			g.sccSize[comp] = size
			comp++
		}
	}
	for _, f := range g.Prog.Funcs {
		if _, seen := index[f.Name]; !seen {
			strongconnect(f.Name)
		}
	}
}

// InCycle reports whether f participates in recursion: its SCC has more
// than one member, or it calls itself.
func (g *Graph) InCycle(f string) bool {
	return g.sccSize[g.scc[f]] > 1 || g.selfRec[f]
}

// SameSCC reports whether two functions share a strongly connected
// component.
func (g *Graph) SameSCC(a, b string) bool { return g.scc[a] == g.scc[b] }

// PostOrder returns every function so that (outside of cycles) all callees
// of f appear before f — the bottom-up walk of the paper's Figure 1.
func (g *Graph) PostOrder() []string {
	visited := map[string]bool{}
	var order []string
	var visit func(v string)
	visit = func(v string) {
		if visited[v] {
			return
		}
		visited[v] = true
		for _, w := range g.Callees[v] {
			visit(w)
		}
		order = append(order, v)
	}
	for _, f := range g.Prog.Funcs {
		visit(f.Name)
	}
	return order
}
