// Package intgraph provides the symmetric bit-matrix used as the
// membership half of Chaitin-style interference graphs (adjacency lists
// provide the iteration half). It is shared by the register allocator and
// by the CCM allocators in internal/core.
package intgraph

// Matrix is a symmetric boolean matrix over n nodes, stored as a packed
// lower triangle.
type Matrix struct {
	n    int
	bits []uint64
}

// NewMatrix returns an empty n×n symmetric matrix.
func NewMatrix(n int) *Matrix {
	total := n * (n + 1) / 2
	return &Matrix{n: n, bits: make([]uint64, (total+63)/64)}
}

// Reset reinitializes m as an empty n×n matrix, reusing the backing
// storage when it is large enough. The allocators rebuild their
// interference matrices every round; Reset lets a pooled matrix absorb
// those rebuilds without reallocating.
func (m *Matrix) Reset(n int) {
	total := n * (n + 1) / 2
	words := (total + 63) / 64
	if cap(m.bits) < words {
		m.bits = make([]uint64, words)
	} else {
		m.bits = m.bits[:words]
		for i := range m.bits {
			m.bits[i] = 0
		}
	}
	m.n = n
}

// Len returns the node count.
func (m *Matrix) Len() int { return m.n }

func (m *Matrix) index(a, b int) int {
	if a < b {
		a, b = b, a
	}
	return a*(a+1)/2 + b
}

// Set marks (a, b) as adjacent.
func (m *Matrix) Set(a, b int) {
	i := m.index(a, b)
	m.bits[i/64] |= 1 << uint(i%64)
}

// Has reports whether (a, b) are adjacent.
func (m *Matrix) Has(a, b int) bool {
	i := m.index(a, b)
	return m.bits[i/64]&(1<<uint(i%64)) != 0
}
