package intgraph

import (
	"math/rand"
	"testing"
)

func TestEmpty(t *testing.T) {
	m := NewMatrix(0)
	if m.Len() != 0 {
		t.Fatal("len of empty matrix")
	}
}

func TestSymmetry(t *testing.T) {
	m := NewMatrix(10)
	m.Set(2, 7)
	if !m.Has(2, 7) || !m.Has(7, 2) {
		t.Fatal("edge not symmetric")
	}
	if m.Has(2, 6) || m.Has(7, 7) {
		t.Fatal("phantom edges")
	}
}

func TestDiagonal(t *testing.T) {
	m := NewMatrix(4)
	m.Set(3, 3)
	if !m.Has(3, 3) {
		t.Fatal("self edge lost")
	}
	if m.Has(2, 2) {
		t.Fatal("wrong self edge")
	}
}

// Property: the packed triangle agrees with a reference map under random
// insertions.
func TestAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const n = 73
	m := NewMatrix(n)
	ref := map[[2]int]bool{}
	key := func(a, b int) [2]int {
		if a < b {
			a, b = b, a
		}
		return [2]int{a, b}
	}
	for k := 0; k < 2000; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		m.Set(a, b)
		ref[key(a, b)] = true
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if m.Has(a, b) != ref[key(a, b)] {
				t.Fatalf("mismatch at (%d,%d)", a, b)
			}
		}
	}
}
