package core

import (
	"fmt"

	"ccmem/internal/callgraph"
	"ccmem/internal/ir"
)

// PostPassOptions configure the stand-alone CCM allocator of paper §3.1.
type PostPassOptions struct {
	// CCMBytes is the capacity of the compiler-controlled memory.
	CCMBytes int64

	// Interprocedural enables the call-graph-directed variant: functions
	// are processed bottom-up, values live across a call may use CCM above
	// the callee's high-water mark, and call-graph cycles conservatively
	// count as using the full CCM. When false, the allocator "only uses
	// CCM for values that are not live across calls".
	Interprocedural bool

	// Skip excludes the named functions from promotion: their spill code
	// is left on the heavyweight spill-to-RAM path untouched. The
	// pipeline's degradation ladder uses this to quarantine functions
	// that faulted during allocation. Skipped functions still take part
	// in the call-graph walk so their callers see a correct (zero-CCM)
	// high-water mark.
	Skip map[string]bool

	// OnFunc, when non-nil, is called with each function's name just
	// before its spills are analyzed and rewritten. The pipeline uses it
	// to attribute a mid-walk fault to the function being processed.
	OnFunc func(name string)
}

// FuncPromotion reports per-function promotion results.
type FuncPromotion struct {
	Webs        int   // spill-location live ranges found
	Promoted    int   // webs redirected into the CCM
	Heavyweight int   // webs left in main memory
	CCMBytes    int64 // high-water of this function's own CCM use
	EffectiveHW int64 // including everything reachable from it
	InCycle     bool
}

// PostPassResult aggregates a whole-program post-pass run.
type PostPassResult struct {
	PerFunc map[string]*FuncPromotion
}

// TotalPromoted sums promoted webs over all functions.
func (r *PostPassResult) TotalPromoted() int {
	n := 0
	for _, fp := range r.PerFunc {
		n += fp.Promoted
	}
	return n
}

// PostPass runs the stand-alone CCM allocator over every allocated
// function of p, redirecting a safe, profitable subset of heavyweight
// spills into the CCM (paper Figure 1):
//
//	Calculate the call graph; conservatively mark subroutines in
//	call-graph cycles as using all of CCM.
//	For each subroutine in a postorder walk over the call graph:
//	  rewrite spill instructions with symbolic names; liveness over spill
//	  locations; SSA on the spill locations; live-range names;
//	  interference graph; costs; allocate live ranges to CCM by coloring;
//	  rewrite spill instructions to spill to CCM; record CCM used.
//
// The allocator generates no new spills: a value that does not fit keeps
// its original heavyweight spill code ("conservative, but safe").
func PostPass(p *ir.Program, opts PostPassOptions) (*PostPassResult, error) {
	if opts.CCMBytes <= 0 || opts.CCMBytes%ir.WordBytes != 0 {
		return nil, fmt.Errorf("core: PostPass needs a positive word-aligned CCMBytes, got %d", opts.CCMBytes)
	}
	slots := int(opts.CCMBytes / ir.WordBytes)

	cg := callgraph.New(p)
	order := cg.PostOrder()
	highWater := map[string]int64{} // effective high water, bytes

	res := &PostPassResult{PerFunc: map[string]*FuncPromotion{}}
	for _, name := range order {
		f := p.Func(name)
		if !f.Allocated {
			return nil, fmt.Errorf("core: PostPass requires allocated code; %s is not", name)
		}
		if hasCCMOps(f) {
			return nil, fmt.Errorf("core: %s already contains CCM operations", name)
		}
		inCycle := cg.InCycle(name)
		if opts.Skip[name] {
			// Quarantined: no promotion, no CCM of its own; callers still
			// need its effective high water (its callees' CCM use).
			hw := int64(0)
			if inCycle {
				hw = opts.CCMBytes
			} else {
				for _, callee := range cg.Callees[name] {
					if h, ok := highWater[callee]; ok && h > hw {
						hw = h
					}
				}
			}
			highWater[name] = hw
			res.PerFunc[name] = &FuncPromotion{InCycle: inCycle, EffectiveHW: hw}
			continue
		}
		if opts.OnFunc != nil {
			opts.OnFunc(name)
		}

		a, err := analyzeSpills(f)
		if err != nil {
			return nil, err
		}
		fp := &FuncPromotion{Webs: len(a.webs), InCycle: inCycle}
		res.PerFunc[name] = fp

		// Per-web base slot: the "beginning" of its CCM search space.
		base := make([]int, len(a.webs))
		eligible := make([]bool, len(a.webs))
		for _, w := range a.webs {
			if w.unsafe {
				continue
			}
			if !w.liveAcrossCall {
				eligible[w.id] = true
				continue
			}
			if !opts.Interprocedural {
				continue // intra rule: never CCM a value live across a call
			}
			b := int64(0)
			for callee := range w.acrossCallees {
				hw, ok := highWater[callee]
				if !ok {
					hw = opts.CCMBytes // same-SCC callee: full CCM
				}
				if hw > b {
					b = hw
				}
			}
			if b >= opts.CCMBytes {
				continue // no room above the callees' high water
			}
			base[w.id] = int(b / ir.WordBytes)
			eligible[w.id] = true
		}

		promoted := a.colorIntoCCM(slots, base, eligible)
		maxEnd := int64(0)
		for wid, slot := range promoted {
			off := int64(slot) * ir.WordBytes
			if err := a.rewriteWeb(a.webs[wid], true, off); err != nil {
				return nil, err
			}
			if off+ir.WordBytes > maxEnd {
				maxEnd = off + ir.WordBytes
			}
			fp.Promoted++
		}
		fp.Heavyweight = fp.Webs - fp.Promoted
		fp.CCMBytes = maxEnd
		f.CCMBytes = maxEnd

		// Record the amount of CCM used by this subroutine, for callers.
		hw := maxEnd
		if inCycle {
			hw = opts.CCMBytes
		} else {
			for _, callee := range cg.Callees[name] {
				if h, ok := highWater[callee]; ok && h > hw {
					hw = h
				}
			}
		}
		highWater[name] = hw
		fp.EffectiveHW = hw
	}
	return res, nil
}

// colorIntoCCM colors eligible webs into CCM slots with per-web base
// constraints, Chaitin-style: simplify while some node has more available
// slots than neighbors; when stuck, drop the cheapest node from the graph
// entirely (it remains a heavyweight spill). Returns web id -> slot.
func (a *analysis) colorIntoCCM(slots int, base []int, eligible []bool) map[int]int {
	type state struct {
		deg     int
		removed bool
	}
	nodes := make([]int, 0, len(a.webs))
	st := make([]state, len(a.webs))
	for _, w := range a.webs {
		if eligible[w.id] && base[w.id] < slots {
			nodes = append(nodes, w.id)
		} else {
			st[w.id].removed = true
		}
	}
	for _, v := range nodes {
		for _, n := range a.adj[v] {
			if !st[n].removed {
				st[v].deg++
			}
		}
	}

	remaining := len(nodes)
	var stack []int
	drop := func(v int, push bool) {
		st[v].removed = true
		remaining--
		if push {
			stack = append(stack, v)
		}
		for _, n := range a.adj[v] {
			if !st[n].removed {
				st[n].deg--
			}
		}
	}
	for remaining > 0 {
		progressed := false
		for _, v := range nodes {
			if st[v].removed {
				continue
			}
			if slots-base[v] > st[v].deg {
				drop(v, true)
				progressed = true
			}
		}
		if progressed {
			continue
		}
		// Stuck: every node is constrained. Remove the cheapest from the
		// graph, leaving it as a heavyweight spill (paper §3.1).
		cheapest := -1
		for _, v := range nodes {
			if st[v].removed {
				continue
			}
			if cheapest == -1 || a.webs[v].cost < a.webs[cheapest].cost ||
				(a.webs[v].cost == a.webs[cheapest].cost && v < cheapest) {
				cheapest = v
			}
		}
		drop(cheapest, false)
	}

	// Select: pop in reverse, take the first free slot at or above the
	// web's beginning (paper: "starts at the beginning of the CCM and
	// tries successive locations until it finds one that will work").
	slotOf := make(map[int]int, len(stack))
	used := make([]bool, slots)
	for i := len(stack) - 1; i >= 0; i-- {
		v := stack[i]
		for s := range used {
			used[s] = false
		}
		for _, n := range a.adj[v] {
			if s, ok := slotOf[int(n)]; ok {
				used[s] = true
			}
		}
		chosen := -1
		for s := base[v]; s < slots; s++ {
			if !used[s] {
				chosen = s
				break
			}
		}
		if chosen < 0 {
			continue // cannot happen given the simplify condition; stay heavyweight
		}
		slotOf[v] = chosen
	}
	return slotOf
}

func hasCCMOps(f *ir.Func) bool {
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op.IsCCMOp() {
				return true
			}
		}
	}
	return false
}
