package core

import (
	"testing"

	"ccmem/internal/ir"
	"ccmem/internal/regalloc"
	"ccmem/internal/sim"
)

// pressureFunc emits a loop with `liveVals` simultaneously-live integers,
// optionally calling callee in the loop body while some values are live.
func pressureFunc(name string, liveVals int, callee string) *ir.Func {
	b := ir.NewBuilder(name, ir.ClassNone)
	b.Label("entry")
	n := b.ConstI(8)
	one := b.ConstI(1)
	i := b.Copy(b.ConstI(0))
	acc := b.Copy(b.ConstI(0))
	b.Jmp("loop")
	b.Label("loop")
	b.CBr(b.CmpLT(i, n), "body", "done")
	b.Label("body")
	vals := make([]ir.Reg, liveVals)
	for j := range vals {
		vals[j] = b.Add(i, b.ConstI(int64(j*13+1)))
	}
	if callee != "" {
		// All vals are live across this call (used below).
		b.Call(callee, ir.ClassNone)
	}
	sum := vals[0]
	for j := 1; j < len(vals); j++ {
		sum = b.Add(sum, vals[j])
	}
	prod := vals[0]
	for j := 1; j < len(vals); j++ {
		prod = b.Xor(prod, vals[j])
	}
	b.CopyTo(acc, b.Add(acc, b.Add(sum, prod)))
	b.CopyTo(i, b.Add(i, one))
	b.Jmp("loop")
	b.Label("done")
	b.Emit(acc)
	b.Ret()
	return b.MustFinish()
}

func mustProgram(t *testing.T, funcs ...*ir.Func) *ir.Program {
	t.Helper()
	p := &ir.Program{}
	for _, f := range funcs {
		if err := p.AddFunc(f); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func allocAll(t *testing.T, p *ir.Program, k int) {
	t.Helper()
	for _, f := range p.Funcs {
		if _, err := regalloc.Allocate(f, regalloc.Options{IntRegs: k, FloatRegs: k}); err != nil {
			t.Fatalf("allocate %s: %v", f.Name, err)
		}
	}
	if err := ir.VerifyProgram(p, ir.VerifyOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestPostPassIntra(t *testing.T) {
	p := mustProgram(t, pressureFunc("main", 24, ""))
	want, err := sim.Run(p.Clone(), "main", sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	allocAll(t, p, 8)
	base, err := sim.Run(p.Clone(), "main", sim.Config{})
	if err != nil {
		t.Fatal(err)
	}

	res, err := PostPass(p, PostPassOptions{CCMBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.VerifyProgram(p, ir.VerifyOptions{}); err != nil {
		t.Fatal(err)
	}
	got, err := sim.Run(p, "main", sim.Config{CCMBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if !sim.TracesEqual(got.Output, want.Output) {
		t.Fatalf("post-pass changed output: %v vs %v", got.Output, want.Output)
	}
	fp := res.PerFunc["main"]
	if fp.Promoted == 0 {
		t.Fatal("nothing promoted")
	}
	if got.Cycles >= base.Cycles {
		t.Fatalf("promotion did not speed up: %d vs %d", got.Cycles, base.Cycles)
	}
	t.Logf("webs=%d promoted=%d heavyweight=%d ccmBytes=%d speedup=%.3f",
		fp.Webs, fp.Promoted, fp.Heavyweight, fp.CCMBytes,
		float64(got.Cycles)/float64(base.Cycles))
}

func TestPostPassInterprocHighWater(t *testing.T) {
	// leaf spills heavily; caller keeps values live across the call. In
	// intra mode the caller promotes nothing live across the call; in
	// interprocedural mode it may use slots above leaf's high water.
	leaf := pressureFunc("leaf", 20, "")
	caller := pressureFunc("main", 20, "leaf")
	p := mustProgram(t, caller, leaf)
	want, err := sim.Run(p.Clone(), "main", sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	allocAll(t, p, 8)

	intra := p.Clone()
	resIntra, err := PostPass(intra, PostPassOptions{CCMBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	inter := p.Clone()
	resInter, err := PostPass(inter, PostPassOptions{CCMBytes: 1024, Interprocedural: true})
	if err != nil {
		t.Fatal(err)
	}

	for name, q := range map[string]*ir.Program{"intra": intra, "inter": inter} {
		if err := ir.VerifyProgram(q, ir.VerifyOptions{}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := sim.Run(q, "main", sim.Config{CCMBytes: 1024})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !sim.TracesEqual(got.Output, want.Output) {
			t.Fatalf("%s changed output", name)
		}
	}

	if resInter.TotalPromoted() < resIntra.TotalPromoted() {
		t.Errorf("interprocedural promoted fewer webs (%d) than intra (%d)",
			resInter.TotalPromoted(), resIntra.TotalPromoted())
	}
	mi := resInter.PerFunc["main"]
	if mi.EffectiveHW < resInter.PerFunc["leaf"].CCMBytes {
		t.Errorf("main effective high water %d below leaf usage %d",
			mi.EffectiveHW, resInter.PerFunc["leaf"].CCMBytes)
	}
	t.Logf("intra: main=%+v leaf=%+v", resIntra.PerFunc["main"], resIntra.PerFunc["leaf"])
	t.Logf("inter: main=%+v leaf=%+v", resInter.PerFunc["main"], resInter.PerFunc["leaf"])
}

func TestPostPassRecursionConservative(t *testing.T) {
	// A self-recursive function must be treated as using the full CCM;
	// its own values live across the recursive call stay heavyweight.
	b := ir.NewBuilder("fib", ir.ClassInt)
	n := b.Param(ir.ClassInt, "n")
	b.Label("entry")
	two := b.ConstI(2)
	b.CBr(b.CmpLT(n, two), "base", "rec")
	b.Label("base")
	b.RetVal(n)
	b.Label("rec")
	one := b.ConstI(1)
	a1 := b.Call("fib", ir.ClassInt, b.Sub(n, one))
	a2 := b.Call("fib", ir.ClassInt, b.Sub(n, two))
	b.RetVal(b.Add(a1, a2))
	fib := b.MustFinish()

	m := ir.NewBuilder("main", ir.ClassNone)
	m.Label("entry")
	r := m.Call("fib", ir.ClassInt, m.ConstI(12))
	m.Emit(r)
	m.Ret()

	p := mustProgram(t, m.MustFinish(), fib)
	want, err := sim.Run(p.Clone(), "main", sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	allocAll(t, p, 4) // force spills in fib (a1 live across second call)
	res, err := PostPass(p, PostPassOptions{CCMBytes: 512, Interprocedural: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sim.Run(p, "main", sim.Config{CCMBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if !sim.TracesEqual(got.Output, want.Output) {
		t.Fatalf("recursion output changed: %v vs %v", got.Output, want.Output)
	}
	fp := res.PerFunc["fib"]
	if !fp.InCycle {
		t.Fatal("fib not marked in cycle")
	}
	if fp.EffectiveHW != 512 {
		t.Fatalf("cycle member effective high water = %d, want full CCM 512", fp.EffectiveHW)
	}
	t.Logf("fib: %+v", fp)
}

func TestCompactSpills(t *testing.T) {
	p := mustProgram(t, pressureFunc("main", 24, ""))
	want, err := sim.Run(p.Clone(), "main", sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	allocAll(t, p, 8)
	base, err := sim.Run(p.Clone(), "main", sim.Config{})
	if err != nil {
		t.Fatal(err)
	}

	r, err := CompactSpills(p.Func("main"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.VerifyProgram(p, ir.VerifyOptions{}); err != nil {
		t.Fatal(err)
	}
	got, err := sim.Run(p, "main", sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !sim.TracesEqual(got.Output, want.Output) {
		t.Fatal("compaction changed output")
	}
	if got.Cycles != base.Cycles {
		t.Fatalf("compaction changed cycles: %d vs %d", got.Cycles, base.Cycles)
	}
	if r.AfterBytes > r.BeforeBytes {
		t.Fatalf("compaction grew spill memory: %d > %d", r.AfterBytes, r.BeforeBytes)
	}
	if r.AfterBytes == 0 {
		t.Fatal("expected some spill memory to remain")
	}
	t.Logf("compaction: before=%d after=%d ratio=%.2f webs=%d",
		r.BeforeBytes, r.AfterBytes, r.Ratio(), r.Webs)
}
