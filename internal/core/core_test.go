package core

import (
	"strings"
	"testing"

	"ccmem/internal/ir"
	"ccmem/internal/regalloc"
	"ccmem/internal/sim"
	"ccmem/internal/workload"
)

func allocForTest(f *ir.Func) (*regalloc.Result, error) {
	return regalloc.Allocate(f, regalloc.Options{IntRegs: 4, FloatRegs: 4})
}

// parseAllocated parses hand-written, already-"allocated" code: the test
// marks functions Allocated with the right register layout so the
// post-pass tools accept them.
func parseAllocated(t *testing.T, src string, numInt, numFloat int) *ir.Program {
	t.Helper()
	p, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range p.Funcs {
		// Grow the register table to the declared layout.
		regs := make([]ir.RegInfo, numInt+numFloat)
		for i := 0; i < numInt; i++ {
			regs[i] = ir.RegInfo{Class: ir.ClassInt}
		}
		for i := 0; i < numFloat; i++ {
			regs[numInt+i] = ir.RegInfo{Class: ir.ClassFloat}
		}
		for i, ri := range f.Regs {
			if ri.Class != ir.ClassNone && i < len(regs) && regs[i].Class != ri.Class {
				t.Fatalf("register %d class %v clashes with layout", i, ri.Class)
			}
		}
		f.Regs = regs
		f.Allocated = true
		f.NumInt = numInt
		f.NumFloat = numFloat
		max := int64(0)
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op.IsSpill() || in.Op.IsRestore() {
					if in.Imm+ir.WordBytes > max {
						max = in.Imm + ir.WordBytes
					}
				}
			}
		}
		f.FrameBytes = max
	}
	if err := ir.VerifyProgram(p, ir.VerifyOptions{}); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestWebSplitting: the same frame offset reused by two disjoint lifetimes
// must become two webs that can be promoted to different CCM slots — the
// point of building SSA over spill locations (paper §3.1).
func TestWebSplitting(t *testing.T) {
	src := `
func main() {
entry:
	r0 = loadi 11
	spill r0, 0
	r1 = restore 0
	emit r1
	r0 = loadi 22
	spill r0, 0
	r2 = restore 0
	emit r2
	ret
}
`
	p := parseAllocated(t, src, 4, 0)
	a, err := analyzeSpills(p.Funcs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(a.offs) != 1 {
		t.Fatalf("locations = %d, want 1", len(a.offs))
	}
	if len(a.webs) != 2 {
		t.Fatalf("webs = %d, want 2 (location not split)", len(a.webs))
	}
	if a.matrix.Has(0, 1) {
		t.Fatal("disjoint webs interfere")
	}
}

func TestWebJoinAcrossBranches(t *testing.T) {
	// Two stores on different arms reaching one restore form ONE web.
	src := `
func main() {
entry:
	r0 = loadi 1
	cbr r0, a, b
a:
	r1 = loadi 10
	spill r1, 0
	jmp done
b:
	r1 = loadi 20
	spill r1, 0
	jmp done
done:
	r2 = restore 0
	emit r2
	ret
}
`
	p := parseAllocated(t, src, 4, 0)
	a, err := analyzeSpills(p.Funcs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(a.webs) != 1 {
		t.Fatalf("webs = %d, want 1 (stores on both arms feed one load)", len(a.webs))
	}
}

func TestUnsafeWebNotPromoted(t *testing.T) {
	// A restore with no reaching spill must stay heavyweight.
	src := `
func main() {
entry:
	r0 = restore 0
	emit r0
	r1 = loadi 5
	spill r1, 8
	r2 = restore 8
	emit r2
	ret
}
`
	p := parseAllocated(t, src, 4, 0)
	res, err := PostPass(p, PostPassOptions{CCMBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	text := p.Funcs[0].String()
	if !strings.Contains(text, "r0 = restore 0") {
		t.Fatalf("uninitialized restore was relocated:\n%s", text)
	}
	if !strings.Contains(text, "ccmrestore") {
		t.Fatalf("safe web not promoted:\n%s", text)
	}
	if res.PerFunc["main"].Promoted != 1 {
		t.Fatalf("promoted = %d, want 1", res.PerFunc["main"].Promoted)
	}
}

func TestCapacityLeavesCheapestHeavyweight(t *testing.T) {
	// Three simultaneously-live spilled values, CCM with one slot: exactly
	// one web fits; the rest remain heavyweight; the survivor should be a
	// most-expensive one (the cheapest are dropped first when stuck).
	src := `
func main() {
entry:
	r0 = loadi 1
	spill r0, 0
	r0 = loadi 2
	spill r0, 8
	r0 = loadi 3
	spill r0, 16
	r1 = restore 0
	r2 = restore 8
	r3 = add r1, r2
	r2 = restore 16
	r3 = add r3, r2
	emit r3
	r1 = restore 0
	emit r1
	ret
}
`
	p := parseAllocated(t, src, 4, 0)
	res, err := PostPass(p, PostPassOptions{CCMBytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	fp := res.PerFunc["main"]
	if fp.Webs != 3 {
		t.Fatalf("webs = %d", fp.Webs)
	}
	if fp.Promoted != 1 || fp.Heavyweight != 2 {
		t.Fatalf("promoted=%d heavyweight=%d, want 1/2", fp.Promoted, fp.Heavyweight)
	}
	if fp.CCMBytes != 8 {
		t.Fatalf("ccm bytes = %d", fp.CCMBytes)
	}
	// The promoted web must be the 0-offset one (two restores = highest
	// cost; ties broken deterministically).
	text := p.Funcs[0].String()
	if !strings.Contains(text, "ccmspill r0, 0") {
		t.Fatalf("wrong web promoted:\n%s", text)
	}
	st, err := sim.Run(p, "main", sim.Config{CCMBytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if st.Output[0].Int() != 6 || st.Output[1].Int() != 1 {
		t.Fatalf("trace %v", st.Output)
	}
}

func TestPostPassErrors(t *testing.T) {
	p, err := ir.Parse("func main() {\nentry:\n\tret\n}")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PostPass(p, PostPassOptions{CCMBytes: 512}); err == nil ||
		!strings.Contains(err.Error(), "requires allocated code") {
		t.Fatalf("unallocated accepted: %v", err)
	}
	if _, err := PostPass(p, PostPassOptions{CCMBytes: 0}); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := PostPass(p, PostPassOptions{CCMBytes: 13}); err == nil {
		t.Fatal("unaligned capacity accepted")
	}

	q := parseAllocated(t, `
func main() {
entry:
	r0 = loadi 1
	ccmspill r0, 0
	ret
}
`, 2, 0)
	if _, err := PostPass(q, PostPassOptions{CCMBytes: 512}); err == nil ||
		!strings.Contains(err.Error(), "already contains CCM") {
		t.Fatalf("pre-existing CCM ops accepted: %v", err)
	}

	if _, err := CompactSpills(p.Funcs[0]); err == nil {
		t.Fatal("compaction of unallocated code accepted")
	}
}

func TestHighWaterChain(t *testing.T) {
	// c uses 1 slot; b's across-call web must land at ≥ slot 1; a's
	// across-call web at ≥ b's effective high water.
	src := `
func main() {
entry:
	call a()
	ret
}
func a() {
entry:
	r0 = loadi 1
	spill r0, 0
	call b()
	r1 = restore 0
	emit r1
	ret
}
func b() {
entry:
	r0 = loadi 2
	spill r0, 0
	call c()
	r1 = restore 0
	emit r1
	ret
}
func c() {
entry:
	r0 = loadi 3
	spill r0, 0
	r1 = restore 0
	emit r1
	ret
}
`
	p := parseAllocated(t, src, 4, 0)
	res, err := PostPass(p, PostPassOptions{CCMBytes: 512, Interprocedural: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerFunc["c"].CCMBytes != 8 {
		t.Fatalf("c uses %d bytes", res.PerFunc["c"].CCMBytes)
	}
	if res.PerFunc["b"].EffectiveHW != 16 {
		t.Fatalf("b effective high water = %d, want 16", res.PerFunc["b"].EffectiveHW)
	}
	if res.PerFunc["a"].EffectiveHW != 24 {
		t.Fatalf("a effective high water = %d, want 24", res.PerFunc["a"].EffectiveHW)
	}
	// Verify actual offsets: b spills at 8, a at 16.
	if !strings.Contains(p.Func("b").String(), "ccmspill r0, 8") {
		t.Fatalf("b not stacked above c:\n%s", p.Func("b"))
	}
	if !strings.Contains(p.Func("a").String(), "ccmspill r0, 16") {
		t.Fatalf("a not stacked above b:\n%s", p.Func("a"))
	}
	st, err := sim.Run(p, "main", sim.Config{CCMBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	want := []sim.Value{sim.IntValue(3), sim.IntValue(2), sim.IntValue(1)}
	if !sim.TracesEqual(st.Output, want) {
		t.Fatalf("trace %v", st.Output)
	}
}

func TestIntraLeavesAcrossCallAlone(t *testing.T) {
	src := `
func main() {
entry:
	r0 = loadi 1
	spill r0, 0
	call leaf()
	r1 = restore 0
	emit r1
	r0 = loadi 2
	spill r0, 8
	r1 = restore 8
	emit r1
	ret
}
func leaf() {
entry:
	ret
}
`
	p := parseAllocated(t, src, 4, 0)
	res, err := PostPass(p, PostPassOptions{CCMBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	fp := res.PerFunc["main"]
	if fp.Promoted != 1 || fp.Heavyweight != 1 {
		t.Fatalf("intra: promoted=%d heavyweight=%d, want 1/1", fp.Promoted, fp.Heavyweight)
	}
	text := p.Func("main").String()
	if !strings.Contains(text, "spill r0, 0") {
		t.Fatalf("across-call web relocated in intra mode:\n%s", text)
	}
}

func TestDiamondCallGraphHighWater(t *testing.T) {
	// main calls x and y; both call shared. x and y can use the same slots
	// above shared's high water (their activations never overlap).
	src := `
func main() {
entry:
	call x()
	call y()
	ret
}
func x() {
entry:
	r0 = loadi 1
	spill r0, 0
	call shared()
	r1 = restore 0
	emit r1
	ret
}
func y() {
entry:
	r0 = loadi 2
	spill r0, 0
	call shared()
	r1 = restore 0
	emit r1
	ret
}
func shared() {
entry:
	r0 = loadi 9
	spill r0, 0
	r1 = restore 0
	emit r1
	ret
}
`
	p := parseAllocated(t, src, 4, 0)
	res, err := PostPass(p, PostPassOptions{CCMBytes: 512, Interprocedural: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range []string{"x", "y"} {
		if !strings.Contains(p.Func(fn).String(), "ccmspill r0, 8") {
			t.Fatalf("%s not at slot 1:\n%s", fn, p.Func(fn))
		}
		if res.PerFunc[fn].EffectiveHW != 16 {
			t.Fatalf("%s effective HW = %d", fn, res.PerFunc[fn].EffectiveHW)
		}
	}
	st, err := sim.Run(p, "main", sim.Config{CCMBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	want := []sim.Value{sim.IntValue(9), sim.IntValue(1), sim.IntValue(9), sim.IntValue(2)}
	if !sim.TracesEqual(st.Output, want) {
		t.Fatalf("trace %v", st.Output)
	}
}

func TestCompactionSequentialPhases(t *testing.T) {
	// Two phases with disjoint spill lifetimes at distinct offsets must
	// compact into the same slot.
	src := `
func main() {
entry:
	r0 = loadi 1
	spill r0, 0
	r1 = restore 0
	emit r1
	r0 = loadi 2
	spill r0, 8
	r1 = restore 8
	emit r1
	ret
}
`
	p := parseAllocated(t, src, 4, 0)
	r, err := CompactSpills(p.Funcs[0])
	if err != nil {
		t.Fatal(err)
	}
	if r.BeforeBytes != 16 || r.AfterBytes != 8 {
		t.Fatalf("compaction %d -> %d, want 16 -> 8", r.BeforeBytes, r.AfterBytes)
	}
	if r.Ratio() != 0.5 {
		t.Fatalf("ratio %v", r.Ratio())
	}
	st, err := sim.Run(p, "main", sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := []sim.Value{sim.IntValue(1), sim.IntValue(2)}
	if !sim.TracesEqual(st.Output, want) {
		t.Fatalf("trace %v", st.Output)
	}
}

func TestCompactionKeepsUnsafeWebsInPlace(t *testing.T) {
	src := `
func main() {
entry:
	r0 = restore 24
	emit r0
	r1 = loadi 5
	spill r1, 0
	r2 = restore 0
	emit r2
	ret
}
`
	p := parseAllocated(t, src, 4, 0)
	r, err := CompactSpills(p.Funcs[0])
	if err != nil {
		t.Fatal(err)
	}
	text := p.Funcs[0].String()
	if !strings.Contains(text, "restore 24") {
		t.Fatalf("unsafe web moved:\n%s", text)
	}
	if r.AfterBytes != 32 { // unsafe slot at 24 keeps the frame at 32 bytes
		t.Fatalf("after = %d", r.AfterBytes)
	}
	// The safe web must not have been packed into the reserved offset.
	if strings.Contains(text, "spill r1, 24") {
		t.Fatal("safe web placed on reserved slot")
	}
}

func TestCompactionNoSpills(t *testing.T) {
	p := parseAllocated(t, "func main() {\nentry:\n\tret\n}", 1, 0)
	r, err := CompactSpills(p.Funcs[0])
	if err != nil {
		t.Fatal(err)
	}
	if r.Webs != 0 || r.AfterBytes != 0 {
		t.Fatalf("%+v", r)
	}
}

func TestFloatWebsPromoted(t *testing.T) {
	src := `
func main() {
entry:
	f2 = loadf 1.25
	fspill f2, 0
	f3 = frestore 0
	femit f3
	ret
}
`
	p := parseAllocated(t, src, 2, 2)
	res, err := PostPass(p, PostPassOptions{CCMBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerFunc["main"].Promoted != 1 {
		t.Fatal("float web not promoted")
	}
	text := p.Funcs[0].String()
	if !strings.Contains(text, "ccmfspill") || !strings.Contains(text, "ccmfrestore") {
		t.Fatalf("float CCM ops missing:\n%s", text)
	}
	st, err := sim.Run(p, "main", sim.Config{CCMBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if st.Output[0].Float() != 1.25 {
		t.Fatalf("trace %v", st.Output)
	}
}

// TestPostPassNeverGeneratesNewSpills: static op counts must not grow.
func TestPostPassNeverGeneratesNewSpills(t *testing.T) {
	for seed := int64(400); seed < 415; seed++ {
		p := workload.RandomProgram(seed)
		for _, f := range p.Funcs {
			if _, err := allocForTest(f); err != nil {
				t.Fatal(err)
			}
		}
		before := countMemOps(p)
		if _, err := PostPass(p, PostPassOptions{CCMBytes: 256, Interprocedural: true}); err != nil {
			t.Fatal(err)
		}
		after := countMemOps(p)
		if after != before {
			t.Fatalf("seed %d: op count changed %d -> %d", seed, before, after)
		}
	}
}

func countMemOps(p *ir.Program) int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				op := b.Instrs[i].Op
				if op.IsSpill() || op.IsRestore() || op.IsCCMOp() {
					n++
				}
			}
		}
	}
	return n
}
