package core

import (
	"fmt"
	"sort"

	"ccmem/internal/ir"
)

// CompactionResult reports what compaction did to one function.
type CompactionResult struct {
	BeforeBytes int64 // spill memory before compaction
	AfterBytes  int64 // spill memory after coloring
	Webs        int
}

// Ratio returns After/Before (1.0 when nothing could be compacted).
func (r CompactionResult) Ratio() float64 {
	if r.BeforeBytes == 0 {
		return 1
	}
	return float64(r.AfterBytes) / float64(r.BeforeBytes)
}

// CompactSpills colors the heavyweight spill memory of an allocated
// function so that non-interfering spilled values occupy the same
// location (the paper's "memory compaction routine", Table 1; also
// footnote 3's packing of residual heavyweight spills after promotion).
// The transformation only renumbers frame offsets: dynamic behaviour and
// cycle counts are unchanged.
func CompactSpills(f *ir.Func) (CompactionResult, error) {
	if !f.Allocated {
		return CompactionResult{}, fmt.Errorf("core: CompactSpills requires allocated code; %s is not", f.Name)
	}
	a, err := analyzeSpills(f)
	if err != nil {
		return CompactionResult{}, err
	}
	res := CompactionResult{Webs: len(a.webs)}

	// "Before" is the function's naive frame allocation: one slot per
	// spilled live range, as the register allocator left it.
	res.BeforeBytes = f.FrameBytes
	if res.BeforeBytes == 0 {
		for _, off := range a.offs {
			if off+ir.WordBytes > res.BeforeBytes {
				res.BeforeBytes = off + ir.WordBytes
			}
		}
	}
	if len(a.webs) == 0 {
		res.AfterBytes = 0
		f.FrameBytes = 0
		return res, nil
	}

	// Unsafe webs keep their original offsets; those slots are reserved
	// exclusively for them.
	reserved := map[int64]bool{}
	for _, w := range a.webs {
		if w.unsafe {
			reserved[a.offs[w.loc]] = true
		}
	}

	// Greedy coloring in decreasing-degree order: the most constrained
	// webs pick slots first, which keeps the packing tight.
	order := make([]int, 0, len(a.webs))
	for _, w := range a.webs {
		if !w.unsafe {
			order = append(order, w.id)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := len(a.adj[order[i]]), len(a.adj[order[j]])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})

	offOf := make(map[int]int64, len(order))
	maxEnd := int64(0)
	for _, v := range order {
		usedOffs := map[int64]bool{}
		for _, n := range a.adj[v] {
			if o, ok := offOf[int(n)]; ok {
				usedOffs[o] = true
			}
			if a.webs[n].unsafe {
				usedOffs[a.offs[a.webs[n].loc]] = true
			}
		}
		var off int64
		for ; ; off += ir.WordBytes {
			if !usedOffs[off] && !reserved[off] {
				break
			}
		}
		offOf[v] = off
		if off+ir.WordBytes > maxEnd {
			maxEnd = off + ir.WordBytes
		}
		if err := a.rewriteWeb(a.webs[v], false, off); err != nil {
			return res, err
		}
	}
	for _, w := range a.webs {
		if w.unsafe {
			if end := a.offs[w.loc] + ir.WordBytes; end > maxEnd {
				maxEnd = end
			}
		}
	}
	res.AfterBytes = maxEnd
	f.FrameBytes = maxEnd
	return res, nil
}

// CompactProgram compacts every allocated function with spill code and
// returns per-function results keyed by name.
func CompactProgram(p *ir.Program) (map[string]CompactionResult, error) {
	out := map[string]CompactionResult{}
	for _, f := range p.Funcs {
		if !f.Allocated {
			continue
		}
		r, err := CompactSpills(f)
		if err != nil {
			return nil, err
		}
		out[f.Name] = r
	}
	return out, nil
}
