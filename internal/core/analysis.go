// Package core implements the paper's primary contribution: spill
// promotion into a compiler-controlled memory, plus coloring-based spill
// memory compaction.
//
// Three tools operate over already-allocated code containing heavyweight
// spill instructions:
//
//   - PostPass: the stand-alone CCM allocator of paper §3.1 (Figure 1), in
//     intraprocedural and interprocedural (call-graph directed) variants;
//   - CompactSpills: the coloring-based memory compaction used for Table 1
//     and for footnote 3's packing of residual heavyweight spills;
//   - the integrated Chaitin-Briggs scheme of §3.2 lives in
//     internal/regalloc (Options.CCMBytes) because it is part of the
//     allocator itself; this package provides the shared analysis.
//
// The shared analysis mirrors the paper: spill instructions are rewritten
// with symbolic names (frame offsets become location ids), liveness is
// computed over spill locations ("m is live at p if some path from p
// reaches a load of m" with stores as kills), an SSA-equivalent web
// construction splits each location into independent live ranges, and an
// interference graph over those ranges drives coloring.
package core

import (
	"fmt"
	"math"

	"ccmem/internal/bitset"
	"ccmem/internal/cfg"
	"ccmem/internal/intgraph"
	"ccmem/internal/ir"
	"ccmem/internal/liveness"
	"ccmem/internal/uf"
)

// site is one spill or restore instruction.
type site struct {
	block, index int
	loc          int // location id
	isDef        bool
}

// web is a live range of a spill location: a maximal set of stores and
// loads connected by reaching definitions (the paper builds these via SSA
// over spill locations and live-range naming).
type web struct {
	id    int
	class ir.Class
	loc   int
	cost  float64 // Σ 10^loop-depth over the web's operations
	sites []int

	liveAcrossCall bool
	acrossCallees  map[string]bool // callees of calls this web is live across

	// unsafe marks webs that may read an uninitialized location (never
	// produced by the register allocator, but possible in hand-written
	// code); they are never relocated.
	unsafe bool
}

// analysis is the per-function spill-location dataflow package shared by
// promotion and compaction.
type analysis struct {
	f *ir.Func
	g *cfg.Graph

	offs  []int64 // location id -> frame byte offset
	sites []site

	webOf []int // site id -> web id
	webs  []*web

	adj    [][]int32
	matrix *intgraph.Matrix
}

// analyzeSpills builds webs, interference, costs and call-liveness for the
// heavyweight spill code in f.
func analyzeSpills(f *ir.Func) (*analysis, error) {
	g, err := cfg.New(f)
	if err != nil {
		return nil, err
	}
	a := &analysis{f: f, g: g}

	// Rewrite spill offsets as symbolic names: collect sites and locations.
	locOf := map[int64]int{}
	for bi, b := range f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			var isDef bool
			switch {
			case in.Op.IsSpill():
				isDef = true
			case in.Op.IsRestore():
				isDef = false
			default:
				continue
			}
			loc, ok := locOf[in.Imm]
			if !ok {
				loc = len(a.offs)
				locOf[in.Imm] = loc
				a.offs = append(a.offs, in.Imm)
			}
			a.sites = append(a.sites, site{block: bi, index: ii, loc: loc, isDef: isDef})
		}
	}
	if len(a.sites) == 0 {
		a.matrix = intgraph.NewMatrix(0)
		return a, nil
	}

	a.buildWebs()
	a.buildInterference()
	a.computeCosts()
	return a, nil
}

// buildWebs unions each restore with every store that reaches it
// (reaching-definitions over spill locations), splitting each location
// into its independent live ranges. Restores reachable with no store mark
// their web unsafe.
func (a *analysis) buildWebs() {
	f, g := a.f, a.g
	nSites := len(a.sites)

	// Def sites per location, and site ids per (block, index).
	defsOfLoc := make([][]int, len(a.offs))
	siteAt := map[[2]int]int{}
	for sid := range a.sites {
		s := &a.sites[sid]
		siteAt[[2]int{s.block, s.index}] = sid
		if s.isDef {
			defsOfLoc[s.loc] = append(defsOfLoc[s.loc], sid)
		}
	}

	// gen/kill per block over def-site ids.
	nb := g.NumBlocks()
	gen := make([]bitset.Set, nb)
	kill := make([]bitset.Set, nb)
	for i := 0; i < nb; i++ {
		gen[i] = bitset.New(nSites)
		kill[i] = bitset.New(nSites)
	}
	for bi, b := range f.Blocks {
		for ii := range b.Instrs {
			sid, ok := siteAt[[2]int{bi, ii}]
			if !ok || !a.sites[sid].isDef {
				continue
			}
			loc := a.sites[sid].loc
			for _, d := range defsOfLoc[loc] {
				gen[bi].Clear(d)
				kill[bi].Set(d)
			}
			gen[bi].Set(sid)
		}
	}

	// Forward may-reach fixpoint over reachable blocks.
	in := make([]bitset.Set, nb)
	out := make([]bitset.Set, nb)
	for i := 0; i < nb; i++ {
		in[i] = bitset.New(nSites)
		out[i] = bitset.New(nSites)
	}
	rpo := g.ReversePostorder()
	changed := true
	tmp := bitset.New(nSites)
	for changed {
		changed = false
		for _, bi := range rpo {
			in[bi].Reset()
			for _, p := range g.Preds[bi] {
				if g.Reachable(p) {
					in[bi].UnionWith(out[p])
				}
			}
			tmp.CopyFrom(in[bi])
			tmp.DifferenceWith(kill[bi])
			tmp.UnionWith(gen[bi])
			if !tmp.Equal(out[bi]) {
				out[bi].CopyFrom(tmp)
				changed = true
			}
		}
	}

	// Union pass: connect each use with its reaching defs.
	u := uf.New(nSites)
	unsafeSite := make([]bool, nSites)
	cur := bitset.New(nSites)
	for _, bi := range rpo {
		cur.CopyFrom(in[bi])
		b := f.Blocks[bi]
		for ii := range b.Instrs {
			sid, ok := siteAt[[2]int{bi, ii}]
			if !ok {
				continue
			}
			s := &a.sites[sid]
			if s.isDef {
				for _, d := range defsOfLoc[s.loc] {
					cur.Clear(d)
				}
				cur.Set(sid)
				continue
			}
			reached := false
			for _, d := range defsOfLoc[s.loc] {
				if cur.Has(d) {
					u.Union(sid, d)
					reached = true
				}
			}
			if !reached {
				unsafeSite[sid] = true
			}
		}
	}
	// Sites in unreachable blocks were never visited; never relocate them.
	for sid := range a.sites {
		if !g.Reachable(a.sites[sid].block) {
			unsafeSite[sid] = true
		}
	}

	// Materialize webs.
	a.webOf = make([]int, nSites)
	webIdx := map[int]int{}
	for sid := range a.sites {
		root := u.Find(sid)
		wid, ok := webIdx[root]
		if !ok {
			wid = len(a.webs)
			webIdx[root] = wid
			class := ir.ClassInt
			switch a.f.Blocks[a.sites[sid].block].Instrs[a.sites[sid].index].Op {
			case ir.OpFSpill, ir.OpFRestore:
				class = ir.ClassFloat
			}
			a.webs = append(a.webs, &web{
				id:            wid,
				class:         class,
				loc:           a.sites[sid].loc,
				acrossCallees: map[string]bool{},
			})
		}
		a.webOf[sid] = wid
		w := a.webs[wid]
		w.sites = append(w.sites, sid)
		if unsafeSite[sid] {
			w.unsafe = true
		}
	}
}

// buildInterference computes web liveness ("live until the last load") and
// the interference graph, recording for every web the calls it is live
// across — the input to both the intraprocedural exclusion rule and the
// interprocedural high-water bases.
func (a *analysis) buildInterference() {
	f, g := a.f, a.g
	nw := len(a.webs)
	a.adj = make([][]int32, nw)
	a.matrix = intgraph.NewMatrix(nw)

	websOfLoc := make([][]int, len(a.offs))
	for _, w := range a.webs {
		websOfLoc[w.loc] = append(websOfLoc[w.loc], w.id)
	}
	siteAt := map[[2]int]int{}
	for sid := range a.sites {
		s := &a.sites[sid]
		siteAt[[2]int{s.block, s.index}] = sid
	}

	nb := g.NumBlocks()
	use := make([]bitset.Set, nb)
	def := make([]bitset.Set, nb)
	for i := 0; i < nb; i++ {
		use[i] = bitset.New(nw)
		def[i] = bitset.New(nw)
	}
	for bi, b := range f.Blocks {
		killed := map[int]bool{} // locations stored earlier in the block
		for ii := range b.Instrs {
			sid, ok := siteAt[[2]int{bi, ii}]
			if !ok {
				continue
			}
			s := &a.sites[sid]
			if s.isDef {
				killed[s.loc] = true
				for _, w := range websOfLoc[s.loc] {
					def[bi].Set(w)
				}
				continue
			}
			if !killed[s.loc] {
				use[bi].Set(a.webOf[sid])
			}
		}
	}
	live := liveness.Backward(g, use, def, nil)

	addEdge := func(x, y int) {
		if x == y || a.matrix.Has(x, y) {
			return
		}
		a.matrix.Set(x, y)
		a.adj[x] = append(a.adj[x], int32(y))
		a.adj[y] = append(a.adj[y], int32(x))
	}

	liveNow := bitset.New(nw)
	for bi := nb - 1; bi >= 0; bi-- {
		if !g.Reachable(bi) {
			continue
		}
		b := f.Blocks[bi]
		liveNow.CopyFrom(live.Out[bi])
		for ii := len(b.Instrs) - 1; ii >= 0; ii-- {
			in := &b.Instrs[ii]
			if in.Op == ir.OpCall {
				liveNow.ForEach(func(w int) {
					a.webs[w].liveAcrossCall = true
					a.webs[w].acrossCallees[in.Sym] = true
				})
				continue
			}
			sid, ok := siteAt[[2]int{bi, ii}]
			if !ok {
				continue
			}
			s := &a.sites[sid]
			if s.isDef {
				w := a.webOf[sid]
				liveNow.ForEach(func(x int) { addEdge(w, x) })
				for _, cw := range websOfLoc[s.loc] {
					liveNow.Clear(cw)
				}
			} else {
				liveNow.Set(a.webOf[sid])
			}
		}
	}
}

// computeCosts weights each web by Σ 10^loop-depth over its operations,
// the same estimate the register allocator uses for spill decisions. The
// cost is the dynamic benefit of promoting the web: each executed
// operation saves MemCost − CCMCost cycles.
func (a *analysis) computeCosts() {
	for _, w := range a.webs {
		for _, sid := range w.sites {
			d := a.g.LoopDepth(a.sites[sid].block)
			if d > 9 {
				d = 9
			}
			w.cost += math.Pow(10, float64(d))
		}
	}
}

// rewriteWeb redirects every operation of web w: promote=true turns
// heavyweight spills into CCM operations at the given byte offset;
// promote=false changes the frame offset (compaction).
func (a *analysis) rewriteWeb(w *web, promote bool, newOff int64) error {
	for _, sid := range w.sites {
		s := &a.sites[sid]
		in := &a.f.Blocks[s.block].Instrs[s.index]
		switch {
		case promote && in.Op.IsSpill():
			op, _ := ir.CCMOpFor(opClass(in.Op))
			in.Op = op
		case promote && in.Op.IsRestore():
			_, op := ir.CCMOpFor(opClass(in.Op))
			in.Op = op
		case promote:
			return fmt.Errorf("core: site is not a heavyweight spill op: %s", in.Op)
		}
		in.Imm = newOff
	}
	return nil
}

func opClass(op ir.Op) ir.Class {
	switch op {
	case ir.OpFSpill, ir.OpFRestore, ir.OpCCMFSpill, ir.OpCCMFRestore:
		return ir.ClassFloat
	}
	return ir.ClassInt
}
