package experiments

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
)

// Table1Row is one line of the spill-memory compaction table.
type Table1Row struct {
	Name   string
	Before int64
	After  int64
}

// Ratio is After/Before.
func (r Table1Row) Ratio() float64 {
	if r.Before == 0 {
		return 1
	}
	return float64(r.After) / float64(r.Before)
}

// Table1 returns the routines whose spill memory the coloring compactor
// reduced (the paper shows exactly those), sorted by descending Before,
// plus the TOTAL row over them.
func (s *SuiteResults) Table1() (rows []Table1Row, total Table1Row) {
	for _, r := range s.Routines {
		if !r.Spills() || r.SpillAfter >= r.SpillBefore {
			continue
		}
		rows = append(rows, Table1Row{Name: r.Name, Before: r.SpillBefore, After: r.SpillAfter})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Before != rows[j].Before {
			return rows[i].Before > rows[j].Before
		}
		return rows[i].Name < rows[j].Name
	})
	total.Name = "TOTAL"
	for _, r := range rows {
		total.Before += r.Before
		total.After += r.After
	}
	return rows, total
}

// FormatTable1 renders Table 1 in the paper's layout.
func (s *SuiteResults) FormatTable1() string {
	rows, total := s.Table1()
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Spill Memory Requirements and Compaction\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "Routine\tBytes Before\tBytes After\tAfter/Before\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.2f\n", r.Name, r.Before, r.After, r.Ratio())
	}
	fmt.Fprintf(w, "%s\t%d\t%d\t%.2f\n", total.Name, total.Before, total.After, total.Ratio())
	w.Flush()
	nSpill := 0
	for _, r := range s.Routines {
		if r.Spills() {
			nSpill++
		}
	}
	fmt.Fprintf(&b, "(%d of %d suite routines required spill code; compaction helped %d)\n",
		nSpill, len(s.Routines), len(rows))
	return b.String()
}

// Table2Row is one line of the per-routine speedup table.
type Table2Row struct {
	Name   string
	Base   CycPair
	Ratios map[Strategy][2]float64 // [cycles ratio, memory-cycles ratio]
}

// Table2 returns per-routine relative cycle counts for the given CCM size
// over every routine that required spill code.
func (s *SuiteResults) Table2(size int64) []Table2Row {
	var rows []Table2Row
	for _, r := range s.Routines {
		if !r.Spills() {
			continue
		}
		row := Table2Row{Name: r.Name, Base: r.Base, Ratios: map[Strategy][2]float64{}}
		for _, st := range Strategies {
			p := r.Strat[Key{st, size}]
			cyc, mem := p.Ratio(r.Base)
			row.Ratios[st] = [2]float64{cyc, mem}
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Base.Cycles > rows[j].Base.Cycles })
	return rows
}

// FormatTable2 renders Table 2 (or its 1024-byte analogue).
func (s *SuiteResults) FormatTable2(size int64) string {
	rows := s.Table2(size)
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Speedups in dynamic cycle counts with %d-byte CCM\n", size)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "Routine\tWithout CCM\tPost-Pass\tPost-Pass w/ CG\tIntegrated\n")
	for _, r := range rows {
		pp := r.Ratios[StrategyPostPass]
		cg := r.Ratios[StrategyPostPassIPA]
		in := r.Ratios[StrategyIntegrated]
		fmt.Fprintf(w, "%s\t%d(%d)\t%.2f(%.2f)\t%.2f(%.2f)\t%.2f(%.2f)\n",
			r.Name, r.Base.Cycles, r.Base.Mem,
			pp[0], pp[1], cg[0], cg[1], in[0], in[1])
	}
	w.Flush()
	return b.String()
}

// Table3Row reports a routine whose relative cycles changed when the CCM
// grew from sizeA to sizeB.
type Table3Row struct {
	Name  string
	Base  CycPair
	Small map[Strategy][2]float64
	Large map[Strategy][2]float64
}

// Table3 lists routines that sped up with the larger CCM ("Table 3 only
// reports on routines which sped up as a result of using a larger CCM").
func (s *SuiteResults) Table3(small, large int64) []Table3Row {
	const eps = 5e-4
	var rows []Table3Row
	for _, r := range s.Routines {
		if !r.Spills() {
			continue
		}
		row := Table3Row{Name: r.Name, Base: r.Base,
			Small: map[Strategy][2]float64{}, Large: map[Strategy][2]float64{}}
		improved := false
		for _, st := range Strategies {
			sc, sm := r.Strat[Key{st, small}].Ratio(r.Base)
			lc, lm := r.Strat[Key{st, large}].Ratio(r.Base)
			row.Small[st] = [2]float64{sc, sm}
			row.Large[st] = [2]float64{lc, lm}
			if lc < sc-eps {
				improved = true
			}
		}
		if improved {
			rows = append(rows, row)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Base.Cycles > rows[j].Base.Cycles })
	return rows
}

// FormatTable3 renders the size-sensitivity table.
func (s *SuiteResults) FormatTable3(small, large int64) string {
	rows := s.Table3(small, large)
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: Changes in speedups with %d-byte CCM compared to a %d-byte CCM\n", large, small)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "Routine\tWithout CCM\tPost-Pass\tPost-Pass w/ CG\tIntegrated\n")
	for _, r := range rows {
		pp := r.Large[StrategyPostPass]
		cg := r.Large[StrategyPostPassIPA]
		in := r.Large[StrategyIntegrated]
		fmt.Fprintf(w, "%s\t%d(%d)\t%.2f(%.2f)\t%.2f(%.2f)\t%.2f(%.2f)\n",
			r.Name, r.Base.Cycles, r.Base.Mem,
			pp[0], pp[1], cg[0], cg[1], in[0], in[1])
	}
	w.Flush()
	if len(rows) == 0 {
		b.WriteString("(no routine sped up further with the larger CCM)\n")
	}
	return b.String()
}

// Table4Cell is a weighted-average percentage reduction.
type Table4Cell struct {
	TotalPct float64 // reduction in total cycles executed
	MemPct   float64 // reduction in cycles spent in memory operations
}

// Table4 computes the weighted-average reduction per algorithm and CCM
// size over the spilling routines, weighting by baseline cycles (so big
// routines dominate, as in the paper).
func (s *SuiteResults) Table4() map[Key]Table4Cell {
	out := map[Key]Table4Cell{}
	for _, size := range s.Config.CCMSizes {
		for _, st := range Strategies {
			var baseC, baseM, afterC, afterM int64
			for _, r := range s.Routines {
				if !r.Spills() {
					continue
				}
				p := r.Strat[Key{st, size}]
				baseC += r.Base.Cycles
				baseM += r.Base.Mem
				afterC += p.Cycles
				afterM += p.Mem
			}
			cell := Table4Cell{}
			if baseC > 0 {
				cell.TotalPct = 100 * (1 - float64(afterC)/float64(baseC))
			}
			if baseM > 0 {
				cell.MemPct = 100 * (1 - float64(afterM)/float64(baseM))
			}
			out[Key{st, size}] = cell
		}
	}
	return out
}

// FormatTable4 renders the weighted-average table.
func (s *SuiteResults) FormatTable4() string {
	t := s.Table4()
	var b strings.Builder
	b.WriteString("Table 4: Weighted-average reduction in cycles executed for each algorithm\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "Algorithm")
	for _, size := range s.Config.CCMSizes {
		fmt.Fprintf(w, "\t%dB total%%\t%dB mem%%", size, size)
	}
	fmt.Fprintf(w, "\n")
	for _, st := range Strategies {
		fmt.Fprintf(w, "%s", st)
		for _, size := range s.Config.CCMSizes {
			c := t[Key{st, size}]
			fmt.Fprintf(w, "\t%.1f\t%.1f", c.TotalPct, c.MemPct)
		}
		fmt.Fprintf(w, "\n")
	}
	w.Flush()
	return b.String()
}

// FigureRow is one program's bars in Figures 3/4.
type FigureRow struct {
	Name   string
	Base   CycPair
	Ratios map[Strategy][2]float64
}

// Figure returns the whole-program relative running times at the given
// CCM size, for the programs that improved (as the paper's figures show).
func (s *SuiteResults) Figure(size int64) []FigureRow {
	var rows []FigureRow
	for _, p := range s.Programs {
		if !p.Improved(size) {
			continue
		}
		row := FigureRow{Name: p.Name, Base: p.Base, Ratios: map[Strategy][2]float64{}}
		for _, st := range Strategies {
			cyc, mem := p.Strat[Key{st, size}].Ratio(p.Base)
			row.Ratios[st] = [2]float64{cyc, mem}
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}

// FormatFigure renders Figure 3 (size=512) or Figure 4 (size=1024) as a
// text bar table: relative running time and relative memory-op time per
// strategy.
func (s *SuiteResults) FormatFigure(num int, size int64) string {
	rows := s.Figure(size)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %d: Program performance with a %d-byte CCM (relative to no CCM)\n", num, size)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "Program\tRun(PP)\tRun(PP+CG)\tRun(Int)\tMem(PP)\tMem(PP+CG)\tMem(Int)\n")
	for _, r := range rows {
		pp := r.Ratios[StrategyPostPass]
		cg := r.Ratios[StrategyPostPassIPA]
		in := r.Ratios[StrategyIntegrated]
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n",
			r.Name, pp[0], cg[0], in[0], pp[1], cg[1], in[1])
	}
	w.Flush()
	fmt.Fprintf(&b, "(%d of %d programs improved)\n", len(rows), len(s.Programs))
	return b.String()
}
