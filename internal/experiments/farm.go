package experiments

import (
	"fmt"

	"ccmem/internal/workload"
)

// This file is the farm-mode wire protocol: RoutineResult keys its
// measurements by a struct (Key{Strategy, CCMBytes}), which JSON cannot
// encode, so worker processes ship their shard of the routine suite as
// WireRoutine values and the parent merges them back into one
// SuiteResults in canonical workload order. Every measurement is
// simulated cycles — a pure function of (routine, strategy, CCM size) —
// so the merged tables are byte-identical to a solo run no matter how
// the suite was partitioned.

// WireMeasurement is one (strategy, CCM size) cell of a routine's
// results.
type WireMeasurement struct {
	Strategy int   `json:"strategy"`
	CCMBytes int64 `json:"ccm_bytes"`
	Cycles   int64 `json:"cycles"`
	Mem      int64 `json:"mem"`
	Promo    int   `json:"promo"`
}

// WireRoutine is the JSON-safe encoding of one RoutineResult.
type WireRoutine struct {
	Name   string `json:"name"`
	Family string `json:"family"`

	SpillBefore int64 `json:"spill_before"`
	SpillAfter  int64 `json:"spill_after"`
	Webs        int   `json:"webs"`

	BaseCycles int64 `json:"base_cycles"`
	BaseMem    int64 `json:"base_mem"`

	Measurements []WireMeasurement `json:"measurements"`
}

// Wire flattens r for transport. Measurements are emitted in the
// deterministic (CCM size, strategy) sweep order RunRoutineSuite uses.
func (r *RoutineResult) Wire(sizes []int64) WireRoutine {
	w := WireRoutine{
		Name:        r.Name,
		Family:      r.Family,
		SpillBefore: r.SpillBefore,
		SpillAfter:  r.SpillAfter,
		Webs:        r.Webs,
		BaseCycles:  r.Base.Cycles,
		BaseMem:     r.Base.Mem,
	}
	for _, size := range sizes {
		for _, strat := range Strategies {
			k := Key{strat, size}
			pair, ok := r.Strat[k]
			if !ok {
				continue
			}
			w.Measurements = append(w.Measurements, WireMeasurement{
				Strategy: int(strat),
				CCMBytes: size,
				Cycles:   pair.Cycles,
				Mem:      pair.Mem,
				Promo:    r.Promo[k],
			})
		}
	}
	return w
}

// Result rebuilds the keyed RoutineResult from its wire form.
func (w WireRoutine) Result() *RoutineResult {
	r := &RoutineResult{
		Name:        w.Name,
		Family:      w.Family,
		SpillBefore: w.SpillBefore,
		SpillAfter:  w.SpillAfter,
		Webs:        w.Webs,
		Base:        CycPair{Cycles: w.BaseCycles, Mem: w.BaseMem},
		Strat:       map[Key]CycPair{},
		Promo:       map[Key]int{},
	}
	for _, m := range w.Measurements {
		k := Key{Strategy(m.Strategy), m.CCMBytes}
		r.Strat[k] = CycPair{Cycles: m.Cycles, Mem: m.Mem}
		r.Promo[k] = m.Promo
	}
	return r
}

// WireRoutines flattens a completed routine suite for transport.
func (s *SuiteResults) WireRoutines() []WireRoutine {
	out := make([]WireRoutine, 0, len(s.Routines))
	for _, r := range s.Routines {
		out = append(out, r.Wire(s.Config.CCMSizes))
	}
	return out
}

// MergeRoutineShards reassembles worker shards into one SuiteResults,
// ordered canonically by workload.All(). It fails loudly on an
// incomplete partition — a routine measured twice or not at all means
// the shards were misconfigured, and a silently partial table would
// masquerade as a complete run.
func MergeRoutineShards(cfg Config, shards [][]WireRoutine) (*SuiteResults, error) {
	byName := make(map[string]*RoutineResult)
	for _, shard := range shards {
		for _, w := range shard {
			if _, dup := byName[w.Name]; dup {
				return nil, fmt.Errorf("experiments: routine %q measured by more than one shard", w.Name)
			}
			byName[w.Name] = w.Result()
		}
	}
	res := &SuiteResults{Config: cfg}
	for _, r := range workload.All() {
		rr, ok := byName[r.Name]
		if !ok {
			return nil, fmt.Errorf("experiments: routine %q missing from every shard", r.Name)
		}
		delete(byName, r.Name)
		res.Routines = append(res.Routines, rr)
	}
	for name := range byName {
		return nil, fmt.Errorf("experiments: shard measured unknown routine %q", name)
	}
	return res, nil
}
