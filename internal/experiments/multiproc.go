package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"ccmem/internal/sim"
	"ccmem/internal/workload"
)

// MultiProcResult quantifies the paper's §2.1/§5 multi-process design
// point: "we would want to add a system-controlled base register to
// provide each process with its own small region within the CCM. This
// would allow the system to avoid copying the CCM contents to main memory
// on context switches."
//
// Two operating-system policies are compared for a set of processes
// sharing one CCM:
//
//   - Copy: each process gets the whole CCM; on every context switch the
//     kernel saves and restores the live CCM region through main memory
//     (2 × used-slots × MemCost cycles per switch).
//   - Partition: the CCM is split into per-process regions selected by a
//     base register; switches cost nothing, but each process compiles
//     against a smaller CCM.
type MultiProcResult struct {
	Processes []string
	CCMBytes  int64
	Partition int64 // bytes per process under the base-register policy

	CopyCycles      int64 // Σ process cycles under whole-CCM compilation
	CopyPerSwitch   int64 // CCM save/restore cost of one context switch
	PartitionCycles int64 // Σ process cycles under partitioned compilation

	// BreakEvenSwitches is the context-switch count at which the
	// base-register design starts winning.
	BreakEvenSwitches int64
}

// TotalCopy returns the copy policy's total for a given switch count.
func (m *MultiProcResult) TotalCopy(switches int64) int64 {
	return m.CopyCycles + switches*m.CopyPerSwitch
}

// MultiProcess runs the comparison for the named routines (defaults to a
// spill-heavy trio) sharing a CCM of the given size.
func MultiProcess(cfg Config, names []string, ccmBytes int64) (*MultiProcResult, error) {
	if len(names) == 0 {
		names = []string{"fpppp", "saturr", "radb5X"}
	}
	n := int64(len(names))
	partition := (ccmBytes / n) / 8 * 8
	if partition <= 0 {
		return nil, fmt.Errorf("experiments: CCM %d too small for %d processes", ccmBytes, n)
	}
	res := &MultiProcResult{Processes: names, CCMBytes: ccmBytes, Partition: partition}
	drv := cfg.driver()

	for i, name := range names {
		r, ok := workload.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown routine %q", name)
		}

		// Copy policy: the process sees the whole CCM.
		p, err := r.Build()
		if err != nil {
			return nil, err
		}
		if _, err := compileWith(drv, p, StrategyPostPassIPA, ccmBytes, cfg, false); err != nil {
			return nil, err
		}
		maxUsed := int64(0)
		for _, f := range p.Funcs {
			if f.CCMBytes > maxUsed {
				maxUsed = f.CCMBytes
			}
		}
		st, err := sim.Run(p, "main", sim.Config{MemCost: cfg.MemCost, CCMBytes: ccmBytes})
		if err != nil {
			return nil, err
		}
		res.CopyCycles += st.Cycles
		// Saving + restoring the used region through 2-cycle memory.
		res.CopyPerSwitch += 2 * (maxUsed / 8) * int64(cfg.MemCost)

		// Partition policy: compiled against the smaller region, executed
		// at this process's base register — the simulator enforces that no
		// access escapes the partition.
		q, err := r.Build()
		if err != nil {
			return nil, err
		}
		if _, err := compileWith(drv, q, StrategyPostPassIPA, partition, cfg, false); err != nil {
			return nil, err
		}
		st2, err := sim.Run(q, "main", sim.Config{
			MemCost:  cfg.MemCost,
			CCMBytes: ccmBytes,
			CCMBase:  int64(i) * partition,
		})
		if err != nil {
			return nil, fmt.Errorf("partition isolation violated for %s: %w", name, err)
		}
		res.PartitionCycles += st2.Cycles
	}

	// Partition wins once s * CopyPerSwitch > PartitionCycles - CopyCycles.
	delta := res.PartitionCycles - res.CopyCycles
	switch {
	case res.CopyPerSwitch == 0:
		res.BreakEvenSwitches = 0
	case delta <= 0:
		res.BreakEvenSwitches = 0 // partitioning wins immediately
	default:
		res.BreakEvenSwitches = delta/res.CopyPerSwitch + 1
	}
	return res, nil
}

// FormatMultiProc renders the comparison.
func FormatMultiProc(m *MultiProcResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multi-process CCM (§2.1): %d processes sharing %d bytes\n",
		len(m.Processes), m.CCMBytes)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "policy\tcompile-time CCM\tprocess cycles\tswitch cost\n")
	fmt.Fprintf(w, "copy on switch\t%d B each\t%d\t%d/switch\n", m.CCMBytes, m.CopyCycles, m.CopyPerSwitch)
	fmt.Fprintf(w, "base register\t%d B each\t%d\t0\n", m.Partition, m.PartitionCycles)
	w.Flush()
	fmt.Fprintf(&b, "base-register partitioning wins beyond %d context switches\n", m.BreakEvenSwitches)
	return b.String()
}
