package experiments

import (
	"fmt"
	"io"
)

// WriteReport emits a complete, self-contained markdown report of the
// reproduction: every table and figure, the family aggregation, the §4.3
// ablation, and the §2.1 multi-process comparison, each inside a fenced
// code block. `ccmbench -markdown` uses it to regenerate the raw section
// of EXPERIMENTS.md from scratch.
func WriteReport(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "# Compiler-Controlled Memory — regenerated evaluation\n\n")
	fmt.Fprintf(w, "Machine model: %d+%d registers, single issue, %d-cycle main-memory\n",
		cfg.IntRegs, cfg.FloatRegs, cfg.MemCost)
	fmt.Fprintf(w, "operations, 1-cycle CCM operations. CCM sizes:")
	for _, s := range cfg.CCMSizes {
		fmt.Fprintf(w, " %dB", s)
	}
	fmt.Fprintf(w, ".\n\n")

	res, err := RunSuite(cfg)
	if err != nil {
		return err
	}
	section := func(title, body string) {
		fmt.Fprintf(w, "## %s\n\n```\n%s```\n\n", title, body)
	}
	section("Table 1 — spill-memory compaction", res.FormatTable1())
	section("Table 2 — per-routine speedups, 512-byte CCM", res.FormatTable2(512))
	section("Table 3 — 1024-byte CCM vs 512", res.FormatTable3(512, 1024))
	section("Table 4 — weighted-average reductions", res.FormatTable4())
	section("Figure 3 — program performance, 512-byte CCM", res.FormatFigure(3, 512))
	section("Figure 4 — program performance, 1024-byte CCM", res.FormatFigure(4, 1024))
	section("Per-family aggregation (512-byte CCM)", res.FormatByFamily(512))

	abl, err := Ablation43(cfg, nil)
	if err != nil {
		return err
	}
	section("§4.3 — memory-hierarchy ablation", FormatAblation(abl))

	mp, err := MultiProcess(cfg, nil, 1024)
	if err != nil {
		return err
	}
	section("§2.1 — multi-process CCM", FormatMultiProc(mp))
	return nil
}
