package experiments

import (
	"strings"
	"sync"
	"testing"
)

var (
	suiteOnce sync.Once
	suiteRes  *SuiteResults
	suiteErr  error
)

// suite runs the full measurement once and shares it across tests.
func suite(t *testing.T) *SuiteResults {
	t.Helper()
	suiteOnce.Do(func() {
		suiteRes, suiteErr = RunSuite(Default())
	})
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suiteRes
}

func TestSuiteShape(t *testing.T) {
	res := suite(t)
	if len(res.Routines) < 40 {
		t.Fatalf("only %d routines", len(res.Routines))
	}
	if len(res.Programs) < 8 {
		t.Fatalf("only %d programs", len(res.Programs))
	}
	spillers := 0
	for _, r := range res.Routines {
		if r.Spills() {
			spillers++
		}
	}
	// The paper: 59 of 122 routines required spill code (~48%).
	if spillers < len(res.Routines)/3 {
		t.Fatalf("only %d of %d routines spill", spillers, len(res.Routines))
	}
}

func TestTable1Invariants(t *testing.T) {
	res := suite(t)
	rows, total := res.Table1()
	if len(rows) < 8 {
		t.Fatalf("only %d compacted routines", len(rows))
	}
	for _, r := range rows {
		if r.After >= r.Before || r.After <= 0 {
			t.Errorf("%s: %d -> %d not a strict improvement", r.Name, r.Before, r.After)
		}
		if r.Before%8 != 0 || r.After%8 != 0 {
			t.Errorf("%s: unaligned byte counts", r.Name)
		}
	}
	ratio := total.Ratio()
	// Paper total: 0.68. Shape check: meaningful overall compaction.
	if ratio >= 0.9 || ratio <= 0.05 {
		t.Fatalf("total compaction ratio %.2f out of plausible range", ratio)
	}
	if !strings.Contains(res.FormatTable1(), "TOTAL") {
		t.Fatal("formatted table lacks TOTAL row")
	}
}

func TestTable2Invariants(t *testing.T) {
	res := suite(t)
	rows := res.Table2(512)
	if len(rows) < 15 {
		t.Fatalf("only %d spilling routines in Table 2", len(rows))
	}
	improvedSomewhere := 0
	for _, r := range rows {
		for st, pair := range r.Ratios {
			cyc, mem := pair[0], pair[1]
			if cyc > 1.0005 || mem > 1.0005 {
				t.Errorf("%s %v: ratio above 1 (%.3f / %.3f) — CCM made it slower", r.Name, st, cyc, mem)
			}
			if cyc <= 0 || mem <= 0 {
				t.Errorf("%s %v: nonpositive ratio", r.Name, st)
			}
			// Memory-op cycles improve at least as much as total cycles
			// (promotion only touches memory operations).
			if mem > cyc+0.0005 {
				t.Errorf("%s %v: mem ratio %.3f worse than total %.3f", r.Name, st, mem, cyc)
			}
			if cyc < 0.995 {
				improvedSomewhere++
			}
		}
	}
	if improvedSomewhere == 0 {
		t.Fatal("no routine improved at all")
	}
}

func TestInterproceduralAtLeastIntra(t *testing.T) {
	res := suite(t)
	for _, size := range res.Config.CCMSizes {
		for _, r := range res.Routines {
			if !r.Spills() {
				continue
			}
			intra, _ := r.Strat[Key{StrategyPostPass, size}].Ratio(r.Base)
			ipa, _ := r.Strat[Key{StrategyPostPassIPA, size}].Ratio(r.Base)
			if ipa > intra+0.0005 {
				t.Errorf("%s @%dB: call-graph post-pass (%.3f) worse than intra (%.3f)",
					r.Name, size, ipa, intra)
			}
		}
	}
}

func TestLargerCCMNeverHurts(t *testing.T) {
	res := suite(t)
	for _, r := range res.Routines {
		if !r.Spills() {
			continue
		}
		for _, st := range Strategies {
			small, _ := r.Strat[Key{st, 512}].Ratio(r.Base)
			large, _ := r.Strat[Key{st, 1024}].Ratio(r.Base)
			if large > small+0.0005 {
				t.Errorf("%s %v: 1024B (%.3f) worse than 512B (%.3f)", r.Name, st, large, small)
			}
		}
	}
}

func TestTable3OnlyImprovements(t *testing.T) {
	res := suite(t)
	rows := res.Table3(512, 1024)
	for _, r := range rows {
		improved := false
		for _, st := range Strategies {
			if r.Large[st][0] < r.Small[st][0]-1e-4 {
				improved = true
			}
		}
		if !improved {
			t.Errorf("%s in Table 3 without improvement", r.Name)
		}
	}
	// fpppp is engineered to overflow 512 bytes: it must appear.
	found := false
	for _, r := range rows {
		if r.Name == "fpppp" {
			found = true
		}
	}
	if !found {
		t.Error("fpppp missing from Table 3")
	}
}

func TestTable4ConsistentWithRows(t *testing.T) {
	res := suite(t)
	t4 := res.Table4()
	for _, st := range Strategies {
		for _, size := range res.Config.CCMSizes {
			cell := t4[Key{st, size}]
			if cell.TotalPct < 0 || cell.TotalPct > 60 {
				t.Errorf("%v @%d: total reduction %.1f%% implausible", st, size, cell.TotalPct)
			}
			if cell.MemPct < cell.TotalPct {
				t.Errorf("%v @%d: memory reduction below total", st, size)
			}
		}
	}
	// The paper's ordering: the call-graph post-pass dominates.
	for _, size := range res.Config.CCMSizes {
		if t4[Key{StrategyPostPassIPA, size}].TotalPct < t4[Key{StrategyPostPass, size}].TotalPct-1e-9 {
			t.Errorf("@%d: interprocedural below intra on weighted average", size)
		}
	}
}

func TestFiguresImprovedSubset(t *testing.T) {
	res := suite(t)
	for figNum, size := range map[int]int64{3: 512, 4: 1024} {
		rows := res.Figure(size)
		if len(rows) == 0 {
			t.Fatalf("figure %d empty", figNum)
		}
		if len(rows) > len(res.Programs) {
			t.Fatalf("figure %d larger than program set", figNum)
		}
		for _, r := range rows {
			best := 1.0
			for _, st := range Strategies {
				if v := r.Ratios[st][0]; v < best {
					best = v
				}
			}
			if best >= 0.995 {
				t.Errorf("figure %d: %s shown without improvement (best %.3f)", figNum, r.Name, best)
			}
		}
		out := res.FormatFigure(figNum, size)
		if !strings.Contains(out, "programs improved") {
			t.Fatalf("figure %d format missing summary", figNum)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Default()
	cfg.CCMSizes = []int64{512}
	a, err := RunRoutineSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRoutineSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FormatTable2(512) != b.FormatTable2(512) {
		t.Fatal("two runs produced different Table 2")
	}
	if a.FormatTable1() != b.FormatTable1() {
		t.Fatal("two runs produced different Table 1")
	}
}

func TestAblationInvariants(t *testing.T) {
	rows, err := Ablation43(Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(AblationRoutines) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.CCM >= 1.02 {
			t.Errorf("%s: CCM ratio %.3f — promotion hurt under a cache", r.Name, r.CCM)
		}
		if r.VictimCache > 1.0005 {
			t.Errorf("%s: victim cache made things worse (%.3f)", r.Name, r.VictimCache)
		}
		if r.MissBase < 0 || r.MissBase > 1 || r.MissCCM < 0 || r.MissCCM > 1 {
			t.Errorf("%s: miss rates out of range", r.Name)
		}
	}
	if _, err := Ablation43(Default(), []string{"nosuch"}); err == nil {
		t.Fatal("unknown routine accepted")
	}
	if out := FormatAblation(rows); !strings.Contains(out, "CCM") {
		t.Fatal("format broken")
	}
}

func TestFormatTablesRenderEverything(t *testing.T) {
	res := suite(t)
	for name, text := range map[string]string{
		"t1": res.FormatTable1(),
		"t2": res.FormatTable2(512),
		"t3": res.FormatTable3(512, 1024),
		"t4": res.FormatTable4(),
		"f3": res.FormatFigure(3, 512),
		"f4": res.FormatFigure(4, 1024),
	} {
		if len(text) < 40 {
			t.Errorf("%s suspiciously short:\n%s", name, text)
		}
	}
}

func TestMultiProcess(t *testing.T) {
	m, err := MultiProcess(Default(), nil, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if m.Partition*int64(len(m.Processes)) > m.CCMBytes {
		t.Fatal("partitions exceed the CCM")
	}
	if m.CopyCycles <= 0 || m.PartitionCycles <= 0 {
		t.Fatal("no cycles measured")
	}
	// Smaller per-process CCM can only slow processes down (or tie).
	if m.PartitionCycles < m.CopyCycles {
		t.Fatalf("partitioned run faster than whole-CCM run: %d < %d",
			m.PartitionCycles, m.CopyCycles)
	}
	if m.CopyPerSwitch <= 0 {
		t.Fatal("no switch cost for spill-heavy processes")
	}
	// At the break-even point, partitioning is at least as good.
	if m.TotalCopy(m.BreakEvenSwitches) < m.PartitionCycles {
		t.Fatalf("break-even miscomputed: copy(%d)=%d < partition=%d",
			m.BreakEvenSwitches, m.TotalCopy(m.BreakEvenSwitches), m.PartitionCycles)
	}
	if out := FormatMultiProc(m); !strings.Contains(out, "context switches") {
		t.Fatal("format broken")
	}
	t.Logf("\n%s", FormatMultiProc(m))

	if _, err := MultiProcess(Default(), []string{"nosuch"}, 1024); err == nil {
		t.Fatal("unknown routine accepted")
	}
	if _, err := MultiProcess(Default(), nil, 8); err == nil {
		t.Fatal("tiny CCM accepted")
	}
}

func TestCycPairRatio(t *testing.T) {
	base := CycPair{Cycles: 200, Mem: 100}
	c, m := CycPair{Cycles: 100, Mem: 40}.Ratio(base)
	if c != 0.5 || m != 0.4 {
		t.Fatalf("ratios %v %v", c, m)
	}
	c, m = CycPair{}.Ratio(CycPair{})
	if c != 1 || m != 1 {
		t.Fatal("zero base must yield 1")
	}
}

func TestStrategyStrings(t *testing.T) {
	names := map[Strategy]string{
		StrategyNone:        "Without CCM",
		StrategyPostPass:    "Post-Pass",
		StrategyPostPassIPA: "Post-Pass w/ Call Graph",
		StrategyIntegrated:  "Integrated",
	}
	for st, want := range names {
		if st.String() != want {
			t.Errorf("%d.String() = %q", st, st.String())
		}
	}
}

func TestProgramResultImproved(t *testing.T) {
	p := &ProgramResult{
		Base:  CycPair{Cycles: 1000, Mem: 500},
		Strat: map[Key]CycPair{{StrategyPostPass, 512}: {Cycles: 900, Mem: 400}},
	}
	if !p.Improved(512) {
		t.Fatal("10% improvement not detected")
	}
	p.Strat[Key{StrategyPostPass, 512}] = CycPair{Cycles: 999, Mem: 499}
	if p.Improved(512) {
		t.Fatal("0.1% counted as improvement")
	}
}

func TestByFamily(t *testing.T) {
	res := suite(t)
	rows := res.ByFamily(512)
	if len(rows) < 5 {
		t.Fatalf("only %d families", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if seen[r.Family] {
			t.Fatalf("family %s duplicated", r.Family)
		}
		seen[r.Family] = true
		for _, st := range Strategies {
			if r.Ratio[st] <= 0 || r.Ratio[st] > 1.0005 {
				t.Errorf("family %s %v ratio %.3f out of range", r.Family, st, r.Ratio[st])
			}
		}
	}
	for _, fam := range []string{"fft", "block", "applu", "linalg", "stencil", "dsp"} {
		if !seen[fam] {
			t.Errorf("family %s missing (no spillers?)", fam)
		}
	}
	if out := res.FormatByFamily(512); !strings.Contains(out, "Family") {
		t.Fatal("format broken")
	}
}

func TestWriteReport(t *testing.T) {
	cfg := Default()
	var sb strings.Builder
	if err := WriteReport(&sb, cfg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4",
		"Figure 3", "Figure 4", "ablation", "multi-process", "Per-family",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(out) < 2000 {
		t.Fatalf("report suspiciously short (%d bytes)", len(out))
	}
}
