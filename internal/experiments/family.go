package experiments

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
)

// FamilyRow aggregates Table-2 style results over one kernel family
// (fft, block, applu, linalg, stencil, dsp) — an analysis view the paper
// implies when it discusses which kinds of routines benefit.
type FamilyRow struct {
	Family   string
	Routines int // spilling routines in the family
	BaseCyc  int64
	Ratio    map[Strategy]float64 // weighted total-cycle ratio
	MemRatio map[Strategy]float64 // weighted memory-cycle ratio
}

// ByFamily aggregates the suite per kernel family at the given CCM size.
func (s *SuiteResults) ByFamily(size int64) []FamilyRow {
	type acc struct {
		n              int
		baseC, baseM   int64
		afterC, afterM map[Strategy]int64
	}
	groups := map[string]*acc{}
	for _, r := range s.Routines {
		if !r.Spills() {
			continue
		}
		g := groups[r.Family]
		if g == nil {
			g = &acc{afterC: map[Strategy]int64{}, afterM: map[Strategy]int64{}}
			groups[r.Family] = g
		}
		g.n++
		g.baseC += r.Base.Cycles
		g.baseM += r.Base.Mem
		for _, st := range Strategies {
			p := r.Strat[Key{st, size}]
			g.afterC[st] += p.Cycles
			g.afterM[st] += p.Mem
		}
	}
	var rows []FamilyRow
	for fam, g := range groups {
		row := FamilyRow{
			Family:   fam,
			Routines: g.n,
			BaseCyc:  g.baseC,
			Ratio:    map[Strategy]float64{},
			MemRatio: map[Strategy]float64{},
		}
		for _, st := range Strategies {
			if g.baseC > 0 {
				row.Ratio[st] = float64(g.afterC[st]) / float64(g.baseC)
			}
			if g.baseM > 0 {
				row.MemRatio[st] = float64(g.afterM[st]) / float64(g.baseM)
			}
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].BaseCyc > rows[j].BaseCyc })
	return rows
}

// FormatByFamily renders the family aggregation.
func (s *SuiteResults) FormatByFamily(size int64) string {
	rows := s.ByFamily(size)
	var b strings.Builder
	fmt.Fprintf(&b, "Per-family weighted cycle ratios with a %d-byte CCM\n", size)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "Family\tSpillers\tBase cycles\tPost-Pass\tw/ Call Graph\tIntegrated\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.2f(%.2f)\t%.2f(%.2f)\t%.2f(%.2f)\n",
			r.Family, r.Routines, r.BaseCyc,
			r.Ratio[StrategyPostPass], r.MemRatio[StrategyPostPass],
			r.Ratio[StrategyPostPassIPA], r.MemRatio[StrategyPostPassIPA],
			r.Ratio[StrategyIntegrated], r.MemRatio[StrategyIntegrated])
	}
	w.Flush()
	return b.String()
}
