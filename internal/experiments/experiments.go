// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) over the synthetic suite in internal/workload:
//
//	Table 1  — spill memory before/after coloring-based compaction
//	Table 2  — per-routine dynamic cycles, 512-byte CCM, three algorithms
//	Table 3  — routines whose speedup changes with a 1024-byte CCM
//	Table 4  — weighted-average reduction in cycles / memory-op cycles
//	Figure 3 — whole-program running times, 512-byte CCM
//	Figure 4 — whole-program running times, 1024-byte CCM
//	§4.3     — ablation: cache, write buffer, victim cache vs the CCM
//
// The machine model matches §4: 64 registers (32 GPR + 32 FPR), single
// issue, 2-cycle main-memory operations, 1-cycle everything else
// (CCM included).
package experiments

import (
	"context"
	"fmt"
	"time"

	"ccmem/internal/ir"
	"ccmem/internal/pipeline"
	"ccmem/internal/sim"
	"ccmem/internal/workload"
)

// Strategy selects a CCM allocation algorithm (paper §3).
type Strategy int

const (
	// StrategyNone is the plain Chaitin-Briggs allocator: all spills go to
	// the activation record ("Without CCM").
	StrategyNone Strategy = iota
	// StrategyPostPass is the stand-alone post-pass CCM allocator without
	// interprocedural information.
	StrategyPostPass
	// StrategyPostPassIPA is the post-pass allocator driven by the call
	// graph ("Post-Pass w/ Call Graph").
	StrategyPostPassIPA
	// StrategyIntegrated folds CCM allocation into spill-code insertion
	// inside the register allocator (paper §3.2).
	StrategyIntegrated

	numStrategies
)

func (s Strategy) String() string {
	switch s {
	case StrategyNone:
		return "Without CCM"
	case StrategyPostPass:
		return "Post-Pass"
	case StrategyPostPassIPA:
		return "Post-Pass w/ Call Graph"
	case StrategyIntegrated:
		return "Integrated"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Strategies lists the three CCM algorithms compared in Tables 2-4.
var Strategies = []Strategy{StrategyPostPass, StrategyPostPassIPA, StrategyIntegrated}

// Config parameterizes a suite run.
type Config struct {
	MemCost   int     // main-memory op cost; paper: 2
	CCMSizes  []int64 // paper: 512 and 1024 bytes
	IntRegs   int     // paper: 32
	FloatRegs int     // paper: 32

	// Driver, when non-nil, is the compilation driver every measurement
	// goes through — sharing one driver shares its artifact cache and
	// accumulates pass/cache metrics across tables, figures, and
	// ablations (ccmbench -json prints them). When nil, each suite entry
	// point builds a private driver.
	Driver *pipeline.Driver

	// VerifyPasses checkpoints IR and liveness invariants after every
	// compilation pass; Strict fails a measurement on the first pass
	// fault instead of letting the driver degrade the function (degraded
	// code would silently skew the tables, so benchmarking wants Strict).
	VerifyPasses bool
	Strict       bool
	// FuncTimeout bounds each per-function compile attempt (0 = none);
	// ReproDir receives crash repro bundles for any pass fault.
	FuncTimeout time.Duration
	ReproDir    string

	// DiffCheck runs the differential-execution miscompile oracle on
	// every measured compile: wrong code would skew the tables as
	// silently as degraded code, so benchmarking wants it on (with
	// Strict, a divergence aborts the run as a *pipeline.MiscompileError
	// rather than quarantining).
	DiffCheck pipeline.DiffCheck

	// Ctx, when non-nil, cancels in-flight measurements cooperatively at
	// pass boundaries (ccmbench binds it to SIGINT/SIGTERM so an
	// interrupted sweep stops cleanly at the next boundary instead of
	// dying mid-write). Nil means never cancelled.
	Ctx context.Context

	// ShardIndex/ShardCount partition the routine suite across
	// cooperating processes (ccmbench -farm): RunRoutineSuite measures
	// only the routines whose position in workload.All() is congruent to
	// ShardIndex modulo ShardCount. Every measurement is simulated
	// cycles, so a merge of all shards (MergeRoutineShards) is
	// byte-identical to a solo run. ShardCount <= 1 disables
	// partitioning.
	ShardIndex int
	ShardCount int
}

// ctx returns the configured cancellation context or Background.
func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// Default returns the paper's configuration.
func Default() Config {
	return Config{MemCost: 2, CCMSizes: []int64{512, 1024}, IntRegs: 32, FloatRegs: 32}
}

// driver returns the configured driver or a fresh private one.
func (c Config) driver() *pipeline.Driver {
	if c.Driver != nil {
		return c.Driver
	}
	return pipeline.New(pipeline.Options{})
}

// pipelineStrategy maps the experiment strategy onto the driver's.
func (s Strategy) pipelineStrategy() pipeline.Strategy {
	switch s {
	case StrategyPostPass:
		return pipeline.PostPass
	case StrategyPostPassIPA:
		return pipeline.PostPassInterproc
	case StrategyIntegrated:
		return pipeline.Integrated
	}
	return pipeline.NoCCM
}

// CycPair is a (total cycles, memory-operation cycles) measurement.
type CycPair struct {
	Cycles int64
	Mem    int64
}

// Ratio returns p relative to base, per the paper's table format.
func (p CycPair) Ratio(base CycPair) (cyc, mem float64) {
	cyc, mem = 1, 1
	if base.Cycles > 0 {
		cyc = float64(p.Cycles) / float64(base.Cycles)
	}
	if base.Mem > 0 {
		mem = float64(p.Mem) / float64(base.Mem)
	}
	return cyc, mem
}

// Key identifies one compiled variant.
type Key struct {
	Strategy Strategy
	CCMBytes int64
}

// RoutineResult holds all measurements for one suite routine.
type RoutineResult struct {
	Name   string
	Family string

	SpillBefore int64 // naive spill bytes (one slot per spilled range)
	SpillAfter  int64 // after coloring-based compaction
	Webs        int   // spill-location live ranges

	Base  CycPair         // plain allocator, no CCM
	Strat map[Key]CycPair // per strategy and CCM size
	Promo map[Key]int     // webs promoted (post-pass strategies)
}

// Spills reports whether the routine needed spill code at all; the paper's
// tables include only such routines.
func (r *RoutineResult) Spills() bool { return r.SpillBefore > 0 }

// ProgramResult holds whole-program totals (Figures 3 and 4).
type ProgramResult struct {
	Name  string
	Base  CycPair
	Strat map[Key]CycPair
}

// Improved reports whether any strategy at the given size beats the
// baseline by more than 0.5% (the paper shows "the six programs (out of
// 13) which showed improvement").
func (p *ProgramResult) Improved(size int64) bool {
	for _, s := range Strategies {
		if c, ok := p.Strat[Key{s, size}]; ok {
			cyc, _ := c.Ratio(p.Base)
			if cyc < 0.995 {
				return true
			}
		}
	}
	return false
}

// SuiteResults is everything needed to print all tables and figures.
type SuiteResults struct {
	Config   Config
	Routines []*RoutineResult
	Programs []*ProgramResult
}

// compileWith drives one compilation through drv. compact controls the
// back stage: the table and figure measurements pack residual
// heavyweight spills (paper footnote 3), while the ablation and
// multi-process studies skip compaction so the spill address streams
// their cache models observe match the paper-faithful harness.
func compileWith(drv *pipeline.Driver, p *ir.Program, strat Strategy, ccmBytes int64, cfg Config, compact bool) (*pipeline.Report, error) {
	return drv.CompileContext(cfg.ctx(), p, pipeline.Config{
		Strategy:          strat.pipelineStrategy(),
		CCMBytes:          ccmBytes,
		IntRegs:           cfg.IntRegs,
		FloatRegs:         cfg.FloatRegs,
		DisableCompaction: !compact,
		VerifyPasses:      cfg.VerifyPasses,
		Strict:            cfg.Strict,
		FuncTimeout:       cfg.FuncTimeout,
		ReproDir:          cfg.ReproDir,
		DiffCheck:         cfg.DiffCheck,
	})
}

// runProgram executes a compiled program and returns whole-program and
// per-function measurements.
func runProgram(p *ir.Program, ccmBytes int64, cfg Config) (*sim.Stats, error) {
	return sim.Run(p, "main", sim.Config{MemCost: cfg.MemCost, CCMBytes: ccmBytes})
}

// measureRoutine compiles and runs one routine under one variant,
// returning the measured function's exclusive costs and promotion count.
// Residual heavyweight spills are packed (paper footnote 3); this is
// cycle-neutral but keeps frame sizes honest.
func measureRoutine(drv *pipeline.Driver, r workload.Routine, strat Strategy, ccmBytes int64, cfg Config) (CycPair, int, error) {
	p, err := r.Build()
	if err != nil {
		return CycPair{}, 0, err
	}
	if _, err := compileWith(drv, p, strat, ccmBytes, cfg, true); err != nil {
		return CycPair{}, 0, err
	}
	promoted := 0
	if strat == StrategyPostPass || strat == StrategyPostPassIPA {
		promoted = countCCMOps(p.Func(r.Name))
	}
	st, err := runProgram(p, ccmBytes, cfg)
	if err != nil {
		return CycPair{}, 0, err
	}
	fs := st.PerFunc[r.Name]
	if fs == nil {
		return CycPair{}, 0, fmt.Errorf("routine %s not executed", r.Name)
	}
	return CycPair{Cycles: fs.Cycles, Mem: fs.MemOpCycles}, promoted, nil
}

func countCCMOps(f *ir.Func) int {
	n := 0
	if f == nil {
		return 0
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op.IsCCMOp() {
				n++
			}
		}
	}
	return n
}

// RunSuite performs every compile+run combination needed by the tables
// and figures: per routine and per program, the baseline plus each
// strategy at each CCM size. The whole run shares one driver, so the
// compile cache carries artifacts across variants (the front stage is
// identical for the baseline and both post-pass strategies).
func RunSuite(cfg Config) (*SuiteResults, error) {
	if cfg.Driver == nil {
		cfg.Driver = cfg.driver()
	}
	res, err := RunRoutineSuite(cfg)
	if err != nil {
		return nil, err
	}
	progs, err := RunProgramSuite(cfg)
	if err != nil {
		return nil, err
	}
	res.Programs = progs.Programs
	return res, nil
}

// RunRoutineSuite measures every routine (Tables 1-4).
func RunRoutineSuite(cfg Config) (*SuiteResults, error) {
	res := &SuiteResults{Config: cfg}
	drv := cfg.driver()

	for i, r := range workload.All() {
		if cfg.ShardCount > 1 && i%cfg.ShardCount != cfg.ShardIndex {
			continue
		}
		rr := &RoutineResult{
			Name:   r.Name,
			Family: r.Family,
			Strat:  map[Key]CycPair{},
			Promo:  map[Key]int{},
		}

		// Baseline (and Table 1 compaction measurements).
		p, err := r.Build()
		if err != nil {
			return nil, err
		}
		rep, err := compileWith(drv, p, StrategyNone, 0, cfg, true)
		if err != nil {
			return nil, fmt.Errorf("routine %s: %w", r.Name, err)
		}
		fr := rep.PerFunc[r.Name]
		rr.SpillBefore = fr.SpillBytesNaive
		rr.SpillAfter = fr.SpillBytesCompacted
		rr.Webs = fr.SpillWebs
		st, err := runProgram(p, 0, cfg)
		if err != nil {
			return nil, fmt.Errorf("routine %s baseline: %w", r.Name, err)
		}
		fs := st.PerFunc[r.Name]
		rr.Base = CycPair{Cycles: fs.Cycles, Mem: fs.MemOpCycles}

		for _, size := range cfg.CCMSizes {
			for _, strat := range Strategies {
				pair, promo, err := measureRoutine(drv, r, strat, size, cfg)
				if err != nil {
					return nil, fmt.Errorf("routine %s %v/%d: %w", r.Name, strat, size, err)
				}
				k := Key{strat, size}
				rr.Strat[k] = pair
				rr.Promo[k] = promo
			}
		}
		res.Routines = append(res.Routines, rr)
	}
	return res, nil
}

// RunProgramSuite measures the whole-program workloads (Figures 3-4).
func RunProgramSuite(cfg Config) (*SuiteResults, error) {
	res := &SuiteResults{Config: cfg}
	drv := cfg.driver()
	for _, bp := range workload.Programs() {
		pr := &ProgramResult{Name: bp.Name, Strat: map[Key]CycPair{}}
		p, err := bp.Build()
		if err != nil {
			return nil, err
		}
		if _, err := compileWith(drv, p, StrategyNone, 0, cfg, true); err != nil {
			return nil, fmt.Errorf("program %s: %w", bp.Name, err)
		}
		st, err := runProgram(p, 0, cfg)
		if err != nil {
			return nil, fmt.Errorf("program %s baseline: %w", bp.Name, err)
		}
		pr.Base = CycPair{Cycles: st.Cycles, Mem: st.MemOpCycles}

		for _, size := range cfg.CCMSizes {
			for _, strat := range Strategies {
				q, err := bp.Build()
				if err != nil {
					return nil, err
				}
				if _, err := compileWith(drv, q, strat, size, cfg, true); err != nil {
					return nil, fmt.Errorf("program %s %v/%d: %w", bp.Name, strat, size, err)
				}
				st, err := runProgram(q, size, cfg)
				if err != nil {
					return nil, fmt.Errorf("program %s %v/%d: %w", bp.Name, strat, size, err)
				}
				pr.Strat[Key{strat, size}] = CycPair{Cycles: st.Cycles, Mem: st.MemOpCycles}
			}
		}
		res.Programs = append(res.Programs, pr)
	}
	return res, nil
}
