package repro

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteLoadRoundtrip: Write stamps the current format version and
// Load returns the bundle unchanged, including the version-2
// differential fields.
func TestWriteLoadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	b := &Bundle{
		Kind:    KindMiscompile,
		Func:    "main",
		Pass:    "optimize",
		Program: "func main() {\nentry:\n\tret\n}\n",
		Post:    "func main() {\nentry:\n\tret\n}\n",
		Seed:    0xdeadbeef,
		Entry:   "main",
		Error:   "trace[0] = 1 vs 2",
	}
	path, err := Write(dir, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != Version {
		t.Errorf("Version = %d, want %d", got.Version, Version)
	}
	if got.Kind != KindMiscompile || got.Post != b.Post || got.Seed != b.Seed || got.Entry != b.Entry {
		t.Errorf("differential fields did not round-trip: %+v", got)
	}
}

func writeRaw(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadVersionRange: version 1 bundles stay loadable, missing and
// future versions are rejected with errors that say what to do.
func TestLoadVersionRange(t *testing.T) {
	if b, err := Load(writeRaw(t, "v1.repro.json",
		`{"version":1,"kind":"parse","program":"x","error":"e"}`)); err != nil || b.Version != 1 {
		t.Errorf("version-1 bundle rejected: %v", err)
	}
	if _, err := Load(writeRaw(t, "v0.repro.json",
		`{"kind":"parse","program":"x","error":"e"}`)); err == nil || !strings.Contains(err.Error(), "no version") {
		t.Errorf("versionless bundle accepted (err=%v)", err)
	}
	if _, err := Load(writeRaw(t, "v99.repro.json",
		`{"version":99,"kind":"parse","program":"x","error":"e"}`)); err == nil || !strings.Contains(err.Error(), "newer than supported") {
		t.Errorf("future-version bundle accepted (err=%v)", err)
	}
}

// reasonOf asserts err is a structured *Error and returns its Reason.
func reasonOf(t *testing.T, err error) string {
	t.Helper()
	var re *Error
	if !errors.As(err, &re) {
		t.Fatalf("error is not a structured *repro.Error: %v", err)
	}
	return re.Reason
}

// TestStructuredErrors: every failure path returns a *Error whose
// Op/Path/Reason classify it — never a bare os error a caller would have
// to string-match.
func TestStructuredErrors(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "never-written.repro.json")
	if _, err := Load(missing); reasonOf(t, err) != ReasonMissing {
		t.Errorf("missing file: reason = %q, want %q", reasonOf(t, err), ReasonMissing)
	}

	if _, err := Load(writeRaw(t, "junk.repro.json", "{not json")); reasonOf(t, err) != ReasonMalformed {
		t.Errorf("malformed file: reason = %q, want %q", reasonOf(t, err), ReasonMalformed)
	}

	if _, err := Load(writeRaw(t, "v0.repro.json",
		`{"kind":"parse","program":"x","error":"e"}`)); reasonOf(t, err) != ReasonUnversioned {
		t.Errorf("versionless bundle: reason = %q, want %q", reasonOf(t, err), ReasonUnversioned)
	}
	if _, err := Load(writeRaw(t, "v99.repro.json",
		`{"version":99,"kind":"parse","program":"x","error":"e"}`)); reasonOf(t, err) != ReasonTooNew {
		t.Errorf("future bundle: reason = %q, want %q", reasonOf(t, err), ReasonTooNew)
	}
	if _, err := Load(writeRaw(t, "nokind.repro.json",
		`{"version":1,"program":"x","error":"e"}`)); reasonOf(t, err) != ReasonKindless {
		t.Errorf("kindless bundle: reason = %q, want %q", reasonOf(t, err), ReasonKindless)
	}
}

// TestLoadDirMissingIsStructured: pointing a replay at a directory that
// does not exist is a classified error, not an empty corpus and not a
// bare os.ErrNotExist.
func TestLoadDirMissingIsStructured(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "no-such-corpus")
	bundles, err := LoadDir(dir)
	if err == nil {
		t.Fatalf("LoadDir(%s) = %d bundles, nil error; want a structured error", dir, len(bundles))
	}
	var re *Error
	if !errors.As(err, &re) {
		t.Fatalf("LoadDir error is not a *repro.Error: %v", err)
	}
	if re.Op != "load-dir" || re.Reason != ReasonMissing || re.Path != dir {
		t.Errorf("error fields: %+v", re)
	}
	if !errors.Is(err, os.ErrNotExist) {
		t.Error("underlying os cause not preserved for errors.Is")
	}
}

// TestLoadDirBrokenBundle: a corpus containing one broken bundle aborts
// with that bundle's structured error (naming the file), rather than
// silently skipping it.
func TestLoadDirBrokenBundle(t *testing.T) {
	dir := t.TempDir()
	if _, err := Write(dir, &Bundle{Kind: KindParse, Program: "x", Error: "e"}); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "broken.repro.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadDir(dir)
	var re *Error
	if !errors.As(err, &re) {
		t.Fatalf("broken bundle error is not structured: %v", err)
	}
	if re.Path != bad || re.Reason != ReasonMalformed {
		t.Errorf("error fields: %+v", re)
	}
}

// TestTenantDir pins the tenant-isolation contract: a tenant name is a
// single validated path component under the base directory — nothing a
// request sends can step outside it.
func TestTenantDir(t *testing.T) {
	dir, err := TenantDir("/bundles", "team-a")
	if err != nil {
		t.Fatalf("TenantDir: %v", err)
	}
	if want := filepath.Join("/bundles", "team-a"); dir != want {
		t.Fatalf("dir = %q, want %q", dir, want)
	}
	for _, bad := range []string{
		"", ".", "..", "../x", "a/b", `a\b`, "-lead", ".hidden",
		"has space", "x\x00y", strings.Repeat("a", 65),
	} {
		if ValidTenant(bad) {
			t.Errorf("ValidTenant(%q) = true", bad)
		}
		if _, err := TenantDir("/bundles", bad); err == nil {
			t.Errorf("TenantDir(%q) accepted", bad)
		}
	}
	for _, good := range []string{"a", "team-a", "A.B_c-9", strings.Repeat("a", 64)} {
		if !ValidTenant(good) {
			t.Errorf("ValidTenant(%q) = false", good)
		}
	}
	if _, err := TenantDir("", "team-a"); err == nil {
		t.Errorf("TenantDir with empty base accepted")
	}
	var re *Error
	_, err = TenantDir("/bundles", "../x")
	if !errors.As(err, &re) || re.Op != "tenant-dir" || re.Reason != ReasonMalformed {
		t.Fatalf("TenantDir error not structured: %v", err)
	}
}
