package repro

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteLoadRoundtrip: Write stamps the current format version and
// Load returns the bundle unchanged, including the version-2
// differential fields.
func TestWriteLoadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	b := &Bundle{
		Kind:    KindMiscompile,
		Func:    "main",
		Pass:    "optimize",
		Program: "func main() {\nentry:\n\tret\n}\n",
		Post:    "func main() {\nentry:\n\tret\n}\n",
		Seed:    0xdeadbeef,
		Entry:   "main",
		Error:   "trace[0] = 1 vs 2",
	}
	path, err := Write(dir, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != Version {
		t.Errorf("Version = %d, want %d", got.Version, Version)
	}
	if got.Kind != KindMiscompile || got.Post != b.Post || got.Seed != b.Seed || got.Entry != b.Entry {
		t.Errorf("differential fields did not round-trip: %+v", got)
	}
}

func writeRaw(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadVersionRange: version 1 bundles stay loadable, missing and
// future versions are rejected with errors that say what to do.
func TestLoadVersionRange(t *testing.T) {
	if b, err := Load(writeRaw(t, "v1.repro.json",
		`{"version":1,"kind":"parse","program":"x","error":"e"}`)); err != nil || b.Version != 1 {
		t.Errorf("version-1 bundle rejected: %v", err)
	}
	if _, err := Load(writeRaw(t, "v0.repro.json",
		`{"kind":"parse","program":"x","error":"e"}`)); err == nil || !strings.Contains(err.Error(), "no version") {
		t.Errorf("versionless bundle accepted (err=%v)", err)
	}
	if _, err := Load(writeRaw(t, "v99.repro.json",
		`{"version":99,"kind":"parse","program":"x","error":"e"}`)); err == nil || !strings.Contains(err.Error(), "newer than supported") {
		t.Errorf("future-version bundle accepted (err=%v)", err)
	}
}
