// Package repro defines the crash-reproduction bundle format shared by
// the compilation pipeline, the fuzzers, and the command-line tools. A
// bundle is a single self-contained JSON file capturing everything needed
// to replay a failure deterministically: the input program text, the pass
// sequence that was attempted, the configuration it ran under, and the
// error (with panic stack, when the failure was a panic).
//
// The package is deliberately free of compiler imports so that any layer
// — including the IR package's own fuzz tests — can write bundles without
// creating an import cycle. Replaying a bundle lives one layer up, in
// internal/pipeline.
package repro

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Version is the current bundle-format version; Load rejects bundles
// from a newer format than it understands, and bundles that carry no
// version at all. Version 2 added the differential-execution fields
// (Post, Seed, Entry) and the miscompile kind; version-1 bundles remain
// loadable.
const Version = 2

// Bundle kinds: which stage of the toolchain the failure occurred in.
const (
	KindCompile    = "compile"    // a pipeline pass failed, panicked, or broke an invariant
	KindParse      = "parse"      // the textual front end failed (fuzzer finding)
	KindRun        = "run"        // the simulator rejected or faulted on a program
	KindMiscompile = "miscompile" // the differential oracle observed wrong code (internal/oracle)
)

// Bundle is one replayable failure.
type Bundle struct {
	Version int      `json:"version"`
	Kind    string   `json:"kind"`
	Func    string   `json:"func,omitempty"`   // failing function ("" = whole program)
	Pass    string   `json:"pass,omitempty"`   // pass that failed or first broke an invariant
	Level   string   `json:"level,omitempty"`  // degradation rung active during the attempt
	Passes  []string `json:"passes,omitempty"` // pass sequence that was attempted, in order

	// Program is the full ILOC text of the input (pre-failure). Bundles
	// carry the whole program, not just the failing function, so replays
	// see identical call-graph context.
	Program string `json:"program"`

	// Miscompile bundles additionally carry the divergent compiled
	// program, the argument-vector seed, and the entry function whose
	// execution exposed the divergence, so a replay re-runs the exact
	// differential check that fired.
	Post  string `json:"post,omitempty"`
	Seed  uint64 `json:"seed,omitempty"`
	Entry string `json:"entry,omitempty"`

	// Config is the JSON encoding of the configuration the failure
	// occurred under (a pipeline.Config for compile bundles, a simulator
	// config for run bundles). Kept as raw JSON so this package stays
	// import-free; the replayer unmarshals it into the concrete type.
	Config json.RawMessage `json:"config,omitempty"`

	Error string `json:"error"`
	Stack string `json:"stack,omitempty"` // goroutine stack when the failure was a panic
}

// Filename returns the canonical, content-addressed name for the bundle:
// <kind>-<func|prog>-<sha256/8>.repro.json. Writing the same failure twice
// therefore overwrites rather than accumulates.
func (b *Bundle) Filename() string {
	who := b.Func
	if who == "" {
		who = "prog"
	}
	who = sanitize(who)
	h := sha256.Sum256([]byte(b.Kind + "\x00" + b.Func + "\x00" + b.Pass + "\x00" + b.Program + "\x00" + b.Error))
	return fmt.Sprintf("%s-%s-%s.repro.json", b.Kind, who, hex.EncodeToString(h[:4]))
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			return r
		}
		return '_'
	}, s)
}

// tenantRE constrains tenant names to a single safe path component: it
// must start with an alphanumeric and may continue with alphanumerics,
// dots, dashes, and underscores — which structurally rules out path
// separators, "..", and hidden-file prefixes.
var tenantRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// ValidTenant reports whether name is usable as a tenant namespace: a
// single path component, 1-64 characters, starting alphanumeric and
// containing only [A-Za-z0-9._-].
func ValidTenant(name string) bool { return tenantRE.MatchString(name) }

// TenantDir maps a tenant name onto its isolated bundle namespace under
// base: base/<tenant>. Multi-tenant callers (the compile service) route
// each tenant's crash and miscompile bundles through this so one
// tenant's failures never land in — or overwrite content-addressed
// names in — another tenant's directory. The tenant name is validated,
// never interpreted: anything that could escape the base directory or
// collide with another namespace is rejected as a *Error.
func TenantDir(base, tenant string) (string, error) {
	if base == "" {
		return "", &Error{Op: "tenant-dir", Path: base, Reason: ReasonMalformed,
			Detail: "empty base directory"}
	}
	if !ValidTenant(tenant) {
		return "", &Error{Op: "tenant-dir", Path: base, Reason: ReasonMalformed,
			Detail: fmt.Sprintf("invalid tenant %q (want 1-64 chars of [A-Za-z0-9._-], starting alphanumeric)", tenant)}
	}
	return filepath.Join(base, tenant), nil
}

// Error reason classifications: stable strings a caller (or a script
// driving a replay tool) can branch on without parsing messages.
const (
	ReasonMissing     = "missing"     // the path does not exist
	ReasonUnreadable  = "unreadable"  // the path exists but could not be read
	ReasonMalformed   = "malformed"   // the file is not bundle JSON
	ReasonUnversioned = "unversioned" // the bundle carries no format version
	ReasonTooNew      = "too-new"     // the bundle's format postdates this toolchain
	ReasonKindless    = "kindless"    // the bundle does not say which stage failed
)

// Error is the structured failure for bundle I/O. Every path Load,
// LoadDir, and Write can fail on returns one, so callers distinguish "the
// repro directory isn't there" from "a bundle inside it is broken"
// without matching on os error strings.
type Error struct {
	Op     string // "load", "load-dir", "write", or "tenant-dir"
	Path   string // the file or directory the failure is about
	Reason string // one of the Reason constants
	Detail string // human-readable specifics (what to do about it)
	Err    error  // underlying cause, when one exists
}

func (e *Error) Error() string {
	msg := fmt.Sprintf("repro: %s %s: %s", e.Op, e.Path, e.Reason)
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *Error) Unwrap() error { return e.Err }

// Write marshals b into dir (creating it if needed) and returns the path
// of the file written.
func Write(dir string, b *Bundle) (string, error) {
	if b.Version == 0 {
		b.Version = Version
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", &Error{Op: "write", Path: dir, Reason: ReasonUnreadable, Detail: "cannot create repro directory", Err: err}
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return "", &Error{Op: "write", Path: dir, Reason: ReasonMalformed, Detail: "cannot marshal bundle", Err: err}
	}
	path := filepath.Join(dir, b.Filename())
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", &Error{Op: "write", Path: path, Reason: ReasonUnreadable, Err: err}
	}
	return path, nil
}

// Load reads one bundle. Failures are *Error values classifying what
// went wrong: the file is missing, unreadable, not bundle JSON, or a
// bundle this toolchain cannot replay.
func Load(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		reason := ReasonUnreadable
		if os.IsNotExist(err) {
			reason = ReasonMissing
		}
		return nil, &Error{Op: "load", Path: path, Reason: reason, Err: err}
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, &Error{Op: "load", Path: path, Reason: ReasonMalformed, Detail: "not a repro bundle", Err: err}
	}
	if b.Version == 0 {
		return nil, &Error{Op: "load", Path: path, Reason: ReasonUnversioned,
			Detail: fmt.Sprintf("bundle has no version (want 1..%d)", Version)}
	}
	if b.Version > Version {
		return nil, &Error{Op: "load", Path: path, Reason: ReasonTooNew,
			Detail: fmt.Sprintf("bundle version %d is newer than supported %d; upgrade the toolchain to replay it", b.Version, Version)}
	}
	if b.Kind == "" {
		return nil, &Error{Op: "load", Path: path, Reason: ReasonKindless, Detail: "bundle has no kind"}
	}
	return &b, nil
}

// LoadDir reads every *.repro.json bundle under dir, sorted by filename.
// A missing directory is a *Error with ReasonMissing — a replay pointed
// at the wrong path should say so rather than report an empty corpus —
// and any unreadable bundle inside aborts the load with its own *Error.
func LoadDir(dir string) ([]*Bundle, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, &Error{Op: "load-dir", Path: dir, Reason: ReasonMissing,
			Detail: "repro directory does not exist", Err: err}
	}
	if err != nil {
		return nil, &Error{Op: "load-dir", Path: dir, Reason: ReasonUnreadable, Err: err}
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".repro.json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	out := make([]*Bundle, 0, len(names))
	for _, n := range names {
		b, err := Load(filepath.Join(dir, n))
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}
