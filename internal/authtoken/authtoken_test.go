package authtoken

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

func TestLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "token")
	if err := os.WriteFile(path, []byte("s3cret\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	got, err := Load("", path)
	if err != nil || got != "s3cret" {
		t.Fatalf("Load(file) = %q, %v; want s3cret", got, err)
	}
	got, err = Load("literal", "")
	if err != nil || got != "literal" {
		t.Fatalf("Load(literal) = %q, %v", got, err)
	}
	if got, err = Load("", ""); err != nil || got != "" {
		t.Fatalf("Load(none) = %q, %v; want empty, nil", got, err)
	}
	if _, err = Load("both", path); err == nil {
		t.Fatalf("Load with both sources should fail")
	}
	empty := filepath.Join(dir, "empty")
	if err := os.WriteFile(empty, []byte(" \n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err = Load("", empty); err == nil {
		t.Fatalf("empty token file should be a configuration error, not open access")
	}
	if _, err = Load("", filepath.Join(dir, "missing")); err == nil {
		t.Fatalf("missing token file should error")
	}
}

func TestEqual(t *testing.T) {
	if !Equal("abc", "abc") {
		t.Fatalf("equal tokens must match")
	}
	if Equal("abc", "abd") || Equal("", "abc") || Equal("ab", "abc") {
		t.Fatalf("unequal tokens must not match")
	}
	// An empty configured token matches nothing, not everything.
	if Equal("", "") || Equal("x", "") {
		t.Fatalf("empty want must never match")
	}
}

func TestFromRequestAndAuthorize(t *testing.T) {
	cases := []struct {
		header string
		want   string
	}{
		{"Bearer tok", "tok"},
		{"bearer tok", "tok"}, // scheme is case-insensitive
		{"Bearer  tok", "tok"},
		{"Basic dXNlcg==", ""},
		{"Bearer", ""}, // no token part
		{"", ""},
	}
	for _, c := range cases {
		r := httptest.NewRequest("GET", "/", nil)
		if c.header != "" {
			r.Header.Set("Authorization", c.header)
		}
		if got := FromRequest(r); got != c.want {
			t.Errorf("FromRequest(%q) = %q, want %q", c.header, got, c.want)
		}
	}

	r := httptest.NewRequest("GET", "/", nil)
	if !Authorize(r, "") {
		t.Fatalf("disabled auth (empty want) must pass everything")
	}
	if Authorize(r, "tok") {
		t.Fatalf("missing header must fail against a configured token")
	}
	r.Header.Set("Authorization", "Bearer tok")
	if !Authorize(r, "tok") {
		t.Fatalf("correct bearer token must pass")
	}
}
