// Package authtoken is the fleet's shared-secret authentication
// primitive: one bearer token, distributed out of band, presented on
// every request between fleet members (clients of ccmd, and ccmd /
// ccmbench workers talking to ccmcached).
//
// The scheme is deliberately minimal — a single shared secret compared
// in constant time — because the threat model is "keep strangers and
// misconfigured processes out of the fleet", not per-user identity.
// What the package does guarantee:
//
//   - the comparison is constant-time (crypto/subtle), so the check
//     leaks nothing about the token through timing;
//   - tokens loaded from a file are trimmed of trailing whitespace, so
//     `echo secret > tokenfile` works, and an empty resolved token is an
//     explicit configuration error rather than silently-open access;
//   - extraction is strict: only a well-formed "Authorization: Bearer
//     <token>" header matches — a malformed header is simply absent.
package authtoken

import (
	"crypto/subtle"
	"fmt"
	"net/http"
	"os"
	"strings"
)

// Load resolves the -auth-token / -auth-file flag pair every daemon and
// client exposes: at most one may be set, and a file's content is
// trimmed of surrounding whitespace (one trailing newline is how tokens
// land in files). An empty result with file set is an error — an empty
// token file almost certainly means a provisioning step failed, and
// treating it as "no auth" would silently open the daemon.
func Load(token, file string) (string, error) {
	if token != "" && file != "" {
		return "", fmt.Errorf("authtoken: set a literal token or a token file, not both")
	}
	if file == "" {
		return token, nil
	}
	raw, err := os.ReadFile(file)
	if err != nil {
		return "", fmt.Errorf("authtoken: read token file: %w", err)
	}
	tok := strings.TrimSpace(string(raw))
	if tok == "" {
		return "", fmt.Errorf("authtoken: token file %s is empty", file)
	}
	return tok, nil
}

// Equal compares a presented token against the configured one in
// constant time. An empty want never matches — callers gate on want !=
// "" before enforcing, and this keeps a missing header from matching a
// missing configuration.
func Equal(got, want string) bool {
	if want == "" {
		return false
	}
	return subtle.ConstantTimeCompare([]byte(got), []byte(want)) == 1
}

// FromRequest extracts the bearer token from r's Authorization header,
// or "" when the header is absent or not a bearer credential. The
// scheme comparison is case-insensitive per RFC 6750; the token itself
// is returned verbatim.
func FromRequest(r *http.Request) string {
	auth := r.Header.Get("Authorization")
	scheme, token, ok := strings.Cut(auth, " ")
	if !ok || !strings.EqualFold(scheme, "Bearer") {
		return ""
	}
	return strings.TrimSpace(token)
}

// Authorize reports whether r may pass a check against want. An empty
// want means authentication is disabled and everything passes.
func Authorize(r *http.Request, want string) bool {
	if want == "" {
		return true
	}
	return Equal(FromRequest(r), want)
}
