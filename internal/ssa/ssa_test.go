package ssa

import (
	"testing"

	"ccmem/internal/cfg"
	"ccmem/internal/ir"
	"ccmem/internal/sim"
	"ccmem/internal/workload"
)

func parseFunc(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.VerifyProgram(p, ir.VerifyOptions{}); err != nil {
		t.Fatal(err)
	}
	return p
}

const loopSrc = `
func main() {
entry:
	r0 = loadi 0
	r1 = loadi 5
	r2 = loadi 1
	jmp head
head:
	r3 = cmplt r0, r1
	cbr r3, body, exit
body:
	r0 = add r0, r2
	jmp head
exit:
	emit r0
	ret
}
`

func TestBuildProducesValidSSA(t *testing.T) {
	p := parseFunc(t, loopSrc)
	f := p.Funcs[0]
	info, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.VerifyProgram(p, ir.VerifyOptions{AllowPhi: true}); err != nil {
		t.Fatalf("verify: %v\n%s", err, f)
	}
	if err := CheckSSA(f, info.G); err != nil {
		t.Fatalf("%v\n%s", err, f)
	}
	// The loop-carried variable needs a phi at the loop header.
	head := f.BlockNamed("head")
	if head.Instrs[0].Op != ir.OpPhi {
		t.Fatalf("no phi at loop header:\n%s", f)
	}
}

func TestPrunedSSANoDeadPhis(t *testing.T) {
	// r9 is redefined on both branch arms but never used after the join:
	// pruned SSA must not place a phi for it.
	p := parseFunc(t, `
func main() {
entry:
	r9 = loadi 1
	r0 = loadi 2
	cbr r0, a, b
a:
	r9 = loadi 3
	jmp merge
b:
	r9 = loadi 4
	jmp merge
merge:
	emit r0
	ret
}
`)
	f := p.Funcs[0]
	if _, err := Build(f); err != nil {
		t.Fatal(err)
	}
	merge := f.BlockNamed("merge")
	for i := range merge.Instrs {
		if merge.Instrs[i].Op == ir.OpPhi {
			t.Fatalf("dead phi placed:\n%s", f)
		}
	}
}

func TestCollapseRoundTripSemantics(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		p := workload.RandomProgram(seed)
		want, err := sim.Run(p.Clone(), "main", sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range p.Funcs {
			info, err := Build(f)
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckSSA(f, info.G); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			info.CollapseToLiveRanges()
		}
		if err := ir.VerifyProgram(p, ir.VerifyOptions{}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, err := sim.Run(p, "main", sim.Config{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !sim.TracesEqual(got.Output, want.Output) {
			t.Fatalf("seed %d: collapse changed trace", seed)
		}
	}
}

func TestDestructRoundTripSemantics(t *testing.T) {
	for seed := int64(30); seed < 60; seed++ {
		p := workload.RandomProgram(seed)
		want, err := sim.Run(p.Clone(), "main", sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range p.Funcs {
			info, err := Build(f)
			if err != nil {
				t.Fatal(err)
			}
			info.Destruct()
		}
		if err := ir.VerifyProgram(p, ir.VerifyOptions{}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, err := sim.Run(p, "main", sim.Config{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !sim.TracesEqual(got.Output, want.Output) {
			t.Fatalf("seed %d: destruct changed trace", seed)
		}
	}
}

// TestDestructSwap exercises the parallel-copy cycle: two values exchanged
// every iteration. Naive sequential copies would corrupt the exchange.
func TestDestructSwap(t *testing.T) {
	p := parseFunc(t, `
func main() {
entry:
	r0 = loadi 1
	r1 = loadi 100
	r2 = loadi 0
	r3 = loadi 5
	r4 = loadi 1
	jmp head
head:
	r5 = cmplt r2, r3
	cbr r5, body, exit
body:
	r6 = copy r0
	r0 = copy r1
	r1 = copy r6
	r2 = add r2, r4
	jmp head
exit:
	emit r0
	emit r1
	ret
}
`)
	want, err := sim.Run(p.Clone(), "main", sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	f := p.Funcs[0]
	info, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	// Count phis: the swap needs phis for r0 and r1 (and the counter).
	phis := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpPhi {
				phis++
			}
		}
	}
	if phis < 3 {
		t.Fatalf("expected ≥3 phis, got %d:\n%s", phis, f)
	}
	info.Destruct()
	if err := ir.VerifyProgram(p, ir.VerifyOptions{}); err != nil {
		t.Fatal(err)
	}
	got, err := sim.Run(p, "main", sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !sim.TracesEqual(got.Output, want.Output) {
		t.Fatalf("swap broken: want %v got %v\n%s", want.Output, got.Output, f)
	}
}

// TestDestructParallelCycleDirect builds a 3-cycle of phis by hand and
// checks the cycle-breaking temp preserves the rotation.
func TestDestructParallelCycleDirect(t *testing.T) {
	p := parseFunc(t, `
func main() {
entry:
	r0 = loadi 10
	r1 = loadi 20
	r2 = loadi 30
	r3 = loadi 0
	r4 = loadi 3
	r5 = loadi 1
	jmp head
head:
	r6 = cmplt r3, r4
	cbr r6, body, exit
body:
	r7 = copy r0
	r0 = copy r1
	r1 = copy r2
	r2 = copy r7
	r3 = add r3, r5
	jmp head
exit:
	emit r0
	emit r1
	emit r2
	ret
}
`)
	want, err := sim.Run(p.Clone(), "main", sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	f := p.Funcs[0]
	info, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	info.Destruct()
	got, err := sim.Run(p, "main", sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !sim.TracesEqual(got.Output, want.Output) {
		t.Fatalf("rotation broken: want %v got %v", want.Output, got.Output)
	}
}

func TestEntryWithBackEdge(t *testing.T) {
	// A branch back to the entry block: SplitEntry must kick in so the
	// loop-carried variable still gets a correct phi.
	p := parseFunc(t, `
func main() {
entry:
	r0 = add r0, r1
	r1 = loadi 1
	r2 = loadi 100
	r3 = cmplt r0, r2
	cbr r3, entry, done
done:
	emit r0
	ret
}
`)
	want, err := sim.Run(p.Clone(), "main", sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	f := p.Funcs[0]
	info, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	if f.Blocks[0].Name == "entry" {
		t.Fatal("entry block with back edge was not split")
	}
	if err := CheckSSA(f, info.G); err != nil {
		t.Fatal(err)
	}
	info.Destruct()
	got, err := sim.Run(p, "main", sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !sim.TracesEqual(got.Output, want.Output) {
		t.Fatalf("entry-loop broken: want %v got %v", want.Output, got.Output)
	}
}

func TestOrigTracking(t *testing.T) {
	p := parseFunc(t, loopSrc)
	f := p.Funcs[0]
	info, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	for r := range info.Orig {
		o := info.Orig[r]
		if int(o) >= len(info.Orig) {
			t.Fatalf("orig out of range: %d -> %d", r, o)
		}
		if f.RegClass(ir.Reg(r)) != f.RegClass(o) {
			t.Fatalf("version %d class differs from orig %d", r, o)
		}
		if int(o) < len(info.Orig) && info.Orig[o] != o {
			t.Fatalf("orig of orig %d is not itself", o)
		}
	}
}

func TestCheckSSARejectsDoubleDef(t *testing.T) {
	p := parseFunc(t, `
func main() {
entry:
	r0 = loadi 1
	r0 = loadi 2
	emit r0
	ret
}
`)
	f := p.Funcs[0]
	g, err := cfg.New(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSSA(f, g); err == nil {
		t.Fatal("double definition accepted")
	}
}
