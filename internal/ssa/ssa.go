// Package ssa builds pruned static single-assignment form over an ir.Func
// and collapses it back into live-range names, the representation the
// Chaitin-Briggs allocator colors ("Build SSA Form / Build live-range
// names" in the paper's Figure 2). The same machinery — dominance
// frontiers for phi placement, renaming along the dominator tree,
// union-find over phi operands — is reused by the post-pass CCM allocator
// for its SSA over spill locations (paper Figure 1).
package ssa

import (
	"fmt"

	"ccmem/internal/cfg"
	"ccmem/internal/ir"
	"ccmem/internal/liveness"
	"ccmem/internal/uf"
)

// Info is a function in SSA form.
type Info struct {
	F *ir.Func
	G *cfg.Graph // built after unreachable-block removal

	// Orig maps every register (pre-existing and SSA-created) to the
	// pre-SSA register it versions. Pre-SSA registers map to themselves
	// and double as the "initial version" (parameter or undefined value).
	Orig []ir.Reg

	children [][]int // dominator-tree children
}

// Build converts f to pruned SSA in place. Unreachable blocks are removed
// first. The result satisfies: every register has at most one defining
// instruction, and phi arguments align with CFG predecessor order.
func Build(f *ir.Func) (*Info, error) {
	if _, err := cfg.RemoveUnreachable(f); err != nil {
		return nil, err
	}
	cfg.SplitEntry(f) // a phi in the entry block would miss the entry path
	g, err := cfg.New(f)
	if err != nil {
		return nil, err
	}
	live := liveness.Registers(f, g)

	s := &Info{F: f, G: g}
	s.Orig = make([]ir.Reg, len(f.Regs))
	for i := range s.Orig {
		s.Orig[i] = ir.Reg(i)
	}
	s.children = domChildren(g)

	s.insertPhis(live)
	s.rename()
	return s, nil
}

func domChildren(g *cfg.Graph) [][]int {
	n := g.NumBlocks()
	ch := make([][]int, n)
	for b := 0; b < n; b++ {
		if d := g.Idom(b); d >= 0 {
			ch[d] = append(ch[d], b)
		}
	}
	return ch
}

// insertPhis places a phi for register r at every block in the iterated
// dominance frontier of r's definition blocks where r is live-in (pruned
// SSA; the liveness check keeps dead versions from joining live ranges).
func (s *Info) insertPhis(live *liveness.Result) {
	f, g := s.F, s.G
	nr := len(f.Regs)
	defBlocks := make([][]int, nr)
	// Every register is conceptually defined at entry (parameter or undef
	// initial version), so the entry block seeds every def set.
	for bi, b := range f.Blocks {
		for ii := range b.Instrs {
			if d := b.Instrs[ii].Dst; d != ir.NoReg {
				defBlocks[d] = append(defBlocks[d], bi)
			}
		}
	}

	hasPhi := make(map[[2]int]bool) // (block, reg)
	for r := 0; r < nr; r++ {
		if len(defBlocks[r]) == 0 {
			continue
		}
		work := append([]int{0}, defBlocks[r]...)
		onWork := make(map[int]bool, len(work))
		for _, b := range work {
			onWork[b] = true
		}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, y := range g.DomFrontier(b) {
				if hasPhi[[2]int{y, r}] {
					continue
				}
				if !live.In[y].Has(r) {
					continue // pruned SSA
				}
				hasPhi[[2]int{y, r}] = true
				args := make([]ir.Reg, len(g.Preds[y]))
				for i := range args {
					args[i] = ir.Reg(r)
				}
				blk := f.Blocks[y]
				phi := ir.Instr{Op: ir.OpPhi, Dst: ir.Reg(r), Args: args, Imm: int64(r)}
				blk.Instrs = append([]ir.Instr{phi}, blk.Instrs...)
				if !onWork[y] {
					onWork[y] = true
					work = append(work, y)
				}
			}
		}
	}
}

// rename walks the dominator tree assigning fresh versions to every
// definition. The pre-SSA register itself serves as the initial version,
// so parameters and (harmless) uses of undefined registers keep their
// original names.
func (s *Info) rename() {
	f, g := s.F, s.G
	numOrig := len(s.Orig)
	stacks := make([][]ir.Reg, numOrig)
	for r := 0; r < numOrig; r++ {
		stacks[r] = []ir.Reg{ir.Reg(r)}
	}
	origOf := func(r ir.Reg) ir.Reg {
		if int(r) < numOrig {
			return r
		}
		return s.Orig[r]
	}
	newVersion := func(orig ir.Reg) ir.Reg {
		nv := f.NewReg(f.RegClass(orig), f.Regs[orig].Name)
		s.Orig = append(s.Orig, orig)
		stacks[orig] = append(stacks[orig], nv)
		return nv
	}
	top := func(orig ir.Reg) ir.Reg {
		st := stacks[orig]
		return st[len(st)-1]
	}

	var visit func(b int)
	visit = func(b int) {
		blk := f.Blocks[b]
		pushed := make([]ir.Reg, 0, 8)
		for ii := range blk.Instrs {
			in := &blk.Instrs[ii]
			if in.Op == ir.OpPhi {
				orig := ir.Reg(in.Imm)
				in.Dst = newVersion(orig)
				pushed = append(pushed, orig)
				continue
			}
			for ai, a := range in.Args {
				in.Args[ai] = top(origOf(a))
			}
			if in.Dst != ir.NoReg {
				orig := origOf(in.Dst)
				in.Dst = newVersion(orig)
				pushed = append(pushed, orig)
			}
		}
		for _, su := range g.Succs[b] {
			sblk := f.Blocks[su]
			for ii := range sblk.Instrs {
				in := &sblk.Instrs[ii]
				if in.Op != ir.OpPhi {
					break
				}
				orig := ir.Reg(in.Imm)
				for k, p := range g.Preds[su] {
					if p == b {
						in.Args[k] = top(orig)
					}
				}
			}
		}
		for _, c := range s.children[b] {
			visit(c)
		}
		for _, orig := range pushed {
			stacks[orig] = stacks[orig][:len(stacks[orig])-1]
		}
	}
	visit(0)
}

// CollapseToLiveRanges unions SSA versions joined by phis into live ranges
// (one union-find class per web), rewrites the function to use one compact
// register per live range, deletes the phis, and returns the number of
// live ranges. The rewrite is semantics-preserving: distinct webs of one
// source register are never simultaneously live, and phi-connected
// versions collapse to a single name, making every phi an identity.
func (s *Info) CollapseToLiveRanges() int {
	f := s.F
	u := uf.New(len(f.Regs))
	for _, b := range f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if in.Op != ir.OpPhi {
				break
			}
			for _, a := range in.Args {
				u.Union(int(in.Dst), int(a))
			}
		}
	}

	newID := make([]ir.Reg, len(f.Regs))
	for i := range newID {
		newID[i] = ir.NoReg
	}
	var regs []ir.RegInfo
	rename := func(r ir.Reg) ir.Reg {
		rep := u.Find(int(r))
		if newID[rep] == ir.NoReg {
			regs = append(regs, ir.RegInfo{Class: f.Regs[rep].Class, Name: f.Regs[rep].Name})
			newID[rep] = ir.Reg(len(regs) - 1)
		}
		return newID[rep]
	}

	for pi, p := range f.Params {
		f.Params[pi] = rename(p)
	}
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for ii := range b.Instrs {
			in := b.Instrs[ii]
			if in.Op == ir.OpPhi {
				continue // identity after collapsing
			}
			for ai, a := range in.Args {
				in.Args[ai] = rename(a)
			}
			if in.Dst != ir.NoReg {
				in.Dst = rename(in.Dst)
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	f.Regs = regs
	return len(regs)
}

// CheckSSA verifies the single-assignment property and phi arity; it is a
// testing aid.
func CheckSSA(f *ir.Func, g *cfg.Graph) error {
	defs := make(map[ir.Reg]int)
	for bi, b := range f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if in.Op == ir.OpPhi && len(in.Args) != len(g.Preds[bi]) {
				return fmt.Errorf("ssa: block %s: phi has %d args for %d preds",
					b.Name, len(in.Args), len(g.Preds[bi]))
			}
			if in.Dst != ir.NoReg {
				defs[in.Dst]++
				if defs[in.Dst] > 1 {
					return fmt.Errorf("ssa: register %s defined %d times", f.RegName(in.Dst), defs[in.Dst])
				}
			}
		}
	}
	return nil
}
