// Package ssa builds pruned static single-assignment form over an ir.Func
// and collapses it back into live-range names, the representation the
// Chaitin-Briggs allocator colors ("Build SSA Form / Build live-range
// names" in the paper's Figure 2). The same machinery — dominance
// frontiers for phi placement, renaming along the dominator tree,
// union-find over phi operands — is reused by the post-pass CCM allocator
// for its SSA over spill locations (paper Figure 1).
package ssa

import (
	"fmt"
	"sync"

	"ccmem/internal/bitset"
	"ccmem/internal/cfg"
	"ccmem/internal/ir"
	"ccmem/internal/liveness"
	"ccmem/internal/uf"
)

// liveArenas pools the bitset arenas backing Build's liveness solve. The
// sets live only until insertPhis returns, so the arena is recycled
// per Build — the classic reset-not-realloc discipline, pooled per
// worker by sync.Pool.
var liveArenas = sync.Pool{New: func() any { return new(bitset.Arena) }}

// Info is a function in SSA form.
type Info struct {
	F *ir.Func
	G *cfg.Graph // built after unreachable-block removal

	// Orig maps every register (pre-existing and SSA-created) to the
	// pre-SSA register it versions. Pre-SSA registers map to themselves
	// and double as the "initial version" (parameter or undefined value).
	Orig []ir.Reg

	children [][]int // dominator-tree children
}

// Build converts f to pruned SSA in place. Unreachable blocks are removed
// first. The result satisfies: every register has at most one defining
// instruction, and phi arguments align with CFG predecessor order.
func Build(f *ir.Func) (*Info, error) {
	if _, err := cfg.RemoveUnreachable(f); err != nil {
		return nil, err
	}
	cfg.SplitEntry(f) // a phi in the entry block would miss the entry path
	g, err := cfg.New(f)
	if err != nil {
		return nil, err
	}
	ar := liveArenas.Get().(*bitset.Arena)
	ar.Reset()
	live := liveness.RegistersIn(ar, f, g)

	s := &Info{F: f, G: g}
	// Renaming roughly doubles the register table (one fresh version per
	// definition); reserve for it up front so the growth appends in
	// rename don't re-copy the tables repeatedly.
	s.Orig = make([]ir.Reg, len(f.Regs), 2*len(f.Regs)+8)
	for i := range s.Orig {
		s.Orig[i] = ir.Reg(i)
	}
	s.children = domChildren(g)

	s.insertPhis(live)
	liveArenas.Put(ar) // the liveness sets are dead once phis are placed
	s.rename()
	return s, nil
}

func domChildren(g *cfg.Graph) [][]int {
	n := g.NumBlocks()
	ch := make([][]int, n)
	for b := 0; b < n; b++ {
		if d := g.Idom(b); d >= 0 {
			ch[d] = append(ch[d], b)
		}
	}
	return ch
}

// insertPhis places a phi for register r at every block in the iterated
// dominance frontier of r's definition blocks where r is live-in (pruned
// SSA; the liveness check keeps dead versions from joining live ranges).
func (s *Info) insertPhis(live *liveness.Result) {
	f, g := s.F, s.G
	nr := len(f.Regs)
	defBlocks := make([][]int, nr)
	// Every register is conceptually defined at entry (parameter or undef
	// initial version), so the entry block seeds every def set.
	for bi, b := range f.Blocks {
		for ii := range b.Instrs {
			if d := b.Instrs[ii].Dst; d != ir.NoReg {
				defBlocks[d] = append(defBlocks[d], bi)
			}
		}
	}

	// hasPhi and onWork are generation-stamped by register: each register's
	// pass sees empty state without per-register map allocations, and the
	// worklist buffer is reused across registers. Discovered phis are
	// accumulated per block and prepended in one batch afterwards — the
	// old per-phi prepend re-copied the whole block each time. The final
	// instruction order is identical: a chronological prepend sequence
	// equals the reversed accumulation order.
	nb := len(f.Blocks)
	hasPhi := make([]int32, nb)
	onWork := make([]int32, nb)
	for i := 0; i < nb; i++ {
		hasPhi[i], onWork[i] = -1, -1
	}
	work := make([]int, 0, nb)
	phiAcc := make([][]ir.Instr, nb)
	for r := 0; r < nr; r++ {
		if len(defBlocks[r]) == 0 {
			continue
		}
		work = append(work[:0], 0)
		work = append(work, defBlocks[r]...)
		for _, b := range work {
			onWork[b] = int32(r)
		}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, y := range g.DomFrontier(b) {
				if hasPhi[y] == int32(r) {
					continue
				}
				if !live.In[y].Has(r) {
					continue // pruned SSA
				}
				hasPhi[y] = int32(r)
				args := make([]ir.Reg, len(g.Preds[y]))
				for i := range args {
					args[i] = ir.Reg(r)
				}
				phiAcc[y] = append(phiAcc[y], ir.Instr{Op: ir.OpPhi, Dst: ir.Reg(r), Args: args, Imm: int64(r)})
				if onWork[y] != int32(r) {
					onWork[y] = int32(r)
					work = append(work, y)
				}
			}
		}
	}
	for y, phis := range phiAcc {
		if len(phis) == 0 {
			continue
		}
		blk := f.Blocks[y]
		merged := make([]ir.Instr, 0, len(phis)+len(blk.Instrs))
		for i := len(phis) - 1; i >= 0; i-- {
			merged = append(merged, phis[i])
		}
		merged = append(merged, blk.Instrs...)
		blk.Instrs = merged
	}
}

// rename walks the dominator tree assigning fresh versions to every
// definition. The pre-SSA register itself serves as the initial version,
// so parameters and (harmless) uses of undefined registers keep their
// original names.
func (s *Info) rename() {
	f, g := s.F, s.G
	numOrig := len(s.Orig)
	// All version stacks start as single-element slices; carving them out
	// of one backing array replaces numOrig tiny allocations with one. A
	// stack that grows past its one-slot capacity reallocates just itself
	// (the three-index slice expressions keep neighbors from aliasing).
	stackInit := make([]ir.Reg, numOrig)
	stacks := make([][]ir.Reg, numOrig)
	for r := 0; r < numOrig; r++ {
		stackInit[r] = ir.Reg(r)
		stacks[r] = stackInit[r : r+1 : r+1]
	}
	origOf := func(r ir.Reg) ir.Reg {
		if int(r) < numOrig {
			return r
		}
		return s.Orig[r]
	}
	newVersion := func(orig ir.Reg) ir.Reg {
		nv := f.NewReg(f.RegClass(orig), f.Regs[orig].Name)
		s.Orig = append(s.Orig, orig)
		stacks[orig] = append(stacks[orig], nv)
		return nv
	}
	top := func(orig ir.Reg) ir.Reg {
		st := stacks[orig]
		return st[len(st)-1]
	}

	var visit func(b int)
	visit = func(b int) {
		blk := f.Blocks[b]
		pushed := make([]ir.Reg, 0, 8)
		for ii := range blk.Instrs {
			in := &blk.Instrs[ii]
			if in.Op == ir.OpPhi {
				orig := ir.Reg(in.Imm)
				in.Dst = newVersion(orig)
				pushed = append(pushed, orig)
				continue
			}
			for ai, a := range in.Args {
				in.Args[ai] = top(origOf(a))
			}
			if in.Dst != ir.NoReg {
				orig := origOf(in.Dst)
				in.Dst = newVersion(orig)
				pushed = append(pushed, orig)
			}
		}
		for _, su := range g.Succs[b] {
			sblk := f.Blocks[su]
			for ii := range sblk.Instrs {
				in := &sblk.Instrs[ii]
				if in.Op != ir.OpPhi {
					break
				}
				orig := ir.Reg(in.Imm)
				for k, p := range g.Preds[su] {
					if p == b {
						in.Args[k] = top(orig)
					}
				}
			}
		}
		for _, c := range s.children[b] {
			visit(c)
		}
		for _, orig := range pushed {
			stacks[orig] = stacks[orig][:len(stacks[orig])-1]
		}
	}
	visit(0)
}

// CollapseToLiveRanges unions SSA versions joined by phis into live ranges
// (one union-find class per web), rewrites the function to use one compact
// register per live range, deletes the phis, and returns the number of
// live ranges. The rewrite is semantics-preserving: distinct webs of one
// source register are never simultaneously live, and phi-connected
// versions collapse to a single name, making every phi an identity.
func (s *Info) CollapseToLiveRanges() int {
	f := s.F
	u := uf.New(len(f.Regs))
	for _, b := range f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if in.Op != ir.OpPhi {
				break
			}
			for _, a := range in.Args {
				u.Union(int(in.Dst), int(a))
			}
		}
	}

	newID := make([]ir.Reg, len(f.Regs))
	for i := range newID {
		newID[i] = ir.NoReg
	}
	var regs []ir.RegInfo
	rename := func(r ir.Reg) ir.Reg {
		rep := u.Find(int(r))
		if newID[rep] == ir.NoReg {
			regs = append(regs, ir.RegInfo{Class: f.Regs[rep].Class, Name: f.Regs[rep].Name})
			newID[rep] = ir.Reg(len(regs) - 1)
		}
		return newID[rep]
	}

	for pi, p := range f.Params {
		f.Params[pi] = rename(p)
	}
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for ii := range b.Instrs {
			in := b.Instrs[ii]
			if in.Op == ir.OpPhi {
				continue // identity after collapsing
			}
			for ai, a := range in.Args {
				in.Args[ai] = rename(a)
			}
			if in.Dst != ir.NoReg {
				in.Dst = rename(in.Dst)
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	f.Regs = regs
	return len(regs)
}

// CheckSSA verifies the single-assignment property and phi arity; it is a
// testing aid.
func CheckSSA(f *ir.Func, g *cfg.Graph) error {
	defs := make(map[ir.Reg]int)
	for bi, b := range f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if in.Op == ir.OpPhi && len(in.Args) != len(g.Preds[bi]) {
				return fmt.Errorf("ssa: block %s: phi has %d args for %d preds",
					b.Name, len(in.Args), len(g.Preds[bi]))
			}
			if in.Dst != ir.NoReg {
				defs[in.Dst]++
				if defs[in.Dst] > 1 {
					return fmt.Errorf("ssa: register %s defined %d times", f.RegName(in.Dst), defs[in.Dst])
				}
			}
		}
	}
	return nil
}
