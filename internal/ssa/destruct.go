package ssa

import (
	"ccmem/internal/ir"
)

// Destruct leaves SSA form by replacing every phi with explicit copies at
// the end of the predecessor blocks, sequencing each predecessor's copy
// set as a parallel copy (dependency order, cycles broken with a fresh
// temporary — the classic lost-copy/swap-safe SSA destruction).
//
// Unlike CollapseToLiveRanges, Destruct is sound after arbitrary SSA
// transformations (value numbering, constant propagation, ...): it never
// merges names, so interference introduced by optimization cannot corrupt
// values. The register allocator's conservative coalescing removes the
// copies that are safe to remove. CollapseToLiveRanges remains valid only
// on untransformed SSA, where every phi joins versions of one source
// register; use Destruct everywhere else.
func (s *Info) Destruct() {
	f, g := s.F, s.G

	type task struct{ dst, src ir.Reg }
	perPred := make([][]task, g.NumBlocks())

	for bi, b := range f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if in.Op != ir.OpPhi {
				break
			}
			seen := map[int]bool{}
			for k, p := range g.Preds[bi] {
				if seen[p] {
					continue // duplicate edge: renaming filled identical args
				}
				seen[p] = true
				if k < len(in.Args) && in.Args[k] != in.Dst {
					perPred[p] = append(perPred[p], task{dst: in.Dst, src: in.Args[k]})
				}
			}
		}
	}

	for p, tasks := range perPred {
		if len(tasks) == 0 {
			continue
		}
		blk := f.Blocks[p]
		var seq []ir.Instr
		pending := append([]task(nil), tasks...)
		for len(pending) > 0 {
			// Emit any copy whose destination is not the source of a
			// pending copy.
			emitted := false
			for i := 0; i < len(pending); i++ {
				d := pending[i].dst
				blocked := false
				for j := range pending {
					if j != i && pending[j].src == d {
						blocked = true
						break
					}
				}
				if blocked {
					continue
				}
				if d != pending[i].src {
					seq = append(seq, ir.Instr{
						Op:   ir.CopyOpFor(f.RegClass(d)),
						Dst:  d,
						Args: []ir.Reg{pending[i].src},
					})
				}
				pending = append(pending[:i], pending[i+1:]...)
				emitted = true
				break
			}
			if emitted {
				continue
			}
			// Every pending destination feeds another pending copy: a
			// cycle. Save one destination in a temporary and retarget its
			// readers.
			d := pending[0].dst
			t := f.NewReg(f.RegClass(d), f.Regs[d].Name+".cyc")
			s.Orig = append(s.Orig, s.origOf(d))
			seq = append(seq, ir.Instr{Op: ir.CopyOpFor(f.RegClass(d)), Dst: t, Args: []ir.Reg{d}})
			for j := range pending {
				if pending[j].src == d {
					pending[j].src = t
				}
			}
		}
		// Insert before the terminator.
		term := blk.Instrs[len(blk.Instrs)-1]
		blk.Instrs = append(blk.Instrs[:len(blk.Instrs)-1], seq...)
		blk.Instrs = append(blk.Instrs, term)
	}

	// Drop the phis.
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for ii := range b.Instrs {
			if b.Instrs[ii].Op == ir.OpPhi {
				continue
			}
			kept = append(kept, b.Instrs[ii])
		}
		b.Instrs = kept
	}
}

func (s *Info) origOf(r ir.Reg) ir.Reg {
	if int(r) < len(s.Orig) {
		return s.Orig[r]
	}
	return r
}
