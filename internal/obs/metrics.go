package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named counters, gauges, and latency histograms.
// Instruments are created on first reference and live for the registry's
// lifetime; every accessor is nil-safe (a nil *Registry hands out nil
// instruments, and recording through a nil instrument is a no-op), so
// callers never branch on whether metrics are enabled.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the latency histogram registered under name,
// creating it (with DefaultBuckets) on first use. Returns nil on a nil
// registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h = newHistogram()
	r.hists[name] = h
	return h
}

// Counter is a monotonically increasing value. All methods are nil-safe.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins value. All methods are nil-safe.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the last stored value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultBuckets are the histogram upper bounds: exponential from 1µs to
// ~4s (doubling), chosen to straddle the pipeline's pass latencies
// (sub-microsecond cache probes up to multi-second whole-program
// compiles). Fixed at package level so every histogram in every run is
// bucket-compatible: summaries from different runs can be compared or
// merged without bucket alignment.
var DefaultBuckets = func() []time.Duration {
	var b []time.Duration
	for d := time.Microsecond; d <= 4*time.Second; d *= 2 {
		b = append(b, d)
	}
	return b
}()

// Histogram is a fixed-bucket latency histogram over DefaultBuckets,
// with an implicit +Inf overflow bucket. Observe is atomic per field and
// lock-free; Count and Sum are exact, bucket placement is by upper
// bound. All methods are nil-safe.
type Histogram struct {
	buckets []atomic.Int64 // one per DefaultBuckets entry, plus +Inf at the end
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

func newHistogram() *Histogram {
	return &Histogram{buckets: make([]atomic.Int64, len(DefaultBuckets)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	i := sort.Search(len(DefaultBuckets), func(i int) bool { return d <= DefaultBuckets[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(d.Nanoseconds())
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// summary computes the exportable view. Quantiles are estimated as the
// upper bound of the bucket containing the target rank — coarse but
// monotone and stable, which is all a fixed-bucket histogram can offer.
func (h *Histogram) summary() HistogramSummary {
	s := HistogramSummary{Count: h.count.Load(), SumNanos: h.sum.Load()}
	counts := make([]int64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	s.P50Nanos = quantileUpperBound(counts, s.Count, 0.50)
	s.P95Nanos = quantileUpperBound(counts, s.Count, 0.95)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		bc := BucketCount{Count: c}
		if i < len(DefaultBuckets) {
			bc.LENanos = DefaultBuckets[i].Nanoseconds()
		} else {
			bc.LENanos = -1 // +Inf
		}
		s.Buckets = append(s.Buckets, bc)
	}
	return s
}

func quantileUpperBound(counts []int64, total int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	// rank is the smallest position covering quantile q (ceiling), so
	// p95 of 10 observations is the 10th, not the 9th.
	rank := int64(q*float64(total) + 0.9999999)
	if rank < 1 {
		rank = 1
	} else if rank > total {
		rank = total
	}
	var seen int64
	for i, c := range counts {
		seen += c
		if seen >= rank {
			if i < len(DefaultBuckets) {
				return DefaultBuckets[i].Nanoseconds()
			}
			return -1 // +Inf bucket
		}
	}
	return -1
}

// BucketCount is one non-empty histogram bucket: observations with
// duration <= LENanos (LENanos -1 means +Inf, the overflow bucket).
type BucketCount struct {
	LENanos int64 `json:"le_ns"`
	Count   int64 `json:"count"`
}

// HistogramSummary is the exportable view of one histogram. Count and
// SumNanos are exact; the quantiles are bucket-upper-bound estimates.
type HistogramSummary struct {
	Count    int64         `json:"count"`
	SumNanos int64         `json:"sum_ns"`
	P50Nanos int64         `json:"p50_ns"`
	P95Nanos int64         `json:"p95_ns"`
	Buckets  []BucketCount `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of every instrument in a registry,
// shaped for JSON reports. Counters and gauges are deterministic across
// worker counts; histogram Count values are deterministic but the bucket
// distribution and quantiles measure wall clock and are not.
type Snapshot struct {
	Counters   map[string]int64            `json:"counters,omitempty"`
	Gauges     map[string]int64            `json:"gauges,omitempty"`
	Histograms map[string]HistogramSummary `json:"histograms,omitempty"`
}

// Snapshot copies the current value of every instrument. Returns nil on
// a nil registry. Safe to call concurrently with recording; values are
// read atomically per instrument.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := &Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSummary, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.summary()
		}
	}
	return s
}
