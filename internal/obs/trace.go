// Package obs is the pipeline's structured observability layer: spans
// (a lightweight trace of what ran where, exportable as Chrome
// trace-event JSON for Perfetto), and a metrics registry of counters,
// gauges, and fixed-bucket latency histograms.
//
// Two properties shape every API here:
//
//   - The disabled path must cost ~nothing. Every type is nil-safe: a nil
//     *Tracer hands out nil *Shards, a nil *Registry hands out nil
//     *Counters, and recording through any nil handle is a single
//     predictable branch. The pipeline's hot loops therefore carry obs
//     handles unconditionally and pay only when observability is on
//     (the package benchmarks guard this).
//
//   - Determinism is split by kind. Counter and gauge values are pure
//     functions of what work ran, so they are byte-identical across
//     worker counts (the pipeline's determinism suite asserts this).
//     Span timestamps and histogram bucket placements measure wall
//     clock and are NOT deterministic; only their counts are.
//
// Concurrency model for spans: each worker records into its own Shard —
// append-only, single-owner, no locks or atomics on the record path. The
// tracer only takes a lock to hand out shards and to merge them at
// export time. Export (Spans, WriteChromeTrace) must not run concurrently
// with recording; the pipeline guarantees this by exporting only after
// its worker pools have joined.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultMaxSpans bounds a tracer's memory: one span is ~100 bytes, so
// the default caps the trace buffer around 100 MB on a pathological
// run. Spans past the cap are counted in Dropped, never recorded.
const DefaultMaxSpans = 1 << 20

// Attr is one key/value annotation on a span. Values are strings so a
// span never retains pipeline objects.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one completed timed region. StartNanos is relative to the
// tracer's epoch (its creation time), so spans from one tracer share a
// timeline; TID is the logical worker that ran the region (0 = the
// goroutine driving the compile, 1..N = pool workers). PID groups spans
// into separate process rows in the exported trace — a tracer records
// PID 0 (exported as process 1), and an aggregator merging spans from
// several tracers (one per request, say) stamps each batch with its own
// PID before export so the viewer shows one process group per batch.
type Span struct {
	Name       string `json:"name"`
	Cat        string `json:"cat"`
	PID        int    `json:"pid,omitempty"`
	TID        int    `json:"tid"`
	Seq        int64  `json:"seq"` // per-shard record order
	StartNanos int64  `json:"start_ns"`
	DurNanos   int64  `json:"dur_ns"`
	Attrs      []Attr `json:"attrs,omitempty"`
}

// Tracer collects spans from any number of shards. The zero value is not
// usable; a nil *Tracer is the disabled tracer and every method on it is
// a cheap no-op.
type Tracer struct {
	epoch   time.Time
	max     int64
	count   atomic.Int64
	dropped atomic.Int64

	mu     sync.Mutex
	shards []*Shard
}

// NewTracer builds a tracer bounded to DefaultMaxSpans recorded spans.
func NewTracer() *Tracer { return NewTracerMax(DefaultMaxSpans) }

// NewTracerMax builds a tracer bounded to maxSpans (<= 0 uses
// DefaultMaxSpans).
func NewTracerMax(maxSpans int64) *Tracer {
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	return &Tracer{epoch: time.Now(), max: maxSpans}
}

// NewShard hands out a recording buffer owned by exactly one goroutine.
// tid labels the logical worker in exported traces. Returns nil on a nil
// tracer, and recording into a nil shard is a no-op, so callers thread
// shards unconditionally.
func (t *Tracer) NewShard(tid int) *Shard {
	if t == nil {
		return nil
	}
	s := &Shard{t: t, tid: tid}
	t.mu.Lock()
	t.shards = append(t.shards, s)
	t.mu.Unlock()
	return s
}

// Count returns the number of spans recorded so far (0 on nil).
func (t *Tracer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Dropped returns the number of spans discarded over the MaxSpans bound.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Spans merges every shard and returns the spans in deterministic order:
// by start time, then worker, then per-shard sequence, then name. The
// ordering function is a pure function of the span data, so one trace
// always merges the same way. Must not be called while shards are still
// recording.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	for _, s := range t.shards {
		out = append(out, s.spans...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.StartNanos != b.StartNanos {
			return a.StartNanos < b.StartNanos
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.Name < b.Name
	})
	return out
}

// Shard is a single-owner span buffer. Record is lock-free: only the
// owning goroutine appends, and the tracer reads the buffer only after
// the owner is done.
type Shard struct {
	t     *Tracer
	tid   int
	seq   int64
	spans []Span
}

// Record appends one completed span. start is the wall-clock start, dur
// the measured duration (callers already time their regions for the
// per-pass report, so the span reuses those measurements instead of
// reading the clock again). No-op on a nil shard.
func (s *Shard) Record(name, cat string, start time.Time, dur time.Duration, attrs ...Attr) {
	if s == nil {
		return
	}
	if s.t.count.Load() >= s.t.max {
		s.t.dropped.Add(1)
		return
	}
	s.t.count.Add(1)
	s.seq++
	s.spans = append(s.spans, Span{
		Name:       name,
		Cat:        cat,
		TID:        s.tid,
		Seq:        s.seq,
		StartNanos: start.Sub(s.t.epoch).Nanoseconds(),
		DurNanos:   dur.Nanoseconds(),
		Attrs:      attrs,
	})
}

// chromeEvent is one Chrome trace-event object. Complete events
// (ph "X") carry their duration, so no begin/end pairing is needed.
// Timestamps are microseconds (the format's unit), fractional to keep
// sub-microsecond pass timings distinguishable.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the trace file; Perfetto and
// chrome://tracing both load it.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the merged spans as Chrome trace-event JSON
// (load the file in https://ui.perfetto.dev or chrome://tracing). Worker
// IDs become tids, so the sequential interprocedural barrier and worker
// imbalance are visible as gaps on the worker rows. Must not be called
// while shards are still recording.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: WriteChromeTrace on a nil Tracer")
	}
	return WriteChromeTraceSpans(w, t.Spans())
}

// WriteChromeTraceSpans exports an arbitrary span slice as Chrome
// trace-event JSON. It is the export path for callers that aggregate
// spans from more than one tracer (the compile service merges one
// tracer per traced request): stamp each batch's Span.PID before
// appending and every batch renders as its own process group. A zero
// PID exports as process 1, so single-tracer traces look as they always
// have.
func WriteChromeTraceSpans(w io.Writer, spans []Span) error {
	events := make([]chromeEvent, 0, len(spans))
	for _, sp := range spans {
		pid := sp.PID
		if pid == 0 {
			pid = 1
		}
		ev := chromeEvent{
			Name: sp.Name,
			Cat:  sp.Cat,
			Ph:   "X",
			TS:   float64(sp.StartNanos) / 1e3,
			Dur:  float64(sp.DurNanos) / 1e3,
			PID:  pid,
			TID:  sp.TID,
		}
		if len(sp.Attrs) > 0 {
			ev.Args = make(map[string]string, len(sp.Attrs))
			for _, a := range sp.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
