package obs

import (
	"testing"
	"time"
)

// The disabled path is the one the driver runs in production compiles
// with observability off; these benchmarks guard that it stays a single
// nil check (sub-nanosecond), per the acceptance criterion that disabled
// observability is within noise of the pre-obs driver.

func BenchmarkDisabledCounterAdd(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkDisabledHistogramObserve(b *testing.B) {
	var r *Registry
	h := r.Histogram("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Microsecond)
	}
}

func BenchmarkDisabledShardRecord(b *testing.B) {
	var tr *Tracer
	sh := tr.NewShard(0)
	start := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sh.Record("pass:opt", "pass", start, time.Microsecond)
	}
}

func BenchmarkEnabledCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkEnabledShardRecord(b *testing.B) {
	tr := NewTracerMax(int64(1) << 40)
	sh := tr.NewShard(0)
	start := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sh.Record("pass:opt", "pass", start, time.Microsecond)
	}
}

func BenchmarkRegistryCounterLookup(b *testing.B) {
	r := NewRegistry()
	r.Counter("regalloc.spills")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("regalloc.spills").Inc()
	}
}
