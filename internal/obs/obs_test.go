package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sh := tr.NewShard(3)
	if sh != nil {
		t.Fatalf("nil tracer handed out non-nil shard")
	}
	sh.Record("x", "y", time.Now(), time.Second) // must not panic
	if tr.Count() != 0 || tr.Dropped() != 0 {
		t.Fatalf("nil tracer counts nonzero")
	}
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil tracer Spans = %v, want nil", got)
	}
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Fatalf("nil tracer WriteChromeTrace should error")
	}

	var r *Registry
	if r.Counter("c") != nil || r.Gauge("g") != nil || r.Histogram("h") != nil {
		t.Fatalf("nil registry handed out non-nil instrument")
	}
	r.Counter("c").Add(5)
	r.Counter("c").Inc()
	r.Gauge("g").Set(7)
	r.Histogram("h").Observe(time.Millisecond)
	if r.Counter("c").Value() != 0 || r.Gauge("g").Value() != 0 || r.Histogram("h").Count() != 0 {
		t.Fatalf("nil instruments returned nonzero values")
	}
	if r.Snapshot() != nil {
		t.Fatalf("nil registry Snapshot non-nil")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("compiles")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("compiles") != c {
		t.Fatalf("same name resolved to a different counter")
	}
	g := r.Gauge("entries")
	g.Set(10)
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}

	snap := r.Snapshot()
	if snap.Counters["compiles"] != 4 || snap.Gauges["entries"] != 7 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Set(int64(i))
				r.Histogram("h").Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("shared counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestHistogramSummary(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// 9 fast observations and one slow one: p50 lands in a small bucket,
	// p95 in the 2ms bucket.
	for i := 0; i < 9; i++ {
		h.Observe(3 * time.Microsecond)
	}
	h.Observe(2 * time.Millisecond)

	s := h.summary()
	if s.Count != 10 {
		t.Fatalf("count = %d, want 10", s.Count)
	}
	if want := int64(9*3*time.Microsecond + 2*time.Millisecond); s.SumNanos != want {
		t.Fatalf("sum = %d, want %d", s.SumNanos, want)
	}
	if want := (4 * time.Microsecond).Nanoseconds(); s.P50Nanos != want {
		t.Fatalf("p50 = %d, want %d (4µs bucket bound)", s.P50Nanos, want)
	}
	// Bounds double from 1µs, so 2ms lands in the 2048µs bucket.
	if want := (2048 * time.Microsecond).Nanoseconds(); s.P95Nanos != want {
		t.Fatalf("p95 = %d, want %d (2048µs bucket bound)", s.P95Nanos, want)
	}
	var total int64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != 10 {
		t.Fatalf("bucket counts sum to %d, want 10", total)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("slow")
	h.Observe(time.Minute) // beyond the largest bound → +Inf bucket
	s := h.summary()
	if s.Count != 1 {
		t.Fatalf("count = %d, want 1", s.Count)
	}
	if len(s.Buckets) != 1 || s.Buckets[0].LENanos != -1 {
		t.Fatalf("want single +Inf bucket, got %+v", s.Buckets)
	}
	if s.P50Nanos != -1 || s.P95Nanos != -1 {
		t.Fatalf("quantiles should report +Inf (-1), got p50=%d p95=%d", s.P50Nanos, s.P95Nanos)
	}
}

func TestEmptyHistogramSummary(t *testing.T) {
	r := NewRegistry()
	s := r.Histogram("empty").summary()
	if s.Count != 0 || s.SumNanos != 0 || s.P50Nanos != 0 || s.P95Nanos != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty histogram summary = %+v", s)
	}
}

func TestSpanMergeDeterministicOrder(t *testing.T) {
	base := time.Now()
	build := func(order []int) []Span {
		tr := NewTracer()
		tr.epoch = base
		shards := []*Shard{tr.NewShard(0), tr.NewShard(1), tr.NewShard(2)}
		// Record in the given shard order; spans carry fixed start
		// offsets so the merged order depends only on span data.
		for _, tid := range order {
			sh := shards[tid]
			sh.Record("a", "c", base.Add(time.Duration(tid)*time.Millisecond), time.Millisecond)
			sh.Record("b", "c", base.Add(time.Duration(tid)*time.Millisecond), time.Millisecond)
		}
		return tr.Spans()
	}
	first := build([]int{0, 1, 2})
	second := build([]int{2, 0, 1})
	if len(first) != 6 || len(second) != 6 {
		t.Fatalf("span counts = %d, %d; want 6", len(first), len(second))
	}
	for i := range first {
		if !equalSpans(first[i], second[i]) {
			t.Fatalf("merge order differs at %d:\n  %+v\n  %+v", i, first[i], second[i])
		}
	}
	// Ties on start break by TID, then Seq.
	for i := 1; i < len(first); i++ {
		a, b := first[i-1], first[i]
		if a.StartNanos > b.StartNanos {
			t.Fatalf("spans out of start order at %d", i)
		}
		if a.StartNanos == b.StartNanos && a.TID > b.TID {
			t.Fatalf("tied spans out of TID order at %d", i)
		}
	}
}

func equalSpans(a, b Span) bool {
	return a.Name == b.Name && a.Cat == b.Cat && a.TID == b.TID &&
		a.Seq == b.Seq && a.StartNanos == b.StartNanos && a.DurNanos == b.DurNanos
}

func TestTracerMaxSpansDrops(t *testing.T) {
	tr := NewTracerMax(3)
	sh := tr.NewShard(0)
	for i := 0; i < 5; i++ {
		sh.Record("s", "c", time.Now(), time.Microsecond)
	}
	if got := tr.Count(); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
	if got := tr.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	if got := len(tr.Spans()); got != 3 {
		t.Fatalf("len(Spans) = %d, want 3", got)
	}
}

func TestConcurrentShardsRace(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			sh := tr.NewShard(tid)
			for i := 0; i < 500; i++ {
				sh.Record("pass:opt", "pass", time.Now(), time.Microsecond,
					Attr{Key: "func", Value: "f"})
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Count(); got != 4000 {
		t.Fatalf("count = %d, want 4000", got)
	}
	if got := len(tr.Spans()); got != 4000 {
		t.Fatalf("merged spans = %d, want 4000", got)
	}
}

// TestWriteChromeTrace locks the export shape: a JSON object with a
// traceEvents array of complete ("X") events carrying name/cat/ts/dur/
// pid/tid and attrs as args.
func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer()
	sh := tr.NewShard(2)
	start := time.Now()
	sh.Record("pass:regalloc", "pass", start, 1500*time.Nanosecond,
		Attr{Key: "func", Value: "main"})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			PID  int               `json:"pid"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 1 {
		t.Fatalf("events = %d, want 1", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev.Name != "pass:regalloc" || ev.Cat != "pass" || ev.Ph != "X" || ev.TID != 2 || ev.PID != 1 {
		t.Fatalf("event = %+v", ev)
	}
	if ev.Dur != 1.5 {
		t.Fatalf("dur = %v µs, want 1.5", ev.Dur)
	}
	if ev.Args["func"] != "main" {
		t.Fatalf("args = %v", ev.Args)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("regalloc.spills").Add(2)
	r.Gauge("cache.entries").Set(5)
	r.Histogram("pass.optimize").Observe(10 * time.Microsecond)

	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"counters", "gauges", "histograms"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("snapshot JSON missing %q: %s", key, raw)
		}
	}
	var hists map[string]HistogramSummary
	if err := json.Unmarshal(m["histograms"], &hists); err != nil {
		t.Fatal(err)
	}
	if hists["pass.optimize"].Count != 1 {
		t.Fatalf("histograms = %+v", hists)
	}
}

// TestWriteChromeTraceSpansPID: the standalone span exporter stamps
// each span's PID into its event (zero exporting as process 1), so an
// aggregator holding batches from many requests renders one process
// row per request.
func TestWriteChromeTraceSpansPID(t *testing.T) {
	spans := []Span{
		{Name: "a", Cat: "compile", TID: 1},
		{Name: "b", Cat: "compile", TID: 2, PID: 7},
	}
	var buf bytes.Buffer
	if err := WriteChromeTraceSpans(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			PID  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].PID != 1 {
		t.Fatalf("zero PID exported as %d, want 1", doc.TraceEvents[0].PID)
	}
	if doc.TraceEvents[1].PID != 7 {
		t.Fatalf("explicit PID exported as %d, want 7", doc.TraceEvents[1].PID)
	}
}
