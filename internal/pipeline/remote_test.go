package pipeline

import (
	"context"
	"encoding/json"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"ccmem/internal/obs"
	"ccmem/internal/remotecache"
	"ccmem/internal/workload"
)

// remoteServer spins up an in-process cache server for pipeline tests.
func remoteServer(t *testing.T) (*remotecache.Server, *httptest.Server) {
	t.Helper()
	srv, err := remotecache.NewServer(t.TempDir(), remotecache.ServerOptions{})
	if err != nil {
		t.Fatalf("remotecache.NewServer: %v", err)
	}
	hs := httptest.NewServer(srv.Handler("test"))
	t.Cleanup(hs.Close)
	return srv, hs
}

// fastRemoteTuning keeps fault scenarios quick: one attempt, short
// per-request timeout, no real backoff sleeping, a 3-failure breaker.
func fastRemoteTuning() remotecache.Tuning {
	return remotecache.Tuning{
		RequestTimeout: 100 * time.Millisecond,
		Retries:        -1,
		TripAfter:      3,
		HalfOpenAfter:  time.Hour,
		Sleep:          func(time.Duration) {},
	}
}

// closeRemote drains and shuts down a driver's remote client so queued
// write-behind puts land before another process reads.
func closeRemote(t *testing.T, d *Driver) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.CloseRemote(ctx); err != nil {
		t.Fatalf("CloseRemote: %v", err)
	}
}

// deadURL returns an address nothing listens on: a port the kernel just
// handed out and we immediately released — connection refused, the
// "server fully down" scenario.
func deadURL(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return "http://" + addr
}

// TestRemoteCrossProcessProgramHit is the tentpole's happy path: a
// second driver sharing nothing but the cache server — a different
// machine, as far as the pipeline knows — answers an identical compile
// from the remote tier, byte-identical, with the hit in the report and
// the whole-cache invariant holding across all three tiers.
func TestRemoteCrossProcessProgramHit(t *testing.T) {
	_, hs := remoteServer(t)
	cfg := detConfig(Integrated)
	const seed = 41
	want := coldILOC(t, seed, cfg)

	a := New(Options{RemoteURL: hs.URL, RemoteTuning: fastRemoteTuning()})
	if err := a.RemoteCacheErr(); err != nil {
		t.Fatalf("remote tier failed to attach: %v", err)
	}
	pa := workload.RandomProgram(seed)
	mustCompile(t, a, pa, cfg)
	if pa.String() != want {
		t.Fatal("remote-backed compile differs from cold compile")
	}
	closeRemote(t, a) // flush write-behind before the "other process" reads

	b := New(Options{RemoteURL: hs.URL, RemoteTuning: fastRemoteTuning()})
	defer closeRemote(t, b)
	pb := workload.RandomProgram(seed)
	rep := mustCompile(t, b, pb, cfg)
	if pb.String() != want {
		t.Fatal("remote-served compile produced different ILOC")
	}
	if !rep.ProgramCacheHit {
		t.Error("program artifact did not arrive from the remote tier")
	}
	if rep.Cache.Remote.Hits < 1 {
		t.Errorf("remote hits = %d, want >= 1: %+v", rep.Cache.Remote.Hits, rep.Cache)
	}
	if rep.Cache.Remote.HitRate <= 0 {
		t.Errorf("remote hit_rate = %v, want > 0", rep.Cache.Remote.HitRate)
	}
	got := rep.Cache
	if got.Hits != got.Memory.Hits+got.Disk.Hits+got.Remote.Hits {
		t.Errorf("whole-cache invariant broken: %d != %d + %d + %d",
			got.Hits, got.Memory.Hits, got.Disk.Hits, got.Remote.Hits)
	}
}

// TestRemoteFaultMatrixDeterminism is the core robustness claim for the
// network tier: under every injected network fault — timeout, connection
// refused, truncated body, bit flip, hung server, 5xx — and with the
// server fully down, compiled output is byte-identical to a cold
// no-remote compile at workers=1 and workers=8, and the deterministic
// counters (failures, degradations, whole-cache hits/misses, remote
// hits) are identical across worker counts.
func TestRemoteFaultMatrixDeterminism(t *testing.T) {
	cfg := detConfig(Integrated)
	const seed = 42
	want := coldILOC(t, seed, cfg)

	scenarios := []struct {
		name string
		warm bool // pre-populate the server so read-path faults have bytes to mangle
		kind remotecache.FaultKind
		down bool // no server at all: point at a dead address
	}{
		{name: "timeout", kind: remotecache.FaultTimeout},
		{name: "refused", kind: remotecache.FaultRefused},
		{name: "truncated", warm: true, kind: remotecache.FaultTruncate},
		{name: "bit-flip", warm: true, kind: remotecache.FaultBitFlip},
		{name: "slow", kind: remotecache.FaultSlow},
		{name: "5xx", kind: remotecache.Fault5xx},
		{name: "server-down", down: true},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			url := ""
			if sc.down {
				url = deadURL(t)
			} else {
				_, hs := remoteServer(t)
				url = hs.URL
				if sc.warm {
					w := New(Options{RemoteURL: url, RemoteTuning: fastRemoteTuning()})
					mustCompile(t, w, workload.RandomProgram(seed), cfg)
					closeRemote(t, w)
				}
			}
			type outcome struct {
				output                   string
				failures, degraded       int64
				hits, misses, remoteHits int64
			}
			byWorkers := map[int]outcome{}
			for _, workers := range []int{1, 8} {
				rt := &remotecache.FaultRT{}
				rt.Arm(sc.kind)
				d := New(Options{Workers: workers, RemoteURL: url,
					RemoteFaultRT: rt, RemoteTuning: fastRemoteTuning()})
				if err := d.RemoteCacheErr(); err != nil {
					t.Fatalf("attach: %v", err)
				}
				p := workload.RandomProgram(seed)
				rep := mustCompile(t, d, p, cfg)
				if got := p.String(); got != want {
					t.Errorf("workers=%d: output under %s differs from cold compile", workers, sc.name)
				}
				rs := rep.Cache.Remote
				if rs.Hits != 0 {
					t.Errorf("workers=%d %s: %d remote hits from a faulted tier", workers, sc.name, rs.Hits)
				}
				// The compile survived, but the report must not hide the
				// trouble: some hardening counter reflects the scenario.
				trouble := rs.Timeouts + rs.NetErrors + rs.HTTPErrors + rs.Corruptions + rs.Skipped
				if trouble == 0 {
					t.Errorf("workers=%d %s: no network fault surfaced in the report: %+v", workers, sc.name, rs)
				}
				if rep.Failures != 0 || rep.Degraded != 0 {
					t.Errorf("workers=%d %s: a network fault degraded a compile: failures=%d degraded=%d",
						workers, sc.name, rep.Failures, rep.Degraded)
				}
				byWorkers[workers] = outcome{
					output:   p.String(),
					failures: rep.Failures, degraded: rep.Degraded,
					hits: rep.Cache.Hits, misses: rep.Cache.Misses,
					remoteHits: rs.Hits,
				}
				closeRemote(t, d)
			}
			if byWorkers[1] != byWorkers[8] {
				t.Errorf("%s: deterministic counters differ across worker counts:\n  workers=1: %+v\n  workers=8: %+v",
					sc.name, byWorkers[1], byWorkers[8])
			}
		})
	}
}

// TestRemoteCircuitBreakerInReport: with the server down, the breaker
// trips after its threshold and the report + obs gauges say so — open
// circuit, trips counted, later lookups skipped without touching the
// network.
func TestRemoteCircuitBreakerInReport(t *testing.T) {
	cfg := detConfig(PostPass)
	const seed = 43
	want := coldILOC(t, seed, cfg)

	reg := obs.NewRegistry()
	tun := fastRemoteTuning()
	tun.TripAfter = 2 // trip early enough that later lookups get skipped
	d := New(Options{RemoteURL: deadURL(t), RemoteTuning: tun, Metrics: reg})
	defer closeRemote(t, d)
	p := workload.RandomProgram(seed)
	rep := mustCompile(t, d, p, cfg)
	if p.String() != want {
		t.Fatal("dead server changed the output")
	}
	rs := rep.Cache.Remote
	if rs.Circuit != "open" || rs.Trips < 1 {
		t.Errorf("breaker did not trip against a dead server: %+v", rs)
	}
	if rs.Skipped == 0 {
		t.Errorf("open circuit skipped no lookups (every miss paid for the network): %+v", rs)
	}
	if rep.Metrics == nil {
		t.Fatal("no metrics snapshot on the report")
	}
	if got := rep.Metrics.Gauges["remotecache.circuit_state"]; got != int64(remotecache.StateOpen) {
		t.Errorf("remotecache.circuit_state gauge = %d, want %d (open)", got, int64(remotecache.StateOpen))
	}
	if got := rep.Metrics.Gauges["remotecache.trips"]; got < 1 {
		t.Errorf("remotecache.trips gauge = %d, want >= 1", got)
	}
}

// TestRemoteBreakerRecoversAcrossCompiles: the server comes back, the
// cooldown elapses, and the same driver's next compile probes half-open
// and closes the circuit — remote hits flow again.
func TestRemoteBreakerRecoversAcrossCompiles(t *testing.T) {
	cfg := detConfig(PostPass)
	const seed = 44
	_, hs := remoteServer(t)

	// Warm the server from a healthy process.
	w := New(Options{RemoteURL: hs.URL, RemoteTuning: fastRemoteTuning()})
	mustCompile(t, w, workload.RandomProgram(seed), cfg)
	closeRemote(t, w)

	// A second process starts with the network broken; the breaker opens.
	clock := time.Unix(5000, 0)
	tun := fastRemoteTuning()
	tun.HalfOpenAfter = 2 * time.Second
	tun.Now = func() time.Time { return clock }
	rt := &remotecache.FaultRT{}
	rt.Arm(remotecache.FaultRefused)
	d := New(Options{RemoteURL: hs.URL, RemoteFaultRT: rt, RemoteTuning: tun})
	defer closeRemote(t, d)
	mustCompile(t, d, workload.RandomProgram(seed), cfg)
	if st := d.Cache().Remote().State(); st != remotecache.StateOpen {
		t.Fatalf("breaker state after faulted compile = %v, want open", st)
	}

	// Network heals, cooldown passes; a *different* program forces fresh
	// lookups (the first one is now memory-cached), and the probe closes
	// the circuit.
	rt.Disarm()
	clock = clock.Add(3 * time.Second)
	mustCompile(t, d, workload.RandomProgram(seed+1), cfg)
	if st := d.Cache().Remote().State(); st != remotecache.StateClosed {
		t.Fatalf("breaker did not recover after the server healed: %v", st)
	}

	// Recovered tier serves: recompile the warm seed on a fresh driver.
	b := New(Options{RemoteURL: hs.URL, RemoteTuning: fastRemoteTuning()})
	defer closeRemote(t, b)
	rep := mustCompile(t, b, workload.RandomProgram(seed), cfg)
	if !rep.ProgramCacheHit || rep.Cache.Remote.Hits < 1 {
		t.Errorf("healed remote tier served no hits: %+v", rep.Cache.Remote)
	}
}

// TestDegradedCompileNeverReachesRemote extends the no-put-on-failure
// rule across the network: a compile that recovered from a fault must
// leave no program artifact on the cache server that any other process
// could be served.
func TestDegradedCompileNeverReachesRemote(t *testing.T) {
	_, hs := remoteServer(t)

	a := New(Options{RemoteURL: hs.URL, RemoteTuning: fastRemoteTuning()})
	fcfg := detConfig(PostPassInterproc)
	fcfg.postPassHook = func(name string) {
		if name == "main" {
			panic("transient allocator bug")
		}
	}
	frep, err := a.Compile(workload.RandomProgram(45), fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if frep.Degraded == 0 {
		t.Fatal("hooked compile did not degrade (test setup broken)")
	}
	closeRemote(t, a)

	// Fresh process, same server, identical cache key, bug "fixed":
	// nothing degraded may come back from the fleet cache.
	b := New(Options{RemoteURL: hs.URL, RemoteTuning: fastRemoteTuning()})
	defer closeRemote(t, b)
	cfg := detConfig(PostPassInterproc)
	rep, err := b.Compile(workload.RandomProgram(45), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ProgramCacheHit {
		t.Error("degraded program artifact was uploaded and served")
	}
	if rep.PerFunc["main"].Degraded != "" {
		t.Error("degradation leaked through the remote tier")
	}
}

// TestRemoteThreeTierPromotion: a remote hit is promoted into the disk
// tier, so the *next* process restart on the same disk never pays for
// the network again.
func TestRemoteThreeTierPromotion(t *testing.T) {
	_, hs := remoteServer(t)
	cfg := detConfig(Integrated)
	const seed = 46
	want := coldILOC(t, seed, cfg)

	// Process 1 (another machine): populates the server only.
	w := New(Options{RemoteURL: hs.URL, RemoteTuning: fastRemoteTuning()})
	mustCompile(t, w, workload.RandomProgram(seed), cfg)
	closeRemote(t, w)

	// Process 2: empty disk, warm server → remote hits, promoted to disk.
	dir := t.TempDir()
	a := New(Options{CacheDir: dir, RemoteURL: hs.URL, RemoteTuning: fastRemoteTuning()})
	pa := workload.RandomProgram(seed)
	repA := mustCompile(t, a, pa, cfg)
	if pa.String() != want {
		t.Fatal("three-tier compile differs from cold compile")
	}
	if repA.Cache.Remote.Hits < 1 {
		t.Fatalf("no remote hits on a cold disk: %+v", repA.Cache.Remote)
	}
	closeRemote(t, a)

	// Process 3: same disk, server gone → served from the promoted disk
	// entries, zero remote traffic needed.
	b := New(Options{CacheDir: dir, RemoteURL: deadURL(t), RemoteTuning: fastRemoteTuning()})
	defer closeRemote(t, b)
	pb := workload.RandomProgram(seed)
	repB := mustCompile(t, b, pb, cfg)
	if pb.String() != want {
		t.Fatal("disk-promoted compile differs from cold compile")
	}
	if !repB.ProgramCacheHit || repB.Cache.Disk.Hits < 1 {
		t.Errorf("remote hit was not promoted to disk: %+v", repB.Cache)
	}
	got := repB.Cache
	if got.Hits != got.Memory.Hits+got.Disk.Hits+got.Remote.Hits {
		t.Errorf("whole-cache invariant broken: %d != %d + %d + %d",
			got.Hits, got.Memory.Hits, got.Disk.Hits, got.Remote.Hits)
	}
}

// TestRemoteBadURLIsMemoryOnly: a malformed RemoteURL must not fail the
// driver — it surfaces via RemoteCacheErr and the driver runs without
// the tier.
func TestRemoteBadURLIsMemoryOnly(t *testing.T) {
	d := New(Options{RemoteURL: "not a url"})
	if d.RemoteCacheErr() == nil {
		t.Fatal("no error surfaced for a malformed remote URL")
	}
	cfg := detConfig(PostPass)
	want := coldILOC(t, 47, cfg)
	p := workload.RandomProgram(47)
	rep := mustCompile(t, d, p, cfg)
	if p.String() != want {
		t.Error("missing remote tier changed the output")
	}
	if rep.Cache.Remote.Hits != 0 || rep.Cache.Remote.Misses != 0 {
		t.Errorf("remote counters nonzero without a remote tier: %+v", rep.Cache.Remote)
	}
}

// TestCacheStatsJSONShapeRemote pins the remote block of the report
// surface: present (even with no tier attached, all-zero with
// hit_rate 0 — the PR-5 zero-lookup guard) and carrying the hardening
// counters by name when a tier is attached.
func TestCacheStatsJSONShapeRemote(t *testing.T) {
	shape := func(t *testing.T, rep *Report) map[string]json.RawMessage {
		t.Helper()
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		var decoded struct {
			Cache map[string]json.RawMessage `json:"cache"`
		}
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Fatal(err)
		}
		var remote map[string]json.RawMessage
		if err := json.Unmarshal(decoded.Cache["remote"], &remote); err != nil {
			t.Fatalf("cache block has no remote object: %s", raw)
		}
		for _, key := range []string{"hits", "misses", "hit_rate", "puts", "put_drops",
			"put_errors", "retries", "timeouts", "net_errors", "http_errors",
			"corruptions", "skipped", "trips", "probes"} {
			if _, ok := remote[key]; !ok {
				t.Errorf("remote tier block missing %q: %s", key, decoded.Cache["remote"])
			}
		}
		return remote
	}

	// No remote tier: the block exists, zero-valued, hit_rate exactly 0.
	cfg := detConfig(PostPass)
	rep := mustCompile(t, New(Options{}), workload.RandomProgram(48), cfg)
	remote := shape(t, rep)
	var rate float64
	if err := json.Unmarshal(remote["hit_rate"], &rate); err != nil {
		t.Fatalf("remote hit_rate is not a number: %s", remote["hit_rate"])
	}
	if rate != 0 {
		t.Errorf("zero-lookup remote hit_rate = %v, want exactly 0", rate)
	}

	// Warm remote tier: hit_rate in (0, 1], circuit named.
	_, hs := remoteServer(t)
	w := New(Options{RemoteURL: hs.URL, RemoteTuning: fastRemoteTuning()})
	mustCompile(t, w, workload.RandomProgram(48), cfg)
	closeRemote(t, w)
	b := New(Options{RemoteURL: hs.URL, RemoteTuning: fastRemoteTuning()})
	defer closeRemote(t, b)
	rep2 := mustCompile(t, b, workload.RandomProgram(48), cfg)
	remote2 := shape(t, rep2)
	if err := json.Unmarshal(remote2["hit_rate"], &rate); err != nil || rate <= 0 || rate > 1 {
		t.Errorf("warm remote hit_rate = %v (%v), want in (0, 1]", rate, err)
	}
	var circuit string
	if err := json.Unmarshal(remote2["circuit"], &circuit); err != nil || circuit != "closed" {
		t.Errorf("remote circuit = %q (%v), want \"closed\"", circuit, err)
	}
}
