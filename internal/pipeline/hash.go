package pipeline

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"math"

	"ccmem/internal/ir"
)

// Key-space version tags. Bump when the encoding below or the semantics
// of a stage change, so stale artifacts from an older scheme can never be
// returned (relevant only to long-lived shared caches).
const (
	frontKeyTag   = "ccm-pipeline-front-v2"
	backKeyTag    = "ccm-pipeline-back-v2"
	programKeyTag = "ccm-pipeline-prog-v3" // v3: DiffCheck/DiffVectors entered the key
)

// hasher streams a canonical binary encoding of IR and Config into
// SHA-256. Every variable-length field is length-prefixed, so distinct
// inputs cannot collide by concatenation.
type hasher struct {
	h   hash.Hash
	buf [8]byte
}

func newHasher(tag string) *hasher {
	h := &hasher{h: sha256.New()}
	h.str(tag)
	return h
}

func (h *hasher) u64(v uint64) {
	binary.LittleEndian.PutUint64(h.buf[:], v)
	h.h.Write(h.buf[:])
}

func (h *hasher) i64(v int64) { h.u64(uint64(v)) }
func (h *hasher) int(v int)   { h.u64(uint64(int64(v))) }

func (h *hasher) bool(b bool) {
	if b {
		h.u64(1)
	} else {
		h.u64(0)
	}
}

func (h *hasher) str(s string) {
	h.int(len(s))
	h.h.Write([]byte(s))
}

func (h *hasher) sum() digest {
	var d digest
	copy(d[:], h.h.Sum(nil))
	return d
}

// fn encodes every field of f that influences compilation or the printed
// ILOC text — including diagnostic register names, which appear in the
// output and must therefore distinguish artifacts.
func (h *hasher) fn(f *ir.Func) {
	h.str(f.Name)
	h.int(len(f.Params))
	for _, r := range f.Params {
		h.i64(int64(r))
	}
	h.int(int(f.RetClass))
	h.int(len(f.Regs))
	for _, ri := range f.Regs {
		h.int(int(ri.Class))
		h.str(ri.Name)
	}
	h.bool(f.Allocated)
	h.int(f.NumInt)
	h.int(f.NumFloat)
	h.i64(f.FrameBytes)
	h.i64(f.CCMBytes)
	h.int(len(f.Blocks))
	for _, b := range f.Blocks {
		h.str(b.Name)
		h.int(len(b.Instrs))
		for i := range b.Instrs {
			in := &b.Instrs[i]
			h.int(int(in.Op))
			h.i64(int64(in.Dst))
			h.int(len(in.Args))
			for _, a := range in.Args {
				h.i64(int64(a))
			}
			h.i64(in.Imm)
			h.u64(math.Float64bits(in.FImm))
			h.str(in.Sym)
			h.str(in.Then)
			h.str(in.Else)
		}
	}
}

// frontKey addresses a function's front-stage artifact. Strategy enters
// only through the integrated CCM capacity: the baseline and both
// post-pass strategies run an identical front stage, so their sweeps
// share artifacts.
func frontKey(f *ir.Func, cfg Config) digest {
	h := newHasher(frontKeyTag)
	h.bool(cfg.DisableOptimizer)
	h.int(cfg.IntRegs)
	h.int(cfg.FloatRegs)
	if cfg.Strategy == Integrated {
		h.i64(cfg.CCMBytes)
	} else {
		h.i64(0)
	}
	// Verified and unverified artifacts are kept apart: a VerifyPasses
	// compile must never be satisfied by an artifact that skipped its
	// checkpoints.
	h.bool(cfg.VerifyPasses)
	h.fn(f)
	return h.sum()
}

// backKey addresses a function's back-stage artifact, keyed by the
// post-barrier function content so promotion changes invalidate exactly
// the functions they rewrote.
func backKey(f *ir.Func, cfg Config) digest {
	h := newHasher(backKeyTag)
	h.bool(cfg.CleanupSpills)
	h.bool(cfg.DisableCompaction)
	h.bool(cfg.VerifyPasses)
	h.fn(f)
	return h.sum()
}

// programKey addresses a whole compiled program under the full Config.
func programKey(p *ir.Program, cfg Config) digest {
	h := newHasher(programKeyTag)
	h.int(int(cfg.Strategy))
	h.i64(cfg.CCMBytes)
	h.int(cfg.IntRegs)
	h.int(cfg.FloatRegs)
	h.bool(cfg.DisableOptimizer)
	h.bool(cfg.DisableCompaction)
	h.bool(cfg.CleanupSpills)
	h.bool(cfg.VerifyPasses)
	// Differential checking can change the shipped program (divergence
	// quarantine degrades functions), so checked and unchecked compiles
	// must not share artifacts.
	h.int(int(cfg.DiffCheck))
	h.int(cfg.DiffVectors)
	h.int(len(p.Globals))
	for _, g := range p.Globals {
		h.str(g.Name)
		h.int(g.Words)
		h.int(len(g.Init))
		for _, w := range g.Init {
			h.u64(w)
		}
	}
	h.int(len(p.Funcs))
	for _, f := range p.Funcs {
		h.fn(f)
	}
	return h.sum()
}

// programSeed derives the differential oracle's argument-vector seed
// from the same content hash that addresses the program in the cache:
// re-checking an identical (program, Config) pair replays identical
// vectors, with no wall-clock randomness anywhere.
func programSeed(p *ir.Program, cfg Config) uint64 {
	k := programKey(p, cfg)
	return binary.LittleEndian.Uint64(k[:8])
}
