// Package pipeline is the compilation driver: it owns the pass sequence
// that turns verified input ILOC into allocated, CCM-promoted, compacted
// output (optimize → register allocation → CCM promotion → spill cleanup →
// compaction → verification) and adds the three things the inline driver
// in ccm.go never had:
//
//   - per-function parallelism: functions are independent before and
//     after the interprocedural CCM partitioning step, so the front
//     (optimize + allocate) and back (cleanup + compact) stages run on a
//     bounded worker pool; only the call-graph-driven post-pass promotion
//     is a sequential whole-program barrier;
//   - a content-addressed compile cache keyed by SHA-256 over a canonical
//     encoding of (function IR, relevant Config fields), with whole-program
//     entries layered on top, so repeated compiles — the dominant cost in
//     experiment sweeps — are near-free;
//   - observability: per-pass wall time, instruction deltas, per-function
//     spill statistics and cache hit/miss counters, exported as a
//     structured Report that the CLIs print as JSON.
//
// Parallel compilation is deterministic: every pass mutates only its own
// function, so workers=N produces bit-identical output to workers=1 (the
// package test suite asserts this under the race detector).
package pipeline

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ccmem/internal/core"
	"ccmem/internal/ir"
	"ccmem/internal/opt"
	"ccmem/internal/regalloc"
)

// Strategy selects how register spills are placed. The values mirror the
// paper's three CCM algorithms plus the no-CCM baseline (ccm.Strategy is
// the public-facade twin of this type).
type Strategy int

const (
	// NoCCM spills to the activation record only (the baseline).
	NoCCM Strategy = iota
	// PostPass promotes spills with the stand-alone intraprocedural CCM
	// allocator.
	PostPass
	// PostPassInterproc adds the bottom-up call-graph walk.
	PostPassInterproc
	// Integrated assigns CCM locations during spill-code insertion inside
	// the Chaitin-Briggs allocator.
	Integrated
)

func (s Strategy) String() string {
	switch s {
	case NoCCM:
		return "none"
	case PostPass:
		return "postpass"
	case PostPassInterproc:
		return "postpass-ipa"
	case Integrated:
		return "integrated"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy converts a command-line name into a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "none":
		return NoCCM, nil
	case "postpass":
		return PostPass, nil
	case "postpass-ipa", "ipa":
		return PostPassInterproc, nil
	case "integrated":
		return Integrated, nil
	}
	return NoCCM, fmt.Errorf("unknown strategy %q (want none, postpass, postpass-ipa, integrated)", s)
}

// Config parameterizes one compilation. The zero value compiles like the
// paper's baseline: 32+32 registers, optimizer on, compaction on, no CCM.
type Config struct {
	Strategy Strategy
	CCMBytes int64 // capacity of the CCM; required unless Strategy is NoCCM

	IntRegs   int // default 32
	FloatRegs int // default 32

	DisableOptimizer  bool // skip the scalar optimizer
	DisableCompaction bool // skip spill-memory compaction (and the whole back stage)
	CleanupSpills     bool // run the post-allocation spill-code peephole
}

func (c Config) withDefaults() Config {
	if c.IntRegs == 0 {
		c.IntRegs = 32
	}
	if c.FloatRegs == 0 {
		c.FloatRegs = 32
	}
	return c
}

func (c Config) validate() error {
	if c.Strategy != NoCCM && c.CCMBytes <= 0 {
		return fmt.Errorf("pipeline: strategy %v requires CCMBytes > 0", c.Strategy)
	}
	return nil
}

// Options configure a Driver.
type Options struct {
	// Workers bounds the per-function worker pool; 0 means GOMAXPROCS.
	Workers int
	// Cache is the artifact store shared by every Compile on this driver.
	// nil creates a private cache of DefaultCacheEntries; to share one
	// cache across drivers, pass the same *Cache to each.
	Cache *Cache
	// DisableCache turns content-addressed caching off entirely.
	DisableCache bool
}

// Driver is a reusable compilation pipeline. It is safe for concurrent
// use; the cache and cumulative metrics are shared across Compile calls.
type Driver struct {
	workers int
	cache   *Cache // nil when caching is disabled

	mu          sync.Mutex
	cum         *metrics // cumulative per-pass totals across compiles
	compiles    int64
	funcsTotal  int64
	wallTotal   int64
	programHits int64
}

// New builds a Driver.
func New(opts Options) *Driver {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	d := &Driver{workers: w, cum: newMetrics()}
	if !opts.DisableCache {
		d.cache = opts.Cache
		if d.cache == nil {
			d.cache = NewCache(DefaultCacheEntries)
		}
	}
	return d
}

// Workers returns the worker-pool bound.
func (d *Driver) Workers() int { return d.workers }

// Cache returns the driver's artifact store (nil when disabled).
func (d *Driver) Cache() *Cache { return d.cache }

// funcState carries per-function results from stage to stage.
type funcState struct {
	fr       FuncReport
	frontHit bool
	backHit  bool
}

// Compile runs the full pass sequence on p in place and returns the
// structured report. p must be verified input ILOC (unallocated).
func (d *Driver) Compile(p *ir.Program, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	m := newMetrics()
	rep := &Report{
		Strategy: cfg.Strategy.String(),
		Workers:  d.workers,
		Funcs:    len(p.Funcs),
		PerFunc:  make(map[string]FuncReport, len(p.Funcs)),
	}

	// Whole-program cache: a repeat compile of an identical (program,
	// Config) pair skips every pass, including verification.
	var progKey digest
	if d.cache != nil {
		progKey = programKey(p, cfg)
		if v, ok := d.cache.get(progKey); ok {
			art := v.(*programArtifact)
			for i := range p.Funcs {
				p.Funcs[i] = art.funcs[i].Clone()
			}
			for name, fr := range art.perFunc {
				fr.FrontCacheHit = true
				fr.BackCacheHit = true
				rep.PerFunc[name] = fr
			}
			rep.ProgramCacheHit = true
			d.finish(rep, m, start, true)
			return rep, nil
		}
	}

	states := make([]funcState, len(p.Funcs))

	// Front stage (parallel): scalar optimization + register allocation.
	// Each worker touches only p.Funcs[i], so scheduling cannot change
	// the output. The cache key deliberately excludes Strategy except for
	// the integrated CCM capacity: the front stage is identical for the
	// baseline and both post-pass strategies, so artifacts are shared
	// across those sweeps.
	err := d.forEach(len(p.Funcs), func(i int) error {
		f := p.Funcs[i]
		st := &states[i]
		var key digest
		if d.cache != nil {
			key = frontKey(f, cfg)
			if v, ok := d.cache.get(key); ok {
				art := v.(*frontArtifact)
				p.Funcs[i] = art.fn.Clone()
				st.fr = art.fr
				st.frontHit = true
				return nil
			}
		}
		if !cfg.DisableOptimizer {
			before := f.NumInstrs()
			t := time.Now()
			if _, err := opt.Optimize(f); err != nil {
				return err
			}
			m.pass(PassOptimize, time.Since(t), before, f.NumInstrs())
		}
		ra := regalloc.Options{IntRegs: cfg.IntRegs, FloatRegs: cfg.FloatRegs}
		if cfg.Strategy == Integrated {
			ra.CCMBytes = cfg.CCMBytes
		}
		before := f.NumInstrs()
		t := time.Now()
		res, err := regalloc.Allocate(f, ra)
		if err != nil {
			return fmt.Errorf("pipeline: %s: %w", f.Name, err)
		}
		m.pass(PassRegalloc, time.Since(t), before, f.NumInstrs())
		st.fr.SpillBytesNaive = res.FrameBytes
		st.fr.SpilledRanges = res.SpilledRanges
		st.fr.CCMBytes = res.CCMBytesUsed
		st.fr.PromotedWebs = res.CCMRanges
		if d.cache != nil {
			d.cache.put(key, &frontArtifact{fn: f.Clone(), fr: st.fr})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Interprocedural barrier (sequential): the post-pass CCM allocator
	// walks the call graph bottom-up, so every function's allocated body
	// must be final before any promotion decision is made.
	if cfg.Strategy == PostPass || cfg.Strategy == PostPassInterproc {
		before := totalInstrs(p)
		t := time.Now()
		res, err := core.PostPass(p, core.PostPassOptions{
			CCMBytes:        cfg.CCMBytes,
			Interprocedural: cfg.Strategy == PostPassInterproc,
		})
		if err != nil {
			return nil, err
		}
		m.pass(PassPostPass, time.Since(t), before, totalInstrs(p))
		for i, f := range p.Funcs {
			if fp := res.PerFunc[f.Name]; fp != nil {
				states[i].fr.PromotedWebs = fp.Promoted
				states[i].fr.CCMBytes = fp.CCMBytes
			}
		}
	}

	// Back stage (parallel): spill-code cleanup and spill-memory
	// compaction, both strictly per-function. Keyed by the post-barrier
	// function content, so a promotion change invalidates exactly the
	// functions it rewrote.
	if cfg.CleanupSpills || !cfg.DisableCompaction {
		err = d.forEach(len(p.Funcs), func(i int) error {
			f := p.Funcs[i]
			st := &states[i]
			var key digest
			if d.cache != nil {
				key = backKey(f, cfg)
				if v, ok := d.cache.get(key); ok {
					art := v.(*backArtifact)
					p.Funcs[i] = art.fn.Clone()
					st.fr.SpillBytesCompacted = art.compactAfter
					st.fr.SpillWebs = art.webs
					st.backHit = true
					return nil
				}
			}
			if cfg.CleanupSpills {
				before := f.NumInstrs()
				t := time.Now()
				regalloc.CleanupSpillCode(f)
				m.pass(PassCleanup, time.Since(t), before, f.NumInstrs())
			}
			if !cfg.DisableCompaction {
				before := f.NumInstrs()
				t := time.Now()
				cres, err := core.CompactSpills(f)
				if err != nil {
					return err
				}
				m.pass(PassCompact, time.Since(t), before, f.NumInstrs())
				st.fr.SpillBytesCompacted = cres.AfterBytes
				st.fr.SpillWebs = cres.Webs
			}
			if d.cache != nil {
				d.cache.put(key, &backArtifact{
					fn:           f.Clone(),
					compactAfter: st.fr.SpillBytesCompacted,
					webs:         st.fr.SpillWebs,
				})
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	{
		n := totalInstrs(p)
		t := time.Now()
		if err := ir.VerifyProgram(p, ir.VerifyOptions{}); err != nil {
			return nil, fmt.Errorf("pipeline: post-compile verification failed: %w", err)
		}
		m.pass(PassVerify, time.Since(t), n, n)
	}

	for i, f := range p.Funcs {
		st := states[i]
		st.fr.Instrs = f.NumInstrs()
		st.fr.FrontCacheHit = st.frontHit
		st.fr.BackCacheHit = st.backHit
		rep.PerFunc[f.Name] = st.fr
	}

	if d.cache != nil {
		art := &programArtifact{
			funcs:   make([]*ir.Func, len(p.Funcs)),
			perFunc: make(map[string]FuncReport, len(rep.PerFunc)),
		}
		for i, f := range p.Funcs {
			art.funcs[i] = f.Clone()
		}
		for name, fr := range rep.PerFunc {
			fr.FrontCacheHit = false
			fr.BackCacheHit = false
			art.perFunc[name] = fr
		}
		d.cache.put(progKey, art)
	}

	d.finish(rep, m, start, false)
	return rep, nil
}

// finish stamps wall time and cache stats on rep and folds the compile
// into the driver's cumulative metrics.
func (d *Driver) finish(rep *Report, m *metrics, start time.Time, programHit bool) {
	rep.WallNanos = time.Since(start).Nanoseconds()
	rep.Passes = m.stats()
	if d.cache != nil {
		rep.Cache = d.cache.Stats()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.compiles++
	d.funcsTotal += int64(rep.Funcs)
	d.wallTotal += rep.WallNanos
	if programHit {
		d.programHits++
	}
	d.cum.merge(m)
}

// Metrics returns the driver's cumulative totals across every Compile:
// aggregated per-pass timings, total functions and wall time, the number
// of whole-program cache hits, and a cache-counter snapshot. PerFunc is
// nil on the cumulative report.
func (d *Driver) Metrics() *Report {
	d.mu.Lock()
	defer d.mu.Unlock()
	rep := &Report{
		Strategy:    "(cumulative)",
		Workers:     d.workers,
		Compiles:    d.compiles,
		Funcs:       int(d.funcsTotal),
		WallNanos:   d.wallTotal,
		ProgramHits: d.programHits,
		Passes:      d.cum.stats(),
	}
	if d.cache != nil {
		rep.Cache = d.cache.Stats()
	}
	return rep
}

// forEach runs fn(i) for i in [0,n) on the worker pool. With one worker
// (or one item) it degenerates to a plain loop; results are identical
// either way because each fn touches only its own index.
func (d *Driver) forEach(n int, fn func(int) error) error {
	workers := d.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		errMu  sync.Mutex
		first  error
	)
	next.Store(-1)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					errMu.Lock()
					if first == nil {
						first = err
					}
					errMu.Unlock()
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}

func totalInstrs(p *ir.Program) int {
	n := 0
	for _, f := range p.Funcs {
		n += f.NumInstrs()
	}
	return n
}
