// Package pipeline is the compilation driver: it owns the pass sequence
// that turns verified input ILOC into allocated, CCM-promoted, compacted
// output (optimize → register allocation → CCM promotion → spill cleanup →
// compaction → verification) and adds the things the inline driver in
// ccm.go never had:
//
//   - per-function parallelism: functions are independent before and
//     after the interprocedural CCM partitioning step, so the front
//     (optimize + allocate) and back (cleanup + compact) stages run on a
//     bounded worker pool; only the call-graph-driven post-pass promotion
//     is a sequential whole-program barrier;
//   - a content-addressed compile cache keyed by SHA-256 over a canonical
//     encoding of (function IR, relevant Config fields), with whole-program
//     entries layered on top, so repeated compiles — the dominant cost in
//     experiment sweeps — are near-free; Options.CacheDir adds a
//     crash-safe persistent disk tier (internal/diskcache) behind the
//     memory LRU, so artifacts also survive process restarts, with
//     integrity verified on every read and corruption degrading to a
//     recompile, never to wrong output;
//   - observability: per-pass wall time, instruction deltas, per-function
//     spill statistics and cache hit/miss counters, exported as a
//     structured Report that the CLIs print as JSON;
//   - fault isolation: every per-function pass runs under recover(), so a
//     panicking pass becomes a structured *CompileError naming the pass,
//     function, and stack instead of killing the worker pool; Compile
//     accepts a context with per-function timeouts and cooperative
//     cancellation at pass boundaries; an optional verification mode
//     (Config.VerifyPasses) checkpoints IR and liveness invariants after
//     every pass and attributes the first breakage to the pass that
//     introduced it; and a degradation ladder retries a faulting function
//     first without optimization, then on the baseline spill-to-RAM path,
//     so one bad function degrades instead of failing the program. Failed
//     attempts are captured as replayable crash repro bundles
//     (Config.ReproDir, internal/repro).
//
// Parallel compilation is deterministic: every pass mutates only its own
// function, so workers=N produces bit-identical output to workers=1 (the
// package test suite asserts this under the race detector, including for
// degraded functions). The one documented exception is timeout-induced
// degradation, which depends on wall-clock scheduling.
package pipeline

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ccmem/internal/core"
	"ccmem/internal/diskcache"
	"ccmem/internal/ir"
	"ccmem/internal/obs"
	"ccmem/internal/opt"
	"ccmem/internal/regalloc"
	"ccmem/internal/remotecache"
	"ccmem/internal/repro"
)

// Strategy selects how register spills are placed. The values mirror the
// paper's three CCM algorithms plus the no-CCM baseline (ccm.Strategy is
// the public-facade twin of this type).
type Strategy int

const (
	// NoCCM spills to the activation record only (the baseline).
	NoCCM Strategy = iota
	// PostPass promotes spills with the stand-alone intraprocedural CCM
	// allocator.
	PostPass
	// PostPassInterproc adds the bottom-up call-graph walk.
	PostPassInterproc
	// Integrated assigns CCM locations during spill-code insertion inside
	// the Chaitin-Briggs allocator.
	Integrated
)

func (s Strategy) String() string {
	switch s {
	case NoCCM:
		return "none"
	case PostPass:
		return "postpass"
	case PostPassInterproc:
		return "postpass-ipa"
	case Integrated:
		return "integrated"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy converts a command-line name into a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "none":
		return NoCCM, nil
	case "postpass":
		return PostPass, nil
	case "postpass-ipa", "ipa":
		return PostPassInterproc, nil
	case "integrated":
		return Integrated, nil
	}
	return NoCCM, fmt.Errorf("unknown strategy %q (want none, postpass, postpass-ipa, integrated)", s)
}

// InjectedPass is an experimental per-function pass run between the
// scalar optimizer and the register allocator — the hook an RL-driven or
// otherwise untrusted transform plugs into. Injected passes run under the
// same isolation as built-in passes (recover, checkpoints, the
// degradation ladder), and the first rung of the ladder drops them, so a
// crashing experiment can never take the toolchain down. The context is
// the per-function compile context; long-running passes should honor it.
type InjectedPass struct {
	Name string
	Fn   func(ctx context.Context, f *ir.Func) error
}

// Config parameterizes one compilation. The zero value compiles like the
// paper's baseline: 32+32 registers, optimizer on, compaction on, no CCM.
type Config struct {
	Strategy Strategy
	CCMBytes int64 // capacity of the CCM; required unless Strategy is NoCCM

	IntRegs   int // default 32
	FloatRegs int // default 32

	DisableOptimizer  bool // skip the scalar optimizer
	DisableCompaction bool // skip spill-memory compaction (and the whole back stage)
	CleanupSpills     bool // run the post-allocation spill-code peephole

	// Fault isolation & graceful degradation.

	// VerifyPasses runs ir.VerifyFunc plus the liveness-consistency check
	// as a checkpoint after every per-function pass (and once on the
	// input), attributing the first broken invariant to the pass that
	// introduced it.
	VerifyPasses bool
	// FuncTimeout bounds each per-function compile attempt. The deadline
	// is checked cooperatively at pass boundaries and passed to injected
	// passes; a built-in pass that loops forever cannot be preempted. On
	// expiry the attempt fails and the degradation ladder takes over
	// (timeout-induced degradation is wall-clock dependent and therefore
	// not deterministic). 0 means no limit.
	FuncTimeout time.Duration
	// FuncRetries is the number of extra attempts at the same degradation
	// rung before descending to the next one.
	FuncRetries int
	// Strict fails the whole compile on the first fault instead of
	// degrading (repro bundles are still written).
	Strict bool
	// ReproDir, when non-empty, receives one crash repro bundle
	// (internal/repro) per failed attempt.
	ReproDir string
	// InjectFront holds experimental passes run between optimize and
	// regalloc. Closures cannot be content-addressed, so any injected
	// pass disables the compile cache for the whole Compile.
	InjectFront []InjectedPass `json:"-"`

	// DiffCheck runs the differential-execution miscompile oracle
	// (internal/oracle) against the input program: DiffFinal once on the
	// compiled output, DiffPerStage additionally at each stage boundary.
	// A divergence is bisected across per-pass snapshots to the first
	// semantically-divergent pass; in Strict mode it fails the compile
	// with a *MiscompileError, otherwise the culprit function is forced
	// down the degradation ladder and the compile retries. Per-function
	// caching is disabled while checking (snapshots must be recorded),
	// but whole-program cache entries — stored only for divergence-free
	// compiles — are still served.
	DiffCheck DiffCheck
	// DiffVectors is the number of argument vectors per checked entry
	// function (0 = the oracle default of 3).
	DiffVectors int

	// postPassHook is a test seam: it is invoked with each function name
	// as the interprocedural barrier reaches it, and may panic to
	// simulate a mid-walk allocator fault.
	postPassHook func(name string)
}

func (c Config) withDefaults() Config {
	if c.IntRegs == 0 {
		c.IntRegs = 32
	}
	if c.FloatRegs == 0 {
		c.FloatRegs = 32
	}
	return c
}

func (c Config) validate() error {
	if c.Strategy != NoCCM && c.CCMBytes <= 0 {
		return fmt.Errorf("pipeline: strategy %v requires CCMBytes > 0", c.Strategy)
	}
	if c.FuncRetries < 0 {
		return fmt.Errorf("pipeline: FuncRetries must be >= 0, got %d", c.FuncRetries)
	}
	if c.FuncTimeout < 0 {
		return fmt.Errorf("pipeline: FuncTimeout must be >= 0, got %v", c.FuncTimeout)
	}
	for _, ip := range c.InjectFront {
		if ip.Name == "" || ip.Fn == nil {
			return fmt.Errorf("pipeline: injected pass must have a name and a body")
		}
	}
	if c.DiffCheck < DiffOff || c.DiffCheck > DiffPerStage {
		return fmt.Errorf("pipeline: unknown DiffCheck mode %d", int(c.DiffCheck))
	}
	if c.DiffVectors < 0 {
		return fmt.Errorf("pipeline: DiffVectors must be >= 0, got %d", c.DiffVectors)
	}
	return nil
}

// Options configure a Driver.
type Options struct {
	// Workers bounds the per-function worker pool; 0 means GOMAXPROCS.
	Workers int
	// Cache is the artifact store shared by every Compile on this driver.
	// nil creates a private cache of DefaultCacheEntries; to share one
	// cache across drivers, pass the same *Cache to each.
	Cache *Cache
	// DisableCache turns content-addressed caching off entirely
	// (including the disk tier).
	DisableCache bool

	// CacheDir enables the persistent disk tier (internal/diskcache)
	// under the given directory: artifacts survive process restarts, and
	// a second driver opened on the same directory serves them without
	// recompiling. Opening the tier can fail (unwritable path, sick
	// disk); the driver then runs memory-only and reports the cause via
	// DiskCacheErr — a broken disk tier never fails compilation.
	CacheDir string
	// CacheBytes is the disk tier's byte budget, evicted LRU-by-access;
	// <= 0 uses diskcache.DefaultMaxBytes.
	CacheBytes int64
	// DiskFS overrides the filesystem the disk tier runs on — the fault
	// injection seam (diskcache.FaultFS). nil uses the real filesystem.
	DiskFS diskcache.FS

	// RemoteURL enables the remote HTTP tier (internal/remotecache): a
	// shared cache server consulted after a disk miss, with hits promoted
	// into the upper tiers and stores written behind asynchronously. Like
	// the disk tier it is an accelerator, not a dependency — a sick or
	// absent server costs time, never bytes, and never fails a compile
	// (the client's circuit breaker stops paying for a dead server after
	// a few failures). Empty disables the tier; a malformed URL is
	// reported via RemoteCacheErr and the driver runs without the tier.
	RemoteURL string
	// RemoteURLs enables the replicated remote fleet: two or more
	// ccmcached base URLs behind the same tier contract, with rendezvous
	// placement, per-node circuit breakers, failover reads, replicated
	// write-behind puts, and async read-repair (remotecache.Fleet).
	// A single entry behaves exactly like RemoteURL. When both fields
	// are set, RemoteURL is treated as one more fleet node.
	RemoteURLs []string
	// RemoteToken is the bearer token sent with every remote-tier
	// request — required to join a fleet whose ccmcached runs with
	// -auth-token. Empty sends no Authorization header.
	RemoteToken string
	// RemoteFaultRT overrides the remote client's HTTP transport — the
	// network fault-injection seam (remotecache.FaultRT). nil uses the
	// real transport.
	RemoteFaultRT http.RoundTripper
	// RemoteFaultRTs overrides transports per fleet node — the per-node
	// fault-injection seam. When non-nil it must match the resolved node
	// list exactly; nil entries fall back to RemoteFaultRT.
	RemoteFaultRTs []http.RoundTripper
	// RemoteReplicas is how many healthy fleet nodes each write-behind
	// put lands on; <= 0 uses the fleet default (2, capped at the node
	// count). Ignored for a single-server tier.
	RemoteReplicas int
	// RemoteHedgeDelay, when > 0, arms hedged fleet reads: a lookup that
	// the preferred node has not answered within the delay is raced
	// against the next node in the key's preference order. 0 disables
	// hedging (the deterministic default). Ignored for a single server.
	RemoteHedgeDelay time.Duration
	// RemoteTuning adjusts the remote client's hardening knobs (timeouts,
	// retries, breaker thresholds); zero fields take remotecache defaults.
	RemoteTuning remotecache.Tuning

	// Tracer, when non-nil, records a span for every compile, stage,
	// pass, cache lookup, oracle run, and repro write on this driver.
	// Workers record into lock-free per-worker shards; export the merged,
	// deterministically ordered result with Tracer.WriteChromeTrace after
	// the compiles of interest have returned. nil disables tracing at
	// ~zero cost.
	Tracer *obs.Tracer
	// Metrics, when non-nil, receives named counters, gauges, and
	// per-pass latency histograms from every subsystem the driver runs
	// (regalloc, CCM promotion, compaction, opt, oracle, both cache
	// tiers). Counter and gauge values are deterministic across worker
	// counts; histogram bucket placements are wall-clock and are not.
	// nil disables metrics at ~zero cost.
	Metrics *obs.Registry
	// PprofLabels runs every pass body under runtime/pprof.Do with
	// ccm_func/ccm_pass labels, so CPU profiles attribute samples to
	// passes and functions.
	PprofLabels bool
}

// Driver is a reusable compilation pipeline. It is safe for concurrent
// use; the cache and cumulative metrics are shared across Compile calls.
type Driver struct {
	workers   int
	cache     *Cache // nil when caching is disabled
	diskErr   error  // why the disk tier failed to open (nil when absent or healthy)
	remoteErr error  // why the remote tier failed to build (nil when absent or healthy)

	tracer *obs.Tracer   // nil when tracing is off
	reg    *obs.Registry // nil when metrics are off
	labels bool          // run pass bodies under pprof labels

	mu          sync.Mutex
	cum         *metrics // cumulative per-pass totals across compiles
	compiles    int64
	funcsTotal  int64
	wallTotal   int64
	programHits int64
	failures    int64
	degraded    int64

	// Cumulative differential-oracle totals across compiles.
	diffChecked      int64
	diffRuns         int64
	diffInconclusive int64
	divergences      int64
	divergentPasses  map[string]int64
}

// New builds a Driver.
func New(opts Options) *Driver {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	d := &Driver{
		workers:         w,
		cum:             newMetrics(nil), // cumulative totals never re-observe histograms
		divergentPasses: map[string]int64{},
		tracer:          opts.Tracer,
		reg:             opts.Metrics,
		labels:          opts.PprofLabels,
	}
	if !opts.DisableCache {
		d.cache = opts.Cache
		if d.cache == nil {
			d.cache = NewCache(DefaultCacheEntries)
		}
		if opts.Metrics != nil {
			d.cache.SetMetrics(opts.Metrics)
		}
		if opts.CacheDir != "" {
			dc, err := diskcache.Open(opts.CacheDir, diskcache.Options{
				MaxBytes: opts.CacheBytes,
				FS:       opts.DiskFS,
			})
			if err != nil {
				// The disk tier is an accelerator, not a dependency: if it
				// cannot open, compile memory-only and say why on request.
				d.diskErr = err
			} else {
				d.cache.AttachDisk(dc)
			}
		}
		urls := opts.RemoteURLs
		if opts.RemoteURL != "" {
			urls = append([]string{opts.RemoteURL}, urls...)
		}
		switch {
		case len(urls) == 1:
			// Single server: the original client, byte-for-byte the same
			// behavior the single-URL flag always had.
			rt := opts.RemoteFaultRT
			if len(opts.RemoteFaultRTs) == 1 && opts.RemoteFaultRTs[0] != nil {
				rt = opts.RemoteFaultRTs[0]
			}
			rc, err := remotecache.NewClient(remotecache.Options{
				BaseURL:      urls[0],
				RoundTripper: rt,
				AuthToken:    opts.RemoteToken,
				Obs:          opts.Metrics,
				Tuning:       opts.RemoteTuning,
			})
			if err != nil {
				// Same contract as the disk tier: no remote, no failure.
				d.remoteErr = err
			} else {
				d.cache.AttachRemote(rc)
			}
		case len(urls) > 1:
			fl, err := remotecache.NewFleet(remotecache.FleetOptions{
				BaseURLs:      urls,
				RoundTripper:  opts.RemoteFaultRT,
				RoundTrippers: opts.RemoteFaultRTs,
				AuthToken:     opts.RemoteToken,
				Obs:           opts.Metrics,
				Tuning:        opts.RemoteTuning,
				Replicas:      opts.RemoteReplicas,
				HedgeDelay:    opts.RemoteHedgeDelay,
			})
			if err != nil {
				d.remoteErr = err
			} else {
				d.cache.AttachRemote(fl)
			}
		}
	}
	return d
}

// Workers returns the worker-pool bound.
func (d *Driver) Workers() int { return d.workers }

// Cache returns the driver's artifact store (nil when disabled).
func (d *Driver) Cache() *Cache { return d.cache }

// DiskCacheErr reports why the persistent tier requested via
// Options.CacheDir could not be opened; nil when it is healthy or was
// never requested. The driver compiles either way.
func (d *Driver) DiskCacheErr() error { return d.diskErr }

// RemoteCacheErr reports why the remote tier requested via
// Options.RemoteURL could not be built; nil when it is attached or was
// never requested. The driver compiles either way.
func (d *Driver) RemoteCacheErr() error { return d.remoteErr }

// RemoteCircuit reports the remote tier's circuit-breaker state
// ("closed", "half-open", or "open"); "" when no remote tier is
// attached. Operators read this off /metrics and /readyz — an open
// circuit means the tier is being skipped, not that the service is
// down.
func (d *Driver) RemoteCircuit() string {
	if d.cache == nil {
		return ""
	}
	rc := d.cache.Remote()
	if rc == nil {
		return ""
	}
	return rc.Stats().Circuit
}

// RemoteNodeStatus is one fleet node's health line for /readyz: the
// node URL and its circuit-breaker position.
type RemoteNodeStatus struct {
	URL     string `json:"url"`
	Circuit string `json:"circuit"`
}

// RemoteNodes reports the per-node circuit state of a replicated remote
// fleet, in configured node order; nil when no remote tier is attached
// or the tier is a single server (whose state RemoteCircuit covers).
// The fleet-level circuit folds these with "any healthy node keeps the
// tier usable" semantics, so a degraded report means every node here is
// open.
func (d *Driver) RemoteNodes() []RemoteNodeStatus {
	if d.cache == nil {
		return nil
	}
	rc := d.cache.Remote()
	if rc == nil {
		return nil
	}
	st := rc.Stats()
	if len(st.Nodes) == 0 {
		return nil
	}
	out := make([]RemoteNodeStatus, len(st.Nodes))
	for i, ns := range st.Nodes {
		out[i] = RemoteNodeStatus{URL: ns.URL, Circuit: ns.Stats.Circuit}
	}
	return out
}

// CloseRemote drains the remote tier's write-behind queue (bounded by
// ctx) and shuts its worker down — the exit barrier a process runs so
// its artifacts reach the fleet before it reports. Safe to call when no
// remote tier is attached; compiles after CloseRemote still read from
// the tier but no longer store into it.
func (d *Driver) CloseRemote(ctx context.Context) error {
	if d.cache == nil {
		return nil
	}
	rc := d.cache.Remote()
	if rc == nil {
		return nil
	}
	err := rc.Flush(ctx)
	if cerr := rc.Close(); err == nil {
		err = cerr
	}
	return err
}

// Tracer returns the span tracer this driver records into (nil when
// tracing is off).
func (d *Driver) Tracer() *obs.Tracer { return d.tracer }

// Registry returns the metrics registry this driver records into (nil
// when metrics are off).
func (d *Driver) Registry() *obs.Registry { return d.reg }

// labeled runs body under pprof labels naming the function and pass,
// when Options.PprofLabels is on; otherwise it calls body directly. The
// labeled context is handed to body so injected passes (and nested
// pprof.Do calls) observe the labels.
func (d *Driver) labeled(ctx context.Context, fn, pass string, body func(context.Context)) {
	if !d.labels {
		body(ctx)
		return
	}
	pprof.Do(ctx, pprof.Labels("ccm_func", fn, "ccm_pass", pass), body)
}

// funcState carries per-function results from stage to stage.
type funcState struct {
	fr       FuncReport
	frontHit bool
	backHit  bool
	level    degradeLevel // rung the front stage finished at
}

// compileState is the mutable shared state of one Compile: failure and
// degradation counters plus the repro bundles written, updated from
// worker goroutines.
type compileState struct {
	cfg       Config
	inputText string // program text captured before any pass ran ("" when no ReproDir)

	// snaps records per-pass function snapshots for the current attempt
	// when the differential oracle is on (nil otherwise). Front and back
	// slots are per-function, so parallel workers write disjoint entries.
	snaps *snapRecorder

	failures atomic.Int64
	degraded atomic.Int64

	mu       sync.Mutex
	repros   []string
	reproErr error
}

// recordFailure counts one failed attempt and, when a repro directory is
// configured, writes the replayable bundle for it (emitting a
// "repro:write" span on sh).
func (cs *compileState) recordFailure(cerr *CompileError, passes []string, sh *obs.Shard) {
	cs.failures.Add(1)
	if cs.cfg.ReproDir == "" {
		return
	}
	b := &repro.Bundle{
		Kind:    repro.KindCompile,
		Func:    cerr.Func,
		Pass:    cerr.Pass,
		Level:   cerr.Level,
		Passes:  passes,
		Program: cs.inputText,
		Config:  marshalConfig(cs.cfg),
		Error:   cerr.Err.Error(),
		Stack:   string(cerr.Stack),
	}
	var t0 time.Time
	if sh != nil {
		t0 = time.Now()
	}
	path, err := repro.Write(cs.cfg.ReproDir, b)
	if sh != nil {
		sh.Record("repro:write", "repro", t0, time.Since(t0),
			obs.Attr{Key: "func", Value: cerr.Func}, obs.Attr{Key: "pass", Value: cerr.Pass})
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if err != nil {
		if cs.reproErr == nil {
			cs.reproErr = err
		}
		return
	}
	cs.repros = append(cs.repros, path)
}

// Compile runs the full pass sequence on p in place and returns the
// structured report. p must be verified input ILOC (unallocated).
func (d *Driver) Compile(p *ir.Program, cfg Config) (*Report, error) {
	return d.CompileContext(context.Background(), p, cfg)
}

// CompileContext is Compile with cooperative cancellation: ctx is checked
// between passes and between functions, and is the parent of every
// per-function timeout. On cancellation the in-flight passes finish (or
// fail their next boundary check) and the first context error is
// returned; no goroutines outlive the call.
func (d *Driver) CompileContext(ctx context.Context, p *ir.Program, cfg Config) (*Report, error) {
	return d.compile(ctx, p, cfg, d.tracer)
}

// CompileTraced is CompileContext with a per-compile tracer: spans for
// this compile alone are recorded into tr instead of the driver's
// tracer, while the cache, metrics registry, and cumulative totals stay
// shared. This is how a long-running service traces one request through
// a shared driver without either exporting every other request's spans
// or racing a live tracer's shards at export time — the caller owns tr,
// and once this call returns no shard of it is recording, so exporting
// it is safe. A nil tr falls back to the driver's tracer.
func (d *Driver) CompileTraced(ctx context.Context, p *ir.Program, cfg Config, tr *obs.Tracer) (*Report, error) {
	if tr == nil {
		tr = d.tracer
	}
	return d.compile(ctx, p, cfg, tr)
}

func (d *Driver) compile(ctx context.Context, p *ir.Program, cfg Config, tracer *obs.Tracer) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	m := newMetrics(d.reg)
	// One span shard per logical worker, all per-compile: the main
	// goroutine records into tid 0, pool worker w into tid w+1. Shards
	// are single-owner, so recording is lock-free; concurrent Compiles
	// each get their own set.
	mainSh := tracer.NewShard(0)
	var workerShards []*obs.Shard
	if tracer != nil {
		workerShards = make([]*obs.Shard, d.workers)
		for w := range workerShards {
			workerShards[w] = tracer.NewShard(w + 1)
		}
	}
	shardFor := func(w int) *obs.Shard {
		if workerShards == nil {
			return nil
		}
		return workerShards[w]
	}
	rep := &Report{
		Strategy: cfg.Strategy.String(),
		Workers:  d.workers,
		Funcs:    len(p.Funcs),
		PerFunc:  make(map[string]FuncReport, len(p.Funcs)),
	}
	// Injected passes are closures and cannot be content-addressed, so
	// they opt the whole compile out of the cache.
	cache := d.cache
	if len(cfg.InjectFront) > 0 {
		cache = nil
	}
	// Per-function caching is incompatible with the differential oracle:
	// a front or back hit skips exactly the passes whose snapshots
	// bisection reconstructs. The whole-program tier stays on — entries
	// are stored only for divergence-free compiles under a key that
	// includes the diff configuration.
	fnCache := cache
	if cfg.DiffCheck != DiffOff {
		fnCache = nil
	}
	cs := &compileState{cfg: cfg}
	if cfg.ReproDir != "" {
		// Captured before any pass mutates the program: bundles must carry
		// the original input, and p cannot be printed racily mid-stage.
		cs.inputText = p.String()
	}

	// Whole-program cache: a repeat compile of an identical (program,
	// Config) pair skips every pass, including verification.
	var progKey digest
	if cache != nil {
		progKey = programKey(p, cfg)
		if v, ok := cache.get(progKey, diskKindProgramV2, mainSh); ok {
			art := v.(*programArtifact)
			// The cached functions are frozen: handing them out by
			// reference is safe (anything that later wants to mutate one
			// — including a re-compile of this very program object —
			// clones at its own mutation point), and it makes the hit
			// path free of deep copies.
			for i := range p.Funcs {
				p.Funcs[i] = art.funcs[i]
			}
			for name, fr := range art.perFunc {
				fr.FrontCacheHit = true
				fr.BackCacheHit = true
				rep.PerFunc[name] = fr
			}
			rep.ProgramCacheHit = true
			d.finish(rep, cs, nil, m, start, true, mainSh, tracer)
			return rep, nil
		}
	}

	var do *diffOracle
	if cfg.DiffCheck != DiffOff {
		do = newDiffOracle(p, cfg, d.reg)
	}
	forced := newForcedDegrade()
	// Each retry strictly escalates one function's quarantine, so the
	// loop terminates; the cap is a backstop, not a policy.
	maxAttempts := 4*len(p.Funcs) + 4

	var states []funcState
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			// Quarantine retry: recompile the pristine input with the
			// forced degradations in place. The degraded counter restarts
			// so the report describes the program actually shipped;
			// failures and divergence counters accumulate.
			for i := range p.Funcs {
				p.Funcs[i] = do.pre.Funcs[i].Clone()
			}
			cs.degraded.Store(0)
		}
		states = make([]funcState, len(p.Funcs))
		cs.snaps = nil
		if do != nil {
			cs.snaps = newSnapRecorder(len(p.Funcs))
		}

		// check runs the oracle at one boundary; a true retry means a
		// divergence was bisected, quarantined, and the compile should
		// restart. All oracle work happens here, on the calling
		// goroutine, after the parallel stages have joined — worker
		// count cannot influence the verdict or the counters.
		check := func(stage string) (retry bool, err error) {
			var t0 time.Time
			if mainSh != nil {
				t0 = time.Now()
			}
			me, err := do.check(ctx, p, stage, cs.snaps.upTo(stage))
			if mainSh != nil {
				mainSh.Record("oracle:"+stage, "oracle", t0, time.Since(t0))
			}
			if err != nil {
				d.foldCounters(cs, do)
				return false, err
			}
			if me == nil {
				return false, nil
			}
			cs.recordMiscompile(me, p, do, mainSh)
			if cfg.Strict || attempt+1 >= maxAttempts || !forced.escalate(me, cfg) {
				d.foldCounters(cs, do)
				return false, me
			}
			return true, nil
		}

		// Front stage (parallel): scalar optimization, injected
		// experimental passes, and register allocation, each function
		// isolated under the degradation ladder. Each worker touches only
		// p.Funcs[i], so scheduling cannot change the output.
		err := d.forEach(ctx, len(p.Funcs), func(w, i int) error {
			return d.compileFront(ctx, p, i, cfg, fnCache, m, cs, &states[i], forced, shardFor(w))
		})
		if err != nil {
			return nil, err
		}
		if cfg.DiffCheck == DiffPerStage {
			retry, err := check(diffStageFront)
			if err != nil {
				return nil, err
			}
			if retry {
				continue
			}
		}

		// Interprocedural barrier (sequential): the post-pass CCM
		// allocator walks the call graph bottom-up, so every function's
		// allocated body must be final before any promotion decision is
		// made. Functions that degraded to the baseline rung keep their
		// spill-to-RAM code and are excluded from promotion.
		if cfg.Strategy == PostPass || cfg.Strategy == PostPassInterproc {
			if err := d.postPassBarrier(ctx, p, cfg, m, cs, states, forced, mainSh); err != nil {
				d.foldCounters(cs, do)
				return nil, err
			}
			if cfg.DiffCheck == DiffPerStage {
				retry, err := check(diffStagePostPass)
				if err != nil {
					return nil, err
				}
				if retry {
					continue
				}
			}
		}

		// Back stage (parallel): spill-code cleanup and spill-memory
		// compaction, both strictly per-function. A fault here degrades
		// to shipping the function with its uncompacted post-barrier
		// body.
		if cfg.CleanupSpills || !cfg.DisableCompaction {
			err = d.forEach(ctx, len(p.Funcs), func(w, i int) error {
				return d.compileBack(ctx, p, i, cfg, fnCache, m, cs, &states[i], forced, shardFor(w))
			})
			if err != nil {
				return nil, err
			}
		}

		{
			n := totalInstrs(p)
			t := time.Now()
			if err := ir.VerifyProgram(p, ir.VerifyOptions{}); err != nil {
				return nil, fmt.Errorf("pipeline: post-compile verification failed: %w", err)
			}
			dur := time.Since(t)
			m.pass(PassVerify, dur, n, n)
			if mainSh != nil {
				mainSh.Record("pass:"+PassVerify, "pass", t, dur)
			}
		}

		if do != nil {
			retry, err := check(diffStageFinal)
			if err != nil {
				return nil, err
			}
			if retry {
				continue
			}
		}
		break
	}

	for i, f := range p.Funcs {
		st := states[i]
		st.fr.Instrs = f.NumInstrs()
		st.fr.FrontCacheHit = st.frontHit
		st.fr.BackCacheHit = st.backHit
		if me := forced.reason[f.Name]; me != nil && st.fr.Error == "" {
			st.fr.FailedPass = me.Pass
			st.fr.Error = "miscompile: " + me.Divergence.Detail
		}
		rep.PerFunc[f.Name] = st.fr
	}

	// A program artifact is cached only for fault-free, divergence-free
	// compiles: degraded output is correct but below configured fidelity,
	// and must not be served to a later compile whose faults might have
	// been fixed.
	if cache != nil && cs.failures.Load() == 0 && (do == nil || do.divergences == 0) {
		art := &programArtifact{
			funcs:   make([]*ir.Func, len(p.Funcs)),
			perFunc: make(map[string]FuncReport, len(rep.PerFunc)),
		}
		for i, f := range p.Funcs {
			art.funcs[i] = f.Clone()
		}
		for name, fr := range rep.PerFunc {
			fr.FrontCacheHit = false
			fr.BackCacheHit = false
			art.perFunc[name] = fr
		}
		cache.put(progKey, diskKindProgramV2, art)
	}

	d.finish(rep, cs, do, m, start, false, mainSh, tracer)
	return rep, nil
}

// postPassBarrier runs the sequential interprocedural CCM promotion with
// per-function fault quarantine: a panic or error mid-walk is attributed
// to the function being processed (via the allocator's OnFunc progress
// callback), the pre-barrier bodies are restored, the culprit joins the
// skip set, and the walk retries. One bad function therefore loses only
// its own promotion; attribution failures degrade the whole barrier to
// the heavyweight spill path instead of failing the program.
func (d *Driver) postPassBarrier(ctx context.Context, p *ir.Program, cfg Config, m *metrics, cs *compileState, states []funcState, forced *forcedDegrade, sh *obs.Shard) error {
	skip := map[string]bool{}
	for i, f := range p.Funcs {
		if states[i].level >= levelBaseline {
			skip[f.Name] = true
		}
	}
	// Functions quarantined by the miscompile oracle keep their
	// spill-to-RAM code: the oracle bisected a previous divergence to the
	// promotion of exactly these functions.
	for i, f := range p.Funcs {
		if forced.noCCM[f.Name] && !skip[f.Name] {
			skip[f.Name] = true
			st := &states[i]
			if st.fr.Degraded == "" {
				st.fr.Degraded = "no-ccm"
				cs.degraded.Add(1)
			} else {
				st.fr.Degraded += "+no-ccm"
			}
		}
	}
	// Copy-on-write point: the walk rewrites every non-skipped function,
	// so frozen ones (front-stage cache hits shared by reference) are
	// cloned now. Skipped functions are never touched and may stay frozen.
	for i, f := range p.Funcs {
		if f.Frozen() && !skip[f.Name] {
			p.Funcs[i] = f.Clone()
		}
	}
	// The allocator rewrites functions as it walks; recovery from a
	// mid-walk fault needs the pre-barrier state back. A function that is
	// frozen here is one the walk will not touch, so the reference itself
	// is a valid snapshot.
	var snapshot []*ir.Func
	if !cfg.Strict {
		snapshot = make([]*ir.Func, len(p.Funcs))
		for i, f := range p.Funcs {
			if f.Frozen() {
				snapshot[i] = f
			} else {
				snapshot[i] = f.Clone()
			}
		}
	}
	quarantine := func(name, errText string) {
		for i, f := range p.Funcs {
			if f.Name != name {
				continue
			}
			st := &states[i]
			if st.fr.Degraded == "" {
				st.fr.Degraded = "no-ccm"
				cs.degraded.Add(1)
			} else {
				st.fr.Degraded += "+no-ccm"
			}
			st.fr.FailedPass = PassPostPass
			st.fr.Error = errText
		}
	}
	for attempt := 0; ; attempt++ {
		if cerr := ctxErr(ctx, PassPostPass, "", levelFull); cerr != nil {
			return cerr
		}
		before := totalInstrs(p)
		t := time.Now()
		var res *core.PostPassResult
		var last string // function the walk was processing when it faulted
		var cerr *CompileError
		d.labeled(ctx, "", PassPostPass, func(context.Context) {
			cerr = runGuarded(PassPostPass, "", levelFull, func() error {
				var err error
				res, err = core.PostPass(p, core.PostPassOptions{
					CCMBytes:        cfg.CCMBytes,
					Interprocedural: cfg.Strategy == PostPassInterproc,
					Skip:            skip,
					OnFunc: func(name string) {
						last = name
						if cfg.postPassHook != nil {
							cfg.postPassHook(name)
						}
					},
				})
				return err
			})
		})
		if cerr == nil {
			dur := time.Since(t)
			m.pass(PassPostPass, dur, before, totalInstrs(p))
			if sh != nil {
				sh.Record("pass:"+PassPostPass, "pass", t, dur)
			}
			var promoted, ccmBytes int64
			for i, f := range p.Funcs {
				if fp := res.PerFunc[f.Name]; fp != nil {
					states[i].fr.PromotedWebs = fp.Promoted
					states[i].fr.CCMBytes = fp.CCMBytes
					promoted += int64(fp.Promoted)
					ccmBytes += fp.CCMBytes
				}
				if cs.snaps != nil && !skip[f.Name] {
					cs.snaps.barrier = append(cs.snaps.barrier, passSnap{PassPostPass, f.Name, i, f.Clone()})
				}
			}
			if d.reg != nil {
				d.reg.Counter("ccm.promoted_webs").Add(promoted)
				d.reg.Counter("ccm.bytes_used").Add(ccmBytes)
			}
			return nil
		}
		cerr.Func = last
		cs.recordFailure(cerr, []string{PassPostPass}, sh)
		if cfg.Strict {
			return cerr
		}
		// Restore fresh clones: the retry mutates them again.
		for i := range p.Funcs {
			p.Funcs[i] = snapshot[i].Clone()
		}
		if last == "" || attempt >= len(p.Funcs) {
			// Cannot attribute (or the walk keeps faulting): degrade the
			// whole barrier and ship everything with heavyweight spills.
			for _, f := range p.Funcs {
				if !skip[f.Name] {
					quarantine(f.Name, cerr.Err.Error())
				}
			}
			return nil
		}
		skip[last] = true
		quarantine(last, cerr.Err.Error())
	}
}

// frontPass is one named step of the per-function front stage.
type frontPass struct {
	name string
	run  func(ctx context.Context, f *ir.Func) error
}

// frontPasses assembles the front-stage sequence for one degradation
// rung: the ladder drops the optimizer and injected passes first, then
// the integrated CCM assignment.
func (d *Driver) frontPasses(cfg Config, level degradeLevel, st *funcState) []frontPass {
	var passes []frontPass
	if !cfg.DisableOptimizer && level < levelNoOpt {
		passes = append(passes, frontPass{PassOptimize, func(_ context.Context, f *ir.Func) error {
			s, err := opt.Optimize(f)
			if err != nil {
				return err
			}
			if d.reg != nil {
				d.reg.Counter("opt.value_numbered").Add(int64(s.ValueNumbered))
				d.reg.Counter("opt.constants_folded").Add(int64(s.ConstantsFolded))
				d.reg.Counter("opt.branches_folded").Add(int64(s.BranchesFolded))
				d.reg.Counter("opt.hoisted").Add(int64(s.Hoisted))
				d.reg.Counter("opt.dead_removed").Add(int64(s.DeadRemoved))
				d.reg.Counter("opt.blocks_merged").Add(int64(s.BlocksMerged))
				d.reg.Counter("opt.blocks_removed").Add(int64(s.BlocksRemoved))
			}
			return nil
		}})
	}
	if level < levelNoOpt {
		for _, ip := range cfg.InjectFront {
			passes = append(passes, frontPass{ip.Name, ip.Fn})
		}
	}
	ra := regalloc.Options{IntRegs: cfg.IntRegs, FloatRegs: cfg.FloatRegs, Obs: d.reg}
	if cfg.Strategy == Integrated && level < levelBaseline {
		ra.CCMBytes = cfg.CCMBytes
	}
	passes = append(passes, frontPass{PassRegalloc, func(_ context.Context, f *ir.Func) error {
		res, err := regalloc.Allocate(f, ra)
		if err != nil {
			return err
		}
		st.fr.SpillBytesNaive = res.FrameBytes
		st.fr.SpilledRanges = res.SpilledRanges
		st.fr.CCMBytes = res.CCMBytesUsed
		st.fr.PromotedWebs = res.CCMRanges
		return nil
	}})
	return passes
}

func passNames(passes []frontPass) []string {
	names := make([]string, len(passes))
	for i, p := range passes {
		names[i] = p.name
	}
	return names
}

// compileFront runs the front stage for p.Funcs[i], descending the
// degradation ladder on faults. It returns an error only when the
// compile as a whole must stop: context cancellation, Strict mode, or an
// exhausted ladder.
func (d *Driver) compileFront(ctx context.Context, p *ir.Program, i int, cfg Config, cache *Cache, m *metrics, cs *compileState, st *funcState, forced *forcedDegrade, sh *obs.Shard) error {
	f := p.Funcs[i]
	if sh != nil {
		fstart := time.Now()
		defer func() {
			sh.Record("front", "stage", fstart, time.Since(fstart), obs.Attr{Key: "func", Value: f.Name})
		}()
	}
	var key digest
	if cache != nil {
		key = frontKey(f, cfg)
		if v, ok := cache.get(key, diskKindFrontV2, sh); ok {
			// Frozen artifact, shared by reference; the stages that rewrite
			// it (barrier, back stage) clone at their own mutation points.
			art := v.(*frontArtifact)
			p.Funcs[i] = art.fn
			st.fr = art.fr
			st.frontHit = true
			return nil
		}
	}

	// Copy-on-write point: a frozen input (a cached artifact compiled
	// again) must not be rewritten in place.
	if f.Frozen() {
		f = f.Clone()
		p.Funcs[i] = f
	}

	// The ladder re-runs the stage from pristine input, so failed
	// attempts must not leak partial rewrites. A function quarantined by
	// the miscompile oracle starts at its forced rung.
	pristine := p.Funcs[i].Clone()
	level := forced.level[f.Name]
	retries := cfg.FuncRetries
	for {
		if cs.snaps != nil {
			cs.snaps.front[i] = cs.snaps.front[i][:0]
		}
		cerr := d.frontAttempt(ctx, p.Funcs[i], cfg, level, m, st, cs.snaps, i, sh)
		if cerr == nil {
			break
		}
		st.fr.Attempts++
		st.fr.FailedPass = cerr.Pass
		st.fr.Error = cerr.Err.Error()
		cs.recordFailure(cerr, passNames(d.frontPasses(cfg, level, st)), sh)
		if ctx.Err() != nil {
			// The compile itself was cancelled: abort, don't degrade.
			return cerr
		}
		if cfg.Strict {
			return cerr
		}
		p.Funcs[i] = pristine.Clone()
		st.fr = FuncReport{Attempts: st.fr.Attempts, FailedPass: st.fr.FailedPass, Error: st.fr.Error}
		if retries > 0 {
			retries--
			continue
		}
		level++
		retries = cfg.FuncRetries
		if level >= numLevels {
			return cerr // ladder exhausted: nothing left to strip
		}
	}
	st.fr.Attempts++
	st.level = level
	if level > levelFull {
		st.fr.Degraded = level.String()
		cs.degraded.Add(1)
	} else if cache != nil && st.fr.Attempts == 1 {
		// The clone isolates the artifact from the stages still to run on
		// p.Funcs[i]; put freezes it before sharing.
		cache.put(key, diskKindFrontV2, &frontArtifact{fn: p.Funcs[i].Clone(), fr: st.fr})
	}
	return nil
}

// frontAttempt makes one pass over the front-stage sequence at the given
// rung: deadline check, guarded execution, optional checkpoint, for each
// pass in turn.
func (d *Driver) frontAttempt(ctx context.Context, f *ir.Func, cfg Config, level degradeLevel, m *metrics, st *funcState, snaps *snapRecorder, fnIdx int, sh *obs.Shard) *CompileError {
	fctx := ctx
	if cfg.FuncTimeout > 0 {
		var cancel context.CancelFunc
		fctx, cancel = context.WithTimeout(ctx, cfg.FuncTimeout)
		defer cancel()
	}
	if cfg.VerifyPasses {
		// Pre-pass checkpoint: a broken invariant already present in the
		// input must be attributed to the input, not to the first pass.
		if cerr := checkpoint(PassInput, f, level, false); cerr != nil {
			return cerr
		}
	}
	for _, pass := range d.frontPasses(cfg, level, st) {
		if cerr := ctxErr(fctx, pass.name, f.Name, level); cerr != nil {
			return cerr
		}
		before := f.NumInstrs()
		t := time.Now()
		var cerr *CompileError
		d.labeled(fctx, f.Name, pass.name, func(lctx context.Context) {
			cerr = runGuarded(pass.name, f.Name, level, func() error { return pass.run(lctx, f) })
		})
		if cerr != nil {
			return cerr
		}
		dur := time.Since(t)
		m.pass(pass.name, dur, before, f.NumInstrs())
		if sh != nil {
			sh.Record("pass:"+pass.name, "pass", t, dur,
				obs.Attr{Key: "func", Value: f.Name}, obs.Attr{Key: "level", Value: level.String()})
		}
		if cfg.VerifyPasses {
			if cerr := checkpoint(pass.name, f, level, false); cerr != nil {
				return cerr
			}
		}
		if snaps != nil {
			snaps.front[fnIdx] = append(snaps.front[fnIdx], passSnap{pass.name, f.Name, fnIdx, f.Clone()})
		}
	}
	return nil
}

// compileBack runs the back stage for p.Funcs[i]. A fault degrades to
// shipping the uncompacted post-barrier body rather than failing the
// compile.
func (d *Driver) compileBack(ctx context.Context, p *ir.Program, i int, cfg Config, cache *Cache, m *metrics, cs *compileState, st *funcState, forced *forcedDegrade, sh *obs.Shard) error {
	f := p.Funcs[i]
	if sh != nil {
		bstart := time.Now()
		defer func() {
			sh.Record("back", "stage", bstart, time.Since(bstart), obs.Attr{Key: "func", Value: f.Name})
		}()
	}
	if forced.noCompact[f.Name] {
		// Quarantined by the miscompile oracle: ship the post-barrier
		// body untouched.
		if st.fr.Degraded == "" {
			st.fr.Degraded = "no-compact"
			cs.degraded.Add(1)
		} else {
			st.fr.Degraded += "+no-compact"
		}
		return nil
	}
	var key digest
	if cache != nil {
		key = backKey(f, cfg)
		if v, ok := cache.get(key, diskKindBackV2, sh); ok {
			// Frozen artifact, shared by reference: the back stage is the
			// last rewrite, so nothing downstream mutates it (the program
			// artifact put clones for itself).
			art := v.(*backArtifact)
			p.Funcs[i] = art.fn
			st.fr.SpillBytesCompacted = art.compactAfter
			st.fr.SpillWebs = art.webs
			st.backHit = true
			return nil
		}
	}

	fctx := ctx
	if cfg.FuncTimeout > 0 {
		var cancel context.CancelFunc
		fctx, cancel = context.WithTimeout(ctx, cfg.FuncTimeout)
		defer cancel()
	}
	var pristine *ir.Func
	if f.Frozen() {
		// Copy-on-write point: the cleanup/compaction passes rewrite the
		// function, so a frozen one (a front-stage cache hit that skipped
		// the barrier) is cloned here — and the frozen original doubles
		// as the pristine snapshot for free.
		pristine = f
		f = f.Clone()
		p.Funcs[i] = f
	} else if !cfg.Strict {
		pristine = f.Clone()
	}
	attempt := func() *CompileError {
		if cfg.CleanupSpills {
			if cerr := ctxErr(fctx, PassCleanup, f.Name, st.level); cerr != nil {
				return cerr
			}
			before := f.NumInstrs()
			t := time.Now()
			var cerr *CompileError
			d.labeled(fctx, f.Name, PassCleanup, func(context.Context) {
				cerr = runGuarded(PassCleanup, f.Name, st.level, func() error {
					regalloc.CleanupSpillCode(f)
					return nil
				})
			})
			if cerr != nil {
				return cerr
			}
			dur := time.Since(t)
			m.pass(PassCleanup, dur, before, f.NumInstrs())
			if sh != nil {
				sh.Record("pass:"+PassCleanup, "pass", t, dur, obs.Attr{Key: "func", Value: f.Name})
			}
			if cfg.VerifyPasses {
				if cerr := checkpoint(PassCleanup, f, st.level, false); cerr != nil {
					return cerr
				}
			}
			if cs.snaps != nil {
				cs.snaps.back[i] = append(cs.snaps.back[i], passSnap{PassCleanup, f.Name, i, f.Clone()})
			}
		}
		if !cfg.DisableCompaction {
			if cerr := ctxErr(fctx, PassCompact, f.Name, st.level); cerr != nil {
				return cerr
			}
			before := f.NumInstrs()
			t := time.Now()
			var cerr *CompileError
			d.labeled(fctx, f.Name, PassCompact, func(context.Context) {
				cerr = runGuarded(PassCompact, f.Name, st.level, func() error {
					cres, err := core.CompactSpills(f)
					if err != nil {
						return err
					}
					st.fr.SpillBytesCompacted = cres.AfterBytes
					st.fr.SpillWebs = cres.Webs
					if d.reg != nil {
						d.reg.Counter("compact.webs").Add(int64(cres.Webs))
						d.reg.Counter("compact.bytes_before").Add(cres.BeforeBytes)
						d.reg.Counter("compact.bytes_after").Add(cres.AfterBytes)
					}
					return nil
				})
			})
			if cerr != nil {
				return cerr
			}
			dur := time.Since(t)
			m.pass(PassCompact, dur, before, f.NumInstrs())
			if sh != nil {
				sh.Record("pass:"+PassCompact, "pass", t, dur, obs.Attr{Key: "func", Value: f.Name})
			}
			if cfg.VerifyPasses {
				if cerr := checkpoint(PassCompact, f, st.level, false); cerr != nil {
					return cerr
				}
			}
			if cs.snaps != nil {
				cs.snaps.back[i] = append(cs.snaps.back[i], passSnap{PassCompact, f.Name, i, f.Clone()})
			}
		}
		return nil
	}
	if cerr := attempt(); cerr != nil {
		cs.recordFailure(cerr, []string{PassCleanup, PassCompact}, sh)
		if ctx.Err() != nil || cfg.Strict {
			return cerr
		}
		p.Funcs[i] = pristine
		if cs.snaps != nil {
			// The shipped body is the post-barrier one; snapshots from the
			// failed attempt no longer describe it.
			cs.snaps.back[i] = nil
		}
		st.fr.SpillBytesCompacted = 0
		st.fr.SpillWebs = 0
		st.fr.FailedPass = cerr.Pass
		st.fr.Error = cerr.Err.Error()
		if st.fr.Degraded == "" {
			cs.degraded.Add(1)
			st.fr.Degraded = "no-compact"
		} else {
			st.fr.Degraded += "+no-compact"
		}
		return nil
	}
	if cache != nil && st.fr.Degraded == "" && st.fr.Attempts <= 1 {
		cache.put(key, diskKindBackV2, &backArtifact{
			fn:           p.Funcs[i].Clone(),
			compactAfter: st.fr.SpillBytesCompacted,
			webs:         st.fr.SpillWebs,
		})
	}
	return nil
}

// finish stamps wall time, cache, fault, differential-oracle, and
// observability stats on rep and folds the compile into the driver's
// cumulative metrics. tracer is the tracer this compile recorded into
// (the driver's, unless CompileTraced overrode it).
func (d *Driver) finish(rep *Report, cs *compileState, do *diffOracle, m *metrics, start time.Time, programHit bool, sh *obs.Shard, tracer *obs.Tracer) {
	rep.WallNanos = time.Since(start).Nanoseconds()
	rep.Passes = m.stats()
	if d.cache != nil {
		rep.Cache = d.cache.Stats()
	}
	if sh != nil {
		sh.Record("compile", "pipeline", start, time.Since(start),
			obs.Attr{Key: "strategy", Value: rep.Strategy},
			obs.Attr{Key: "funcs", Value: fmt.Sprint(rep.Funcs)})
	}
	if d.reg != nil {
		d.reg.Counter("pipeline.compiles").Inc()
		d.reg.Counter("pipeline.funcs").Add(int64(rep.Funcs))
		d.reg.Counter("pipeline.failures").Add(cs.failures.Load())
		d.reg.Counter("pipeline.degraded").Add(cs.degraded.Load())
		if programHit {
			d.reg.Counter("pipeline.program_hits").Inc()
		}
		if d.cache != nil {
			// Gauges mirror the cache's cumulative counters so a metrics
			// snapshot is self-contained; the disk block surfaces the
			// persistent tier's robustness counters.
			cst := rep.Cache
			d.reg.Gauge("cache.hits").Set(cst.Hits)
			d.reg.Gauge("cache.misses").Set(cst.Misses)
			d.reg.Gauge("cache.entries").Set(int64(cst.Entries))
			d.reg.Gauge("cache.evictions").Set(cst.Evictions)
			d.reg.Gauge("diskcache.hits").Set(cst.Disk.Hits)
			d.reg.Gauge("diskcache.misses").Set(cst.Disk.Misses)
			d.reg.Gauge("diskcache.writes").Set(cst.Disk.Writes)
			d.reg.Gauge("diskcache.corruptions").Set(cst.Disk.Corruptions)
			d.reg.Gauge("diskcache.quarantines").Set(cst.Disk.Quarantines)
			d.reg.Gauge("diskcache.read_errors").Set(cst.Disk.ReadErrors)
			d.reg.Gauge("diskcache.write_errors").Set(cst.Disk.WriteErrors)
			d.reg.Gauge("diskcache.swept_temps").Set(cst.Disk.SweptTemps)
			d.reg.Gauge("diskcache.degraded_to_memory").Set(cst.Disk.DegradedToMemory)
			d.reg.Gauge("diskcache.bytes").Set(cst.Disk.Bytes)
			d.reg.Gauge("diskcache.entries").Set(int64(cst.Disk.Entries))
			if d.cache.Remote() != nil {
				// The remote block surfaces the network tier's hardening
				// counters; remotecache.circuit_state is set live by the
				// breaker itself on every transition.
				d.reg.Gauge("remotecache.hits").Set(cst.Remote.Hits)
				d.reg.Gauge("remotecache.misses").Set(cst.Remote.Misses)
				d.reg.Gauge("remotecache.puts").Set(cst.Remote.Puts)
				d.reg.Gauge("remotecache.put_drops").Set(cst.Remote.PutDrops)
				d.reg.Gauge("remotecache.put_errors").Set(cst.Remote.PutErrors)
				d.reg.Gauge("remotecache.retries").Set(cst.Remote.Retries)
				d.reg.Gauge("remotecache.timeouts").Set(cst.Remote.Timeouts)
				d.reg.Gauge("remotecache.net_errors").Set(cst.Remote.NetErrors)
				d.reg.Gauge("remotecache.http_errors").Set(cst.Remote.HTTPErrors)
				d.reg.Gauge("remotecache.corruptions").Set(cst.Remote.Corruptions)
				d.reg.Gauge("remotecache.skipped").Set(cst.Remote.Skipped)
				d.reg.Gauge("remotecache.trips").Set(cst.Remote.Trips)
				d.reg.Gauge("remotecache.probes").Set(cst.Remote.Probes)
				if len(cst.Remote.Nodes) > 0 {
					// Fleet-only mirrors; the live remotecache.fleet.*
					// counters are bumped by the fleet as events happen,
					// these gauges snapshot the same totals per report.
					d.reg.Gauge("remotecache.failovers").Set(cst.Remote.Failovers)
					d.reg.Gauge("remotecache.hedges_launched").Set(cst.Remote.HedgesLaunched)
					d.reg.Gauge("remotecache.hedges_won").Set(cst.Remote.HedgesWon)
					d.reg.Gauge("remotecache.repairs").Set(cst.Remote.Repairs)
				}
			}
		}
	}
	rep.Spans = tracer.Count()
	rep.Metrics = d.reg.Snapshot()
	rep.Failures = cs.failures.Load()
	rep.Degraded = cs.degraded.Load()
	if do != nil {
		rep.DiffFuncsChecked = do.funcsChecked
		rep.DiffRuns = do.runs
		rep.DiffInconclusive = do.inconclusive
		rep.Divergences = do.divergences
		if len(do.divergentPasses) > 0 {
			rep.DivergentPasses = make(map[string]int64, len(do.divergentPasses))
			for k, v := range do.divergentPasses {
				rep.DivergentPasses[k] = v
			}
		}
	}
	cs.mu.Lock()
	sort.Strings(cs.repros)
	rep.Repros = cs.repros
	if cs.reproErr != nil {
		rep.ReproError = cs.reproErr.Error()
	}
	cs.mu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.compiles++
	d.funcsTotal += int64(rep.Funcs)
	d.wallTotal += rep.WallNanos
	if programHit {
		d.programHits++
	}
	d.failures += rep.Failures
	d.degraded += rep.Degraded
	d.foldDiffLocked(do)
	d.cum.merge(m)
}

// foldCounters folds fault and oracle counters into the driver on the
// error path, where finish never runs.
func (d *Driver) foldCounters(cs *compileState, do *diffOracle) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failures += cs.failures.Load()
	d.degraded += cs.degraded.Load()
	d.foldDiffLocked(do)
}

func (d *Driver) foldDiffLocked(do *diffOracle) {
	if do == nil {
		return
	}
	d.diffChecked += do.funcsChecked
	d.diffRuns += do.runs
	d.diffInconclusive += do.inconclusive
	d.divergences += do.divergences
	for k, v := range do.divergentPasses {
		d.divergentPasses[k] += v
	}
}

// Metrics returns the driver's cumulative totals across every Compile:
// aggregated per-pass timings, total functions and wall time, the number
// of whole-program cache hits, fault counters, and a cache-counter
// snapshot. PerFunc is nil on the cumulative report.
func (d *Driver) Metrics() *Report {
	d.mu.Lock()
	defer d.mu.Unlock()
	rep := &Report{
		Strategy:         "(cumulative)",
		Workers:          d.workers,
		Compiles:         d.compiles,
		Funcs:            int(d.funcsTotal),
		WallNanos:        d.wallTotal,
		ProgramHits:      d.programHits,
		Failures:         d.failures,
		Degraded:         d.degraded,
		DiffFuncsChecked: d.diffChecked,
		DiffRuns:         d.diffRuns,
		DiffInconclusive: d.diffInconclusive,
		Divergences:      d.divergences,
		Passes:           d.cum.stats(),
	}
	if len(d.divergentPasses) > 0 {
		rep.DivergentPasses = make(map[string]int64, len(d.divergentPasses))
		for k, v := range d.divergentPasses {
			rep.DivergentPasses[k] = v
		}
	}
	if d.cache != nil {
		rep.Cache = d.cache.Stats()
	}
	rep.Spans = d.tracer.Count()
	rep.Metrics = d.reg.Snapshot()
	return rep
}

// forEach runs fn(worker, i) for i in [0,n) on the worker pool, checking
// ctx between items; worker identifies which pool slot ran the item (0
// on the sequential path), so callers can select per-worker span shards.
// With one worker (or one item) it degenerates to a plain loop; results
// are identical either way because each fn touches only its own index.
func (d *Driver) forEach(ctx context.Context, n int, fn func(worker, i int) error) error {
	workers := d.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("pipeline: %w", err)
			}
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		errMu  sync.Mutex
		first  error
	)
	fail := func(err error) {
		errMu.Lock()
		if first == nil {
			first = err
		}
		errMu.Unlock()
		failed.Store(true)
	}
	next.Store(-1)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || failed.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(fmt.Errorf("pipeline: %w", err))
					return
				}
				if err := fn(w, i); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return first
}

func totalInstrs(p *ir.Program) int {
	n := 0
	for _, f := range p.Funcs {
		n += f.NumInstrs()
	}
	return n
}
