package pipeline

import (
	"encoding/json"
	"fmt"

	"ccmem/internal/ir"
)

// Artifact kinds namespace the disk tier: an entry of one kind can never
// be decoded as another, even if a key collision were engineered, because
// the kind is stored in the verified entry header and checked on read.
// The values are part of the on-disk format — append, never renumber.
const (
	diskKindFront   uint32 = 1
	diskKindBack    uint32 = 2
	diskKindProgram uint32 = 3
)

// The disk payloads are the JSON encodings of these shadow structs. The
// IR types are plain exported data, so encoding/json round-trips them
// exactly — including the post-allocation metadata (Allocated, frame and
// CCM sizes, physical register counts, diagnostic register names) that
// the textual ILOC form deliberately omits. JSON rather than ILOC text is
// therefore not a convenience: a text round trip would silently strip the
// metadata the cache keys hash over.
type diskFront struct {
	Func   *ir.Func   `json:"func"`
	Report FuncReport `json:"report"`
}

type diskBack struct {
	Func         *ir.Func `json:"func"`
	CompactAfter int64    `json:"compact_after"`
	Webs         int      `json:"webs"`
}

type diskProgram struct {
	Funcs   []*ir.Func            `json:"funcs"`
	PerFunc map[string]FuncReport `json:"per_func"`
}

// encodeArtifact renders a cache artifact for the disk tier. An encoding
// failure (e.g. a NaN float immediate, which JSON cannot carry) is not an
// event worth failing anything over: the caller skips the disk write and
// the artifact lives in memory only.
func encodeArtifact(kind uint32, v any) ([]byte, error) {
	switch kind {
	case diskKindFront:
		a := v.(*frontArtifact)
		return json.Marshal(&diskFront{Func: a.fn, Report: a.fr})
	case diskKindBack:
		a := v.(*backArtifact)
		return json.Marshal(&diskBack{Func: a.fn, CompactAfter: a.compactAfter, Webs: a.webs})
	case diskKindProgram:
		a := v.(*programArtifact)
		return json.Marshal(&diskProgram{Funcs: a.funcs, PerFunc: a.perFunc})
	}
	return nil, fmt.Errorf("pipeline: unknown disk artifact kind %d", kind)
}

// decodeArtifact parses a checksum-verified disk payload back into the
// in-memory artifact form. The checksum guarantees the bytes are what a
// writer produced, not that the writer was sane, so the decoded shape is
// still validated: a malformed payload is an error, which the caller
// turns into (miss, quarantine) — never a wrong artifact.
func decodeArtifact(kind uint32, payload []byte) (any, error) {
	switch kind {
	case diskKindFront:
		var d diskFront
		if err := json.Unmarshal(payload, &d); err != nil {
			return nil, err
		}
		if err := checkFunc(d.Func); err != nil {
			return nil, err
		}
		return &frontArtifact{fn: d.Func, fr: d.Report}, nil
	case diskKindBack:
		var d diskBack
		if err := json.Unmarshal(payload, &d); err != nil {
			return nil, err
		}
		if err := checkFunc(d.Func); err != nil {
			return nil, err
		}
		return &backArtifact{fn: d.Func, compactAfter: d.CompactAfter, webs: d.Webs}, nil
	case diskKindProgram:
		var d diskProgram
		if err := json.Unmarshal(payload, &d); err != nil {
			return nil, err
		}
		if len(d.Funcs) == 0 {
			return nil, fmt.Errorf("pipeline: disk program artifact has no functions")
		}
		for _, f := range d.Funcs {
			if err := checkFunc(f); err != nil {
				return nil, err
			}
		}
		if d.PerFunc == nil {
			d.PerFunc = map[string]FuncReport{}
		}
		return &programArtifact{funcs: d.Funcs, perFunc: d.PerFunc}, nil
	}
	return nil, fmt.Errorf("pipeline: unknown disk artifact kind %d", kind)
}

// checkFunc rejects structurally hollow decoded functions and rebuilds
// the block indices, the one piece of derived state in the IR.
func checkFunc(f *ir.Func) error {
	if f == nil {
		return fmt.Errorf("pipeline: disk artifact has a nil function")
	}
	if f.Name == "" || len(f.Blocks) == 0 {
		return fmt.Errorf("pipeline: disk artifact function %q is hollow", f.Name)
	}
	for _, b := range f.Blocks {
		if b == nil {
			return fmt.Errorf("pipeline: disk artifact function %q has a nil block", f.Name)
		}
	}
	f.Renumber()
	return nil
}
