package pipeline

import (
	"encoding/json"
	"fmt"

	"ccmem/internal/ir"
)

// Artifact kinds namespace the disk tier: an entry of one kind can never
// be decoded as another, even if a key collision were engineered, because
// the kind is stored in the verified entry header and checked on read.
// The values are part of the on-disk format — append, never renumber.
//
// Kinds 1-3 are the original JSON payloads; kinds 4-6 carry the binary
// codec v2 payloads (codecv2.go). New artifacts are written as v2; the
// JSON decoders are kept as read-compatibility fallbacks so a cache
// directory produced by a previous release either decodes correctly or
// reads as a clean miss — never as a wrong artifact.
const (
	diskKindFront   uint32 = 1
	diskKindBack    uint32 = 2
	diskKindProgram uint32 = 3

	diskKindFrontV2   uint32 = 4
	diskKindBackV2    uint32 = 5
	diskKindProgramV2 uint32 = 6
)

// legacyKind maps a v2 kind to the JSON kind a previous release would
// have written under the same key (identity for kinds that already are
// legacy). The read path probes both; the legacy-write test seam uses it
// to produce previous-release cache directories.
func legacyKind(kind uint32) uint32 {
	switch kind {
	case diskKindFrontV2:
		return diskKindFront
	case diskKindBackV2:
		return diskKindBack
	case diskKindProgramV2:
		return diskKindProgram
	}
	return kind
}

// The v1 disk payloads are the JSON encodings of these shadow structs.
// The IR types are plain exported data, so encoding/json round-trips them
// exactly — including the post-allocation metadata (Allocated, frame and
// CCM sizes, physical register counts, diagnostic register names) that
// the textual ILOC form deliberately omits. The v2 binary payloads carry
// the same field set in the canonical order of hash.go, plus what JSON
// cannot: NaN float immediates travel as IEEE-754 bit patterns, so v2
// encoding is total over real artifacts.
type diskFront struct {
	Func   *ir.Func   `json:"func"`
	Report FuncReport `json:"report"`
}

type diskBack struct {
	Func         *ir.Func `json:"func"`
	CompactAfter int64    `json:"compact_after"`
	Webs         int      `json:"webs"`
}

type diskProgram struct {
	Funcs   []*ir.Func            `json:"funcs"`
	PerFunc map[string]FuncReport `json:"per_func"`
}

// encodeArtifact renders a cache artifact for the disk tier. For the v2
// binary kinds encoding is total in practice; a failure (possible only
// through the legacy JSON kinds, e.g. a NaN float immediate) makes the
// caller skip the persistent write, count it, and keep the artifact
// memory-only.
func encodeArtifact(kind uint32, v any) ([]byte, error) {
	switch kind {
	case diskKindFrontV2:
		return encodeFrontV2(v.(*frontArtifact)), nil
	case diskKindBackV2:
		return encodeBackV2(v.(*backArtifact)), nil
	case diskKindProgramV2:
		return encodeProgramV2(v.(*programArtifact)), nil
	case diskKindFront:
		a := v.(*frontArtifact)
		return json.Marshal(&diskFront{Func: a.fn, Report: a.fr})
	case diskKindBack:
		a := v.(*backArtifact)
		return json.Marshal(&diskBack{Func: a.fn, CompactAfter: a.compactAfter, Webs: a.webs})
	case diskKindProgram:
		a := v.(*programArtifact)
		return json.Marshal(&diskProgram{Funcs: a.funcs, PerFunc: a.perFunc})
	}
	return nil, fmt.Errorf("pipeline: unknown disk artifact kind %d", kind)
}

// decodeArtifact parses a checksum-verified disk payload back into the
// in-memory artifact form. The checksum guarantees the bytes are what a
// writer produced, not that the writer was sane, so the decoded shape is
// still validated: a malformed payload is an error, which the caller
// turns into (miss, quarantine) — never a wrong artifact. Validation is
// all-or-nothing: nothing in the decoded value is mutated (block
// renumbering) until every function and cross-field invariant has been
// checked, so an error never leaves a half-canonicalized artifact behind.
func decodeArtifact(kind uint32, payload []byte) (any, error) {
	switch kind {
	case diskKindFrontV2:
		return decodeFrontV2(payload)
	case diskKindBackV2:
		return decodeBackV2(payload)
	case diskKindProgramV2:
		return decodeProgramV2(payload)
	case diskKindFront:
		var d diskFront
		if err := json.Unmarshal(payload, &d); err != nil {
			return nil, err
		}
		if err := validateFunc(d.Func); err != nil {
			return nil, err
		}
		d.Func.Renumber()
		return &frontArtifact{fn: d.Func, fr: d.Report}, nil
	case diskKindBack:
		var d diskBack
		if err := json.Unmarshal(payload, &d); err != nil {
			return nil, err
		}
		if err := validateFunc(d.Func); err != nil {
			return nil, err
		}
		d.Func.Renumber()
		return &backArtifact{fn: d.Func, compactAfter: d.CompactAfter, webs: d.Webs}, nil
	case diskKindProgram:
		var d diskProgram
		if err := json.Unmarshal(payload, &d); err != nil {
			return nil, err
		}
		if len(d.Funcs) == 0 {
			return nil, fmt.Errorf("pipeline: disk program artifact has no functions")
		}
		seen := make(map[string]bool, len(d.Funcs))
		for _, f := range d.Funcs {
			if err := validateFunc(f); err != nil {
				return nil, err
			}
			if seen[f.Name] {
				return nil, fmt.Errorf("pipeline: disk program artifact repeats function %q", f.Name)
			}
			seen[f.Name] = true
		}
		if err := checkPerFunc(d.Funcs, d.PerFunc); err != nil {
			return nil, err
		}
		for _, f := range d.Funcs {
			f.Renumber()
		}
		return &programArtifact{funcs: d.Funcs, perFunc: d.PerFunc}, nil
	}
	return nil, fmt.Errorf("pipeline: unknown disk artifact kind %d", kind)
}

// validateFunc rejects structurally hollow decoded functions. It never
// mutates f: callers renumber blocks (the one piece of derived state in
// the IR) only after every sibling of the artifact has validated.
func validateFunc(f *ir.Func) error {
	if f == nil {
		return fmt.Errorf("pipeline: disk artifact has a nil function")
	}
	if f.Name == "" || len(f.Blocks) == 0 {
		return fmt.Errorf("pipeline: disk artifact function %q is hollow", f.Name)
	}
	for _, b := range f.Blocks {
		if b == nil {
			return fmt.Errorf("pipeline: disk artifact function %q has a nil block", f.Name)
		}
	}
	return nil
}

// checkPerFunc rejects a program artifact whose report map disagrees with
// its function list. The writer records exactly one report per function,
// so any divergence — a missing report, or a report for a function that
// is not in the artifact — means the payload did not come from a sane
// writer and must be quarantined like any other malformed entry rather
// than served with silently wrong per-function accounting.
func checkPerFunc(funcs []*ir.Func, perFunc map[string]FuncReport) error {
	if len(perFunc) != len(funcs) {
		return fmt.Errorf("pipeline: disk program artifact has %d reports for %d functions",
			len(perFunc), len(funcs))
	}
	for _, f := range funcs {
		if _, ok := perFunc[f.Name]; !ok {
			return fmt.Errorf("pipeline: disk program artifact is missing the report for %q", f.Name)
		}
	}
	return nil
}
