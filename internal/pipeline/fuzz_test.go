package pipeline

import (
	"errors"
	"testing"

	"ccmem/internal/ir"
	"ccmem/internal/repro"
	"ccmem/internal/workload"
)

// reproCorpusDir is the repository-level crash-repro regression corpus
// replayed by the root package's TestReproCorpusReplays (relative to
// this package; the go tool runs tests with the package directory as
// cwd).
const reproCorpusDir = "../../testdata/repros"

// FuzzDifferential hunts for miscompiles rather than crashes: any input
// that parses and verifies is compiled under every strategy with the
// differential oracle in strict mode, so a compile whose output
// diverges from the input on the oracle's argument vectors fails the
// target with the first divergent pass named. Ordinary compile errors
// on degenerate inputs are not findings — wrong code is. A finding is
// written to the shared repro corpus as a replayable miscompile bundle
// before the test fails, joining the Replay regression suite.
func FuzzDifferential(f *testing.F) {
	f.Add("func main() {\nentry:\n\tr0 = loadi 5\n\temit r0\n\tret\n}\n")
	f.Add("func helper(r0) int {\nentry:\n\tr1 = loadi 3\n\tr2 = mul r0, r1\n\tret r2\n}\nfunc main() {\nentry:\n\tr0 = loadi 5\n\tr1 = call helper(r0)\n\temit r1\n\tret\n}\n")
	f.Add("func main() {\nentry:\n\tr0 = loadi 1\n\tcbr r0, a, b\na:\n\tr1 = loadi 7\n\temit r1\n\tjmp c\nb:\n\tr2 = loadi 9\n\temit r2\n\tjmp c\nc:\n\tret\n}\n")
	f.Add("global G 8 = i 11 22\nfunc main() {\nentry:\n\tr0 = addr G, 4\n\tr1 = load r0\n\temit r1\n\tret\n}\n")
	for seed := int64(1); seed <= 4; seed++ {
		f.Add(workload.RandomProgram(seed).String())
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			return
		}
		p, err := ir.Parse(src)
		if err != nil {
			return
		}
		if err := ir.VerifyProgram(p, ir.VerifyOptions{}); err != nil {
			return
		}
		for _, strat := range allStrategies {
			cfg := detConfig(strat)
			cfg.DiffCheck = DiffFinal
			cfg.Strict = true
			d := New(Options{DisableCache: true})
			if _, err := d.Compile(p.Clone(), cfg); err != nil {
				var me *MiscompileError
				if !errors.As(err, &me) {
					// Degenerate inputs may fail to compile; only wrong
					// code that compiled cleanly is a finding here.
					continue
				}
				b := &repro.Bundle{
					Kind:    repro.KindMiscompile,
					Func:    me.Func,
					Pass:    me.Pass,
					Program: src,
					Error:   me.Error(),
				}
				if path, werr := repro.Write(reproCorpusDir, b); werr != nil {
					t.Logf("could not write repro bundle: %v", werr)
				} else {
					t.Logf("repro bundle: %s", path)
				}
				t.Fatalf("strategy %v miscompiled the input: %v", strat, me)
			}
		}
	})
}
