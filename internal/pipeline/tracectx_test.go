package pipeline

import (
	"context"
	"sync"
	"testing"

	"ccmem/internal/obs"
	"ccmem/internal/workload"
)

// TestCompileTracedIsolation: per-compile tracers are the serving
// story's race-free trace export — two concurrent compiles on one
// driver each record into their own tracer, and neither tracer is
// touched after its compile returns, so callers can export immediately.
func TestCompileTracedIsolation(t *testing.T) {
	drv := New(Options{Workers: 4, DisableCache: true})
	if drv.Tracer() != nil {
		t.Fatalf("driver has a global tracer; the test wants none")
	}
	const n = 4
	tracers := make([]*obs.Tracer, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		tracers[i] = obs.NewTracer()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := workload.RandomProgram(int64(i + 1))
			if _, err := drv.CompileTraced(context.Background(), p, Config{Strategy: PostPass, CCMBytes: 512}, tracers[i]); err != nil {
				t.Errorf("compile %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	for i, tr := range tracers {
		if tr.Count() == 0 {
			t.Errorf("tracer %d recorded no spans", i)
		}
		// Every span in this tracer belongs to this compile: span counts
		// must equal a solo traced compile of the same program.
		solo := obs.NewTracer()
		sdrv := New(Options{Workers: 4, DisableCache: true})
		p := workload.RandomProgram(int64(i + 1))
		if _, err := sdrv.CompileTraced(context.Background(), p, Config{Strategy: PostPass, CCMBytes: 512}, solo); err != nil {
			t.Fatalf("solo compile %d: %v", i, err)
		}
		if tr.Count() != solo.Count() {
			t.Errorf("tracer %d holds %d spans, solo compile recorded %d — spans leaked across compiles",
				i, tr.Count(), solo.Count())
		}
	}
}

// TestCompileTracedNilFallsBack: a nil per-compile tracer means "use
// the driver's own" — the ccmc path is unchanged.
func TestCompileTracedNilFallsBack(t *testing.T) {
	global := obs.NewTracer()
	drv := New(Options{Workers: 1, DisableCache: true, Tracer: global})
	p := workload.RandomProgram(1)
	if _, err := drv.CompileTraced(context.Background(), p, Config{Strategy: NoCCM}, nil); err != nil {
		t.Fatalf("compile: %v", err)
	}
	if global.Count() == 0 {
		t.Fatalf("nil tracer did not fall back to the driver's tracer")
	}
}
