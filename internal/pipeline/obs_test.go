package pipeline

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime/pprof"
	"strings"
	"testing"

	"ccmem/internal/diskcache"
	"ccmem/internal/ir"
	"ccmem/internal/obs"
	"ccmem/internal/workload"
)

// obsDriver builds a fresh driver with both observability backends on.
func obsDriver(workers int) *Driver {
	return New(Options{
		Workers:     workers,
		Tracer:      obs.NewTracer(),
		Metrics:     obs.NewRegistry(),
		PprofLabels: true,
	})
}

// TestObsCountersDeterministicAcrossWorkers extends the determinism
// suite to the metrics registry: compilation is a pure function of
// (program, Config), so every counter and gauge — allocator spills,
// CCM promotions, optimizer rewrites, cache outcomes, oracle runs —
// must be byte-identical however many workers raced, and the span
// count must match too. Only wall-clock content (histogram bucket
// placement, span timestamps) may differ.
func TestObsCountersDeterministicAcrossWorkers(t *testing.T) {
	cfg := detConfig(Integrated)
	cfg.DiffCheck = DiffFinal // oracle counters join the comparison

	type shot struct {
		counters, gauges []byte
		histCounts       map[string]int64
		spans            int64
	}
	take := func(workers int) shot {
		d := obsDriver(workers)
		mustCompile(t, d, workload.RandomProgram(41), cfg)
		snap := d.Registry().Snapshot()
		cb, err := json.Marshal(snap.Counters)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := json.Marshal(snap.Gauges)
		if err != nil {
			t.Fatal(err)
		}
		hc := make(map[string]int64, len(snap.Histograms))
		for name, h := range snap.Histograms {
			hc[name] = h.Count
		}
		return shot{counters: cb, gauges: gb, histCounts: hc, spans: d.Tracer().Count()}
	}

	one := take(1)
	eight := take(8)
	if !bytes.Equal(one.counters, eight.counters) {
		t.Errorf("counters differ across worker counts:\n workers=1: %s\n workers=8: %s", one.counters, eight.counters)
	}
	if !bytes.Equal(one.gauges, eight.gauges) {
		t.Errorf("gauges differ across worker counts:\n workers=1: %s\n workers=8: %s", one.gauges, eight.gauges)
	}
	if len(one.histCounts) != len(eight.histCounts) {
		t.Fatalf("histogram sets differ: %v vs %v", one.histCounts, eight.histCounts)
	}
	for name, n := range one.histCounts {
		if eight.histCounts[name] != n {
			t.Errorf("histogram %q count: workers=1 %d, workers=8 %d", name, n, eight.histCounts[name])
		}
	}
	if one.spans != eight.spans {
		t.Errorf("span count: workers=1 %d, workers=8 %d", one.spans, eight.spans)
	}
	if one.spans == 0 {
		t.Error("no spans recorded")
	}
	if len(one.histCounts) == 0 {
		t.Error("no pass histograms recorded")
	}
}

// TestInjectedPassStatsReported is the regression test for the report
// bug this change fixes: pass names outside the canonical pipeline
// order — injected experimental passes — used to be silently dropped
// from Report.Passes. They must now follow the canonical passes in
// sorted-name order.
func TestInjectedPassStatsReported(t *testing.T) {
	noop := func(name string) InjectedPass {
		return InjectedPass{Name: name, Fn: func(ctx context.Context, f *ir.Func) error { return nil }}
	}
	cfg := detConfig(PostPass)
	// Deliberately out of sorted order to pin the sorting.
	cfg.InjectFront = []InjectedPass{noop("exp-b"), noop("exp-a")}

	d := New(Options{DisableCache: true})
	rep := mustCompile(t, d, workload.RandomProgram(42), cfg)

	var names []string
	for _, p := range rep.Passes {
		names = append(names, p.Name)
	}
	idx := func(name string) int {
		for i, n := range names {
			if n == name {
				return i
			}
		}
		t.Fatalf("pass %q missing from report passes %v", name, names)
		return -1
	}
	ia, ib := idx("exp-a"), idx("exp-b")
	if ia > ib {
		t.Errorf("injected passes not in sorted order: %v", names)
	}
	for _, canonical := range []string{PassOptimize, PassRegalloc} {
		if ci := idx(canonical); ci > ia || ci > ib {
			t.Errorf("canonical pass %q reported after injected passes: %v", canonical, names)
		}
	}
	for _, name := range []string{"exp-a", "exp-b"} {
		if p := rep.Passes[idx(name)]; p.Runs == 0 {
			t.Errorf("injected pass %q reported with zero runs", name)
		}
	}
}

// TestWriteChromeTraceFromCompile locks the trace export end to end: a
// real compile's spans serialize to valid Chrome trace-event JSON with
// complete events, the pipeline's span vocabulary present, and the
// event count matching the report's span count.
func TestWriteChromeTraceFromCompile(t *testing.T) {
	d := obsDriver(4)
	rep := mustCompile(t, d, workload.RandomProgram(43), detConfig(Integrated))
	if rep.Spans == 0 {
		t.Fatal("report has no spans")
	}

	var buf bytes.Buffer
	if err := d.Tracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", trace.DisplayTimeUnit)
	}
	if int64(len(trace.TraceEvents)) != rep.Spans {
		t.Errorf("trace has %d events, report says %d spans", len(trace.TraceEvents), rep.Spans)
	}
	seen := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q: ph = %q, want complete event X", ev.Name, ev.Ph)
		}
		if ev.PID != 1 || ev.Name == "" || ev.TS < 0 || ev.Dur < 0 {
			t.Fatalf("malformed event: %+v", ev)
		}
		seen[ev.Name] = true
	}
	for _, want := range []string{"compile", "front", "back", "pass:" + PassRegalloc, "cache:mem"} {
		if !seen[want] {
			t.Errorf("span %q missing from trace (got %v)", want, seen)
		}
	}
}

// TestPprofLabelsOnPassBodies: with Options.PprofLabels the goroutine
// running a pass carries ccm_func/ccm_pass labels (so CPU profiles
// attribute samples per pass); without it, no labels leak in.
func TestPprofLabelsOnPassBodies(t *testing.T) {
	probe := func(got map[string]map[string]string) InjectedPass {
		return InjectedPass{Name: "exp-probe", Fn: func(ctx context.Context, f *ir.Func) error {
			labels := map[string]string{}
			for _, key := range []string{"ccm_func", "ccm_pass"} {
				if v, ok := pprof.Label(ctx, key); ok {
					labels[key] = v
				}
			}
			got[f.Name] = labels
			return nil
		}}
	}

	cfg := detConfig(PostPass)
	got := map[string]map[string]string{}
	cfg.InjectFront = []InjectedPass{probe(got)}
	d := New(Options{Workers: 1, PprofLabels: true, DisableCache: true})
	mustCompile(t, d, workload.RandomProgram(44), cfg)
	if len(got) == 0 {
		t.Fatal("probe pass never ran")
	}
	for fn, labels := range got {
		if labels["ccm_func"] != fn {
			t.Errorf("ccm_func label = %q, want %q", labels["ccm_func"], fn)
		}
		if labels["ccm_pass"] != "exp-probe" {
			t.Errorf("ccm_pass label = %q, want exp-probe", labels["ccm_pass"])
		}
	}

	cfg2 := detConfig(PostPass)
	got2 := map[string]map[string]string{}
	cfg2.InjectFront = []InjectedPass{probe(got2)}
	d2 := New(Options{Workers: 1, DisableCache: true})
	mustCompile(t, d2, workload.RandomProgram(44), cfg2)
	for fn, labels := range got2 {
		if len(labels) != 0 {
			t.Errorf("labels present without PprofLabels on %s: %v", fn, labels)
		}
	}
}

// TestReportObsJSONShape pins the report surface: with observability on,
// "spans" and a "metrics" block (counters, gauges, histograms with the
// summary fields) appear; with it off, both stay omitted.
func TestReportObsJSONShape(t *testing.T) {
	d := obsDriver(2)
	rep := mustCompile(t, d, workload.RandomProgram(45), detConfig(Integrated))
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Spans   int64 `json:"spans"`
		Metrics *struct {
			Counters   map[string]int64 `json:"counters"`
			Gauges     map[string]int64 `json:"gauges"`
			Histograms map[string]struct {
				Count    int64 `json:"count"`
				SumNanos int64 `json:"sum_ns"`
				P50      int64 `json:"p50_ns"`
				P95      int64 `json:"p95_ns"`
			} `json:"histograms"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Spans == 0 {
		t.Error("spans field missing or zero in instrumented report")
	}
	if decoded.Metrics == nil {
		t.Fatalf("metrics block missing: %s", raw)
	}
	if len(decoded.Metrics.Counters) == 0 || len(decoded.Metrics.Histograms) == 0 {
		t.Errorf("metrics block incomplete: %s", raw)
	}
	if h, ok := decoded.Metrics.Histograms["pass."+PassRegalloc]; !ok || h.Count == 0 {
		t.Errorf("pass.regalloc histogram missing or empty: %s", raw)
	}

	plain := mustCompile(t, New(Options{}), workload.RandomProgram(45), detConfig(Integrated))
	praw, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"spans"`, `"metrics"`} {
		if strings.Contains(string(praw), key) {
			t.Errorf("uninstrumented report leaks %s: %s", key, praw)
		}
	}
}

// TestCacheLateAttachKeepsMisses is the regression test for the
// whole-cache accounting bug: Stats used to overwrite Misses with the
// disk tier's counter, so attaching a disk tier late erased every miss
// the memory tier had already taken and reported a perfect HitRate.
func TestCacheLateAttachKeepsMisses(t *testing.T) {
	c := NewCache(0)
	var k1, k2 digest
	k1[0], k2[0] = 1, 2

	if _, ok := c.get(k1, diskKindFront, nil); ok {
		t.Fatal("empty cache hit")
	}
	c.put(k1, diskKindFront, &frontArtifact{})
	if _, ok := c.get(k1, diskKindFront, nil); !ok {
		t.Fatal("stored artifact missed")
	}

	disk, err := diskcache.Open(t.TempDir(), diskcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.AttachDisk(disk)
	if _, ok := c.get(k2, diskKindFront, nil); ok {
		t.Fatal("unknown key hit")
	}

	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Errorf("whole-cache counters = %d hits / %d misses, want 1/2 (pre-attach miss erased?): %+v",
			st.Hits, st.Misses, st)
	}
	if want := 1.0 / 3.0; st.HitRate != want {
		t.Errorf("HitRate = %v, want %v", st.HitRate, want)
	}
	if st.Hits != st.Memory.Hits+st.Disk.Hits {
		t.Errorf("tier hits do not add up: %+v", st)
	}
}

// TestCacheDegradedDiskMissCounting drives the disk tier to
// degraded-to-memory with injected write faults (ENOSPC on every write)
// and checks the whole-cache counters stay truthful: every fall-through
// is a miss, hits are exactly the per-tier hits, and HitRate is
// consistent with both.
func TestCacheDegradedDiskMissCounting(t *testing.T) {
	cfg := detConfig(PostPass)
	ffs := diskcache.NewFaultFS(nil)
	d := New(Options{CacheDir: t.TempDir(), DiskFS: ffs})
	if err := d.DiskCacheErr(); err != nil {
		t.Fatal(err)
	}
	ffs.SetWriteBudget(0)

	for seed := int64(50); seed < 54; seed++ {
		mustCompile(t, d, workload.RandomProgram(seed), cfg)
	}
	// Identical recompile: served by the memory tier despite the dead disk.
	rep := mustCompile(t, d, workload.RandomProgram(53), cfg)

	st := rep.Cache
	if !st.Disk.Degraded {
		t.Fatalf("disk tier not degraded under exhausted write budget: %+v", st.Disk)
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("expected both hits and misses, got %d/%d", st.Hits, st.Misses)
	}
	if st.Hits != st.Memory.Hits+st.Disk.Hits {
		t.Errorf("Hits = %d, want Memory.Hits %d + Disk.Hits %d", st.Hits, st.Memory.Hits, st.Disk.Hits)
	}
	// The disk never serves anything here, so every memory miss fell
	// through the whole cache. The old tier-derived merge reported the
	// disk tier's view instead and hid these.
	if st.Misses != st.Memory.Misses {
		t.Errorf("Misses = %d, want every memory miss (%d) counted as a whole-cache miss", st.Misses, st.Memory.Misses)
	}
	if want := float64(st.Hits) / float64(st.Hits+st.Misses); st.HitRate != want {
		t.Errorf("HitRate = %v, want %v", st.HitRate, want)
	}
}

// TestCacheDiskHitAccounting: a second driver on a warm directory is
// served from disk, and the whole-cache counters decompose exactly into
// the tier counters.
func TestCacheDiskHitAccounting(t *testing.T) {
	cfg := detConfig(Integrated)
	dir := t.TempDir()
	mustCompile(t, New(Options{CacheDir: dir}), workload.RandomProgram(55), cfg)

	d := New(Options{CacheDir: dir})
	rep := mustCompile(t, d, workload.RandomProgram(55), cfg)
	st := rep.Cache
	if st.Disk.Hits == 0 {
		t.Fatalf("warm directory served no disk hits: %+v", st)
	}
	if st.Hits != st.Memory.Hits+st.Disk.Hits {
		t.Errorf("Hits = %d, want Memory.Hits %d + Disk.Hits %d", st.Hits, st.Memory.Hits, st.Disk.Hits)
	}
	if st.HitRate <= 0 || st.HitRate > 1 {
		t.Errorf("HitRate = %v, want in (0, 1]", st.HitRate)
	}
}

// TestCacheHitRateZeroLookups: a never-consulted cache must report
// hit_rate 0 — not NaN, which would make the -json report unmarshalable.
func TestCacheHitRateZeroLookups(t *testing.T) {
	st := NewCache(0).Stats()
	if st.HitRate != 0 {
		t.Errorf("HitRate = %v, want 0", st.HitRate)
	}
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("zero-lookup stats do not marshal: %v", err)
	}
	if !strings.Contains(string(raw), `"hit_rate":0`) {
		t.Errorf("marshaled stats missing hit_rate 0: %s", raw)
	}
}
