package pipeline

import (
	"sort"
	"sync"
	"time"

	"ccmem/internal/obs"
)

// Pass names, in pipeline order. PassInput is not a pass: it names the
// pre-pass verification checkpoint, so a broken invariant already present
// in the input is attributed to the input rather than to the first pass.
const (
	PassInput    = "input"
	PassOptimize = "optimize"
	PassRegalloc = "regalloc"
	PassPostPass = "postpass"
	PassCleanup  = "cleanup"
	PassCompact  = "compact"
	PassVerify   = "verify"
)

// passOrder fixes the order passes appear in a Report regardless of
// completion order under parallelism.
var passOrder = []string{PassOptimize, PassRegalloc, PassPostPass, PassCleanup, PassCompact, PassVerify}

// PassStat aggregates one pass over every function it ran on. Cache hits
// skip passes entirely, so Runs counts real executions only; under a
// parallel pool WallNanos is summed worker time, which can exceed the
// compile's wall clock.
type PassStat struct {
	Name         string `json:"name"`
	Runs         int64  `json:"runs"`
	WallNanos    int64  `json:"wall_ns"`
	InstrsBefore int64  `json:"instrs_before"`
	InstrsAfter  int64  `json:"instrs_after"`
}

// TierStats counts one tier of the two-tier artifact cache.
type TierStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
}

// DiskTierStats is the persistent tier's TierStats plus its robustness
// counters: integrity failures detected (corruptions), entries withdrawn
// from the read path (quarantines), I/O errors, dead temp files swept
// after a crash, and how many times the tier shut its write path off
// after persistent failures (degraded-to-memory). Zero-valued when no
// disk tier is attached.
type DiskTierStats struct {
	TierStats
	Writes           int64 `json:"writes"`
	Corruptions      int64 `json:"corruptions"`
	Quarantines      int64 `json:"quarantines"`
	ReadErrors       int64 `json:"read_errors"`
	WriteErrors      int64 `json:"write_errors"`
	SweptTemps       int64 `json:"swept_temps"`
	DegradedToMemory int64 `json:"degraded_to_memory"`
	Bytes            int64 `json:"bytes"`
	Degraded         bool  `json:"degraded,omitempty"`
}

// RemoteTierStats is the remote HTTP tier's hit/miss accounting plus
// its robustness counters: write-behind activity (puts, queue-overflow
// drops, failed stores), failure classification for lookups that never
// reached a healthy server (retries, timeouts, transport errors, HTTP
// errors, responses that failed re-verification), lookups skipped
// outright by an open circuit, and the circuit breaker's trip/probe
// history with its current position ("closed", "half-open", "open").
// HitRate is Hits/(Hits+Misses), 0 when the tier was never consulted.
// Zero-valued when no remote tier is attached.
type RemoteTierStats struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`

	Puts      int64 `json:"puts"`
	PutDrops  int64 `json:"put_drops"`
	PutErrors int64 `json:"put_errors"`

	Retries     int64 `json:"retries"`
	Timeouts    int64 `json:"timeouts"`
	NetErrors   int64 `json:"net_errors"`
	HTTPErrors  int64 `json:"http_errors"`
	Corruptions int64 `json:"corruptions"`
	Skipped     int64 `json:"skipped"`

	Trips   int64  `json:"trips"`
	Probes  int64  `json:"probes"`
	Circuit string `json:"circuit,omitempty"`

	// Fleet counters, populated only when the remote tier is a
	// replicated fleet: lookups the fleet absorbed a node failure on,
	// hedged second reads launched and won, and read-repair puts queued
	// back toward a key's preferred nodes.
	Failovers      int64 `json:"failovers,omitempty"`
	HedgesLaunched int64 `json:"hedges_launched,omitempty"`
	HedgesWon      int64 `json:"hedges_won,omitempty"`
	Repairs        int64 `json:"repairs,omitempty"`

	// Nodes breaks the fleet out per server, in configured order. Empty
	// for a single-server tier.
	Nodes []RemoteNodeStats `json:"nodes,omitempty"`
}

// RemoteNodeStats is one fleet node's own counter block: the node's URL
// plus the same per-server stats a single-server tier reports.
type RemoteNodeStats struct {
	URL string `json:"url"`
	RemoteTierStats
}

// CacheStats is a snapshot of the content-addressed cache's counters
// across all tiers. Hits counts artifacts served from any tier, Misses
// lookups that had to fall through to a real compile; HitRate is the
// precomputed ratio, and Hits == Memory.Hits + Disk.Hits + Remote.Hits
// (every resolved lookup lands in exactly one tier's counters).
// Evictions and Entries describe the memory tier (the historical
// meaning); Memory, Disk, and Remote break each tier out.
type CacheStats struct {
	Hits      int64           `json:"hits"`
	Misses    int64           `json:"misses"`
	Evictions int64           `json:"evictions"`
	Entries   int             `json:"entries"`
	HitRate   float64         `json:"hit_rate"`
	Memory    TierStats       `json:"memory"`
	Disk      DiskTierStats   `json:"disk"`
	Remote    RemoteTierStats `json:"remote"`

	// EncodeFailures counts artifacts that could not be encoded for the
	// persistent tiers and therefore stayed memory-only; EncodeWarning
	// carries the first such failure verbatim (one-shot — later failures
	// only bump the counter). Both are zero on a healthy cache.
	EncodeFailures int64  `json:"encode_failures,omitempty"`
	EncodeWarning  string `json:"encode_warning,omitempty"`
}

// FuncReport is the per-function compilation summary.
type FuncReport struct {
	SpillBytesNaive     int64 `json:"spill_bytes_naive"`     // one frame slot per spilled live range
	SpillBytesCompacted int64 `json:"spill_bytes_compacted"` // after coloring-based compaction
	CCMBytes            int64 `json:"ccm_bytes"`             // CCM high-water of the function's own code
	SpilledRanges       int   `json:"spilled_ranges"`
	PromotedWebs        int   `json:"promoted_webs"` // spill live ranges redirected to the CCM
	SpillWebs           int   `json:"spill_webs"`    // spill-location live ranges seen by compaction
	Instrs              int   `json:"instrs"`        // final static instruction count
	FrontCacheHit       bool  `json:"front_cache_hit"`
	BackCacheHit        bool  `json:"back_cache_hit"`

	// Fault-isolation outcome. Attempts counts front-stage tries (1 =
	// clean first try); Degraded names the rung the function shipped at
	// ("no-opt", "baseline", "no-ccm", with "+no-compact" appended when
	// the back stage also degraded); FailedPass and Error describe the
	// last recovered fault.
	Attempts   int    `json:"attempts,omitempty"`
	Degraded   string `json:"degraded,omitempty"`
	FailedPass string `json:"failed_pass,omitempty"`
	Error      string `json:"error,omitempty"`
}

// Report is the structured result of one Compile (or, via
// Driver.Metrics, the cumulative totals of many). It marshals to the
// JSON printed by `ccmc -json` and `ccmbench -json`.
type Report struct {
	Strategy        string                `json:"strategy"`
	Workers         int                   `json:"workers"`
	Compiles        int64                 `json:"compiles,omitempty"` // cumulative reports only
	Funcs           int                   `json:"funcs"`
	WallNanos       int64                 `json:"wall_ns"`
	ProgramCacheHit bool                  `json:"program_cache_hit,omitempty"`
	ProgramHits     int64                 `json:"program_hits,omitempty"` // cumulative reports only
	Passes          []PassStat            `json:"passes"`
	PerFunc         map[string]FuncReport `json:"per_func,omitempty"`
	Cache           CacheStats            `json:"cache"`

	// Fault-isolation counters: recovered pass faults, functions shipped
	// below configured fidelity, and the crash repro bundles written.
	Failures   int64    `json:"failures,omitempty"`
	Degraded   int64    `json:"degraded,omitempty"`
	Repros     []string `json:"repros,omitempty"`
	ReproError string   `json:"repro_error,omitempty"`

	// Differential-oracle counters (Config.DiffCheck). DiffFuncsChecked
	// counts entry functions executed on both sides (bisection re-checks
	// included), DiffRuns the conclusive (entry, vector) executions,
	// DiffInconclusive the runs skipped on a resource limit. Divergences
	// counts detected miscompiles; DivergentPasses is the histogram of
	// the first semantically-divergent pass each bisected to.
	DiffFuncsChecked int64            `json:"diff_funcs_checked,omitempty"`
	DiffRuns         int64            `json:"diff_runs,omitempty"`
	DiffInconclusive int64            `json:"diff_inconclusive,omitempty"`
	Divergences      int64            `json:"divergences,omitempty"`
	DivergentPasses  map[string]int64 `json:"divergent_passes,omitempty"`

	// Observability (Options.Tracer / Options.Metrics). Spans is the
	// total span count recorded on the driver's tracer; Metrics is a
	// point-in-time snapshot of the driver's registry — counters and
	// gauges are deterministic across worker counts, histogram bucket
	// placements (wall clock) are not. Both are zero/nil when the
	// corresponding option is off.
	Spans   int64         `json:"spans,omitempty"`
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// metrics accumulates per-pass statistics; safe for concurrent workers.
// When reg is non-nil, every recorded pass also feeds a per-pass latency
// histogram ("pass.<name>") in the registry.
type metrics struct {
	mu     sync.Mutex
	reg    *obs.Registry
	passes map[string]*PassStat
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{reg: reg, passes: make(map[string]*PassStat, len(passOrder))}
}

func (m *metrics) pass(name string, d time.Duration, before, after int) {
	if m.reg != nil {
		m.reg.Histogram("pass." + name).Observe(d)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.passes[name]
	if p == nil {
		p = &PassStat{Name: name}
		m.passes[name] = p
	}
	p.Runs++
	p.WallNanos += d.Nanoseconds()
	p.InstrsBefore += int64(before)
	p.InstrsAfter += int64(after)
}

// merge folds o into m (used for the driver's cumulative totals).
func (m *metrics) merge(o *metrics) {
	o.mu.Lock()
	defer o.mu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, op := range o.passes {
		p := m.passes[name]
		if p == nil {
			p = &PassStat{Name: name}
			m.passes[name] = p
		}
		p.Runs += op.Runs
		p.WallNanos += op.WallNanos
		p.InstrsBefore += op.InstrsBefore
		p.InstrsAfter += op.InstrsAfter
	}
}

// stats returns the accumulated passes in pipeline order. Passes whose
// names are not in passOrder — injected experimental passes
// (Config.InjectFront) — follow the canonical ones in sorted-name order,
// so their timings are reported rather than silently dropped.
func (m *metrics) stats() []PassStat {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]PassStat, 0, len(m.passes))
	canonical := make(map[string]bool, len(passOrder))
	for _, name := range passOrder {
		canonical[name] = true
		if p, ok := m.passes[name]; ok {
			out = append(out, *p)
		}
	}
	extra := make([]string, 0, len(m.passes))
	for name := range m.passes {
		if !canonical[name] {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		out = append(out, *m.passes[name])
	}
	return out
}
