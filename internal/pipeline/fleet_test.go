package pipeline

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ccmem/internal/remotecache"
	"ccmem/internal/workload"
)

// fleetURLs spins up n in-process cache servers and returns their base
// URLs.
func fleetURLs(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		_, hs := remoteServer(t)
		urls[i] = hs.URL
	}
	return urls
}

// resettableFleetURLs spins up n cache servers whose stores can be
// swapped for fresh ones without changing their URLs. Rendezvous
// placement keys off the URL, so determinism tests that rerun a
// scenario at several worker counts need identical URLs with clean
// stores each run — otherwise the first run's write-behind puts feed
// hits to the second.
func resettableFleetURLs(t *testing.T, n int) (urls []string, reset func()) {
	t.Helper()
	handlers := make([]atomic.Value, n)
	reset = func() {
		for i := range handlers {
			srv, err := remotecache.NewServer(t.TempDir(), remotecache.ServerOptions{})
			if err != nil {
				t.Fatalf("remotecache.NewServer: %v", err)
			}
			handlers[i].Store(srv.Handler("test"))
		}
	}
	reset()
	urls = make([]string, n)
	for i := range handlers {
		h := &handlers[i]
		hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h.Load().(http.Handler).ServeHTTP(w, r)
		}))
		t.Cleanup(hs.Close)
		urls[i] = hs.URL
	}
	return urls, reset
}

// warmFleet populates a fleet from a healthy driver: every artifact of
// seed's program lands on its first two preference nodes.
func warmFleet(t *testing.T, urls []string, seed int64, cfg Config) {
	t.Helper()
	w := New(Options{RemoteURLs: urls, RemoteTuning: fastRemoteTuning()})
	if err := w.RemoteCacheErr(); err != nil {
		t.Fatalf("warm fleet attach: %v", err)
	}
	mustCompile(t, w, workload.RandomProgram(seed), cfg)
	closeRemote(t, w)
}

// TestFleetFaultMatrixDeterminism is the tentpole's robustness claim:
// in a 3-node fleet, any single node failing in any mode — fully down,
// connection refused, truncating responses, flipping bits, hanging, or
// answering 5xx — yields compiled output byte-identical to a cold
// no-remote compile, with the deterministic counter set (failures,
// degradations, whole-cache hits/misses, fleet hits, failovers)
// identical at workers=1 and workers=8. All three nodes down degrades
// to the local tiers and still completes every compile. Hedging stays
// off here — it is the one deliberately timing-dependent feature and
// has its own deterministic tests.
func TestFleetFaultMatrixDeterminism(t *testing.T) {
	cfg := detConfig(Integrated)
	const seed = 90
	want := coldILOC(t, seed, cfg)

	scenarios := []struct {
		name    string
		warm    bool // pre-populate the fleet so read-path faults have bytes to mangle
		kind    remotecache.FaultKind
		down    bool // the faulted node is a dead address, not a faulted transport
		allDown bool // every node is a dead address
	}{
		{name: "node-down", down: true},
		{name: "refused", kind: remotecache.FaultRefused},
		{name: "truncated", warm: true, kind: remotecache.FaultTruncate},
		{name: "bit-flip", warm: true, kind: remotecache.FaultBitFlip},
		{name: "slow", kind: remotecache.FaultSlow},
		{name: "5xx", kind: remotecache.Fault5xx},
		{name: "all-down", allDown: true},
	}
	for i, sc := range scenarios {
		sick := i % 3 // rotate which node takes the fault
		t.Run(sc.name, func(t *testing.T) {
			var urls []string
			reset := func() {}
			switch {
			case sc.allDown:
				urls = []string{deadURL(t), deadURL(t), deadURL(t)}
			case sc.down:
				urls, reset = resettableFleetURLs(t, 3)
				urls[sick] = deadURL(t)
			default:
				urls, reset = resettableFleetURLs(t, 3)
			}
			type outcome struct {
				output                   string
				failures, degraded       int64
				hits, misses, remoteHits int64
				failovers                int64
			}
			byWorkers := map[int]outcome{}
			for _, workers := range []int{1, 8} {
				// Same URLs (placement is URL-keyed), fresh stores: the
				// two worker runs must see identical fleet contents.
				reset()
				sickIdx := sick
				if sc.warm {
					warmFleet(t, urls, seed, cfg)
					// Fault the node that actually serves this compile's
					// artifact — a probe compile reveals the placement —
					// so the read path is guaranteed to hit the fault and
					// fail over to the surviving replica.
					probe := New(Options{RemoteURLs: urls, RemoteTuning: fastRemoteTuning()})
					pr := mustCompile(t, probe, workload.RandomProgram(seed), cfg)
					closeRemote(t, probe)
					sickIdx = -1
					for i, ns := range pr.Cache.Remote.Nodes {
						if ns.Hits > 0 {
							sickIdx = i
						}
					}
					if sickIdx < 0 {
						t.Fatalf("probe compile hit no node: %+v", pr.Cache.Remote)
					}
				}
				var rts []http.RoundTripper
				if !sc.down && !sc.allDown {
					rt := &remotecache.FaultRT{}
					rt.Arm(sc.kind)
					rts = make([]http.RoundTripper, 3)
					rts[sickIdx] = rt
				}
				d := New(Options{Workers: workers, RemoteURLs: urls,
					RemoteFaultRTs: rts, RemoteTuning: fastRemoteTuning()})
				if err := d.RemoteCacheErr(); err != nil {
					t.Fatalf("attach: %v", err)
				}
				p := workload.RandomProgram(seed)
				rep := mustCompile(t, d, p, cfg)
				if got := p.String(); got != want {
					t.Errorf("workers=%d: output under %s differs from cold compile", workers, sc.name)
				}
				rs := rep.Cache.Remote
				if sc.warm {
					// One replica always survives a single sick node: the
					// fleet keeps serving.
					if rs.Hits < 1 {
						t.Errorf("workers=%d %s: warm fleet served no hits: %+v", workers, sc.name, rs)
					}
					if rs.Failovers < 1 {
						t.Errorf("workers=%d %s: faulted primary absorbed no failover: %+v", workers, sc.name, rs)
					}
				} else if rs.Hits != 0 {
					t.Errorf("workers=%d %s: %d hits from a cold fleet", workers, sc.name, rs.Hits)
				}
				// The compile survived, but the report must not hide the
				// trouble: some hardening counter reflects the scenario.
				trouble := rs.Timeouts + rs.NetErrors + rs.HTTPErrors + rs.Corruptions + rs.Skipped
				if trouble == 0 {
					t.Errorf("workers=%d %s: no network fault surfaced in the report: %+v", workers, sc.name, rs)
				}
				if rep.Failures != 0 || rep.Degraded != 0 {
					t.Errorf("workers=%d %s: a fleet fault degraded a compile: failures=%d degraded=%d",
						workers, sc.name, rep.Failures, rep.Degraded)
				}
				if len(rs.Nodes) != 3 {
					t.Errorf("workers=%d %s: %d per-node blocks, want 3", workers, sc.name, len(rs.Nodes))
				}
				if sc.allDown {
					if rs.Failovers != 0 {
						t.Errorf("workers=%d all-down: failovers=%d with no node to fail over to", workers, rs.Failovers)
					}
					if got := d.RemoteCircuit(); got != "open" {
						t.Errorf("workers=%d all-down: fleet circuit %q, want open", workers, got)
					}
				}
				byWorkers[workers] = outcome{
					output:   p.String(),
					failures: rep.Failures, degraded: rep.Degraded,
					hits: rep.Cache.Hits, misses: rep.Cache.Misses,
					remoteHits: rs.Hits, failovers: rs.Failovers,
				}
				closeRemote(t, d)
			}
			if byWorkers[1] != byWorkers[8] {
				t.Errorf("%s: deterministic counters differ across worker counts:\n  workers=1: %+v\n  workers=8: %+v",
					sc.name, byWorkers[1], byWorkers[8])
			}
		})
	}
}

// TestFleetWholeCacheInvariantUnderFaults extends the whole-cache
// invariant — Hits == Memory.Hits + Disk.Hits + Remote.Hits — to a
// replicated fleet taking single-node faults, cold and warm, at both
// worker counts.
func TestFleetWholeCacheInvariantUnderFaults(t *testing.T) {
	cfg := detConfig(Integrated)
	const seed = 91
	urls := fleetURLs(t, 3)
	warmFleet(t, urls, seed, cfg)

	for _, workers := range []int{1, 8} {
		for sick := 0; sick < 3; sick++ {
			rt := &remotecache.FaultRT{}
			rt.Arm(remotecache.FaultRefused)
			rts := make([]http.RoundTripper, 3)
			rts[sick] = rt
			d := New(Options{Workers: workers, RemoteURLs: urls,
				RemoteFaultRTs: rts, RemoteTuning: fastRemoteTuning()})
			rep := mustCompile(t, d, workload.RandomProgram(seed), cfg)
			got := rep.Cache
			if got.Hits != got.Memory.Hits+got.Disk.Hits+got.Remote.Hits {
				t.Errorf("workers=%d sick=%d: whole-cache invariant broken: %d != %d + %d + %d",
					workers, sick, got.Hits, got.Memory.Hits, got.Disk.Hits, got.Remote.Hits)
			}
			if got.Remote.Hits < 1 {
				t.Errorf("workers=%d sick=%d: warm fleet served no hits: %+v", workers, sick, got.Remote)
			}
			closeRemote(t, d)
		}
	}
}

// TestFleetHedgedReadCountsOneHit is satellite truth for the hedged
// path at the pipeline layer: with the node that served a warm compile
// hanging, a hedge-enabled driver wins the race from the surviving
// replica, the won hedge counts exactly one fleet hit, and the
// whole-cache invariant holds.
func TestFleetHedgedReadCountsOneHit(t *testing.T) {
	cfg := detConfig(Integrated)
	const seed = 92
	want := coldILOC(t, seed, cfg)
	urls := fleetURLs(t, 2)
	warmFleet(t, urls, seed, cfg)

	// Observe which node the program artifact prefers: a fresh driver's
	// warm compile is served by exactly the key's primary.
	probe := New(Options{RemoteURLs: urls, RemoteTuning: fastRemoteTuning()})
	probeRep := mustCompile(t, probe, workload.RandomProgram(seed), cfg)
	closeRemote(t, probe)
	sick := -1
	for i, ns := range probeRep.Cache.Remote.Nodes {
		if ns.Hits > 0 {
			sick = i
		}
	}
	if sick < 0 {
		t.Fatalf("probe compile hit no node: %+v", probeRep.Cache.Remote)
	}

	// Hang that node. Every key it served now resolves through a hedge
	// to the other (warm, R=2) replica.
	rt := &remotecache.FaultRT{}
	rt.Arm(remotecache.FaultSlow)
	rts := make([]http.RoundTripper, 2)
	rts[sick] = rt
	d := New(Options{RemoteURLs: urls, RemoteFaultRTs: rts,
		RemoteHedgeDelay: 5 * time.Millisecond, RemoteTuning: fastRemoteTuning()})
	p := workload.RandomProgram(seed)
	rep := mustCompile(t, d, p, cfg)
	if p.String() != want {
		t.Fatal("hedged compile differs from cold compile")
	}
	rs := rep.Cache.Remote
	if rs.HedgesLaunched < 1 || rs.HedgesWon < 1 {
		t.Fatalf("hedge never won: launched=%d won=%d (%+v)", rs.HedgesLaunched, rs.HedgesWon, rs)
	}
	// A won hedge resolves its lookup exactly once: fleet hits stay in
	// lockstep with the whole-cache ledger.
	got := rep.Cache
	if got.Hits != got.Memory.Hits+got.Disk.Hits+got.Remote.Hits {
		t.Fatalf("whole-cache invariant broken under hedging: %d != %d + %d + %d",
			got.Hits, got.Memory.Hits, got.Disk.Hits, got.Remote.Hits)
	}
	if rs.Hits != rs.HedgesWon {
		t.Fatalf("fleet hits=%d, hedges won=%d: a won hedge must count exactly one hit",
			rs.Hits, rs.HedgesWon)
	}
	closeRemote(t, d)
}

// TestFleetReportJSONShape pins the fleet extension of the report
// surface: the remote block grows a nodes array (url + per-node
// counters, circuit included) and the fleet counters appear by name
// once nonzero.
func TestFleetReportJSONShape(t *testing.T) {
	cfg := detConfig(PostPass)
	const seed = 93
	urls := fleetURLs(t, 2)
	urls[1] = deadURL(t) // asymmetric fleet: one healthy node, one dead
	w := New(Options{RemoteURLs: []string{urls[0]}, RemoteTuning: fastRemoteTuning()})
	mustCompile(t, w, workload.RandomProgram(seed), cfg)
	closeRemote(t, w)

	d := New(Options{RemoteURLs: urls, RemoteTuning: fastRemoteTuning()})
	rep := mustCompile(t, d, workload.RandomProgram(seed), cfg)
	closeRemote(t, d)

	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Cache struct {
			Remote map[string]json.RawMessage `json:"remote"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	nodesRaw, ok := decoded.Cache.Remote["nodes"]
	if !ok {
		t.Fatalf("fleet remote block has no nodes array: %s", raw)
	}
	var nodes []map[string]json.RawMessage
	if err := json.Unmarshal(nodesRaw, &nodes); err != nil || len(nodes) != 2 {
		t.Fatalf("nodes block wrong shape (%v): %s", err, nodesRaw)
	}
	for i, n := range nodes {
		for _, key := range []string{"url", "hits", "misses", "circuit"} {
			if _, ok := n[key]; !ok {
				t.Errorf("node %d missing %q: %s", i, key, nodesRaw)
			}
		}
	}

	// The dead secondary never answers; any lookup it was primary for is
	// a failover, and RemoteNodes exposes the asymmetric circuit state.
	states := d.RemoteNodes()
	if len(states) != 2 {
		t.Fatalf("RemoteNodes = %v, want 2 entries", states)
	}
	for _, ns := range states {
		if ns.URL == "" || ns.Circuit == "" {
			t.Errorf("RemoteNodes entry incomplete: %+v", ns)
		}
	}
	if d.RemoteCircuit() != "closed" {
		t.Errorf("fleet circuit %q with one healthy node, want closed", d.RemoteCircuit())
	}
}

// TestFleetSingleURLUnchanged: one -remote-url keeps the original
// single-server client — no nodes array, no fleet counters, same
// circuit reporting as ever.
func TestFleetSingleURLUnchanged(t *testing.T) {
	_, hs := remoteServer(t)
	d := New(Options{RemoteURLs: []string{hs.URL}, RemoteTuning: fastRemoteTuning()})
	defer closeRemote(t, d)
	if _, ok := d.Cache().Remote().(*remotecache.Client); !ok {
		t.Fatalf("single-URL remote tier is %T, want *remotecache.Client", d.Cache().Remote())
	}
	if nodes := d.RemoteNodes(); nodes != nil {
		t.Fatalf("RemoteNodes = %v for a single server, want nil", nodes)
	}
	cfg := detConfig(PostPass)
	rep := mustCompile(t, d, workload.RandomProgram(94), cfg)
	if len(rep.Cache.Remote.Nodes) != 0 {
		t.Fatalf("single-server remote block grew a nodes array: %+v", rep.Cache.Remote)
	}
}

// TestFleetBadNodeURLIsMemoryOnly: one malformed URL fails the whole
// fleet the same way a malformed single URL does — surfaced via
// RemoteCacheErr, compile unaffected.
func TestFleetBadNodeURLIsMemoryOnly(t *testing.T) {
	_, hs := remoteServer(t)
	d := New(Options{RemoteURLs: []string{hs.URL, "not a url"}})
	if d.RemoteCacheErr() == nil {
		t.Fatal("no error surfaced for a malformed fleet node URL")
	}
	cfg := detConfig(PostPass)
	want := coldILOC(t, 95, cfg)
	p := workload.RandomProgram(95)
	mustCompile(t, d, p, cfg)
	if p.String() != want {
		t.Error("missing fleet changed the output")
	}
}
