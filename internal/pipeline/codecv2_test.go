package pipeline

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"ccmem/internal/ir"
	"ccmem/internal/obs"
	"ccmem/internal/workload"
)

// codecArtifacts compiles a real workload program cold and shapes the
// results into one artifact of each kind, so codec tests exercise the
// exact structures the pipeline persists.
func codecArtifacts(tb testing.TB) (*frontArtifact, *backArtifact, *programArtifact) {
	tb.Helper()
	p := workload.RandomProgram(7)
	d := New(Options{DisableCache: true})
	rep, err := d.Compile(p, Config{Strategy: PostPassInterproc, CCMBytes: 512})
	if err != nil {
		tb.Fatal(err)
	}
	front := &frontArtifact{fn: p.Funcs[0], fr: rep.PerFunc[p.Funcs[0].Name]}
	back := &backArtifact{fn: p.Funcs[len(p.Funcs)-1], compactAfter: 17, webs: 3}
	prog := &programArtifact{funcs: p.Funcs, perFunc: rep.PerFunc}
	return front, back, prog
}

// TestCodecV2RoundTrip: decode∘encode is the identity on real artifacts,
// observed through re-encoding (byte equality is stronger than any
// field-by-field comparison, since the encoding is canonical).
func TestCodecV2RoundTrip(t *testing.T) {
	front, back, prog := codecArtifacts(t)
	for _, tc := range []struct {
		kind uint32
		v    any
	}{
		{diskKindFrontV2, front},
		{diskKindBackV2, back},
		{diskKindProgramV2, prog},
	} {
		payload, err := encodeArtifact(tc.kind, tc.v)
		if err != nil {
			t.Fatalf("kind %d: encode: %v", tc.kind, err)
		}
		got, err := decodeArtifact(tc.kind, payload)
		if err != nil {
			t.Fatalf("kind %d: decode: %v", tc.kind, err)
		}
		re, err := encodeArtifact(tc.kind, got)
		if err != nil {
			t.Fatalf("kind %d: re-encode: %v", tc.kind, err)
		}
		if !bytes.Equal(re, payload) {
			t.Errorf("kind %d: decode∘encode is not the identity (%d vs %d bytes)", tc.kind, len(re), len(payload))
		}
	}
}

// TestCodecV1StillDecodes pins the read-compatibility fallback: the JSON
// payloads a previous release wrote still decode into working artifacts.
func TestCodecV1StillDecodes(t *testing.T) {
	front, back, prog := codecArtifacts(t)
	for _, tc := range []struct {
		kind uint32
		v    any
	}{
		{diskKindFront, front},
		{diskKindBack, back},
		{diskKindProgram, prog},
	} {
		payload, err := encodeArtifact(tc.kind, tc.v)
		if err != nil {
			t.Fatalf("kind %d: encode: %v", tc.kind, err)
		}
		if _, err := decodeArtifact(tc.kind, payload); err != nil {
			t.Errorf("kind %d: legacy JSON payload no longer decodes: %v", tc.kind, err)
		}
	}
}

// FuzzBinaryArtifactDecode is the hostile-input oracle for codec v2: over
// arbitrary bytes, every decoder must either reject or produce an
// artifact whose canonical re-encoding reproduces the input exactly.
// Decoding must never panic and never accept two encodings of one value.
func FuzzBinaryArtifactDecode(f *testing.F) {
	front, back, prog := codecArtifacts(f)
	fe, be, pe := encodeFrontV2(front), encodeBackV2(back), encodeProgramV2(prog)
	f.Add(fe)
	f.Add(be)
	f.Add(pe)
	f.Add([]byte{})
	f.Add([]byte{codecV2Version})
	f.Add(fe[:len(fe)/2])
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	flipped := bytes.Clone(pe)
	flipped[len(flipped)/3] ^= 0x20
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		if a, err := decodeFrontV2(data); err == nil {
			if !bytes.Equal(encodeFrontV2(a), data) {
				t.Fatalf("front decode accepted a non-canonical encoding (%d bytes)", len(data))
			}
		}
		if a, err := decodeBackV2(data); err == nil {
			if !bytes.Equal(encodeBackV2(a), data) {
				t.Fatalf("back decode accepted a non-canonical encoding (%d bytes)", len(data))
			}
		}
		if a, err := decodeProgramV2(data); err == nil {
			if !bytes.Equal(encodeProgramV2(a), data) {
				t.Fatalf("program decode accepted a non-canonical encoding (%d bytes)", len(data))
			}
		}
	})
}

// TestProgramDecodeRejectsPerFuncMismatch: a program artifact whose
// report map disagrees with its function list is malformed in both
// formats — served per-function accounting must never be silently wrong.
func TestProgramDecodeRejectsPerFuncMismatch(t *testing.T) {
	_, _, prog := codecArtifacts(t)

	// v2: drop one report, then point one at a function that isn't there.
	missing := &programArtifact{funcs: prog.funcs, perFunc: map[string]FuncReport{}}
	if _, err := decodeProgramV2(encodeProgramV2(missing)); err == nil {
		t.Error("v2: program with no reports decoded")
	}
	wrong := map[string]FuncReport{}
	for name, fr := range prog.perFunc {
		wrong["not-"+name] = fr
	}
	if _, err := decodeProgramV2(encodeProgramV2(&programArtifact{funcs: prog.funcs, perFunc: wrong})); err == nil {
		t.Error("v2: program with reports for absent functions decoded")
	}

	// v1 JSON: same two corruptions through the legacy decoder.
	pay, err := json.Marshal(&diskProgram{Funcs: prog.funcs, PerFunc: map[string]FuncReport{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeArtifact(diskKindProgram, pay); err == nil {
		t.Error("v1: program with no reports decoded")
	}
	pay, err = json.Marshal(&diskProgram{Funcs: prog.funcs, PerFunc: wrong})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeArtifact(diskKindProgram, pay); err == nil {
		t.Error("v1: program with reports for absent functions decoded")
	}
}

// TestProgramDecodeAllOrNothing: one bad function poisons the whole
// artifact — a payload whose first function is healthy but whose last is
// hollow must be rejected outright, in both formats, not partially
// served or partially canonicalized.
func TestProgramDecodeAllOrNothing(t *testing.T) {
	_, _, prog := codecArtifacts(t)
	bad := append(append([]*ir.Func{}, prog.funcs...), &ir.Func{Name: "hollow"})
	perFunc := map[string]FuncReport{"hollow": {}}
	for name, fr := range prog.perFunc {
		perFunc[name] = fr
	}

	if _, err := decodeProgramV2(encodeProgramV2(&programArtifact{funcs: bad, perFunc: perFunc})); err == nil {
		t.Error("v2: program with a hollow trailing function decoded")
	}
	pay, err := json.Marshal(&diskProgram{Funcs: bad, PerFunc: perFunc})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeArtifact(diskKindProgram, pay); err == nil {
		t.Error("v1: program with a hollow trailing function decoded")
	}

	// Duplicate function names are equally unservable.
	dup := append(append([]*ir.Func{}, prog.funcs...), prog.funcs[0])
	if _, err := decodeProgramV2(encodeProgramV2(&programArtifact{funcs: dup, perFunc: prog.perFunc})); err == nil {
		t.Error("v2: program with a duplicated function decoded")
	}
}

// TestMixedVersionCacheDir: one cache directory holding entries from a
// previous release (JSON v1, fabricated through the legacyPut seam) and
// from this one (binary v2) serves both, byte-identical to cold compiles,
// across driver restarts.
func TestMixedVersionCacheDir(t *testing.T) {
	dir := t.TempDir()
	cfg := detConfig(Integrated)
	wantA := coldILOC(t, 21, cfg)
	wantB := coldILOC(t, 22, cfg)

	old := New(Options{CacheDir: dir})
	if err := old.DiskCacheErr(); err != nil {
		t.Fatal(err)
	}
	old.Cache().legacyPut = true
	mustCompile(t, old, workload.RandomProgram(21), cfg)

	// A new driver reads the v1 entries as hits and writes B as v2.
	mid := New(Options{CacheDir: dir})
	pa := workload.RandomProgram(21)
	rep := mustCompile(t, mid, pa, cfg)
	if !rep.ProgramCacheHit {
		t.Error("v1 program entry did not hit under the upgraded driver")
	}
	if pa.String() != wantA {
		t.Error("v1-served compile differs from cold compile")
	}
	mustCompile(t, mid, workload.RandomProgram(22), cfg)

	// A third driver serves both generations from the one directory.
	fresh := New(Options{CacheDir: dir})
	for _, tc := range []struct {
		seed int64
		want string
	}{{21, wantA}, {22, wantB}} {
		p := workload.RandomProgram(tc.seed)
		rep := mustCompile(t, fresh, p, cfg)
		if !rep.ProgramCacheHit {
			t.Errorf("seed %d: no program hit from mixed directory", tc.seed)
		}
		if p.String() != tc.want {
			t.Errorf("seed %d: mixed-directory compile differs from cold compile", tc.seed)
		}
	}
}

// nanProgram builds a program whose float constant is NaN — the value
// encoding/json cannot carry, which made v1 writers fail the persistent
// put.
func nanProgram(t *testing.T) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("main", ir.ClassFloat)
	b.Label("entry")
	x := b.ConstF(math.NaN())
	y := b.ConstF(1.5)
	b.RetVal(b.FAdd(x, y))
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	return &ir.Program{Funcs: []*ir.Func{b.Func()}}
}

// TestLegacyEncodeFailureSurfaced is the silent-failure regression test:
// under the v1 JSON writers a NaN immediate made every persistent put
// fail without a trace. The failure must now be counted, exported
// through CacheStats and the metrics registry, and carried as a one-shot
// warning — while the compile itself still succeeds memory-only.
func TestLegacyEncodeFailureSurfaced(t *testing.T) {
	reg := obs.NewRegistry()
	d := New(Options{CacheDir: t.TempDir(), Metrics: reg})
	if err := d.DiskCacheErr(); err != nil {
		t.Fatal(err)
	}
	d.Cache().legacyPut = true

	rep := mustCompile(t, d, nanProgram(t), detConfig(Integrated))
	st := d.Cache().Stats()
	if st.EncodeFailures == 0 {
		t.Fatal("NaN artifact produced no encode-failure count")
	}
	if st.EncodeWarning == "" || !strings.Contains(st.EncodeWarning, "encode") {
		t.Errorf("encode warning missing or unhelpful: %q", st.EncodeWarning)
	}
	if rep.Cache.EncodeFailures == 0 {
		t.Error("encode failures absent from the compile report")
	}
	if n := reg.Counter("pipeline.encode_failures").Value(); n == 0 {
		t.Error("pipeline.encode_failures counter not bumped")
	}
	if st.Disk.Writes != 0 {
		t.Errorf("unencodable artifact still wrote %d disk entries", st.Disk.Writes)
	}
}

// TestCodecV2CarriesNaN: the binary codec is total over floats — the
// same NaN program persists, survives a restart, and hits byte-identical.
func TestCodecV2CarriesNaN(t *testing.T) {
	dir := t.TempDir()
	cfg := detConfig(Integrated)

	a := New(Options{CacheDir: dir})
	if err := a.DiskCacheErr(); err != nil {
		t.Fatal(err)
	}
	pa := nanProgram(t)
	mustCompile(t, a, pa, cfg)
	if st := a.Cache().Stats(); st.EncodeFailures != 0 {
		t.Fatalf("v2 encode failed on NaN: %q", st.EncodeWarning)
	}
	want := pa.String()

	b := New(Options{CacheDir: dir})
	pb := nanProgram(t)
	rep := mustCompile(t, b, pb, cfg)
	if !rep.ProgramCacheHit {
		t.Error("NaN program did not hit the persistent tier")
	}
	if pb.String() != want {
		t.Error("NaN program round-tripped differently through the v2 codec")
	}
}
