package pipeline

import (
	"encoding/json"
	"reflect"
	"testing"

	"ccmem/internal/ir"
	"ccmem/internal/sim"
	"ccmem/internal/workload"
)

var allStrategies = []Strategy{NoCCM, PostPass, PostPassInterproc, Integrated}

const detSeeds = 6 // random programs per strategy in the determinism suite

func detConfig(s Strategy) Config {
	cfg := Config{Strategy: s}
	if s != NoCCM {
		cfg.CCMBytes = 512
	}
	return cfg
}

func mustCompile(t *testing.T, d *Driver, p *ir.Program, cfg Config) *Report {
	t.Helper()
	rep, err := d.Compile(p, cfg)
	if err != nil {
		t.Fatalf("Compile(%v): %v", cfg.Strategy, err)
	}
	return rep
}

func runEmit(t *testing.T, p *ir.Program, ccmBytes int64) []sim.Value {
	t.Helper()
	st, err := sim.Run(p, "main", sim.Config{CCMBytes: ccmBytes})
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	return st.Output
}

// TestParallelDeterminism is the headline invariant: compiling the random
// program suite with workers=8 must produce byte-identical ILOC — and
// therefore identical emit traces — to workers=1, for every strategy.
// Run under -race, it doubles as the pool's race-detector workload.
func TestParallelDeterminism(t *testing.T) {
	for _, strat := range allStrategies {
		cfg := detConfig(strat)
		for seed := int64(1); seed <= detSeeds; seed++ {
			seq := New(Options{Workers: 1, DisableCache: true})
			par := New(Options{Workers: 8, DisableCache: true})

			p1 := workload.RandomProgram(seed)
			p8 := workload.RandomProgram(seed)
			if p1.String() != p8.String() {
				t.Fatalf("seed %d: RandomProgram is not deterministic", seed)
			}

			rep1 := mustCompile(t, seq, p1, cfg)
			rep8 := mustCompile(t, par, p8, cfg)

			if got, want := p8.String(), p1.String(); got != want {
				t.Fatalf("strategy %v seed %d: workers=8 ILOC differs from workers=1", strat, seed)
			}
			if !reflect.DeepEqual(rep1.PerFunc, rep8.PerFunc) {
				t.Errorf("strategy %v seed %d: per-func reports differ:\n seq=%+v\n par=%+v",
					strat, seed, rep1.PerFunc, rep8.PerFunc)
			}
			out1 := runEmit(t, p1, cfg.CCMBytes)
			out8 := runEmit(t, p8, cfg.CCMBytes)
			if !reflect.DeepEqual(out1, out8) {
				t.Errorf("strategy %v seed %d: emit traces differ", strat, seed)
			}
		}
	}
}

// TestCacheSecondCompileIsFullHit: an identical (program, Config) pair
// must be answered entirely from the cache — zero new misses — and
// produce byte-identical output.
func TestCacheSecondCompileIsFullHit(t *testing.T) {
	for _, strat := range allStrategies {
		cfg := detConfig(strat)
		d := New(Options{})
		p1 := workload.RandomProgram(7)
		rep1 := mustCompile(t, d, p1, cfg)
		if rep1.ProgramCacheHit {
			t.Fatalf("strategy %v: cold compile reported a program cache hit", strat)
		}

		p2 := workload.RandomProgram(7)
		rep2 := mustCompile(t, d, p2, cfg)
		if !rep2.ProgramCacheHit {
			t.Fatalf("strategy %v: repeat compile missed the program cache", strat)
		}
		if got := rep2.Cache.Misses - rep1.Cache.Misses; got != 0 {
			t.Errorf("strategy %v: repeat compile had %d cache misses, want 0", strat, got)
		}
		if rep2.Cache.Hits <= rep1.Cache.Hits {
			t.Errorf("strategy %v: repeat compile recorded no cache hits", strat)
		}
		for name, fr := range rep2.PerFunc {
			if !fr.FrontCacheHit || !fr.BackCacheHit {
				t.Errorf("strategy %v: func %s not marked cached on repeat compile", strat, name)
			}
		}
		if p1.String() != p2.String() {
			t.Errorf("strategy %v: cached compile output differs from cold compile", strat)
		}
		if !reflect.DeepEqual(rep1.PerFunc, rep2.PerFunc) {
			// Hit flags differ by design; compare everything else.
			for name, fr1 := range rep1.PerFunc {
				fr2 := rep2.PerFunc[name]
				fr2.FrontCacheHit, fr2.BackCacheHit = fr1.FrontCacheHit, fr1.BackCacheHit
				if fr1 != fr2 {
					t.Errorf("strategy %v: report for %s differs on cached compile: %+v vs %+v",
						strat, name, fr1, fr2)
				}
			}
		}
	}
}

// TestCacheMissOnInstrChange: editing one instruction must miss the
// program cache (content addressing), while untouched functions still
// hit the per-function front cache.
func TestCacheMissOnInstrChange(t *testing.T) {
	d := New(Options{})
	cfg := detConfig(PostPassInterproc)

	build := func() *ir.Program { return workload.RandomProgram(11) }
	mustCompile(t, d, build(), cfg)

	p := build()
	// Perturb one immediate in main's entry block: loadi constants feed
	// the emit trace, so the change is semantically visible too.
	f := p.Func("main")
	mutated := false
	f.ForEachInstr(func(b *ir.Block, i int, in *ir.Instr) {
		if !mutated && in.Op == ir.OpLoadI {
			in.Imm++
			mutated = true
		}
	})
	if !mutated {
		t.Fatal("no loadi found in main to mutate")
	}
	rep := mustCompile(t, d, p, cfg)
	if rep.ProgramCacheHit {
		t.Fatal("program cache hit despite a mutated instruction")
	}
	if fr := rep.PerFunc["main"]; fr.FrontCacheHit {
		t.Error("mutated function hit the front cache")
	}
	for name, fr := range rep.PerFunc {
		if name != "main" && !fr.FrontCacheHit {
			t.Errorf("untouched function %s missed the front cache", name)
		}
	}
}

// TestCacheMissOnConfigChange: every Config field must be part of the
// program key.
func TestCacheMissOnConfigChange(t *testing.T) {
	base := Config{Strategy: PostPassInterproc, CCMBytes: 512}
	variants := map[string]Config{
		"Strategy":          {Strategy: PostPass, CCMBytes: 512},
		"CCMBytes":          {Strategy: PostPassInterproc, CCMBytes: 1024},
		"IntRegs":           {Strategy: PostPassInterproc, CCMBytes: 512, IntRegs: 16},
		"FloatRegs":         {Strategy: PostPassInterproc, CCMBytes: 512, FloatRegs: 16},
		"DisableOptimizer":  {Strategy: PostPassInterproc, CCMBytes: 512, DisableOptimizer: true},
		"DisableCompaction": {Strategy: PostPassInterproc, CCMBytes: 512, DisableCompaction: true},
		"CleanupSpills":     {Strategy: PostPassInterproc, CCMBytes: 512, CleanupSpills: true},
	}
	d := New(Options{})
	mustCompile(t, d, workload.RandomProgram(13), base)
	for field, cfg := range variants {
		rep := mustCompile(t, d, workload.RandomProgram(13), cfg)
		if rep.ProgramCacheHit {
			t.Errorf("changing Config.%s still hit the program cache", field)
		}
	}
	// Sanity: the unchanged config does hit.
	if rep := mustCompile(t, d, workload.RandomProgram(13), base); !rep.ProgramCacheHit {
		t.Error("identical recompile missed after variant sweeps")
	}
}

// TestCacheEvictionBound: the cache never exceeds its entry bound and
// counts evictions; correctness is unaffected.
func TestCacheEvictionBound(t *testing.T) {
	const maxEntries = 8
	d := New(Options{Cache: NewCache(maxEntries)})
	cfg := detConfig(NoCCM)
	for seed := int64(1); seed <= 10; seed++ {
		mustCompile(t, d, workload.RandomProgram(seed), cfg)
		if n := d.Cache().Len(); n > maxEntries {
			t.Fatalf("cache holds %d entries, bound is %d", n, maxEntries)
		}
	}
	st := d.Cache().Stats()
	if st.Evictions == 0 {
		t.Error("expected evictions with a 8-entry cache over 10 programs")
	}
	// Evicted artifacts must simply be recomputed, not corrupted.
	p1 := workload.RandomProgram(1)
	d2 := New(Options{DisableCache: true})
	p2 := workload.RandomProgram(1)
	mustCompile(t, d, p1, cfg)
	mustCompile(t, d2, p2, cfg)
	if p1.String() != p2.String() {
		t.Error("post-eviction compile differs from uncached compile")
	}
}

// TestFrontArtifactSharedAcrossStrategies: the front stage is identical
// for the baseline and the post-pass strategies, so sweeping strategies
// over one program reuses the optimize+allocate work.
func TestFrontArtifactSharedAcrossStrategies(t *testing.T) {
	d := New(Options{})
	mustCompile(t, d, workload.RandomProgram(17), detConfig(NoCCM))
	rep := mustCompile(t, d, workload.RandomProgram(17), detConfig(PostPassInterproc))
	if rep.ProgramCacheHit {
		t.Fatal("different strategy unexpectedly hit the program cache")
	}
	for name, fr := range rep.PerFunc {
		if !fr.FrontCacheHit {
			t.Errorf("func %s missed the front cache across a strategy change", name)
		}
	}
}

// TestReportShape: pass stats are present, ordered, and measure real
// work; the report marshals to JSON.
func TestReportShape(t *testing.T) {
	d := New(Options{})
	cfg := Config{Strategy: PostPassInterproc, CCMBytes: 512, CleanupSpills: true}
	rep := mustCompile(t, d, workload.RandomProgram(19), cfg)

	want := []string{PassOptimize, PassRegalloc, PassPostPass, PassCleanup, PassCompact, PassVerify}
	if len(rep.Passes) != len(want) {
		t.Fatalf("got %d passes, want %d (%+v)", len(rep.Passes), len(want), rep.Passes)
	}
	for i, name := range want {
		ps := rep.Passes[i]
		if ps.Name != name {
			t.Errorf("pass %d is %q, want %q", i, ps.Name, name)
		}
		if ps.Runs == 0 {
			t.Errorf("pass %q recorded no runs", name)
		}
		if ps.InstrsBefore == 0 || ps.InstrsAfter == 0 {
			t.Errorf("pass %q recorded no instruction counts", name)
		}
	}
	if rep.WallNanos <= 0 {
		t.Error("report has no wall time")
	}
	if len(rep.PerFunc) == 0 {
		t.Error("report has no per-function entries")
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report does not marshal: %v", err)
	}

	cum := d.Metrics()
	if cum.Compiles != 1 || len(cum.Passes) == 0 {
		t.Errorf("cumulative metrics incomplete: %+v", cum)
	}
}

// TestConfigValidation mirrors the facade's contract.
func TestConfigValidation(t *testing.T) {
	d := New(Options{})
	if _, err := d.Compile(workload.RandomProgram(1), Config{Strategy: PostPass}); err == nil {
		t.Error("PostPass without CCMBytes should fail")
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("ParseStrategy accepted junk")
	}
	for _, s := range allStrategies {
		name := s.String()
		got, err := ParseStrategy(name)
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", name, got, err)
		}
	}
}

// TestWorkloadSuiteThroughPipeline compiles the full named-routine suite
// through the driver once per strategy, sharing one cache, as the
// experiment harness does — an end-to-end exercise of cache sharing
// between real kernels rather than random programs.
func TestWorkloadSuiteThroughPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite compile in -short mode")
	}
	d := New(Options{Workers: 4})
	routines := workload.All()[:12]
	for _, strat := range []Strategy{NoCCM, PostPassInterproc} {
		cfg := detConfig(strat)
		for _, r := range routines {
			p, err := r.Build()
			if err != nil {
				t.Fatalf("%s: %v", r.Name, err)
			}
			rep, err := d.Compile(p, cfg)
			if err != nil {
				t.Fatalf("%s/%v: %v", r.Name, strat, err)
			}
			if _, ok := rep.PerFunc[r.Name]; !ok {
				t.Errorf("%s/%v: routine missing from report", r.Name, strat)
			}
		}
	}
	st := d.Cache().Stats()
	if st.Hits == 0 {
		t.Error("suite sweep recorded no cache hits (front artifacts should be shared)")
	}
}
