package pipeline

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"ccmem/internal/ir"
)

// Codec v2: the binary artifact payload format behind diskKindFrontV2,
// diskKindBackV2, and diskKindProgramV2.
//
// Design rules:
//
//   - Deterministic: one artifact value has exactly one encoding. Field
//     order is fixed (mirroring the canonical hash order of hash.go),
//     map-shaped data is emitted sorted by key, and the decoder rejects
//     any non-canonical input (unsorted reports, trailing bytes), so
//     decode∘encode and encode∘decode are both identities on the accepted
//     sets. The determinism matrix relies on cache bytes being a pure
//     function of the artifact.
//   - Total for floats: FImm travels as its IEEE-754 bit pattern
//     (math.Float64bits), so NaN immediates — which encoding/json cannot
//     carry and which made v1 writers silently skip the disk tier —
//     round-trip exactly, payload bits included.
//   - Hostile-input safe: every read is bounds-checked, every element
//     count is validated against the bytes remaining before allocation,
//     and no decode path panics. The disk entry checksum already rejects
//     bit rot; this layer must additionally survive a checksum-consistent
//     payload from a buggy or foreign writer.
//
// All integers are little-endian and fixed-width: lengths and register
// numbers are uint32 (registers in two's complement, so NoReg = -1 is
// 0xFFFFFFFF), wide counters are 64-bit. Every payload starts with a
// single format byte, codecV2Version, giving future revisions an in-band
// escape without burning another disk kind.
const codecV2Version = 1

// ---- encoder ----

// bw is a tiny append-only buffer writer. Encoding cannot fail: every
// value the pipeline produces is representable (that is the point of v2).
type bw struct {
	b []byte
}

func (w *bw) u8(v uint8) { w.b = append(w.b, v) }

func (w *bw) u32(v uint32) {
	w.b = binary.LittleEndian.AppendUint32(w.b, v)
}

func (w *bw) u64(v uint64) {
	w.b = binary.LittleEndian.AppendUint64(w.b, v)
}

func (w *bw) i64(v int64) { w.u64(uint64(v)) }

func (w *bw) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *bw) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func (w *bw) str(s string) {
	w.u32(uint32(len(s)))
	w.b = append(w.b, s...)
}

func (w *bw) reg(r ir.Reg) { w.u32(uint32(int32(r))) }

func (w *bw) fn(f *ir.Func) {
	w.str(f.Name)
	w.u32(uint32(len(f.Params)))
	for _, p := range f.Params {
		w.reg(p)
	}
	w.u8(uint8(f.RetClass))
	w.u32(uint32(len(f.Regs)))
	for _, ri := range f.Regs {
		w.u8(uint8(ri.Class))
		w.str(ri.Name)
	}
	w.bool(f.Allocated)
	w.u32(uint32(f.NumInt))
	w.u32(uint32(f.NumFloat))
	w.i64(f.FrameBytes)
	w.i64(f.CCMBytes)
	w.u32(uint32(len(f.Blocks)))
	for _, b := range f.Blocks {
		w.str(b.Name)
		w.u32(uint32(len(b.Instrs)))
		for i := range b.Instrs {
			in := &b.Instrs[i]
			w.u8(uint8(in.Op))
			w.reg(in.Dst)
			w.u32(uint32(len(in.Args)))
			for _, a := range in.Args {
				w.reg(a)
			}
			w.i64(in.Imm)
			w.f64(in.FImm)
			w.str(in.Sym)
			w.str(in.Then)
			w.str(in.Else)
		}
	}
}

func (w *bw) report(fr *FuncReport) {
	w.i64(fr.SpillBytesNaive)
	w.i64(fr.SpillBytesCompacted)
	w.i64(fr.CCMBytes)
	w.i64(int64(fr.SpilledRanges))
	w.i64(int64(fr.PromotedWebs))
	w.i64(int64(fr.SpillWebs))
	w.i64(int64(fr.Instrs))
	w.bool(fr.FrontCacheHit)
	w.bool(fr.BackCacheHit)
	w.i64(int64(fr.Attempts))
	w.str(fr.Degraded)
	w.str(fr.FailedPass)
	w.str(fr.Error)
}

func encodeFrontV2(a *frontArtifact) []byte {
	w := &bw{}
	w.u8(codecV2Version)
	w.fn(a.fn)
	w.report(&a.fr)
	return w.b
}

func encodeBackV2(a *backArtifact) []byte {
	w := &bw{}
	w.u8(codecV2Version)
	w.fn(a.fn)
	w.i64(a.compactAfter)
	w.i64(int64(a.webs))
	return w.b
}

func encodeProgramV2(a *programArtifact) []byte {
	w := &bw{}
	w.u8(codecV2Version)
	w.u32(uint32(len(a.funcs)))
	for _, f := range a.funcs {
		w.fn(f)
	}
	names := make([]string, 0, len(a.perFunc))
	for name := range a.perFunc {
		names = append(names, name)
	}
	sort.Strings(names)
	w.u32(uint32(len(names)))
	for _, name := range names {
		w.str(name)
		fr := a.perFunc[name]
		w.report(&fr)
	}
	return w.b
}

// ---- decoder ----

// br is a bounds-checked buffer reader. Every method returns an error
// instead of panicking; errV2 builds them with position context.
type br struct {
	b   []byte
	off int
}

func errV2(off int, format string, args ...any) error {
	return fmt.Errorf("pipeline: codec v2 at byte %d: %s", off, fmt.Sprintf(format, args...))
}

func (r *br) remaining() int { return len(r.b) - r.off }

func (r *br) u8() (uint8, error) {
	if r.remaining() < 1 {
		return 0, errV2(r.off, "truncated u8")
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *br) u32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, errV2(r.off, "truncated u32")
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *br) u64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, errV2(r.off, "truncated u64")
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

func (r *br) i64() (int64, error) {
	v, err := r.u64()
	return int64(v), err
}

func (r *br) f64() (float64, error) {
	v, err := r.u64()
	return math.Float64frombits(v), err
}

func (r *br) bool() (bool, error) {
	v, err := r.u8()
	if err != nil {
		return false, err
	}
	// Canonical booleans only: accepting 2..255 as true would give one
	// artifact multiple encodings.
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, errV2(r.off-1, "non-canonical bool %d", v)
}

func (r *br) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if int64(n) > int64(r.remaining()) {
		return "", errV2(r.off, "string length %d exceeds %d remaining bytes", n, r.remaining())
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *br) reg() (ir.Reg, error) {
	v, err := r.u32()
	return ir.Reg(int32(v)), err
}

// count reads an element count and validates it against the bytes left,
// given each element's minimum encoded size, so a hostile length prefix
// cannot drive a giant allocation.
func (r *br) count(minElemSize int) (int, error) {
	n, err := r.u32()
	if err != nil {
		return 0, err
	}
	if int64(n)*int64(minElemSize) > int64(r.remaining()) {
		return 0, errV2(r.off, "count %d exceeds remaining input", n)
	}
	return int(n), nil
}

// Minimum encoded sizes used for count validation.
const (
	minRegInfoV2 = 1 + 4 // class + empty name
	minInstrV2   = 1 + 4 + 4 + 8 + 8 + 4 + 4 + 4
	minBlockV2   = 4 + 4 // empty name + instr count
	minFuncV2    = 4 + 4 + 1 + 4 + 1 + 4 + 4 + 8 + 8 + 4
	minReportV2  = 7*8 + 2 + 8 + 3*4
)

func (r *br) fn() (*ir.Func, error) {
	f := &ir.Func{}
	var err error
	if f.Name, err = r.str(); err != nil {
		return nil, err
	}
	np, err := r.count(4)
	if err != nil {
		return nil, err
	}
	if np > 0 {
		f.Params = make([]ir.Reg, np)
		for i := range f.Params {
			if f.Params[i], err = r.reg(); err != nil {
				return nil, err
			}
		}
	}
	rc, err := r.u8()
	if err != nil {
		return nil, err
	}
	f.RetClass = ir.Class(rc)
	nr, err := r.count(minRegInfoV2)
	if err != nil {
		return nil, err
	}
	if nr > 0 {
		f.Regs = make([]ir.RegInfo, nr)
		for i := range f.Regs {
			cl, err := r.u8()
			if err != nil {
				return nil, err
			}
			f.Regs[i].Class = ir.Class(cl)
			if f.Regs[i].Name, err = r.str(); err != nil {
				return nil, err
			}
		}
	}
	if f.Allocated, err = r.bool(); err != nil {
		return nil, err
	}
	ni, err := r.u32()
	if err != nil {
		return nil, err
	}
	f.NumInt = int(ni)
	nf, err := r.u32()
	if err != nil {
		return nil, err
	}
	f.NumFloat = int(nf)
	if f.FrameBytes, err = r.i64(); err != nil {
		return nil, err
	}
	if f.CCMBytes, err = r.i64(); err != nil {
		return nil, err
	}
	nb, err := r.count(minBlockV2)
	if err != nil {
		return nil, err
	}
	if nb > 0 {
		f.Blocks = make([]*ir.Block, nb)
	}
	for bi := 0; bi < nb; bi++ {
		b := &ir.Block{}
		if b.Name, err = r.str(); err != nil {
			return nil, err
		}
		nin, err := r.count(minInstrV2)
		if err != nil {
			return nil, err
		}
		if nin > 0 {
			b.Instrs = make([]ir.Instr, nin)
		}
		for ii := 0; ii < nin; ii++ {
			in := &b.Instrs[ii]
			op, err := r.u8()
			if err != nil {
				return nil, err
			}
			in.Op = ir.Op(op)
			if in.Dst, err = r.reg(); err != nil {
				return nil, err
			}
			na, err := r.count(4)
			if err != nil {
				return nil, err
			}
			if na > 0 {
				in.Args = make([]ir.Reg, na)
				for ai := range in.Args {
					if in.Args[ai], err = r.reg(); err != nil {
						return nil, err
					}
				}
			}
			if in.Imm, err = r.i64(); err != nil {
				return nil, err
			}
			if in.FImm, err = r.f64(); err != nil {
				return nil, err
			}
			if in.Sym, err = r.str(); err != nil {
				return nil, err
			}
			if in.Then, err = r.str(); err != nil {
				return nil, err
			}
			if in.Else, err = r.str(); err != nil {
				return nil, err
			}
		}
		f.Blocks[bi] = b
	}
	return f, nil
}

func (r *br) report() (FuncReport, error) {
	var fr FuncReport
	var err error
	if fr.SpillBytesNaive, err = r.i64(); err != nil {
		return fr, err
	}
	if fr.SpillBytesCompacted, err = r.i64(); err != nil {
		return fr, err
	}
	if fr.CCMBytes, err = r.i64(); err != nil {
		return fr, err
	}
	ints := []*int{&fr.SpilledRanges, &fr.PromotedWebs, &fr.SpillWebs, &fr.Instrs}
	for _, p := range ints {
		v, err := r.i64()
		if err != nil {
			return fr, err
		}
		*p = int(v)
	}
	if fr.FrontCacheHit, err = r.bool(); err != nil {
		return fr, err
	}
	if fr.BackCacheHit, err = r.bool(); err != nil {
		return fr, err
	}
	att, err := r.i64()
	if err != nil {
		return fr, err
	}
	fr.Attempts = int(att)
	if fr.Degraded, err = r.str(); err != nil {
		return fr, err
	}
	if fr.FailedPass, err = r.str(); err != nil {
		return fr, err
	}
	if fr.Error, err = r.str(); err != nil {
		return fr, err
	}
	return fr, nil
}

func (r *br) version() error {
	v, err := r.u8()
	if err != nil {
		return err
	}
	if v != codecV2Version {
		return errV2(0, "unknown format revision %d", v)
	}
	return nil
}

// done rejects trailing bytes: a canonical payload is consumed exactly.
func (r *br) done() error {
	if r.remaining() != 0 {
		return errV2(r.off, "%d trailing bytes", r.remaining())
	}
	return nil
}

func decodeFrontV2(payload []byte) (*frontArtifact, error) {
	r := &br{b: payload}
	if err := r.version(); err != nil {
		return nil, err
	}
	f, err := r.fn()
	if err != nil {
		return nil, err
	}
	fr, err := r.report()
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	if err := validateFunc(f); err != nil {
		return nil, err
	}
	f.Renumber()
	return &frontArtifact{fn: f, fr: fr}, nil
}

func decodeBackV2(payload []byte) (*backArtifact, error) {
	r := &br{b: payload}
	if err := r.version(); err != nil {
		return nil, err
	}
	f, err := r.fn()
	if err != nil {
		return nil, err
	}
	compactAfter, err := r.i64()
	if err != nil {
		return nil, err
	}
	webs, err := r.i64()
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	if err := validateFunc(f); err != nil {
		return nil, err
	}
	f.Renumber()
	return &backArtifact{fn: f, compactAfter: compactAfter, webs: int(webs)}, nil
}

func decodeProgramV2(payload []byte) (*programArtifact, error) {
	r := &br{b: payload}
	if err := r.version(); err != nil {
		return nil, err
	}
	nf, err := r.count(minFuncV2)
	if err != nil {
		return nil, err
	}
	if nf == 0 {
		return nil, fmt.Errorf("pipeline: disk program artifact has no functions")
	}
	funcs := make([]*ir.Func, nf)
	byName := make(map[string]bool, nf)
	for i := range funcs {
		if funcs[i], err = r.fn(); err != nil {
			return nil, err
		}
		if byName[funcs[i].Name] {
			return nil, fmt.Errorf("pipeline: disk program artifact repeats function %q", funcs[i].Name)
		}
		byName[funcs[i].Name] = true
	}
	nr, err := r.count(minReportV2 + 4)
	if err != nil {
		return nil, err
	}
	perFunc := make(map[string]FuncReport, nr)
	prev := ""
	for i := 0; i < nr; i++ {
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		// Strictly ascending names: canonical order, no duplicates.
		if i > 0 && name <= prev {
			return nil, errV2(r.off, "report names out of canonical order (%q after %q)", name, prev)
		}
		prev = name
		fr, err := r.report()
		if err != nil {
			return nil, err
		}
		perFunc[name] = fr
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	// Validation is all-or-nothing: no function is touched (Renumber)
	// until every function and the report map have been checked.
	for _, f := range funcs {
		if err := validateFunc(f); err != nil {
			return nil, err
		}
	}
	if err := checkPerFunc(funcs, perFunc); err != nil {
		return nil, err
	}
	for _, f := range funcs {
		f.Renumber()
	}
	return &programArtifact{funcs: funcs, perFunc: perFunc}, nil
}
