package pipeline

import (
	"testing"

	"ccmem/internal/ir"
	"ccmem/internal/workload"
)

// TestAllocGuardProgramHit pins the clone-free cache-hit contract: a
// program-tier memory hit hands out the frozen artifact functions by
// reference, so its allocation count is a small constant (hash + report
// plumbing) no matter how large the program is. Input programs are
// cloned outside the measured region, so the measurement sees only the
// hit path itself; deep-cloning the artifact on that path costs a
// program-sized multiple of the budget and trips the guard immediately.
func TestAllocGuardProgramHit(t *testing.T) {
	p0 := workload.RandomProgram(31)
	d := New(Options{})
	cfg := detConfig(PostPassInterproc)
	mustCompile(t, d, p0.Clone(), cfg) // prime the program tier

	const runs = 10
	clones := make([]*ir.Program, 0, runs+2)
	for i := 0; i < runs+2; i++ { // AllocsPerRun adds one warm-up call
		clones = append(clones, p0.Clone())
	}
	cloneCost := testing.AllocsPerRun(5, func() { _ = p0.Clone() })

	next := 0
	hitCost := testing.AllocsPerRun(runs, func() {
		rep, err := d.Compile(clones[next], cfg)
		next++
		if err != nil {
			t.Fatal(err)
		}
		if !rep.ProgramCacheHit {
			t.Fatal("compile was not a program-tier hit")
		}
	})
	t.Logf("program hit: %.0f allocs/op (one deep clone alone: %.0f)", hitCost, cloneCost)
	if hitCost >= cloneCost {
		t.Errorf("program hit allocates %.0f/op, at least one deep clone's worth (%.0f) — hits are no longer clone-free", hitCost, cloneCost)
	}
	// Absolute ceiling with headroom over the measured constant. The
	// clone this guard excludes grows with program size, so the fixed
	// ceiling stays discriminating on any workload this large.
	const ceiling = 200
	if hitCost > ceiling {
		t.Errorf("program hit allocates %.0f/op, over the %d ceiling", hitCost, ceiling)
	}
}
