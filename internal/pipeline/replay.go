package pipeline

import (
	"context"
	"encoding/json"
	"fmt"

	"ccmem/internal/ir"
	"ccmem/internal/oracle"
	"ccmem/internal/repro"
)

// marshalConfig encodes cfg for a repro bundle. Injected passes are
// closures and are excluded (tagged json:"-"); a bundle replays the
// built-in pass sequence only.
func marshalConfig(cfg Config) json.RawMessage {
	data, err := json.Marshal(cfg)
	if err != nil {
		// Config is a plain struct of scalars; this cannot fail, but a
		// bundle with no config beats no bundle.
		return nil
	}
	return data
}

// Replay re-runs a crash repro bundle and returns the reproduced failure,
// or nil if the toolchain no longer faults on it. Compile bundles replay
// single-threaded, uncached, in Strict mode with per-pass verification,
// so a latent fault surfaces as a *CompileError rather than being
// degraded away; injected (experimental) passes cannot be serialized and
// are not replayed. Run-kind bundles are executed by the public facade,
// not here.
func Replay(b *repro.Bundle) error {
	switch b.Kind {
	case repro.KindParse:
		// The finding was "the parser crashed or mis-round-tripped": a
		// graceful parse error is a pass.
		p, err := ir.Parse(b.Program)
		if err != nil {
			return nil
		}
		if err := ir.VerifyProgram(p, ir.VerifyOptions{AllowPhi: true}); err != nil {
			return nil
		}
		text := p.String()
		q, err := ir.Parse(text)
		if err != nil {
			return fmt.Errorf("replay: printed program does not reparse: %w", err)
		}
		if q.String() != text {
			return fmt.Errorf("replay: print → parse → print is not a fixed point")
		}
		return nil
	case repro.KindCompile:
		p, err := ir.Parse(b.Program)
		if err != nil {
			return fmt.Errorf("replay: bundle program does not parse: %w", err)
		}
		if err := ir.VerifyProgram(p, ir.VerifyOptions{}); err != nil {
			return fmt.Errorf("replay: bundle program does not verify: %w", err)
		}
		var cfg Config
		if len(b.Config) > 0 {
			if err := json.Unmarshal(b.Config, &cfg); err != nil {
				return fmt.Errorf("replay: bundle config: %w", err)
			}
		}
		cfg.Strict = true
		cfg.VerifyPasses = true
		cfg.ReproDir = ""
		cfg.FuncTimeout = 0 // replays must be deterministic
		cfg.InjectFront = nil
		d := New(Options{Workers: 1, DisableCache: true})
		_, err = d.Compile(p, cfg)
		return err
	case repro.KindMiscompile:
		// The finding was "these two programs compute different things":
		// re-run the exact differential check that fired. The divergence
		// re-confirming is the pass; a clean check means the recorded
		// miscompile is no longer observable, which a regression corpus
		// must flag.
		pre, err := ir.Parse(b.Program)
		if err != nil {
			return fmt.Errorf("replay: bundle pre program does not parse: %w", err)
		}
		post, err := ir.Parse(b.Post)
		if err != nil {
			return fmt.Errorf("replay: bundle post program does not parse: %w", err)
		}
		var cfg Config
		if len(b.Config) > 0 {
			if err := json.Unmarshal(b.Config, &cfg); err != nil {
				return fmt.Errorf("replay: bundle config: %w", err)
			}
		}
		res, err := oracle.Check(context.Background(), pre, post, oracle.Options{
			Seed:     b.Seed,
			Vectors:  cfg.DiffVectors,
			CCMBytes: cfg.CCMBytes,
		})
		if err != nil {
			return fmt.Errorf("replay: differential check: %w", err)
		}
		if res.Equivalent() {
			return fmt.Errorf("replay: recorded miscompile no longer reproduces (programs now agree on %d runs)", res.Runs)
		}
		return nil
	case repro.KindRun:
		return fmt.Errorf("replay: run bundles replay through the ccm facade, not the pipeline")
	}
	return fmt.Errorf("replay: unknown bundle kind %q", b.Kind)
}
