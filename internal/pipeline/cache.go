package pipeline

import (
	"container/list"
	"sync"

	"ccmem/internal/ir"
)

// DefaultCacheEntries bounds a driver's private cache. Each entry is one
// compiled artifact (a function body after a stage, or a whole program),
// so the bound is a count, not bytes; the suite's largest sweeps stay
// well under it while runaway callers evict in LRU order.
const DefaultCacheEntries = 4096

// digest is a content address: SHA-256 over the canonical encoding
// produced in hash.go.
type digest [32]byte

// Cache is a bounded, thread-safe, content-addressed artifact store with
// LRU eviction. Artifacts are stored and returned as deep copies by the
// driver, so cached state is never aliased by a live compilation.
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[digest]*list.Element
	lru     *list.List // front = most recently used

	hits      int64
	misses    int64
	evictions int64
}

type cacheItem struct {
	key digest
	val any
}

// NewCache builds a cache bounded to maxEntries artifacts (<=0 uses
// DefaultCacheEntries).
func NewCache(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	return &Cache{
		max:     maxEntries,
		entries: make(map[digest]*list.Element),
		lru:     list.New(),
	}
}

func (c *Cache) get(k digest) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(e)
	return e.Value.(*cacheItem).val, true
}

func (c *Cache) put(k digest, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		e.Value.(*cacheItem).val = v
		c.lru.MoveToFront(e)
		return
	}
	c.entries[k] = c.lru.PushFront(&cacheItem{key: k, val: v})
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheItem).key)
		c.evictions++
	}
}

// Len returns the number of cached artifacts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns a counter snapshot.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.lru.Len(),
	}
}

// frontArtifact is a function after the front stage (optimize +
// allocate), plus the report fields those passes produced.
type frontArtifact struct {
	fn *ir.Func
	fr FuncReport // naive spill bytes, spilled ranges, integrated CCM use
}

// backArtifact is a function after the back stage (cleanup + compaction).
type backArtifact struct {
	fn           *ir.Func
	compactAfter int64
	webs         int
}

// programArtifact is a fully compiled program: final function bodies in
// input order plus the complete per-function report.
type programArtifact struct {
	funcs   []*ir.Func
	perFunc map[string]FuncReport
}
