package pipeline

import (
	"container/list"
	"sync"

	"ccmem/internal/diskcache"
	"ccmem/internal/ir"
)

// DefaultCacheEntries bounds a driver's private cache. Each entry is one
// compiled artifact (a function body after a stage, or a whole program),
// so the bound is a count, not bytes; the suite's largest sweeps stay
// well under it while runaway callers evict in LRU order.
const DefaultCacheEntries = 4096

// digest is a content address: SHA-256 over the canonical encoding
// produced in hash.go.
type digest [32]byte

// Cache is a bounded, thread-safe, content-addressed artifact store with
// LRU eviction, optionally backed by a persistent disk tier
// (internal/diskcache). The read path is memory → disk → miss: a disk
// hit is decoded, verified, and promoted into memory; a decode failure
// quarantines the on-disk entry and reads as a miss. The write path is
// write-through: artifacts are stored in memory and, when a disk tier is
// attached and healthy, persisted crash-safely. A failing disk therefore
// degrades this cache to exactly its memory-only behavior.
//
// Artifacts are stored and returned as deep copies by the driver, so
// cached state is never aliased by a live compilation.
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[digest]*list.Element
	lru     *list.List // front = most recently used
	disk    *diskcache.Cache

	hits      int64
	misses    int64
	evictions int64
}

type cacheItem struct {
	key digest
	val any
}

// NewCache builds a cache bounded to maxEntries artifacts (<=0 uses
// DefaultCacheEntries).
func NewCache(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	return &Cache{
		max:     maxEntries,
		entries: make(map[digest]*list.Element),
		lru:     list.New(),
	}
}

// AttachDisk backs the cache with a persistent tier. Safe to call on a
// cache already in use; passing nil detaches.
func (c *Cache) AttachDisk(d *diskcache.Cache) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.disk = d
}

// Disk returns the attached persistent tier (nil when memory-only).
func (c *Cache) Disk() *diskcache.Cache {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.disk
}

func (c *Cache) get(k digest, kind uint32) (any, bool) {
	c.mu.Lock()
	if e, ok := c.entries[k]; ok {
		c.hits++
		c.lru.MoveToFront(e)
		v := e.Value.(*cacheItem).val
		c.mu.Unlock()
		return v, true
	}
	c.misses++
	disk := c.disk
	c.mu.Unlock()
	if disk == nil {
		return nil, false
	}
	payload, ok := disk.Get(diskcache.Key(k), kind)
	if !ok {
		return nil, false
	}
	v, err := decodeArtifact(kind, payload)
	if err != nil {
		// The entry's bytes verified but its payload is garbage: a
		// foreign or buggy writer. Withdraw it and read as a miss.
		disk.ReportDecodeFailure(diskcache.Key(k))
		return nil, false
	}
	// Promote into memory so repeat lookups skip the disk; no counters —
	// the disk tier already recorded the hit.
	c.mu.Lock()
	c.insertLocked(k, v)
	c.mu.Unlock()
	return v, true
}

func (c *Cache) put(k digest, kind uint32, v any) {
	c.mu.Lock()
	c.insertLocked(k, v)
	disk := c.disk
	c.mu.Unlock()
	if disk == nil {
		return
	}
	payload, err := encodeArtifact(kind, v)
	if err != nil {
		return // unencodable artifact: memory-only, by design
	}
	disk.Put(diskcache.Key(k), kind, payload)
}

// insertLocked adds or refreshes a memory entry and evicts over the
// bound. Caller holds c.mu.
func (c *Cache) insertLocked(k digest, v any) {
	if e, ok := c.entries[k]; ok {
		e.Value.(*cacheItem).val = v
		c.lru.MoveToFront(e)
		return
	}
	c.entries[k] = c.lru.PushFront(&cacheItem{key: k, val: v})
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheItem).key)
		c.evictions++
	}
}

// Len returns the number of artifacts in the memory tier.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns a counter snapshot across both tiers. The top-level
// Hits/Misses describe the cache as a whole (an artifact served from
// either tier is a hit; a miss means it had to be compiled), while
// Memory and Disk break each tier out. HitRate is Hits/(Hits+Misses),
// 0 when the cache has never been consulted.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.lru.Len(),
		Memory: TierStats{
			Hits:      c.hits,
			Misses:    c.misses,
			Evictions: c.evictions,
			Entries:   c.lru.Len(),
		},
	}
	if c.disk != nil {
		ds := c.disk.Stats()
		st.Disk = DiskTierStats{
			TierStats: TierStats{
				Hits:      ds.Hits,
				Misses:    ds.Misses,
				Evictions: ds.Evictions,
				Entries:   ds.Entries,
			},
			Writes:           ds.Writes,
			Corruptions:      ds.Corruptions,
			Quarantines:      ds.Quarantines,
			ReadErrors:       ds.ReadErrors,
			WriteErrors:      ds.WriteErrors,
			SweptTemps:       ds.SweptTemps,
			DegradedToMemory: ds.DegradedToMemory,
			Bytes:            ds.Bytes,
			Degraded:         ds.Degraded,
		}
		// Every memory miss consulted the disk; what the disk also missed
		// is the cache's true miss count.
		st.Hits += ds.Hits
		st.Misses = ds.Misses
	}
	if lookups := st.Hits + st.Misses; lookups > 0 {
		st.HitRate = float64(st.Hits) / float64(lookups)
	}
	return st
}

// frontArtifact is a function after the front stage (optimize +
// allocate), plus the report fields those passes produced.
type frontArtifact struct {
	fn *ir.Func
	fr FuncReport // naive spill bytes, spilled ranges, integrated CCM use
}

// backArtifact is a function after the back stage (cleanup + compaction).
type backArtifact struct {
	fn           *ir.Func
	compactAfter int64
	webs         int
}

// programArtifact is a fully compiled program: final function bodies in
// input order plus the complete per-function report.
type programArtifact struct {
	funcs   []*ir.Func
	perFunc map[string]FuncReport
}
