package pipeline

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ccmem/internal/diskcache"
	"ccmem/internal/ir"
	"ccmem/internal/obs"
	"ccmem/internal/remotecache"
)

// DefaultCacheEntries bounds a driver's private cache. Each entry is one
// compiled artifact (a function body after a stage, or a whole program),
// so the bound is a count, not bytes; the suite's largest sweeps stay
// well under it while runaway callers evict in LRU order.
const DefaultCacheEntries = 4096

// digest is a content address: SHA-256 over the canonical encoding
// produced in hash.go.
type digest [32]byte

// Cache is a bounded, thread-safe, content-addressed artifact store with
// LRU eviction, optionally backed by a persistent disk tier
// (internal/diskcache) and a remote HTTP tier (internal/remotecache).
// The read path is memory → disk → remote → miss: a lower-tier hit is
// decoded, verified, and promoted into every tier above it; a decode
// failure withdraws the entry (disk quarantine / remote reclassify) and
// reads as a miss. Persistent tiers are probed for the current binary
// payload kind first and the legacy JSON kind second, so a cache
// directory (or remote fleet) written by a previous release keeps
// serving hits. The write path is write-through to memory and disk and
// write-behind to the remote tier (asynchronous, bounded, never blocking
// a compile). A failing disk or a sick remote tier therefore degrades
// this cache to exactly its upper-tier behavior.
//
// Artifacts are immutable shared state: put freezes every ir.Func in the
// stored artifact (ir.Func.Freeze), and get hands artifacts out by
// reference — no defensive deep copy on the hit path. A consumer that
// wants to mutate a cached function must take ir.Func.Clone first; the
// pipeline does so lazily, at the first pass that actually rewrites the
// function, so a program-tier hit performs zero deep clones.
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[digest]*list.Element
	lru     *list.List // front = most recently used
	disk    *diskcache.Cache
	remote  remotecache.Tier
	reg     *obs.Registry

	// legacyPut makes put write persistent entries in the legacy JSON
	// format (kinds 1-3). Test seam only: it is how the tests fabricate a
	// previous-release cache directory — and JSON's encode failures —
	// through the real write path.
	legacyPut bool

	hits      int64
	misses    int64
	evictions int64

	// Encode-failure accounting: artifacts that could not be rendered
	// for the persistent tiers and silently stayed memory-only used to
	// be invisible; now they are counted and the first failure is kept
	// as a one-shot warning surfaced through CacheStats.
	encodeFailures atomic.Int64
	warnOnce       sync.Once
	encodeWarning  atomic.Value // string

	// Whole-cache outcome counters, recorded at lookup resolution: a
	// lookup served from either tier is one wholeHit, a lookup that fell
	// through both tiers (or whose disk payload failed to decode) is one
	// wholeMiss. Kept separately from the per-tier counters because no
	// combination of tier counters reconstructs them: the disk tier can
	// attach late, detach, or degrade to memory-only mid-run, and its
	// counters then stop describing this cache's lookups.
	wholeHits   atomic.Int64
	wholeMisses atomic.Int64
}

type cacheItem struct {
	key digest
	val any
}

// NewCache builds a cache bounded to maxEntries artifacts (<=0 uses
// DefaultCacheEntries).
func NewCache(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	return &Cache{
		max:     maxEntries,
		entries: make(map[digest]*list.Element),
		lru:     list.New(),
	}
}

// AttachDisk backs the cache with a persistent tier. Safe to call on a
// cache already in use; passing nil detaches.
func (c *Cache) AttachDisk(d *diskcache.Cache) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.disk = d
}

// Disk returns the attached persistent tier (nil when memory-only).
func (c *Cache) Disk() *diskcache.Cache {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.disk
}

// AttachRemote backs the cache with a remote HTTP tier — a single
// remotecache.Client or a replicated Fleet, consulted after a disk
// miss. Safe to call on a cache already in use; nil detaches.
func (c *Cache) AttachRemote(r remotecache.Tier) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.remote = r
}

// Remote returns the attached remote tier (nil when none).
func (c *Cache) Remote() remotecache.Tier {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.remote
}

// SetMetrics attaches a counter registry; encode failures are reported
// to it as pipeline.encode_failures. Nil detaches.
func (c *Cache) SetMetrics(reg *obs.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reg = reg
}

// kindName labels an artifact kind in spans.
func kindName(kind uint32) string {
	switch kind {
	case diskKindFront:
		return "front-v1"
	case diskKindBack:
		return "back-v1"
	case diskKindProgram:
		return "program-v1"
	case diskKindFrontV2:
		return "front"
	case diskKindBackV2:
		return "back"
	case diskKindProgramV2:
		return "program"
	}
	return "unknown"
}

// freezeArtifact marks every function in a cached artifact immutable;
// from then on the artifact may be shared by reference across compiles
// and workers (see the Cache doc comment).
func freezeArtifact(v any) {
	switch a := v.(type) {
	case *frontArtifact:
		if a.fn != nil {
			a.fn.Freeze()
		}
	case *backArtifact:
		if a.fn != nil {
			a.fn.Freeze()
		}
	case *programArtifact:
		for _, f := range a.funcs {
			if f != nil {
				f.Freeze()
			}
		}
	}
}

// get looks k up memory-first, then disk, then remote. sh, when
// non-nil, receives one span per tier consulted ("cache:mem",
// "cache:disk", "cache:remote") with kind and result attributes.
func (c *Cache) get(k digest, kind uint32, sh *obs.Shard) (any, bool) {
	var t0 time.Time
	if sh != nil {
		t0 = time.Now()
	}
	c.mu.Lock()
	if e, ok := c.entries[k]; ok {
		c.hits++
		c.wholeHits.Add(1)
		c.lru.MoveToFront(e)
		v := e.Value.(*cacheItem).val
		c.mu.Unlock()
		if sh != nil {
			sh.Record("cache:mem", "cache", t0, time.Since(t0),
				obs.Attr{Key: "kind", Value: kindName(kind)}, obs.Attr{Key: "result", Value: "hit"})
		}
		return v, true
	}
	c.misses++
	disk := c.disk
	remote := c.remote
	c.mu.Unlock()
	if sh != nil {
		sh.Record("cache:mem", "cache", t0, time.Since(t0),
			obs.Attr{Key: "kind", Value: kindName(kind)}, obs.Attr{Key: "result", Value: "miss"})
	}
	legacy := legacyKind(kind)
	if disk != nil {
		var t1 time.Time
		if sh != nil {
			t1 = time.Now()
		}
		diskSpan := func(result string) {
			if sh != nil {
				sh.Record("cache:disk", "cache", t1, time.Since(t1),
					obs.Attr{Key: "kind", Value: kindName(kind)}, obs.Attr{Key: "result", Value: result})
			}
		}
		// One read serves both codec versions: GetAny accepts the binary
		// kind and the legacy JSON kind without quarantining either, so a
		// directory written by a previous release keeps serving hits.
		payload, gotKind, ok := disk.GetAny(diskcache.Key(k), kind, legacy)
		if ok {
			v, err := decodeArtifact(gotKind, payload)
			if err != nil {
				// The entry's bytes verified but its payload is garbage: a
				// foreign or buggy writer. Withdraw it and read as a miss
				// (the remote tier may still have a good copy below).
				disk.ReportDecodeFailure(diskcache.Key(k))
				diskSpan("miss")
			} else {
				freezeArtifact(v)
				c.wholeHits.Add(1)
				diskSpan("hit")
				// Promote into memory so repeat lookups skip the disk; no
				// counters — the disk tier already recorded the hit.
				c.mu.Lock()
				c.insertLocked(k, v)
				c.mu.Unlock()
				return v, true
			}
		} else {
			diskSpan("miss")
		}
	}
	if remote == nil {
		c.wholeMisses.Add(1)
		return nil, false
	}
	var t2 time.Time
	if sh != nil {
		t2 = time.Now()
	}
	remoteSpan := func(result string) {
		if sh != nil {
			sh.Record("cache:remote", "cache", t2, time.Since(t2),
				obs.Attr{Key: "kind", Value: kindName(kind)}, obs.Attr{Key: "result", Value: result})
		}
	}
	// The remote protocol addresses entries by (key, kind), so version
	// fallback is a second lookup: current kind first, legacy JSON kind
	// only after a miss. An up-to-date server answers the legacy probe
	// from the same store; a previous-release server quarantines its own
	// entry on the unknown-kind probe and both probes miss — a clean,
	// self-healing miss (the recompile re-stores the entry as v2), never
	// a wrong artifact.
	gotKind := kind
	payload, ok := remote.Get(diskcache.Key(k), kind)
	if !ok && legacy != kind {
		gotKind = legacy
		payload, ok = remote.Get(diskcache.Key(k), legacy)
	}
	if !ok {
		c.wholeMisses.Add(1)
		remoteSpan("miss")
		return nil, false
	}
	v, err := decodeArtifact(gotKind, payload)
	if err != nil {
		// Checksum-consistent bytes from a buggy writer: reclassify the
		// remote hit as a miss and fall through to a real compile.
		remote.ReportDecodeFailure()
		c.wholeMisses.Add(1)
		remoteSpan("miss")
		return nil, false
	}
	freezeArtifact(v)
	c.wholeHits.Add(1)
	remoteSpan("hit")
	// Promote into memory and disk so repeat lookups — and future
	// process restarts — stop paying for the network. The payload keeps
	// the kind it was served under; a legacy entry upgrades to v2 when
	// it is eventually recompiled or evicted, not here.
	c.mu.Lock()
	c.insertLocked(k, v)
	c.mu.Unlock()
	if disk != nil {
		disk.Put(diskcache.Key(k), gotKind, payload)
	}
	return v, true
}

func (c *Cache) put(k digest, kind uint32, v any) {
	// Frozen before it is shared: from the moment the artifact enters the
	// memory tier, concurrent compiles may hold references to it.
	freezeArtifact(v)
	c.mu.Lock()
	c.insertLocked(k, v)
	disk := c.disk
	remote := c.remote
	reg := c.reg
	if c.legacyPut {
		kind = legacyKind(kind)
	}
	c.mu.Unlock()
	if disk == nil && remote == nil {
		return
	}
	payload, err := encodeArtifact(kind, v)
	if err != nil {
		// The artifact stays memory-only — correct, but no longer silent:
		// a writer that can never persist (as every v1 writer compiling a
		// NaN immediate was) looks exactly like a healthy one from the
		// outside, so the failure is counted and the first instance kept
		// as a one-shot warning in CacheStats.
		c.encodeFailures.Add(1)
		c.warnOnce.Do(func() {
			c.encodeWarning.Store(fmt.Sprintf(
				"artifact %s could not be encoded for the persistent tiers and stayed memory-only: %v",
				kindName(kind), err))
		})
		if reg != nil {
			reg.Counter("pipeline.encode_failures").Inc()
		}
		return
	}
	if disk != nil {
		disk.Put(diskcache.Key(k), kind, payload)
	}
	if remote != nil {
		// Write-behind: queued, never blocking the compile.
		remote.Put(diskcache.Key(k), kind, payload)
	}
}

// insertLocked adds or refreshes a memory entry and evicts over the
// bound. Caller holds c.mu.
func (c *Cache) insertLocked(k digest, v any) {
	if e, ok := c.entries[k]; ok {
		e.Value.(*cacheItem).val = v
		c.lru.MoveToFront(e)
		return
	}
	c.entries[k] = c.lru.PushFront(&cacheItem{key: k, val: v})
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheItem).key)
		c.evictions++
	}
}

// Len returns the number of artifacts in the memory tier.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns a counter snapshot across all tiers. The top-level
// Hits/Misses describe the cache as a whole (an artifact served from
// any tier is a hit; a miss means it had to be compiled) and come
// from dedicated per-lookup counters rather than from re-deriving them
// out of tier counters: the disk tier's own counters stop describing
// this cache's lookups once the tier degrades to memory-only mid-run
// (or attaches late), which used to erase memory-tier misses and
// inflate HitRate. Memory, Disk, and Remote break each tier out, and
// because every resolved lookup lands in exactly one tier's counters,
// Hits == Memory.Hits + Disk.Hits + Remote.Hits. Evictions and
// Entries keep their historical memory-tier meaning. HitRate is
// Hits/(Hits+Misses), 0 when the cache has never been consulted.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CacheStats{
		Hits:           c.wholeHits.Load(),
		Misses:         c.wholeMisses.Load(),
		Evictions:      c.evictions,
		Entries:        c.lru.Len(),
		EncodeFailures: c.encodeFailures.Load(),
		Memory: TierStats{
			Hits:      c.hits,
			Misses:    c.misses,
			Evictions: c.evictions,
			Entries:   c.lru.Len(),
		},
	}
	if w, ok := c.encodeWarning.Load().(string); ok {
		st.EncodeWarning = w
	}
	if c.disk != nil {
		ds := c.disk.Stats()
		st.Disk = DiskTierStats{
			TierStats: TierStats{
				Hits:      ds.Hits,
				Misses:    ds.Misses,
				Evictions: ds.Evictions,
				Entries:   ds.Entries,
			},
			Writes:           ds.Writes,
			Corruptions:      ds.Corruptions,
			Quarantines:      ds.Quarantines,
			ReadErrors:       ds.ReadErrors,
			WriteErrors:      ds.WriteErrors,
			SweptTemps:       ds.SweptTemps,
			DegradedToMemory: ds.DegradedToMemory,
			Bytes:            ds.Bytes,
			Degraded:         ds.Degraded,
		}
	}
	if c.remote != nil {
		st.Remote = remoteTierStats(c.remote.Stats())
	}
	if lookups := st.Hits + st.Misses; lookups > 0 {
		st.HitRate = float64(st.Hits) / float64(lookups)
	}
	return st
}

// remoteTierStats converts a remotecache snapshot into the report
// shape, recursing into the per-node blocks a Fleet reports (a single
// Client has none).
func remoteTierStats(rs remotecache.Stats) RemoteTierStats {
	st := RemoteTierStats{
		Hits:        rs.Hits,
		Misses:      rs.Misses,
		Puts:        rs.Puts,
		PutDrops:    rs.PutDrops,
		PutErrors:   rs.PutErrors,
		Retries:     rs.Retries,
		Timeouts:    rs.Timeouts,
		NetErrors:   rs.NetErrors,
		HTTPErrors:  rs.HTTPErrors,
		Corruptions: rs.Corruptions,
		Skipped:     rs.Skipped,
		Trips:       rs.Trips,
		Probes:      rs.Probes,
		Circuit:     rs.Circuit,

		Failovers:      rs.Failovers,
		HedgesLaunched: rs.HedgesLaunched,
		HedgesWon:      rs.HedgesWon,
		Repairs:        rs.Repairs,
	}
	if lookups := rs.Hits + rs.Misses; lookups > 0 {
		st.HitRate = float64(rs.Hits) / float64(lookups)
	}
	for _, ns := range rs.Nodes {
		st.Nodes = append(st.Nodes, RemoteNodeStats{
			URL:             ns.URL,
			RemoteTierStats: remoteTierStats(ns.Stats),
		})
	}
	return st
}

// frontArtifact is a function after the front stage (optimize +
// allocate), plus the report fields those passes produced.
type frontArtifact struct {
	fn *ir.Func
	fr FuncReport // naive spill bytes, spilled ranges, integrated CCM use
}

// backArtifact is a function after the back stage (cleanup + compaction).
type backArtifact struct {
	fn           *ir.Func
	compactAfter int64
	webs         int
}

// programArtifact is a fully compiled program: final function bodies in
// input order plus the complete per-function report.
type programArtifact struct {
	funcs   []*ir.Func
	perFunc map[string]FuncReport
}
