package pipeline

import (
	"context"
	"fmt"
	"time"

	"ccmem/internal/ir"
	"ccmem/internal/obs"
	"ccmem/internal/oracle"
	"ccmem/internal/repro"
)

// DiffCheck selects when the differential-execution miscompile oracle
// (internal/oracle) runs during a Compile. Structural verification
// (Config.VerifyPasses, the final VerifyProgram) proves the output is
// well-formed ILOC; the oracle proves it still computes what the input
// computed, by executing both on deterministic seed-derived argument
// vectors and comparing traces, return values, and fault behavior.
type DiffCheck int

const (
	// DiffOff disables differential checking (the default).
	DiffOff DiffCheck = iota
	// DiffFinal checks the fully compiled program against the input once,
	// after the final verify. Divergences are attributed to the first
	// semantically-divergent pass by bisecting per-pass snapshots.
	DiffFinal
	// DiffPerStage additionally checks at each stage boundary (after the
	// parallel front stage and after the interprocedural barrier), so a
	// miscompile surfaces at the earliest boundary that exposes it.
	DiffPerStage
)

func (d DiffCheck) String() string {
	switch d {
	case DiffOff:
		return "off"
	case DiffFinal:
		return "final"
	case DiffPerStage:
		return "per-stage"
	}
	return fmt.Sprintf("DiffCheck(%d)", int(d))
}

// ParseDiffCheck converts a command-line name into a DiffCheck mode.
func ParseDiffCheck(s string) (DiffCheck, error) {
	switch s {
	case "off", "":
		return DiffOff, nil
	case "final":
		return DiffFinal, nil
	case "per-stage", "perstage":
		return DiffPerStage, nil
	}
	return DiffOff, fmt.Errorf("unknown diff-check mode %q (want off, final, per-stage)", s)
}

// MiscompileError reports that the compiled program computes something
// different from its input. It carries the bisected attribution — the
// first pass whose output diverges semantically — and the oracle's
// witness (entry, argument vector, first observable difference). It is
// returned as the compile error in Strict mode or when degradation
// cannot quarantine the culprit; otherwise it is recorded and the
// compile retries with the culprit forced down the degradation ladder.
type MiscompileError struct {
	Stage      string             // boundary that detected it: "front", "postpass", or "final"
	Pass       string             // first semantically-divergent pass ("" when bisection had no snapshots)
	Func       string             // function that pass was compiling ("" for whole-program passes)
	Divergence *oracle.Divergence // the witness
	ReproPath  string             // bundle written for it, when Config.ReproDir is set
}

func (e *MiscompileError) Error() string {
	pass := e.Pass
	if pass == "" {
		pass = "<unattributed>"
	}
	where := e.Func
	if where == "" {
		where = "<program>"
	}
	return fmt.Sprintf("pipeline: miscompile detected at %s stage, first divergent pass %s on %s: %v",
		e.Stage, pass, where, e.Divergence)
}

// passSnap is the body of one function as one pass left it. Snapshots
// are recorded only under DiffCheck; applying a prefix of the ordered
// snapshot list to the input program reconstructs every intermediate
// compilation state, which is what bisection binary-searches over.
//
// Snapshots from the interprocedural barrier are recorded per function
// even though the barrier is a whole-program pass: CCM promotion assigns
// each function a region disjoint from every function it can interleave
// with, so applying a subset of the barrier's rewrites only reduces CCM
// contention and cannot itself introduce a divergence.
type passSnap struct {
	pass string
	fn   string   // function name, for attribution
	idx  int      // index into Program.Funcs
	body *ir.Func // clone taken immediately after the pass ran
}

// snapRecorder accumulates snapshots across the stages of one compile
// attempt. Front and back slots are indexed by function so parallel
// workers write disjoint entries; the barrier appends sequentially.
type snapRecorder struct {
	front   [][]passSnap
	barrier []passSnap
	back    [][]passSnap
}

func newSnapRecorder(n int) *snapRecorder {
	return &snapRecorder{front: make([][]passSnap, n), back: make([][]passSnap, n)}
}

// upTo returns the deterministic global snapshot order for everything
// recorded through the given stage: front snapshots in (function, pass)
// order, then barrier, then back. The order is the bisection axis, so it
// must not depend on worker scheduling.
func (r *snapRecorder) upTo(stage string) []passSnap {
	var out []passSnap
	for _, snaps := range r.front {
		out = append(out, snaps...)
	}
	if stage == diffStageFront {
		return out
	}
	out = append(out, r.barrier...)
	if stage == diffStagePostPass {
		return out
	}
	for _, snaps := range r.back {
		out = append(out, snaps...)
	}
	return out
}

const (
	diffStageFront    = "front"
	diffStagePostPass = "postpass"
	diffStageFinal    = "final"
)

// forcedDegrade is the quarantine state the divergence-handling retry
// loop accumulates: per-function forcings that strip exactly the
// machinery the bisected culprit pass belongs to. Each escalation
// strictly increases a finite per-function lattice, so the retry loop
// terminates.
type forcedDegrade struct {
	level     map[string]degradeLevel // front-stage rung to start at
	noCCM     map[string]bool         // exclude from post-pass CCM promotion
	noCompact map[string]bool         // skip the back stage
	reason    map[string]*MiscompileError
}

func newForcedDegrade() *forcedDegrade {
	return &forcedDegrade{
		level:     map[string]degradeLevel{},
		noCCM:     map[string]bool{},
		noCompact: map[string]bool{},
		reason:    map[string]*MiscompileError{},
	}
}

// escalate records the quarantine for one bisected miscompile and
// reports whether anything was left to strip. A false return means the
// divergence survived maximal degradation of its function — the compile
// must fail rather than ship wrong code.
func (fd *forcedDegrade) escalate(me *MiscompileError, cfg Config) bool {
	fn := me.Func
	ok := false
	switch me.Pass {
	case PassOptimize:
		ok = fd.raiseLevel(fn, levelNoOpt) || fd.raiseLevel(fn, levelBaseline)
	case PassRegalloc:
		ok = fd.raiseLevel(fn, levelBaseline)
	case PassPostPass:
		if fn != "" && !fd.noCCM[fn] {
			fd.noCCM[fn] = true
			ok = true
		}
	case PassCleanup, PassCompact:
		if fn != "" && !fd.noCompact[fn] {
			fd.noCompact[fn] = true
			ok = true
		}
	default:
		// An injected experimental pass: levelNoOpt drops all of them.
		for _, ip := range cfg.InjectFront {
			if ip.Name == me.Pass {
				ok = fd.raiseLevel(fn, levelNoOpt) || fd.raiseLevel(fn, levelBaseline)
				break
			}
		}
	}
	if ok && fn != "" {
		fd.reason[fn] = me
	}
	return ok
}

func (fd *forcedDegrade) raiseLevel(fn string, to degradeLevel) bool {
	if fn == "" || fd.level[fn] >= to {
		return false
	}
	fd.level[fn] = to
	return true
}

// diffOracle drives the oracle for one compile: it owns the pristine
// input clone, the derived seed, and the diff counters. Everything here
// runs sequentially on the goroutine that called Compile — never inside
// the worker pool — so its results are identical for any worker count.
type diffOracle struct {
	pre  *ir.Program // input captured before any pass ran
	seed uint64
	opts oracle.Options

	funcsChecked    int64
	runs            int64
	inconclusive    int64
	divergences     int64
	divergentPasses map[string]int64
}

func newDiffOracle(p *ir.Program, cfg Config, reg *obs.Registry) *diffOracle {
	seed := programSeed(p, cfg)
	return &diffOracle{
		pre:  p.Clone(),
		seed: seed,
		opts: oracle.Options{
			Seed:     seed,
			Vectors:  cfg.DiffVectors,
			CCMBytes: cfg.CCMBytes,
			Obs:      reg,
		},
		divergentPasses: map[string]int64{},
	}
}

// check compares the input against the current compilation state at one
// stage boundary. On divergence it bisects the recorded snapshots to the
// first semantically-divergent pass and returns the attributed
// MiscompileError; nil means this boundary is clean.
func (do *diffOracle) check(ctx context.Context, post *ir.Program, stage string, snaps []passSnap) (*MiscompileError, error) {
	res, err := oracle.Check(ctx, do.pre, post, do.opts)
	if err != nil {
		return nil, err
	}
	do.funcsChecked += int64(res.Entries)
	do.runs += int64(res.Runs)
	do.inconclusive += int64(res.Inconclusive)
	if res.Equivalent() {
		return nil, nil
	}
	do.divergences++
	me := &MiscompileError{Stage: stage, Divergence: res.Divergence}
	me.Pass, me.Func, err = do.bisect(ctx, snaps)
	if err != nil {
		return nil, err
	}
	do.divergentPasses[histKey(me)]++
	return me, nil
}

// bisect binary-searches the snapshot prefix order for the first
// candidate program that diverges from the input, attributing the
// miscompile to the snapshot that tipped it. The full prefix is the
// divergent program just checked, so the invariant "hi diverges" holds
// at entry; the empty prefix is the input itself, which trivially
// agrees.
func (do *diffOracle) bisect(ctx context.Context, snaps []passSnap) (pass, fn string, err error) {
	if len(snaps) == 0 {
		return "", "", nil
	}
	lo, hi := 0, len(snaps)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		res, err := oracle.Check(ctx, do.pre, do.candidate(snaps, mid), do.opts)
		if err != nil {
			return "", "", err
		}
		do.funcsChecked += int64(res.Entries)
		do.runs += int64(res.Runs)
		do.inconclusive += int64(res.Inconclusive)
		if res.Equivalent() {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return snaps[lo].pass, snaps[lo].fn, nil
}

// candidate reconstructs the intermediate program with snapshots [0, k]
// applied to the input. Function bodies are shared, not cloned: the
// simulator never mutates the program it resolves.
func (do *diffOracle) candidate(snaps []passSnap, k int) *ir.Program {
	cand := &ir.Program{
		Globals: do.pre.Globals,
		Funcs:   append([]*ir.Func(nil), do.pre.Funcs...),
	}
	for j := 0; j <= k; j++ {
		cand.Funcs[snaps[j].idx] = snaps[j].body
	}
	return cand
}

// histKey is the first-divergent-pass histogram bucket.
func histKey(me *MiscompileError) string {
	if me.Pass == "" {
		return "unattributed"
	}
	return me.Pass
}

// recordMiscompile writes the extended repro bundle for one detected
// divergence: both programs, the seed, and the witnessing entry, so
// Replay can re-run the exact differential check offline. sh, when
// non-nil, receives a "repro:write" span.
func (cs *compileState) recordMiscompile(me *MiscompileError, post *ir.Program, do *diffOracle, sh *obs.Shard) {
	if cs.cfg.ReproDir == "" {
		return
	}
	b := &repro.Bundle{
		Kind:    repro.KindMiscompile,
		Func:    me.Func,
		Pass:    me.Pass,
		Program: cs.inputText,
		Post:    post.String(),
		Seed:    do.seed,
		Entry:   me.Divergence.Entry,
		Config:  marshalConfig(cs.cfg),
		Error:   me.Error(),
	}
	var t0 time.Time
	if sh != nil {
		t0 = time.Now()
	}
	path, err := repro.Write(cs.cfg.ReproDir, b)
	if sh != nil {
		sh.Record("repro:write", "repro", t0, time.Since(t0),
			obs.Attr{Key: "func", Value: me.Func}, obs.Attr{Key: "pass", Value: me.Pass})
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if err != nil {
		if cs.reproErr == nil {
			cs.reproErr = err
		}
		return
	}
	me.ReproPath = path
	cs.repros = append(cs.repros, path)
}
