package pipeline

import (
	"io"
	"testing"

	"ccmem/internal/ir"
	"ccmem/internal/obs"
	"ccmem/internal/workload"
)

// benchSuite is a fixed mixed workload: every program is compiled once
// per benchmark iteration, as the experiment harness does per sweep.
func benchSuite(b *testing.B) []*ir.Program {
	b.Helper()
	var progs []*ir.Program
	for seed := int64(1); seed <= 8; seed++ {
		progs = append(progs, workload.RandomProgram(seed))
	}
	for _, r := range workload.All()[:8] {
		p, err := r.Build()
		if err != nil {
			b.Fatal(err)
		}
		progs = append(progs, p)
	}
	return progs
}

func compileSuite(b *testing.B, d *Driver, progs []*ir.Program) {
	b.Helper()
	cfg := Config{Strategy: PostPassInterproc, CCMBytes: 512}
	for _, p := range progs {
		if _, err := d.Compile(p.Clone(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineCold compiles the suite with caching disabled: every
// iteration pays the full optimize/allocate/promote/compact cost.
func BenchmarkPipelineCold(b *testing.B) {
	progs := benchSuite(b)
	d := New(Options{DisableCache: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compileSuite(b, d, progs)
	}
}

// BenchmarkPipelineCached compiles the suite through one shared cache,
// primed before timing: every compile is a whole-program hit (hash +
// clone). The acceptance bar is >= 5x over BenchmarkPipelineCold.
func BenchmarkPipelineCached(b *testing.B) {
	progs := benchSuite(b)
	d := New(Options{})
	compileSuite(b, d, progs) // prime
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compileSuite(b, d, progs)
	}
	b.StopTimer()
	st := d.Cache().Stats()
	b.ReportMetric(float64(st.Hits), "cache-hits")
	b.ReportMetric(float64(st.Misses), "cache-misses")
}

// BenchmarkPipelineObsOff is the overhead baseline for the pair below:
// identical to BenchmarkPipelineCold, re-declared so the two rows sit
// together in benchstat output. The acceptance bar for the subsystem is
// that this row and the instrumented one differ within noise only when
// observability is disabled — the nil-check fast paths must keep the
// uninstrumented pipeline free.
func BenchmarkPipelineObsOff(b *testing.B) {
	progs := benchSuite(b)
	d := New(Options{DisableCache: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compileSuite(b, d, progs)
	}
}

// BenchmarkPipelineObsOn measures the full cost of spans + metrics +
// pprof labels on a cold compile of the same suite, draining the tracer
// between iterations so the span buffers do not saturate.
func BenchmarkPipelineObsOn(b *testing.B) {
	progs := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := New(Options{
			DisableCache: true,
			Tracer:       obs.NewTracer(),
			Metrics:      obs.NewRegistry(),
			PprofLabels:  true,
		})
		compileSuite(b, d, progs)
	}
	b.StopTimer()
	// Keep the export path honest without timing it.
	d := New(Options{DisableCache: true, Tracer: obs.NewTracer()})
	compileSuite(b, d, progs)
	if err := d.Tracer().WriteChromeTrace(io.Discard); err != nil {
		b.Fatal(err)
	}
}
