package pipeline

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"ccmem/internal/ir"
	"ccmem/internal/repro"
	"ccmem/internal/workload"
)

// dupFirstEmit duplicates the first emit instruction of the named
// function: the canonical silent miscompile. The result verifies, runs,
// and crashes nothing — the trace just grows by one value, which only
// differential execution can see.
func dupFirstEmit(f *ir.Func) bool {
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpEmit {
				dup := b.Instrs[i]
				b.Instrs = append(b.Instrs[:i+1], append([]ir.Instr{dup}, b.Instrs[i+1:]...)...)
				return true
			}
		}
	}
	return false
}

// miscompileOn returns an injected pass that silently miscompiles the
// named function.
func miscompileOn(name, passName string) InjectedPass {
	return InjectedPass{Name: passName, Fn: func(_ context.Context, f *ir.Func) error {
		if f.Name == name {
			dupFirstEmit(f)
		}
		return nil
	}}
}

// diffProgram is a small deterministic program whose main trace is a
// single computed value, so any emit duplication is observable.
func diffProgram(t *testing.T) *ir.Program {
	t.Helper()
	p, err := ir.Parse(`func helper(r0) int {
entry:
	r1 = loadi 3
	r2 = mul r0, r1
	ret r2
}
func main() {
entry:
	r0 = loadi 5
	r1 = call helper(r0)
	emit r1
	ret
}
`)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestMiscompileDetectedAndQuarantined is the tentpole acceptance walk:
// an injected pass that silently duplicates an emit is (a) detected by
// the differential oracle, (b) attributed to itself by snapshot
// bisection, (c) quarantined by forcing its function down the
// degradation ladder so the shipped program matches the input, and
// (d) captured as a replayable miscompile bundle — identically for both
// diff-check modes and for every strategy.
func TestMiscompileDetectedAndQuarantined(t *testing.T) {
	for _, mode := range []DiffCheck{DiffFinal, DiffPerStage} {
		for _, strat := range allStrategies {
			cfg := detConfig(strat)
			cfg.DiffCheck = mode
			cfg.InjectFront = []InjectedPass{miscompileOn("main", "exp-dup")}
			cfg.ReproDir = t.TempDir()

			p := diffProgram(t)
			want := runEmit(t, p.Clone(), 0) // input semantics: the oracle ground truth

			d := New(Options{DisableCache: true})
			rep, err := d.Compile(p, cfg)
			if err != nil {
				t.Fatalf("%v/%v: compile failed despite quarantine: %v", mode, strat, err)
			}
			if rep.Divergences == 0 {
				t.Fatalf("%v/%v: silent miscompile not detected", mode, strat)
			}
			if rep.DivergentPasses["exp-dup"] == 0 {
				t.Errorf("%v/%v: bisection attributed to %v, want exp-dup", mode, strat, rep.DivergentPasses)
			}
			fr := rep.PerFunc["main"]
			if fr.Degraded != "no-opt" {
				t.Errorf("%v/%v: main degraded to %q, want no-opt", mode, strat, fr.Degraded)
			}
			if fr.FailedPass != "exp-dup" || !strings.Contains(fr.Error, "miscompile") {
				t.Errorf("%v/%v: per-func attribution = %q/%q", mode, strat, fr.FailedPass, fr.Error)
			}
			if rep.DiffFuncsChecked == 0 || rep.DiffRuns == 0 {
				t.Errorf("%v/%v: oracle counters empty: %+v", mode, strat, rep)
			}
			// The quarantined program must compute exactly the input's trace.
			got := runEmit(t, p, cfg.CCMBytes)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%v/%v: shipped program still diverges: %v vs %v", mode, strat, got, want)
			}
			// The divergence is on disk as a replayable miscompile bundle.
			var mb *repro.Bundle
			for _, path := range rep.Repros {
				b, err := repro.Load(path)
				if err != nil {
					t.Fatalf("%v/%v: loading bundle: %v", mode, strat, err)
				}
				if b.Kind == repro.KindMiscompile {
					mb = b
				}
			}
			if mb == nil {
				t.Fatalf("%v/%v: no miscompile bundle written (%v)", mode, strat, rep.Repros)
			}
			if mb.Func != "main" || mb.Pass != "exp-dup" || mb.Post == "" || mb.Entry == "" {
				t.Errorf("%v/%v: bundle misattributed: func=%q pass=%q entry=%q", mode, strat, mb.Func, mb.Pass, mb.Entry)
			}
			if err := Replay(mb); err != nil {
				t.Errorf("%v/%v: miscompile bundle does not re-confirm: %v", mode, strat, err)
			}
		}
	}
}

// TestMiscompileStrict: in strict mode the divergence fails the compile
// with a structured, attributed *MiscompileError instead of degrading.
func TestMiscompileStrict(t *testing.T) {
	cfg := detConfig(PostPassInterproc)
	cfg.DiffCheck = DiffFinal
	cfg.Strict = true
	cfg.InjectFront = []InjectedPass{miscompileOn("main", "exp-dup")}

	d := New(Options{DisableCache: true})
	_, err := d.Compile(diffProgram(t), cfg)
	var me *MiscompileError
	if !errors.As(err, &me) {
		t.Fatalf("strict compile returned %v, want *MiscompileError", err)
	}
	if me.Pass != "exp-dup" || me.Func != "main" || me.Divergence == nil {
		t.Errorf("bad attribution: %+v", me)
	}
	if me.Stage != diffStageFinal {
		t.Errorf("detected at stage %q, want %q", me.Stage, diffStageFinal)
	}
}

// TestBarrierMiscompileQuarantined: a miscompile introduced inside the
// interprocedural barrier bisects to the postpass and is quarantined by
// excluding exactly that function from CCM promotion.
func TestBarrierMiscompileQuarantined(t *testing.T) {
	p := diffProgram(t)
	want := runEmit(t, p.Clone(), 0)

	cfg := detConfig(PostPassInterproc)
	cfg.DiffCheck = DiffFinal
	cfg.postPassHook = func(name string) {
		if name == "main" {
			dupFirstEmit(p.Func("main"))
		}
	}

	d := New(Options{DisableCache: true})
	rep, err := d.Compile(p, cfg)
	if err != nil {
		t.Fatalf("compile failed despite quarantine: %v", err)
	}
	if rep.Divergences == 0 {
		t.Fatal("barrier miscompile not detected")
	}
	if rep.DivergentPasses[PassPostPass] == 0 {
		t.Errorf("bisection attributed to %v, want postpass", rep.DivergentPasses)
	}
	if fr := rep.PerFunc["main"]; fr.Degraded != "no-ccm" {
		t.Errorf("main degraded to %q, want no-ccm", fr.Degraded)
	}
	if got := runEmit(t, p, cfg.CCMBytes); !reflect.DeepEqual(got, want) {
		t.Errorf("shipped program still diverges: %v vs %v", got, want)
	}
}

// TestDiffCheckCleanSuite is the false-positive guard: across every
// strategy and the random-program suite, an honest compile produces zero
// divergences and ships byte-identical code to an unchecked compile.
func TestDiffCheckCleanSuite(t *testing.T) {
	for _, strat := range allStrategies {
		for seed := int64(1); seed <= detSeeds; seed++ {
			plain := workload.RandomProgram(seed)
			d0 := New(Options{DisableCache: true})
			mustCompile(t, d0, plain, detConfig(strat))

			checked := workload.RandomProgram(seed)
			cfg := detConfig(strat)
			cfg.DiffCheck = DiffFinal
			d1 := New(Options{DisableCache: true})
			rep := mustCompile(t, d1, checked, cfg)

			if rep.Divergences != 0 {
				t.Errorf("strategy %v seed %d: false positive: %+v %v",
					strat, seed, rep.DivergentPasses, rep.PerFunc)
			}
			if rep.DiffFuncsChecked == 0 || rep.DiffRuns == 0 {
				t.Errorf("strategy %v seed %d: oracle ran nothing", strat, seed)
			}
			if checked.String() != plain.String() {
				t.Errorf("strategy %v seed %d: diff checking changed the shipped code", strat, seed)
			}
		}
	}
}

// TestDiffCheckDeterminism: with the oracle on and a miscompiling pass
// injected, workers=8 produces byte-identical output, per-func reports,
// and oracle counters to workers=1 — detection, bisection, and
// quarantine all run outside the worker pool.
func TestDiffCheckDeterminism(t *testing.T) {
	for _, strat := range allStrategies {
		cfg := detConfig(strat)
		cfg.DiffCheck = DiffPerStage
		cfg.InjectFront = []InjectedPass{miscompileOn("main", "exp-dup")}

		p1 := diffProgram(t)
		p8 := diffProgram(t)
		seq := New(Options{Workers: 1, DisableCache: true})
		par := New(Options{Workers: 8, DisableCache: true})

		rep1 := mustCompile(t, seq, p1, cfg)
		rep8 := mustCompile(t, par, p8, cfg)

		if p1.String() != p8.String() {
			t.Errorf("strategy %v: workers=8 ILOC differs from workers=1", strat)
		}
		if !reflect.DeepEqual(rep1.PerFunc, rep8.PerFunc) {
			t.Errorf("strategy %v: per-func reports differ:\n seq=%+v\n par=%+v", strat, rep1.PerFunc, rep8.PerFunc)
		}
		c1 := [4]int64{rep1.DiffFuncsChecked, rep1.DiffRuns, rep1.DiffInconclusive, rep1.Divergences}
		c8 := [4]int64{rep8.DiffFuncsChecked, rep8.DiffRuns, rep8.DiffInconclusive, rep8.Divergences}
		if c1 != c8 || !reflect.DeepEqual(rep1.DivergentPasses, rep8.DivergentPasses) {
			t.Errorf("strategy %v: oracle counters differ: %v/%v vs %v/%v",
				strat, c1, rep1.DivergentPasses, c8, rep8.DivergentPasses)
		}
		if rep1.Degraded != rep8.Degraded || rep1.Failures != rep8.Failures {
			t.Errorf("strategy %v: fault counters differ: %d/%d vs %d/%d",
				strat, rep1.Degraded, rep1.Failures, rep8.Degraded, rep8.Failures)
		}
	}
}

// TestDiffCheckProgramCache: a divergence-free checked compile is served
// from the whole-program cache on repeat, and checked/unchecked configs
// never share entries.
func TestDiffCheckProgramCache(t *testing.T) {
	cfg := detConfig(PostPass)
	cfg.DiffCheck = DiffFinal
	d := New(Options{})

	rep1 := mustCompile(t, d, workload.RandomProgram(5), cfg)
	if rep1.ProgramCacheHit {
		t.Fatal("cold compile reported a program cache hit")
	}
	rep2 := mustCompile(t, d, workload.RandomProgram(5), cfg)
	if !rep2.ProgramCacheHit {
		t.Fatal("repeat checked compile missed the program cache")
	}

	off := detConfig(PostPass)
	rep3 := mustCompile(t, d, workload.RandomProgram(5), off)
	if rep3.ProgramCacheHit {
		t.Fatal("unchecked compile was served a checked compile's artifact")
	}
}
