package pipeline

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ccmem/internal/ir"
	"ccmem/internal/repro"
	"ccmem/internal/sim"
	"ccmem/internal/workload"
)

// panicOn returns an injected pass that panics on the named function.
func panicOn(name, passName string) InjectedPass {
	return InjectedPass{Name: passName, Fn: func(_ context.Context, f *ir.Func) error {
		if f.Name == name {
			panic("injected fault in " + f.Name)
		}
		return nil
	}}
}

// faultConfig is the common non-strict fault-test configuration.
func faultConfig(strat Strategy) Config {
	cfg := detConfig(strat)
	cfg.VerifyPasses = true
	return cfg
}

// TestPanicPassIsolated: a panicking pass is (a) isolated to its
// function, (b) attributed to the correct pass, (c) recovered via the
// degradation ladder with the program still compiling end-to-end, and
// (d) captured as a replayable repro bundle — the injected-fault
// acceptance walk for the "pass that panics" case.
func TestPanicPassIsolated(t *testing.T) {
	for _, strat := range allStrategies {
		cfg := faultConfig(strat)
		cfg.InjectFront = []InjectedPass{panicOn("main", "exp-bad")}
		cfg.ReproDir = t.TempDir()

		p := workload.RandomProgram(3)
		want := mustCompileClean(t, p.Clone())

		d := New(Options{})
		rep, err := d.Compile(p, cfg)
		if err != nil {
			t.Fatalf("strategy %v: compile failed despite degradation ladder: %v", strat, err)
		}
		fr := rep.PerFunc["main"]
		if fr.Degraded != "no-opt" {
			t.Errorf("strategy %v: main degraded to %q, want no-opt", strat, fr.Degraded)
		}
		if fr.FailedPass != "exp-bad" {
			t.Errorf("strategy %v: fault attributed to %q, want exp-bad", strat, fr.FailedPass)
		}
		if fr.Attempts != 2 {
			t.Errorf("strategy %v: main took %d attempts, want 2", strat, fr.Attempts)
		}
		if rep.Failures != 1 || rep.Degraded != 1 {
			t.Errorf("strategy %v: failures=%d degraded=%d, want 1/1", strat, rep.Failures, rep.Degraded)
		}
		for name, ofr := range rep.PerFunc {
			if name != "main" && ofr.Degraded != "" {
				t.Errorf("strategy %v: fault leaked into %s (degraded %q)", strat, name, ofr.Degraded)
			}
		}
		// The degraded program must still run and emit the oracle trace.
		got := runEmit(t, p, cfg.CCMBytes)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("strategy %v: degraded program diverges from oracle", strat)
		}
		// The failure is on disk as a loadable bundle naming pass & func.
		if len(rep.Repros) != 1 {
			t.Fatalf("strategy %v: %d repro bundles, want 1 (%v)", strat, len(rep.Repros), rep.Repros)
		}
		b, err := repro.Load(rep.Repros[0])
		if err != nil {
			t.Fatalf("strategy %v: loading bundle: %v", strat, err)
		}
		if b.Func != "main" || b.Pass != "exp-bad" || b.Kind != repro.KindCompile {
			t.Errorf("strategy %v: bundle misattributed: func=%q pass=%q kind=%q", strat, b.Func, b.Pass, b.Kind)
		}
		if !strings.Contains(b.Stack, "panic") && !strings.Contains(b.Stack, "goroutine") {
			t.Errorf("strategy %v: bundle carries no stack", strat)
		}
		if b.Program == "" {
			t.Errorf("strategy %v: bundle carries no input program", strat)
		}
		// Injected passes cannot be serialized, so the replay compiles the
		// bundled input without the faulty experiment: it must pass now.
		if err := Replay(b); err != nil {
			t.Errorf("strategy %v: replay without the injected pass should succeed: %v", strat, err)
		}
	}
}

// mustCompileClean compiles p with the plain baseline config and returns
// its emit trace — the semantic oracle degraded compiles are checked
// against.
func mustCompileClean(t *testing.T, p *ir.Program) []sim.Value {
	t.Helper()
	d := New(Options{DisableCache: true})
	if _, err := d.Compile(p, Config{}); err != nil {
		t.Fatalf("oracle compile: %v", err)
	}
	return runEmit(t, p, 0)
}

// TestPanicPassStrict: in strict mode the same fault fails the compile
// with a structured *CompileError carrying pass, function, and stack.
func TestPanicPassStrict(t *testing.T) {
	cfg := faultConfig(PostPassInterproc)
	cfg.Strict = true
	cfg.InjectFront = []InjectedPass{panicOn("main", "exp-bad")}

	d := New(Options{})
	_, err := d.Compile(workload.RandomProgram(3), cfg)
	var cerr *CompileError
	if !errors.As(err, &cerr) {
		t.Fatalf("strict compile returned %v, want *CompileError", err)
	}
	if cerr.Pass != "exp-bad" || cerr.Func != "main" || !cerr.Panicked {
		t.Errorf("bad attribution: %+v", cerr)
	}
	if len(cerr.Stack) == 0 {
		t.Error("CompileError has no panic stack")
	}
	if !strings.Contains(cerr.Error(), "exp-bad") || !strings.Contains(cerr.Error(), "main") {
		t.Errorf("error text lacks attribution: %v", cerr)
	}
}

// TestHangPassTimedOut: a pass that blocks forever is cancelled by the
// per-function timeout and the function recovers on the next rung — the
// "pass that hangs" acceptance case.
func TestHangPassTimedOut(t *testing.T) {
	cfg := faultConfig(PostPass)
	cfg.FuncTimeout = 50 * time.Millisecond
	cfg.InjectFront = []InjectedPass{{Name: "exp-hang", Fn: func(ctx context.Context, f *ir.Func) error {
		if f.Name != "main" {
			return nil
		}
		<-ctx.Done() // hang until the watchdog fires
		return ctx.Err()
	}}}

	p := workload.RandomProgram(5)
	want := mustCompileClean(t, p.Clone())

	start := time.Now()
	d := New(Options{})
	rep, err := d.Compile(p, cfg)
	if err != nil {
		t.Fatalf("compile failed despite timeout + ladder: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("hang was not cut short (took %v)", elapsed)
	}
	fr := rep.PerFunc["main"]
	if fr.Degraded != "no-opt" || fr.FailedPass != "exp-hang" {
		t.Errorf("hang not attributed: degraded=%q pass=%q", fr.Degraded, fr.FailedPass)
	}
	if !strings.Contains(fr.Error, context.DeadlineExceeded.Error()) {
		t.Errorf("hang error is %q, want a deadline error", fr.Error)
	}
	if got := runEmit(t, p, cfg.CCMBytes); !reflect.DeepEqual(got, want) {
		t.Error("degraded program diverges from oracle")
	}
}

// TestInvalidIRPassAttributed: a pass that emits structurally-plausible
// but semantically broken IR (a use of a never-defined register) is
// caught by the liveness-consistency checkpoint right after it runs, not
// passes later — the "pass that emits invalid IR" acceptance case.
func TestInvalidIRPassAttributed(t *testing.T) {
	bad := InjectedPass{Name: "exp-invalid", Fn: func(_ context.Context, f *ir.Func) error {
		if f.Name != "main" {
			return nil
		}
		// Plain ir.VerifyFunc cannot see this: the register is declared
		// and classed, it just never gets a value.
		ghost := f.NewReg(ir.ClassInt, "ghost")
		entry := f.Entry()
		use := ir.Instr{Op: ir.OpEmit, Dst: ir.NoReg, Args: []ir.Reg{ghost}}
		entry.Instrs = append([]ir.Instr{use}, entry.Instrs...)
		return nil
	}}
	cfg := faultConfig(PostPassInterproc)
	cfg.InjectFront = []InjectedPass{bad}

	p := workload.RandomProgram(7)
	want := mustCompileClean(t, p.Clone())

	d := New(Options{})
	rep, err := d.Compile(p, cfg)
	if err != nil {
		t.Fatalf("compile failed despite ladder: %v", err)
	}
	fr := rep.PerFunc["main"]
	if fr.FailedPass != "exp-invalid" {
		t.Errorf("invalid IR attributed to %q, want exp-invalid", fr.FailedPass)
	}
	if fr.Degraded != "no-opt" {
		t.Errorf("main degraded to %q, want no-opt", fr.Degraded)
	}
	if !strings.Contains(fr.Error, "use before def") {
		t.Errorf("checkpoint error is %q, want a use-before-def diagnosis", fr.Error)
	}
	if got := runEmit(t, p, cfg.CCMBytes); !reflect.DeepEqual(got, want) {
		t.Error("degraded program diverges from oracle")
	}

	// Without per-pass verification the same breakage sails through to
	// the final structural verify — which cannot see it either. The
	// checkpoint is what catches it.
	cfg2 := detConfig(NoCCM)
	cfg2.InjectFront = []InjectedPass{bad}
	rep2, err := New(Options{}).Compile(workload.RandomProgram(7), cfg2)
	if err != nil {
		t.Fatalf("unverified compile: %v", err)
	}
	if rep2.PerFunc["main"].Degraded != "" {
		t.Error("without VerifyPasses the invalid IR should go undetected (that is the point of checkpoints)")
	}
}

// TestInputFaultAttributedToInput: a broken invariant already present in
// the input is blamed on "input", not on the first pass to run after it.
func TestInputFaultAttributedToInput(t *testing.T) {
	src := `func main() {
entry:
	r0 = loadi 1
	r1 = add r0, r2
	emit r1
	ret
}
`
	p, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{VerifyPasses: true, ReproDir: t.TempDir()}
	d := New(Options{DisableCache: true})
	_, err = d.Compile(p, cfg)
	var cerr *CompileError
	if !errors.As(err, &cerr) {
		t.Fatalf("compile of use-before-def input returned %v, want *CompileError", err)
	}
	if cerr.Pass != PassInput {
		t.Errorf("fault attributed to %q, want %q", cerr.Pass, PassInput)
	}

	// The ladder cannot fix broken input, but every attempt left a
	// replayable bundle behind; the replay reproduces the fault.
	bundles, err := repro.LoadDir(cfg.ReproDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) == 0 {
		t.Fatal("no repro bundles written for input fault")
	}
	rerr := Replay(bundles[0])
	var rcerr *CompileError
	if !errors.As(rerr, &rcerr) || rcerr.Pass != PassInput {
		t.Errorf("replay did not reproduce the input fault: %v", rerr)
	}
}

// TestFuncRetries: a flaky pass that fails once succeeds on the bounded
// retry at the same rung, without degrading.
func TestFuncRetries(t *testing.T) {
	var calls atomic.Int64
	flaky := InjectedPass{Name: "exp-flaky", Fn: func(_ context.Context, f *ir.Func) error {
		if f.Name == "main" && calls.Add(1) == 1 {
			return fmt.Errorf("transient fault")
		}
		return nil
	}}
	cfg := detConfig(NoCCM)
	cfg.InjectFront = []InjectedPass{flaky}
	cfg.FuncRetries = 1

	d := New(Options{})
	rep, err := d.Compile(workload.RandomProgram(9), cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	fr := rep.PerFunc["main"]
	if fr.Degraded != "" {
		t.Errorf("retry at the same rung should not degrade, got %q", fr.Degraded)
	}
	if fr.Attempts != 2 || rep.Failures != 1 {
		t.Errorf("attempts=%d failures=%d, want 2/1", fr.Attempts, rep.Failures)
	}
}

// TestPostPassFaultQuarantinesFunction: a fault inside the sequential
// interprocedural barrier is attributed to the function being processed,
// which alone loses its CCM promotion; the rest of the program still
// promotes.
func TestPostPassFaultQuarantinesFunction(t *testing.T) {
	p := workload.RandomProgram(4) // seed 4 has leaf functions
	var victim string
	for _, f := range p.Funcs {
		if f.Name != "main" {
			victim = f.Name
			break
		}
	}
	if victim == "" {
		t.Skip("seed produced no leaf functions")
	}
	want := mustCompileClean(t, p.Clone())

	cfg := detConfig(PostPassInterproc)
	cfg.ReproDir = t.TempDir()
	cfg.postPassHook = func(name string) {
		if name == victim {
			panic("allocator bug on " + name)
		}
	}
	d := New(Options{DisableCache: true})
	rep, err := d.Compile(p, cfg)
	if err != nil {
		t.Fatalf("compile failed despite quarantine: %v", err)
	}
	fr := rep.PerFunc[victim]
	if fr.Degraded != "no-ccm" || fr.FailedPass != PassPostPass {
		t.Errorf("victim not quarantined: degraded=%q pass=%q", fr.Degraded, fr.FailedPass)
	}
	if fr.PromotedWebs != 0 {
		t.Errorf("quarantined function still promoted %d webs", fr.PromotedWebs)
	}
	for name, ofr := range rep.PerFunc {
		if name != victim && ofr.Degraded != "" {
			t.Errorf("quarantine leaked into %s (%q)", name, ofr.Degraded)
		}
	}
	if rep.Failures != 1 {
		t.Errorf("failures=%d, want 1", rep.Failures)
	}
	if len(rep.Repros) != 1 {
		t.Errorf("%d repro bundles, want 1", len(rep.Repros))
	}
	if got := runEmit(t, p, cfg.CCMBytes); !reflect.DeepEqual(got, want) {
		t.Error("quarantined program diverges from oracle")
	}

	// Strict mode: same fault, structured error naming the victim.
	cfg.Strict = true
	cfg.ReproDir = ""
	_, err = New(Options{DisableCache: true}).Compile(workload.RandomProgram(4), cfg)
	var cerr *CompileError
	if !errors.As(err, &cerr) || cerr.Pass != PassPostPass || cerr.Func != victim {
		t.Errorf("strict barrier fault: got %v, want *CompileError{postpass, %s}", err, victim)
	}
}

// TestCancellationNoGoroutineLeak: cancelling the compile context stops a
// deliberately slow pass mid-pipeline; the error wraps context.Canceled
// and no worker goroutines outlive the call — the cancellation/timeout
// satellite.
func TestCancellationNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 64)
	cfg := detConfig(NoCCM)
	cfg.InjectFront = []InjectedPass{{Name: "exp-slow", Fn: func(pctx context.Context, f *ir.Func) error {
		started <- struct{}{}
		<-pctx.Done() // a slow pass stub: runs until cancelled
		return pctx.Err()
	}}}

	d := New(Options{Workers: 8})
	done := make(chan error, 1)
	p := workload.RandomProgram(2)
	go func() {
		_, err := d.CompileContext(ctx, p, cfg)
		done <- err
	}()
	<-started // at least one function is inside the slow pass
	cancel()
	var err error
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled compile did not return")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled compile returned %v, want context.Canceled", err)
	}

	// Goroutine accounting: everything the pipeline spawned must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}

	// The driver stays usable after a cancelled compile.
	if _, err := d.Compile(workload.RandomProgram(2), detConfig(NoCCM)); err != nil {
		t.Fatalf("driver unusable after cancellation: %v", err)
	}
}

// TestTimeoutDoesNotAbortSiblings: one hanging function times out and
// degrades; its siblings compile at full fidelity in parallel.
func TestTimeoutDoesNotAbortSiblings(t *testing.T) {
	cfg := detConfig(NoCCM)
	cfg.FuncTimeout = 50 * time.Millisecond
	cfg.InjectFront = []InjectedPass{{Name: "exp-hang", Fn: func(ctx context.Context, f *ir.Func) error {
		if f.Name == "main" {
			<-ctx.Done()
			return ctx.Err()
		}
		return nil
	}}}
	p := workload.RandomProgram(4)
	d := New(Options{Workers: 4})
	rep, err := d.Compile(p, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if rep.PerFunc["main"].Degraded == "" {
		t.Error("hanging main did not degrade")
	}
	for name, fr := range rep.PerFunc {
		if name != "main" && fr.Degraded != "" {
			t.Errorf("sibling %s degraded (%q)", name, fr.Degraded)
		}
	}
}

// TestDegradationDeterminism: with a deterministic fault injected, the
// degraded output of workers=8 must be byte-identical to workers=1 —
// the ladder is part of the deterministic pipeline, not a race.
func TestDegradationDeterminism(t *testing.T) {
	// Panic on every function whose post-optimize instruction count is
	// even: input-dependent, scheduling-independent.
	deterministicFault := func() []InjectedPass {
		return []InjectedPass{{Name: "exp-parity", Fn: func(_ context.Context, f *ir.Func) error {
			if f.NumInstrs()%2 == 0 {
				panic(fmt.Sprintf("parity fault in %s (%d instrs)", f.Name, f.NumInstrs()))
			}
			return nil
		}}}
	}
	for _, strat := range []Strategy{NoCCM, PostPassInterproc, Integrated} {
		for seed := int64(1); seed <= detSeeds; seed++ {
			cfg := faultConfig(strat)
			cfg.InjectFront = deterministicFault()

			p1 := workload.RandomProgram(seed)
			p8 := workload.RandomProgram(seed)
			rep1, err := New(Options{Workers: 1, DisableCache: true}).Compile(p1, cfg)
			if err != nil {
				t.Fatalf("strat %v seed %d workers=1: %v", strat, seed, err)
			}
			rep8, err := New(Options{Workers: 8, DisableCache: true}).Compile(p8, cfg)
			if err != nil {
				t.Fatalf("strat %v seed %d workers=8: %v", strat, seed, err)
			}
			if p1.String() != p8.String() {
				t.Errorf("strat %v seed %d: degraded ILOC differs between workers=1 and workers=8", strat, seed)
			}
			if !reflect.DeepEqual(rep1.PerFunc, rep8.PerFunc) {
				t.Errorf("strat %v seed %d: degraded per-func reports differ:\n w1=%+v\n w8=%+v",
					strat, seed, rep1.PerFunc, rep8.PerFunc)
			}
			if rep1.Failures != rep8.Failures || rep1.Degraded != rep8.Degraded {
				t.Errorf("strat %v seed %d: counters differ: w1=%d/%d w8=%d/%d",
					strat, seed, rep1.Failures, rep1.Degraded, rep8.Failures, rep8.Degraded)
			}
		}
	}
}

// TestVerifyPassesCleanSuite: per-pass verification (structural +
// liveness) holds across the real pass pipeline for every strategy — the
// checkpoints add no false positives.
func TestVerifyPassesCleanSuite(t *testing.T) {
	for _, strat := range allStrategies {
		cfg := faultConfig(strat)
		cfg.Strict = true
		cfg.CleanupSpills = true
		for seed := int64(1); seed <= detSeeds; seed++ {
			d := New(Options{DisableCache: true})
			rep, err := d.Compile(workload.RandomProgram(seed), cfg)
			if err != nil {
				t.Fatalf("strat %v seed %d: checkpoint false positive: %v", strat, seed, err)
			}
			if rep.Failures != 0 || rep.Degraded != 0 {
				t.Fatalf("strat %v seed %d: clean compile recorded faults", strat, seed)
			}
		}
	}
}

// TestDegradedCompileNotCached: a compile that recovered from faults must
// not populate the program cache — a later identical compile (perhaps
// with the bug fixed) must re-run the passes. The fault is injected via
// the barrier hook, which does not disable caching the way closures in
// InjectFront do, so this exercises the no-put-on-failure rule itself.
func TestDegradedCompileNotCached(t *testing.T) {
	d := New(Options{})

	fcfg := detConfig(PostPassInterproc)
	fcfg.postPassHook = func(name string) {
		if name == "main" {
			panic("transient allocator bug")
		}
	}
	frep, err := d.Compile(workload.RandomProgram(21), fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if frep.Degraded == 0 {
		t.Fatal("hooked compile did not degrade (test setup broken)")
	}

	cfg := detConfig(PostPassInterproc) // identical cache key, bug "fixed"
	rep, err := d.Compile(workload.RandomProgram(21), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ProgramCacheHit {
		t.Error("clean compile was served a degraded program artifact")
	}
	if rep.PerFunc["main"].Degraded != "" {
		t.Error("degradation leaked into the clean compile via the cache")
	}
	if rep.PerFunc["main"].PromotedWebs == 0 && frep.PerFunc["main"].SpilledRanges > 0 {
		t.Error("recompile did not restore full-fidelity promotion")
	}
}
