package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"ccmem/internal/cfg"
	"ccmem/internal/ir"
	"ccmem/internal/liveness"
)

// CompileError is the structured failure record for one pass attempt.
// Panics raised anywhere under a pass — the IR builder and bitset layers
// panic on malformed state — are recovered and converted into one of
// these, carrying the pass name, the function being compiled, the
// degradation rung active at the time, and the goroutine stack when the
// failure was a panic.
type CompileError struct {
	Pass     string // pass that failed or first broke an invariant
	Func     string // function being compiled ("" for whole-program passes)
	Level    string // degradation rung active during the attempt
	Panicked bool   // true when the failure was a recovered panic
	Stack    []byte // goroutine stack captured at the recover site
	Err      error  // underlying cause
}

func (e *CompileError) Error() string {
	where := e.Func
	if where == "" {
		where = "<program>"
	}
	kind := "failed"
	if e.Panicked {
		kind = "panicked"
	}
	return fmt.Sprintf("pipeline: pass %s %s on %s (level %s): %v", e.Pass, kind, where, e.Level, e.Err)
}

func (e *CompileError) Unwrap() error { return e.Err }

// degradeLevel is a rung on the degradation ladder. Rungs are tried in
// order; each strips away the machinery most likely to be at fault while
// keeping the function compilable.
type degradeLevel int

const (
	// levelFull compiles exactly as configured.
	levelFull degradeLevel = iota
	// levelNoOpt disables the scalar optimizer and every injected
	// experimental pass, keeping the configured allocator.
	levelNoOpt
	// levelBaseline additionally falls back to the plain spill-to-RAM
	// allocator: no integrated CCM assignment, and the function is
	// excluded from post-pass CCM promotion.
	levelBaseline

	numLevels
)

func (l degradeLevel) String() string {
	switch l {
	case levelFull:
		return "full"
	case levelNoOpt:
		return "no-opt"
	case levelBaseline:
		return "baseline"
	}
	return fmt.Sprintf("level-%d", int(l))
}

// runGuarded executes one pass body under recover, converting a panic or
// returned error into a *CompileError attributed to (pass, fn, level).
func runGuarded(pass, fn string, level degradeLevel, body func() error) (cerr *CompileError) {
	defer func() {
		if r := recover(); r != nil {
			cerr = &CompileError{
				Pass:     pass,
				Func:     fn,
				Level:    level.String(),
				Panicked: true,
				Stack:    debug.Stack(),
				Err:      fmt.Errorf("%v", r),
			}
		}
	}()
	if err := body(); err != nil {
		var inner *CompileError
		if errors.As(err, &inner) {
			return inner
		}
		return &CompileError{Pass: pass, Func: fn, Level: level.String(), Err: err}
	}
	return nil
}

// checkpoint verifies f's structural invariants plus liveness
// consistency, attributing any breakage to the pass that just ran. It is
// the per-pass verification mode: with it on, a miscompiling pass is
// caught at the first checkpoint after it runs instead of (maybe) at the
// final whole-program verify or (worse) as a silent simulator divergence.
//
// prog is nil by design: checkpoints run inside the parallel front stage
// while sibling functions are being rewritten, so cross-function checks
// (call signatures) are deferred to the sequential final verify.
func checkpoint(pass string, f *ir.Func, level degradeLevel, allowPhi bool) *CompileError {
	return runGuarded(pass, f.Name, level, func() error {
		if err := ir.VerifyFunc(f, nil, ir.VerifyOptions{AllowPhi: allowPhi}); err != nil {
			return err
		}
		return VerifyLiveness(f)
	})
}

// VerifyLiveness is the liveness-consistency check: no register other
// than a declared parameter may be live into the entry block. A register
// that is live-in at entry is used on some path before any definition —
// code that reads garbage. ir.VerifyFunc cannot see this (a declared,
// classed register with no defining instruction is structurally fine), so
// this is the checkpoint that catches passes emitting uses of values they
// forgot to define, or deleting a definition whose uses remain.
func VerifyLiveness(f *ir.Func) error {
	g, err := cfg.New(f)
	if err != nil {
		return err
	}
	live := liveness.Registers(f, g)
	if len(live.In) == 0 {
		return nil
	}
	params := map[ir.Reg]bool{}
	for _, p := range f.Params {
		params[p] = true
	}
	entry := live.In[0]
	for r := 0; r < entry.Len(); r++ {
		if entry.Has(r) && !params[ir.Reg(r)] {
			return fmt.Errorf("ir: func %s: register %s is live into entry but is not a parameter (use before def)",
				f.Name, f.RegName(ir.Reg(r)))
		}
	}
	return nil
}

// ctxErr converts a context failure at a pass boundary into a
// *CompileError so cancellation and timeout flow through the same
// reporting path as faults.
func ctxErr(ctx context.Context, pass, fn string, level degradeLevel) *CompileError {
	if err := ctx.Err(); err != nil {
		return &CompileError{Pass: pass, Func: fn, Level: level.String(), Err: err}
	}
	return nil
}
