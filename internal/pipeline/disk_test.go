package pipeline

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"ccmem/internal/diskcache"
	"ccmem/internal/workload"
)

// coldILOC compiles seed from scratch with no cache at all and returns
// the canonical output text — the reference every disk-tier scenario
// must reproduce byte-for-byte.
func coldILOC(t *testing.T, seed int64, cfg Config) string {
	t.Helper()
	p := workload.RandomProgram(seed)
	mustCompile(t, New(Options{DisableCache: true}), p, cfg)
	return p.String()
}

// TestDiskRestartProgramHit is the tentpole's happy path: a second
// driver — a "restarted process" sharing only the cache directory —
// answers an identical compile from the persistent tier, byte-identical
// to the first, with the hit visible in the report.
func TestDiskRestartProgramHit(t *testing.T) {
	dir := t.TempDir()
	cfg := detConfig(Integrated)
	want := coldILOC(t, 11, cfg)

	a := New(Options{CacheDir: dir})
	if err := a.DiskCacheErr(); err != nil {
		t.Fatalf("disk tier failed to open: %v", err)
	}
	pa := workload.RandomProgram(11)
	mustCompile(t, a, pa, cfg)
	if pa.String() != want {
		t.Fatal("disk-backed compile differs from cold compile")
	}

	b := New(Options{CacheDir: dir})
	pb := workload.RandomProgram(11)
	rep := mustCompile(t, b, pb, cfg)
	if pb.String() != want {
		t.Fatal("restarted driver produced different ILOC")
	}
	if !rep.ProgramCacheHit {
		t.Error("restarted driver did not hit the persistent program artifact")
	}
	if rep.Cache.Disk.Hits < 1 {
		t.Errorf("disk hits = %d, want >= 1: %+v", rep.Cache.Disk.Hits, rep.Cache)
	}
	if rep.Cache.HitRate <= 0 {
		t.Errorf("hit rate = %v, want > 0", rep.Cache.HitRate)
	}
}

// TestDiskFaultMatrixDeterminism is the core robustness claim: under
// every injected fault — ENOSPC, EIO on every read, a bit flip on every
// read, a crash mid-write — and at workers=1 and workers=8, the
// pipeline's output stays byte-identical to a cold compile. A sick disk
// may cost time, never correctness.
func TestDiskFaultMatrixDeterminism(t *testing.T) {
	cfg := detConfig(Integrated)
	const seed = 12
	want := coldILOC(t, seed, cfg)

	scenarios := []struct {
		name string
		warm bool // pre-populate the directory with a healthy driver
		arm  func(*diskcache.FaultFS)
	}{
		{"enospc", false, func(f *diskcache.FaultFS) { f.SetWriteBudget(0) }},
		{"eio-every-read", true, func(f *diskcache.FaultFS) {
			f.SetReadHook(func(string, []byte) ([]byte, error) { return nil, diskcache.ErrIO })
		}},
		{"bit-flip-every-read", true, func(f *diskcache.FaultFS) {
			f.SetReadHook(func(_ string, data []byte) ([]byte, error) {
				out := bytes.Clone(data)
				out[len(out)/3] ^= 0x08
				return out, nil
			})
		}},
		{"crash-mid-write", false, func(f *diskcache.FaultFS) { f.CrashAfterBytes(100) }},
	}
	for _, sc := range scenarios {
		for _, workers := range []int{1, 8} {
			t.Run(sc.name, func(t *testing.T) {
				dir := t.TempDir()
				if sc.warm {
					mustCompile(t, New(Options{CacheDir: dir}), workload.RandomProgram(seed), cfg)
				}
				ffs := diskcache.NewFaultFS(nil)
				d := New(Options{Workers: workers, CacheDir: dir, DiskFS: ffs})
				if err := d.DiskCacheErr(); err != nil {
					t.Fatalf("open: %v", err)
				}
				sc.arm(ffs)
				p := workload.RandomProgram(seed)
				rep := mustCompile(t, d, p, cfg)
				if got := p.String(); got != want {
					t.Errorf("workers=%d: output under %s differs from cold compile", workers, sc.name)
				}
				// The compile must have survived without the report hiding
				// the trouble: some counter reflects the scenario.
				ds := rep.Cache.Disk
				if sc.warm && ds.Corruptions == 0 && ds.ReadErrors == 0 {
					t.Errorf("workers=%d %s: no read fault surfaced in the report: %+v", workers, sc.name, ds)
				}
				if !sc.warm && ds.WriteErrors == 0 {
					t.Errorf("workers=%d %s: no write fault surfaced in the report: %+v", workers, sc.name, ds)
				}
			})
		}
	}
}

// TestDiskENOSPCDegradesAndStaysCorrect: a full disk degrades the tier
// to memory-only after the failure limit; compiles keep succeeding and
// the degradation is visible in the report.
func TestDiskENOSPCDegradesAndStaysCorrect(t *testing.T) {
	cfg := detConfig(PostPass)
	ffs := diskcache.NewFaultFS(nil)
	d := New(Options{CacheDir: t.TempDir(), DiskFS: ffs})
	ffs.SetWriteBudget(0)

	var rep *Report
	for seed := int64(20); seed < 24; seed++ {
		want := coldILOC(t, seed, cfg)
		p := workload.RandomProgram(seed)
		rep = mustCompile(t, d, p, cfg)
		if p.String() != want {
			t.Fatalf("seed %d: ENOSPC changed the output", seed)
		}
	}
	ds := rep.Cache.Disk
	if !ds.Degraded || ds.DegradedToMemory != 1 {
		t.Errorf("tier not degraded-to-memory after persistent ENOSPC: %+v", ds)
	}
	// Degraded tier still serves the memory tier: an identical recompile
	// is a full hit.
	p := workload.RandomProgram(23)
	rep2 := mustCompile(t, d, p, cfg)
	if !rep2.ProgramCacheHit {
		t.Error("memory tier stopped working while the disk was degraded")
	}
}

// TestDiskCrashMidWriteThenRecover: driver A's process dies mid-write
// (filesystem gone). Driver B on the same directory sweeps the dead
// temp, serves whatever committed, and recompiles the rest — output
// byte-identical throughout.
func TestDiskCrashMidWriteThenRecover(t *testing.T) {
	cfg := detConfig(Integrated)
	const seed = 13
	want := coldILOC(t, seed, cfg)
	dir := t.TempDir()

	ffs := diskcache.NewFaultFS(nil)
	a := New(Options{CacheDir: dir, DiskFS: ffs})
	ffs.CrashAfterBytes(200) // dies partway through some artifact write
	pa := workload.RandomProgram(seed)
	mustCompile(t, a, pa, cfg)
	if pa.String() != want {
		t.Fatal("output changed by the mid-write crash")
	}

	temps, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(temps) == 0 {
		t.Fatal("crash left no torn temp file (test setup: crash point never reached)")
	}

	b := New(Options{CacheDir: dir})
	if err := b.DiskCacheErr(); err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	pb := workload.RandomProgram(seed)
	rep := mustCompile(t, b, pb, cfg)
	if pb.String() != want {
		t.Fatal("post-crash driver produced different ILOC")
	}
	if rep.Cache.Disk.SweptTemps == 0 {
		t.Errorf("dead temp files not swept on reopen: %+v", rep.Cache.Disk)
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(left) != 0 {
		t.Errorf("temps survived recovery: %v", left)
	}

	// Third driver: the recovered directory now answers warm.
	c := New(Options{CacheDir: dir})
	pc := workload.RandomProgram(seed)
	rep3 := mustCompile(t, c, pc, cfg)
	if pc.String() != want || !rep3.ProgramCacheHit {
		t.Error("recovered directory did not serve the recompiled artifacts")
	}
}

// TestDiskCorruptionRecompiles: every artifact on disk is bit-flipped
// between two driver lifetimes (bit rot at rest). The second driver must
// detect every corruption, quarantine the entries, and recompile to
// byte-identical output.
func TestDiskCorruptionRecompiles(t *testing.T) {
	cfg := detConfig(Integrated)
	const seed = 14
	want := coldILOC(t, seed, cfg)
	dir := t.TempDir()

	mustCompile(t, New(Options{CacheDir: dir}), workload.RandomProgram(seed), cfg)

	arts, err := filepath.Glob(filepath.Join(dir, "*.art"))
	if err != nil || len(arts) == 0 {
		t.Fatalf("no artifacts on disk to corrupt: %v (%v)", arts, err)
	}
	for _, name := range arts {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x01
		if err := os.WriteFile(name, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	b := New(Options{CacheDir: dir})
	pb := workload.RandomProgram(seed)
	rep := mustCompile(t, b, pb, cfg)
	if pb.String() != want {
		t.Fatal("corrupted cache changed the compile output")
	}
	if rep.ProgramCacheHit {
		t.Error("corrupt program artifact was served")
	}
	ds := rep.Cache.Disk
	if ds.Corruptions == 0 || ds.Quarantines == 0 {
		t.Errorf("corruption not surfaced in the report: %+v", ds)
	}
	bad, _ := filepath.Glob(filepath.Join(dir, "*.bad"))
	if len(bad) == 0 {
		t.Error("no quarantine files for forensics")
	}
}

// TestDiskOpenFailureIsMemoryOnly: an unusable CacheDir (here: a path
// occupied by a regular file) must not fail the driver — it surfaces via
// DiskCacheErr and the driver runs memory-only.
func TestDiskOpenFailureIsMemoryOnly(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	d := New(Options{CacheDir: file})
	if d.DiskCacheErr() == nil {
		t.Fatal("no error surfaced for an unusable cache directory")
	}
	cfg := detConfig(PostPass)
	want := coldILOC(t, 15, cfg)
	p := workload.RandomProgram(15)
	rep := mustCompile(t, d, p, cfg)
	if p.String() != want {
		t.Error("memory-only fallback changed the output")
	}
	if rep.Cache.Disk.Writes != 0 || rep.Cache.Disk.Entries != 0 {
		t.Errorf("disk counters nonzero without a disk tier: %+v", rep.Cache.Disk)
	}
}

// TestDegradedCompileNotPersisted extends the no-put-on-failure rule to
// the disk tier: a compile that recovered from a fault must leave no
// program artifact a *fresh driver* could be served. The fault is
// injected via the barrier hook, which keeps caching enabled.
func TestDegradedCompileNotPersisted(t *testing.T) {
	dir := t.TempDir()
	a := New(Options{CacheDir: dir})

	fcfg := detConfig(PostPassInterproc)
	fcfg.postPassHook = func(name string) {
		if name == "main" {
			panic("transient allocator bug")
		}
	}
	frep, err := a.Compile(workload.RandomProgram(21), fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if frep.Degraded == 0 {
		t.Fatal("hooked compile did not degrade (test setup broken)")
	}

	// Fresh driver, same directory, identical cache key, bug "fixed":
	// nothing degraded may come back from disk.
	b := New(Options{CacheDir: dir})
	cfg := detConfig(PostPassInterproc)
	rep, err := b.Compile(workload.RandomProgram(21), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ProgramCacheHit {
		t.Error("degraded program artifact was persisted and served")
	}
	if rep.PerFunc["main"].Degraded != "" {
		t.Error("degradation leaked through the disk tier")
	}
}

// TestCacheStatsJSONShape pins the report surface the CLIs print: the
// cache block carries the computed hit rate and both tier breakdowns,
// with the disk tier's robustness counters present by name.
func TestCacheStatsJSONShape(t *testing.T) {
	dir := t.TempDir()
	cfg := detConfig(Integrated)
	mustCompile(t, New(Options{CacheDir: dir}), workload.RandomProgram(16), cfg)
	d := New(Options{CacheDir: dir})
	rep := mustCompile(t, d, workload.RandomProgram(16), cfg)

	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Cache map[string]json.RawMessage `json:"cache"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"hits", "misses", "hit_rate", "memory", "disk"} {
		if _, ok := decoded.Cache[key]; !ok {
			t.Errorf("report cache block missing %q: %s", key, raw)
		}
	}
	var disk map[string]json.RawMessage
	if err := json.Unmarshal(decoded.Cache["disk"], &disk); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"hits", "misses", "writes", "corruptions", "quarantines",
		"read_errors", "write_errors", "swept_temps", "degraded_to_memory", "bytes"} {
		if _, ok := disk[key]; !ok {
			t.Errorf("disk tier block missing %q: %s", key, decoded.Cache["disk"])
		}
	}
	var rate float64
	if err := json.Unmarshal(decoded.Cache["hit_rate"], &rate); err != nil {
		t.Fatal(err)
	}
	if rate <= 0 || rate > 1 {
		t.Errorf("hit_rate = %v, want in (0, 1]", rate)
	}
}

// TestDiskCacheBytesBudget: CacheBytes is honored — a tiny budget forces
// evictions rather than unbounded growth, and compiles stay correct.
func TestDiskCacheBytesBudget(t *testing.T) {
	cfg := detConfig(PostPass)
	dir := t.TempDir()
	d := New(Options{CacheDir: dir, CacheBytes: 4096})
	for seed := int64(30); seed < 34; seed++ {
		want := coldILOC(t, seed, cfg)
		p := workload.RandomProgram(seed)
		mustCompile(t, d, p, cfg)
		if p.String() != want {
			t.Fatalf("seed %d: output changed under a tiny disk budget", seed)
		}
	}
	st := d.Cache().Disk().Stats()
	if st.Bytes > 4096 {
		t.Errorf("disk tier over budget: %d bytes", st.Bytes)
	}
}
