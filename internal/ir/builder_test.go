package ir

import (
	"strings"
	"testing"
)

// finishErr builds a minimal terminated function around the mutation fn
// and returns the deferred construction error, if any.
func finishErr(t *testing.T, fn func(b *Builder)) error {
	t.Helper()
	b := NewBuilder("f", ClassNone)
	b.Label("entry")
	fn(b)
	if b.Err() == nil {
		b.Ret()
	}
	_, err := b.Finish()
	return err
}

func TestBuilderRejectsForeignRegister(t *testing.T) {
	other := NewBuilder("g", ClassInt)
	ghost := other.Reg(ClassInt, "ghost")
	for i := 0; i < 40; i++ {
		other.Reg(ClassInt, "")
	}

	err := finishErr(t, func(b *Builder) {
		// ghost is r0, which f also has once one register exists; use an
		// out-of-range id instead to model a register of another function.
		bad := ghost + 100
		b.Append(Instr{Op: OpNeg, Dst: b.Reg(ClassInt, ""), Args: []Reg{bad}})
	})
	if err == nil || !strings.Contains(err.Error(), "not a register") {
		t.Fatalf("foreign register not rejected: %v", err)
	}
}

func TestBuilderRejectsClassMismatch(t *testing.T) {
	err := finishErr(t, func(b *Builder) {
		x := b.ConstF(1.5)
		y := b.ConstI(2)
		b.Append(Instr{Op: OpAdd, Dst: b.Reg(ClassInt, ""), Args: []Reg{x, y}})
	})
	if err == nil || !strings.Contains(err.Error(), "want int") {
		t.Fatalf("float arg to add not rejected: %v", err)
	}
}

func TestBuilderRejectsArityMismatch(t *testing.T) {
	err := finishErr(t, func(b *Builder) {
		x := b.ConstI(1)
		b.Append(Instr{Op: OpAdd, Dst: b.Reg(ClassInt, ""), Args: []Reg{x}})
	})
	if err == nil || !strings.Contains(err.Error(), "wants 2 args") {
		t.Fatalf("unary add not rejected: %v", err)
	}
}

func TestBuilderRejectsUndefinedBranchTarget(t *testing.T) {
	b := NewBuilder("f", ClassNone)
	b.Label("entry")
	b.Jmp("nowhere")
	_, err := b.Finish()
	if err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Fatalf("dangling branch target not rejected: %v", err)
	}
}

func TestBuilderErrStopsEarlyAndFirstErrorWins(t *testing.T) {
	b := NewBuilder("f", ClassNone)
	b.Label("entry")
	x := b.ConstF(1)
	b.Add(x, x) // first failure: float args to an int op
	if b.Err() == nil {
		t.Fatal("Err is nil after a malformed instruction")
	}
	first := b.Err().Error()
	b.At("nope") // would be a second failure
	if got := b.Err().Error(); got != first {
		t.Fatalf("first error was overwritten: %q -> %q", first, got)
	}
	if _, err := b.Finish(); err == nil || err.Error() != first {
		t.Fatalf("Finish error = %v, want the first deferred error %q", err, first)
	}
}

func TestBuilderCleanConstructionStillVerifies(t *testing.T) {
	b := NewBuilder("f", ClassInt)
	n := b.Param(ClassInt, "n")
	b.Label("entry")
	c := b.ConstI(3)
	s := b.Add(n, c)
	cond := b.CmpGT(s, c)
	b.CBr(cond, "big", "small")
	b.Label("big")
	b.RetVal(s)
	b.Label("small")
	b.RetVal(c)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFunc(f, nil, VerifyOptions{}); err != nil {
		t.Fatal(err)
	}
}
