package ir

import (
	"fmt"
	"strings"
)

// RegName renders a register in the textual form used by the parser:
// r<N> for integer registers, f<N> for floats. The index space is shared,
// so r4 and f4 never coexist in one function.
func (f *Func) RegName(r Reg) string {
	if r == NoReg {
		return "_"
	}
	switch f.RegClass(r) {
	case ClassFloat:
		return fmt.Sprintf("f%d", r)
	default:
		return fmt.Sprintf("r%d", r)
	}
}

// FormatInstr renders one instruction in parseable form.
func (f *Func) FormatInstr(in *Instr) string {
	var b strings.Builder
	arg := func(i int) string { return f.RegName(in.Args[i]) }
	if in.Dst != NoReg {
		fmt.Fprintf(&b, "%s = ", f.RegName(in.Dst))
	}
	switch in.Op {
	case OpNop:
		b.WriteString("nop")
	case OpLoadI:
		fmt.Fprintf(&b, "loadi %d", in.Imm)
	case OpLoadF:
		fmt.Fprintf(&b, "loadf %v", in.FImm)
	case OpLoadAI, OpFLoadAI:
		fmt.Fprintf(&b, "%s %s, %d", in.Op, arg(0), in.Imm)
	case OpStoreAI, OpFStoreAI:
		fmt.Fprintf(&b, "%s %s, %s, %d", in.Op, arg(0), arg(1), in.Imm)
	case OpAddr:
		fmt.Fprintf(&b, "addr %s, %d", in.Sym, in.Imm)
	case OpSpill, OpFSpill, OpCCMSpill, OpCCMFSpill:
		fmt.Fprintf(&b, "%s %s, %d", in.Op, arg(0), in.Imm)
	case OpRestore, OpFRestore, OpCCMRestore, OpCCMFRestore:
		fmt.Fprintf(&b, "%s %d", in.Op, in.Imm)
	case OpJmp:
		fmt.Fprintf(&b, "jmp %s", in.Then)
	case OpCBr:
		fmt.Fprintf(&b, "cbr %s, %s, %s", arg(0), in.Then, in.Else)
	case OpCall:
		parts := make([]string, len(in.Args))
		for i := range in.Args {
			parts[i] = arg(i)
		}
		fmt.Fprintf(&b, "call %s(%s)", in.Sym, strings.Join(parts, ", "))
	case OpRet:
		b.WriteString("ret")
		if len(in.Args) == 1 {
			fmt.Fprintf(&b, " %s", arg(0))
		}
	case OpPhi:
		parts := make([]string, len(in.Args))
		for i := range in.Args {
			parts[i] = arg(i)
		}
		fmt.Fprintf(&b, "phi %s", strings.Join(parts, ", "))
	default:
		// Uniform fixed-arity ops: "op a[, b]".
		b.WriteString(in.Op.String())
		for i := range in.Args {
			if i == 0 {
				b.WriteByte(' ')
			} else {
				b.WriteString(", ")
			}
			b.WriteString(arg(i))
		}
	}
	return b.String()
}

// String renders the function in the textual ILOC form accepted by Parse.
func (f *Func) String() string {
	var b strings.Builder
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = f.RegName(p)
	}
	fmt.Fprintf(&b, "func %s(%s)", f.Name, strings.Join(params, ", "))
	switch f.RetClass {
	case ClassInt:
		b.WriteString(" int")
	case ClassFloat:
		b.WriteString(" float")
	}
	b.WriteString(" {\n")
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:\n", blk.Name)
		for i := range blk.Instrs {
			fmt.Fprintf(&b, "\t%s\n", f.FormatInstr(&blk.Instrs[i]))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// String renders the whole program in parseable form.
func (p *Program) String() string {
	var b strings.Builder
	for _, g := range p.Globals {
		fmt.Fprintf(&b, "global %s %d", g.Name, g.Words)
		if len(g.Init) > 0 {
			b.WriteString(" = x")
			for _, w := range g.Init {
				fmt.Fprintf(&b, " %x", w)
			}
		}
		b.WriteByte('\n')
	}
	if len(p.Globals) > 0 {
		b.WriteByte('\n')
	}
	for i, f := range p.Funcs {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(f.String())
	}
	return b.String()
}
