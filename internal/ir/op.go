package ir

import "fmt"

// Class identifies a register class of the abstract machine. The target has
// two real classes (paper §4: 32 general-purpose and 32 floating-point
// registers); ClassNone marks the absence of a result.
type Class uint8

const (
	ClassNone Class = iota
	ClassInt
	ClassFloat
)

func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassInt:
		return "int"
	case ClassFloat:
		return "float"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Op is an ILOC-style opcode.
type Op uint8

const (
	OpNop Op = iota

	// Constants.
	OpLoadI // dst(int) = Imm
	OpLoadF // dst(float) = FImm

	// Integer arithmetic, dst = a ⊕ b.
	OpAdd
	OpSub
	OpMul
	OpDiv // traps on divide by zero
	OpRem // traps on divide by zero
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr

	// Integer unary.
	OpNeg
	OpNot

	// Integer comparisons, dst(int) = a ⊲ b ? 1 : 0.
	OpCmpLT
	OpCmpLE
	OpCmpGT
	OpCmpGE
	OpCmpEQ
	OpCmpNE

	// Floating-point arithmetic.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg
	OpFAbs
	OpFSqrt

	// Floating-point comparisons, dst(int).
	OpFCmpLT
	OpFCmpLE
	OpFCmpGT
	OpFCmpGE
	OpFCmpEQ
	OpFCmpNE

	// Conversions.
	OpI2F // dst(float) = float(a)
	OpF2I // dst(int) = trunc(a)

	// Register copies (coalescing candidates).
	OpCopy  // dst(int) = a
	OpFCopy // dst(float) = a

	// Main-memory access. Addresses are byte addresses, 8-aligned.
	OpLoad     // dst(int) = M[a]
	OpLoadAI   // dst(int) = M[a+Imm]
	OpStore    // M[b] = a          (a = value, b = address)
	OpStoreAI  // M[b+Imm] = a
	OpFLoad    // dst(float) = M[a]
	OpFLoadAI  // dst(float) = M[a+Imm]
	OpFStore   // M[b] = a
	OpFStoreAI // M[b+Imm] = a

	// OpAddr materializes the address of global Sym plus Imm bytes.
	OpAddr // dst(int) = &Sym + Imm

	// Heavyweight spill code (inserted by the register allocator).
	// Offsets (Imm) are byte offsets into the current activation record.
	OpSpill    // frame[Imm] = a   (int)
	OpRestore  // dst(int) = frame[Imm]
	OpFSpill   // frame[Imm] = a   (float)
	OpFRestore // dst(float) = frame[Imm]

	// CCM spill code (paper §2.1: "spill rX, (offset)" / "restore").
	// Offsets are byte offsets into the global compiler-controlled memory.
	OpCCMSpill    // CCM[Imm] = a   (int)
	OpCCMRestore  // dst(int) = CCM[Imm]
	OpCCMFSpill   // CCM[Imm] = a   (float)
	OpCCMFRestore // dst(float) = CCM[Imm]

	// Control flow. Every block ends with exactly one of these.
	OpJmp  // goto Then
	OpCBr  // if a != 0 goto Then else goto Else
	OpCall // dst? = Sym(Args...)  — not a terminator
	OpRet  // return Args[0]?

	// Observable output, used to compare program behaviour across
	// pipeline stages (the reproduction's semantic oracle).
	OpEmit  // emit int a
	OpFEmit // emit float a

	// SSA-only; never survives to allocation or simulation.
	OpPhi // dst = φ(Args...), Args aligned with block predecessors

	numOps
)

type opFlags uint16

const (
	flagTerm    opFlags = 1 << iota // block terminator
	flagMemMain                     // accesses main memory
	flagMemCCM                      // accesses the CCM address space
	flagStore                       // writes memory (main or CCM)
	flagLoad                        // reads memory (main or CCM)
	flagSideEff                     // must not be dead-code eliminated
	flagCommut                      // commutative binary op
	flagVarArgs                     // variable argument count (call, ret, phi)
)

type opInfo struct {
	name  string
	nargs int
	dst   Class
	arg0  Class
	arg1  Class
	flags opFlags
}

var opTable = [numOps]opInfo{
	OpNop:   {name: "nop", nargs: 0, dst: ClassNone},
	OpLoadI: {name: "loadi", nargs: 0, dst: ClassInt},
	OpLoadF: {name: "loadf", nargs: 0, dst: ClassFloat},

	OpAdd: {name: "add", nargs: 2, dst: ClassInt, arg0: ClassInt, arg1: ClassInt, flags: flagCommut},
	OpSub: {name: "sub", nargs: 2, dst: ClassInt, arg0: ClassInt, arg1: ClassInt},
	OpMul: {name: "mul", nargs: 2, dst: ClassInt, arg0: ClassInt, arg1: ClassInt, flags: flagCommut},
	OpDiv: {name: "div", nargs: 2, dst: ClassInt, arg0: ClassInt, arg1: ClassInt, flags: flagSideEff},
	OpRem: {name: "rem", nargs: 2, dst: ClassInt, arg0: ClassInt, arg1: ClassInt, flags: flagSideEff},
	OpAnd: {name: "and", nargs: 2, dst: ClassInt, arg0: ClassInt, arg1: ClassInt, flags: flagCommut},
	OpOr:  {name: "or", nargs: 2, dst: ClassInt, arg0: ClassInt, arg1: ClassInt, flags: flagCommut},
	OpXor: {name: "xor", nargs: 2, dst: ClassInt, arg0: ClassInt, arg1: ClassInt, flags: flagCommut},
	OpShl: {name: "shl", nargs: 2, dst: ClassInt, arg0: ClassInt, arg1: ClassInt},
	OpShr: {name: "shr", nargs: 2, dst: ClassInt, arg0: ClassInt, arg1: ClassInt},

	OpNeg: {name: "neg", nargs: 1, dst: ClassInt, arg0: ClassInt},
	OpNot: {name: "not", nargs: 1, dst: ClassInt, arg0: ClassInt},

	OpCmpLT: {name: "cmplt", nargs: 2, dst: ClassInt, arg0: ClassInt, arg1: ClassInt},
	OpCmpLE: {name: "cmple", nargs: 2, dst: ClassInt, arg0: ClassInt, arg1: ClassInt},
	OpCmpGT: {name: "cmpgt", nargs: 2, dst: ClassInt, arg0: ClassInt, arg1: ClassInt},
	OpCmpGE: {name: "cmpge", nargs: 2, dst: ClassInt, arg0: ClassInt, arg1: ClassInt},
	OpCmpEQ: {name: "cmpeq", nargs: 2, dst: ClassInt, arg0: ClassInt, arg1: ClassInt, flags: flagCommut},
	OpCmpNE: {name: "cmpne", nargs: 2, dst: ClassInt, arg0: ClassInt, arg1: ClassInt, flags: flagCommut},

	OpFAdd:  {name: "fadd", nargs: 2, dst: ClassFloat, arg0: ClassFloat, arg1: ClassFloat, flags: flagCommut},
	OpFSub:  {name: "fsub", nargs: 2, dst: ClassFloat, arg0: ClassFloat, arg1: ClassFloat},
	OpFMul:  {name: "fmul", nargs: 2, dst: ClassFloat, arg0: ClassFloat, arg1: ClassFloat, flags: flagCommut},
	OpFDiv:  {name: "fdiv", nargs: 2, dst: ClassFloat, arg0: ClassFloat, arg1: ClassFloat},
	OpFNeg:  {name: "fneg", nargs: 1, dst: ClassFloat, arg0: ClassFloat},
	OpFAbs:  {name: "fabs", nargs: 1, dst: ClassFloat, arg0: ClassFloat},
	OpFSqrt: {name: "fsqrt", nargs: 1, dst: ClassFloat, arg0: ClassFloat},

	OpFCmpLT: {name: "fcmplt", nargs: 2, dst: ClassInt, arg0: ClassFloat, arg1: ClassFloat},
	OpFCmpLE: {name: "fcmple", nargs: 2, dst: ClassInt, arg0: ClassFloat, arg1: ClassFloat},
	OpFCmpGT: {name: "fcmpgt", nargs: 2, dst: ClassInt, arg0: ClassFloat, arg1: ClassFloat},
	OpFCmpGE: {name: "fcmpge", nargs: 2, dst: ClassInt, arg0: ClassFloat, arg1: ClassFloat},
	OpFCmpEQ: {name: "fcmpeq", nargs: 2, dst: ClassInt, arg0: ClassFloat, arg1: ClassFloat, flags: flagCommut},
	OpFCmpNE: {name: "fcmpne", nargs: 2, dst: ClassInt, arg0: ClassFloat, arg1: ClassFloat, flags: flagCommut},

	OpI2F: {name: "i2f", nargs: 1, dst: ClassFloat, arg0: ClassInt},
	OpF2I: {name: "f2i", nargs: 1, dst: ClassInt, arg0: ClassFloat},

	OpCopy:  {name: "copy", nargs: 1, dst: ClassInt, arg0: ClassInt},
	OpFCopy: {name: "fcopy", nargs: 1, dst: ClassFloat, arg0: ClassFloat},

	OpLoad:     {name: "load", nargs: 1, dst: ClassInt, arg0: ClassInt, flags: flagMemMain | flagLoad | flagSideEff},
	OpLoadAI:   {name: "loadai", nargs: 1, dst: ClassInt, arg0: ClassInt, flags: flagMemMain | flagLoad | flagSideEff},
	OpStore:    {name: "store", nargs: 2, dst: ClassNone, arg0: ClassInt, arg1: ClassInt, flags: flagMemMain | flagStore | flagSideEff},
	OpStoreAI:  {name: "storeai", nargs: 2, dst: ClassNone, arg0: ClassInt, arg1: ClassInt, flags: flagMemMain | flagStore | flagSideEff},
	OpFLoad:    {name: "fload", nargs: 1, dst: ClassFloat, arg0: ClassInt, flags: flagMemMain | flagLoad | flagSideEff},
	OpFLoadAI:  {name: "floadai", nargs: 1, dst: ClassFloat, arg0: ClassInt, flags: flagMemMain | flagLoad | flagSideEff},
	OpFStore:   {name: "fstore", nargs: 2, dst: ClassNone, arg0: ClassFloat, arg1: ClassInt, flags: flagMemMain | flagStore | flagSideEff},
	OpFStoreAI: {name: "fstoreai", nargs: 2, dst: ClassNone, arg0: ClassFloat, arg1: ClassInt, flags: flagMemMain | flagStore | flagSideEff},

	OpAddr: {name: "addr", nargs: 0, dst: ClassInt},

	OpSpill:    {name: "spill", nargs: 1, dst: ClassNone, arg0: ClassInt, flags: flagMemMain | flagStore | flagSideEff},
	OpRestore:  {name: "restore", nargs: 0, dst: ClassInt, flags: flagMemMain | flagLoad | flagSideEff},
	OpFSpill:   {name: "fspill", nargs: 1, dst: ClassNone, arg0: ClassFloat, flags: flagMemMain | flagStore | flagSideEff},
	OpFRestore: {name: "frestore", nargs: 0, dst: ClassFloat, flags: flagMemMain | flagLoad | flagSideEff},

	OpCCMSpill:    {name: "ccmspill", nargs: 1, dst: ClassNone, arg0: ClassInt, flags: flagMemCCM | flagStore | flagSideEff},
	OpCCMRestore:  {name: "ccmrestore", nargs: 0, dst: ClassInt, flags: flagMemCCM | flagLoad | flagSideEff},
	OpCCMFSpill:   {name: "ccmfspill", nargs: 1, dst: ClassNone, arg0: ClassFloat, flags: flagMemCCM | flagStore | flagSideEff},
	OpCCMFRestore: {name: "ccmfrestore", nargs: 0, dst: ClassFloat, flags: flagMemCCM | flagLoad | flagSideEff},

	OpJmp:  {name: "jmp", nargs: 0, dst: ClassNone, flags: flagTerm | flagSideEff},
	OpCBr:  {name: "cbr", nargs: 1, dst: ClassNone, arg0: ClassInt, flags: flagTerm | flagSideEff},
	OpCall: {name: "call", nargs: -1, dst: ClassNone, flags: flagVarArgs | flagSideEff},
	OpRet:  {name: "ret", nargs: -1, dst: ClassNone, flags: flagTerm | flagVarArgs | flagSideEff},

	OpEmit:  {name: "emit", nargs: 1, dst: ClassNone, arg0: ClassInt, flags: flagSideEff},
	OpFEmit: {name: "femit", nargs: 1, dst: ClassNone, arg0: ClassFloat, flags: flagSideEff},

	OpPhi: {name: "phi", nargs: -1, dst: ClassNone, flags: flagVarArgs},
}

func (op Op) info() opInfo {
	if op >= numOps {
		return opInfo{name: fmt.Sprintf("Op(%d)", uint8(op))}
	}
	return opTable[op]
}

func (op Op) String() string { return op.info().name }

// IsTerminator reports whether op ends a basic block.
func (op Op) IsTerminator() bool { return op.info().flags&flagTerm != 0 }

// IsMainMemOp reports whether op accesses main memory (and therefore costs
// MemCost cycles on the abstract machine and goes through the cache model).
func (op Op) IsMainMemOp() bool { return op.info().flags&flagMemMain != 0 }

// IsCCMOp reports whether op accesses the compiler-controlled memory.
func (op Op) IsCCMOp() bool { return op.info().flags&flagMemCCM != 0 }

// IsMemOp reports whether op is a load/store of either address space.
func (op Op) IsMemOp() bool { return op.info().flags&(flagMemMain|flagMemCCM) != 0 }

// IsLoad reports whether op reads memory.
func (op Op) IsLoad() bool { return op.info().flags&flagLoad != 0 }

// IsStore reports whether op writes memory.
func (op Op) IsStore() bool { return op.info().flags&flagStore != 0 }

// HasSideEffects reports whether op must be preserved even when its result
// is unused.
func (op Op) HasSideEffects() bool { return op.info().flags&flagSideEff != 0 }

// IsCommutative reports whether op is a commutative binary operation.
func (op Op) IsCommutative() bool { return op.info().flags&flagCommut != 0 }

// IsSpill reports whether op is a heavyweight (main-memory) spill store.
func (op Op) IsSpill() bool { return op == OpSpill || op == OpFSpill }

// IsRestore reports whether op is a heavyweight (main-memory) spill load.
func (op Op) IsRestore() bool { return op == OpRestore || op == OpFRestore }

// IsCCMSpill reports whether op is a CCM spill store.
func (op Op) IsCCMSpill() bool { return op == OpCCMSpill || op == OpCCMFSpill }

// IsCCMRestore reports whether op is a CCM spill load.
func (op Op) IsCCMRestore() bool { return op == OpCCMRestore || op == OpCCMFRestore }

// DstClass returns the register class of op's result (ClassNone if none).
// Call results depend on the callee and are handled separately.
func (op Op) DstClass() Class { return op.info().dst }

// ArgClass returns the required class of argument i for fixed-arity ops.
func (op Op) ArgClass(i int) Class {
	inf := op.info()
	switch i {
	case 0:
		return inf.arg0
	case 1:
		return inf.arg1
	}
	return ClassNone
}

// NumArgs returns the fixed argument count, or -1 for variable-arity ops.
func (op Op) NumArgs() int { return op.info().nargs }

// opByName maps the textual opcode name back to the Op (used by the parser).
var opByName = func() map[string]Op {
	m := make(map[string]Op, numOps)
	for op := Op(0); op < numOps; op++ {
		m[opTable[op].name] = op
	}
	return m
}()

// SpillOpFor returns the heavyweight spill/restore opcodes for a class.
func SpillOpFor(c Class) (spill, restore Op) {
	if c == ClassFloat {
		return OpFSpill, OpFRestore
	}
	return OpSpill, OpRestore
}

// CCMOpFor returns the CCM spill/restore opcodes for a class.
func CCMOpFor(c Class) (spill, restore Op) {
	if c == ClassFloat {
		return OpCCMFSpill, OpCCMFRestore
	}
	return OpCCMSpill, OpCCMRestore
}

// CopyOpFor returns the register-copy opcode for a class.
func CopyOpFor(c Class) Op {
	if c == ClassFloat {
		return OpFCopy
	}
	return OpCopy
}
