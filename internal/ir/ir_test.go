package ir

import (
	"strings"
	"testing"
)

func TestOpMetadata(t *testing.T) {
	cases := []struct {
		op       Op
		term     bool
		mainMem  bool
		ccm      bool
		sideEff  bool
		commut   bool
		dstClass Class
		nargs    int
	}{
		{OpNop, false, false, false, false, false, ClassNone, 0},
		{OpAdd, false, false, false, false, true, ClassInt, 2},
		{OpSub, false, false, false, false, false, ClassInt, 2},
		{OpFMul, false, false, false, false, true, ClassFloat, 2},
		{OpFCmpLT, false, false, false, false, false, ClassInt, 2},
		{OpLoad, false, true, false, true, false, ClassInt, 1},
		{OpFStoreAI, false, true, false, true, false, ClassNone, 2},
		{OpSpill, false, true, false, true, false, ClassNone, 1},
		{OpRestore, false, true, false, true, false, ClassInt, 0},
		{OpCCMSpill, false, false, true, true, false, ClassNone, 1},
		{OpCCMFRestore, false, false, true, true, false, ClassFloat, 0},
		{OpJmp, true, false, false, true, false, ClassNone, 0},
		{OpCBr, true, false, false, true, false, ClassNone, 1},
		{OpRet, true, false, false, true, false, ClassNone, -1},
		{OpCall, false, false, false, true, false, ClassNone, -1},
		{OpEmit, false, false, false, true, false, ClassNone, 1},
		{OpDiv, false, false, false, true, false, ClassInt, 2},
	}
	for _, c := range cases {
		if c.op.IsTerminator() != c.term {
			t.Errorf("%v IsTerminator = %v", c.op, !c.term)
		}
		if c.op.IsMainMemOp() != c.mainMem {
			t.Errorf("%v IsMainMemOp = %v", c.op, !c.mainMem)
		}
		if c.op.IsCCMOp() != c.ccm {
			t.Errorf("%v IsCCMOp = %v", c.op, !c.ccm)
		}
		if c.op.HasSideEffects() != c.sideEff {
			t.Errorf("%v HasSideEffects = %v", c.op, !c.sideEff)
		}
		if c.op.IsCommutative() != c.commut {
			t.Errorf("%v IsCommutative = %v", c.op, !c.commut)
		}
		if c.op.DstClass() != c.dstClass {
			t.Errorf("%v DstClass = %v", c.op, c.op.DstClass())
		}
		if c.op.NumArgs() != c.nargs {
			t.Errorf("%v NumArgs = %d", c.op, c.op.NumArgs())
		}
	}
}

func TestOpNamesUniqueAndParseable(t *testing.T) {
	seen := map[string]Op{}
	for op := Op(0); op < numOps; op++ {
		name := op.String()
		if name == "" {
			t.Fatalf("op %d has no name", op)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("ops %v and %v share name %q", prev, op, name)
		}
		seen[name] = op
		if got, ok := opByName[name]; !ok || got != op {
			t.Fatalf("opByName[%q] = %v, want %v", name, got, op)
		}
	}
}

func TestOpHelperPairs(t *testing.T) {
	if s, r := SpillOpFor(ClassInt); s != OpSpill || r != OpRestore {
		t.Fatal("SpillOpFor(int)")
	}
	if s, r := SpillOpFor(ClassFloat); s != OpFSpill || r != OpFRestore {
		t.Fatal("SpillOpFor(float)")
	}
	if s, r := CCMOpFor(ClassInt); s != OpCCMSpill || r != OpCCMRestore {
		t.Fatal("CCMOpFor(int)")
	}
	if s, r := CCMOpFor(ClassFloat); s != OpCCMFSpill || r != OpCCMFRestore {
		t.Fatal("CCMOpFor(float)")
	}
	if CopyOpFor(ClassInt) != OpCopy || CopyOpFor(ClassFloat) != OpFCopy {
		t.Fatal("CopyOpFor")
	}
}

func TestSpillPredicates(t *testing.T) {
	for _, op := range []Op{OpSpill, OpFSpill} {
		if !op.IsSpill() || op.IsRestore() || op.IsCCMSpill() {
			t.Errorf("%v spill predicates wrong", op)
		}
	}
	for _, op := range []Op{OpCCMRestore, OpCCMFRestore} {
		if !op.IsCCMRestore() || op.IsCCMSpill() || op.IsRestore() {
			t.Errorf("%v ccm predicates wrong", op)
		}
	}
}

func buildMini(t *testing.T) *Func {
	t.Helper()
	b := NewBuilder("mini", ClassInt)
	n := b.Param(ClassInt, "n")
	b.Label("entry")
	one := b.ConstI(1)
	b.CBr(b.CmpGT(n, one), "big", "small")
	b.Label("big")
	b.RetVal(b.Mul(n, n))
	b.Label("small")
	b.RetVal(b.Add(n, one))
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestBuilderBasics(t *testing.T) {
	f := buildMini(t)
	if f.Name != "mini" || f.RetClass != ClassInt {
		t.Fatal("header wrong")
	}
	if len(f.Blocks) != 3 || f.Entry().Name != "entry" {
		t.Fatal("blocks wrong")
	}
	if err := VerifyFunc(f, nil, VerifyOptions{}); err != nil {
		t.Fatal(err)
	}
	if f.NumInstrs() != 7 {
		t.Fatalf("NumInstrs = %d", f.NumInstrs())
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("bad", ClassNone)
	x := b.Reg(ClassInt, "x")
	b.Append(Instr{Op: OpEmit, Dst: NoReg, Args: []Reg{x}}) // before any label
	if _, err := b.Finish(); err == nil || !strings.Contains(err.Error(), "before any Label") {
		t.Fatalf("err = %v", err)
	}

	b2 := NewBuilder("bad2", ClassNone)
	b2.Label("entry")
	b2.Ret()
	b2.Emit(b2.ConstI(1)) // after terminator — ConstI emits after ret
	if _, err := b2.Finish(); err == nil || !strings.Contains(err.Error(), "after terminator") {
		t.Fatalf("err = %v", err)
	}

	b3 := NewBuilder("bad3", ClassNone)
	b3.Label("entry")
	// missing terminator
	b3.Emit(b3.ConstI(1))
	// move emit before: actually ConstI ran first; block ends without term
	if _, err := b3.Finish(); err == nil || !strings.Contains(err.Error(), "terminator") {
		t.Fatalf("err = %v", err)
	}

	b4 := NewBuilder("bad4", ClassNone)
	b4.At("nosuch")
	b4.Label("entry")
	b4.Ret()
	if _, err := b4.Finish(); err == nil || !strings.Contains(err.Error(), "no such block") {
		t.Fatalf("err = %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := buildMini(t)
	p := &Program{}
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	if err := p.AddGlobal(&Global{Name: "G", Words: 4, Init: []uint64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	q := p.Clone()
	// Mutate original deeply.
	f.Blocks[0].Instrs[0].Imm = 999
	f.Blocks[0].Instrs[1].Args[0] = Reg(0)
	p.Globals[0].Init[0] = 77
	p.Globals[0].Name = "H"

	qf := q.Func("mini")
	if qf.Blocks[0].Instrs[0].Imm == 999 {
		t.Fatal("instr aliased")
	}
	if q.Globals[0].Init[0] == 77 || q.Globals[0].Name != "G" {
		t.Fatal("global aliased")
	}
}

func TestProgramLookupAndDuplicates(t *testing.T) {
	p := &Program{}
	f := buildMini(t)
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	if err := p.AddFunc(f.Clone()); err == nil {
		t.Fatal("duplicate function accepted")
	}
	if p.Func("mini") == nil || p.Func("nope") != nil {
		t.Fatal("Func lookup wrong")
	}
	g := &Global{Name: "A", Words: 1}
	if err := p.AddGlobal(g); err != nil {
		t.Fatal(err)
	}
	if err := p.AddGlobal(&Global{Name: "A", Words: 2}); err == nil {
		t.Fatal("duplicate global accepted")
	}
	if p.Global("A") == nil || p.Global("B") != nil {
		t.Fatal("Global lookup wrong")
	}
	if g.Bytes() != 8 {
		t.Fatalf("Bytes = %d", g.Bytes())
	}
}

func TestTargetsAndTerm(t *testing.T) {
	f := buildMini(t)
	entry := f.Entry()
	term := entry.Term()
	if term == nil || term.Op != OpCBr {
		t.Fatal("entry terminator")
	}
	tg := term.Targets()
	if len(tg) != 2 || tg[0] != "big" || tg[1] != "small" {
		t.Fatalf("targets = %v", tg)
	}
	jmp := Instr{Op: OpJmp, Dst: NoReg, Then: "x"}
	if got := jmp.Targets(); len(got) != 1 || got[0] != "x" {
		t.Fatal("jmp targets")
	}
	ret := Instr{Op: OpRet, Dst: NoReg}
	if ret.Targets() != nil {
		t.Fatal("ret targets")
	}
}

func TestRegNameAndClass(t *testing.T) {
	f := &Func{Name: "x"}
	r := f.NewReg(ClassInt, "a")
	fl := f.NewReg(ClassFloat, "b")
	if f.RegName(r) != "r0" || f.RegName(fl) != "f1" {
		t.Fatalf("names %q %q", f.RegName(r), f.RegName(fl))
	}
	if f.RegName(NoReg) != "_" {
		t.Fatal("NoReg name")
	}
	if f.RegClass(r) != ClassInt || f.RegClass(fl) != ClassFloat {
		t.Fatal("classes")
	}
	if f.RegClass(Reg(99)) != ClassNone || f.RegClass(NoReg) != ClassNone {
		t.Fatal("out-of-range class")
	}
}

func TestRenumber(t *testing.T) {
	f := buildMini(t)
	f.Blocks[0], f.Blocks[2] = f.Blocks[2], f.Blocks[0]
	f.Renumber()
	for i, b := range f.Blocks {
		if b.Index != i {
			t.Fatalf("block %s index %d at position %d", b.Name, b.Index, i)
		}
	}
}

func TestClassString(t *testing.T) {
	if ClassInt.String() != "int" || ClassFloat.String() != "float" || ClassNone.String() != "none" {
		t.Fatal("class strings")
	}
}
