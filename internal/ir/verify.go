package ir

import (
	"fmt"
)

// VerifyOptions control which structural rules Verify enforces.
type VerifyOptions struct {
	// AllowPhi permits OpPhi instructions (they appear only inside the SSA
	// passes; final code must be phi-free).
	AllowPhi bool
}

// VerifyProgram checks structural invariants for every function in p.
func VerifyProgram(p *Program, opts VerifyOptions) error {
	seenG := map[string]bool{}
	for _, g := range p.Globals {
		if seenG[g.Name] {
			return fmt.Errorf("ir: duplicate global %q", g.Name)
		}
		seenG[g.Name] = true
		if g.Words < 0 {
			return fmt.Errorf("ir: global %q has negative size", g.Name)
		}
		if len(g.Init) > g.Words {
			return fmt.Errorf("ir: global %q: %d initializers for %d words", g.Name, len(g.Init), g.Words)
		}
	}
	seenF := map[string]bool{}
	for _, f := range p.Funcs {
		if seenF[f.Name] {
			return fmt.Errorf("ir: duplicate function %q", f.Name)
		}
		seenF[f.Name] = true
	}
	for _, f := range p.Funcs {
		if err := VerifyFunc(f, p, opts); err != nil {
			return err
		}
	}
	return nil
}

// VerifyFunc checks one function against the program (for call and global
// references; prog may be nil to skip cross-references).
func VerifyFunc(f *Func, prog *Program, opts VerifyOptions) error {
	errf := func(format string, args ...any) error {
		return fmt.Errorf("ir: func %s: %s", f.Name, fmt.Sprintf(format, args...))
	}
	if len(f.Blocks) == 0 {
		return errf("no blocks")
	}
	if f.Allocated {
		if len(f.Regs) != f.NumInt+f.NumFloat {
			return errf("allocated function has %d regs, want %d int + %d float",
				len(f.Regs), f.NumInt, f.NumFloat)
		}
		for i, ri := range f.Regs {
			want := ClassInt
			if i >= f.NumInt {
				want = ClassFloat
			}
			if ri.Class != want {
				return errf("allocated reg %d has class %v, want %v", i, ri.Class, want)
			}
		}
		if f.FrameBytes < 0 || f.FrameBytes%WordBytes != 0 {
			return errf("bad frame size %d", f.FrameBytes)
		}
	}

	labels := map[string]*Block{}
	for _, b := range f.Blocks {
		if b.Name == "" {
			return errf("unnamed block")
		}
		if labels[b.Name] != nil {
			return errf("duplicate block label %q", b.Name)
		}
		labels[b.Name] = b
	}

	// The label describing a checked register ("mul arg 1", "param 0") is
	// carried as a regLabel value and rendered only when a check fails:
	// building it eagerly put a fmt.Sprintf on every argument of every
	// instruction, one of the hottest allocation sites of a cold compile.
	checkReg := func(b *Block, r Reg, want Class, what regLabel) error {
		if r == NoReg || int(r) >= len(f.Regs) {
			return errf("block %s: %s register %d out of range", b.Name, what, r)
		}
		got := f.Regs[r].Class
		if got == ClassNone {
			return errf("block %s: %s register %d has no class", b.Name, what, r)
		}
		if want != ClassNone && got != want {
			return errf("block %s: %s register %s has class %v, want %v",
				b.Name, what, f.RegName(r), got, want)
		}
		return nil
	}

	for pi, pr := range f.Params {
		if err := checkReg(f.Blocks[0], pr, ClassNone, regLabel{what: "param", idx: pi}); err != nil {
			return err
		}
		for pj := 0; pj < pi; pj++ {
			if f.Params[pj] == pr {
				return errf("duplicate parameter register %s", f.RegName(pr))
			}
		}
	}

	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return errf("block %s is empty", b.Name)
		}
		sawNonPhi := false
		for i := range b.Instrs {
			in := &b.Instrs[i]
			last := i == len(b.Instrs)-1
			if in.Op.IsTerminator() != last {
				if last {
					return errf("block %s does not end with a terminator (ends with %s)", b.Name, in.Op)
				}
				return errf("block %s: terminator %s in mid-block position %d", b.Name, in.Op, i)
			}
			if in.Op == OpPhi {
				if !opts.AllowPhi {
					return errf("block %s: phi present but not allowed at this stage", b.Name)
				}
				if sawNonPhi {
					return errf("block %s: phi after non-phi instruction", b.Name)
				}
			} else {
				sawNonPhi = true
			}
			if err := verifyInstr(f, prog, b, in, checkReg, errf); err != nil {
				return err
			}
		}
		term := b.Term()
		checkTarget := func(t string) error {
			if labels[t] == nil {
				return errf("block %s branches to unknown label %q", b.Name, t)
			}
			return nil
		}
		switch term.Op {
		case OpJmp:
			if err := checkTarget(term.Then); err != nil {
				return err
			}
		case OpCBr:
			if err := checkTarget(term.Then); err != nil {
				return err
			}
			if err := checkTarget(term.Else); err != nil {
				return err
			}
		}
	}
	return nil
}

// regLabel names a checked register position without allocating: the
// human-readable form ("mul arg 1", "call result") is composed in String,
// which runs only inside error formatting.
type regLabel struct {
	what  string
	op    Op
	hasOp bool
	idx   int // appended when >= 0
}

// plainLabel builds a label with no op prefix and no index.
func plainLabel(what string) regLabel { return regLabel{what: what, idx: -1} }

func (l regLabel) String() string {
	s := l.what
	if l.hasOp {
		s = l.op.String() + " " + s
	}
	if l.idx >= 0 {
		s = fmt.Sprintf("%s %d", s, l.idx)
	}
	return s
}

func verifyInstr(f *Func, prog *Program, b *Block, in *Instr,
	checkReg func(*Block, Reg, Class, regLabel) error,
	errf func(string, ...any) error) error {

	// Destination.
	switch in.Op {
	case OpCall:
		if in.Dst != NoReg {
			if err := checkReg(b, in.Dst, ClassNone, plainLabel("call result")); err != nil {
				return err
			}
		}
	case OpPhi:
		if in.Dst == NoReg {
			return errf("block %s: phi without destination", b.Name)
		}
		if err := checkReg(b, in.Dst, ClassNone, plainLabel("phi result")); err != nil {
			return err
		}
	default:
		want := in.Op.DstClass()
		if want == ClassNone {
			if in.Dst != NoReg {
				return errf("block %s: %s must not have a destination", b.Name, in.Op)
			}
		} else {
			if in.Dst == NoReg {
				return errf("block %s: %s requires a destination", b.Name, in.Op)
			}
			if err := checkReg(b, in.Dst, want, regLabel{what: "result", op: in.Op, hasOp: true, idx: -1}); err != nil {
				return err
			}
		}
	}

	// Arguments.
	switch in.Op {
	case OpCall:
		if prog != nil {
			callee := prog.Func(in.Sym)
			if callee == nil {
				return errf("block %s: call to unknown function %q", b.Name, in.Sym)
			}
			if len(in.Args) != len(callee.Params) {
				return errf("block %s: call %s passes %d args, callee wants %d",
					b.Name, in.Sym, len(in.Args), len(callee.Params))
			}
			for i, a := range in.Args {
				want := callee.RegClass(callee.Params[i])
				if err := checkReg(b, a, want, regLabel{what: "call arg", idx: i}); err != nil {
					return err
				}
			}
			if in.Dst != NoReg {
				if callee.RetClass == ClassNone {
					return errf("block %s: call %s captures result of void function", b.Name, in.Sym)
				}
				if err := checkReg(b, in.Dst, callee.RetClass, plainLabel("call result")); err != nil {
					return err
				}
			}
		} else {
			for i, a := range in.Args {
				if err := checkReg(b, a, ClassNone, regLabel{what: "call arg", idx: i}); err != nil {
					return err
				}
			}
		}
	case OpRet:
		switch f.RetClass {
		case ClassNone:
			if len(in.Args) != 0 {
				return errf("block %s: ret with value in void function", b.Name)
			}
		default:
			if len(in.Args) != 1 {
				return errf("block %s: ret must return one value", b.Name)
			}
			if err := checkReg(b, in.Args[0], f.RetClass, plainLabel("ret value")); err != nil {
				return err
			}
		}
	case OpPhi:
		want := f.RegClass(in.Dst)
		for i, a := range in.Args {
			if err := checkReg(b, a, want, regLabel{what: "phi arg", idx: i}); err != nil {
				return err
			}
		}
	default:
		want := in.Op.NumArgs()
		if len(in.Args) != want {
			return errf("block %s: %s has %d operands, want %d", b.Name, in.Op, len(in.Args), want)
		}
		for i, a := range in.Args {
			if err := checkReg(b, a, in.Op.ArgClass(i), regLabel{what: "arg", op: in.Op, hasOp: true, idx: i}); err != nil {
				return err
			}
		}
	}

	// Immediates and symbols.
	switch in.Op {
	case OpAddr:
		if prog != nil {
			g := prog.Global(in.Sym)
			if g == nil {
				return errf("block %s: addr of unknown global %q", b.Name, in.Sym)
			}
			if in.Imm < 0 || in.Imm >= g.Bytes()+WordBytes {
				return errf("block %s: addr %s offset %d outside global (%d bytes)",
					b.Name, in.Sym, in.Imm, g.Bytes())
			}
		}
	case OpSpill, OpFSpill, OpRestore, OpFRestore:
		if in.Imm < 0 || in.Imm%WordBytes != 0 {
			return errf("block %s: %s has bad frame offset %d", b.Name, in.Op, in.Imm)
		}
		if f.Allocated && in.Imm+WordBytes > f.FrameBytes {
			return errf("block %s: %s offset %d exceeds frame (%d bytes)", b.Name, in.Op, in.Imm, f.FrameBytes)
		}
	case OpCCMSpill, OpCCMFSpill, OpCCMRestore, OpCCMFRestore:
		if in.Imm < 0 || in.Imm%WordBytes != 0 {
			return errf("block %s: %s has bad CCM offset %d", b.Name, in.Op, in.Imm)
		}
	}
	return nil
}
