package ir

import (
	"strings"
	"testing"
)

// verifyErr parses src, expecting Parse to succeed and VerifyProgram to
// fail with a message containing want.
func verifyErr(t *testing.T, src, want string) {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse failed: %v", err)
	}
	err = VerifyProgram(p, VerifyOptions{})
	if err == nil {
		t.Fatalf("verify accepted bad program (want %q)", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not contain %q", err.Error(), want)
	}
}

func verifyOK(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyProgram(p, VerifyOptions{}); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestVerifyGoodProgram(t *testing.T) {
	verifyOK(t, `
global A 2 = i 1 2
func main() {
entry:
	r0 = addr A, 0
	r1 = load r0
	emit r1
	f2 = loadf 1.5
	femit f2
	r3 = call helper(r1)
	emit r3
	ret
}
func helper(r0) int {
entry:
	r1 = loadi 2
	r2 = mul r0, r1
	ret r2
}
`)
}

func TestVerifyBranchToUnknownLabel(t *testing.T) {
	verifyErr(t, `
func main() {
entry:
	jmp nowhere
}
`, "unknown label")
}

func TestVerifyMidBlockTerminator(t *testing.T) {
	// The parser rejects instructions after a terminator, so build directly.
	f := &Func{Name: "m"}
	r := f.NewReg(ClassInt, "")
	f.Blocks = []*Block{{Name: "entry", Instrs: []Instr{
		{Op: OpRet, Dst: NoReg},
		{Op: OpLoadI, Dst: r, Imm: 1},
	}}}
	// Manually craft: terminator mid-block (ret then more instrs then no term).
	err := VerifyFunc(f, nil, VerifyOptions{})
	if err == nil || !strings.Contains(err.Error(), "terminator") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyMissingTerminator(t *testing.T) {
	f := &Func{Name: "m"}
	r := f.NewReg(ClassInt, "")
	f.Blocks = []*Block{{Name: "entry", Instrs: []Instr{
		{Op: OpLoadI, Dst: r, Imm: 1},
	}}}
	err := VerifyFunc(f, nil, VerifyOptions{})
	if err == nil || !strings.Contains(err.Error(), "does not end with a terminator") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyEmptyBlock(t *testing.T) {
	f := &Func{Name: "m", Blocks: []*Block{{Name: "entry"}}}
	err := VerifyFunc(f, nil, VerifyOptions{})
	if err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyClassMismatch(t *testing.T) {
	f := &Func{Name: "m"}
	ri := f.NewReg(ClassInt, "")
	rf := f.NewReg(ClassFloat, "")
	f.Blocks = []*Block{{Name: "entry", Instrs: []Instr{
		{Op: OpFAdd, Dst: rf, Args: []Reg{ri, rf}},
		{Op: OpRet, Dst: NoReg},
	}}}
	err := VerifyFunc(f, nil, VerifyOptions{})
	if err == nil || !strings.Contains(err.Error(), "class") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyDstRules(t *testing.T) {
	f := &Func{Name: "m"}
	r := f.NewReg(ClassInt, "")
	// store must not have a destination
	f.Blocks = []*Block{{Name: "entry", Instrs: []Instr{
		{Op: OpStore, Dst: r, Args: []Reg{r, r}},
		{Op: OpRet, Dst: NoReg},
	}}}
	if err := VerifyFunc(f, nil, VerifyOptions{}); err == nil ||
		!strings.Contains(err.Error(), "must not have a destination") {
		t.Fatalf("err = %v", err)
	}
	// add requires a destination
	f.Blocks = []*Block{{Name: "entry", Instrs: []Instr{
		{Op: OpAdd, Dst: NoReg, Args: []Reg{r, r}},
		{Op: OpRet, Dst: NoReg},
	}}}
	if err := VerifyFunc(f, nil, VerifyOptions{}); err == nil ||
		!strings.Contains(err.Error(), "requires a destination") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyArityMismatch(t *testing.T) {
	f := &Func{Name: "m"}
	r := f.NewReg(ClassInt, "")
	f.Blocks = []*Block{{Name: "entry", Instrs: []Instr{
		{Op: OpAdd, Dst: r, Args: []Reg{r}},
		{Op: OpRet, Dst: NoReg},
	}}}
	if err := VerifyFunc(f, nil, VerifyOptions{}); err == nil ||
		!strings.Contains(err.Error(), "operands") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyCallRules(t *testing.T) {
	verifyErr(t, `
func main() {
entry:
	call nothing()
	ret
}
`, "unknown function")

	verifyErr(t, `
func main() {
entry:
	r0 = loadi 1
	call f(r0, r0)
	ret
}
func f(r0) {
entry:
	ret
}
`, "passes 2 args")

	verifyErr(t, `
func main() {
entry:
	f10 = loadf 1.0
	call f(f10)
	ret
}
func f(r0) {
entry:
	ret
}
`, "class")

	verifyErr(t, `
func main() {
entry:
	r0 = call f()
	emit r0
	ret
}
func f() {
entry:
	ret
}
`, "void function")
}

func TestVerifyRetRules(t *testing.T) {
	verifyErr(t, `
func main() {
entry:
	r0 = loadi 1
	ret r0
}
`, "ret with value in void function")

	verifyErr(t, `
func f() int {
entry:
	ret
}
`, "ret must return one value")

	verifyErr(t, `
func f() float {
entry:
	r0 = loadi 1
	ret r0
}
`, "class")
}

func TestVerifyAddrRules(t *testing.T) {
	verifyErr(t, `
func main() {
entry:
	r0 = addr G, 0
	emit r0
	ret
}
`, "unknown global")

	verifyErr(t, `
global G 2
func main() {
entry:
	r0 = addr G, 64
	emit r0
	ret
}
`, "outside global")
}

func TestVerifySpillOffsets(t *testing.T) {
	verifyErr(t, `
func main() {
entry:
	r0 = loadi 1
	spill r0, 12
	ret
}
`, "bad frame offset")

	verifyErr(t, `
func main() {
entry:
	r0 = loadi 1
	ccmspill r0, -8
	ret
}
`, "bad CCM offset")
}

func TestVerifyPhiRules(t *testing.T) {
	f := &Func{Name: "m"}
	r := f.NewReg(ClassInt, "")
	r2 := f.NewReg(ClassInt, "")
	f.Blocks = []*Block{{Name: "entry", Instrs: []Instr{
		{Op: OpPhi, Dst: r, Args: []Reg{r2}},
		{Op: OpRet, Dst: NoReg},
	}}}
	if err := VerifyFunc(f, nil, VerifyOptions{}); err == nil ||
		!strings.Contains(err.Error(), "phi present") {
		t.Fatalf("phi without AllowPhi: err = %v", err)
	}
	if err := VerifyFunc(f, nil, VerifyOptions{AllowPhi: true}); err != nil {
		t.Fatalf("phi with AllowPhi rejected: %v", err)
	}
	// Phi after non-phi.
	f.Blocks = []*Block{{Name: "entry", Instrs: []Instr{
		{Op: OpLoadI, Dst: r2, Imm: 1},
		{Op: OpPhi, Dst: r, Args: []Reg{r2}},
		{Op: OpRet, Dst: NoReg},
	}}}
	if err := VerifyFunc(f, nil, VerifyOptions{AllowPhi: true}); err == nil ||
		!strings.Contains(err.Error(), "phi after non-phi") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyAllocatedLayout(t *testing.T) {
	f := &Func{Name: "m", Allocated: true, NumInt: 2, NumFloat: 1}
	f.Regs = []RegInfo{{Class: ClassInt}, {Class: ClassInt}, {Class: ClassFloat}}
	f.Blocks = []*Block{{Name: "entry", Instrs: []Instr{{Op: OpRet, Dst: NoReg}}}}
	if err := VerifyFunc(f, nil, VerifyOptions{}); err != nil {
		t.Fatalf("good layout rejected: %v", err)
	}
	f.Regs[1].Class = ClassFloat
	if err := VerifyFunc(f, nil, VerifyOptions{}); err == nil {
		t.Fatal("bad layout accepted")
	}
	f.Regs[1].Class = ClassInt
	f.FrameBytes = 12 // unaligned
	if err := VerifyFunc(f, nil, VerifyOptions{}); err == nil {
		t.Fatal("unaligned frame accepted")
	}
	f.FrameBytes = 8
	f.Blocks[0].Instrs = []Instr{
		{Op: OpRestore, Dst: Reg(0), Imm: 8}, // beyond frame
		{Op: OpRet, Dst: NoReg},
	}
	if err := VerifyFunc(f, nil, VerifyOptions{}); err == nil ||
		!strings.Contains(err.Error(), "exceeds frame") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyDuplicateParams(t *testing.T) {
	f := &Func{Name: "m"}
	r := f.NewReg(ClassInt, "")
	f.Params = []Reg{r, r}
	f.Blocks = []*Block{{Name: "entry", Instrs: []Instr{{Op: OpRet, Dst: NoReg}}}}
	if err := VerifyFunc(f, nil, VerifyOptions{}); err == nil ||
		!strings.Contains(err.Error(), "duplicate parameter") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyGlobalRules(t *testing.T) {
	p := &Program{Globals: []*Global{{Name: "A", Words: 1, Init: []uint64{1, 2}}}}
	if err := VerifyProgram(p, VerifyOptions{}); err == nil ||
		!strings.Contains(err.Error(), "initializers") {
		t.Fatalf("err = %v", err)
	}
}
