package ir

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Parse reads a whole program in the textual ILOC form produced by
// Program.String. The grammar, line oriented:
//
//	global NAME WORDS [= (i|f|x) v v v ...]
//	func NAME(r0, f1, ...) [int|float] {
//	label:
//		[rN|fN =] op operands
//	}
//
// '#' starts a comment that runs to end of line. Register names use a
// shared index space: r5 and f5 denote the same register slot, and the
// prefix fixes its class; using both prefixes for one index is an error.
func Parse(src string) (*Program, error) {
	p := &parser{prog: &Program{}}
	if err := p.run(src); err != nil {
		return nil, err
	}
	return p.prog, nil
}

type parser struct {
	prog *Program
	f    *Func
	blk  *Block
	line int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("parse line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *parser) run(src string) error {
	for _, raw := range strings.Split(src, "\n") {
		p.line++
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var err error
		switch {
		case strings.HasPrefix(line, "global "):
			err = p.parseGlobal(line)
		case strings.HasPrefix(line, "func "):
			err = p.parseFuncHeader(line)
		case line == "}":
			err = p.endFunc()
		case strings.HasSuffix(line, ":") && !strings.Contains(line, " "):
			err = p.startBlock(strings.TrimSuffix(line, ":"))
		default:
			err = p.parseInstr(line)
		}
		if err != nil {
			return err
		}
	}
	if p.f != nil {
		return p.errf("missing closing brace for func %s", p.f.Name)
	}
	return nil
}

func (p *parser) parseGlobal(line string) error {
	if p.f != nil {
		return p.errf("global declaration inside function")
	}
	rest := strings.TrimPrefix(line, "global ")
	var init string
	if i := strings.IndexByte(rest, '='); i >= 0 {
		init = strings.TrimSpace(rest[i+1:])
		rest = strings.TrimSpace(rest[:i])
	}
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		return p.errf("global wants 'global NAME WORDS', got %q", line)
	}
	words, err := strconv.Atoi(fields[1])
	if err != nil || words < 0 {
		return p.errf("bad global size %q", fields[1])
	}
	g := &Global{Name: fields[0], Words: words}
	if init != "" {
		vals := strings.Fields(init)
		if len(vals) < 1 {
			return p.errf("empty global initializer")
		}
		kind, vals := vals[0], vals[1:]
		if len(vals) > words {
			return p.errf("global %s: %d initializers for %d words", g.Name, len(vals), words)
		}
		for _, v := range vals {
			switch kind {
			case "i":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return p.errf("bad int initializer %q", v)
				}
				g.Init = append(g.Init, uint64(n))
			case "f":
				x, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return p.errf("bad float initializer %q", v)
				}
				g.Init = append(g.Init, math.Float64bits(x))
			case "x":
				n, err := strconv.ParseUint(v, 16, 64)
				if err != nil {
					return p.errf("bad hex initializer %q", v)
				}
				g.Init = append(g.Init, n)
			default:
				return p.errf("unknown initializer kind %q (want i, f, or x)", kind)
			}
		}
	}
	return p.prog.AddGlobal(g)
}

func (p *parser) parseFuncHeader(line string) error {
	if p.f != nil {
		return p.errf("nested func")
	}
	rest := strings.TrimPrefix(line, "func ")
	if !strings.HasSuffix(rest, "{") {
		return p.errf("func header must end with '{'")
	}
	rest = strings.TrimSpace(strings.TrimSuffix(rest, "{"))
	open := strings.IndexByte(rest, '(')
	close_ := strings.LastIndexByte(rest, ')')
	if open < 0 || close_ < open {
		return p.errf("malformed func header %q", line)
	}
	name := strings.TrimSpace(rest[:open])
	if name == "" {
		return p.errf("func missing name")
	}
	ret := ClassNone
	switch tail := strings.TrimSpace(rest[close_+1:]); tail {
	case "":
	case "int":
		ret = ClassInt
	case "float":
		ret = ClassFloat
	default:
		return p.errf("unknown return class %q", tail)
	}
	p.f = &Func{Name: name, RetClass: ret}
	params := strings.TrimSpace(rest[open+1 : close_])
	if params != "" {
		for _, tok := range strings.Split(params, ",") {
			r, err := p.reg(strings.TrimSpace(tok))
			if err != nil {
				return err
			}
			p.f.Params = append(p.f.Params, r)
		}
	}
	return nil
}

func (p *parser) endFunc() error {
	if p.f == nil {
		return p.errf("unexpected '}'")
	}
	if len(p.f.Blocks) == 0 {
		return p.errf("func %s has no blocks", p.f.Name)
	}
	p.f.Renumber()
	err := p.prog.AddFunc(p.f)
	p.f, p.blk = nil, nil
	return err
}

func (p *parser) startBlock(name string) error {
	if p.f == nil {
		return p.errf("label %q outside function", name)
	}
	if p.f.BlockNamed(name) != nil {
		return p.errf("duplicate block label %q", name)
	}
	p.blk = &Block{Name: name, Index: len(p.f.Blocks)}
	p.f.Blocks = append(p.f.Blocks, p.blk)
	return nil
}

// reg resolves a register token ("r12", "f3"), growing the register table
// as needed and checking class consistency across mentions.
func (p *parser) reg(tok string) (Reg, error) {
	if len(tok) < 2 || (tok[0] != 'r' && tok[0] != 'f') {
		return NoReg, p.errf("bad register %q", tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil || n < 0 {
		return NoReg, p.errf("bad register %q", tok)
	}
	c := ClassInt
	if tok[0] == 'f' {
		c = ClassFloat
	}
	for len(p.f.Regs) <= n {
		p.f.Regs = append(p.f.Regs, RegInfo{Class: ClassNone})
	}
	switch p.f.Regs[n].Class {
	case ClassNone:
		p.f.Regs[n].Class = c
	case c:
	default:
		return NoReg, p.errf("register %d used as both int and float", n)
	}
	return Reg(n), nil
}

func (p *parser) parseInstr(line string) error {
	if p.f == nil {
		return p.errf("instruction outside function")
	}
	if p.blk == nil {
		return p.errf("instruction before any label")
	}
	if t := p.blk.Term(); t != nil {
		return p.errf("instruction after terminator in block %s", p.blk.Name)
	}
	var dstTok string
	if i := strings.Index(line, "="); i >= 0 && !strings.Contains(line[:i], "(") {
		dstTok = strings.TrimSpace(line[:i])
		line = strings.TrimSpace(line[i+1:])
	}
	opTok := line
	rest := ""
	if i := strings.IndexAny(line, " ("); i >= 0 {
		opTok = line[:i]
		rest = strings.TrimSpace(line[i:])
	}
	op, ok := opByName[opTok]
	if !ok {
		return p.errf("unknown opcode %q", opTok)
	}
	in := Instr{Op: op, Dst: NoReg}
	if dstTok != "" {
		dst, err := p.reg(dstTok)
		if err != nil {
			return err
		}
		in.Dst = dst
	}

	switch op {
	case OpNop:
	case OpLoadI:
		n, err := strconv.ParseInt(rest, 10, 64)
		if err != nil {
			return p.errf("loadi wants an integer, got %q", rest)
		}
		in.Imm = n
	case OpLoadF:
		x, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return p.errf("loadf wants a float, got %q", rest)
		}
		in.FImm = x
	case OpAddr:
		parts := splitOperands(rest)
		if len(parts) != 2 {
			return p.errf("addr wants 'addr SYM, OFFSET'")
		}
		in.Sym = parts[0]
		n, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return p.errf("bad addr offset %q", parts[1])
		}
		in.Imm = n
	case OpLoadAI, OpFLoadAI, OpSpill, OpFSpill, OpCCMSpill, OpCCMFSpill:
		parts := splitOperands(rest)
		if len(parts) != 2 {
			return p.errf("%s wants 'reg, offset'", op)
		}
		r, err := p.reg(parts[0])
		if err != nil {
			return err
		}
		n, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return p.errf("bad offset %q", parts[1])
		}
		in.Args, in.Imm = []Reg{r}, n
	case OpStoreAI, OpFStoreAI:
		parts := splitOperands(rest)
		if len(parts) != 3 {
			return p.errf("%s wants 'val, addr, offset'", op)
		}
		v, err := p.reg(parts[0])
		if err != nil {
			return err
		}
		a, err := p.reg(parts[1])
		if err != nil {
			return err
		}
		n, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return p.errf("bad offset %q", parts[2])
		}
		in.Args, in.Imm = []Reg{v, a}, n
	case OpRestore, OpFRestore, OpCCMRestore, OpCCMFRestore:
		n, err := strconv.ParseInt(rest, 10, 64)
		if err != nil {
			return p.errf("%s wants an offset, got %q", op, rest)
		}
		in.Imm = n
	case OpJmp:
		if rest == "" {
			return p.errf("jmp wants a label")
		}
		in.Then = rest
	case OpCBr:
		parts := splitOperands(rest)
		if len(parts) != 3 {
			return p.errf("cbr wants 'cond, then, else'")
		}
		c, err := p.reg(parts[0])
		if err != nil {
			return err
		}
		in.Args, in.Then, in.Else = []Reg{c}, parts[1], parts[2]
	case OpCall:
		open := strings.IndexByte(rest, '(')
		close_ := strings.LastIndexByte(rest, ')')
		if open < 0 || close_ < open {
			return p.errf("call wants 'call NAME(args)'")
		}
		in.Sym = strings.TrimSpace(rest[:open])
		argstr := strings.TrimSpace(rest[open+1 : close_])
		if argstr != "" {
			for _, tok := range splitOperands(argstr) {
				r, err := p.reg(tok)
				if err != nil {
					return err
				}
				in.Args = append(in.Args, r)
			}
		}
	case OpRet:
		if rest != "" {
			r, err := p.reg(rest)
			if err != nil {
				return err
			}
			in.Args = []Reg{r}
		}
	case OpPhi:
		for _, tok := range splitOperands(rest) {
			r, err := p.reg(tok)
			if err != nil {
				return err
			}
			in.Args = append(in.Args, r)
		}
	default:
		// Uniform fixed-arity register ops.
		want := op.NumArgs()
		var parts []string
		if rest != "" {
			parts = splitOperands(rest)
		}
		if len(parts) != want {
			return p.errf("%s wants %d operands, got %d", op, want, len(parts))
		}
		for _, tok := range parts {
			r, err := p.reg(tok)
			if err != nil {
				return err
			}
			in.Args = append(in.Args, r)
		}
	}
	p.blk.Instrs = append(p.blk.Instrs, in)
	return nil
}

func splitOperands(s string) []string {
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
