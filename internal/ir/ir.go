// Package ir defines the ILOC-style intermediate representation used
// throughout the reproduction: a low-level, three-address code over two
// register classes (integer and floating-point), with explicit spill and
// CCM-spill opcodes, organized into basic blocks and functions.
//
// The representation mirrors the ILOC of the Rice Massively Scalar Compiler
// Project that the paper's experiments were run on (Briggs, "The massively
// scalar compiler project", 1994): virtual registers are unbounded before
// allocation, memory is byte-addressed with 8-byte words, and spill code is
// visible as distinct opcodes so that post-pass tools can find and rewrite
// it — exactly what the paper's post-pass CCM allocator requires.
package ir

import "fmt"

// Reg names a register within a Func. Before allocation a Func may use any
// number of virtual registers; after allocation registers are the physical
// names 0..NumInt-1 (integer) and the following NumFloat names (float).
type Reg int32

// NoReg marks the absence of a register (e.g. a call with no result).
const NoReg Reg = -1

// WordBytes is the size of the machine word; every register and memory
// slot holds one word.
const WordBytes = 8

// RegInfo describes one register of a Func.
type RegInfo struct {
	Class Class
	Name  string // diagnostic name; not required to be unique
}

// Instr is one ILOC instruction. The meaning of the fields depends on Op:
//
//   - Dst: result register, or NoReg.
//   - Args: operand registers (fixed arity for most ops; variable for
//     call/ret/phi).
//   - Imm: integer immediate — the constant of loadi, the byte offset of
//     loadai/storeai/addr, the frame offset of spill/restore, the CCM
//     offset of ccmspill/ccmrestore.
//   - FImm: the constant of loadf.
//   - Sym: callee name (call) or global name (addr).
//   - Then, Else: branch target labels (jmp uses Then; cbr uses both).
type Instr struct {
	Op   Op
	Dst  Reg
	Args []Reg
	Imm  int64
	FImm float64
	Sym  string
	Then string
	Else string
}

// Targets returns the labels this instruction may branch to.
func (in *Instr) Targets() []string {
	switch in.Op {
	case OpJmp:
		return []string{in.Then}
	case OpCBr:
		return []string{in.Then, in.Else}
	}
	return nil
}

// Uses returns the registers read by the instruction.
func (in *Instr) Uses() []Reg { return in.Args }

// Def returns the register written by the instruction, or NoReg.
func (in *Instr) Def() Reg { return in.Dst }

// Block is a basic block: a label and a non-empty instruction sequence
// whose final instruction is the unique terminator.
type Block struct {
	Name   string
	Index  int // position within Func.Blocks; maintained by Func.Renumber
	Instrs []Instr
}

// Term returns the block's terminator instruction.
func (b *Block) Term() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := &b.Instrs[len(b.Instrs)-1]
	if !last.Op.IsTerminator() {
		return nil
	}
	return last
}

// Func is a procedure.
type Func struct {
	Name     string
	Params   []Reg // parameter registers, bound by the caller in order
	RetClass Class // ClassNone for subroutines without a result
	Regs     []RegInfo
	Blocks   []*Block // Blocks[0] is the entry block

	// Post-allocation metadata.
	Allocated  bool  // true once physical registers are assigned
	NumInt     int   // physical integer registers (when Allocated)
	NumFloat   int   // physical float registers (when Allocated)
	FrameBytes int64 // activation-record size for heavyweight spills
	CCMBytes   int64 // bytes of CCM this function's own code touches

	// frozen marks a function as immutable shared state: the compile
	// cache freezes bodies on store and hands them out by reference, so
	// a consumer that wants to mutate must take a Clone first (Clone
	// always yields a mutable copy). The flag is unexported and so
	// invisible to encoding/json — frozen-ness is a property of the
	// in-memory sharing scheme, never of a serialized artifact.
	frozen bool
}

// Freeze marks f immutable. There is no Unfreeze: the only way back to a
// mutable function is Clone.
func (f *Func) Freeze() { f.frozen = true }

// Frozen reports whether f is shared immutable state that must be cloned
// before mutation.
func (f *Func) Frozen() bool { return f.frozen }

// NewReg appends a fresh register of class c and returns its name.
func (f *Func) NewReg(c Class, name string) Reg {
	f.Regs = append(f.Regs, RegInfo{Class: c, Name: name})
	return Reg(len(f.Regs) - 1)
}

// RegClass returns the class of r.
func (f *Func) RegClass(r Reg) Class {
	if r < 0 || int(r) >= len(f.Regs) {
		return ClassNone
	}
	return f.Regs[r].Class
}

// BlockNamed returns the block with the given label, or nil.
func (f *Func) BlockNamed(name string) *Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Entry returns the entry block.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// Renumber refreshes Block.Index after blocks are added or removed.
func (f *Func) Renumber() {
	for i, b := range f.Blocks {
		b.Index = i
	}
}

// NumInstrs returns the static instruction count of the function.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// ForEachInstr calls fn for every instruction in block layout order.
func (f *Func) ForEachInstr(fn func(b *Block, i int, in *Instr)) {
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			fn(b, i, &b.Instrs[i])
		}
	}
}

// Global is a statically allocated region of main memory.
type Global struct {
	Name  string
	Words int      // size in 8-byte words
	Init  []uint64 // raw word initializers; len(Init) <= Words
}

// Bytes returns the global's size in bytes.
func (g *Global) Bytes() int64 { return int64(g.Words) * WordBytes }

// Program is a whole compilation unit: functions plus global data.
type Program struct {
	Funcs   []*Func
	Globals []*Global
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global returns the global with the given name, or nil.
func (p *Program) Global(name string) *Global {
	for _, g := range p.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// AddFunc appends f, rejecting duplicate names.
func (p *Program) AddFunc(f *Func) error {
	if p.Func(f.Name) != nil {
		return fmt.Errorf("ir: duplicate function %q", f.Name)
	}
	p.Funcs = append(p.Funcs, f)
	return nil
}

// AddGlobal appends g, rejecting duplicate names.
func (p *Program) AddGlobal(g *Global) error {
	if p.Global(g.Name) != nil {
		return fmt.Errorf("ir: duplicate global %q", g.Name)
	}
	p.Globals = append(p.Globals, g)
	return nil
}

// Clone deep-copies the program so that transformations can be compared
// against the original (the semantic-equality oracle relies on this).
func (p *Program) Clone() *Program {
	q := &Program{}
	for _, g := range p.Globals {
		ng := &Global{Name: g.Name, Words: g.Words, Init: append([]uint64(nil), g.Init...)}
		q.Globals = append(q.Globals, ng)
	}
	for _, f := range p.Funcs {
		q.Funcs = append(q.Funcs, f.Clone())
	}
	return q
}

// Clone deep-copies the function. The copy is always mutable, whatever
// the receiver's frozen state: Clone is the copy-on-write point of the
// cache's sharing scheme.
func (f *Func) Clone() *Func {
	nf := &Func{
		Name:       f.Name,
		Params:     append([]Reg(nil), f.Params...),
		RetClass:   f.RetClass,
		Regs:       append([]RegInfo(nil), f.Regs...),
		Allocated:  f.Allocated,
		NumInt:     f.NumInt,
		NumFloat:   f.NumFloat,
		FrameBytes: f.FrameBytes,
		CCMBytes:   f.CCMBytes,
	}
	nf.Blocks = make([]*Block, len(f.Blocks))
	for bi, b := range f.Blocks {
		nb := &Block{Name: b.Name, Index: b.Index, Instrs: make([]Instr, len(b.Instrs))}
		// All argument slices of a block share one backing array instead
		// of one tiny allocation per instruction. The three-index
		// reslices cap each view exactly, so a later append to one
		// instruction's Args reallocates that slice rather than
		// clobbering its neighbor's storage.
		total := 0
		for i := range b.Instrs {
			total += len(b.Instrs[i].Args)
		}
		args := make([]Reg, 0, total)
		for i, in := range b.Instrs {
			if len(in.Args) > 0 {
				lo := len(args)
				args = append(args, in.Args...)
				in.Args = args[lo:len(args):len(args)]
			}
			nb.Instrs[i] = in
		}
		nf.Blocks[bi] = nb
	}
	return nf
}
