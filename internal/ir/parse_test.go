package ir

import (
	"math"
	"strings"
	"testing"
)

func TestParseEveryInstructionForm(t *testing.T) {
	src := `
# comment line
global G 8 = i 1 -2 3
global H 2 = f 1.5 -0.25
global X 1 = x deadbeef

func main() {  # trailing comment
entry:
	nop
	r0 = loadi -42
	f1 = loadf 2.5
	r2 = add r0, r0
	r3 = sub r2, r0
	r4 = mul r3, r3
	r5 = div r4, r3
	r6 = rem r5, r3
	r7 = and r6, r5
	r8 = or r7, r6
	r9 = xor r8, r7
	r10 = shl r9, r0
	r11 = shr r10, r0
	r12 = neg r11
	r13 = not r12
	r14 = cmplt r13, r12
	r15 = cmple r14, r13
	r16 = cmpgt r15, r14
	r17 = cmpge r16, r15
	r18 = cmpeq r17, r16
	r19 = cmpne r18, r17
	f20 = fadd f1, f1
	f21 = fsub f20, f1
	f22 = fmul f21, f20
	f23 = fdiv f22, f21
	f24 = fneg f23
	f25 = fabs f24
	f26 = fsqrt f25
	r27 = fcmplt f26, f25
	r28 = fcmple f26, f25
	r29 = fcmpgt f26, f25
	r30 = fcmpge f26, f25
	r31 = fcmpeq f26, f25
	r32 = fcmpne f26, f25
	f33 = i2f r32
	r34 = f2i f33
	r35 = copy r34
	f36 = fcopy f33
	r37 = addr G, 16
	r38 = load r37
	r39 = loadai r37, 8
	store r38, r37
	storeai r39, r37, 8
	f40 = fload r37
	f41 = floadai r37, 8
	fstore f40, r37
	fstoreai f41, r37, 8
	spill r39, 0
	r42 = restore 0
	fspill f41, 8
	f43 = frestore 8
	ccmspill r42, 0
	r44 = ccmrestore 0
	ccmfspill f43, 8
	f45 = ccmfrestore 8
	emit r44
	femit f45
	r46 = call fn(r44, f45)
	call fn2()
	cbr r46, next, next
next:
	jmp done
done:
	ret
}

func fn(r0, f1) int {
entry:
	ret r0
}

func fn2() {
entry:
	ret
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyProgram(p, VerifyOptions{}); err != nil {
		t.Fatal(err)
	}
	// Globals decoded correctly.
	g := p.Global("G")
	if g.Words != 8 || int64(g.Init[1]) != -2 {
		t.Fatalf("global G = %+v", g)
	}
	h := p.Global("H")
	if math.Float64frombits(h.Init[1]) != -0.25 {
		t.Fatal("float initializer wrong")
	}
	x := p.Global("X")
	if x.Init[0] != 0xdeadbeef {
		t.Fatal("hex initializer wrong")
	}
	// Round-trip.
	text := p.String()
	q, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if q.String() != text {
		t.Fatal("print→parse→print not a fixed point")
	}
}

func TestParsePhiRoundTrip(t *testing.T) {
	src := `func f() {
entry:
	r0 = loadi 1
	jmp merge
merge:
	r1 = phi r0, r1
	jmp merge
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyProgram(p, VerifyOptions{AllowPhi: true}); err != nil {
		t.Fatal(err)
	}
	if p.String() != src {
		t.Fatalf("round trip:\n%q\n%q", p.String(), src)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"global G", "global wants"},
		{"global G x", "bad global size"},
		{"global G 2 = i 1 2 3", "3 initializers for 2 words"},
		{"global G 2 = q 1", "unknown initializer kind"},
		{"global G 1 = i zz", "bad int initializer"},
		{"func f( {", "malformed func header"},
		{"func f() wat {", "unknown return class"},
		{"func f() {\nentry:\n\tret\n}\nglobal G 1 # after func is fine\nfunc f() {\nentry:\n\tret\n}", "duplicate function"},
		{"func f() {\nentry:\n\tfrobnicate r1\n}", "unknown opcode"},
		{"func f() {\nentry:\n\tr0 = loadi xyz\n}", "loadi wants an integer"},
		{"func f() {\nentry:\n\tr0 = add r1\n}", "add wants 2 operands"},
		{"func f() {\nentry:\n\tr0 = add q1, r2\n}", "bad register"},
		{"func f() {\nentry:\n\tr0 = loadi 1\n\tf0 = loadf 1.0\n\tret\n}", "both int and float"},
		{"func f() {\n\tr0 = loadi 1\n}", "before any label"},
		{"r0 = loadi 1", "outside function"},
		{"func f() {\nentry:\n\tret\nentry:\n\tret\n}", "duplicate block label"},
		{"func f() {\nentry:\n\tret\n\tnop\n}", "after terminator"},
		{"func f() {\nentry:\n\tret\n", "missing closing brace"},
		{"}", "unexpected '}'"},
		{"func f() {\nentry:\n\tcbr r0, a\n}", "cbr wants"},
		{"func f() {\nentry:\n\tjmp\n}", "jmp wants a label"},
		{"func f() {\nentry:\n\tspill r0, x\n}", "bad offset"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse accepted %q (want error %q)", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error %q, want substring %q", c.src, err, c.want)
		}
	}
}

func TestParseGlobalInsideFunction(t *testing.T) {
	_, err := Parse("func f() {\nentry:\nglobal G 1\n\tret\n}")
	if err == nil || !strings.Contains(err.Error(), "inside function") {
		t.Fatalf("err = %v", err)
	}
}

func TestFormatInstrSpecials(t *testing.T) {
	f := &Func{Name: "x"}
	r := f.NewReg(ClassInt, "")
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpNop, Dst: NoReg}, "nop"},
		{Instr{Op: OpLoadI, Dst: r, Imm: -7}, "r0 = loadi -7"},
		{Instr{Op: OpAddr, Dst: r, Sym: "G", Imm: 8}, "r0 = addr G, 8"},
		{Instr{Op: OpRet, Dst: NoReg}, "ret"},
		{Instr{Op: OpRet, Dst: NoReg, Args: []Reg{r}}, "ret r0"},
		{Instr{Op: OpCall, Dst: NoReg, Sym: "g", Args: []Reg{r, r}}, "call g(r0, r0)"},
		{Instr{Op: OpCall, Dst: r, Sym: "g"}, "r0 = call g()"},
		{Instr{Op: OpCBr, Dst: NoReg, Args: []Reg{r}, Then: "a", Else: "b"}, "cbr r0, a, b"},
		{Instr{Op: OpSpill, Dst: NoReg, Args: []Reg{r}, Imm: 16}, "spill r0, 16"},
		{Instr{Op: OpCCMRestore, Dst: r, Imm: 24}, "r0 = ccmrestore 24"},
	}
	for _, c := range cases {
		if got := f.FormatInstr(&c.in); got != c.want {
			t.Errorf("FormatInstr = %q, want %q", got, c.want)
		}
	}
}
