package ir

import "fmt"

// Builder constructs a Func incrementally. It is the API the synthetic
// workload kernels are written against, so its helpers are deliberately
// terse: value-producing methods allocate a fresh virtual register for the
// result and return it.
//
// Blocks are created with Label and selected with At; instructions append
// to the current block. Finish checks structural invariants and returns
// the function.
type Builder struct {
	f   *Func
	cur *Block
	err error
}

// NewBuilder starts a function with the given name and return class.
func NewBuilder(name string, ret Class) *Builder {
	return &Builder{f: &Func{Name: name, RetClass: ret}}
}

// Func returns the function under construction.
func (b *Builder) Func() *Func { return b.f }

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("builder %s: %s", b.f.Name, fmt.Sprintf(format, args...))
	}
}

// Param declares the next parameter, of class c.
func (b *Builder) Param(c Class, name string) Reg {
	r := b.f.NewReg(c, name)
	b.f.Params = append(b.f.Params, r)
	return r
}

// Reg allocates a fresh virtual register without defining it.
func (b *Builder) Reg(c Class, name string) Reg { return b.f.NewReg(c, name) }

// Label creates (or returns) the block with the given name and makes it
// current. The first Label call creates the entry block.
func (b *Builder) Label(name string) *Block {
	if blk := b.f.BlockNamed(name); blk != nil {
		b.cur = blk
		return blk
	}
	blk := &Block{Name: name, Index: len(b.f.Blocks)}
	b.f.Blocks = append(b.f.Blocks, blk)
	b.cur = blk
	return blk
}

// At switches the current block to an existing label.
func (b *Builder) At(name string) {
	blk := b.f.BlockNamed(name)
	if blk == nil {
		b.fail("At(%q): no such block", name)
		return
	}
	b.cur = blk
}

// Err returns the first construction error recorded so far (nil if the
// function is well-formed up to this point). Helpers keep accepting calls
// after a failure so straight-line construction code needs only one check,
// at Finish; Err lets incremental generators (fuzzers, the random workload
// builder) stop early instead.
func (b *Builder) Err() error { return b.err }

// Append adds a raw instruction to the current block after validating it
// against the function under construction: every operand must be a
// register of this function with the class the opcode requires. Malformed
// instructions are recorded as a deferred error (returned by Finish and
// Err) rather than appended, so a bad call site cannot crash later passes
// or smuggle an out-of-range register past them.
func (b *Builder) Append(in Instr) {
	if b.cur == nil {
		b.fail("instruction %s before any Label", in.Op)
		return
	}
	if t := b.cur.Term(); t != nil {
		b.fail("instruction %s after terminator in block %s", in.Op, b.cur.Name)
		return
	}
	for i, a := range in.Args {
		if a < 0 || int(a) >= len(b.f.Regs) {
			b.fail("%s arg %d: r%d is not a register of this function", in.Op, i, a)
			return
		}
	}
	if in.Dst != NoReg && (in.Dst < 0 || int(in.Dst) >= len(b.f.Regs)) {
		b.fail("%s dst: r%d is not a register of this function", in.Op, in.Dst)
		return
	}
	if n := in.Op.NumArgs(); n >= 0 {
		if len(in.Args) != n {
			b.fail("%s wants %d args, got %d", in.Op, n, len(in.Args))
			return
		}
		for i, a := range in.Args {
			if want := in.Op.ArgClass(i); want != ClassNone && b.f.RegClass(a) != want {
				b.fail("%s arg %d: r%d is %v, want %v", in.Op, i, a, b.f.RegClass(a), want)
				return
			}
		}
		if want := in.Op.DstClass(); want != ClassNone && b.f.RegClass(in.Dst) != want {
			b.fail("%s dst: r%d is %v, want %v", in.Op, in.Dst, b.f.RegClass(in.Dst), want)
			return
		}
	}
	b.cur.Instrs = append(b.cur.Instrs, in)
}

func (b *Builder) def(op Op, args ...Reg) Reg {
	dst := b.f.NewReg(op.DstClass(), "")
	b.Append(Instr{Op: op, Dst: dst, Args: args})
	return dst
}

// ConstI materializes an integer constant.
func (b *Builder) ConstI(v int64) Reg {
	dst := b.f.NewReg(ClassInt, "")
	b.Append(Instr{Op: OpLoadI, Dst: dst, Imm: v})
	return dst
}

// ConstF materializes a floating-point constant.
func (b *Builder) ConstF(v float64) Reg {
	dst := b.f.NewReg(ClassFloat, "")
	b.Append(Instr{Op: OpLoadF, Dst: dst, FImm: v})
	return dst
}

// Integer arithmetic helpers.
func (b *Builder) Add(x, y Reg) Reg { return b.def(OpAdd, x, y) }
func (b *Builder) Sub(x, y Reg) Reg { return b.def(OpSub, x, y) }
func (b *Builder) Mul(x, y Reg) Reg { return b.def(OpMul, x, y) }
func (b *Builder) Div(x, y Reg) Reg { return b.def(OpDiv, x, y) }
func (b *Builder) Rem(x, y Reg) Reg { return b.def(OpRem, x, y) }
func (b *Builder) And(x, y Reg) Reg { return b.def(OpAnd, x, y) }
func (b *Builder) Or(x, y Reg) Reg  { return b.def(OpOr, x, y) }
func (b *Builder) Xor(x, y Reg) Reg { return b.def(OpXor, x, y) }
func (b *Builder) Shl(x, y Reg) Reg { return b.def(OpShl, x, y) }
func (b *Builder) Shr(x, y Reg) Reg { return b.def(OpShr, x, y) }
func (b *Builder) Neg(x Reg) Reg    { return b.def(OpNeg, x) }
func (b *Builder) Not(x Reg) Reg    { return b.def(OpNot, x) }

// Integer comparisons.
func (b *Builder) CmpLT(x, y Reg) Reg { return b.def(OpCmpLT, x, y) }
func (b *Builder) CmpLE(x, y Reg) Reg { return b.def(OpCmpLE, x, y) }
func (b *Builder) CmpGT(x, y Reg) Reg { return b.def(OpCmpGT, x, y) }
func (b *Builder) CmpGE(x, y Reg) Reg { return b.def(OpCmpGE, x, y) }
func (b *Builder) CmpEQ(x, y Reg) Reg { return b.def(OpCmpEQ, x, y) }
func (b *Builder) CmpNE(x, y Reg) Reg { return b.def(OpCmpNE, x, y) }

// Floating-point helpers.
func (b *Builder) FAdd(x, y Reg) Reg   { return b.def(OpFAdd, x, y) }
func (b *Builder) FSub(x, y Reg) Reg   { return b.def(OpFSub, x, y) }
func (b *Builder) FMul(x, y Reg) Reg   { return b.def(OpFMul, x, y) }
func (b *Builder) FDiv(x, y Reg) Reg   { return b.def(OpFDiv, x, y) }
func (b *Builder) FNeg(x Reg) Reg      { return b.def(OpFNeg, x) }
func (b *Builder) FAbs(x Reg) Reg      { return b.def(OpFAbs, x) }
func (b *Builder) FSqrt(x Reg) Reg     { return b.def(OpFSqrt, x) }
func (b *Builder) FCmpLT(x, y Reg) Reg { return b.def(OpFCmpLT, x, y) }
func (b *Builder) FCmpLE(x, y Reg) Reg { return b.def(OpFCmpLE, x, y) }
func (b *Builder) FCmpGT(x, y Reg) Reg { return b.def(OpFCmpGT, x, y) }
func (b *Builder) FCmpGE(x, y Reg) Reg { return b.def(OpFCmpGE, x, y) }
func (b *Builder) FCmpEQ(x, y Reg) Reg { return b.def(OpFCmpEQ, x, y) }
func (b *Builder) FCmpNE(x, y Reg) Reg { return b.def(OpFCmpNE, x, y) }
func (b *Builder) I2F(x Reg) Reg       { return b.def(OpI2F, x) }
func (b *Builder) F2I(x Reg) Reg       { return b.def(OpF2I, x) }

// Copy copies x into a fresh register of the same class.
func (b *Builder) Copy(x Reg) Reg {
	return b.def(CopyOpFor(b.f.RegClass(x)), x)
}

// CopyTo copies src into an existing register dst (for loop-carried values).
func (b *Builder) CopyTo(dst, src Reg) {
	b.Append(Instr{Op: CopyOpFor(b.f.RegClass(dst)), Dst: dst, Args: []Reg{src}})
}

// Addr materializes the address of global sym plus off bytes.
func (b *Builder) Addr(sym string, off int64) Reg {
	dst := b.f.NewReg(ClassInt, "")
	b.Append(Instr{Op: OpAddr, Dst: dst, Sym: sym, Imm: off})
	return dst
}

// Memory access helpers. addr is a byte address; off a byte offset.
func (b *Builder) Load(addr Reg) Reg { return b.def(OpLoad, addr) }
func (b *Builder) LoadAI(addr Reg, off int64) Reg {
	dst := b.f.NewReg(ClassInt, "")
	b.Append(Instr{Op: OpLoadAI, Dst: dst, Args: []Reg{addr}, Imm: off})
	return dst
}
func (b *Builder) Store(val, addr Reg) {
	b.Append(Instr{Op: OpStore, Dst: NoReg, Args: []Reg{val, addr}})
}
func (b *Builder) StoreAI(val, addr Reg, off int64) {
	b.Append(Instr{Op: OpStoreAI, Dst: NoReg, Args: []Reg{val, addr}, Imm: off})
}
func (b *Builder) FLoad(addr Reg) Reg { return b.def(OpFLoad, addr) }
func (b *Builder) FLoadAI(addr Reg, off int64) Reg {
	dst := b.f.NewReg(ClassFloat, "")
	b.Append(Instr{Op: OpFLoadAI, Dst: dst, Args: []Reg{addr}, Imm: off})
	return dst
}
func (b *Builder) FStore(val, addr Reg) {
	b.Append(Instr{Op: OpFStore, Dst: NoReg, Args: []Reg{val, addr}})
}
func (b *Builder) FStoreAI(val, addr Reg, off int64) {
	b.Append(Instr{Op: OpFStoreAI, Dst: NoReg, Args: []Reg{val, addr}, Imm: off})
}

// Control flow.
func (b *Builder) Jmp(label string) { b.Append(Instr{Op: OpJmp, Dst: NoReg, Then: label}) }
func (b *Builder) CBr(cond Reg, then, els string) {
	b.Append(Instr{Op: OpCBr, Dst: NoReg, Args: []Reg{cond}, Then: then, Else: els})
}
func (b *Builder) Ret() { b.Append(Instr{Op: OpRet, Dst: NoReg}) }
func (b *Builder) RetVal(r Reg) {
	b.Append(Instr{Op: OpRet, Dst: NoReg, Args: []Reg{r}})
}

// Call invokes callee with args; ret is the callee's return class. The
// result register is returned (NoReg when ret is ClassNone).
func (b *Builder) Call(callee string, ret Class, args ...Reg) Reg {
	dst := NoReg
	if ret != ClassNone {
		dst = b.f.NewReg(ret, "")
	}
	b.Append(Instr{Op: OpCall, Dst: dst, Sym: callee, Args: args})
	return dst
}

// Emit records x in the observable output trace.
func (b *Builder) Emit(x Reg) {
	if b.f.RegClass(x) == ClassFloat {
		b.Append(Instr{Op: OpFEmit, Dst: NoReg, Args: []Reg{x}})
		return
	}
	b.Append(Instr{Op: OpEmit, Dst: NoReg, Args: []Reg{x}})
}

// Finish returns the constructed function after checking builder-level
// invariants (every block terminated, no deferred errors).
func (b *Builder) Finish() (*Func, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.f.Blocks) == 0 {
		return nil, fmt.Errorf("builder %s: no blocks", b.f.Name)
	}
	for _, blk := range b.f.Blocks {
		if blk.Term() == nil {
			return nil, fmt.Errorf("builder %s: block %s lacks a terminator", b.f.Name, blk.Name)
		}
		t := blk.Term()
		for _, label := range []string{t.Then, t.Else} {
			if label != "" && b.f.BlockNamed(label) == nil {
				return nil, fmt.Errorf("builder %s: block %s branches to undefined label %q", b.f.Name, blk.Name, label)
			}
		}
	}
	b.f.Renumber()
	return b.f, nil
}

// MustFinish is Finish for construction code where a failure is a bug.
func (b *Builder) MustFinish() *Func {
	f, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return f
}
