package ir

import (
	"fmt"
	"path/filepath"
	"testing"

	"ccmem/internal/repro"
)

// reproCorpusDir is the repository-level crash-repro regression corpus
// replayed by the root package's TestReproCorpusReplays (relative to this
// package; the go tool runs tests with the package directory as cwd).
var reproCorpusDir = filepath.Join("..", "..", "testdata", "repros")

// writeFuzzRepro captures a fuzz finding as a replayable bundle in the
// shared corpus, so the failure joins the replay regression test in the
// same format the compilation pipeline uses for pass faults.
func writeFuzzRepro(t *testing.T, src, msg string) {
	b := &repro.Bundle{Kind: repro.KindParse, Program: src, Error: msg}
	if path, err := repro.Write(reproCorpusDir, b); err != nil {
		t.Logf("could not write repro bundle: %v", err)
	} else {
		t.Logf("repro bundle: %s", path)
	}
}

// FuzzParse hardens the textual front end: no input may panic the parser,
// and anything that parses and verifies must survive a print/parse round
// trip to an identical rendering. Every finding — a panic included — is
// written to the shared repro corpus before the test fails.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"garbage",
		"global G 4 = i 1 2 3 4\nfunc main() {\nentry:\n\tret\n}\n",
		"func f(r0, f1) int {\nentry:\n\tr2 = add r0, r0\n\tret r2\n}\n",
		"func f() {\nentry:\n\tr0 = loadi 1\n\tcbr r0, a, b\na:\n\tjmp c\nb:\n\tjmp c\nc:\n\tret\n}\n",
		"func f() {\nentry:\n\tr0 = loadi 9223372036854775807\n\temit r0\n\tret\n}\n",
		"func f() {\nentry:\n\tf0 = loadf -1.5e-300\n\tfemit f0\n\tret\n}\n",
		"global X 1 = x ffffffffffffffff\nfunc f() {\nentry:\n\tr0 = addr X, 0\n\tspill r0, 0\n\tr1 = restore 0\n\temit r1\n\tret\n}\n",
		"func f() {\nentry:\n\tr1 = phi r0, r1\n\tret\n}\n",
		"# only a comment\n",
		"func f() {\nentry:\n\tr0 = call f()\n\tret\n}\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		defer func() {
			if r := recover(); r != nil {
				writeFuzzRepro(t, src, fmt.Sprintf("panic: %v", r))
				panic(r)
			}
		}()
		p, err := Parse(src)
		if err != nil {
			return
		}
		if err := VerifyProgram(p, VerifyOptions{AllowPhi: true}); err != nil {
			return
		}
		text := p.String()
		q, err := Parse(text)
		if err != nil {
			writeFuzzRepro(t, src, fmt.Sprintf("printed program does not reparse: %v", err))
			t.Fatalf("printed program does not reparse: %v\n%s", err, text)
		}
		if q.String() != text {
			writeFuzzRepro(t, src, "print → parse → print not a fixed point")
			t.Fatalf("print → parse → print not a fixed point:\n%q\n%q", text, q.String())
		}
	})
}
