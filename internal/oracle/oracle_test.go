package oracle

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"ccmem/internal/ir"
	"ccmem/internal/workload"
)

func mustParse(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func mustCheck(t *testing.T, pre, post *ir.Program, opts Options) *Result {
	t.Helper()
	res, err := Check(context.Background(), pre, post, opts)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return res
}

// TestIdenticalProgramsEquivalent: a program checked against its own clone
// is equivalent — zero false positives on the identity transform, over
// the full random-workload generator.
func TestIdenticalProgramsEquivalent(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		p := workload.RandomProgram(seed)
		res := mustCheck(t, p, p.Clone(), Options{Seed: uint64(seed)})
		if !res.Equivalent() {
			t.Errorf("seed %d: identity transform flagged divergent: %v", seed, res.Divergence)
		}
		if res.Entries == 0 || res.Runs == 0 {
			t.Errorf("seed %d: nothing was checked (entries=%d runs=%d)", seed, res.Entries, res.Runs)
		}
	}
}

// TestTraceDivergenceDetected: changing one emitted constant is caught as
// a trace divergence naming the entry and the first differing index.
func TestTraceDivergenceDetected(t *testing.T) {
	pre := mustParse(t, `func main() {
entry:
	r0 = loadi 1
	r1 = loadi 2
	emit r0
	emit r1
	ret
}
`)
	post := pre.Clone()
	// The miscompile: the second emitted value silently changes.
	post.Funcs[0].Blocks[0].Instrs[1].Imm = 3
	res := mustCheck(t, pre, post, Options{})
	d := res.Divergence
	if d == nil {
		t.Fatal("mutated emit not detected")
	}
	if d.Kind != "trace" || d.Entry != "main" {
		t.Errorf("divergence = %+v, want trace divergence in main", d)
	}
	if !strings.Contains(d.Detail, "trace[1]") {
		t.Errorf("detail %q does not name the first differing index", d.Detail)
	}
}

// TestRetDivergenceDetected: a changed return value with an identical
// trace is still a divergence (kind "ret").
func TestRetDivergenceDetected(t *testing.T) {
	pre := mustParse(t, `func main() int {
entry:
	r0 = loadi 7
	ret r0
}
`)
	post := pre.Clone()
	post.Funcs[0].Blocks[0].Instrs[0].Imm = 8
	res := mustCheck(t, pre, post, Options{})
	if res.Divergence == nil || res.Divergence.Kind != "ret" {
		t.Fatalf("divergence = %+v, want a ret divergence", res.Divergence)
	}
}

// TestFaultEquivalence: both sides faulting identically is equivalent;
// only one side faulting is a divergence of kind "fault".
func TestFaultEquivalence(t *testing.T) {
	faulty := `func main() {
entry:
	r0 = loadi 0
	r1 = load r0
	ret
}
`
	pre := mustParse(t, faulty)
	if res := mustCheck(t, pre, pre.Clone(), Options{}); !res.Equivalent() {
		t.Errorf("matched faults flagged divergent: %v", res.Divergence)
	}

	clean := mustParse(t, `func main() {
entry:
	r0 = loadi 8
	ret
}
`)
	res := mustCheck(t, pre, clean, Options{})
	if res.Divergence == nil || res.Divergence.Kind != "fault" {
		t.Fatalf("fault asymmetry not detected: %+v", res.Divergence)
	}
}

// TestLeafEntryCoverage: a miscompile in a leaf function that main never
// calls is still caught, because every shared function is an entry point.
func TestLeafEntryCoverage(t *testing.T) {
	src := `func dead(r0) int {
entry:
	r1 = add r0, r0
	ret r1
}
func main() {
entry:
	r0 = loadi 5
	emit r0
	ret
}
`
	pre := mustParse(t, src)
	post := pre.Clone()
	post.Funcs[0].Blocks[0].Instrs[0].Op = ir.OpSub // dead: a+a -> a-a
	res := mustCheck(t, pre, post, Options{Vectors: 3})
	d := res.Divergence
	if d == nil {
		t.Fatal("miscompile in uncalled leaf not detected")
	}
	if d.Entry != "dead" {
		t.Errorf("divergence attributed to entry %q, want dead", d.Entry)
	}
	// Vector 0 is all zeros, where a+a == a-a; the all-ones vector must
	// be the one that exposes it.
	if d.Vector != 1 {
		t.Errorf("exposing vector = %d, want 1 (all ones)", d.Vector)
	}
}

// TestLimitInconclusive: a candidate that stops terminating hits the fuel
// bound and is reported inconclusive — never a hang, and never a false
// "divergence" from an asymmetric resource fault.
func TestLimitInconclusive(t *testing.T) {
	pre := mustParse(t, `func main() {
entry:
	r0 = loadi 1
	emit r0
	ret
}
`)
	post := mustParse(t, `func main() {
entry:
	r0 = loadi 1
	emit r0
	jmp entry
}
`)
	res := mustCheck(t, pre, post, Options{MaxSteps: 1000})
	if res.Divergence != nil {
		t.Errorf("fuel exhaustion misreported as divergence: %v", res.Divergence)
	}
	if res.Inconclusive == 0 {
		t.Error("nonterminating candidate not counted inconclusive")
	}
}

// TestCancellationPropagates: a cancelled context aborts the check with
// the context error instead of a verdict.
func TestCancellationPropagates(t *testing.T) {
	p := mustParse(t, `func main() {
loop:
	jmp loop
}
`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Check(ctx, p, p.Clone(), Options{})
	if err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("got %v, want the context error", err)
	}
}

// TestDeterministicVectors: equal (seed, programs, options) produce
// identical results — including the argument vectors on the divergence —
// and different seeds produce different later vectors.
func TestDeterministicVectors(t *testing.T) {
	pre := mustParse(t, `func f(r0) int {
entry:
	r1 = loadi 3
	r2 = mul r0, r1
	ret r2
}
`)
	post := pre.Clone()
	post.Funcs[0].Blocks[0].Instrs[0].Imm = 4
	a := mustCheck(t, pre, post, Options{Seed: 99})
	b := mustCheck(t, pre, post, Options{Seed: 99})
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different results:\n%+v\n%+v", a, b)
	}
	v1 := argVector(1, "f", 2, pre.Funcs[0])
	v2 := argVector(2, "f", 2, pre.Funcs[0])
	if reflect.DeepEqual(v1, v2) {
		t.Error("different seeds produced identical random vectors")
	}
}

// TestDerivedCCMCapacity: with CCMBytes unset, a post program that uses
// the CCM gets a derived capacity instead of faulting on "no CCM".
func TestDerivedCCMCapacity(t *testing.T) {
	pre := mustParse(t, `func main() {
entry:
	r0 = loadi 9
	spill r0, 0
	r1 = restore 0
	emit r1
	ret
}
`)
	post := mustParse(t, `func main() {
entry:
	r0 = loadi 9
	ccmspill r0, 16
	r1 = ccmrestore 16
	emit r1
	ret
}
`)
	res := mustCheck(t, pre, post, Options{})
	if !res.Equivalent() {
		t.Errorf("CCM-promoted equivalent flagged divergent: %v", res.Divergence)
	}
}
