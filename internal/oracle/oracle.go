// Package oracle is the differential-execution miscompile detector: it
// runs a pre-transformation program and a post-transformation candidate
// under internal/sim on identical, deterministically derived argument
// vectors and compares everything the paper's abstract machine makes
// observable — the emit/femit trace, the entry function's return value,
// and fault behavior. The paper's claims rest on the transformed code
// being semantically identical to its input (Cooper & Harvey §3:
// "promotion preserves the values flowing through spill memory");
// executing both sides on shared inputs is the cheapest credible check of
// that property (Necula's translation validation, PLDI 2000; McKeeman's
// differential testing, DTJ 1998). Structural verification says the code
// is well-formed; this package says it still computes the same thing.
//
// Determinism: argument vectors are a pure function of (Options.Seed,
// entry name, vector index, parameter index) — no wall-clock randomness —
// so the same (pre, post, Options) triple always produces the same
// verdict, the same divergence, and the same counters, regardless of
// worker counts or scheduling in the caller.
//
// Resource limits are not divergences: a transformed program legitimately
// executes a different number of instructions, so a run that hits the
// fuel, depth, or stack bound (sim.FaultLimit) makes that vector
// inconclusive rather than a miscompile verdict. Cancellation
// (sim.FaultCancelled) aborts the check with the context's error.
package oracle

import (
	"context"
	"fmt"
	"strings"

	"ccmem/internal/ir"
	"ccmem/internal/obs"
	"ccmem/internal/sim"
)

// Options parameterize one differential check.
type Options struct {
	// Seed selects the argument-vector stream. Callers key it off a
	// content hash of the input so re-checks are reproducible; 0 is a
	// valid seed.
	Seed uint64

	// Vectors is the number of argument vectors per entry function with
	// parameters (parameterless entries run once). Vector 0 is all zeros
	// and vector 1 is all ones — the classic aliasing and boundary
	// exposers — and later vectors are pseudo-random. Default 3.
	Vectors int

	// Entries lists the functions to execute as entry points. Empty means
	// every function present in both programs, in pre-program order —
	// leaf functions included, which catches miscompiles main's
	// computation never reaches.
	Entries []string

	// MaxSteps and MaxDepth bound each run (defaults 2M and 256); a run
	// that exceeds them is inconclusive, not divergent. Both programs get
	// identical limits.
	MaxSteps int64
	MaxDepth int

	// CCMBytes sizes the CCM for both runs. 0 derives a sufficient
	// capacity from the larger CCM footprint of the two programs, so a
	// post-promotion candidate never faults on a missing CCM.
	CCMBytes int64

	// Obs, when non-nil, receives the check's counters (oracle.entries,
	// oracle.runs, oracle.inconclusive, oracle.divergences). The verdict
	// and counters are deterministic, so the totals are too.
	Obs *obs.Registry
}

func (o Options) withDefaults(pre, post *ir.Program) Options {
	if o.Vectors == 0 {
		o.Vectors = 3
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 2_000_000
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 256
	}
	if o.CCMBytes == 0 {
		o.CCMBytes = maxCCMFootprint(pre, post)
	}
	return o
}

// Divergence describes the first observed behavioral difference.
type Divergence struct {
	Entry  string      // entry function whose execution diverged
	Vector int         // argument-vector index
	Args   []sim.Value // the arguments of that vector
	Kind   string      // "trace", "ret", or "fault"
	Detail string      // human-readable first difference
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("oracle: %s divergence at %s vector %d (args %s): %s",
		d.Kind, d.Entry, d.Vector, formatArgs(d.Args), d.Detail)
}

// Result summarizes one Check.
type Result struct {
	Entries      int         // entry functions executed
	Runs         int         // (entry, vector) pairs executed on both sides
	Inconclusive int         // runs skipped because either side hit a resource limit
	Divergence   *Divergence // nil when all conclusive runs agreed
}

// Equivalent reports whether the check found no divergence.
func (r *Result) Equivalent() bool { return r.Divergence == nil }

// Check runs pre and post on shared argument vectors and compares their
// observable behavior, stopping at the first divergence. Both programs
// must be executable (phi-free, verified); pre and post must declare the
// same entry signatures, which every pipeline stage preserves.
func Check(ctx context.Context, pre, post *ir.Program, opts Options) (*Result, error) {
	opts = opts.withDefaults(pre, post)
	cfg := sim.Config{
		CCMBytes: opts.CCMBytes,
		MaxSteps: opts.MaxSteps,
		MaxDepth: opts.MaxDepth,
	}
	preM, err := sim.New(pre, cfg)
	if err != nil {
		return nil, fmt.Errorf("oracle: resolving pre program: %w", err)
	}
	postM, err := sim.New(post, cfg)
	if err != nil {
		return nil, fmt.Errorf("oracle: resolving post program: %w", err)
	}

	entries := opts.Entries
	if len(entries) == 0 {
		for _, f := range pre.Funcs {
			if post.Func(f.Name) != nil {
				entries = append(entries, f.Name)
			}
		}
	}

	res := &Result{}
	// Counters are published once per Check on the conclusive paths
	// (error returns publish nothing: the check didn't finish).
	publish := func() {
		if opts.Obs == nil {
			return
		}
		opts.Obs.Counter("oracle.entries").Add(int64(res.Entries))
		opts.Obs.Counter("oracle.runs").Add(int64(res.Runs))
		opts.Obs.Counter("oracle.inconclusive").Add(int64(res.Inconclusive))
		if res.Divergence != nil {
			opts.Obs.Counter("oracle.divergences").Inc()
		}
	}
	for _, entry := range entries {
		ef := pre.Func(entry)
		pf := post.Func(entry)
		if ef == nil || pf == nil {
			return nil, fmt.Errorf("oracle: entry %q missing from %s program",
				entry, map[bool]string{true: "pre", false: "post"}[ef == nil])
		}
		if len(ef.Params) != len(pf.Params) {
			return nil, fmt.Errorf("oracle: entry %q arity changed from %d to %d parameters",
				entry, len(ef.Params), len(pf.Params))
		}
		res.Entries++
		nvec := opts.Vectors
		if len(ef.Params) == 0 {
			nvec = 1 // no arguments to vary
		}
		for v := 0; v < nvec; v++ {
			args := argVector(opts.Seed, entry, v, ef)
			preObs, err := observe(ctx, preM, entry, args)
			if err != nil {
				return nil, err
			}
			postObs, err := observe(ctx, postM, entry, args)
			if err != nil {
				return nil, err
			}
			if preObs.limited || postObs.limited {
				res.Inconclusive++
				continue
			}
			res.Runs++
			if d := compare(preObs, postObs); d != "" {
				kind := "trace"
				if strings.HasPrefix(d, "ret") {
					kind = "ret"
				} else if strings.HasPrefix(d, "fault") {
					kind = "fault"
				}
				res.Divergence = &Divergence{
					Entry:  entry,
					Vector: v,
					Args:   args,
					Kind:   kind,
					Detail: d,
				}
				publish()
				return res, nil
			}
		}
	}
	publish()
	return res, nil
}

// observation is the observable outcome of one execution.
type observation struct {
	out     []sim.Value
	ret     sim.Value
	hasRet  bool
	fault   *sim.Fault // semantic fault, nil on clean termination
	limited bool       // hit a resource limit: inconclusive
}

// observe runs one (machine, entry, args) triple and classifies the
// outcome. Resource-limit faults mark the observation inconclusive;
// cancellation propagates as the context's error.
func observe(ctx context.Context, m *sim.Machine, entry string, args []sim.Value) (*observation, error) {
	st, err := m.RunContext(ctx, entry, args...)
	o := &observation{}
	if st != nil {
		o.out = st.Output
		o.ret, o.hasRet = st.Ret, st.HasRet
	}
	if err == nil {
		return o, nil
	}
	f, ok := err.(*sim.Fault)
	if !ok {
		return nil, fmt.Errorf("oracle: executing %s: %w", entry, err)
	}
	switch f.Kind {
	case sim.FaultCancelled:
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("oracle: %w", cerr)
		}
		return nil, fmt.Errorf("oracle: %w", f)
	case sim.FaultLimit:
		o.limited = true
	default:
		o.fault = f
	}
	return o, nil
}

// compare returns "" when the two observations are behaviorally equal, or
// a description of the first difference. Fault equivalence is positional:
// both sides must fault or neither — the fault's message and location may
// legitimately differ, since the transformed code faults from rewritten
// instructions. Output emitted before a shared fault is still observable
// and must match.
func compare(pre, post *observation) string {
	if (pre.fault != nil) != (post.fault != nil) {
		if pre.fault != nil {
			return fmt.Sprintf("fault only in pre (%v); post terminated cleanly", pre.fault)
		}
		return fmt.Sprintf("fault only in post (%v); pre terminated cleanly", post.fault)
	}
	if len(pre.out) != len(post.out) {
		return fmt.Sprintf("trace length %d vs %d", len(pre.out), len(post.out))
	}
	for i := range pre.out {
		if pre.out[i] != post.out[i] {
			return fmt.Sprintf("trace[%d] = %s vs %s", i, pre.out[i], post.out[i])
		}
	}
	if pre.fault != nil {
		return "" // both faulted with identical partial traces
	}
	if pre.hasRet != post.hasRet {
		return fmt.Sprintf("ret present=%v vs %v", pre.hasRet, post.hasRet)
	}
	if pre.hasRet && pre.ret != post.ret {
		return fmt.Sprintf("ret %s vs %s", pre.ret, post.ret)
	}
	return ""
}

// argVector derives the v-th deterministic argument vector for entry.
// Vector 0 is all zeros, vector 1 all ones; later vectors draw from a
// splitmix64 stream keyed by (seed, entry, v, param index), yielding
// small signed integers and small floats — the ranges loop bounds and
// address arithmetic in the workloads actually exercise.
func argVector(seed uint64, entry string, v int, f *ir.Func) []sim.Value {
	args := make([]sim.Value, len(f.Params))
	for i, p := range f.Params {
		isFloat := f.RegClass(p) == ir.ClassFloat
		switch v {
		case 0:
			if isFloat {
				args[i] = sim.FloatValue(0)
			} else {
				args[i] = sim.IntValue(0)
			}
		case 1:
			if isFloat {
				args[i] = sim.FloatValue(1)
			} else {
				args[i] = sim.IntValue(1)
			}
		default:
			x := splitmix64(seed ^ strhash(entry) ^ uint64(v)<<32 ^ uint64(i)<<16)
			if isFloat {
				args[i] = sim.FloatValue(float64(int64(x%2048)-1024) / 16.0)
			} else {
				args[i] = sim.IntValue(int64(x%1021) - 510)
			}
		}
	}
	return args
}

// splitmix64 is the standard 64-bit finalizer-based mixer (Vigna): a
// bijective scramble good enough to decorrelate vector indices.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// strhash is FNV-1a, inlined to keep the package dependency-free.
func strhash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// maxCCMFootprint scans both programs for the highest CCM offset touched
// and returns a capacity covering it, so a derived-default check never
// faults on CCM bounds that the compiler itself respected.
func maxCCMFootprint(progs ...*ir.Program) int64 {
	var max int64
	for _, p := range progs {
		for _, f := range p.Funcs {
			if f.CCMBytes > max {
				max = f.CCMBytes
			}
			f.ForEachInstr(func(_ *ir.Block, _ int, in *ir.Instr) {
				if in.Op.IsCCMOp() && in.Imm+ir.WordBytes > max {
					max = in.Imm + ir.WordBytes
				}
			})
		}
	}
	if rem := max % ir.WordBytes; rem != 0 {
		max += ir.WordBytes - rem // sim requires a word-aligned capacity
	}
	return max
}

func formatArgs(args []sim.Value) string {
	if len(args) == 0 {
		return "none"
	}
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}
