package uf

import (
	"math/rand"
	"testing"
)

func TestSingletons(t *testing.T) {
	s := New(5)
	for i := 0; i < 5; i++ {
		if s.Find(i) != i {
			t.Fatalf("Find(%d) = %d in fresh set", i, s.Find(i))
		}
	}
	if s.Same(0, 1) {
		t.Fatal("distinct singletons reported same")
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestUnionTransitivity(t *testing.T) {
	s := New(10)
	s.Union(0, 1)
	s.Union(1, 2)
	s.Union(5, 6)
	if !s.Same(0, 2) {
		t.Fatal("transitive union failed")
	}
	if s.Same(0, 5) {
		t.Fatal("disjoint sets merged")
	}
	s.Union(2, 6)
	if !s.Same(0, 5) {
		t.Fatal("merge of groups failed")
	}
}

func TestUnionReturnsRepresentative(t *testing.T) {
	s := New(4)
	r := s.Union(1, 2)
	if s.Find(1) != r || s.Find(2) != r {
		t.Fatal("returned representative inconsistent")
	}
	if s.Union(1, 2) != r {
		t.Fatal("re-union changed representative")
	}
}

// Property: union-find groups match a reference partition computed by
// naive label propagation.
func TestAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(60)
		s := New(n)
		label := make([]int, n)
		for i := range label {
			label[i] = i
		}
		relabel := func(from, to int) {
			for i := range label {
				if label[i] == from {
					label[i] = to
				}
			}
		}
		for k := 0; k < n; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			s.Union(a, b)
			relabel(label[a], label[b])
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if s.Same(i, j) != (label[i] == label[j]) {
					t.Fatalf("trial %d: Same(%d,%d)=%v, reference %v",
						trial, i, j, s.Same(i, j), label[i] == label[j])
				}
			}
		}
	}
}
