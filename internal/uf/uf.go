// Package uf provides a small union-find (disjoint set) structure, used to
// merge SSA names into live ranges (registers in the allocator, spill
// locations in the post-pass CCM allocator).
package uf

// Set is a union-find over the integers 0..n-1.
type Set struct {
	parent []int
	rank   []int
}

// New returns a union-find with n singleton sets.
func New(n int) *Set {
	s := &Set{}
	s.Reset(n)
	return s
}

// Reset reinitializes s to n singleton sets, reusing its storage when
// large enough (the register allocator rebuilds its alias structure
// every round).
func (s *Set) Reset(n int) {
	if cap(s.parent) < n {
		s.parent = make([]int, n)
		s.rank = make([]int, n)
	} else {
		s.parent = s.parent[:n]
		s.rank = s.rank[:n]
	}
	for i := range s.parent {
		s.parent[i] = i
		s.rank[i] = 0
	}
}

// Len returns the element count.
func (s *Set) Len() int { return len(s.parent) }

// Find returns the representative of x, with path compression.
func (s *Set) Find(x int) int {
	for s.parent[x] != x {
		s.parent[x] = s.parent[s.parent[x]]
		x = s.parent[x]
	}
	return x
}

// Union merges the sets of a and b and returns the new representative.
func (s *Set) Union(a, b int) int {
	ra, rb := s.Find(a), s.Find(b)
	if ra == rb {
		return ra
	}
	if s.rank[ra] < s.rank[rb] {
		ra, rb = rb, ra
	}
	s.parent[rb] = ra
	if s.rank[ra] == s.rank[rb] {
		s.rank[ra]++
	}
	return ra
}

// Same reports whether a and b are in one set.
func (s *Set) Same(a, b int) bool { return s.Find(a) == s.Find(b) }
