package opt

import (
	"ccmem/internal/ir"
	"ccmem/internal/ssa"
)

// DeadCodeElim removes pure instructions (including phis) whose results
// never reach a side-effecting instruction — global dead-code elimination
// over SSA: single assignment makes the def-use relation exact, so one
// mark pass from the side-effecting roots suffices.
func DeadCodeElim(info *ssa.Info, st *Stats) {
	f := info.F

	type ref struct{ block, index int }
	defSite := map[ir.Reg]ref{}
	for bi, b := range f.Blocks {
		for ii := range b.Instrs {
			if d := b.Instrs[ii].Dst; d != ir.NoReg {
				defSite[d] = ref{bi, ii}
			}
		}
	}

	live := map[ref]bool{}
	var work []ref
	markArgs := func(r ref) {
		in := &f.Blocks[r.block].Instrs[r.index]
		for _, a := range in.Args {
			d, ok := defSite[a]
			if !ok || live[d] {
				continue
			}
			live[d] = true
			work = append(work, d)
		}
	}
	for bi, b := range f.Blocks {
		for ii := range b.Instrs {
			if b.Instrs[ii].Op.HasSideEffects() {
				r := ref{bi, ii}
				live[r] = true
				work = append(work, r)
			}
		}
	}
	for len(work) > 0 {
		r := work[len(work)-1]
		work = work[:len(work)-1]
		markArgs(r)
	}

	for bi, b := range f.Blocks {
		kept := b.Instrs[:0]
		for ii := range b.Instrs {
			in := b.Instrs[ii]
			if in.Op == ir.OpNop {
				st.DeadRemoved++
				continue
			}
			if !in.Op.HasSideEffects() && !live[ref{bi, ii}] {
				st.DeadRemoved++
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
}
